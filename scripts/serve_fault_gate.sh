#!/usr/bin/env bash
# Serve fault-isolation gate (docs/serving.md): drive a 50-request batch
# through gcr_serve under a seeded sweep of >= 200 injected faults,
# short reads and deadline expiries, and require
#
#   1. zero daemon crashes -- every run exits through the contract
#      (0/2/3/4), never a signal death or usage error,
#   2. every submitted request ends in a contract state (one outcome
#      line per submission, no silent drops),
#   3. every request that still completes routes bit-identically to a
#      one-shot gcr_route run of the same design + options -- fault
#      isolation must not leak into neighbouring requests' results.
#
# Usage: scripts/serve_fault_gate.sh [build-dir]
set -uo pipefail

BUILD="${1:-build}"
SERVE="$BUILD/tools/gcr_serve"
ROUTE="$BUILD/tools/gcr_route"
fail=0
total_faults=0

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

"$ROUTE" --demo "$work" > /dev/null || { echo "FAIL: --demo" >&2; exit 1; }
printf 'delta\nmove 3 4200 4700\nmove 11 100 9900\n' > "$work/demo.delta"

# The 50-request batch: one shared design, seven option combos (the id
# prefix names the combo so outcomes map back to their reference tree).
# Repeats are deliberate -- they exercise the result cache under faults.
batch="$work/batch.reqs"
{
  echo "reqs"
  design="sinks=demo.sinks rtl=demo.rtl stream=demo.stream"
  for i in $(seq -w 1 10); do echo "def$i $design"; done
  for i in $(seq -w 1 8); do echo "bnn$i $design style=buffered topology=nn"; done
  for i in $(seq -w 1 8); do echo "gact$i $design style=gated topology=activity"; done
  for i in $(seq -w 1 8); do echo "mmm$i $design topology=mmm strength=0.5"; done
  for i in $(seq -w 1 6); do echo "str$i $design strength=0.25"; done
  for i in $(seq -w 1 4); do echo "atn$i $design auto_tune=1"; done
  for i in $(seq -w 1 6); do echo "eco$i $design eco=demo.delta"; done
} > "$batch"
[ "$(tail -n +2 "$batch" | grep -c .)" -eq 50 ] || { echo "FAIL: batch size" >&2; exit 1; }

# One-shot references, one per combo, through the ordinary CLI.
ref() {
  "$ROUTE" --sinks "$work/demo.sinks" --rtl "$work/demo.rtl" \
    --stream "$work/demo.stream" --tree "$work/ref_$1.tree" "${@:2}" \
    > /dev/null || { echo "FAIL: reference $1" >&2; fail=1; }
}
ref def
ref bnn --style buffered --topology nn
ref gact --style gated --topology activity
ref mmm --topology mmm --strength 0.5
ref str --strength 0.25
ref atn --auto-tune
ref eco --eco "$work/demo.delta"

# run <tag> <allowed-exit-regex> <serve-args...>: one gcr_serve run over
# the batch. Checks the exit contract, outcome-per-request completeness,
# and every written tree against its combo reference; accumulates the
# run's injected-fault count into total_faults.
run() {
  local tag="$1" allowed="$2"
  shift 2
  local trees="$work/trees_$tag" out="$work/out_$tag.txt"
  mkdir -p "$trees"
  "$SERVE" --reqs "$batch" --trees "$trees" "$@" > "$out" 2> /dev/null
  local got=$?
  if ! [[ "$got" =~ ^($allowed)$ ]]; then
    echo "FAIL($tag): exit $got not in {$allowed}" >&2
    fail=1
    return
  fi
  local submitted outcomes
  submitted="$(sed -n 's/^serve: \([0-9]*\) submitted.*/\1/p' "$out")"
  outcomes="$(grep -c '^req id=' "$out")"
  if [ -z "$submitted" ] || [ "$outcomes" -ne "$submitted" ]; then
    echo "FAIL($tag): $outcomes outcomes for ${submitted:-?} submissions" >&2
    fail=1
  fi
  if grep '^req id=' "$out" |
      grep -qv 'state=\(done\|shed\|expired\|invalid\|error\) '; then
    echo "FAIL($tag): outcome outside the contract states" >&2
    fail=1
  fi
  local fired
  fired="$(sed -n 's/.*faults fired \([0-9]*\)$/\1/p' "$out")"
  total_faults=$((total_faults + ${fired:-0}))
  # Expiries count toward the sweep too: each is a deadline fault.
  total_faults=$((total_faults + $(grep -c 'state=expired' "$out")))
  local t combo
  for t in "$trees"/*.tree; do
    [ -e "$t" ] || continue
    combo="$(basename "$t" .tree)"
    combo="${combo//[0-9]/}"
    if ! cmp -s "$t" "$work/ref_$combo.tree"; then
      echo "FAIL($tag): $(basename "$t") differs from ref_$combo.tree" >&2
      fail=1
    fi
  done
  echo "ok($tag): exit $got, $outcomes outcomes, faults ${fired:-0}"
}

# Clean pass: everything must complete and match.
run clean 0 --workers 2
if ! ls "$work"/trees_clean/*.tree > /dev/null 2>&1 ||
    [ "$(ls "$work"/trees_clean/*.tree | wc -l)" -ne 50 ]; then
  echo "FAIL(clean): expected 50 trees" >&2
  fail=1
fi

# Exact-nth sweep: one fault per run, marching through admission, file
# reads (short-read equivalent: serve.read fails the slurp), the lexer
# and arena sites. 40 runs = 40 single faults at distinct visit counts.
for nth in $(seq 1 40); do
  run "nth$nth" '0|2|3|4' --workers 2 --faults "$nth"
done

# Probability sweeps: Bernoulli fire across every visited site, several
# seeds, two rates -- the bulk of the >= 200 faults.
for seed in 101 202 303 404 505; do
  run "p2s$seed" '0|2|3|4' --workers 2 --faults "$seed" --fault-prob 0.02
  run "p10s$seed" '0|2|3|4' --workers 2 --faults "$seed" --fault-prob 0.10
done

# Deadline expiries: a 0ms budget expires every request at dequeue.
run dl0 3 --workers 2 --deadline-ms 0

if [ "$total_faults" -lt 200 ]; then
  echo "FAIL: sweep injected only $total_faults faults (< 200)" >&2
  fail=1
else
  echo "sweep total: $total_faults injected faults/expiries"
fi

exit $fail

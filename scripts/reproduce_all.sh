#!/usr/bin/env bash
# Regenerate every paper table/figure and extension study, plus the test
# log and benchmark sidecars, into out/.
#
# Usage: scripts/reproduce_all.sh [build-dir]
#   GCR_BENCH_QUICK=1  run all timed sections in the quick tier (fewer
#                      reps, tighter time caps) -- what CI uses.
set -euo pipefail

BUILD="${1:-build}"
OUT=out
mkdir -p "$OUT"

# Prefer Ninja for fresh build dirs; an already-configured dir keeps its
# generator (CMake refuses to switch generators in place).
if [ -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD"
elif command -v ninja > /dev/null 2>&1; then
  cmake -B "$BUILD" -G Ninja
else
  cmake -B "$BUILD"
fi
cmake --build "$BUILD" -j "$(nproc)"

ctest --test-dir "$BUILD" --output-on-failure 2>&1 | tee "$OUT/tests.txt"

# Verification harness: a differential sweep over random designs plus a
# routed-and-selfchecked demo design. Either exits nonzero on any invariant
# violation, aborting the reproduction before bad numbers land in out/.
"$BUILD"/tools/gcr_check --random 100 --seed 2026 2>&1 | tee "$OUT/verify.txt"

# Robustness gates: the seeded fault-injection sweep (every injected fault
# must surface as a diagnostic, never a crash) and the malformed-input
# corpus with its CLI exit-code contract. Either failing aborts the
# reproduction -- see docs/robustness.md.
"$BUILD"/tools/gcr_check --faults --seed 2026 2>&1 | tee "$OUT/faults.txt"
"$(dirname "$0")"/check_corpus.sh "$BUILD" 2>&1 | tee "$OUT/corpus.txt"

demo="$OUT/demo_design"
mkdir -p "$demo"
"$BUILD"/tools/gcr_route --demo "$demo" > /dev/null
"$BUILD"/tools/gcr_route --sinks "$demo/demo.sinks" --rtl "$demo/demo.rtl" \
  --stream "$demo/demo.stream" --auto-tune --selftest > /dev/null

# The registered benchmark suite: statistics + memory sidecars per group
# (BENCH_<group>.json), schema-validated. GCR_BENCH_QUICK propagates into
# both gcr_bench and the per-figure binaries below.
"$BUILD"/tools/gcr_bench ${GCR_BENCH_QUICK:+--quick} --out "$OUT" \
  2>&1 | tee "$OUT/gcr_bench.txt"
"$BUILD"/tools/gcr_benchdiff --validate "$OUT"/BENCH_*.json

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name="$(basename "$b")"
  echo "== $name =="
  # Each bench also drops a machine-readable BENCH_<name>.json sidecar
  # (timing statistics + phase tree + counters) next to its text output.
  GCR_BENCH_NAME="$name" GCR_BENCH_JSON_DIR="$OUT" \
    "$b" 2>&1 | tee "$OUT/$name.txt"
done
"$BUILD"/tools/gcr_benchdiff --validate "$OUT"/BENCH_*.json

"$BUILD"/examples/layout_svg "$OUT"
echo "All outputs in $OUT/"

#!/usr/bin/env bash
# Regenerate every paper table/figure and extension study, plus the test
# log, into out/. Usage: scripts/reproduce_all.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
OUT=out
mkdir -p "$OUT"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" --output-on-failure 2>&1 | tee "$OUT/tests.txt"

# Verification harness: a differential sweep over random designs plus a
# routed-and-selfchecked demo design. Either exits nonzero on any invariant
# violation, aborting the reproduction before bad numbers land in out/.
"$BUILD"/tools/gcr_check --random 100 --seed 2026 2>&1 | tee "$OUT/verify.txt"
demo="$OUT/demo_design"
mkdir -p "$demo"
"$BUILD"/tools/gcr_route --demo "$demo" > /dev/null
"$BUILD"/tools/gcr_route --sinks "$demo/demo.sinks" --rtl "$demo/demo.rtl" \
  --stream "$demo/demo.stream" --auto-tune --selftest > /dev/null

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name="$(basename "$b")"
  echo "== $name =="
  # Each bench also drops a machine-readable BENCH_<name>.json sidecar
  # (phase timings + counters) next to its text output.
  GCR_BENCH_NAME="$name" GCR_BENCH_JSON_DIR="$OUT" \
    "$b" 2>&1 | tee "$OUT/$name.txt"
done

"$BUILD"/examples/layout_svg "$OUT"
echo "All outputs in $OUT/"

#!/usr/bin/env bash
# Run the malformed-input corpus plus CLI-level exit-code spot checks:
# every file in tests/corpus/ must produce its declared GCR_E_* code
# (corpus_test asserts code and line number), and the tools must map bad
# inputs onto the shared exit-code contract (docs/robustness.md).
#
# Usage: scripts/check_corpus.sh [build-dir]
set -uo pipefail

BUILD="${1:-build}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

ctest --test-dir "$BUILD" -R '^(corpus_test|guard_test)$' \
  --output-on-failure || fail=1

# expect <want-exit> <cmd...>: the command must exit with exactly that code.
expect() {
  local want="$1"
  shift
  "$@" > /dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: expected exit $want, got $got: $*" >&2
    fail=1
  else
    echo "ok (exit $want): $*"
  fi
}

expect 1 "$BUILD"/tools/gcr_check --bogus-flag
expect 1 "$BUILD"/tools/gcr_serve --bogus-flag
expect 1 "$BUILD"/tools/gcr_serve  # neither --reqs nor --stdin
expect 1 "$BUILD"/tools/gcr_route --bogus-flag
expect 1 "$BUILD"/tools/gcr_bench --bogus-flag
expect 1 "$BUILD"/tools/gcr_benchdiff --bogus-flag
expect 2 "$BUILD"/tools/gcr_check --tree "$REPO/tests/corpus/cycle.tree"
expect 2 "$BUILD"/tools/gcr_check --tree /nonexistent.tree
expect 2 "$BUILD"/tools/gcr_check --replay /nonexistent-artifact.json

# A truncated route must exit 3 with a partial report: build a demo design
# and give it a deadline no route can meet.
demo="$(mktemp -d)"
trap 'rm -rf "$demo"' EXIT
"$BUILD"/tools/gcr_route --demo "$demo" > /dev/null

# ECO deltas ride the same contract: a syntactically broken .delta and a
# semantically invalid one (sink index out of range) are both exit 2.
printf 'delta\nmove 0 nan 5\n' > "$demo/bad_syntax.delta"
printf 'delta\nmove 99999 5 5\n' > "$demo/bad_semantics.delta"
expect 2 "$BUILD"/tools/gcr_route --sinks "$demo/demo.sinks" \
  --rtl "$demo/demo.rtl" --stream "$demo/demo.stream" \
  --eco "$demo/bad_syntax.delta"
expect 2 "$BUILD"/tools/gcr_route --sinks "$demo/demo.sinks" \
  --rtl "$demo/demo.rtl" --stream "$demo/demo.stream" \
  --eco "$demo/bad_semantics.delta"
expect 3 "$BUILD"/tools/gcr_route --sinks "$demo/demo.sinks" \
  --rtl "$demo/demo.rtl" --stream "$demo/demo.stream" \
  --auto-tune --deadline-ms 0

# gcr_serve speaks the same contract per request; the batch exit is the
# worst request's code (docs/serving.md).
{
  echo "reqs"
  echo "good sinks=demo.sinks rtl=demo.rtl stream=demo.stream"
} > "$demo/good.reqs"
{
  echo "reqs"
  echo "ghost sinks=no_such.sinks rtl=demo.rtl stream=demo.stream"
} > "$demo/ghost.reqs"
# 64 requests against a 1-deep queue and one busy lane: submission is
# orders of magnitude faster than a route, so the overflow sheds with
# GCR_E_OVERLOAD deterministically.
{
  echo "reqs"
  for i in $(seq -w 1 64); do
    echo "q$i sinks=demo.sinks rtl=demo.rtl stream=demo.stream"
  done
} > "$demo/flood.reqs"
expect 2 "$BUILD"/tools/gcr_serve --reqs "$REPO/tests/corpus/bad_option.reqs"
expect 2 "$BUILD"/tools/gcr_serve --reqs /nonexistent.reqs
expect 0 "$BUILD"/tools/gcr_serve --reqs "$demo/good.reqs"
expect 2 "$BUILD"/tools/gcr_serve --reqs "$demo/ghost.reqs"
expect 3 "$BUILD"/tools/gcr_serve --reqs "$demo/good.reqs" --deadline-ms 0
expect 3 "$BUILD"/tools/gcr_serve --reqs "$demo/flood.reqs" \
  --workers 1 --queue-depth 1
# --faults 1 fires the serve.enqueue admission fault point on the first
# (only) submission: the request sheds with GCR_E_OVERLOAD.
expect 3 "$BUILD"/tools/gcr_serve --reqs "$demo/good.reqs" --faults 1

exit $fail

/// \file gcr_serve.cpp
/// Batch routing service driver (docs/serving.md): drain a `.reqs` batch
/// through gcr::serve::BatchService -- bounded admission, per-request
/// deadlines and fault isolation, content-hash caching -- and report one
/// outcome line per request.
///
/// Usage:
///   gcr_serve --reqs FILE [options]
///   gcr_serve --stdin [options]      (read the batch from stdin)
///
/// SIGINT/SIGTERM stop admission: already-admitted requests complete, the
/// rest of the batch sheds with GCR_E_OVERLOAD, then the service drains
/// and exits under the normal contract.
///
/// Exit code: the worst per-request contract code across the batch --
/// 0 all served, 1 usage, 2 a request's input was invalid, 3 a request
/// was shed or expired, 4 an internal error was confined to a request.

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "guard/fault.h"
#include "guard/postmortem.h"
#include "guard/status.h"
#include "io/reqs_io.h"
#include "io/tree_io.h"
#include "log/logger.h"
#include "serve/service.h"

using namespace gcr;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Args {
  std::string reqs;
  bool from_stdin = false;
  int workers = 2;
  std::size_t queue_depth = 64;
  std::string policy = "shed";
  std::size_t cache_capacity = 64;
  int threads = 1;
  double deadline_ms = -1.0;
  std::string base_dir;
  std::string trees_dir;
  std::optional<std::uint64_t> fault_seed;
  double fault_prob = 0.0;  // 0 with --faults = nth-visit mode, nth = seed
  int race = 0;             // > 0: N extra submitter threads, full batch each
  std::string log_json;
  std::string log_level;
  bool verbose = false;
};

void usage() {
  std::cerr
      << "usage: gcr_serve --reqs FILE [options]\n"
         "       gcr_serve --stdin [options]\n"
         "options:\n"
         "  --workers N          request lanes (default 2)\n"
         "  --queue-depth N      admission queue bound (default 64)\n"
         "  --policy shed|block  full-queue policy: reject with\n"
         "                       GCR_E_OVERLOAD or park the submitter\n"
         "                       (default shed)\n"
         "  --cache-capacity N   bounded LRU capacity for the design and\n"
         "                       result caches (default 64; 0 disables)\n"
         "  --threads N          topology width for requests with\n"
         "                       threads=0 (default 1; results identical\n"
         "                       at any width)\n"
         "  --deadline-ms MS     budget for requests without their own\n"
         "                       deadline_ms (< 0 = unlimited)\n"
         "  --base-dir DIR       resolve relative request paths against\n"
         "                       DIR (default: the --reqs file's directory)\n"
         "  --trees DIR          write each completed request's routed\n"
         "                       tree to DIR/<id>.tree\n"
         "  --faults SEED        arm deterministic fault injection for the\n"
         "                       whole batch (serve.enqueue, serve.read,\n"
         "                       lexer/arena sites); with no --fault-prob,\n"
         "                       fires exactly at visit number SEED\n"
         "  --fault-prob P       with --faults: fire each visited point\n"
         "                       with probability P instead\n"
         "  --race N             N extra threads each submit the full batch\n"
         "                       concurrently (admission stress; extra\n"
         "                       copies count toward shed/served totals)\n"
         "  --log-json FILE      structured gcr.event JSONL log\n"
         "  --log-level L        trace|debug|info|warn|error|off\n"
         "  --verbose            event mirror on stderr\n"
         "exit codes: 0 ok, 1 usage, 2 invalid input, 3 shed/deadline,\n"
         "            4 internal error\n";
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (flag == "--reqs") {
      if (const char* v = next()) a.reqs = v; else return std::nullopt;
    } else if (flag == "--stdin") {
      a.from_stdin = true;
    } else if (flag == "--workers") {
      if (const char* v = next()) a.workers = std::atoi(v); else return std::nullopt;
    } else if (flag == "--queue-depth") {
      if (const char* v = next()) a.queue_depth = static_cast<std::size_t>(std::atol(v)); else return std::nullopt;
    } else if (flag == "--policy") {
      if (const char* v = next()) a.policy = v; else return std::nullopt;
    } else if (flag == "--cache-capacity") {
      if (const char* v = next()) a.cache_capacity = static_cast<std::size_t>(std::atol(v)); else return std::nullopt;
    } else if (flag == "--threads") {
      if (const char* v = next()) a.threads = std::atoi(v); else return std::nullopt;
    } else if (flag == "--deadline-ms") {
      if (const char* v = next()) a.deadline_ms = std::atof(v); else return std::nullopt;
    } else if (flag == "--base-dir") {
      if (const char* v = next()) a.base_dir = v; else return std::nullopt;
    } else if (flag == "--trees") {
      if (const char* v = next()) a.trees_dir = v; else return std::nullopt;
    } else if (flag == "--faults") {
      if (const char* v = next()) a.fault_seed = std::strtoull(v, nullptr, 10); else return std::nullopt;
    } else if (flag == "--fault-prob") {
      if (const char* v = next()) a.fault_prob = std::atof(v); else return std::nullopt;
    } else if (flag == "--race") {
      if (const char* v = next()) a.race = std::atoi(v); else return std::nullopt;
    } else if (flag == "--log-json") {
      if (const char* v = next()) a.log_json = v; else return std::nullopt;
    } else if (flag == "--log-level") {
      if (const char* v = next()) a.log_level = v; else return std::nullopt;
    } else if (flag == "--verbose") {
      a.verbose = true;
    } else {
      std::cerr << "unknown flag: " << flag << '\n';
      return std::nullopt;
    }
  }
  return a;
}

bool init_cli_logger(const std::string& log_json, const std::string& log_level,
                     bool verbose) {
  log::Options lopts;
  std::string level = log_level;
  if (level.empty())
    if (const char* env = std::getenv("GCR_LOG_LEVEL")) level = env;
  if (!level.empty())
    if (const auto l = log::parse_level(level)) lopts.level = *l;
  if (verbose &&
      static_cast<int>(lopts.level) > static_cast<int>(log::Level::Debug))
    lopts.level = log::Level::Debug;
  lopts.stderr_level = verbose ? log::Level::Debug : log::Level::Warn;
  lopts.json_path = log_json;
  if (lopts.json_path.empty())
    if (const char* env = std::getenv("GCR_LOG")) lopts.json_path = env;
  const bool ok = log::Logger::instance().init(std::move(lopts));
  log::install_guard_bridge();
  return ok;
}

struct LogScope {
  ~LogScope() {
    log::remove_guard_bridge();
    log::Logger::instance().shutdown();
  }
};

struct DisarmOnExit {
  ~DisarmOnExit() { guard::FaultInjector::global().disarm(); }
};

void print_outcome(const serve::RequestOutcome& o) {
  std::ostringstream line;
  line << "req id=" << o.id << " seq=" << o.seq
       << " state=" << serve::state_name(o.state) << " code="
       << (o.code == guard::Code::Ok ? std::string_view("-")
                                     : guard::code_name(o.code))
       << " exit=" << o.exit_code() << " cache=" << (o.cache_hit ? 1 : 0)
       << " eco=" << (o.eco ? 1 : 0) << " elapsed_ms=" << o.elapsed_ms;
  if (!o.message.empty() && !o.ok()) line << "  # " << o.message;
  std::cout << line.str() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> parsed = parse(argc, argv);
  if (!parsed) {
    usage();
    return guard::kExitUsage;
  }
  const Args& a = *parsed;
  const bool one_source = a.reqs.empty() != !a.from_stdin;
  if (!one_source) {
    usage();
    return guard::kExitUsage;
  }
  if (a.policy != "shed" && a.policy != "block") {
    std::cerr << "bad --policy: " << a.policy << " (shed|block)\n";
    return guard::kExitUsage;
  }

  LogScope log_scope;
  if (!init_cli_logger(a.log_json, a.log_level, a.verbose)) {
    GCR_LOG_ERROR("cli.log_open_failed").kv("path", a.log_json);
  }

  // Parse the batch before anything is armed or spawned: a malformed
  // batch is a submission error (exit 2), not a serving failure.
  guard::Diag diag;
  std::optional<std::vector<io::RouteRequest>> batch;
  if (a.from_stdin) {
    batch = io::read_reqs(std::cin, diag, "<stdin>");
  } else {
    std::ifstream is(a.reqs);
    if (!is) {
      diag.error(guard::Code::Io, "cannot open " + a.reqs);
    } else {
      batch = io::read_reqs(is, diag, a.reqs);
    }
  }
  if (!batch) return diag.exit_code();

  serve::ServeOptions sopts;
  sopts.workers = a.workers;
  sopts.queue_capacity = a.queue_depth;
  sopts.policy = a.policy == "block" ? serve::AdmitPolicy::Block
                                     : serve::AdmitPolicy::Shed;
  sopts.design_cache_capacity = a.cache_capacity;
  sopts.result_cache_capacity = a.cache_capacity;
  sopts.default_deadline_ms = a.deadline_ms;
  sopts.route_threads = a.threads;
  sopts.base_dir = a.base_dir;
  if (sopts.base_dir.empty() && !a.reqs.empty()) {
    const std::size_t slash = a.reqs.find_last_of('/');
    if (slash != std::string::npos) sopts.base_dir = a.reqs.substr(0, slash);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  DisarmOnExit disarm;
  if (a.fault_seed) {
    guard::install_postmortem("gcr_serve.flightrec.json");
    guard::FaultPlan plan;
    plan.seed = *a.fault_seed;
    if (a.fault_prob > 0.0) {
      plan.probability = a.fault_prob;
    } else {
      plan.nth = *a.fault_seed == 0 ? 1 : *a.fault_seed;
    }
    guard::FaultInjector::global().arm(plan);
    GCR_LOG_INFO("serve.faults_armed")
        .kv("seed", *a.fault_seed)
        .kv("prob", a.fault_prob);
  }

  serve::BatchService service(sopts);
  service.start();

  // Submission: the main thread walks the batch once; --race adds N
  // threads doing the same concurrently, so admission, shedding and the
  // caches are exercised under real contention. A signal stops admission
  // mid-walk -- the rest of the batch sheds via the draining path.
  const auto submit_all = [&service, &batch] {
    for (const io::RouteRequest& r : *batch) {
      if (g_stop) {
        service.begin_drain();
        GCR_LOG_WARN("serve.signal").msg("admission stopped by signal");
      }
      (void)service.submit(r);
    }
  };
  std::vector<std::thread> racers;
  racers.reserve(static_cast<std::size_t>(std::max(0, a.race)));
  for (int i = 0; i < a.race; ++i) racers.emplace_back(submit_all);
  submit_all();
  for (std::thread& t : racers) t.join();
  service.drain();

  const std::uint64_t faults_fired =
      guard::FaultInjector::global().faults_fired();
  guard::FaultInjector::global().disarm();

  std::vector<serve::RequestOutcome> outcomes = service.take_outcomes();
  std::sort(outcomes.begin(), outcomes.end(),
            [](const serve::RequestOutcome& x, const serve::RequestOutcome& y) {
              return x.seq < y.seq;
            });

  int worst = guard::kExitOk;
  if (!a.trees_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(a.trees_dir, ec);
    if (ec) {
      std::cerr << "cannot create " << a.trees_dir << ": " << ec.message()
                << '\n';
      worst = guard::kExitInvalidInput;
    }
  }
  std::unordered_set<std::string> trees_written;
  for (const serve::RequestOutcome& o : outcomes) {
    print_outcome(o);
    worst = std::max(worst, o.exit_code());
    if (o.ok() && !a.trees_dir.empty() && o.result != nullptr &&
        trees_written.insert(o.id).second) {
      const std::string path = a.trees_dir + "/" + o.id + ".tree";
      std::ofstream os(path);
      if (os) {
        io::write_routed_tree(os, o.result->tree);
      } else {
        std::cerr << "cannot write " << path << '\n';
        worst = std::max(worst, guard::kExitInvalidInput);
      }
    }
  }

  const serve::ServeStats st = service.stats();
  std::cout << "serve: " << st.submitted << " submitted: " << st.done
            << " done, " << st.shed << " shed, " << st.expired << " expired, "
            << st.invalid << " invalid, " << st.errors << " errors"
            << "; result cache " << st.result_cache.hits << "/"
            << (st.result_cache.hits + st.result_cache.misses) << " hits, "
            << st.result_cache.evictions << " evicted"
            << "; faults fired " << faults_fired << '\n';
  return worst;
}

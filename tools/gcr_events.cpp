/// \file gcr_events.cpp
/// Consumer for the structured JSONL logs gcr tools emit with --log-json /
/// GCR_LOG: filter, validate and summarize `gcr.event` / `gcr.snapshot`
/// lines (src/log/schema.h, docs/observability.md).
///
/// Usage:
///   gcr_events [FILE|-] [--level L] [--event SUBSTR] [--phase SUBSTR]
///              [--validate] [--summary]
///
///   FILE          JSONL log ("-" or no positional = stdin)
///   --level L     keep events at level L or above (snapshots always pass)
///   --event S     keep events whose name contains S
///   --phase S     keep lines whose phase path contains S
///   --validate    check every line against the v1 schemas; exit 2 on any
///                 violation (malformed log = invalid input)
///   --summary     per-event-name counts, level totals, suppression and
///                 drop accounting, snapshot count and time span
///
/// Default output is the matching lines verbatim (so invocations pipe).
/// With --validate or --summary alone, lines are consumed silently.
///
/// Exit codes: 0 ok, 1 usage, 2 unreadable input or schema violation.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "log/logger.h"
#include "log/schema.h"
#include "obs/json.h"

using namespace gcr;

namespace {

struct Args {
  std::string file;  // "" or "-" = stdin
  std::optional<log::Level> level;
  std::string event_substr;
  std::string phase_substr;
  bool validate = false;
  bool summary = false;
};

void usage() {
  std::cerr
      << "usage: gcr_events [FILE|-] [--level L] [--event SUBSTR]\n"
         "                  [--phase SUBSTR] [--validate] [--summary]\n"
         "FILE is a gcr.event/gcr.snapshot JSONL log (gcr_route --log-json,\n"
         "GCR_LOG=...); no FILE or \"-\" reads stdin. Matching lines print\n"
         "verbatim unless only --validate/--summary are requested.\n"
         "exit codes: 0 ok, 1 usage, 2 unreadable input or invalid line\n";
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (flag == "--level") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.level = log::parse_level(v);
      if (!a.level) {
        std::cerr << "bad level: " << v << '\n';
        return std::nullopt;
      }
    } else if (flag == "--event") {
      if (const char* v = next()) a.event_substr = v; else return std::nullopt;
    } else if (flag == "--phase") {
      if (const char* v = next()) a.phase_substr = v; else return std::nullopt;
    } else if (flag == "--validate") {
      a.validate = true;
    } else if (flag == "--summary") {
      a.summary = true;
    } else if (!flag.empty() && flag[0] == '-' && flag != "-") {
      std::cerr << "unknown flag: " << flag << '\n';
      return std::nullopt;
    } else if (a.file.empty()) {
      a.file = flag;
    } else {
      std::cerr << "more than one input file\n";
      return std::nullopt;
    }
  }
  return a;
}

/// Aggregates for --summary, fed line by line.
struct Summary {
  std::uint64_t lines = 0;
  std::uint64_t events = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t suppressed = 0;  // emissions amortized onto kept records
  double first_ms = 0.0;
  double last_ms = 0.0;
  std::map<std::string, std::uint64_t> by_event;
  std::map<std::string, std::uint64_t> by_level;

  void add(const log::LineInfo& info) {
    if (lines == 0) first_ms = info.t_ms;
    ++lines;
    last_ms = info.t_ms;
    if (info.kind == log::LineKind::Snapshot) {
      ++snapshots;
      return;
    }
    ++events;
    ++by_event[info.event];
    ++by_level[info.level];
    suppressed += info.suppressed;
  }

  void print(std::ostream& os) const {
    os << lines << " line(s): " << events << " event(s), " << snapshots
       << " snapshot(s), span " << (last_ms - first_ms) << " ms\n";
    if (!by_level.empty()) {
      os << "by level:\n";
      for (const auto& [level, n] : by_level)
        os << "  " << level << ": " << n << '\n';
    }
    if (!by_event.empty()) {
      os << "by event:\n";
      for (const auto& [event, n] : by_event)
        os << "  " << event << ": " << n << '\n';
    }
    if (suppressed > 0)
      os << suppressed << " rate-limited emission(s) accounted on kept "
            "records\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> parsed = parse(argc, argv);
  if (!parsed) {
    usage();
    return 1;
  }
  const Args& a = *parsed;

  std::ifstream file;
  if (!a.file.empty() && a.file != "-") {
    file.open(a.file);
    if (!file) {
      std::cerr << "error: cannot open " << a.file << '\n';
      return 2;
    }
  }
  std::istream& in = file.is_open() ? file : std::cin;

  // Print matches only when the caller didn't reduce the run to a check
  // or a summary (both compose with printing when given alongside a
  // filter-less invocation piped somewhere, but the common CI shape is
  // `--validate --summary` with no line output wanted).
  const bool print_lines = !a.validate && !a.summary;

  Summary summary;
  std::uint64_t invalid = 0;
  std::uint64_t lineno = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::optional<obs::json::Value> doc = obs::json::parse(line);
    if (!doc) {
      std::cerr << "line " << lineno << ": not valid JSON\n";
      ++invalid;
      continue;
    }
    if (a.validate) {
      const std::vector<std::string> problems = log::validate_line(*doc);
      if (!problems.empty()) {
        for (const std::string& p : problems)
          std::cerr << "line " << lineno << ": " << p << '\n';
        ++invalid;
        continue;
      }
    }
    const std::optional<log::LineInfo> info = log::parse_line(*doc);
    if (!info) {
      // Without --validate a malformed-but-parseable line is skipped, not
      // fatal: tail a live log without racing its writer.
      if (a.validate) {
        std::cerr << "line " << lineno << ": unrecognized line shape\n";
        ++invalid;
      }
      continue;
    }

    if (info->kind == log::LineKind::Event) {
      if (a.level) {
        const std::optional<log::Level> l = log::parse_level(info->level);
        if (!l || static_cast<int>(*l) < static_cast<int>(*a.level)) continue;
      }
      if (!a.event_substr.empty() &&
          info->event.find(a.event_substr) == std::string::npos)
        continue;
    }
    if (!a.phase_substr.empty() &&
        info->phase.find(a.phase_substr) == std::string::npos)
      continue;

    summary.add(*info);
    if (print_lines) std::cout << line << '\n';
  }

  if (a.summary) summary.print(std::cout);
  if (a.validate) {
    if (invalid > 0) {
      std::cerr << invalid << " invalid line(s)\n";
      return 2;
    }
    std::cout << lineno << " line(s) valid\n";
  }
  return invalid > 0 ? 2 : 0;
}

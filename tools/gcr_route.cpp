/// \file gcr_route.cpp
/// Command-line front end of the library: route a design from files.
///
/// Usage:
///   gcr_route --sinks <file> --rtl <file> --stream <file>
///             [--style buffered|gated|reduced] [--partitions k]
///             [--threads n]
///             [--strength s | --auto-tune] [--svg out.svg]
///             [--tree out.tree] [--csv]
///             [--report out.json] [--trace out.trace.json] [--verbose]
///
/// Input formats are the library's text formats (see io/text_io.h); use
/// `gcr_route --demo <dir>` to emit a ready-to-route example design.
///
/// Exit codes (docs/robustness.md): 0 success, 1 usage, 2 invalid input,
/// 3 deadline/resource exhausted, 4 internal error or selftest violation.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "eco/delta.h"
#include "eco/incremental.h"
#include "eval/table.h"
#include "guard/deadline.h"
#include "guard/postmortem.h"
#include "guard/status.h"
#include "guard/validate.h"
#include "io/delta_io.h"
#include "io/svg.h"
#include "io/text_io.h"
#include "io/tree_io.h"
#include "log/logger.h"
#include "log/telemetry.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "perf/memhook.h"
#include "prof/hwcounters.h"
#include "prof/report.h"
#include "prof/sampler.h"
#include "verify/invariants.h"

using namespace gcr;

namespace {

struct Args {
  std::string sinks, rtl, stream;
  std::string style = "reduced";
  std::string topology = "swcap";
  int partitions = 1;
  std::optional<double> strength;
  bool auto_tune = false;
  bool clustered = false;
  int threads = 0;
  bool sizing = false;
  double skew_bound = 0.0;
  std::string eco;  // .delta file: incremental re-route after the base route
  std::string svg, tree_out, demo_dir;
  bool csv = false;
  std::string report, trace, profile;
  bool verbose = false;
  bool mem_stats = false;
  bool selftest = false;
  long deadline_ms = -1;  // < 0 = unlimited; 0 = expire immediately
  std::string log_json;   // JSONL event log ("" = GCR_LOG env or none)
  std::string log_level;  // runtime floor ("" = GCR_LOG_LEVEL env or info)
  int telemetry_interval_ms = 0;  // 0 = no periodic snapshots
};

void usage() {
  std::cerr
      << "usage: gcr_route --sinks F --rtl F --stream F [options]\n"
         "       gcr_route --demo DIR   (write an example design to DIR)\n"
         "options:\n"
         "  --style buffered|gated|reduced   tree style (default reduced)\n"
         "  --topology swcap|nn|activity|mmm topology scheme (default swcap)\n"
         "  --partitions K                   distributed controllers (perfect square)\n"
         "  --strength S                     reduction aggressiveness in [0,1]\n"
         "  --auto-tune                      sweep reduction strength, keep best\n"
         "  --clustered                      two-level construction (large designs)\n"
         "  --threads N                      topology-build worker threads\n"
         "                                   (0 = GCR_THREADS or hardware;\n"
         "                                   result identical at any N)\n"
         "  --size-gates                     per-merge gate sizing\n"
         "  --skew-bound PS                  skew budget (0 = exact zero skew)\n"
         "  --eco FILE                       apply the .delta file to the routed\n"
         "                                   design via incremental ECO re-route\n"
         "                                   (io/delta_io.h format); all outputs\n"
         "                                   describe the post-ECO tree\n"
         "  --svg FILE                       write layout drawing\n"
         "  --tree FILE                      write routed tree (text format)\n"
         "  --csv                            machine-readable report\n"
         "  --report FILE                    JSON run report (options, phase\n"
         "                                   timings, counters, results)\n"
         "  --trace FILE                     Chrome trace-event JSON (open in\n"
         "                                   chrome://tracing or Perfetto)\n"
         "  --profile FILE                   gcr.profile_report JSON: sampled\n"
         "                                   self/total phase profile, per-phase\n"
         "                                   hw counters, pool telemetry; on\n"
         "                                   failure dumps FILE.flightrec.json\n"
         "  --verbose                        phase/counter summary to stderr\n"
         "  --mem-stats                      heap bytes per phase + peak RSS\n"
         "                                   to stderr (implies the phase\n"
         "                                   summary; counts every new/delete)\n"
         "  --deadline-ms MS                 abort the route when the wall-clock\n"
         "                                   budget expires: prints the phases\n"
         "                                   that completed and exits 3\n"
         "  --selftest                       re-derive all paper invariants on\n"
         "                                   the result; exit 4 on violation\n"
         "  --log-json FILE                  structured gcr.event JSONL log\n"
         "                                   (also via GCR_LOG=FILE)\n"
         "  --log-level L                    trace|debug|info|warn|error|off\n"
         "                                   runtime floor (GCR_LOG_LEVEL env;\n"
         "                                   default info)\n"
         "  --telemetry-interval-ms MS       periodic gcr.snapshot telemetry\n"
         "                                   lines in the JSONL log\n"
         "exit codes: 0 ok, 1 usage, 2 invalid input, 3 deadline/resource,\n"
         "            4 internal error or selftest violation\n";
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (flag == "--sinks") {
      if (const char* v = next()) a.sinks = v; else return std::nullopt;
    } else if (flag == "--rtl") {
      if (const char* v = next()) a.rtl = v; else return std::nullopt;
    } else if (flag == "--stream") {
      if (const char* v = next()) a.stream = v; else return std::nullopt;
    } else if (flag == "--style") {
      if (const char* v = next()) a.style = v; else return std::nullopt;
    } else if (flag == "--topology") {
      if (const char* v = next()) a.topology = v; else return std::nullopt;
    } else if (flag == "--clustered") {
      a.clustered = true;
    } else if (flag == "--threads") {
      if (const char* v = next()) a.threads = std::atoi(v); else return std::nullopt;
    } else if (flag == "--size-gates") {
      a.sizing = true;
    } else if (flag == "--skew-bound") {
      if (const char* v = next()) a.skew_bound = std::atof(v); else return std::nullopt;
    } else if (flag == "--eco") {
      if (const char* v = next()) a.eco = v; else return std::nullopt;
    } else if (flag == "--partitions") {
      if (const char* v = next()) a.partitions = std::atoi(v); else return std::nullopt;
    } else if (flag == "--strength") {
      if (const char* v = next()) a.strength = std::atof(v); else return std::nullopt;
    } else if (flag == "--auto-tune") {
      a.auto_tune = true;
    } else if (flag == "--svg") {
      if (const char* v = next()) a.svg = v; else return std::nullopt;
    } else if (flag == "--tree") {
      if (const char* v = next()) a.tree_out = v; else return std::nullopt;
    } else if (flag == "--demo") {
      if (const char* v = next()) a.demo_dir = v; else return std::nullopt;
    } else if (flag == "--csv") {
      a.csv = true;
    } else if (flag == "--report") {
      if (const char* v = next()) a.report = v; else return std::nullopt;
    } else if (flag == "--trace") {
      if (const char* v = next()) a.trace = v; else return std::nullopt;
    } else if (flag == "--profile") {
      if (const char* v = next()) a.profile = v; else return std::nullopt;
    } else if (flag == "--verbose") {
      a.verbose = true;
    } else if (flag == "--mem-stats") {
      a.mem_stats = true;
    } else if (flag == "--selftest") {
      a.selftest = true;
    } else if (flag == "--deadline-ms") {
      if (const char* v = next()) a.deadline_ms = std::atol(v); else return std::nullopt;
    } else if (flag == "--log-json") {
      if (const char* v = next()) a.log_json = v; else return std::nullopt;
    } else if (flag == "--log-level") {
      if (const char* v = next()) a.log_level = v; else return std::nullopt;
    } else if (flag == "--telemetry-interval-ms") {
      if (const char* v = next()) a.telemetry_interval_ms = std::atoi(v); else return std::nullopt;
    } else {
      std::cerr << "unknown flag: " << flag << '\n';
      return std::nullopt;
    }
  }
  return a;
}

/// CLI logger bring-up: flags override the GCR_LOG / GCR_LOG_LEVEL
/// environment; --verbose lowers both the runtime floor and the human
/// stderr floor to debug. Returns false when the JSONL path could not be
/// opened (the logger still runs with the remaining sinks).
bool init_cli_logger(const std::string& log_json, const std::string& log_level,
                     bool verbose) {
  gcr::log::Options lopts;
  std::string level = log_level;
  if (level.empty())
    if (const char* env = std::getenv("GCR_LOG_LEVEL")) level = env;
  if (!level.empty()) {
    if (const auto l = gcr::log::parse_level(level)) lopts.level = *l;
  }
  if (verbose && static_cast<int>(lopts.level) >
                     static_cast<int>(gcr::log::Level::Debug))
    lopts.level = gcr::log::Level::Debug;
  lopts.stderr_level =
      verbose ? gcr::log::Level::Debug : gcr::log::Level::Warn;
  lopts.json_path = log_json;
  if (lopts.json_path.empty())
    if (const char* env = std::getenv("GCR_LOG")) lopts.json_path = env;
  const bool ok = gcr::log::Logger::instance().init(std::move(lopts));
  gcr::log::install_guard_bridge();
  return ok;
}

/// Drains and closes the logger on every exit path out of main.
struct LogScope {
  gcr::log::TelemetryEmitter telemetry;
  ~LogScope() {
    if (telemetry.running()) (void)telemetry.stop();
    gcr::log::remove_guard_bridge();
    gcr::log::Logger::instance().shutdown();
  }
};

int write_demo(const std::string& dir) {
  benchdata::RBenchSpec spec{"demo", 64, 10000.0, 0.005, 0.06, 11};
  const benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 16;
  wspec.target_activity = 0.35;
  wspec.locality = 0.85;
  wspec.stream_length = 5000;
  const benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);

  std::ofstream sf(dir + "/demo.sinks");
  io::write_sinks(sf, rb.die, rb.sinks);
  std::ofstream rf(dir + "/demo.rtl");
  io::write_rtl(rf, wl.rtl);
  std::ofstream tf(dir + "/demo.stream");
  io::write_stream(tf, wl.stream);
  std::cout << "wrote " << dir << "/demo.{sinks,rtl,stream}\n"
            << "try: gcr_route --sinks " << dir << "/demo.sinks --rtl " << dir
            << "/demo.rtl --stream " << dir << "/demo.stream --auto-tune\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> parsed = parse(argc, argv);
  if (!parsed) {
    usage();
    return guard::kExitUsage;
  }
  const Args& a = *parsed;
  if (!a.demo_dir.empty()) return write_demo(a.demo_dir);
  if (a.sinks.empty() || a.rtl.empty() || a.stream.empty()) {
    usage();
    return guard::kExitUsage;
  }

  LogScope log_scope;
  if (!init_cli_logger(a.log_json, a.log_level, a.verbose)) {
    GCR_LOG_ERROR("cli.log_open_failed").kv("path", a.log_json);
  }

  try {
    guard::Diag diag;
    std::ifstream sf(a.sinks);
    if (!sf) diag.error(guard::Code::Io, "cannot open " + a.sinks);
    std::optional<io::SinksFile> sinks =
        sf ? io::read_sinks(sf, diag, a.sinks) : std::nullopt;
    std::ifstream rf(a.rtl);
    if (!rf) diag.error(guard::Code::Io, "cannot open " + a.rtl);
    std::optional<activity::RtlDescription> rtl =
        rf ? io::read_rtl(rf, diag, a.rtl) : std::nullopt;
    std::ifstream tf(a.stream);
    if (!tf) diag.error(guard::Code::Io, "cannot open " + a.stream);
    std::optional<activity::InstructionStream> stream =
        tf ? io::read_stream(tf, diag, a.stream) : std::nullopt;
    // The guard bridge has already turned every Diag entry into a stderr
    // line + structured event as it was reported; no diag.print here.
    if (!sinks || !rtl || !stream) return diag.exit_code();

    core::Design design{sinks->die, std::move(sinks->sinks), std::move(*rtl),
                        std::move(*stream), {}};
    // Semantic validation must run before the router is constructed: the
    // activity analyzer indexes by raw stream/module ids, so a bad design
    // cannot be caught after the fact.
    if (!guard::validate_design(design, diag)) return diag.exit_code();

    // Observability: bind a session before the router is constructed so
    // the activity-analysis phase inside the constructor is captured.
    const bool observed = !a.report.empty() || !a.trace.empty() ||
                          !a.profile.empty() || a.verbose || a.mem_stats;
    if (a.mem_stats) {
      if (perf::memhook::available())
        perf::memhook::enable();  // before any phase runs
      else
        GCR_LOG_WARN("route.memhook_unavailable")
            .msg("--mem-stats: allocation hook unavailable on this "
                 "platform; reporting peak RSS only");
    }
    obs::Session session;
    obs::MemoryTraceSink trace_sink;
    std::optional<obs::Bind> bind;
    if (observed) {
      if (!a.trace.empty()) session.set_trace(&trace_sink);
      obs::set_metrics_enabled(true);
      obs::Registry::global().reset();
      bind.emplace(&session);
    }
    // Profiling starts before the router is constructed for the same reason
    // the session does: the constructor's activity-analysis phase counts.
    prof::Sampler sampler;
    prof::HwInfo hw;
    if (!a.profile.empty()) {
      hw = prof::enable_hw_counters();
      sampler.start();
      guard::install_postmortem(a.profile + ".flightrec.json");
    }

    const core::GatedClockRouter router(std::move(design));

    core::RouterOptions opts;
    if (a.style == "buffered") opts.style = core::TreeStyle::Buffered;
    else if (a.style == "gated") opts.style = core::TreeStyle::Gated;
    else if (a.style == "reduced") opts.style = core::TreeStyle::GatedReduced;
    else {
      GCR_LOG_ERROR("cli.bad_flag").kv("flag", "--style").kv("value", a.style);
      return guard::kExitUsage;
    }
    if (a.topology == "swcap") opts.topology = core::TopologyScheme::MinSwitchedCap;
    else if (a.topology == "nn") opts.topology = core::TopologyScheme::NearestNeighbor;
    else if (a.topology == "activity") opts.topology = core::TopologyScheme::ActivityOnly;
    else if (a.topology == "mmm") opts.topology = core::TopologyScheme::Mmm;
    else {
      GCR_LOG_ERROR("cli.bad_flag")
          .kv("flag", "--topology")
          .kv("value", a.topology);
      return guard::kExitUsage;
    }
    opts.controller_partitions = a.partitions;
    opts.auto_tune_reduction = a.auto_tune;
    opts.clustered = a.clustered;
    opts.num_threads = a.threads;
    opts.skew_bound = a.skew_bound;
    if (a.sizing) opts.gate_sizing = ct::GateSizing::MinWirelength;
    if (a.strength)
      opts.reduction = gating::GateReductionParams::from_strength(*a.strength);

    const guard::Deadline deadline =
        a.deadline_ms >= 0
            ? guard::Deadline::after_ms(static_cast<double>(a.deadline_ms))
            : guard::Deadline();
    if (a.telemetry_interval_ms > 0)
      log_scope.telemetry.start({a.telemetry_interval_ms});
    core::RouteOutcome out = router.route_guarded(opts, deadline);
    if (!out.ok()) {
      if (!a.profile.empty()) {
        (void)sampler.stop();
        const std::string fr = a.profile + ".flightrec.json";
        if (guard::postmortem_dump(fr))
          out.diag.warning(guard::Code::FlightRecorder,
                           "flight record written to " + fr);
      }
      // Every diag entry already went through the bridge; add the partial
      // report so the truncated run stays diagnosable from the event log.
      if (out.cancelled) {
        std::string done;
        for (std::size_t i = 0; i < out.phases_completed.size(); ++i) {
          if (i) done += ' ';
          done += out.phases_completed[i];
        }
        GCR_LOG_WARN("route.partial")
            .kv("phases_completed", done)
            .kv("aborted_in", out.aborted_phase);
      }
      return out.exit_code();
    }

    // Incremental ECO: re-route the delta on top of the finished base
    // result; everything downstream (selftest, reports, drawings, the
    // metric table) describes the post-ECO tree.
    std::optional<core::GatedClockRouter> eco_router;
    std::optional<core::RouteOutcome> eco_out;
    eco::EcoInfo eco_info;
    if (!a.eco.empty()) {
      std::ifstream ef(a.eco);
      if (!ef) {
        GCR_LOG_ERROR("cli.io").msg("cannot open " + a.eco);
        return guard::kExitInvalidInput;
      }
      guard::Diag ediag;
      const std::optional<eco::DesignDelta> delta =
          io::read_delta(ef, ediag, a.eco);
      if (!delta) return ediag.exit_code();
      eco_out = eco::route_incremental(router, *out.result, *delta, opts,
                                       &eco_info, deadline);
      if (!eco_out->ok()) return eco_out->exit_code();
      eco_router.emplace(eco::apply_delta(router.design(), *delta));
    }
    const core::RouterResult& r = eco_out ? *eco_out->result : *out.result;
    const core::GatedClockRouter& result_router =
        eco_router ? *eco_router : router;

    if (a.selftest) {
      const verify::Report rep = verify::verify_result(result_router, opts, r);
      if (rep.ok())
        GCR_LOG_INFO("route.selftest").kv("ok", true).msg(rep.summary());
      else
        GCR_LOG_ERROR("route.selftest").kv("ok", false).msg(rep.summary());
      if (!rep.ok()) return guard::kExitInternal;
    }

    if (!a.report.empty()) {
      std::ofstream os(a.report);
      if (!os)
        throw guard::GuardError(
            guard::make_error(guard::Code::Io, "cannot open " + a.report));
      obs::write_run_report(os, opts, r, session);
    }
    if (!a.trace.empty()) {
      std::ofstream os(a.trace);
      if (!os)
        throw guard::GuardError(
            guard::make_error(guard::Code::Io, "cannot open " + a.trace));
      trace_sink.write_chrome_json(os);
    }
    if (!a.profile.empty()) {
      const prof::Sampler::Profile p = sampler.stop();
      std::ofstream os(a.profile);
      if (!os)
        throw guard::GuardError(
            guard::make_error(guard::Code::Io, "cannot open " + a.profile));
      prof::ProfileReportOptions po;
      po.tool = "gcr_route";
      po.profile = &p;
      po.session = &session;
      po.hw = hw;
      prof::write_profile_report(os, po);
      prof::disable_hw_counters();
    }
    if (a.verbose || a.mem_stats) {
      obs::print_run_summary(std::cerr, session);
      const int width = a.threads > 0 ? a.threads : par::default_threads();
      if (width > 1)
        par::write_pool_summary(std::cerr,
                                par::ThreadPool::global().telemetry());
    }
    if (a.mem_stats) {
      const perf::memhook::Stats m = perf::memhook::stats();
      char line[160];
      if (perf::memhook::available()) {
        std::snprintf(line, sizeof line,
                      "heap: %llu allocations, %.1f MiB allocated, "
                      "%.1f MiB peak live\n",
                      static_cast<unsigned long long>(m.allocs),
                      static_cast<double>(m.bytes_allocated) / (1024.0 * 1024.0),
                      static_cast<double>(m.peak_live_bytes) /
                          (1024.0 * 1024.0));
        std::cerr << line;
      }
      std::snprintf(line, sizeof line, "peak RSS: %.1f MiB\n",
                    static_cast<double>(perf::memhook::peak_rss_bytes()) /
                        (1024.0 * 1024.0));
      std::cerr << line;
    }

    eval::Table t({"metric", "value"});
    t.add_row({"style", a.style});
    t.add_row({"sinks", std::to_string(r.tree.num_leaves)});
    t.add_row({"W(T) clock swcap pF", eval::Table::num(r.swcap.clock_swcap)});
    t.add_row({"W(S) ctrl swcap pF", eval::Table::num(r.swcap.ctrl_swcap)});
    t.add_row({"W total pF", eval::Table::num(r.swcap.total_swcap())});
    t.add_row({"area lambda^2", eval::Table::num(r.swcap.total_area(), 0)});
    t.add_row({"clock wirelength", eval::Table::num(r.swcap.clock_wirelength, 0)});
    t.add_row({"star wirelength", eval::Table::num(r.swcap.star_wirelength, 0)});
    t.add_row({"gates", std::to_string(r.swcap.num_cells)});
    t.add_row({"gate reduction %", eval::Table::num(r.gate_reduction_pct(), 1)});
    t.add_row({"max delay", eval::Table::num(r.delays.max_delay, 2)});
    t.add_row({"skew", eval::Table::num(r.delays.skew(), 9)});
    if (eco_out) {
      t.add_row({"eco dirty sinks", std::to_string(eco_info.dirty_leaves)});
      t.add_row(
          {"eco preserved merges", std::to_string(eco_info.preserved_merges)});
      t.add_row({"eco spine merges", std::to_string(eco_info.spine_merges)});
    }
    if (a.csv) t.print_csv(std::cout); else t.print(std::cout);

    if (!a.svg.empty()) {
      std::ofstream os(a.svg);
      const gating::ControllerPlacement ctrl(result_router.design().die,
                                             a.partitions);
      io::write_svg(os, r.tree, result_router.design().die, ctrl);
    }
    if (!a.tree_out.empty()) {
      std::ofstream os(a.tree_out);
      io::write_routed_tree(os, r.tree);
    }
  } catch (const guard::GuardError& e) {
    GCR_LOG_ERROR("cli.guard_error").msg(e.status().to_string());
    return guard::exit_code_for(e.status().code);
  } catch (const std::exception& e) {
    GCR_LOG_ERROR("cli.internal_error").msg(e.what());
    return guard::kExitInternal;
  }
  return guard::kExitOk;
}

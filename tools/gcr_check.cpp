/// \file gcr_check.cpp
/// Verification front end: run the gcr::verify invariant checker and the
/// differential/metamorphic driver from the command line.
///
/// Modes:
///   gcr_check --random N [--seed S] [--dump DIR] [--verbose]
///       route N randomized designs through every topology scheme and
///       cross-check against the oracles; nonzero exit on any violation.
///   gcr_check --replay SEED [--dump DIR]
///       re-run one failing design by the seed a dumped artifact (or a CI
///       log) recorded.
///   gcr_check --tree FILE [--skew-bound B]
///       structural/geometric/electrical invariants of a routed-tree dump
///       (io/tree_io.h format, e.g. from gcr_route --tree).
///   gcr_check --sinks F --rtl F --stream F [route options]
///       route one design from files and verify the full result.

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/router.h"
#include "io/text_io.h"
#include "io/tree_io.h"
#include "verify/differential.h"
#include "verify/generator.h"
#include "verify/invariants.h"

using namespace gcr;

namespace {

struct Args {
  int random_designs = 0;
  std::uint64_t seed = 2026;
  std::optional<std::uint64_t> replay;
  std::string dump_dir;
  bool verbose = false;
  std::string tree_file;
  double skew_bound = 0.0;
  std::string sinks, rtl, stream;
  std::string style = "reduced";
  std::string topology = "swcap";
  int partitions = 1;
  bool clustered = false;
  int threads = 0;
};

void usage() {
  std::cerr
      << "usage: gcr_check --random N [--seed S] [--dump DIR] [--verbose]\n"
         "       gcr_check --replay SEED [--dump DIR]\n"
         "       gcr_check --tree FILE [--skew-bound B]\n"
         "       gcr_check --sinks F --rtl F --stream F [options]\n"
         "options (file mode):\n"
         "  --style buffered|gated|reduced   tree style (default reduced)\n"
         "  --topology swcap|nn|activity|mmm topology scheme\n"
         "  --partitions K                   distributed controllers\n"
         "  --clustered                      two-level construction\n"
         "  --threads N                      topology-build worker threads\n"
         "  --skew-bound PS                  skew budget (0 = exact)\n";
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (flag == "--random") {
      if (const char* v = next()) a.random_designs = std::atoi(v);
      else return std::nullopt;
    } else if (flag == "--seed") {
      if (const char* v = next()) a.seed = std::strtoull(v, nullptr, 10);
      else return std::nullopt;
    } else if (flag == "--replay") {
      if (const char* v = next()) a.replay = std::strtoull(v, nullptr, 10);
      else return std::nullopt;
    } else if (flag == "--dump") {
      if (const char* v = next()) a.dump_dir = v; else return std::nullopt;
    } else if (flag == "--verbose") {
      a.verbose = true;
    } else if (flag == "--tree") {
      if (const char* v = next()) a.tree_file = v; else return std::nullopt;
    } else if (flag == "--skew-bound") {
      if (const char* v = next()) a.skew_bound = std::atof(v);
      else return std::nullopt;
    } else if (flag == "--sinks") {
      if (const char* v = next()) a.sinks = v; else return std::nullopt;
    } else if (flag == "--rtl") {
      if (const char* v = next()) a.rtl = v; else return std::nullopt;
    } else if (flag == "--stream") {
      if (const char* v = next()) a.stream = v; else return std::nullopt;
    } else if (flag == "--style") {
      if (const char* v = next()) a.style = v; else return std::nullopt;
    } else if (flag == "--topology") {
      if (const char* v = next()) a.topology = v; else return std::nullopt;
    } else if (flag == "--partitions") {
      if (const char* v = next()) a.partitions = std::atoi(v);
      else return std::nullopt;
    } else if (flag == "--clustered") {
      a.clustered = true;
    } else if (flag == "--threads") {
      if (const char* v = next()) a.threads = std::atoi(v);
      else return std::nullopt;
    } else {
      std::cerr << "unknown flag: " << flag << '\n';
      return std::nullopt;
    }
  }
  return a;
}

int report_diff(const verify::DiffStats& stats, bool replayed) {
  std::cout << "designs " << stats.designs << ", routes " << stats.routes
            << ", activity cross-checks " << stats.activity_checks
            << ", failures " << stats.failures.size() << '\n';
  for (const verify::DiffFailure& f : stats.failures) {
    std::cout << "FAIL seed " << f.spec.seed << " [" << f.stage << "] "
              << f.message << '\n';
    if (!f.report.ok()) std::cout << f.report.summary();
    if (!replayed)
      std::cout << "  replay: gcr_check --replay " << f.spec.seed << '\n';
  }
  if (stats.ok()) std::cout << "all invariants hold\n";
  return stats.ok() ? 0 : 1;
}

int run_tree_mode(const Args& a) {
  std::ifstream is(a.tree_file);
  if (!is) {
    std::cerr << "error: cannot open " << a.tree_file << '\n';
    return 2;
  }
  const ct::RoutedTree tree = io::read_routed_tree(is);
  const verify::Report rep =
      verify::verify_tree(tree, tech::TechParams{}, a.skew_bound);
  std::cout << rep.summary() << '\n';
  return rep.ok() ? 0 : 1;
}

int run_file_mode(const Args& a) {
  std::ifstream sf(a.sinks);
  if (!sf) throw std::runtime_error("cannot open " + a.sinks);
  io::SinksFile sinks = io::read_sinks(sf);
  std::ifstream rf(a.rtl);
  if (!rf) throw std::runtime_error("cannot open " + a.rtl);
  activity::RtlDescription rtl = io::read_rtl(rf);
  std::ifstream tf(a.stream);
  if (!tf) throw std::runtime_error("cannot open " + a.stream);
  activity::InstructionStream stream = io::read_stream(tf);

  core::Design design{sinks.die, std::move(sinks.sinks), std::move(rtl),
                      std::move(stream), {}};
  const core::GatedClockRouter router(std::move(design));

  core::RouterOptions opts;
  if (a.style == "buffered") opts.style = core::TreeStyle::Buffered;
  else if (a.style == "gated") opts.style = core::TreeStyle::Gated;
  else if (a.style == "reduced") opts.style = core::TreeStyle::GatedReduced;
  else throw std::runtime_error("unknown style: " + a.style);
  if (a.topology == "swcap")
    opts.topology = core::TopologyScheme::MinSwitchedCap;
  else if (a.topology == "nn")
    opts.topology = core::TopologyScheme::NearestNeighbor;
  else if (a.topology == "activity")
    opts.topology = core::TopologyScheme::ActivityOnly;
  else if (a.topology == "mmm") opts.topology = core::TopologyScheme::Mmm;
  else throw std::runtime_error("unknown topology: " + a.topology);
  opts.controller_partitions = a.partitions;
  opts.clustered = a.clustered;
  opts.num_threads = a.threads;
  opts.skew_bound = a.skew_bound;

  const core::RouterResult result = router.route(opts);
  const verify::Report rep = verify::verify_result(router, opts, result);
  std::cout << rep.summary() << '\n';
  return rep.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> parsed = parse(argc, argv);
  if (!parsed) {
    usage();
    return 2;
  }
  const Args& a = *parsed;
  try {
    if (!a.tree_file.empty()) return run_tree_mode(a);
    if (!a.sinks.empty() || !a.rtl.empty() || !a.stream.empty()) {
      if (a.sinks.empty() || a.rtl.empty() || a.stream.empty()) {
        usage();
        return 2;
      }
      return run_file_mode(a);
    }
    if (a.replay) {
      verify::DiffOptions opts;
      opts.explicit_seeds = {*a.replay};
      opts.dump_dir = a.dump_dir;
      opts.log = &std::cerr;
      return report_diff(verify::run_differential(opts), true);
    }
    if (a.random_designs > 0) {
      verify::DiffOptions opts;
      opts.num_designs = a.random_designs;
      opts.seed = a.seed;
      opts.dump_dir = a.dump_dir;
      if (a.verbose) opts.log = &std::cerr;
      return report_diff(verify::run_differential(opts), false);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  usage();
  return 2;
}

/// \file gcr_check.cpp
/// Verification front end: run the gcr::verify invariant checker, the
/// differential/metamorphic driver and the gcr::guard fault-injection
/// harness from the command line.
///
/// Modes:
///   gcr_check --random N [--seed S] [--dump DIR] [--verbose]
///       route N randomized designs through every topology scheme and
///       cross-check against the oracles; nonzero exit on any violation.
///   gcr_check --replay SEED|ARTIFACT.json [--dump DIR]
///       re-run one failing design, either by the seed a CI log recorded or
///       straight from the JSON artifact a failing run dumped.
///   gcr_check --tree FILE [--skew-bound B]
///       structural/geometric/electrical invariants of a routed-tree dump
///       (io/tree_io.h format, e.g. from gcr_route --tree).
///   gcr_check --sinks F --rtl F --stream F [route options]
///       route one design from files and verify the full result.
///   gcr_check --faults [--seed S] [--verbose]
///       seeded fault-injection sweep: parse generated designs through
///       truncated/failing streams and with the arena/lexer fault injector
///       armed; every injected fault must surface as a structured
///       diagnostic, never a crash (docs/robustness.md).
///   gcr_check --index-diff N [--seed S] [--dump DIR] [--verbose]
///       partner-index differential: N random designs, every greedy
///       TopologyScheme x {flat, clustered} x {1, 4 threads} routed with
///       the dynamic partner index on and off; the trees must be
///       bit-identical (docs/ALGORITHMS.md).
///   gcr_check --eco-diff N [--seed S] [--dump DIR] [--verbose]
///       incremental-ECO differential: N random designs with random
///       deltas (moves/removals/adds/stream swaps); every scheme's
///       eco::route_incremental result must verify clean, preserve
///       out-of-cone nodes bit-identically, stay deterministic across
///       thread counts, and match a from-scratch route exactly or within
///       the documented switched-cap bound (docs/incremental.md).
///
/// Exit codes: 0 ok, 1 usage, 2 invalid input, 3 resource/deadline,
/// 4 internal error / invariant violation / harness failure.

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/router.h"
#include "guard/fault.h"
#include "guard/postmortem.h"
#include "guard/status.h"
#include "guard/validate.h"
#include "io/text_io.h"
#include "io/tree_io.h"
#include "log/logger.h"
#include "verify/differential.h"
#include "verify/generator.h"
#include "verify/invariants.h"

using namespace gcr;

namespace {

struct Args {
  int random_designs = 0;
  int index_diff_designs = 0;
  int eco_diff_designs = 0;
  std::uint64_t seed = 2026;
  std::string replay;  // decimal seed or artifact path
  std::string dump_dir;
  bool verbose = false;
  bool faults = false;
  std::string tree_file;
  double skew_bound = 0.0;
  std::string sinks, rtl, stream;
  std::string style = "reduced";
  std::string topology = "swcap";
  int partitions = 1;
  bool clustered = false;
  int threads = 0;
  std::string log_json;   // JSONL event log ("" = GCR_LOG env or none)
  std::string log_level;  // runtime floor ("" = GCR_LOG_LEVEL env or info)
};

void usage() {
  std::cerr
      << "usage: gcr_check --random N [--seed S] [--dump DIR] [--verbose]\n"
         "       gcr_check --index-diff N [--seed S] [--dump DIR] [--verbose]\n"
         "       gcr_check --eco-diff N [--seed S] [--dump DIR] [--verbose]\n"
         "       gcr_check --replay SEED|ARTIFACT.json [--dump DIR]\n"
         "       gcr_check --tree FILE [--skew-bound B]\n"
         "       gcr_check --sinks F --rtl F --stream F [options]\n"
         "       gcr_check --faults [--seed S] [--verbose]\n"
         "options (file mode):\n"
         "  --style buffered|gated|reduced   tree style (default reduced)\n"
         "  --topology swcap|nn|activity|mmm topology scheme\n"
         "  --partitions K                   distributed controllers\n"
         "  --clustered                      two-level construction\n"
         "  --threads N                      topology-build worker threads\n"
         "  --skew-bound PS                  skew budget (0 = exact)\n"
         "  --log-json FILE                  structured gcr.event JSONL log\n"
         "                                   (also via GCR_LOG=FILE)\n"
         "  --log-level L                    trace|debug|info|warn|error|off\n"
         "exit codes: 0 ok, 1 usage, 2 invalid input, 3 resource/deadline,\n"
         "            4 internal error or invariant violation\n";
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (flag == "--random") {
      if (const char* v = next()) a.random_designs = std::atoi(v);
      else return std::nullopt;
    } else if (flag == "--index-diff") {
      if (const char* v = next()) a.index_diff_designs = std::atoi(v);
      else return std::nullopt;
    } else if (flag == "--eco-diff") {
      if (const char* v = next()) a.eco_diff_designs = std::atoi(v);
      else return std::nullopt;
    } else if (flag == "--seed") {
      if (const char* v = next()) a.seed = std::strtoull(v, nullptr, 10);
      else return std::nullopt;
    } else if (flag == "--replay") {
      if (const char* v = next()) a.replay = v;
      else return std::nullopt;
    } else if (flag == "--dump") {
      if (const char* v = next()) a.dump_dir = v; else return std::nullopt;
    } else if (flag == "--verbose") {
      a.verbose = true;
    } else if (flag == "--faults") {
      a.faults = true;
    } else if (flag == "--tree") {
      if (const char* v = next()) a.tree_file = v; else return std::nullopt;
    } else if (flag == "--skew-bound") {
      if (const char* v = next()) a.skew_bound = std::atof(v);
      else return std::nullopt;
    } else if (flag == "--sinks") {
      if (const char* v = next()) a.sinks = v; else return std::nullopt;
    } else if (flag == "--rtl") {
      if (const char* v = next()) a.rtl = v; else return std::nullopt;
    } else if (flag == "--stream") {
      if (const char* v = next()) a.stream = v; else return std::nullopt;
    } else if (flag == "--style") {
      if (const char* v = next()) a.style = v; else return std::nullopt;
    } else if (flag == "--topology") {
      if (const char* v = next()) a.topology = v; else return std::nullopt;
    } else if (flag == "--partitions") {
      if (const char* v = next()) a.partitions = std::atoi(v);
      else return std::nullopt;
    } else if (flag == "--clustered") {
      a.clustered = true;
    } else if (flag == "--threads") {
      if (const char* v = next()) a.threads = std::atoi(v);
      else return std::nullopt;
    } else if (flag == "--log-json") {
      if (const char* v = next()) a.log_json = v; else return std::nullopt;
    } else if (flag == "--log-level") {
      if (const char* v = next()) a.log_level = v; else return std::nullopt;
    } else {
      std::cerr << "unknown flag: " << flag << '\n';
      return std::nullopt;
    }
  }
  return a;
}

/// CLI logger bring-up (same contract as gcr_route): flags override the
/// GCR_LOG / GCR_LOG_LEVEL environment; `debug` lowers both the runtime
/// floor and the human stderr floor so per-design verify.* events show.
bool init_cli_logger(const std::string& log_json, const std::string& log_level,
                     bool debug) {
  gcr::log::Options lopts;
  std::string level = log_level;
  if (level.empty())
    if (const char* env = std::getenv("GCR_LOG_LEVEL")) level = env;
  if (!level.empty()) {
    if (const auto l = gcr::log::parse_level(level)) lopts.level = *l;
  }
  if (debug && static_cast<int>(lopts.level) >
                   static_cast<int>(gcr::log::Level::Debug))
    lopts.level = gcr::log::Level::Debug;
  lopts.stderr_level =
      debug ? gcr::log::Level::Debug : gcr::log::Level::Warn;
  lopts.json_path = log_json;
  if (lopts.json_path.empty())
    if (const char* env = std::getenv("GCR_LOG")) lopts.json_path = env;
  const bool ok = gcr::log::Logger::instance().init(std::move(lopts));
  gcr::log::install_guard_bridge();
  return ok;
}

/// Drains and closes the logger on every exit path out of main.
struct LogScope {
  ~LogScope() {
    gcr::log::remove_guard_bridge();
    gcr::log::Logger::instance().shutdown();
  }
};

int report_diff(const verify::DiffStats& stats, bool replayed) {
  std::cout << "designs " << stats.designs << ", routes " << stats.routes
            << ", activity cross-checks " << stats.activity_checks
            << ", failures " << stats.failures.size() << '\n';
  for (const verify::DiffFailure& f : stats.failures) {
    std::cout << "FAIL seed " << f.spec.seed << " [" << f.stage << "] "
              << f.message << '\n';
    if (!f.report.ok()) std::cout << f.report.summary();
    if (!replayed)
      std::cout << "  replay: gcr_check --replay " << f.spec.seed << '\n';
  }
  if (stats.ok()) std::cout << "all invariants hold\n";
  // A failed cross-check means what the tool verified is broken: internal.
  return stats.ok() ? guard::kExitOk : guard::kExitInternal;
}

int run_tree_mode(const Args& a) {
  std::ifstream is(a.tree_file);
  if (!is) {
    GCR_LOG_ERROR("check.io").msg("cannot open " + a.tree_file);
    return guard::kExitInvalidInput;
  }
  guard::Diag diag;
  const std::optional<ct::RoutedTree> tree =
      io::read_routed_tree(is, diag, a.tree_file);
  // Parse diagnostics already reached stderr + the event log through the
  // guard bridge as they were reported.
  if (!tree) return diag.exit_code();
  const verify::Report rep =
      verify::verify_tree(*tree, tech::TechParams{}, a.skew_bound);
  std::cout << rep.summary() << '\n';
  return rep.ok() ? guard::kExitOk : guard::kExitInternal;
}

int run_file_mode(const Args& a) {
  guard::Diag diag;
  std::ifstream sf(a.sinks);
  if (!sf) diag.error(guard::Code::Io, "cannot open " + a.sinks);
  std::optional<io::SinksFile> sinks =
      sf ? io::read_sinks(sf, diag, a.sinks) : std::nullopt;
  std::ifstream rf(a.rtl);
  if (!rf) diag.error(guard::Code::Io, "cannot open " + a.rtl);
  std::optional<activity::RtlDescription> rtl =
      rf ? io::read_rtl(rf, diag, a.rtl) : std::nullopt;
  std::ifstream tf(a.stream);
  if (!tf) diag.error(guard::Code::Io, "cannot open " + a.stream);
  std::optional<activity::InstructionStream> stream =
      tf ? io::read_stream(tf, diag, a.stream) : std::nullopt;
  // Parse/validate diagnostics flow through the guard bridge; no
  // diag.print side channel.
  if (!sinks || !rtl || !stream) return diag.exit_code();

  core::Design design{sinks->die, std::move(sinks->sinks), std::move(*rtl),
                      std::move(*stream), {}};
  // Strict semantic validation before the router (and its analyzer, which
  // indexes by raw ids) ever sees the design.
  if (!guard::validate_design(design, diag)) return diag.exit_code();
  const core::GatedClockRouter router(std::move(design));

  core::RouterOptions opts;
  if (a.style == "buffered") opts.style = core::TreeStyle::Buffered;
  else if (a.style == "gated") opts.style = core::TreeStyle::Gated;
  else if (a.style == "reduced") opts.style = core::TreeStyle::GatedReduced;
  else {
    GCR_LOG_ERROR("cli.bad_flag").kv("flag", "--style").kv("value", a.style);
    return guard::kExitUsage;
  }
  if (a.topology == "swcap")
    opts.topology = core::TopologyScheme::MinSwitchedCap;
  else if (a.topology == "nn")
    opts.topology = core::TopologyScheme::NearestNeighbor;
  else if (a.topology == "activity")
    opts.topology = core::TopologyScheme::ActivityOnly;
  else if (a.topology == "mmm") opts.topology = core::TopologyScheme::Mmm;
  else {
    GCR_LOG_ERROR("cli.bad_flag")
        .kv("flag", "--topology")
        .kv("value", a.topology);
    return guard::kExitUsage;
  }
  opts.controller_partitions = a.partitions;
  opts.clustered = a.clustered;
  opts.num_threads = a.threads;
  opts.skew_bound = a.skew_bound;

  const core::RouterResult result = router.route(opts);
  const verify::Report rep = verify::verify_result(router, opts, result);
  std::cout << rep.summary() << '\n';
  return rep.ok() ? guard::kExitOk : guard::kExitInternal;
}

// ---------------------------------------------------------------------------
// Fault-injection harness (--faults).

/// One reference payload in a known text format.
struct Payload {
  const char* name;
  std::string text;
};

/// Parse `text` through the matching reader into `diag`; which parser runs
/// is picked by the payload name.
void parse_payload(const Payload& p, std::istream& is, guard::Diag& diag) {
  if (std::strcmp(p.name, "sinks") == 0) {
    (void)io::read_sinks(is, diag, p.name);
  } else if (std::strcmp(p.name, "rtl") == 0) {
    (void)io::read_rtl(is, diag, p.name);
  } else if (std::strcmp(p.name, "stream") == 0) {
    (void)io::read_stream(is, diag, p.name);
  } else {
    (void)io::read_routed_tree(is, diag, p.name);
  }
}

/// Disarm the global injector on every exit path of the harness.
struct DisarmOnExit {
  ~DisarmOnExit() { guard::FaultInjector::global().disarm(); }
};

int run_faults_mode(std::uint64_t seed, bool verbose) {
  // The sweeps below report thousands of *intentional* diagnostics; with
  // the guard bridge live each one would become a warn/error event and a
  // stderr line. Detach the hook for the duration and restore it on exit
  // so only the harness's own findings reach the log.
  const guard::DiagHook prev_hook = guard::set_diag_hook(nullptr);
  struct RestoreHook {
    guard::DiagHook prev;
    ~RestoreHook() { guard::set_diag_hook(prev); }
  } restore_hook{prev_hook};

  // Reference payloads: a generated design's three text files plus a small
  // routed tree, all written by the library's own writers so every byte
  // offset is a legal cut point of a valid file.
  verify::DesignSpec spec = verify::random_spec(seed);
  if (spec.num_sinks < 24) spec.num_sinks = 24;  // keep payloads multi-line
  const core::Design design = verify::generate_design(spec);

  std::vector<Payload> payloads;
  {
    std::ostringstream os;
    io::write_sinks(os, design.die, design.sinks);
    payloads.push_back({"sinks", os.str()});
  }
  {
    std::ostringstream os;
    io::write_rtl(os, design.rtl);
    payloads.push_back({"rtl", os.str()});
  }
  {
    std::ostringstream os;
    io::write_stream(os, design.stream);
    payloads.push_back({"stream", os.str()});
  }
  {
    core::Design copy = design;
    const core::GatedClockRouter router(std::move(copy));
    core::RouterOptions opts;
    opts.style = core::TreeStyle::Gated;
    const core::RouterResult r = router.route(opts);
    std::ostringstream os;
    io::write_routed_tree(os, r.tree);
    payloads.push_back({"tree", os.str()});
  }

  std::uint64_t trials = 0;    // parse attempts under an injected fault
  std::uint64_t points = 0;    // injection points actually exercised
  std::uint64_t fired = 0;     // faults that fired
  std::uint64_t crashes = 0;   // exceptions escaping a hardened parser
  const auto crash = [&](const char* kind, const Payload& p, std::size_t at,
                         const char* what) {
    ++crashes;
    GCR_LOG_ERROR("faults.crash")
        .kv("kind", kind)
        .kv("payload", p.name)
        .kv("at", static_cast<std::uint64_t>(at))
        .msg(what);
  };

  // Sweep 1+2: short reads. Cut each payload at evenly spaced byte offsets;
  // Truncate models a file that simply ends, Fail models a device error
  // mid-read (badbit). Both must come back as diagnostics.
  constexpr int kCuts = 25;
  for (const Payload& p : payloads) {
    for (const auto mode : {guard::ShortReadStreambuf::Mode::Truncate,
                            guard::ShortReadStreambuf::Mode::Fail}) {
      for (int k = 0; k < kCuts; ++k) {
        const std::size_t cut = p.text.size() * static_cast<std::size_t>(k) /
                                static_cast<std::size_t>(kCuts);
        guard::ShortReadStream is(p.text, cut, mode);
        guard::Diag diag;
        ++trials;
        ++points;
        try {
          parse_payload(p, is, diag);
        } catch (const std::exception& e) {
          crash(mode == guard::ShortReadStreambuf::Mode::Fail ? "short-read"
                                                              : "truncate",
                p, cut, e.what());
        }
        if (is.tripped()) {
          ++fired;
          if (mode == guard::ShortReadStreambuf::Mode::Fail &&
              !diag.has_code(guard::Code::Io))
            crash("short-read", p, cut,
                  "injected stream failure not reported as GCR_E_IO");
        }
      }
    }
  }

  // Sweep 3: deterministic nth-visit faults at the arena/lexer fault
  // points. Every fired fault must surface as GCR_E_RESOURCE or GCR_E_IO.
  guard::FaultInjector& inj = guard::FaultInjector::global();
  const DisarmOnExit disarm;
  constexpr std::uint64_t kNth = 48;
  for (std::uint64_t nth = 1; nth <= kNth; ++nth) {
    for (const Payload& p : payloads) {
      inj.arm({seed + nth, nth, 0.0});
      std::istringstream is(p.text);
      guard::Diag diag;
      ++trials;
      try {
        parse_payload(p, is, diag);
      } catch (const std::exception& e) {
        crash("inject-nth", p, nth, e.what());
      }
      points += inj.points_visited();
      if (inj.faults_fired() > 0) {
        ++fired;
        if (!diag.has_code(guard::Code::Resource) &&
            !diag.has_code(guard::Code::Io))
          crash("inject-nth", p, nth,
                "injected fault produced no resource/io diagnostic");
      }
    }
  }

  // Sweep 4: Bernoulli faults at a few probabilities -- the soak shape the
  // deterministic sweep cannot produce (multiple faults in one parse).
  for (const double prob : {0.02, 0.1, 0.5}) {
    for (const Payload& p : payloads) {
      inj.arm({seed ^ 0x9e3779b97f4a7c15ULL, 0, prob});
      std::istringstream is(p.text);
      guard::Diag diag;
      ++trials;
      try {
        parse_payload(p, is, diag);
      } catch (const std::exception& e) {
        crash("inject-prob", p, static_cast<std::size_t>(prob * 100),
              e.what());
      }
      points += inj.points_visited();
      fired += inj.faults_fired() > 0 ? 1 : 0;
    }
  }
  inj.disarm();

  if (verbose) {
    for (const Payload& p : payloads) {
      GCR_LOG_DEBUG("faults.payload")
          .kv("name", p.name)
          .kv("bytes", static_cast<std::uint64_t>(p.text.size()));
    }
  }

  // Every injected fault left a FaultHit event in the flight recorder;
  // dump the tail so a CI failure in this harness comes with the exact
  // fault sequence that led up to it (and CI asserts the file exists).
  {
    const std::string fr = "gcr_check_faults.flightrec.json";
    if (guard::postmortem_dump(fr)) {
      GCR_LOG_WARN("faults.flightrec").kv("path", fr);
    }
  }
  GCR_LOG_INFO("faults.summary")
      .kv("trials", trials)
      .kv("points", points)
      .kv("fired", fired)
      .kv("crashes", crashes);
  std::cout << "fault injection: " << trials << " trials, " << points
            << " injection points, " << fired << " faults fired, " << crashes
            << " crashes\n";
  if (crashes > 0) return guard::kExitInternal;
  if (points < 200) {
    GCR_LOG_ERROR("faults.coverage")
        .msg("fault harness exercised fewer than 200 injection points");
    return guard::kExitInternal;
  }
  std::cout << "all injected faults surfaced as diagnostics\n";
  return guard::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> parsed = parse(argc, argv);
  if (!parsed) {
    usage();
    return guard::kExitUsage;
  }
  const Args& a = *parsed;
  // Replay is an interactive diagnosis loop: per-design debug events are
  // the whole point, so it gets the verbose floor automatically.
  const bool debug_floor = a.verbose || !a.replay.empty();
  LogScope log_scope;
  if (!init_cli_logger(a.log_json, a.log_level, debug_floor)) {
    GCR_LOG_ERROR("cli.log_open_failed").kv("path", a.log_json);
  }
  try {
    if (a.faults) return run_faults_mode(a.seed, a.verbose);
    if (!a.tree_file.empty()) return run_tree_mode(a);
    if (!a.sinks.empty() || !a.rtl.empty() || !a.stream.empty()) {
      if (a.sinks.empty() || a.rtl.empty() || a.stream.empty()) {
        usage();
        return guard::kExitUsage;
      }
      return run_file_mode(a);
    }
    if (!a.replay.empty()) {
      std::uint64_t seed = 0;
      bool is_seed = !a.replay.empty();
      for (const char c : a.replay)
        if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
          is_seed = false;
          break;
        }
      if (is_seed) {
        seed = std::strtoull(a.replay.c_str(), nullptr, 10);
      } else {
        std::ifstream is(a.replay);
        if (!is) {
          GCR_LOG_ERROR("check.io")
              .msg("cannot open replay artifact " + a.replay);
          return guard::kExitInvalidInput;
        }
        const guard::Result<verify::DesignSpec> spec =
            verify::load_design_artifact(is, a.replay);
        if (!spec) {
          GCR_LOG_ERROR("check.replay_artifact")
              .msg(spec.status().to_string());
          return guard::exit_code_for(spec.status().code);
        }
        seed = spec.value().seed;
        GCR_LOG_INFO("check.replay")
            .kv("artifact", a.replay)
            .kv("seed", seed);
      }
      verify::DiffOptions opts;
      opts.explicit_seeds = {seed};
      opts.dump_dir = a.dump_dir;
      return report_diff(verify::run_differential(opts), true);
    }
    if (a.index_diff_designs > 0) {
      verify::IndexDiffOptions opts;
      opts.num_designs = a.index_diff_designs;
      opts.seed = a.seed;
      opts.dump_dir = a.dump_dir;
      return report_diff(verify::run_index_differential(opts), false);
    }
    if (a.eco_diff_designs > 0) {
      verify::EcoDiffOptions opts;
      opts.num_designs = a.eco_diff_designs;
      opts.seed = a.seed;
      opts.dump_dir = a.dump_dir;
      return report_diff(verify::run_eco_differential(opts), false);
    }
    if (a.random_designs > 0) {
      verify::DiffOptions opts;
      opts.num_designs = a.random_designs;
      opts.seed = a.seed;
      opts.dump_dir = a.dump_dir;
      return report_diff(verify::run_differential(opts), false);
    }
  } catch (const guard::GuardError& e) {
    GCR_LOG_ERROR("cli.guard_error").msg(e.status().to_string());
    return guard::exit_code_for(e.status().code);
  } catch (const std::exception& e) {
    GCR_LOG_ERROR("cli.internal_error").msg(e.what());
    return guard::kExitInternal;
  }
  usage();
  return guard::kExitUsage;
}

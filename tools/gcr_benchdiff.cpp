/// \file gcr_benchdiff.cpp
/// Compare two sets of `BENCH_*.json` bench reports (perf/diff.h) or
/// validate reports against the v2 schema.
///
/// Usage:
///   gcr_benchdiff OLD NEW [--threshold 5%] [--noise-mads K] [--report-only]
///   gcr_benchdiff --validate FILE...
///
/// OLD and NEW are directories holding `BENCH_*.json` sidecars (paired by
/// file name) or two individual report files. A benchmark regresses only
/// when its median slows by more than the threshold AND by more than K MADs
/// of either run's repetition scatter -- see perf/diff.h.
///
/// Exit codes follow the shared CLI contract (docs/robustness.md):
/// 0 no regression (or --report-only / all files valid), 1 usage,
/// 2 unreadable or invalid report files, 4 regression found.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "log/logger.h"
#include "obs/json.h"
#include "perf/diff.h"
#include "prof/report.h"

namespace fs = std::filesystem;
using namespace gcr;

namespace {

/// Same default posture as gcr_bench: Warn floor, env opt-in via
/// GCR_LOG / GCR_LOG_LEVEL; diagnostics travel the guard bridge + logger.
struct LogScope {
  LogScope() {
    gcr::log::Options lopts;
    lopts.level = gcr::log::Level::Warn;
    if (const char* env = std::getenv("GCR_LOG_LEVEL"))
      if (const auto l = gcr::log::parse_level(env)) lopts.level = *l;
    lopts.stderr_level = gcr::log::Level::Warn;
    if (const char* env = std::getenv("GCR_LOG")) lopts.json_path = env;
    (void)gcr::log::Logger::instance().init(std::move(lopts));
    gcr::log::install_guard_bridge();
  }
  ~LogScope() {
    gcr::log::remove_guard_bridge();
    gcr::log::Logger::instance().shutdown();
  }
};

std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

/// BENCH_*.json files directly in `dir`, sorted by file name.
std::vector<fs::path> report_files(const fs::path& dir) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json")
      out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// "5%" -> 0.05, "0.05" -> 0.05; nullopt on junk.
std::optional<double> parse_threshold(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return std::nullopt;
  if (*end == '%') {
    v /= 100.0;
    ++end;
  }
  if (*end != '\0' || v < 0.0) return std::nullopt;
  return v;
}

void usage() {
  std::cerr
      << "usage: gcr_benchdiff OLD NEW [--threshold P%] [--noise-mads K]"
         " [--min-delta MS] [--report-only]\n"
         "       gcr_benchdiff --validate FILE...\n"
         "OLD/NEW: directories of BENCH_*.json sidecars, or two files.\n"
         "exit codes: 0 ok, 1 usage, 2 bad report file, 4 regression\n";
}

int validate_mode(const std::vector<std::string>& files) {
  int bad = 0;
  for (const std::string& f : files) {
    const std::optional<std::string> text = read_file(f);
    if (!text) {
      GCR_LOG_ERROR("benchdiff.invalid_report").kv("file", f).msg("cannot read");
      ++bad;
      continue;
    }
    const std::optional<obs::json::Value> doc = obs::json::parse(*text);
    if (!doc) {
      GCR_LOG_ERROR("benchdiff.invalid_report")
          .kv("file", f)
          .msg("not valid JSON");
      ++bad;
      continue;
    }
    // Dispatch on the document's own "schema" field so bench reports and
    // gcr.profile_report sidecars ride the same --validate invocation; an
    // unknown or missing schema falls through to the bench validator, whose
    // first problem names the schema mismatch.
    const obs::json::Value* schema =
        doc->is_object() ? doc->find("schema") : nullptr;
    const bool is_profile = schema && schema->is_string() &&
                            schema->as_string() == "gcr.profile_report";
    const std::vector<std::string> problems =
        is_profile ? prof::validate_profile_report(*doc)
                   : perf::validate_bench_report(*doc);
    if (problems.empty()) {
      // Valid shape; still surface hygiene warnings (a "-dirty" fingerprint
      // means no commit reproduces the numbers -- fine for a local run, a
      // bug in a committed baseline).
      std::cout << f << ": ok\n";
      for (const std::string& w : perf::report_fingerprint_warnings(*doc))
        GCR_LOG_WARN("benchdiff.fingerprint").kv("file", f).msg(w);
    } else {
      for (const std::string& p : problems)
        GCR_LOG_ERROR("benchdiff.invalid_report").kv("file", f).msg(p);
      ++bad;
    }
  }
  return bad > 0 ? 2 : 0;  // malformed report files are invalid input
}

std::optional<perf::LoadedReport> load(const fs::path& p) {
  const std::optional<std::string> text = read_file(p);
  if (!text) {
    GCR_LOG_ERROR("benchdiff.invalid_report")
        .kv("file", p.string())
        .msg("cannot read");
    return std::nullopt;
  }
  std::string error;
  std::optional<perf::LoadedReport> r = perf::load_bench_report(*text, &error);
  if (!r) {
    GCR_LOG_ERROR("benchdiff.invalid_report").kv("file", p.string()).msg(error);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  LogScope log_scope;
  std::vector<std::string> positional;
  perf::DiffOptions opts;
  bool report_only = false;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--threshold" && i + 1 < argc) {
      const std::optional<double> t = parse_threshold(argv[++i]);
      if (!t) {
        std::cerr << "bad threshold: " << argv[i] << '\n';
        return 1;
      }
      opts.threshold = *t;
    } else if (flag == "--noise-mads" && i + 1 < argc) {
      opts.noise_mads = std::atof(argv[++i]);
    } else if (flag == "--min-delta" && i + 1 < argc) {
      opts.min_delta_ms = std::atof(argv[++i]);
    } else if (flag == "--report-only") {
      report_only = true;
    } else if (flag == "--validate") {
      validate = true;
    } else if (!flag.empty() && flag[0] == '-') {
      usage();
      return 1;
    } else {
      positional.push_back(flag);
    }
  }

  if (validate) {
    if (positional.empty()) {
      usage();
      return 1;
    }
    return validate_mode(positional);
  }

  if (positional.size() != 2) {
    usage();
    return 1;
  }
  const fs::path old_path = positional[0];
  const fs::path new_path = positional[1];

  // Pair up the reports: directory mode matches by file name, file mode
  // compares the two files directly.
  std::vector<std::pair<fs::path, fs::path>> pairs;
  if (fs::is_directory(old_path) && fs::is_directory(new_path)) {
    const std::vector<fs::path> old_files = report_files(old_path);
    if (old_files.empty()) {
      GCR_LOG_ERROR("benchdiff.invalid_report")
          .kv("file", old_path.string())
          .msg("no BENCH_*.json files");
      return 2;
    }
    for (const fs::path& of : old_files) {
      const fs::path nf = new_path / of.filename();
      if (fs::exists(nf)) {
        pairs.emplace_back(of, nf);
      } else {
        std::cout << of.filename().string() << ": missing on the new side\n";
      }
    }
    for (const fs::path& nf : report_files(new_path))
      if (!fs::exists(old_path / nf.filename()))
        std::cout << nf.filename().string() << ": new report (no baseline)\n";
  } else if (fs::is_regular_file(old_path) && fs::is_regular_file(new_path)) {
    pairs.emplace_back(old_path, new_path);
  } else {
    GCR_LOG_ERROR("benchdiff.invalid_report")
        .msg("OLD and NEW must both be directories or both files");
    return 2;
  }

  int regressions = 0;
  bool io_error = false;
  for (const auto& [of, nf] : pairs) {
    const std::optional<perf::LoadedReport> older = load(of);
    const std::optional<perf::LoadedReport> newer = load(nf);
    if (!older || !newer) {
      io_error = true;
      continue;
    }
    std::cout << "== " << of.filename().string() << "  (old " << older->git_sha
              << " -> new " << newer->git_sha << ") ==\n";
    const perf::DiffReport d = perf::diff_reports(*older, *newer, opts);
    perf::print_diff(std::cout, d);
    regressions += d.regressions;
  }
  if (io_error) return 2;
  if (regressions > 0) {
    std::cout << (report_only
                      ? "regressions found (report-only: exit 0)\n"
                      : "regressions found\n");
    return report_only ? 0 : 4;  // a regression means the checked build broke
  }
  return 0;
}

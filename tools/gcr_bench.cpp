/// \file gcr_bench.cpp
/// Statistical benchmark driver for the library's hot paths. Benchmarks are
/// registered under six groups -- activity, topology, zskew, reduction,
/// route, route_par -- and run with warmup plus adaptive repetitions until the median
/// stabilizes (perf/runner.h). The heap hook is on by default, so every
/// result carries allocations/bytes per repetition next to its timing
/// statistics, and each group writes a `BENCH_<group>.json` v2 sidecar
/// (perf/report.h) suitable for `gcr_benchdiff`.
///
/// Usage:
///   gcr_bench [--quick] [--filter SUBSTR] [--out DIR] [--list] [--no-mem]
///             [--threads N] [--profile]
///
///   --quick      small sizes + relaxed stabilization (also via
///                GCR_BENCH_QUICK=1); the CI perf-smoke tier
///   --filter     run only benchmarks whose name contains SUBSTR
///   --out DIR    sidecar directory (created if missing; default ".")
///   --list       print registered benchmark names and exit
///   --no-mem     leave the allocation hook off (timings only)
///   --threads N  route_par sweeps widths {1, N} instead of the default set
///   --profile    also write a `PROF_<group>.json` gcr.profile_report per
///                group (sampling profiler + hw counters + pool telemetry);
///                the PROF_ prefix keeps the sidecars out of gcr_benchdiff's
///                BENCH_*.json directory glob

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "activity/analyzer.h"
#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "clocktree/zskew.h"
#include "core/router.h"
#include "cts/clustered.h"
#include "cts/greedy.h"
#include "eco/delta.h"
#include "eco/incremental.h"
#include "gating/gate_reduction.h"
#include "log/logger.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "io/reqs_io.h"
#include "io/text_io.h"
#include "perf/memhook.h"
#include "perf/report.h"
#include "perf/runner.h"
#include "serve/service.h"
#include "prof/hwcounters.h"
#include "prof/report.h"
#include "prof/sampler.h"
#include "tech/params.h"

using namespace gcr;

namespace {

/// Evaluation workload in the spirit of bench/common.h, sized down so setup
/// does not dwarf the timed section on small instances.
benchdata::Workload make_workload(const benchdata::RBench& rb, int k,
                                  int stream_length, std::uint64_t seed) {
  benchdata::WorkloadSpec w;
  w.num_instructions = k;
  w.num_clusters = std::max(16, rb.spec.num_sinks / 32);
  w.target_activity = 0.4;
  w.in_cluster_use = 0.9;
  w.locality = 0.85;
  w.stream_length = stream_length;
  w.seed = seed;
  return benchdata::generate_workload(w, rb.sinks, rb.die);
}

benchdata::RBench synthetic_rbench(int n, std::uint64_t seed) {
  // Die side tracks sqrt(N) so sink density matches the published r1..r5.
  const double side = 1200.0 * std::sqrt(static_cast<double>(n));
  return benchdata::generate_rbench(
      benchdata::RBenchSpec{"s", n, side, 0.005, 0.08, seed});
}

struct Instance {
  benchdata::RBench rb;
  core::Design design;
};

std::shared_ptr<const Instance> make_instance(int n, std::uint64_t seed) {
  benchdata::RBench rb = synthetic_rbench(n, seed);
  benchdata::Workload wl = make_workload(rb, 32, 8000, seed);
  core::Design d{rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream),
                 {}};
  return std::make_shared<Instance>(Instance{std::move(rb), std::move(d)});
}

using Groups = std::map<std::string, perf::Runner>;

// --- activity: table construction and probability queries ------------------

void register_activity(Groups& g, bool quick) {
  for (const int k : quick ? std::vector<int>{32} : std::vector<int>{32, 128}) {
    g["activity"].add(
        "activity/table_build/n=" + std::to_string(k), [k] {
          auto rb = std::make_shared<benchdata::RBench>(synthetic_rbench(64, 3));
          auto wl = std::make_shared<benchdata::Workload>(
              make_workload(*rb, k, 4000, 3));
          return [wl] {
            const activity::ActivityAnalyzer an(wl->rtl, wl->stream);
            perf::do_not_optimize(an);
          };
        });
    for (const bool transition : {false, true}) {
      const char* what = transition ? "transition_prob" : "signal_prob";
      g["activity"].add("activity/" + std::string(what) +
                            "/n=" + std::to_string(k),
                        [k, transition] {
                          auto rb = std::make_shared<benchdata::RBench>(
                              synthetic_rbench(64, 4));
                          auto wl = std::make_shared<benchdata::Workload>(
                              make_workload(*rb, k, 8000, 4));
                          auto an = std::make_shared<activity::ActivityAnalyzer>(
                              wl->rtl, wl->stream);
                          activity::ActivationMask mask(k);
                          for (int i = 0; i < k; i += 2) mask.set(i);
                          // wl stays captured: the analyzer references its
                          // rtl rather than copying it.
                          return [wl, an, mask, transition] {
                            perf::do_not_optimize(
                                transition ? an->transition_prob(mask)
                                           : an->signal_prob(mask));
                          };
                        });
    }
  }
}

// --- topology: the Eq. 3 greedy construction -------------------------------

void register_topology(Groups& g, bool quick) {
  const std::vector<int> sizes =
      quick ? std::vector<int>{64, 128} : std::vector<int>{64, 128, 256, 512};
  for (const int n : sizes) {
    g["topology"].add("topology/build/n=" + std::to_string(n), [n] {
      auto rb = std::make_shared<benchdata::RBench>(synthetic_rbench(n, 9));
      auto wl =
          std::make_shared<benchdata::Workload>(make_workload(*rb, 32, 4000, 9));
      auto an = std::make_shared<activity::ActivityAnalyzer>(wl->rtl,
                                                             wl->stream);
      auto mods = std::make_shared<std::vector<int>>(cts::identity_modules(n));
      cts::BuildOptions opts;
      opts.cost = cts::MergeCost::SwitchedCapacitance;
      opts.control_point = rb->die.center();
      return [rb, wl, an, mods, opts] {
        auto r = cts::build_topology(rb->sinks, an.get(), *mods, opts);
        perf::do_not_optimize(r.topo.root());
      };
    });
  }
  if (!quick) {
    g["topology"].add("topology/clustered/n=2000", [] {
      auto rb = std::make_shared<benchdata::RBench>(synthetic_rbench(2000, 10));
      auto wl = std::make_shared<benchdata::Workload>(
          make_workload(*rb, 32, 4000, 10));
      auto an =
          std::make_shared<activity::ActivityAnalyzer>(wl->rtl, wl->stream);
      auto mods =
          std::make_shared<std::vector<int>>(cts::identity_modules(2000));
      cts::ClusterOptions copts;
      copts.build.cost = cts::MergeCost::SwitchedCapacitance;
      copts.build.control_point = rb->die.center();
      return [rb, wl, an, mods, copts] {
        auto r = cts::build_topology_clustered(rb->sinks, an.get(), *mods,
                                               copts);
        perf::do_not_optimize(r.topo.root());
      };
    });
  }
}

// --- scale: the Eq. 3 greedy on die sizes past the published r1..r5 --------
//
// The topology group pins the small-n regime; this group pins the *growth
// rate* of the partner-indexed build (docs/ALGORITHMS.md): synthetic dies
// at 3101 (r5-class), 10k and 100k sinks, one build per rep, timed with
// the default (indexed) engine. The committed baselines carry three
// n=<size> family members, so gcr_benchdiff and print_results' complexity
// fit can hold the near-linear slope, not just the absolute times. A
// 1M-sink member exists behind GCR_BENCH_SCALE_1M=1: at the runner's
// minimum rep count it costs minutes of single-core time, too much for
// the default full tier or CI's scale-smoke leg (docs/benchmarking.md).

void register_scale(Groups& g, bool quick) {
  std::vector<int> sizes =
      quick ? std::vector<int>{3101, 10000}
            : std::vector<int>{3101, 10000, 100000};
  if (const char* big = std::getenv("GCR_BENCH_SCALE_1M");
      big && *big && std::string_view(big) != "0") {
    sizes.push_back(1000000);
  }
  for (const int n : sizes) {
    g["scale"].add("scale/build/n=" + std::to_string(n), [n] {
      auto rb = std::make_shared<benchdata::RBench>(synthetic_rbench(n, 21));
      auto wl = std::make_shared<benchdata::Workload>(
          make_workload(*rb, 32, 4000, 21));
      auto an =
          std::make_shared<activity::ActivityAnalyzer>(wl->rtl, wl->stream);
      auto mods = std::make_shared<std::vector<int>>(cts::identity_modules(n));
      cts::BuildOptions opts;
      opts.cost = cts::MergeCost::SwitchedCapacitance;
      opts.control_point = rb->die.center();
      return [rb, wl, an, mods, opts] {
        auto r = cts::build_topology(rb->sinks, an.get(), *mods, opts);
        perf::do_not_optimize(r.topo.root());
      };
    });
  }
}

// --- zskew: one exact zero-skew merge (micro; the runner batches it) -------

void register_zskew(Groups& g, bool /*quick*/) {
  for (const bool gated : {false, true}) {
    g["zskew"].add(std::string("zskew/merge_") + (gated ? "gated" : "ungated"),
                   [gated] {
                     const tech::TechParams t;
                     ct::SubtreeTap a, b;
                     a.ms = geom::TiltedRect::from_point({1000.0, 2000.0});
                     a.delay = 120.0;
                     a.cap = 0.8;
                     b.ms = geom::TiltedRect::from_point({9000.0, 5000.0});
                     b.delay = 80.0;
                     b.cap = 1.1;
                     return [a, b, gated, t] {
                       const ct::MergeResult m =
                           ct::zero_skew_merge(a, gated, b, gated, t);
                       perf::do_not_optimize(m.delay);
                     };
                   });
  }
}

// --- reduction: the section 4.3 gate-removal pass --------------------------

void register_reduction(Groups& g, bool quick) {
  const std::vector<int> sizes =
      quick ? std::vector<int>{267} : std::vector<int>{267, 598};
  for (const int n : sizes) {
    g["reduction"].add("reduction/reduce_gates/n=" + std::to_string(n), [n] {
      auto inst = make_instance(n, 11);
      const core::GatedClockRouter router(inst->design);
      core::RouterOptions opts;
      opts.style = core::TreeStyle::Gated;  // fully-gated input tree
      auto res =
          std::make_shared<const core::RouterResult>(router.route(opts));
      const tech::TechParams tech;
      const gating::GateReductionParams params;
      return [res, tech, params] {
        auto gates =
            gating::reduce_gates(res->tree, res->activity.p_en, tech, params);
        perf::do_not_optimize(gates);
      };
    });
  }
}

// --- route: the full PROCEDURE GatedClockRouting flow ----------------------

void register_route(Groups& g, bool quick) {
  const std::vector<int> flat =
      quick ? std::vector<int>{64, 128} : std::vector<int>{64, 128, 267, 598};
  for (const int n : flat) {
    g["route"].add("route/reduced/n=" + std::to_string(n), [n] {
      auto inst = make_instance(n, 13);
      auto router =
          std::make_shared<const core::GatedClockRouter>(inst->design);
      return [router] {
        core::RouterOptions opts;
        opts.style = core::TreeStyle::GatedReduced;
        const core::RouterResult r = router->route(opts);
        perf::do_not_optimize(r.swcap.total_swcap());
      };
    });
  }
  if (!quick) {
    // r4/r5-scale designs route through the two-level clustered flow, as a
    // real large design would.
    for (const int n : {1903, 3101}) {
      g["route"].add("route/clustered/n=" + std::to_string(n), [n] {
        auto inst = make_instance(n, 17);
        auto router =
            std::make_shared<const core::GatedClockRouter>(inst->design);
        return [router] {
          core::RouterOptions opts;
          opts.style = core::TreeStyle::GatedReduced;
          opts.clustered = true;
          const core::RouterResult r = router->route(opts);
          perf::do_not_optimize(r.swcap.total_swcap());
        };
      });
    }
  }
}

// --- route_par: thread scaling of the parallel topology build --------------

void register_route_par(Groups& g, bool quick, int threads_override) {
  // Routed gated (no reduction pass, so the timed section is dominated by
  // the Eq. 3 greedy the pool shards); the thread sweep makes the scaling
  // visible in one sidecar. The routed tree is identical at every width
  // -- only the time may differ. Two full-tier sizes: since the indexed
  // engine (PR 7) an n=2048 front is mostly below the serial-cutover
  // threshold, so only the n=16384 rows genuinely shard work across the
  // pool; the small rows instead pin that t>1 stays free of dispatch
  // overhead.
  const std::vector<int> sizes =
      quick ? std::vector<int>{512} : std::vector<int>{2048, 16384};
  std::vector<int> widths = quick ? std::vector<int>{1, 4}
                                  : std::vector<int>{1, 2, 4};
  if (threads_override > 0) widths = {1, threads_override};
  for (const int n : sizes) {
    for (const int t : widths) {
      g["route_par"].add(
          "route_par/gated/n=" + std::to_string(n) + "/t=" + std::to_string(t),
          [n, t] {
            auto inst = make_instance(n, 19);
            auto router =
                std::make_shared<const core::GatedClockRouter>(inst->design);
            return [router, t] {
              core::RouterOptions opts;
              opts.style = core::TreeStyle::Gated;
              opts.num_threads = t;
              const core::RouterResult r = router->route(opts);
              perf::do_not_optimize(r.swcap.total_swcap());
            };
          });
    }
  }
}

// --- eco: incremental ECO re-route vs a full rebuild -----------------------

void register_eco(Groups& g, bool quick) {
  // Single-sink move: the canonical ECO. Setup routes the base design
  // once; the `move1` rows time eco::route_incremental (invalidation cone
  // + spine re-merge + re-embed) and the `rebuild` rows time a
  // from-scratch route of the *applied* design -- the cost the
  // incremental path avoids. Both use the fully-gated style so the timed
  // sections compare the same pipeline.
  const std::vector<int> sizes =
      quick ? std::vector<int>{512} : std::vector<int>{2048, 16384};
  for (const int n : sizes) {
    const auto make_delta = [](const core::Design& d) {
      eco::DesignDelta delta;
      const geom::Point c = d.die.center();
      delta.moves.push_back({0, {c.x * 0.75, c.y * 1.25}});
      return delta;
    };
    g["eco"].add("eco/move1/n=" + std::to_string(n), [n, make_delta] {
      auto inst = make_instance(n, 23);
      auto router =
          std::make_shared<const core::GatedClockRouter>(inst->design);
      core::RouterOptions opts;
      opts.style = core::TreeStyle::Gated;
      auto prev =
          std::make_shared<const core::RouterResult>(router->route(opts));
      auto delta = std::make_shared<const eco::DesignDelta>(
          make_delta(router->design()));
      return [router, prev, delta, opts] {
        const core::RouteOutcome out =
            eco::route_incremental(*router, *prev, *delta, opts);
        perf::do_not_optimize(out.result->swcap.total_swcap());
      };
    });
    g["eco"].add("eco/rebuild/n=" + std::to_string(n), [n, make_delta] {
      auto inst = make_instance(n, 23);
      const core::GatedClockRouter base(inst->design);
      auto router = std::make_shared<const core::GatedClockRouter>(
          eco::apply_delta(base.design(), make_delta(base.design())));
      return [router] {
        core::RouterOptions opts;
        opts.style = core::TreeStyle::Gated;
        const core::RouterResult r = router->route(opts);
        perf::do_not_optimize(r.swcap.total_swcap());
      };
    });
  }
}

// --- serve: batch service throughput, cache effect, admission -------------

/// Write `inst`'s design under a bench scratch dir and return a request
/// naming the files. File content is deterministic per (n, seed), so the
/// serve content-hash cache behaves identically run to run.
io::RouteRequest write_serve_design(const Instance& inst, int n,
                                    std::uint64_t seed) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "gcr_bench_serve";
  fs::create_directories(dir);
  const std::string stem =
      "d" + std::to_string(n) + "_" + std::to_string(seed);
  {
    std::ofstream os(dir / (stem + ".sinks"));
    io::write_sinks(os, inst.design.die, inst.design.sinks);
  }
  {
    std::ofstream os(dir / (stem + ".rtl"));
    io::write_rtl(os, inst.design.rtl);
  }
  {
    std::ofstream os(dir / (stem + ".stream"));
    io::write_stream(os, inst.design.stream);
  }
  io::RouteRequest req;
  req.id = stem;
  req.sinks = (dir / (stem + ".sinks")).string();
  req.rtl = (dir / (stem + ".rtl")).string();
  req.stream = (dir / (stem + ".stream")).string();
  return req;
}

/// One timed serve op: submit `batch` requests of the same design and
/// wait for all outcomes. `cold` disables the caches, so every request
/// pays file load + parse + route; warm requests pay hash + lookup only
/// (the cache-warm >= 2x cache-cold acceptance line in docs/serving.md).
void register_serve(Groups& g, bool quick) {
  const std::vector<int> sizes =
      quick ? std::vector<int>{256} : std::vector<int>{512, 2048};
  constexpr int kBatch = 8;
  for (const int n : sizes) {
    for (const bool cold : {true, false}) {
      const std::string name = std::string("serve/") +
                               (cold ? "cold" : "warm") +
                               "/n=" + std::to_string(n);
      g["serve"].add(name, [n, cold] {
        auto inst = make_instance(n, 31);
        const io::RouteRequest req = write_serve_design(*inst, n, 31);
        serve::ServeOptions sopts;
        sopts.workers = 2;
        if (cold) {
          sopts.design_cache_capacity = 0;
          sopts.result_cache_capacity = 0;
        }
        auto service = std::make_shared<serve::BatchService>(sopts);
        service->start();
        if (!cold) {  // pre-warm outside the timed section
          (void)service->submit(req);
          service->wait_idle();
          (void)service->take_outcomes();
        }
        return [service, req] {
          for (int i = 0; i < kBatch; ++i) (void)service->submit(req);
          service->wait_idle();
          perf::do_not_optimize(service->take_outcomes().size());
        };
      });
    }
  }

  // Admission-path ops/sec: a full queue with no lanes draining it, so
  // every timed submit walks the whole shed path (seq assignment, outcome
  // record, GCR_E_OVERLOAD event) and none routes.
  g["serve"].add("serve/shed/submit64", [] {
    auto inst = make_instance(64, 33);
    const io::RouteRequest req = write_serve_design(*inst, 64, 33);
    serve::ServeOptions sopts;
    sopts.queue_capacity = 1;
    auto service = std::make_shared<serve::BatchService>(sopts);
    (void)service->submit(req);  // plug the queue; lanes never start
    return [service, req] {
      for (int i = 0; i < 64; ++i) (void)service->submit(req);
      perf::do_not_optimize(service->take_outcomes().size());
    };
  });

  // Concurrent-submit stress: 4 racing submitters against 2 lanes on a
  // warm cache -- admission lock traffic plus cache lookups under real
  // contention, the --race shape of the CLI.
  const int race_n = quick ? 256 : 512;
  g["serve"].add("serve/race/n=" + std::to_string(race_n), [race_n] {
    auto inst = make_instance(race_n, 35);
    const io::RouteRequest req = write_serve_design(*inst, race_n, 35);
    serve::ServeOptions sopts;
    sopts.workers = 2;
    auto service = std::make_shared<serve::BatchService>(sopts);
    service->start();
    (void)service->submit(req);
    service->wait_idle();
    (void)service->take_outcomes();
    return [service, req] {
      std::vector<std::thread> racers;
      racers.reserve(4);
      for (int t = 0; t < 4; ++t)
        racers.emplace_back([&service, &req] {
          for (int i = 0; i < kBatch; ++i) (void)service->submit(req);
        });
      for (std::thread& t : racers) t.join();
      service->wait_idle();
      perf::do_not_optimize(service->take_outcomes().size());
    };
  });
}

void usage() {
  std::cerr << "usage: gcr_bench [--quick] [--filter SUBSTR] [--out DIR]"
               " [--list] [--no-mem] [--threads N] [--profile]\n"
               "exit codes: 0 ok, 1 usage/empty filter, 2 i/o error\n";
}

/// The bench driver runs the logger at a Warn floor by default: the
/// route benchmarks fire route.start/route.done per repetition, and
/// admitting them would put event construction inside the timed section.
/// GCR_LOG_LEVEL / GCR_LOG still opt a debugging run in.
struct LogScope {
  LogScope() {
    gcr::log::Options lopts;
    lopts.level = gcr::log::Level::Warn;
    if (const char* env = std::getenv("GCR_LOG_LEVEL"))
      if (const auto l = gcr::log::parse_level(env)) lopts.level = *l;
    lopts.stderr_level = gcr::log::Level::Warn;
    if (const char* env = std::getenv("GCR_LOG")) lopts.json_path = env;
    (void)gcr::log::Logger::instance().init(std::move(lopts));
    gcr::log::install_guard_bridge();
  }
  ~LogScope() {
    gcr::log::remove_guard_bridge();
    gcr::log::Logger::instance().shutdown();
  }
};

}  // namespace

int main(int argc, char** argv) {
  LogScope log_scope;
  perf::RunnerOptions opts = perf::RunnerOptions::from_env();
  std::string out_dir = ".";
  bool list = false;
  bool mem = true;
  bool profile = false;
  int threads_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quick") {
      opts = perf::RunnerOptions::quick_tier();
    } else if (flag == "--filter" && i + 1 < argc) {
      opts.filter = argv[++i];
    } else if (flag == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (flag == "--list") {
      list = true;
    } else if (flag == "--no-mem") {
      mem = false;
    } else if (flag == "--threads" && i + 1 < argc) {
      threads_override = std::atoi(argv[++i]);
    } else if (flag == "--profile") {
      profile = true;
    } else {
      usage();
      return 1;
    }
  }

  Groups groups;
  register_activity(groups, opts.quick);
  register_topology(groups, opts.quick);
  register_zskew(groups, opts.quick);
  register_reduction(groups, opts.quick);
  register_route(groups, opts.quick);
  register_route_par(groups, opts.quick, threads_override);
  register_eco(groups, opts.quick);
  register_scale(groups, opts.quick);
  register_serve(groups, opts.quick);

  if (list) {
    for (const auto& [group, runner] : groups)
      for (const auto& name : runner.names()) std::cout << name << '\n';
    return 0;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    GCR_LOG_ERROR("bench.io").msg("cannot create " + out_dir + ": " +
                                  ec.message());
    return 2;
  }

  if (mem && perf::memhook::available()) perf::memhook::enable();
  obs::set_metrics_enabled(true);

  int written = 0;
  for (auto& [group, runner] : groups) {
    // Fresh session + metrics per group so each sidecar's phase tree and
    // counters describe exactly that group's run.
    obs::Registry::global().reset();
    obs::Session session;
    obs::Bind bind(&session);

    prof::Sampler sampler;
    prof::HwInfo hw;
    if (profile) {
      hw = prof::enable_hw_counters();
      sampler.start();
    }

    std::cerr << "== " << group << " ==\n";
    const std::vector<perf::BenchResult> results = runner.run(opts, &std::cerr);
    if (results.empty()) {
      if (profile) {
        (void)sampler.stop();
        prof::disable_hw_counters();
      }
      continue;  // filter matched nothing in this group
    }
    perf::print_results(std::cout, results);

    const std::string path = out_dir + "/BENCH_" + group + ".json";
    std::ofstream os(path);
    if (!os) {
      GCR_LOG_ERROR("bench.io").msg("cannot open " + path);
      return 2;
    }
    perf::write_bench_report(os, group, results, opts, &session);
    std::cout << "wrote " << path << '\n';
    ++written;

    if (profile) {
      const prof::Sampler::Profile p = sampler.stop();
      const std::string ppath = out_dir + "/PROF_" + group + ".json";
      std::ofstream pos(ppath);
      if (!pos) {
        GCR_LOG_ERROR("bench.io").msg("cannot open " + ppath);
        return 2;
      }
      prof::ProfileReportOptions po;
      po.tool = "gcr_bench/" + group;
      po.profile = &p;
      po.session = &session;
      po.hw = hw;
      prof::write_profile_report(pos, po);
      prof::disable_hw_counters();
      std::cout << "wrote " << ppath << '\n';
    }
  }
  if (written == 0) {
    GCR_LOG_ERROR("bench.empty_filter")
        .msg("no benchmarks matched filter '" + opts.filter + "'");
    return 1;
  }
  return 0;
}

#include <gtest/gtest.h>

#include <random>

#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "cts/greedy.h"
#include "cts/mmm.h"

namespace gcr::cts {
namespace {

ct::SinkList random_sinks(int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 10000.0);
  std::uniform_real_distribution<double> cap(0.005, 0.1);
  ct::SinkList sinks;
  for (int i = 0; i < n; ++i)
    sinks.push_back({{coord(rng), coord(rng)}, cap(rng)});
  return sinks;
}

TEST(Mmm, BuildsValidBalancedTopology) {
  const ct::SinkList sinks = random_sinks(64, 3);
  const ct::Topology topo = build_mmm_topology(sinks);
  EXPECT_TRUE(topo.valid());
  EXPECT_EQ(topo.num_nodes(), 127);
  // Balanced bisection: depth of every leaf is exactly log2(64) = 6.
  for (int leaf = 0; leaf < 64; ++leaf) {
    int depth = 0;
    for (int id = leaf; topo.node(id).parent >= 0; id = topo.node(id).parent)
      ++depth;
    EXPECT_EQ(depth, 6) << "leaf " << leaf;
  }
}

TEST(Mmm, OddSizesStayValid) {
  for (const int n : {1, 2, 3, 5, 7, 33, 97}) {
    const ct::SinkList sinks = random_sinks(n, 100 + n);
    const ct::Topology topo = build_mmm_topology(sinks);
    EXPECT_TRUE(topo.valid()) << n;
    EXPECT_EQ(topo.num_nodes(), 2 * n - 1) << n;
  }
}

TEST(Mmm, EmbedsWithZeroSkew) {
  const ct::SinkList sinks = random_sinks(50, 9);
  const ct::Topology topo = build_mmm_topology(sinks);
  const tech::TechParams tech;
  std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()), false);
  const ct::RoutedTree tree = ct::embed(topo, sinks, gates, tech);
  const ct::DelayReport rep = ct::elmore_delays(tree, tech);
  EXPECT_LT(rep.skew(), 1e-7 * std::max(1.0, rep.max_delay));
}

TEST(Mmm, SplitsFollowGeometry) {
  // Two far-apart clusters: the root split must separate them.
  ct::SinkList sinks;
  for (int i = 0; i < 8; ++i) sinks.push_back({{100.0 * i, 0.0}, 0.02});
  for (int i = 0; i < 8; ++i)
    sinks.push_back({{100.0 * i + 50000.0, 0.0}, 0.02});
  const ct::Topology topo = build_mmm_topology(sinks);
  const ct::TreeNode& root = topo.node(topo.root());
  // Collect the leaves of one root subtree; they must all be in the same
  // cluster.
  std::vector<int> stack{root.left};
  bool cluster0 = false, cluster1 = false;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const ct::TreeNode& n = topo.node(id);
    if (n.is_leaf()) {
      (id < 8 ? cluster0 : cluster1) = true;
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  EXPECT_NE(cluster0, cluster1);  // one cluster only
}

TEST(ActivityOnlyCost, GroupsByCoactivityIgnoringDistance) {
  // Anti-correlated activity across interleaved positions: the activity
  // cost must pair by instruction, not by location.
  ct::SinkList sinks;
  for (int i = 0; i < 8; ++i) sinks.push_back({{1000.0 * i, 0.0}, 0.02});
  activity::RtlDescription rtl(2, 8);
  for (int m = 0; m < 8; ++m) rtl.add_use(m % 2, m);  // even->I0, odd->I1
  activity::InstructionStream stream;
  for (int t = 0; t < 300; ++t) stream.seq.push_back((t / 5) % 2);
  const activity::ActivityAnalyzer an(rtl, stream);

  BuildOptions opts;
  opts.cost = MergeCost::ActivityOnly;
  const auto mods = identity_modules(8);
  const BuildResult r = build_topology(sinks, &an, mods, opts);
  ASSERT_TRUE(r.topo.valid());
  // The root's children should each cover exactly one instruction.
  const ct::TreeNode& root = r.topo.node(r.topo.root());
  EXPECT_EQ(r.mask[static_cast<std::size_t>(root.left)].count(), 1);
  EXPECT_EQ(r.mask[static_cast<std::size_t>(root.right)].count(), 1);
}

}  // namespace
}  // namespace gcr::cts

#include <gtest/gtest.h>

#include "activity/analyzer.h"
#include "benchdata/paper_example.h"
#include "clocktree/embed.h"
#include "gating/controller.h"
#include "gating/gate_reduction.h"
#include "gating/swcap.h"

namespace gcr::gating {
namespace {

// ----------------------------------------------------------- controller ---

TEST(Controller, CentralizedSitsAtDieCenter) {
  const ControllerPlacement ctrl(geom::DieArea::square(1000.0), 1);
  EXPECT_EQ(ctrl.controller_for({10, 10}), (geom::Point{500, 500}));
  EXPECT_EQ(ctrl.controller_for({990, 10}), (geom::Point{500, 500}));
  EXPECT_DOUBLE_EQ(ctrl.star_length({0, 0}), 1000.0);
  EXPECT_DOUBLE_EQ(ctrl.star_length({500, 500}), 0.0);
}

TEST(Controller, FourPartitionsQuarterTheDie) {
  const ControllerPlacement ctrl(geom::DieArea::square(1000.0), 4);
  EXPECT_EQ(ctrl.num_partitions(), 4);
  EXPECT_EQ(ctrl.controller_for({10, 10}), (geom::Point{250, 250}));
  EXPECT_EQ(ctrl.controller_for({990, 10}), (geom::Point{750, 250}));
  EXPECT_EQ(ctrl.controller_for({10, 990}), (geom::Point{250, 750}));
  EXPECT_EQ(ctrl.controller_for({990, 990}), (geom::Point{750, 750}));
  // A gate at a partition corner is D/2 away in its partition metric.
  EXPECT_DOUBLE_EQ(ctrl.star_length({0, 0}), 500.0);
}

TEST(Controller, PartitionOfClampsOutsideDie) {
  const ControllerPlacement ctrl(geom::DieArea::square(100.0), 4);
  EXPECT_EQ(ctrl.partition_of({-5, -5}), 0);
  EXPECT_EQ(ctrl.partition_of({105, 105}), 3);
}

TEST(Controller, ControllerLocationsMatchPartitions) {
  const ControllerPlacement ctrl(geom::DieArea::square(400.0), 16);
  const auto locs = ctrl.controller_locations();
  ASSERT_EQ(locs.size(), 16u);
  for (const auto& c : locs) {
    EXPECT_EQ(ctrl.controller_for(c), c);  // each controller serves itself
    EXPECT_DOUBLE_EQ(ctrl.star_length(c), 0.0);
  }
}

TEST(Controller, AnalyticStarLengthShrinksAsSqrtK) {
  const geom::DieArea die = geom::DieArea::square(1000.0);
  const ControllerPlacement c1(die, 1);
  const ControllerPlacement c4(die, 4);
  const ControllerPlacement c16(die, 16);
  const double g = 100;
  EXPECT_DOUBLE_EQ(c1.analytic_total_star_length(g), g * 1000.0 / 4.0);
  EXPECT_DOUBLE_EQ(c4.analytic_total_star_length(g),
                   c1.analytic_total_star_length(g) / 2.0);
  EXPECT_DOUBLE_EQ(c16.analytic_total_star_length(g),
                   c1.analytic_total_star_length(g) / 4.0);
}

// ------------------------------------------------------- gate reduction ---

/// A hand-built 4-sink gated tree for reduction tests.
struct Fixture {
  tech::TechParams tech;
  ct::SinkList sinks = {{{0, 0}, 0.02},
                        {{2000, 0}, 0.02},
                        {{0, 2000}, 0.02},
                        {{2000, 2000}, 0.02}};
  ct::Topology topo{4};
  ct::RoutedTree full;
  std::vector<double> p_en;

  explicit Fixture(std::vector<double> probs) : p_en(std::move(probs)) {
    const int a = topo.merge(0, 1);
    const int b = topo.merge(2, 3);
    topo.merge(a, b);
    std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()), true);
    gates[static_cast<std::size_t>(topo.root())] = false;
    full = ct::embed(topo, sinks, gates, tech);
  }
};

TEST(GateReduction, StrengthZeroKeepsEveryGate) {
  Fixture f({0.3, 0.4, 0.5, 0.6, 0.6, 0.8, 1.0});
  const auto gated = reduce_gates(f.full, f.p_en, f.tech,
                                  GateReductionParams::from_strength(0.0));
  int count = 0;
  for (int id = 0; id < f.full.num_nodes(); ++id)
    count += gated[static_cast<std::size_t>(id)] ? 1 : 0;
  EXPECT_EQ(count, f.full.num_nodes() - 1);  // all but the root
}

TEST(GateReduction, Rule1RemovesAlwaysOnNodes) {
  // Node 1 is active every cycle: its gate can never mask anything.
  Fixture f({0.3, 1.0, 0.5, 0.6, 1.0, 0.8, 1.0});
  GateReductionParams p;
  p.theta_activity = 0.99;
  p.theta_parent = -1.0;  // isolate rules 1
  p.theta_swcap = 0.0;
  p.force_cap_multiple = 20.0;
  const auto gated = reduce_gates(f.full, f.p_en, f.tech, p);
  EXPECT_FALSE(gated[1]);
  EXPECT_FALSE(gated[4]);
  EXPECT_TRUE(gated[0]);
  EXPECT_TRUE(gated[2]);
}

TEST(GateReduction, Rule3RemovesChildMatchingParentActivity) {
  // Node 0's activity equals its parent's (node 4): the parent gate
  // suffices. Node 1 is much rarer than the parent: keep its gate.
  Fixture f({0.6, 0.1, 0.3, 0.35, 0.6, 0.5, 1.0});
  GateReductionParams p;
  p.theta_activity = 1.5;  // isolate rule 3
  p.theta_swcap = 0.0;
  p.theta_parent = 0.05;
  const auto gated = reduce_gates(f.full, f.p_en, f.tech, p);
  EXPECT_FALSE(gated[0]);
  EXPECT_TRUE(gated[1]);
}

TEST(GateReduction, RootNeverGated) {
  Fixture f({0.1, 0.1, 0.1, 0.1, 0.2, 0.2, 0.4});
  const auto gated = reduce_gates(f.full, f.p_en, f.tech,
                                  GateReductionParams::from_strength(0.0));
  EXPECT_FALSE(gated[static_cast<std::size_t>(f.full.root)]);
}

TEST(GateReduction, ForcedInsertionBoundsUngatedCap) {
  // Aggressive removal, but a tight cap budget forces gates back in.
  Fixture f({0.9, 0.9, 0.9, 0.9, 0.95, 0.95, 1.0});
  GateReductionParams loose;
  loose.theta_activity = 0.5;  // rule 1 wants to remove everything
  loose.theta_parent = -1.0;
  loose.theta_swcap = 0.0;
  loose.force_cap_multiple = 1e9;
  const auto all_removed = reduce_gates(f.full, f.p_en, f.tech, loose);
  int removed_count = 0;
  for (int id = 0; id < f.full.num_nodes(); ++id)
    removed_count += all_removed[static_cast<std::size_t>(id)] ? 0 : 1;
  EXPECT_EQ(removed_count, f.full.num_nodes());  // nothing survives

  GateReductionParams tight = loose;
  // Each internal edge is ~1000-2000 lambda (0.2-0.4 pF of wire); force a
  // gate once a branch accumulates ~4 gate-loads (0.2 pF).
  tight.force_cap_multiple = 4.0;
  const auto forced = reduce_gates(f.full, f.p_en, f.tech, tight);
  int kept = 0;
  for (int id = 0; id < f.full.num_nodes(); ++id)
    kept += forced[static_cast<std::size_t>(id)] ? 1 : 0;
  EXPECT_GT(kept, 0);
}

TEST(GateReduction, StrengthMonotonicallyRemovesGates) {
  Fixture f({0.2, 0.35, 0.5, 0.65, 0.45, 0.8, 1.0});
  int prev = f.full.num_nodes();
  for (const double s : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto gated = reduce_gates(f.full, f.p_en, f.tech,
                                    GateReductionParams::from_strength(s));
    int kept = 0;
    for (int id = 0; id < f.full.num_nodes(); ++id)
      kept += gated[static_cast<std::size_t>(id)] ? 1 : 0;
    EXPECT_LE(kept, prev) << "strength " << s;
    prev = kept;
  }
}

// ---------------------------------------------------------------- swcap ---

/// Two-sink fixture with a gate on one leaf edge, evaluated by hand.
TEST(SwCap, HandComputedTwoSinkTree) {
  tech::TechParams t;
  t.unit_res = 1.0;
  t.unit_cap = 0.01;  // pF per lambda
  t.gate_input_cap = 0.05;
  t.gate_enable_cap = 0.04;
  t.gate_delay = 0.0;
  t.gate_output_res = 0.0;

  const auto ex = benchdata::paper_example();
  const activity::ActivityAnalyzer an(ex.rtl, ex.stream);

  // Sinks are modules M5 (id 4) and M6 (id 5).
  const ct::SinkList sinks = {{{0, 0}, 0.1}, {{100, 0}, 0.1}};
  ct::Topology topo(2);
  topo.merge(0, 1);
  std::vector<bool> gates = {true, false, false};  // gate only on edge to sink0
  const ct::RoutedTree tree = ct::embed(topo, sinks, gates, t);

  const NodeActivity act = compute_node_activity(tree, an, {4, 5});
  // P(M5) = P(I1)+P(I3) = 11/20; P(M6) = P(I3) = 3/20.
  EXPECT_DOUBLE_EQ(act.p_en[0], 0.55);
  EXPECT_DOUBLE_EQ(act.p_en[1], 0.15);
  EXPECT_DOUBLE_EQ(act.p_en[2], 0.55);  // union == M5's instructions

  const ControllerPlacement ctrl(geom::DieArea::square(100.0), 1);
  const SwCapReport rep =
      evaluate_swcap(tree, act, ctrl, t, CellStyle::MaskingGate);

  const double e0 = tree.node(0).edge_len;
  const double e1 = tree.node(1).edge_len;
  // Edge 0 is gated: weight P(EN_0) = 0.55; edge 1 inherits the root
  // domain (always on). Pin caps: sink loads at leaves; the gate's clock
  // input (0.05) hangs at the root, always clocked.
  const double expect_clock = (t.wire_cap(e0) + 0.1) * 0.55 +
                              (t.wire_cap(e1) + 0.1) * 1.0 + 0.05;
  EXPECT_NEAR(rep.clock_swcap, expect_clock, 1e-9);

  // Controller: one gate at the root location, star to die center (50,50).
  const double star = ctrl.star_length(tree.node(tree.root).loc);
  const double p_tr = an.transition_prob(act.mask[0]);
  EXPECT_NEAR(rep.ctrl_swcap, (t.wire_cap(star) + 0.04) * p_tr, 1e-9);
  EXPECT_EQ(rep.num_cells, 1);
  EXPECT_NEAR(rep.star_wirelength, star, 1e-9);
}

TEST(SwCap, BufferedStyleIgnoresEnables) {
  tech::TechParams t;
  const auto ex = benchdata::paper_example();
  const activity::ActivityAnalyzer an(ex.rtl, ex.stream);
  const ct::SinkList sinks = {{{0, 0}, 0.05}, {{500, 0}, 0.05}};
  ct::Topology topo(2);
  topo.merge(0, 1);
  std::vector<bool> gates = {true, true, false};
  const ct::RoutedTree tree = ct::embed(topo, sinks, gates, t);
  const NodeActivity act = compute_node_activity(tree, an, {0, 1});
  const ControllerPlacement ctrl(geom::DieArea::square(500.0), 1);

  const SwCapReport buf = evaluate_swcap(tree, act, ctrl, t, CellStyle::Buffer);
  EXPECT_DOUBLE_EQ(buf.ctrl_swcap, 0.0);
  EXPECT_DOUBLE_EQ(buf.star_wirelength, 0.0);
  // Everything switches every cycle: W(T) equals the ungated reference.
  EXPECT_NEAR(buf.clock_swcap, buf.ungated_swcap, 1e-12);
  EXPECT_EQ(buf.num_cells, 2);
  EXPECT_DOUBLE_EQ(buf.cell_area, 2 * t.buffer_area());
}

TEST(SwCap, NeverActiveSubtreeContributesNothing) {
  // Modules that no instruction uses: their gated edges have P(EN) = 0 and
  // their enable wires never toggle.
  tech::TechParams t;
  activity::RtlDescription rtl(2, 4);
  rtl.add_use(0, 0);
  rtl.add_use(1, 1);  // modules 2 and 3 are never clocked
  activity::InstructionStream stream;
  for (int i = 0; i < 200; ++i) stream.seq.push_back(i % 2);
  const activity::ActivityAnalyzer an(rtl, stream);

  const ct::SinkList sinks = {{{0, 0}, 0.05},
                              {{500, 0}, 0.05},
                              {{0, 500}, 0.05},
                              {{500, 500}, 0.05}};
  ct::Topology topo(4);
  const int live = topo.merge(0, 1);
  const int dead = topo.merge(2, 3);
  topo.merge(live, dead);
  std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()), true);
  gates[static_cast<std::size_t>(topo.root())] = false;
  const ct::RoutedTree tree = ct::embed(topo, sinks, gates, t);
  const NodeActivity act = compute_node_activity(tree, an, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(act.p_en[static_cast<std::size_t>(dead)], 0.0);
  EXPECT_DOUBLE_EQ(act.p_tr[static_cast<std::size_t>(dead)], 0.0);

  const ControllerPlacement ctrl(geom::DieArea::square(500.0), 1);
  const SwCapReport rep =
      evaluate_swcap(tree, act, ctrl, t, CellStyle::MaskingGate);
  // Removing the dead subtree's wire/pin capacitance from the ungated
  // reference accounts for part of the gap; at minimum, the dead leaf
  // edges must not appear in W(T). Verify via a direct bound: the live
  // half plus root-attached pins covers everything W(T) counts.
  double dead_edge_cap = 0.0;
  for (const int id : {2, 3, dead}) {
    dead_edge_cap +=
        t.wire_cap(tree.node(id).edge_len) +
        (id == dead ? 2 * t.gate_input_cap : tree.node(id).down_cap);
  }
  EXPECT_LE(rep.clock_swcap, rep.ungated_swcap - dead_edge_cap + 1e-12);
}

TEST(SwCap, GatingNeverIncreasesClockSwCap) {
  // For the same embedded tree, masking with real probabilities must give
  // W(T) <= the ungated reference.
  tech::TechParams t;
  const auto ex = benchdata::paper_example();
  const activity::ActivityAnalyzer an(ex.rtl, ex.stream);
  ct::SinkList sinks;
  for (int i = 0; i < 6; ++i)
    sinks.push_back({{250.0 * i, 100.0 * (i % 3)}, 0.03});
  ct::Topology topo(6);
  int acc = topo.merge(0, 1);
  acc = topo.merge(acc, 2);
  int b = topo.merge(3, 4);
  b = topo.merge(b, 5);
  topo.merge(acc, b);
  std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()), true);
  gates[static_cast<std::size_t>(topo.root())] = false;
  const ct::RoutedTree tree = ct::embed(topo, sinks, gates, t);
  const NodeActivity act =
      compute_node_activity(tree, an, {0, 1, 2, 3, 4, 5});
  const ControllerPlacement ctrl(geom::DieArea::square(1500.0), 1);
  const SwCapReport rep =
      evaluate_swcap(tree, act, ctrl, t, CellStyle::MaskingGate);
  EXPECT_LE(rep.clock_swcap, rep.ungated_swcap + 1e-12);
  EXPECT_GT(rep.ctrl_swcap, 0.0);
}

}  // namespace
}  // namespace gcr::gating

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "activity/analyzer.h"
#include "activity/brute_force.h"
#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "test_seed.h"

/// Property suite: on randomly generated workloads, the table-driven
/// activity engine (one stream scan, then O(K)/O(K^2) queries) must agree
/// exactly with the brute-force oracle (full stream rescan per query) for
/// every module set we throw at it -- including sets larger than one word,
/// empty sets, and the all-modules set.

namespace gcr::activity {
namespace {

struct Params {
  int num_instructions;
  int num_modules;
  int stream_length;
  double activity;
  std::uint64_t seed;
};

class ActivityAgreement : public ::testing::TestWithParam<Params> {};

TEST_P(ActivityAgreement, TableDrivenEqualsBruteForce) {
  const Params p = GetParam();

  // Synthetic sinks only seed the spatial clustering of the generator.
  benchdata::RBenchSpec spec{"t", p.num_modules, 1000.0, 0.01, 0.02, p.seed};
  const benchdata::RBench bench = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = p.num_instructions;
  wspec.num_clusters = 4;
  wspec.target_activity = p.activity;
  wspec.stream_length = p.stream_length;
  wspec.seed = p.seed;
  const benchdata::Workload wl =
      benchdata::generate_workload(wspec, bench.sinks, bench.die);

  const ActivityAnalyzer an(wl.rtl, wl.stream);
  const BruteForceActivity bf(wl.rtl, wl.stream);

  std::mt19937_64 rng(p.seed ^ 0xabcdef);
  std::uniform_int_distribution<int> pick(0, p.num_modules - 1);
  std::uniform_int_distribution<int> size(1, p.num_modules);

  for (int trial = 0; trial < 50; ++trial) {
    ModuleSet s(p.num_modules);
    const int k = size(rng);
    for (int j = 0; j < k; ++j) s.set(pick(rng));
    ASSERT_NEAR(an.signal_prob_of_modules(s), bf.signal_prob(s), 1e-9)
        << "trial " << trial;
    ASSERT_NEAR(an.transition_prob_of_modules(s), bf.transition_prob(s), 1e-9)
        << "trial " << trial;
  }

  // Edge cases: empty and full sets.
  ModuleSet none(p.num_modules);
  EXPECT_NEAR(an.signal_prob_of_modules(none), bf.signal_prob(none), 1e-12);
  ModuleSet all(p.num_modules);
  for (int m = 0; m < p.num_modules; ++m) all.set(m);
  EXPECT_NEAR(an.signal_prob_of_modules(all), bf.signal_prob(all), 1e-9);
  EXPECT_NEAR(an.transition_prob_of_modules(all), bf.transition_prob(all),
              1e-9);
}

TEST_P(ActivityAgreement, TransitionProbabilityBounds) {
  const Params p = GetParam();
  benchdata::RBenchSpec spec{"t", p.num_modules, 1000.0, 0.01, 0.02, p.seed};
  const benchdata::RBench bench = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = p.num_instructions;
  wspec.target_activity = p.activity;
  wspec.stream_length = p.stream_length;
  wspec.seed = p.seed + 1;
  const benchdata::Workload wl =
      benchdata::generate_workload(wspec, bench.sinks, bench.die);
  const ActivityAnalyzer an(wl.rtl, wl.stream);

  for (int m = 0; m < p.num_modules; ++m) {
    const auto& mask = an.module_mask(m);
    const double sp = an.signal_prob(mask);
    const double tp = an.transition_prob(mask);
    EXPECT_GE(sp, 0.0);
    EXPECT_LE(sp, 1.0 + 1e-12);
    EXPECT_GE(tp, 0.0);
    EXPECT_LE(tp, 1.0 + 1e-12);
    // A 0/1 signal cannot toggle more often than it visits the rarer state
    // allows (up to one extra toggle of stream-edge effects).
    const double limit =
        2.0 * std::min(sp, 1.0 - sp) + 2.0 / p.stream_length;
    EXPECT_LE(tp, limit + 1e-9) << "module " << m;
  }
}

/// GCR_TEST_SEED reseeds the whole sweep (shapes stay fixed, the generator
/// seed is replaced), and the seed lands in every test's parameter name.
std::vector<Params> sweep_params() {
  std::vector<Params> base = {
      Params{4, 6, 20, 0.4, 1},       // paper-scale
      Params{8, 16, 500, 0.2, 2},     // small
      Params{16, 40, 2000, 0.4, 3},   // medium
      Params{32, 64, 5000, 0.6, 4},   // one-word mask boundary
      Params{64, 100, 3000, 0.3, 5},  // K == 64 exactly
      Params{70, 90, 3000, 0.5, 6},   // K > 64: multi-word masks
      Params{128, 30, 4000, 0.8, 7},  // many instructions, high activity
      Params{5, 200, 1000, 0.1, 8},   // many modules, low activity
  };
  if (const char* env = std::getenv("GCR_TEST_SEED")) {
    const std::uint64_t s = std::strtoull(env, nullptr, 10);
    for (std::size_t i = 0; i < base.size(); ++i) base[i].seed = s + i;
  }
  return base;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ActivityAgreement,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           return "K" +
                                  std::to_string(info.param.num_instructions) +
                                  "_seed_" + std::to_string(info.param.seed);
                         });

/// A small hand-built RTL for the degenerate-input tests below: module 0 is
/// used by every instruction (constant-1 activity tag), module 4 by none
/// (constant-0), the rest varies.
RtlDescription tiny_rtl() {
  RtlDescription rtl(3, 5);
  for (InstrId i = 0; i < 3; ++i) rtl.add_use(i, 0);
  rtl.add_use(0, 1);
  rtl.add_use(1, 2);
  rtl.add_use(2, 1);
  rtl.add_use(2, 3);
  return rtl;
}

std::vector<ModuleSet> all_singletons_and_extremes(int n) {
  std::vector<ModuleSet> sets;
  sets.emplace_back(n);  // empty
  ModuleSet all(n);
  for (int m = 0; m < n; ++m) {
    ModuleSet s(n);
    s.set(m);
    sets.push_back(s);
    all.set(m);
  }
  sets.push_back(all);
  return sets;
}

TEST(ActivityEdgeCases, EmptyStreamIsAllZeros) {
  const RtlDescription rtl = tiny_rtl();
  const InstructionStream empty{};
  const ActivityAnalyzer an(rtl, empty);
  const BruteForceActivity bf(rtl, empty);
  for (const ModuleSet& s : all_singletons_and_extremes(rtl.num_modules())) {
    EXPECT_EQ(an.signal_prob_of_modules(s), 0.0);
    EXPECT_EQ(an.transition_prob_of_modules(s), 0.0);
    EXPECT_EQ(bf.signal_prob(s), 0.0);
    EXPECT_EQ(bf.transition_prob(s), 0.0);
  }
}

TEST(ActivityEdgeCases, SingleInstructionStreamHasNoTransitions) {
  const RtlDescription rtl = tiny_rtl();
  const InstructionStream one{{1}};
  const ActivityAnalyzer an(rtl, one);
  const BruteForceActivity bf(rtl, one);
  for (const ModuleSet& s : all_singletons_and_extremes(rtl.num_modules())) {
    // Signal probability is the 0/1 indicator of instruction 1 touching s;
    // with a single cycle there is no instruction pair to transition over.
    const double expect = rtl.activates(1, s) ? 1.0 : 0.0;
    EXPECT_EQ(an.signal_prob_of_modules(s), expect);
    EXPECT_EQ(bf.signal_prob(s), expect);
    EXPECT_EQ(an.transition_prob_of_modules(s), 0.0);
    EXPECT_EQ(bf.transition_prob(s), 0.0);
  }
}

TEST(ActivityEdgeCases, ConstantActivityModules) {
  const RtlDescription rtl = tiny_rtl();
  InstructionStream stream;
  std::mt19937_64 rng(test::fuzz_seeds({99}).front());
  for (int c = 0; c < 400; ++c) {
    stream.seq.push_back(static_cast<InstrId>(rng() % 3));
  }
  const ActivityAnalyzer an(rtl, stream);
  const BruteForceActivity bf(rtl, stream);

  // Module 0 is clocked by every instruction: enable stuck at 1, never
  // toggles. Module 4 is clocked by none: stuck at 0.
  ModuleSet always(rtl.num_modules());
  always.set(0);
  EXPECT_EQ(an.signal_prob_of_modules(always), 1.0);
  EXPECT_EQ(an.transition_prob_of_modules(always), 0.0);
  EXPECT_EQ(bf.signal_prob(always), 1.0);
  EXPECT_EQ(bf.transition_prob(always), 0.0);

  ModuleSet never(rtl.num_modules());
  never.set(4);
  EXPECT_EQ(an.signal_prob_of_modules(never), 0.0);
  EXPECT_EQ(an.transition_prob_of_modules(never), 0.0);
  EXPECT_EQ(bf.signal_prob(never), 0.0);
  EXPECT_EQ(bf.transition_prob(never), 0.0);

  // Any set containing the always-on module inherits its constant enable.
  for (const ModuleSet& s : all_singletons_and_extremes(rtl.num_modules())) {
    ModuleSet with = s;
    with.set(0);
    EXPECT_EQ(an.signal_prob_of_modules(with), 1.0);
    EXPECT_EQ(an.transition_prob_of_modules(with), 0.0);
  }
}

TEST(ActivityEdgeCases, EmptyAndFullModuleSetsAgreeWithOracle) {
  const RtlDescription rtl = tiny_rtl();
  InstructionStream stream;
  std::mt19937_64 rng(test::fuzz_seeds({7}).front());
  for (int c = 0; c < 257; ++c) {
    stream.seq.push_back(static_cast<InstrId>(rng() % 3));
  }
  const ActivityAnalyzer an(rtl, stream);
  const BruteForceActivity bf(rtl, stream);

  const ModuleSet none(rtl.num_modules());
  EXPECT_EQ(an.signal_prob_of_modules(none), 0.0);
  EXPECT_EQ(an.transition_prob_of_modules(none), 0.0);
  EXPECT_EQ(bf.signal_prob(none), 0.0);

  ModuleSet all(rtl.num_modules());
  for (int m = 0; m < rtl.num_modules(); ++m) all.set(m);
  // Every instruction of tiny_rtl clocks module 0, so the root enable of
  // the all-modules set is constantly on.
  EXPECT_EQ(an.signal_prob_of_modules(all), 1.0);
  EXPECT_EQ(bf.signal_prob(all), 1.0);
  EXPECT_NEAR(an.transition_prob_of_modules(all), bf.transition_prob(all),
              1e-12);
}

}  // namespace
}  // namespace gcr::activity

#include <gtest/gtest.h>

#include <sstream>

#include "benchdata/paper_example.h"
#include "benchdata/rbench.h"
#include "clocktree/embed.h"
#include "cts/greedy.h"
#include "gating/controller.h"
#include "io/svg.h"
#include "io/text_io.h"

namespace gcr::io {
namespace {

TEST(TextIo, SinksRoundTrip) {
  const auto bench = benchdata::generate_rbench("r1");
  std::stringstream ss;
  write_sinks(ss, bench.die, bench.sinks);
  const SinksFile back = read_sinks(ss);
  ASSERT_EQ(back.sinks.size(), bench.sinks.size());
  EXPECT_DOUBLE_EQ(back.die.xhi, bench.die.xhi);
  for (std::size_t i = 0; i < bench.sinks.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.sinks[i].loc.x, bench.sinks[i].loc.x);
    EXPECT_DOUBLE_EQ(back.sinks[i].loc.y, bench.sinks[i].loc.y);
    EXPECT_DOUBLE_EQ(back.sinks[i].cap, bench.sinks[i].cap);
  }
}

TEST(TextIo, SinksRejectsMissingHeader) {
  std::stringstream ss("1 2 3\n");
  EXPECT_THROW(read_sinks(ss), std::runtime_error);
}

TEST(TextIo, StreamRoundTrip) {
  const auto ex = benchdata::paper_example();
  std::stringstream ss;
  write_stream(ss, ex.stream);
  const activity::InstructionStream back = read_stream(ss);
  EXPECT_EQ(back.seq, ex.stream.seq);
}

TEST(TextIo, StreamIgnoresComments) {
  std::stringstream ss("# header\n1 2 # trailing\n3\n");
  const activity::InstructionStream s = read_stream(ss);
  EXPECT_EQ(s.seq, (std::vector<int>{1, 2, 3}));
}

TEST(TextIo, RtlRoundTrip) {
  const auto ex = benchdata::paper_example();
  std::stringstream ss;
  write_rtl(ss, ex.rtl);
  const activity::RtlDescription back = read_rtl(ss);
  ASSERT_EQ(back.num_instructions(), ex.rtl.num_instructions());
  ASSERT_EQ(back.num_modules(), ex.rtl.num_modules());
  for (int i = 0; i < back.num_instructions(); ++i)
    for (int m = 0; m < back.num_modules(); ++m)
      EXPECT_EQ(back.uses(i, m), ex.rtl.uses(i, m)) << i << "," << m;
}

TEST(TextIo, RtlRejectsGarbage) {
  std::stringstream ss("bogus 1 2\n");
  EXPECT_THROW(read_rtl(ss), std::runtime_error);
  std::stringstream empty("# nothing\n");
  EXPECT_THROW(read_rtl(empty), std::runtime_error);
}

TEST(Svg, EmitsWellFormedDrawing) {
  benchdata::RBenchSpec spec{"t", 12, 2000.0, 0.01, 0.03, 5};
  const auto bench = benchdata::generate_rbench(spec);
  cts::BuildOptions opts;
  const auto built = cts::build_topology(bench.sinks, nullptr, {}, opts);
  std::vector<bool> gates(static_cast<std::size_t>(built.topo.num_nodes()),
                          true);
  gates[static_cast<std::size_t>(built.topo.root())] = false;
  const auto tree = ct::embed(built.topo, bench.sinks, gates, opts.tech);
  const gating::ControllerPlacement ctrl(bench.die, 4);

  std::stringstream ss;
  write_svg(ss, tree, bench.die, ctrl);
  const std::string svg = ss.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One polyline per non-root edge plus one per gate star wire.
  std::size_t polylines = 0;
  for (std::size_t pos = 0;
       (pos = svg.find("<polyline", pos)) != std::string::npos; ++pos)
    ++polylines;
  EXPECT_EQ(polylines, static_cast<std::size_t>(tree.num_nodes() - 1 +
                                                tree.num_gates()));
  // Four controllers drawn.
  std::size_t count = 0;
  for (std::size_t pos = 0;
       (pos = svg.find("fill=\"#6b46c1\"", pos)) != std::string::npos; ++pos)
    ++count;
  EXPECT_EQ(count, 4u);
}

}  // namespace
}  // namespace gcr::io

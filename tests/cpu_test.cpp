#include <gtest/gtest.h>

#include <map>

#include "activity/analyzer.h"
#include "benchdata/rbench.h"
#include "cpu/bridge.h"
#include "cpu/isa.h"
#include "cpu/machine.h"
#include "cpu/program.h"

namespace gcr::cpu {
namespace {

// ------------------------------------------------------------ decode -----

TEST(Isa, EveryOpcodeClocksFetchAndDecode) {
  for (int op = 0; op < kNumOpcodes; ++op) {
    const auto units = units_of(static_cast<Opcode>(op));
    EXPECT_FALSE(units.empty());
    bool fetch = false, decode = false;
    for (const Unit u : units) {
      fetch |= u == Unit::Fetch;
      decode |= u == Unit::Decode;
    }
    EXPECT_TRUE(fetch && decode) << opcode_name(static_cast<Opcode>(op));
  }
}

TEST(Isa, ExecutionUnitsMatchSemantics) {
  const auto has = [](std::span<const Unit> units, Unit u) {
    return std::find(units.begin(), units.end(), u) != units.end();
  };
  EXPECT_TRUE(has(units_of(Opcode::kMul), Unit::Multiplier));
  EXPECT_FALSE(has(units_of(Opcode::kMul), Unit::Divider));
  EXPECT_TRUE(has(units_of(Opcode::kDiv), Unit::Divider));
  EXPECT_TRUE(has(units_of(Opcode::kLd), Unit::LoadStore));
  EXPECT_TRUE(has(units_of(Opcode::kSt), Unit::LoadStore));
  EXPECT_FALSE(has(units_of(Opcode::kSt), Unit::RegWrite));  // no dest reg
  EXPECT_TRUE(has(units_of(Opcode::kBeq), Unit::Branch));
  EXPECT_FALSE(has(units_of(Opcode::kNop), Unit::Alu));
}

// ----------------------------------------------------------- machine -----

TEST(Machine, ArithmeticAndRegisterZero) {
  Assembler a;
  a.li(1, 21).li(2, 2).mul(3, 1, 2);   // r3 = 42
  a.addi(0, 1, 5);                     // write to r0 is discarded
  a.sub(4, 3, 1);                      // r4 = 21
  a.div(5, 3, 2);                      // r5 = 21
  a.div(6, 3, 0);                      // div by zero -> 0
  a.halt();
  Machine m;
  const Trace t = m.run(a.finish());
  EXPECT_TRUE(t.halted);
  EXPECT_EQ(m.reg(3), 42);
  EXPECT_EQ(m.reg(0), 0);
  EXPECT_EQ(m.reg(4), 21);
  EXPECT_EQ(m.reg(5), 21);
  EXPECT_EQ(m.reg(6), 0);
}

TEST(Machine, MemoryAndShifts) {
  Assembler a;
  a.li(1, 100).li(2, 7).st(1, 2, 3);  // mem[103] = 7
  a.ld(3, 1, 3);                      // r3 = 7
  a.shl(4, 3, 4);                     // r4 = 112
  a.shr(5, 4, 3);                     // r5 = 14
  a.xor_(6, 4, 5);                    // r6 = 112 ^ 14
  a.halt();
  Machine m;
  m.run(a.finish());
  EXPECT_EQ(m.mem(103), 7);
  EXPECT_EQ(m.reg(3), 7);
  EXPECT_EQ(m.reg(4), 112);
  EXPECT_EQ(m.reg(5), 14);
  EXPECT_EQ(m.reg(6), 112 ^ 14);
}

TEST(Machine, FibonacciComputesCorrectValue) {
  Machine m;
  const Trace t = m.run(prog_fibonacci(10));
  EXPECT_TRUE(t.halted);
  EXPECT_EQ(m.reg(3), 55);  // fib(10) = 55 (fib(1) = fib(2) = 1)
}

TEST(Machine, MemcpyCopiesData) {
  Machine m;
  for (int i = 0; i < 16; ++i) m.set_mem(i, 100 + i);
  const Trace t = m.run(prog_memcpy(16));
  EXPECT_TRUE(t.halted);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(m.mem(4096 + i), 100 + i);
}

TEST(Machine, DotProductAccumulates) {
  Machine m;
  for (int i = 0; i < 8; ++i) {
    m.set_mem(i, i + 1);
    m.set_mem(4096 + i, 2);
  }
  m.run(prog_dot_product(8));
  EXPECT_EQ(m.reg(7), 2 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
}

TEST(Machine, BubbleSortSorts) {
  Machine m;
  const int vals[] = {9, 3, 7, 1, 8, 2, 6, 5};
  for (int i = 0; i < 8; ++i) m.set_mem(i, vals[i]);
  const Trace t = m.run(prog_bubble_sort(8));
  EXPECT_TRUE(t.halted);
  for (int i = 0; i + 1 < 8; ++i) EXPECT_LE(m.mem(i), m.mem(i + 1));
}

TEST(Machine, CycleLimitStopsRunaway) {
  Assembler a;
  a.label("spin").jmp("spin");
  Machine m;
  const Trace t = m.run(a.finish(), 500);
  EXPECT_FALSE(t.halted);
  EXPECT_EQ(t.cycles, 500);
}

TEST(Assembler, UndefinedLabelThrows) {
  Assembler a;
  a.jmp("nowhere");
  EXPECT_THROW(a.finish(), std::runtime_error);
}

// ------------------------------------------------------------ kernels ----

TEST(Kernels, DistinctUnitProfiles) {
  // Each kernel should stress its characteristic unit.
  const auto profile = [](const Program& p) {
    const Trace t = run_with_data(p);
    std::map<Unit, double> f;
    for (const Opcode op : t.ops)
      for (const Unit u : units_of(op)) f[u] += 1.0;
    for (auto& [u, v] : f) v /= static_cast<double>(t.ops.size());
    return f;
  };
  auto mem = profile(prog_memcpy(200));
  auto dot = profile(prog_dot_product(200));
  auto srt = profile(prog_bubble_sort(30));
  auto mix = profile(prog_hash_mix(200));
  EXPECT_GT(mem[Unit::LoadStore], 0.25);
  EXPECT_GT(dot[Unit::Multiplier], 0.1);
  EXPECT_GT(srt[Unit::Branch], 0.3);
  EXPECT_GT(mix[Unit::Shifter], 0.15);
  EXPECT_GT(mix[Unit::Divider], 0.05);
}

// ------------------------------------------------------------- bridge ----

TEST(Bridge, FloorplanIsContiguousPartition) {
  const auto rb = benchdata::generate_rbench("r1");
  const UnitFloorplan plan = assign_units(rb.sinks);
  ASSERT_EQ(plan.num_sinks(), 267);
  int total = 0;
  for (int u = 0; u < kNumUnits; ++u) {
    const auto& sinks = plan.unit_sinks[static_cast<std::size_t>(u)];
    EXPECT_FALSE(sinks.empty()) << unit_name(static_cast<Unit>(u));
    total += static_cast<int>(sinks.size());
    for (const int s : sinks)
      EXPECT_EQ(plan.unit_of_sink[static_cast<std::size_t>(s)], u);
  }
  EXPECT_EQ(total, 267);
  // Weighted sizes: fetch (w=2) about twice branch (w=1).
  const auto size_of = [&](Unit u) {
    return plan.unit_sinks[static_cast<std::size_t>(static_cast<int>(u))]
        .size();
  };
  EXPECT_GT(size_of(Unit::Fetch), 1.4 * size_of(Unit::Branch));
}

TEST(Bridge, RtlMatchesDecodeTable) {
  const auto rb = benchdata::generate_rbench("r1");
  const UnitFloorplan plan = assign_units(rb.sinks);
  const activity::RtlDescription rtl = make_rtl(plan);
  EXPECT_EQ(rtl.num_instructions(), kNumOpcodes);
  EXPECT_EQ(rtl.num_modules(), 267);
  // A multiplier sink is used by kMul but not by kAdd.
  const int mul_sink =
      plan.unit_sinks[static_cast<int>(Unit::Multiplier)].front();
  EXPECT_TRUE(rtl.uses(static_cast<int>(Opcode::kMul), mul_sink));
  EXPECT_FALSE(rtl.uses(static_cast<int>(Opcode::kAdd), mul_sink));
  // Every sink is clocked by at least one opcode (all units reachable).
  for (int s = 0; s < 267; ++s) {
    bool used = false;
    for (int op = 0; op < kNumOpcodes && !used; ++op) used = rtl.uses(op, s);
    EXPECT_TRUE(used) << "sink " << s;
  }
}

TEST(Bridge, MultiprogramStreamHasRequestedLengthAndAllKernels) {
  const activity::InstructionStream s = multiprogram_stream(5000);
  EXPECT_EQ(s.length(), 5000);
  for (const int op : s.seq) {
    EXPECT_GE(op, 0);
    EXPECT_LT(op, kNumOpcodes);
  }
  // The mix must include memory traffic, multiplies and branches.
  std::map<int, int> hist;
  for (const int op : s.seq) ++hist[op];
  EXPECT_GT(hist[static_cast<int>(Opcode::kLd)], 0);
  EXPECT_GT(hist[static_cast<int>(Opcode::kMul)], 0);
  EXPECT_GT(hist[static_cast<int>(Opcode::kBeq)], 0);
}

TEST(Bridge, TraceDrivesActivityEngine) {
  const auto rb = benchdata::generate_rbench("r1");
  const UnitFloorplan plan = assign_units(rb.sinks);
  const activity::RtlDescription rtl = make_rtl(plan);
  // Long enough to cycle through every kernel (hash_mix supplies the divs).
  const activity::InstructionStream stream = multiprogram_stream(20000);
  const activity::ActivityAnalyzer an(rtl, stream);
  // Fetch sinks clock every cycle; divider sinks only on div.
  const int fetch_sink =
      plan.unit_sinks[static_cast<int>(Unit::Fetch)].front();
  const int div_sink =
      plan.unit_sinks[static_cast<int>(Unit::Divider)].front();
  EXPECT_NEAR(an.signal_prob(an.module_mask(fetch_sink)), 1.0, 1e-12);
  const double p_div = an.signal_prob(an.module_mask(div_sink));
  EXPECT_GT(p_div, 0.0);
  EXPECT_LT(p_div, 0.2);
}

}  // namespace
}  // namespace gcr::cpu

#include <gtest/gtest.h>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "clocktree/zskew.h"
#include "core/router.h"

/// Gate sizing (paper section 1: gates "can be sized to adjust the phase
/// delay"). A bigger gate drives a given subtree faster and presents more
/// input capacitance; the MinWirelength sizing policy exploits this to kill
/// snake wire that zero skew would otherwise demand.

namespace gcr::ct {
namespace {

TEST(GateSizing, BiggerGateDrivesFaster) {
  const tech::TechParams t;
  SubtreeTap sub{geom::TiltedRect::from_point({0, 0}), 100.0, 1.0};
  const double d_half = branch_delay(sub, true, 500.0, t, 0.5);
  const double d_unit = branch_delay(sub, true, 500.0, t, 1.0);
  const double d_quad = branch_delay(sub, true, 500.0, t, 4.0);
  EXPECT_GT(d_half, d_unit);
  EXPECT_GT(d_unit, d_quad);
}

TEST(GateSizing, InputCapScalesWithSize) {
  const tech::TechParams t;
  SubtreeTap sub{geom::TiltedRect::from_point({0, 0}), 0.0, 1.0};
  EXPECT_DOUBLE_EQ(branch_cap(sub, true, 300.0, t, 0.5),
                   0.5 * t.gate_input_cap);
  EXPECT_DOUBLE_EQ(branch_cap(sub, true, 300.0, t, 4.0),
                   4.0 * t.gate_input_cap);
  // Ungated branches ignore the size argument.
  EXPECT_DOUBLE_EQ(branch_cap(sub, false, 300.0, t, 4.0),
                   t.wire_cap(300.0) + 1.0);
}

TEST(GateSizing, SizedMergeStillBalances) {
  const tech::TechParams t;
  const SubtreeTap a{geom::TiltedRect::from_point({0, 0}), 0.0, 0.4};
  const SubtreeTap b{geom::TiltedRect::from_point({2000, 0}), 50.0, 0.02};
  for (const double sa : {0.5, 1.0, 2.0, 4.0}) {
    for (const double sb : {0.5, 1.0, 4.0}) {
      const MergeResult m = zero_skew_merge(a, true, b, true, t, sa, sb);
      EXPECT_NEAR(branch_delay(a, true, m.len_a, t, sa),
                  branch_delay(b, true, m.len_b, t, sb), 1e-6)
          << sa << "," << sb;
      EXPECT_NEAR(m.cap, sa * t.gate_input_cap + sb * t.gate_input_cap,
                  1e-12);
    }
  }
}

/// A tree whose gating is deliberately asymmetric: one heavy gated subtree
/// merged against a light ungated one forces snaking at unit size.
struct AsymmetricFixture {
  tech::TechParams t;
  SinkList sinks;
  Topology topo{6};
  std::vector<bool> gates;

  AsymmetricFixture() {
    sinks = {{{0, 0}, 0.30},      {{400, 0}, 0.25},   {{200, 300}, 0.28},
             {{6000, 100}, 0.01}, {{6400, 0}, 0.015}, {{6200, 300}, 0.012}};
    int a = topo.merge(0, 1);
    a = topo.merge(a, 2);
    int b = topo.merge(3, 4);
    b = topo.merge(b, 5);
    topo.merge(a, b);
    gates.assign(static_cast<std::size_t>(topo.num_nodes()), false);
    // Gate only the heavy cluster's internal edges.
    gates[6] = gates[7] = true;
  }
};

TEST(GateSizing, MinWirelengthNeverWorseAndZeroSkew) {
  AsymmetricFixture f;
  EmbedOptions unit;
  const RoutedTree base = embed(f.topo, f.sinks, f.gates, f.t, unit);
  EmbedOptions sized;
  sized.sizing = GateSizing::MinWirelength;
  const RoutedTree opt = embed(f.topo, f.sinks, f.gates, f.t, sized);

  EXPECT_LE(opt.total_wirelength(), base.total_wirelength() + 1e-6);
  const DelayReport rb = elmore_delays(base, f.t);
  const DelayReport ro = elmore_delays(opt, f.t);
  EXPECT_LT(rb.skew(), 1e-6 * std::max(1.0, rb.max_delay));
  EXPECT_LT(ro.skew(), 1e-6 * std::max(1.0, ro.max_delay));
}

TEST(GateSizing, ChosenSizesComeFromCandidateSet) {
  AsymmetricFixture f;
  EmbedOptions sized;
  sized.sizing = GateSizing::MinWirelength;
  sized.gate_sizes = {0.5, 1.0, 2.0};
  const RoutedTree tree = embed(f.topo, f.sinks, f.gates, f.t, sized);
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const RoutedNode& n = tree.node(id);
    if (!n.gated) {
      EXPECT_DOUBLE_EQ(n.gate_size, 1.0);
      continue;
    }
    EXPECT_TRUE(n.gate_size == 0.5 || n.gate_size == 1.0 || n.gate_size == 2.0)
        << "node " << id << " size " << n.gate_size;
  }
}

TEST(GateSizing, UnitPolicyKeepsAllSizesOne) {
  AsymmetricFixture f;
  const RoutedTree tree = embed(f.topo, f.sinks, f.gates, f.t, {});
  for (int id = 0; id < tree.num_nodes(); ++id)
    EXPECT_DOUBLE_EQ(tree.node(id).gate_size, 1.0);
}

TEST(GateSizing, RouterFlowWithSizingStaysZeroSkewAndCheaper) {
  benchdata::RBenchSpec spec{"sz", 48, 10000.0, 0.005, 0.08, 91};
  benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 16;
  wspec.target_activity = 0.35;
  wspec.stream_length = 4000;
  wspec.seed = 91;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);
  core::Design d{rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream),
                 {}};
  const core::GatedClockRouter router(std::move(d));

  core::RouterOptions unit;
  unit.style = core::TreeStyle::GatedReduced;
  core::RouterOptions sized = unit;
  sized.gate_sizing = ct::GateSizing::MinWirelength;

  const auto ru = router.route(unit);
  const auto rs = router.route(sized);
  EXPECT_LT(rs.delays.skew(), 1e-6 * std::max(1.0, rs.delays.max_delay));
  // Sizing choices are locally optimal per merge; upstream cap changes can
  // shift later merges, so allow a small global tolerance.
  EXPECT_LE(rs.tree.total_wirelength(),
            1.01 * ru.tree.total_wirelength());
}

}  // namespace
}  // namespace gcr::ct

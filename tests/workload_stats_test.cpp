#include <gtest/gtest.h>

#include <random>

#include "activity/analyzer.h"
#include "benchdata/rbench.h"
#include "benchdata/workload.h"

/// Statistical properties of the synthetic workload generator -- the
/// properties that make it a defensible substitute for the paper's CPU
/// traces (see DESIGN.md substitutions): spatially decaying co-activity,
/// controllable average activity, and locality-controlled toggle rates.

namespace gcr::benchdata {
namespace {

struct Stats {
  RBench bench;
  Workload wl;
  activity::ActivityAnalyzer an;

  static Stats make(double activity, double locality, std::uint64_t seed) {
    RBenchSpec spec{"ws", 200, 10000.0, 0.01, 0.02, seed};
    RBench bench = generate_rbench(spec);
    WorkloadSpec w;
    w.num_instructions = 24;
    w.num_clusters = 25;
    w.target_activity = activity;
    w.locality = locality;
    w.stream_length = 10000;
    w.seed = seed;
    Workload wl = generate_workload(w, bench.sinks, bench.die);
    activity::ActivityAnalyzer an(wl.rtl, wl.stream);
    return {std::move(bench), std::move(wl), std::move(an)};
  }
};

/// Pearson-free co-activity score: P(both) / max(P(a), P(b)).
double coactivity(const Stats& s, int a, int b) {
  const auto& ma = s.an.module_mask(a);
  const auto& mb = s.an.module_mask(b);
  const double pa = s.an.signal_prob(ma);
  const double pb = s.an.signal_prob(mb);
  if (pa <= 0.0 || pb <= 0.0) return 0.0;
  // P(a and b) = P(a) + P(b) - P(a or b).
  const double pu = s.an.signal_prob(ma | mb);
  return (pa + pb - pu) / std::max(pa, pb);
}

TEST(WorkloadStats, CoactivityDecaysWithDistance) {
  const Stats s = Stats::make(0.4, 0.8, 5);
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<int> pick(0, 199);
  double near_acc = 0.0, far_acc = 0.0;
  int near_n = 0, far_n = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const int a = pick(rng);
    const int b = pick(rng);
    if (a == b) continue;
    const double d = geom::manhattan_dist(
        s.bench.sinks[static_cast<std::size_t>(a)].loc,
        s.bench.sinks[static_cast<std::size_t>(b)].loc);
    const double co = coactivity(s, a, b);
    if (d < 2500.0) {
      near_acc += co;
      ++near_n;
    } else if (d > 9000.0) {
      far_acc += co;
      ++far_n;
    }
  }
  ASSERT_GT(near_n, 50);
  ASSERT_GT(far_n, 50);
  // Spatially near modules must be clearly more co-active than far ones.
  EXPECT_GT(near_acc / near_n, far_acc / far_n + 0.1);
}

TEST(WorkloadStats, ActivityKnobSweepsMonotonically) {
  double prev = -1.0;
  for (const double target : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const Stats s = Stats::make(target, 0.8, 11);
    const double measured = s.an.ift().average_activity(s.wl.rtl);
    EXPECT_GT(measured, prev) << target;
    EXPECT_NEAR(measured, target, 0.15) << target;
    prev = measured;
  }
}

TEST(WorkloadStats, LocalityControlsEnableToggleRates) {
  double prev = 2.0;
  for (const double locality : {0.0, 0.5, 0.9}) {
    const Stats s = Stats::make(0.4, locality, 13);
    double acc = 0.0;
    for (int m = 0; m < 200; ++m)
      acc += s.an.transition_prob(s.an.module_mask(m));
    const double mean_tr = acc / 200.0;
    EXPECT_LT(mean_tr, prev) << locality;
    prev = mean_tr;
  }
}

TEST(WorkloadStats, InstructionFrequenciesAreNonUniform) {
  // Real traces have hot and rare instructions; the Zipf-ish popularity
  // must show up in the IFT.
  const Stats s = Stats::make(0.4, 0.7, 17);
  double mx = 0.0, mn = 1.0;
  for (int i = 0; i < 24; ++i) {
    mx = std::max(mx, s.an.ift().prob(i));
    mn = std::min(mn, s.an.ift().prob(i));
  }
  EXPECT_GT(mx, 3.0 * std::max(mn, 1e-6));
}

}  // namespace
}  // namespace gcr::benchdata

#include <gtest/gtest.h>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"

namespace gcr::core {
namespace {

Design make_design(int n, std::uint64_t seed, double activity) {
  benchdata::RBenchSpec spec{"t", n, 8000.0, 0.005, 0.08, seed};
  benchdata::RBench bench = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 16;
  wspec.num_clusters = 9;
  wspec.target_activity = activity;
  wspec.stream_length = 5000;
  wspec.seed = seed;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, bench.sinks, bench.die);
  return Design{bench.die, bench.sinks, std::move(wl.rtl),
                std::move(wl.stream), {}};
}

class RouterTest : public ::testing::Test {
 protected:
  GatedClockRouter router{make_design(48, 21, 0.35)};
};

TEST_F(RouterTest, AllStylesAchieveZeroSkew) {
  for (const auto style : {TreeStyle::Buffered, TreeStyle::Gated,
                           TreeStyle::GatedReduced}) {
    RouterOptions opts;
    opts.style = style;
    const RouterResult r = router.route(opts);
    EXPECT_LT(r.delays.skew(), 1e-6 * std::max(1.0, r.delays.max_delay))
        << "style " << static_cast<int>(style);
    EXPECT_EQ(r.tree.num_leaves, 48);
  }
}

TEST_F(RouterTest, BufferedHasNoControllerCost) {
  RouterOptions opts;
  opts.style = TreeStyle::Buffered;
  const RouterResult r = router.route(opts);
  EXPECT_DOUBLE_EQ(r.swcap.ctrl_swcap, 0.0);
  EXPECT_DOUBLE_EQ(r.swcap.star_wirelength, 0.0);
  EXPECT_NEAR(r.swcap.clock_swcap, r.swcap.ungated_swcap, 1e-9);
  EXPECT_EQ(r.gates_before_reduction, 0);
}

TEST_F(RouterTest, GatedHasGateOnEveryEdge) {
  RouterOptions opts;
  opts.style = TreeStyle::Gated;
  const RouterResult r = router.route(opts);
  EXPECT_EQ(r.tree.num_gates(), 2 * 48 - 2);
  EXPECT_GT(r.swcap.ctrl_swcap, 0.0);
  EXPECT_GT(r.swcap.star_wirelength, 0.0);
  // Masking can only reduce clock-tree switching.
  EXPECT_LE(r.swcap.clock_swcap, r.swcap.ungated_swcap + 1e-9);
}

TEST_F(RouterTest, ReductionRemovesGatesAndCutsControllerCost) {
  RouterOptions gated;
  gated.style = TreeStyle::Gated;
  RouterOptions reduced;
  reduced.style = TreeStyle::GatedReduced;
  const RouterResult g = router.route(gated);
  const RouterResult r = router.route(reduced);
  EXPECT_LT(r.tree.num_gates(), g.tree.num_gates());
  EXPECT_GT(r.gate_reduction_pct(), 0.0);
  EXPECT_LT(r.swcap.ctrl_swcap, g.swcap.ctrl_swcap);
  EXPECT_LT(r.swcap.star_wirelength, g.swcap.star_wirelength);
}

TEST_F(RouterTest, GatedReducedBeatsBufferedOnTotalSwCap) {
  // The paper's headline claim at moderate activity (section 5.1).
  RouterOptions buffered;
  buffered.style = TreeStyle::Buffered;
  RouterOptions reduced;
  reduced.style = TreeStyle::GatedReduced;
  const RouterResult b = router.route(buffered);
  const RouterResult r = router.route(reduced);
  EXPECT_LT(r.swcap.total_swcap(), b.swcap.total_swcap());
}

TEST_F(RouterTest, DistributedControllersShrinkStarWirelength) {
  RouterOptions k1;
  k1.style = TreeStyle::Gated;
  k1.controller_partitions = 1;
  RouterOptions k16 = k1;
  k16.controller_partitions = 16;
  const RouterResult r1 = router.route(k1);
  const RouterResult r16 = router.route(k16);
  EXPECT_LT(r16.swcap.star_wirelength, r1.swcap.star_wirelength);
  EXPECT_LT(r16.swcap.ctrl_swcap, r1.swcap.ctrl_swcap);
  // The clock tree itself is untouched by the controller layout.
  EXPECT_NEAR(r16.swcap.clock_swcap, r1.swcap.clock_swcap, 1e-9);
}

TEST_F(RouterTest, SwCapReportIsInternallyConsistent) {
  RouterOptions opts;
  opts.style = TreeStyle::GatedReduced;
  const RouterResult r = router.route(opts);
  EXPECT_NEAR(r.swcap.total_swcap(), r.swcap.clock_swcap + r.swcap.ctrl_swcap,
              1e-12);
  EXPECT_NEAR(r.swcap.total_area(), r.swcap.wire_area + r.swcap.cell_area,
              1e-9);
  EXPECT_NEAR(r.swcap.wire_area,
              (r.swcap.clock_wirelength + r.swcap.star_wirelength) *
                  RouterOptions{}.tech.wire_width,
              1e-6);
  EXPECT_EQ(r.swcap.num_cells, r.tree.num_gates());
}

TEST(Router, AlwaysActiveWorkloadGainsNothing) {
  // With every module active every cycle, gating cannot mask any cycle:
  // the gated tree's W(T) equals its ungated reference and the controller
  // is pure overhead.
  Design d = make_design(24, 33, 0.4);
  // Overwrite the workload so every instruction uses every module.
  activity::RtlDescription rtl(4, 24);
  for (int i = 0; i < 4; ++i)
    for (int m = 0; m < 24; ++m) rtl.add_use(i, m);
  d.rtl = std::move(rtl);
  d.stream.seq.clear();
  for (int t = 0; t < 1000; ++t) d.stream.seq.push_back(t % 4);
  GatedClockRouter router(std::move(d));
  RouterOptions opts;
  opts.style = TreeStyle::Gated;
  const RouterResult r = router.route(opts);
  EXPECT_NEAR(r.swcap.clock_swcap, r.swcap.ungated_swcap, 1e-9);
  // Enables never toggle: the controller tree switches nothing.
  EXPECT_NEAR(r.swcap.ctrl_swcap, 0.0, 1e-9);
}

TEST(Router, IdleWorkloadClockFullyMasked) {
  // One instruction drives a single module; the rest of the chip is idle.
  Design d = make_design(24, 34, 0.4);
  activity::RtlDescription rtl(2, 24);
  rtl.add_use(0, 0);
  rtl.add_use(1, 0);
  d.rtl = std::move(rtl);
  d.stream.seq.clear();
  for (int t = 0; t < 1000; ++t) d.stream.seq.push_back(t % 2);
  GatedClockRouter router(std::move(d));
  RouterOptions opts;
  opts.style = TreeStyle::Gated;
  const RouterResult r = router.route(opts);
  // Everything except module 0's path is gated off forever.
  EXPECT_LT(r.swcap.clock_swcap, 0.25 * r.swcap.ungated_swcap);
}

TEST(Router, SinkModuleMappingIsRespected) {
  benchdata::RBenchSpec spec{"t", 6, 2000.0, 0.01, 0.02, 35};
  benchdata::RBench bench = benchdata::generate_rbench(spec);
  // 12 modules; sinks map to the even ones.
  activity::RtlDescription rtl(2, 12);
  for (int m = 0; m < 12; m += 2) rtl.add_use(0, m);
  for (int m = 1; m < 12; m += 2) rtl.add_use(1, m);
  activity::InstructionStream stream;
  for (int t = 0; t < 100; ++t) stream.seq.push_back(t % 2);
  Design d{bench.die, bench.sinks, std::move(rtl), std::move(stream),
           {0, 2, 4, 6, 8, 10}};
  GatedClockRouter router(std::move(d));
  RouterOptions opts;
  opts.style = TreeStyle::Gated;
  const RouterResult r = router.route(opts);
  // All sinks share instruction 0, which runs half the cycles.
  for (int i = 0; i < 6; ++i)
    EXPECT_DOUBLE_EQ(r.activity.p_en[static_cast<std::size_t>(i)], 0.5);
}

}  // namespace
}  // namespace gcr::core

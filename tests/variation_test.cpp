#include <gtest/gtest.h>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "eval/power.h"
#include "eval/variation.h"

namespace gcr::eval {
namespace {

core::GatedClockRouter make_router(int n, std::uint64_t seed) {
  benchdata::RBenchSpec spec{"v", n, 9000.0, 0.005, 0.08, seed};
  benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 16;
  wspec.target_activity = 0.35;
  wspec.stream_length = 3000;
  wspec.seed = seed;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);
  return core::GatedClockRouter(core::Design{
      rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream), {}});
}

TEST(Variation, ZeroSigmaPreservesZeroSkew) {
  const auto router = make_router(32, 81);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const auto r = router.route(opts);
  VariationSpec spec;
  spec.wire_res_sigma = spec.wire_cap_sigma = 0.0;
  spec.gate_res_sigma = spec.gate_delay_sigma = 0.0;
  spec.trials = 5;
  const VariationReport rep =
      variation_analysis(r.tree, opts.tech, spec);
  EXPECT_LT(rep.max_skew, 1e-6 * std::max(1.0, rep.mean_delay));
  EXPECT_NEAR(rep.mean_delay, r.delays.max_delay,
              1e-6 * std::max(1.0, r.delays.max_delay));
}

TEST(Variation, SkewGrowsWithSigma) {
  const auto router = make_router(48, 82);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::GatedReduced;
  const auto r = router.route(opts);
  double prev = -1.0;
  for (const double sigma : {0.02, 0.08, 0.20}) {
    VariationSpec spec;
    spec.wire_res_sigma = spec.wire_cap_sigma = sigma;
    spec.gate_res_sigma = spec.gate_delay_sigma = sigma;
    spec.trials = 100;
    spec.seed = 5;
    const VariationReport rep = variation_analysis(r.tree, opts.tech, spec);
    EXPECT_GT(rep.mean_skew, prev) << sigma;
    EXPECT_GE(rep.max_skew, rep.p95_skew);
    EXPECT_GE(rep.p95_skew, rep.mean_skew * 0.5);
    prev = rep.mean_skew;
  }
}

TEST(Variation, DeterministicForFixedSeed) {
  const auto router = make_router(24, 83);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const auto r = router.route(opts);
  VariationSpec spec;
  spec.trials = 50;
  spec.seed = 7;
  const VariationReport a = variation_analysis(r.tree, opts.tech, spec);
  const VariationReport b = variation_analysis(r.tree, opts.tech, spec);
  EXPECT_DOUBLE_EQ(a.mean_skew, b.mean_skew);
  EXPECT_DOUBLE_EQ(a.max_skew, b.max_skew);
}

TEST(Variation, SkewRatioIsNormalized) {
  const auto router = make_router(24, 84);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const auto r = router.route(opts);
  VariationSpec spec;
  spec.trials = 50;
  const VariationReport rep = variation_analysis(r.tree, opts.tech, spec);
  EXPECT_NEAR(rep.mean_skew_ratio, rep.mean_skew / r.delays.max_delay, 0.05);
  EXPECT_GT(rep.mean_skew_ratio, 0.0);
  EXPECT_LT(rep.mean_skew_ratio, 1.0);
}

TEST(Variation, PartialFactorVectorsAreNominal) {
  // Only wire resistance varies; empty vectors mean factor 1 elsewhere.
  const auto router = make_router(16, 85);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const auto r = router.route(opts);
  ct::ElmoreFactors f;
  f.wire_res.assign(static_cast<std::size_t>(r.tree.num_nodes()), 1.0);
  const ct::DelayReport nominal = ct::elmore_delays(r.tree, opts.tech);
  const ct::DelayReport same = ct::elmore_delays(r.tree, opts.tech, &f);
  EXPECT_NEAR(nominal.max_delay, same.max_delay, 1e-12);
  // Doubling every edge resistance scales only the wire contribution.
  std::fill(f.wire_res.begin(), f.wire_res.end(), 2.0);
  const ct::DelayReport doubled = ct::elmore_delays(r.tree, opts.tech, &f);
  EXPECT_GT(doubled.max_delay, nominal.max_delay);
  EXPECT_LT(doubled.max_delay, 2.0 * nominal.max_delay + 1e-9);
}

TEST(Power, ConversionMatchesEq1) {
  // 100 pF at 200 MHz, 3.3 V: 100e-12 * 3.3^2 * 200e6 W = 217.8 mW.
  EXPECT_NEAR(dynamic_power_mw(100.0, {200.0, 3.3}), 217.8, 1e-9);
  // Scaling laws: linear in C and f, quadratic in V.
  EXPECT_DOUBLE_EQ(dynamic_power_mw(200.0, {200.0, 3.3}),
                   2.0 * dynamic_power_mw(100.0, {200.0, 3.3}));
  EXPECT_DOUBLE_EQ(dynamic_power_mw(100.0, {400.0, 3.3}),
                   2.0 * dynamic_power_mw(100.0, {200.0, 3.3}));
  EXPECT_DOUBLE_EQ(dynamic_power_mw(100.0, {200.0, 6.6}),
                   4.0 * dynamic_power_mw(100.0, {200.0, 3.3}));
}

}  // namespace
}  // namespace gcr::eval

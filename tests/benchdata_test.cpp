#include <gtest/gtest.h>

#include "activity/brute_force.h"
#include "activity/ift.h"
#include "benchdata/rbench.h"
#include "benchdata/workload.h"

namespace gcr::benchdata {
namespace {

TEST(RBench, PublishedSinkCounts) {
  EXPECT_EQ(rbench_spec("r1").num_sinks, 267);
  EXPECT_EQ(rbench_spec("r2").num_sinks, 598);
  EXPECT_EQ(rbench_spec("r3").num_sinks, 862);
  EXPECT_EQ(rbench_spec("r4").num_sinks, 1903);
  EXPECT_EQ(rbench_spec("r5").num_sinks, 3101);
  EXPECT_EQ(rbench_specs().size(), 5u);
}

TEST(RBench, UnknownNameThrows) {
  EXPECT_THROW(static_cast<void>(rbench_spec("r9")), std::out_of_range);
}

TEST(RBench, GenerationIsDeterministic) {
  const RBench a = generate_rbench("r1");
  const RBench b = generate_rbench("r1");
  ASSERT_EQ(a.sinks.size(), b.sinks.size());
  for (std::size_t i = 0; i < a.sinks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sinks[i].loc.x, b.sinks[i].loc.x);
    EXPECT_DOUBLE_EQ(a.sinks[i].cap, b.sinks[i].cap);
  }
}

TEST(RBench, SinksInsideDieWithValidCaps) {
  for (const auto& spec : rbench_specs()) {
    const RBench b = generate_rbench(spec);
    EXPECT_EQ(static_cast<int>(b.sinks.size()), spec.num_sinks);
    for (const auto& s : b.sinks) {
      EXPECT_TRUE(b.die.contains(s.loc));
      EXPECT_GE(s.cap, spec.cap_lo);
      EXPECT_LE(s.cap, spec.cap_hi);
    }
  }
}

TEST(Workload, HitsTargetActivity) {
  const RBench bench = generate_rbench("r1");
  for (const double target : {0.1, 0.4, 0.8}) {
    WorkloadSpec spec;
    spec.target_activity = target;
    spec.stream_length = 8000;
    spec.seed = 99;
    const Workload wl = generate_workload(spec, bench.sinks, bench.die);
    const activity::Ift ift(wl.stream, wl.rtl.num_instructions());
    // Ave(M(I)) should track the requested activity within sampling noise.
    EXPECT_NEAR(ift.average_activity(wl.rtl), target, 0.12) << target;
  }
}

TEST(Workload, StreamLengthAndRange) {
  const RBench bench = generate_rbench("r1");
  WorkloadSpec spec;
  spec.stream_length = 1234;
  const Workload wl = generate_workload(spec, bench.sinks, bench.die);
  EXPECT_EQ(wl.stream.length(), 1234);
  for (const int i : wl.stream.seq) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, spec.num_instructions);
  }
}

TEST(Workload, EveryInstructionUsesAtLeastOneModule) {
  const RBench bench = generate_rbench("r2");
  WorkloadSpec spec;
  spec.target_activity = 0.02;  // so low that empty draws are likely
  spec.seed = 7;
  const Workload wl = generate_workload(spec, bench.sinks, bench.die);
  for (int i = 0; i < wl.rtl.num_instructions(); ++i)
    EXPECT_TRUE(wl.rtl.module_set(i).any()) << "instruction " << i;
}

TEST(Workload, LocalityLowersTransitionRates) {
  const RBench bench = generate_rbench("r1");
  WorkloadSpec sticky;
  sticky.locality = 0.95;
  sticky.seed = 5;
  WorkloadSpec jumpy = sticky;
  jumpy.locality = 0.0;
  const Workload ws = generate_workload(sticky, bench.sinks, bench.die);
  const Workload wj = generate_workload(jumpy, bench.sinks, bench.die);
  const activity::BruteForceActivity bs(ws.rtl, ws.stream);
  const activity::BruteForceActivity bj(wj.rtl, wj.stream);
  // Average per-module transition rate must drop with locality.
  double ts = 0.0, tj = 0.0;
  const int n = ws.rtl.num_modules();
  for (int m = 0; m < n; ++m) {
    ts += bs.module_prob(m) > 0 ? bs.transition_prob([&] {
      activity::ModuleSet s(n);
      s.set(m);
      return s;
    }()) : 0.0;
    tj += bj.module_prob(m) > 0 ? bj.transition_prob([&] {
      activity::ModuleSet s(n);
      s.set(m);
      return s;
    }()) : 0.0;
  }
  EXPECT_LT(ts, tj);
}

TEST(Workload, DeterministicForFixedSeed) {
  const RBench bench = generate_rbench("r1");
  WorkloadSpec spec;
  spec.seed = 31;
  const Workload a = generate_workload(spec, bench.sinks, bench.die);
  const Workload b = generate_workload(spec, bench.sinks, bench.die);
  EXPECT_EQ(a.stream.seq, b.stream.seq);
  for (int i = 0; i < a.rtl.num_instructions(); ++i)
    EXPECT_EQ(a.rtl.module_set(i), b.rtl.module_set(i));
}

}  // namespace
}  // namespace gcr::benchdata

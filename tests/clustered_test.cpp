#include <gtest/gtest.h>

#include <chrono>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "core/router.h"
#include "cts/clustered.h"
#include "test_seed.h"

namespace gcr::cts {
namespace {

struct Inst {
  benchdata::RBench rb;
  benchdata::Workload wl;
  activity::ActivityAnalyzer an;
  std::vector<int> mods;

  static Inst make(int n, std::uint64_t seed) {
    benchdata::RBenchSpec spec{"cl", n, 30000.0, 0.005, 0.08, seed};
    benchdata::RBench rb = benchdata::generate_rbench(spec);
    benchdata::WorkloadSpec w;
    w.num_instructions = 24;
    w.num_clusters = std::max(16, n / 32);
    w.target_activity = 0.4;
    w.stream_length = 5000;
    w.seed = seed;
    benchdata::Workload wl = benchdata::generate_workload(w, rb.sinks, rb.die);
    activity::ActivityAnalyzer an(wl.rtl, wl.stream);
    auto mods = identity_modules(n);
    return {std::move(rb), std::move(wl), std::move(an), std::move(mods)};
  }
};

class Clustered : public ::testing::TestWithParam<int> {};

TEST_P(Clustered, ValidTopologyWithCorrectActivity) {
  const int n = GetParam();
  Inst inst = Inst::make(n, 91);
  ClusterOptions opts;
  opts.build.cost = MergeCost::SwitchedCapacitance;
  opts.build.control_point = inst.rb.die.center();
  const BuildResult r = build_topology_clustered(inst.rb.sinks, &inst.an,
                                                 inst.mods, opts);
  EXPECT_TRUE(r.topo.valid());
  EXPECT_EQ(r.topo.num_nodes(), 2 * n - 1);
  // Activity annotation matches an independent recomputation.
  const TopologyActivity act =
      annotate_topology(r.topo, inst.an, inst.mods);
  for (int id = 0; id < r.topo.num_nodes(); ++id) {
    EXPECT_DOUBLE_EQ(r.p_en[static_cast<std::size_t>(id)],
                     act.p_en[static_cast<std::size_t>(id)]);
    EXPECT_EQ(r.mask[static_cast<std::size_t>(id)],
              act.mask[static_cast<std::size_t>(id)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Clustered,
                         ::testing::Values(1, 2, 7, 40, 150, 600));

TEST(ClusteredEmbed, ZeroSkewAtScale) {
  Inst inst = Inst::make(400, 92);
  ClusterOptions opts;
  opts.build.cost = MergeCost::NearestNeighbor;
  const BuildResult r = build_topology_clustered(inst.rb.sinks, &inst.an,
                                                 inst.mods, opts);
  std::vector<bool> gates(static_cast<std::size_t>(r.topo.num_nodes()), true);
  gates[static_cast<std::size_t>(r.topo.root())] = false;
  const ct::RoutedTree tree =
      ct::embed(r.topo, inst.rb.sinks, gates, opts.build.tech);
  const ct::DelayReport rep = ct::elmore_delays(tree, opts.build.tech);
  EXPECT_LT(rep.skew(), 1e-7 * std::max(1.0, rep.max_delay));
}

TEST(ClusteredEmbed, WirelengthNearFlatGreedy) {
  Inst inst = Inst::make(500, 93);
  BuildOptions flat_opts;
  flat_opts.cost = MergeCost::NearestNeighbor;
  const BuildResult flat =
      build_topology(inst.rb.sinks, &inst.an, inst.mods, flat_opts);
  ClusterOptions copts;
  copts.build = flat_opts;
  const BuildResult clus = build_topology_clustered(inst.rb.sinks, &inst.an,
                                                    inst.mods, copts);
  const auto wirelength = [&](const ct::Topology& topo) {
    std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()), false);
    return ct::embed(topo, inst.rb.sinks, gates, flat_opts.tech)
        .total_wirelength();
  };
  // Hierarchical decomposition costs some wire, but must stay close.
  EXPECT_LT(wirelength(clus.topo), 1.35 * wirelength(flat.topo));
}

TEST(ClusteredEmbed, ScalesToManySinks) {
  // 4000 sinks: far beyond what the flat O(N^2) greedy handles quickly.
  Inst inst = Inst::make(4000, 94);
  ClusterOptions opts;
  opts.build.cost = MergeCost::SwitchedCapacitance;
  opts.build.control_point = inst.rb.die.center();
  const auto t0 = std::chrono::steady_clock::now();
  const BuildResult r = build_topology_clustered(inst.rb.sinks, &inst.an,
                                                 inst.mods, opts);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_TRUE(r.topo.valid());
  EXPECT_LT(elapsed, 30) << "clustered build too slow";
}

/// Flat vs clustered through the full router on the paper's Eq. 3 cost:
/// both constructions must deliver exact zero skew, and on benign inputs
/// (uniform rbench cloud, a couple hundred sinks) the clustered tree's
/// wirelength stays within the documented 1.5x of flat. Adversarial sink
/// clouds can reach ~2.7x -- that looser bound is checked by the verify
/// differential driver, not here (see docs/verification.md).
class FlatVsClustered : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatVsClustered, SameZeroSkewAndBoundedWirelength) {
  const std::uint64_t seed = GetParam();
  benchdata::RBenchSpec spec{"fvc", 200, 30000.0, 0.005, 0.08, seed};
  const benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec w;
  w.num_instructions = 24;
  w.target_activity = 0.4;
  w.stream_length = 4000;
  w.seed = seed;
  benchdata::Workload wl = benchdata::generate_workload(w, rb.sinks, rb.die);
  const core::GatedClockRouter router(core::Design{
      rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream), {}});

  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  opts.topology = core::TopologyScheme::MinSwitchedCap;
  const core::RouterResult flat = router.route(opts);
  opts.clustered = true;
  const core::RouterResult clus = router.route(opts);

  const auto skew_slack = [](const core::RouterResult& r) {
    return 1e-6 * std::max(1.0, r.delays.max_delay);
  };
  EXPECT_LT(flat.delays.skew(), skew_slack(flat)) << "seed " << seed;
  EXPECT_LT(clus.delays.skew(), skew_slack(clus)) << "seed " << seed;
  EXPECT_LE(clus.tree.total_wirelength(),
            1.5 * flat.tree.total_wirelength())
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatVsClustered,
                         ::testing::ValuesIn(test::fuzz_seeds({101u, 102u,
                                                               103u})),
                         test::SeedParamName{});

TEST(ClusteredEmbed, ExplicitGridRespected) {
  Inst inst = Inst::make(120, 95);
  ClusterOptions opts;
  opts.grid = 4;
  const BuildResult r = build_topology_clustered(inst.rb.sinks, &inst.an,
                                                 inst.mods, opts);
  EXPECT_TRUE(r.topo.valid());
}

}  // namespace
}  // namespace gcr::cts

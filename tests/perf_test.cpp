/// \file perf_test.cpp
/// Unit tests for the gcr::perf bench harness: the median/MAD statistics
/// kernel, the adaptive-repetition runner, the opt-in allocation hook
/// (including its disabled-means-untouched contract) and the
/// `gcr.bench_report` v2 writer/validator round trip.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/timer.h"
#include "perf/diff.h"
#include "perf/memhook.h"
#include "perf/report.h"
#include "perf/runner.h"
#include "perf/stats.h"

namespace gcr {
namespace {

TEST(PerfStats, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(perf::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(perf::median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(perf::median({7.5}), 7.5);
  EXPECT_DOUBLE_EQ(perf::median({}), 0.0);
}

TEST(PerfStats, PercentileInterpolatesAndClamps) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(perf::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(perf::percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(perf::percentile(v, 0.5), 30.0);
  // p90 over 5 points: index 0.9 * 4 = 3.6 -> 40 + 0.6 * 10.
  EXPECT_NEAR(perf::percentile(v, 0.9), 46.0, 1e-12);
  EXPECT_DOUBLE_EQ(perf::percentile({}, 0.9), 0.0);
}

TEST(PerfStats, MadIsMedianAbsoluteDeviation) {
  // median = 3, |v - 3| = {2, 1, 0, 1, 2} -> MAD = 1.
  EXPECT_DOUBLE_EQ(perf::mad({1.0, 2.0, 3.0, 4.0, 5.0}), 1.0);
  // An outlier moves the mean but not the MAD much: median = 2,
  // deviations {1, 0, 0, 98} -> MAD = 0.5.
  EXPECT_DOUBLE_EQ(perf::mad({1.0, 2.0, 2.0, 100.0}), 0.5);
  EXPECT_DOUBLE_EQ(perf::mad({}), 0.0);
}

TEST(PerfStats, SummarizeFixedVector) {
  const auto s = perf::summarize({4.0, 2.0, 8.0, 6.0});
  EXPECT_EQ(s.reps, 4);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(PerfStats, StabilizationNeedsSixAgreeingSamples) {
  // Too few samples: never stable, however tight.
  EXPECT_FALSE(perf::stabilized({1.0, 1.0, 1.0, 1.0, 1.0}, 0.05));
  // Six identical samples: the half-medians agree exactly.
  EXPECT_TRUE(perf::stabilized({1.0, 1.0, 1.0, 1.0, 1.0, 1.0}, 0.05));
  // Warm-up drift: first half around 2, second half around 1 -- the
  // half-medians disagree by ~100% of the overall median.
  EXPECT_FALSE(
      perf::stabilized({2.0, 2.0, 2.0, 1.0, 1.0, 1.0}, 0.05));
  // Degenerate timer (all zeros) counts as stable rather than looping.
  EXPECT_TRUE(perf::stabilized({0.0, 0.0, 0.0, 0.0, 0.0, 0.0}, 0.05));
}

TEST(PerfStats, LogLogSlopeRecoversExponent) {
  std::vector<std::pair<double, double>> quadratic;
  for (double n : {8.0, 16.0, 32.0, 64.0}) quadratic.push_back({n, n * n});
  EXPECT_NEAR(perf::loglog_slope(quadratic), 2.0, 1e-9);

  std::vector<std::pair<double, double>> linear{{10.0, 3.0}, {100.0, 30.0}};
  EXPECT_NEAR(perf::loglog_slope(linear), 1.0, 1e-9);

  EXPECT_DOUBLE_EQ(perf::loglog_slope({{10.0, 3.0}}), 0.0);
}

TEST(PerfMemhook, DisabledHookLeavesCountersUntouched) {
  ASSERT_FALSE(perf::memhook::enabled());
  perf::memhook::reset();
  const auto before = perf::memhook::stats();
  {
    auto p = std::make_unique<std::vector<double>>(4096);
    perf::do_not_optimize(p);
  }
  const auto after = perf::memhook::stats();
  EXPECT_EQ(after.allocs, before.allocs);
  EXPECT_EQ(after.frees, before.frees);
  EXPECT_EQ(after.bytes_allocated, 0u);
  EXPECT_EQ(after.peak_live_bytes, 0u);
}

TEST(PerfMemhook, EnabledHookCountsAllocationsAndPeak) {
  if (!perf::memhook::available()) GTEST_SKIP() << "no malloc_usable_size";
  perf::memhook::enable();
  perf::memhook::reset();
  {
    auto p = std::make_unique<std::vector<double>>(4096);
    perf::do_not_optimize(p);
  }
  const auto s = perf::memhook::stats();
  perf::memhook::disable();
  perf::memhook::reset();

  EXPECT_GE(s.allocs, 1u);
  EXPECT_GE(s.bytes_allocated, 4096u * sizeof(double));
  EXPECT_GE(s.peak_live_bytes, 4096u * sizeof(double));
  // The vector was freed before the snapshot's enclosing scope closed, so
  // the peak exceeds the live footprint.
  EXPECT_GE(s.peak_live_bytes, s.live_bytes);
}

TEST(PerfMemhook, PeakRssIsNonZeroOnLinux) {
  EXPECT_GT(perf::memhook::peak_rss_bytes(), 0u);
}

TEST(PerfRunner, RunsAtLeastMinRepsAndHonorsFilter) {
  perf::Runner r;
  auto counter = std::make_shared<int>(0);
  r.add("unit/counting", [counter] {
    return [counter] { ++*counter; };
  });
  r.add("other/skipped", [] {
    return [] { ADD_FAILURE() << "filtered-out benchmark ran"; };
  });

  perf::RunnerOptions opts = perf::RunnerOptions::quick_tier();
  opts.filter = "unit/";
  // Even a zero time budget must still deliver min_reps samples.
  opts.max_seconds_per_bench = 0.0;
  opts.min_rep_seconds = 0.0;  // no batching: reps map 1:1 to calls
  const auto results = r.run(opts, nullptr);

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "unit/counting");
  EXPECT_GE(results[0].time_ms.reps, opts.min_reps);
  EXPECT_EQ(results[0].batch, 1);
  // warmup + timed reps all invoked the closure.
  EXPECT_EQ(*counter, results[0].time_ms.reps + results[0].warmup_reps);
}

TEST(PerfRunner, MicroBenchmarksGetBatched) {
  perf::Runner r;
  r.add("unit/noop", [] { return [] {}; });
  perf::RunnerOptions opts = perf::RunnerOptions::quick_tier();
  opts.min_rep_seconds = 1e-4;
  const auto results = r.run(opts, nullptr);
  ASSERT_EQ(results.size(), 1u);
  // A no-op takes nanoseconds; reaching 0.1 ms per rep needs thousands of
  // inner iterations.
  EXPECT_GT(results[0].batch, 1000);
}

TEST(PerfReport, RoundTripValidatesAndLoads) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();
  obs::Session session;
  perf::Runner r;
  r.add("unit/work", [] {
    return [] {
      obs::ScopedTimer t("inner");
      volatile double x = 0;
      for (int i = 0; i < 1000; ++i) x = x + i;
    };
  });
  std::vector<perf::BenchResult> results;
  {
    obs::Bind bind(&session);
    results = r.run(perf::RunnerOptions::quick_tier(), nullptr);
  }
  ASSERT_EQ(results.size(), 1u);

  std::ostringstream os;
  perf::write_bench_report(os, "unit", results,
                           perf::RunnerOptions::quick_tier(), &session);
  const std::string doc = os.str();
  ASSERT_TRUE(obs::json::valid(doc)) << doc;

  const auto parsed = obs::json::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(perf::validate_bench_report(*parsed).empty())
      << perf::validate_bench_report(*parsed).front();

  std::string error;
  const auto loaded = perf::load_bench_report(doc, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->bench, "unit");
  EXPECT_EQ(loaded->version, perf::kBenchReportVersion);
  EXPECT_TRUE(loaded->quick);
  ASSERT_EQ(loaded->benchmarks.size(), 1u);
  const auto& sample = loaded->benchmarks.at("unit/work");
  EXPECT_EQ(sample.reps, results[0].time_ms.reps);
  EXPECT_DOUBLE_EQ(sample.median_ms, results[0].time_ms.median);
}

TEST(PerfReport, FingerprintIsPopulated) {
  const auto fp = perf::Fingerprint::current();
  EXPECT_FALSE(fp.git_sha.empty());
  EXPECT_FALSE(fp.compiler.empty());
  EXPECT_FALSE(fp.build_type.empty());
}

}  // namespace
}  // namespace gcr

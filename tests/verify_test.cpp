#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>

#include "core/router.h"
#include "obs/json.h"
#include "test_seed.h"
#include "verify/differential.h"
#include "verify/generator.h"
#include "verify/invariants.h"

/// Tests of the verification harness itself, in three bands:
///   * clean runs: every style/topology verifies with zero violations;
///   * mutation smoke tests: a seeded bug planted into a routed result must
///     trip the matching invariant family -- this is the proof the checker
///     actually fires, not just the proof it stays quiet;
///   * the differential driver: >= 100 random designs across all topology
///     schemes, cross-checked against the brute-force activity oracle, with
///     zero violations, fast enough for every CI run.

namespace gcr::verify {
namespace {

bool fires(const Report& rep, Invariant inv) {
  for (const Violation& v : rep.violations) {
    if (v.invariant == inv) return true;
  }
  return false;
}

struct Routed {
  // Heap-held: GatedClockRouter is immovable (its analyzer points into
  // its own design).
  std::unique_ptr<core::GatedClockRouter> router_ptr;
  core::RouterOptions opts;
  core::RouterResult result;

  const core::GatedClockRouter& router() const { return *router_ptr; }
};

Routed route_spec(const DesignSpec& spec, core::RouterOptions opts = {}) {
  auto router =
      std::make_unique<core::GatedClockRouter>(generate_design(spec));
  core::RouterResult result = router->route(opts);
  return {std::move(router), opts, std::move(result)};
}

DesignSpec default_spec() {
  DesignSpec spec;
  spec.seed = test::fuzz_seeds({424242}).front();
  spec.num_sinks = 48;
  spec.stream_length = 1500;
  return spec;
}

// ---- clean runs --------------------------------------------------------

TEST(VerifyClean, EveryStyleVerifies) {
  const DesignSpec spec = default_spec();
  for (const core::TreeStyle style :
       {core::TreeStyle::Buffered, core::TreeStyle::Gated,
        core::TreeStyle::GatedReduced}) {
    core::RouterOptions opts;
    opts.style = style;
    const Routed r = route_spec(spec, opts);
    const Report rep = verify_result(r.router(), r.opts, r.result);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GE(rep.checks_run, 3);
  }
}

TEST(VerifyClean, EveryTopologySchemeVerifies) {
  const DesignSpec spec = default_spec();
  for (const core::TopologyScheme scheme :
       {core::TopologyScheme::MinSwitchedCap,
        core::TopologyScheme::NearestNeighbor,
        core::TopologyScheme::ActivityOnly, core::TopologyScheme::Mmm}) {
    core::RouterOptions opts;
    opts.style = core::TreeStyle::Gated;
    opts.topology = scheme;
    const Routed r = route_spec(spec, opts);
    const Report rep = verify_result(r.router(), r.opts, r.result);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  }
}

TEST(VerifyClean, BoundedSkewAndPartitionsVerify) {
  const DesignSpec spec = default_spec();
  core::RouterOptions opts;
  opts.skew_bound = 30.0;
  opts.controller_partitions = 4;
  const Routed r = route_spec(spec, opts);
  const Report rep = verify_result(r.router(), r.opts, r.result);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(VerifyClean, SelfCheckHookAcceptsGoodResult) {
  const DesignSpec spec = default_spec();
  core::GatedClockRouter router(generate_design(spec));
  core::RouterOptions opts;
  EXPECT_NO_THROW({
    const core::RouterResult r = router.route(opts, make_self_check(router));
    (void)r;
  });
}

// ---- mutation smoke tests: seeded bugs the checker must catch ----------

class Mutation : public ::testing::Test {
 protected:
  Mutation() : r_(route_spec(default_spec())) {}

  Report verify() const {
    return verify_result(r_.router(), r_.opts, r_.result);
  }

  /// Some internal, non-root node (mutating a leaf or the root trips
  /// different families than the one under test).
  int internal_node() const {
    const ct::RoutedTree& t = r_.result.tree;
    for (int id = t.num_leaves; id < t.num_nodes(); ++id) {
      if (id != t.root) return id;
    }
    return t.root;
  }

  Routed r_;
};

TEST_F(Mutation, SkewedMergePointFires) {
  // Bug: an embedding pass places a merge point off its merging segment
  // (e.g. a transposed coordinate). The stored edge length no longer covers
  // the Manhattan distance and the re-derived sink delays fall out of
  // balance.
  const int id = internal_node();
  r_.result.tree.nodes[static_cast<std::size_t>(id)].loc.x += 400.0;
  const Report rep = verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::Geometry) ||
              fires(rep, Invariant::MergeBalance) ||
              fires(rep, Invariant::Skew))
      << rep.summary();
}

TEST_F(Mutation, StretchedEdgeFires) {
  // Bug: a snaking fix-up adds wire on one branch without re-balancing.
  const int id = internal_node();
  r_.result.tree.nodes[static_cast<std::size_t>(id)].edge_len += 250.0;
  const Report rep = verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::CapConsistency) ||
              fires(rep, Invariant::MergeBalance) ||
              fires(rep, Invariant::Skew))
      << rep.summary();
}

TEST_F(Mutation, CorruptedDownCapFires) {
  // Bug: an incremental-update path leaves a stale downstream cap behind.
  const int id = internal_node();
  r_.result.tree.nodes[static_cast<std::size_t>(id)].down_cap += 0.05;
  const Report rep = verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::CapConsistency)) << rep.summary();
}

TEST_F(Mutation, BrokenParentPointerFires) {
  // Bug: a tree rewrite leaves a dangling parent pointer.
  const int id = internal_node();
  const int old_parent =
      r_.result.tree.nodes[static_cast<std::size_t>(id)].parent;
  r_.result.tree.nodes[static_cast<std::size_t>(id)].parent =
      (old_parent == 0) ? 1 : 0;
  const Report rep = verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::Structure)) << rep.summary();
}

TEST_F(Mutation, GatedRootFires) {
  // Bug: the gate-insertion pass forgets the root exception (there is no
  // parent edge to gate).
  r_.result.tree.nodes[static_cast<std::size_t>(r_.result.tree.root)].gated =
      true;
  const Report rep = verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::Structure)) << rep.summary();
}

TEST_F(Mutation, StaleEnableProbabilityFires) {
  // Bug: gate reduction re-embeds the tree but keeps the old P(EN) cache.
  const int id = internal_node();
  r_.result.activity.p_en[static_cast<std::size_t>(id)] =
      std::min(1.0, r_.result.activity.p_en[static_cast<std::size_t>(id)] +
                        0.25);
  const Report rep = verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::ActivityMask) ||
              fires(rep, Invariant::ActivityMonotone) ||
              fires(rep, Invariant::SwCapRecompute))
      << rep.summary();
}

TEST_F(Mutation, TamperedSwcapTotalFires) {
  // Bug: an evaluator "optimization" drops a term of W(T).
  r_.result.swcap.clock_swcap *= 0.9;
  const Report rep = verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::SwCapRecompute)) << rep.summary();
}

TEST_F(Mutation, DroppedGateFromControllerStarFires) {
  // Bug: the controller star misses a surviving gate -- its wire and count
  // vanish from W(S).
  r_.result.swcap.num_cells -= 1;
  r_.result.swcap.star_wirelength *= 0.8;
  const Report rep = verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::ControllerCover) ||
              fires(rep, Invariant::SwCapRecompute))
      << rep.summary();
}

TEST_F(Mutation, TamperedDelayReportFires) {
  // Bug: the reported max delay is from a stale run.
  r_.result.delays.max_delay *= 1.5;
  const Report rep = verify();
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::DelayReport)) << rep.summary();
}

TEST(MutationFree, GateReductionRegressionFires) {
  Report rep;
  check_gate_reduction(/*full=*/1.0, /*reduced=*/1.0000001, rep);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(fires(rep, Invariant::GateReduction));
  Report ok_rep;
  check_gate_reduction(/*full=*/1.0, /*reduced=*/0.8, ok_rep);
  EXPECT_TRUE(ok_rep.ok());
}

TEST_F(Mutation, SelfCheckHookThrowsOnBadResult) {
  // The hook wraps verify_result: a corrupted result must raise
  // VerificationError with the offending report attached.
  r_.result.tree.nodes[static_cast<std::size_t>(internal_node())].down_cap +=
      0.05;
  const auto hook = make_self_check(r_.router());
  try {
    hook(r_.result, r_.opts);
    FAIL() << "self-check accepted a corrupted result";
  } catch (const VerificationError& e) {
    EXPECT_FALSE(e.report().ok());
    EXPECT_TRUE(fires(e.report(), Invariant::CapConsistency));
  }
}

// ---- artifacts ---------------------------------------------------------

TEST(Artifact, FailureDumpIsValidReplayableJson) {
  const DesignSpec spec = random_spec(12345);
  Report rep;
  rep.violations.push_back(
      {Invariant::Skew, 7, 1.25, 0.0, "sink 7 delay off"});
  std::ostringstream os;
  write_design_artifact(os, spec, "route:gated:swcap", &rep);
  const std::string doc = os.str();
  EXPECT_TRUE(obs::json::valid(doc)) << doc;
  EXPECT_NE(doc.find("gcr.verify_artifact"), std::string::npos);
  EXPECT_NE(doc.find(std::to_string(spec.seed)), std::string::npos);
  EXPECT_NE(doc.find("sink 7 delay off"), std::string::npos);
}

TEST(Artifact, SpecReplaysDeterministically) {
  const std::uint64_t seed = design_seed(2026, 17);
  const DesignSpec a = random_spec(seed);
  const DesignSpec b = random_spec(seed);
  EXPECT_EQ(a.num_sinks, b.num_sinks);
  EXPECT_EQ(a.stream_length, b.stream_length);
  const core::Design da = generate_design(a);
  const core::Design db = generate_design(b);
  ASSERT_EQ(da.sinks.size(), db.sinks.size());
  for (std::size_t i = 0; i < da.sinks.size(); ++i) {
    EXPECT_EQ(da.sinks[i].loc.x, db.sinks[i].loc.x);
    EXPECT_EQ(da.sinks[i].cap, db.sinks[i].cap);
  }
  EXPECT_EQ(da.stream.seq, db.stream.seq);
}

// ---- the differential driver -------------------------------------------

TEST(Differential, HundredRandomDesignsAllSchemesZeroViolations) {
  DiffOptions opts;
  opts.num_designs = 100;
  opts.seed = test::fuzz_seeds({2026}).front();
  const auto t0 = std::chrono::steady_clock::now();
  const DiffStats stats = run_differential(opts);
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(stats.designs, 100);
  // 4 gated schemes + reduced + buffered + 2 thread-determinism routes
  // + 1 index-determinism (exhaustive partner selection) + clustered per
  // design.
  EXPECT_EQ(stats.routes, 1000);
  EXPECT_GE(stats.activity_checks, 100 * 26);
  for (const DiffFailure& f : stats.failures) {
    ADD_FAILURE() << "seed " << f.spec.seed << " [" << f.stage << "] "
                  << f.message << '\n'
                  << f.report.summary();
  }
  EXPECT_LT(secs, 60) << "differential run too slow for CI";
}

TEST(Differential, IndexedPartnerSelectionMatchesExhaustive) {
  IndexDiffOptions opts;
  opts.num_designs = 6;
  opts.seed = test::fuzz_seeds({424242}).front();
  const DiffStats stats = run_index_differential(opts);
  EXPECT_EQ(stats.designs, 6);
  // 4 schemes x {flat, clustered} x {1, 4 threads} x {index on, off}.
  EXPECT_EQ(stats.routes, 6 * 32);
  for (const DiffFailure& f : stats.failures) {
    ADD_FAILURE() << "seed " << f.spec.seed << " [" << f.stage << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace gcr::verify

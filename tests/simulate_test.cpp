#include <gtest/gtest.h>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "eval/simulate.h"

/// The analytic switched-capacitance evaluator multiplies capacitances by
/// probabilities measured from the instruction stream; the cycle-accurate
/// simulator replays the same stream and counts what actually switches.
/// For the same stream the two must agree to floating-point accuracy --
/// across styles, reduction levels and controller layouts.

namespace gcr {
namespace {

struct SimSetup {
  benchdata::RBench rb;
  core::GatedClockRouter router;
  std::vector<int> modules;

  static SimSetup make(int n, std::uint64_t seed, double activity) {
    benchdata::RBenchSpec spec{"sim", n, 9000.0, 0.005, 0.08, seed};
    benchdata::RBench rb = benchdata::generate_rbench(spec);
    benchdata::WorkloadSpec wspec;
    wspec.num_instructions = 20;
    wspec.target_activity = activity;
    wspec.stream_length = 3000;
    wspec.seed = seed;
    benchdata::Workload wl =
        benchdata::generate_workload(wspec, rb.sinks, rb.die);
    core::Design d{rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream),
                   {}};
    std::vector<int> mods(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) mods[static_cast<std::size_t>(i)] = i;
    return SimSetup{std::move(rb), core::GatedClockRouter(std::move(d)),
                 std::move(mods)};
  }
};

class SimulatorAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(SimulatorAgreement, AnalyticMatchesCycleAccurate) {
  const auto [style_int, partitions, activity] = GetParam();
  SimSetup s = SimSetup::make(40, 17 + style_int, activity);
  core::RouterOptions opts;
  opts.style = static_cast<core::TreeStyle>(style_int);
  opts.controller_partitions = partitions;
  const core::RouterResult r = s.router.route(opts);

  const gating::ControllerPlacement ctrl(s.rb.die, partitions);
  const bool masking = opts.style != core::TreeStyle::Buffered;
  tech::TechParams t = opts.tech;
  if (!masking) {
    // The router evaluates buffered trees with buffer-valued cell caps.
    t.gate_input_cap = opts.tech.buffer_input_cap();
  }
  const eval::SimulationResult sim = eval::simulate_swcap(
      r.tree, s.router.design().rtl, s.router.design().stream, s.modules,
      ctrl, t, masking);

  EXPECT_NEAR(sim.clock_swcap_per_cycle, r.swcap.clock_swcap,
              1e-9 * std::max(1.0, r.swcap.clock_swcap));
  EXPECT_NEAR(sim.ctrl_swcap_per_cycle, r.swcap.ctrl_swcap,
              1e-9 * std::max(1.0, r.swcap.ctrl_swcap));
}

INSTANTIATE_TEST_SUITE_P(
    StylesAndControllers, SimulatorAgreement,
    ::testing::Values(std::tuple{0, 1, 0.4},   // buffered
                      std::tuple{1, 1, 0.4},   // gated, centralized
                      std::tuple{1, 4, 0.4},   // gated, 4 controllers
                      std::tuple{2, 1, 0.4},   // reduced
                      std::tuple{2, 16, 0.4},  // reduced, 16 controllers
                      std::tuple{1, 1, 0.1},   // low activity
                      std::tuple{2, 1, 0.8})); // high activity

TEST(Simulator, AgreesWithAnalyticUnderGateSizing) {
  SimSetup s = SimSetup::make(36, 29, 0.35);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::GatedReduced;
  opts.gate_sizing = ct::GateSizing::MinWirelength;
  const core::RouterResult r = s.router.route(opts);
  // Sizing actually picked at least one non-unit gate on this instance,
  // otherwise the test would not exercise the sized-cap paths.
  bool any_sized = false;
  for (const int id : r.tree.gated_nodes())
    any_sized |= r.tree.node(id).gate_size != 1.0;
  EXPECT_TRUE(any_sized);

  const gating::ControllerPlacement ctrl(s.rb.die, 1);
  const eval::SimulationResult sim = eval::simulate_swcap(
      r.tree, s.router.design().rtl, s.router.design().stream, s.modules,
      ctrl, opts.tech, true);
  EXPECT_NEAR(sim.clock_swcap_per_cycle, r.swcap.clock_swcap,
              1e-9 * std::max(1.0, r.swcap.clock_swcap));
  EXPECT_NEAR(sim.ctrl_swcap_per_cycle, r.swcap.ctrl_swcap,
              1e-9 * std::max(1.0, r.swcap.ctrl_swcap));
}

TEST(Simulator, AutoTuneIsNoWorseThanAnyFixedStrength) {
  SimSetup s = SimSetup::make(40, 31, 0.4);
  core::RouterOptions tuned;
  tuned.style = core::TreeStyle::GatedReduced;
  tuned.auto_tune_reduction = true;
  const double best = s.router.route(tuned).swcap.total_swcap();
  for (const double strength : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    core::RouterOptions fixed;
    fixed.style = core::TreeStyle::GatedReduced;
    fixed.reduction = gating::GateReductionParams::from_strength(strength);
    EXPECT_LE(best, s.router.route(fixed).swcap.total_swcap() + 1e-9)
        << "strength " << strength;
  }
}

TEST(Simulator, AgreesWithAnalyticUnderBoundedSkew) {
  SimSetup s = SimSetup::make(36, 37, 0.4);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::GatedReduced;
  opts.skew_bound = 40.0;
  const core::RouterResult r = s.router.route(opts);
  EXPECT_LE(r.delays.skew(), 40.0 + 1e-6);
  const gating::ControllerPlacement ctrl(s.rb.die, 1);
  const eval::SimulationResult sim = eval::simulate_swcap(
      r.tree, s.router.design().rtl, s.router.design().stream, s.modules,
      ctrl, opts.tech, true);
  EXPECT_NEAR(sim.clock_swcap_per_cycle, r.swcap.clock_swcap,
              1e-9 * std::max(1.0, r.swcap.clock_swcap));
  EXPECT_NEAR(sim.ctrl_swcap_per_cycle, r.swcap.ctrl_swcap,
              1e-9 * std::max(1.0, r.swcap.ctrl_swcap));
}

TEST(Simulator, EmptyStreamIsZero) {
  SimSetup s = SimSetup::make(8, 3, 0.4);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const auto r = s.router.route(opts);
  const gating::ControllerPlacement ctrl(s.rb.die, 1);
  const activity::InstructionStream empty;
  const auto sim =
      eval::simulate_swcap(r.tree, s.router.design().rtl, empty, s.modules,
                           ctrl, opts.tech, true);
  EXPECT_DOUBLE_EQ(sim.total_per_cycle(), 0.0);
  EXPECT_EQ(sim.cycles, 0);
}

TEST(Simulator, ForeignTraceGivesDifferentPower) {
  // A tree optimized for one workload, evaluated under another: the
  // simulator supports robustness studies the analytic evaluator (bound to
  // the training stream) cannot do directly.
  SimSetup s = SimSetup::make(32, 5, 0.3);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::GatedReduced;
  const auto r = s.router.route(opts);
  const gating::ControllerPlacement ctrl(s.rb.die, 1);

  // Foreign trace: same RTL, but a stream hammering instruction 0 only.
  activity::InstructionStream busy;
  for (int t = 0; t < 2000; ++t) busy.seq.push_back(0);
  const auto sim_busy =
      eval::simulate_swcap(r.tree, s.router.design().rtl, busy, s.modules,
                           ctrl, opts.tech, true);
  // A constant stream never toggles any enable.
  EXPECT_DOUBLE_EQ(sim_busy.ctrl_swcap_per_cycle, 0.0);
  // And the clock power differs from the training-trace power.
  const auto sim_train = eval::simulate_swcap(
      r.tree, s.router.design().rtl, s.router.design().stream, s.modules,
      ctrl, opts.tech, true);
  EXPECT_NE(sim_busy.clock_swcap_per_cycle, sim_train.clock_swcap_per_cycle);
}

}  // namespace
}  // namespace gcr

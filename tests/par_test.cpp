#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/router.h"
#include "cts/greedy.h"
#include "obs/metrics.h"
#include "par/pool.h"
#include "verify/generator.h"

namespace gcr {
namespace {

// --- gcr::par primitives ---------------------------------------------------

TEST(Par, ResolveThreads) {
  EXPECT_EQ(par::resolve_threads(1), 1);
  EXPECT_EQ(par::resolve_threads(7), 7);
  EXPECT_EQ(par::resolve_threads(0), par::default_threads());
  EXPECT_GE(par::default_threads(), 1);
  EXPECT_GE(par::hardware_threads(), 1);
}

TEST(Par, ChunkCount) {
  EXPECT_EQ(par::detail::chunk_count(0, 16), 0);
  EXPECT_EQ(par::detail::chunk_count(1, 16), 1);
  EXPECT_EQ(par::detail::chunk_count(16, 16), 1);
  EXPECT_EQ(par::detail::chunk_count(17, 16), 2);
  EXPECT_EQ(par::detail::chunk_count(-5, 16), 0);
}

TEST(Par, ParallelForCoversEveryIndexOnce) {
  for (const int width : {1, 2, 4, 8}) {
    constexpr int kN = 4099;  // not a multiple of any grain
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    par::parallel_for(width, 0, kN, /*grain=*/17,
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i)
                          hits[static_cast<std::size_t>(i)].fetch_add(1);
                      });
    for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(Par, ParallelForEmptyAndOffsetRanges) {
  int calls = 0;
  par::parallel_for(4, 5, 5, 8, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<std::int64_t> sum{0};
  par::parallel_for(4, 100, 200, 7, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(Par, ParallelReduceIsBitIdenticalAcrossWidths) {
  // Floating-point sum whose value depends on association order: if the
  // fold order ever varied with the width, some width would disagree.
  constexpr int kN = 20000;
  const auto run = [&](int width) {
    return par::parallel_reduce(
        width, 0, kN, /*grain=*/13, 0.0,
        [](std::int64_t b, std::int64_t e) {
          double s = 0.0;
          for (std::int64_t i = b; i < e; ++i)
            s += 1.0 / (1.0 + static_cast<double>(i) * 1.618033988749895);
          return s;
        },
        [](double x, double y) { return x + y; });
  };
  const double serial = run(1);
  for (const int width : {2, 4, 8}) {
    const double wide = run(width);
    EXPECT_EQ(serial, wide) << "width=" << width;  // bit-identical, not near
  }
}

TEST(Par, NestedConstructsSerializeWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  par::parallel_for(4, 0, 8, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      EXPECT_TRUE(par::in_worker());
      par::parallel_for(4, 0, 10, 2, [&](std::int64_t ib, std::int64_t ie) {
        inner_total.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
  EXPECT_FALSE(par::in_worker());
}

// Concurrent *callers* (the gcr::serve request lanes) each dispatching
// their own parallel constructs must serialize on the pool's dispatch
// lock instead of corrupting each other's chunk state: every caller's
// reduction must come back exact.
TEST(Par, ConcurrentCallersEachGetCorrectResults) {
  constexpr int kCallers = 4;
  constexpr std::int64_t kN = 4000;
  std::vector<std::int64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&sums, t] {
      for (int rep = 0; rep < 20; ++rep) {
        const std::int64_t s = par::parallel_reduce<std::int64_t>(
            4, 0, kN, 64, 0,
            [](std::int64_t b, std::int64_t e) {
              std::int64_t acc = 0;
              for (std::int64_t i = b; i < e; ++i) acc += i;
              return acc;
            },
            [](std::int64_t a, std::int64_t b) { return a + b; });
        sums[static_cast<std::size_t>(t)] = s;
      }
    });
  }
  for (std::thread& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t)
    EXPECT_EQ(sums[static_cast<std::size_t>(t)], kN * (kN - 1) / 2);
}

TEST(Par, ExceptionFromChunkPropagates) {
  EXPECT_THROW(
      par::parallel_for(4, 0, 100, 1,
                        [&](std::int64_t b, std::int64_t) {
                          if (b == 57) throw std::runtime_error("chunk 57");
                        }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> n{0};
  par::parallel_for(4, 0, 32, 1,
                    [&](std::int64_t b, std::int64_t e) {
                      n.fetch_add(static_cast<int>(e - b));
                    });
  EXPECT_EQ(n.load(), 32);
}

// --- engine determinism across thread counts -------------------------------

bool routed_trees_identical(const ct::RoutedTree& a, const ct::RoutedTree& b) {
  if (a.root != b.root || a.num_leaves != b.num_leaves ||
      a.nodes.size() != b.nodes.size())
    return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const ct::RoutedNode& x = a.nodes[i];
    const ct::RoutedNode& y = b.nodes[i];
    if (x.left != y.left || x.right != y.right || x.parent != y.parent ||
        x.loc.x != y.loc.x || x.loc.y != y.loc.y ||
        x.edge_len != y.edge_len || x.gated != y.gated ||
        x.gate_size != y.gate_size || x.down_cap != y.down_cap ||
        x.delay != y.delay)
      return false;
  }
  return true;
}

/// Route the same design at widths 1/2/8 and require bit-identical routed
/// trees and switched-capacitance reports -- the gcr::par contract.
void expect_width_invariant(std::uint64_t seed, bool clustered) {
  verify::DesignSpec spec = verify::random_spec(seed);
  const core::GatedClockRouter router(verify::generate_design(spec));
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  opts.topology = core::TopologyScheme::MinSwitchedCap;
  opts.clustered = clustered;
  opts.num_threads = 1;
  const core::RouterResult serial = router.route(opts);
  for (const int width : {2, 8}) {
    opts.num_threads = width;
    const core::RouterResult wide = router.route(opts);
    EXPECT_TRUE(routed_trees_identical(serial.tree, wide.tree))
        << "seed=" << seed << " clustered=" << clustered
        << " width=" << width;
    EXPECT_EQ(serial.swcap.total_swcap(), wide.swcap.total_swcap())
        << "seed=" << seed << " width=" << width;
  }
}

TEST(ParDeterminism, FlatGreedyIdenticalAtAnyWidth) {
  for (const std::uint64_t seed : {101ull, 202ull, 303ull})
    expect_width_invariant(seed, /*clustered=*/false);
}

TEST(ParDeterminism, ClusteredGreedyIdenticalAtAnyWidth) {
  for (const std::uint64_t seed : {404ull, 505ull})
    expect_width_invariant(seed, /*clustered=*/true);
}

// --- spatial prune safety --------------------------------------------------

TEST(SpatialPrune, NeverChangesTheChosenTopology) {
  // The prune may only skip pairs whose lower bound strictly exceeds the
  // incumbent cost, so the exhaustive scan and the pruned scan must pick
  // the same argmin at every step -- i.e. identical topologies.
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    verify::DesignSpec spec = verify::random_spec(seed);
    const core::Design design = verify::generate_design(spec);
    const activity::ActivityAnalyzer an(design.rtl, design.stream);
    const auto mods =
        cts::identity_modules(static_cast<int>(design.sinks.size()));
    cts::BuildOptions opts;
    opts.cost = cts::MergeCost::SwitchedCapacitance;
    opts.control_point = design.die.center();
    opts.spatial_prune = false;
    const cts::BuildResult exhaustive =
        cts::build_topology(design.sinks, &an, mods, opts);
    opts.spatial_prune = true;
    const cts::BuildResult pruned =
        cts::build_topology(design.sinks, &an, mods, opts);
    ASSERT_EQ(exhaustive.topo.num_nodes(), pruned.topo.num_nodes());
    for (int id = 0; id < exhaustive.topo.num_nodes(); ++id) {
      EXPECT_EQ(exhaustive.topo.node(id).left, pruned.topo.node(id).left)
          << "seed=" << seed << " id=" << id;
      EXPECT_EQ(exhaustive.topo.node(id).right, pruned.topo.node(id).right)
          << "seed=" << seed << " id=" << id;
    }
  }
}

TEST(SpatialPrune, ActuallyPrunesOnRealInstances) {
  verify::DesignSpec spec = verify::random_spec(77);
  spec.num_sinks = std::max(spec.num_sinks, 96);  // enough pairs to prune
  const core::Design design = verify::generate_design(spec);
  const activity::ActivityAnalyzer an(design.rtl, design.stream);
  const auto mods =
      cts::identity_modules(static_cast<int>(design.sinks.size()));
  cts::BuildOptions opts;
  opts.cost = cts::MergeCost::SwitchedCapacitance;
  opts.control_point = design.die.center();

  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();
  const cts::BuildResult r = cts::build_topology(design.sinks, &an, mods, opts);
  obs::set_metrics_enabled(false);
  EXPECT_TRUE(r.topo.valid());
  EXPECT_GT(obs::Registry::global().counter("cts.pruned_pairs").value(), 0u);
}

}  // namespace
}  // namespace gcr

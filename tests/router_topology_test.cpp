#include <gtest/gtest.h>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"

namespace gcr::core {
namespace {

GatedClockRouter make_router(int n, std::uint64_t seed) {
  benchdata::RBenchSpec spec{"tp", n, 9000.0, 0.005, 0.08, seed};
  benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 16;
  wspec.target_activity = 0.35;
  wspec.stream_length = 4000;
  wspec.seed = seed;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);
  return GatedClockRouter(Design{rb.die, rb.sinks, std::move(wl.rtl),
                                 std::move(wl.stream), {}});
}

class TopologySchemes : public ::testing::TestWithParam<TopologyScheme> {};

TEST_P(TopologySchemes, RoutesWithZeroSkewAndValidActivity) {
  const GatedClockRouter router = make_router(40, 71);
  RouterOptions opts;
  opts.style = TreeStyle::Gated;
  opts.topology = GetParam();
  const RouterResult r = router.route(opts);
  EXPECT_EQ(r.tree.num_leaves, 40);
  EXPECT_LT(r.delays.skew(), 1e-6 * std::max(1.0, r.delays.max_delay));
  // Activity arrays are populated for every scheme (Mmm included).
  ASSERT_EQ(static_cast<int>(r.activity.p_en.size()), r.tree.num_nodes());
  EXPECT_NEAR(r.activity.p_en[static_cast<std::size_t>(r.tree.root)],
              1.0, 0.5);  // root enable prob is high but sane
  for (const double p : r.activity.p_en) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(All, TopologySchemes,
                         ::testing::Values(TopologyScheme::MinSwitchedCap,
                                           TopologyScheme::NearestNeighbor,
                                           TopologyScheme::ActivityOnly,
                                           TopologyScheme::Mmm));

TEST(TopologySchemes, MmmProducesBalancedDepths) {
  const GatedClockRouter router = make_router(64, 72);
  RouterOptions opts;
  opts.style = TreeStyle::Gated;
  opts.topology = TopologyScheme::Mmm;
  const RouterResult r = router.route(opts);
  for (int leaf = 0; leaf < 64; ++leaf) {
    int depth = 0;
    for (int id = leaf; r.tree.node(id).parent >= 0;
         id = r.tree.node(id).parent)
      ++depth;
    EXPECT_EQ(depth, 6);
  }
}

TEST(TopologySchemes, SchemesProduceDistinctTrees) {
  const GatedClockRouter router = make_router(48, 73);
  RouterOptions opts;
  opts.style = TreeStyle::Gated;
  opts.topology = TopologyScheme::NearestNeighbor;
  const RouterResult nn = router.route(opts);
  opts.topology = TopologyScheme::ActivityOnly;
  const RouterResult ao = router.route(opts);
  // Activity-only ignores geometry: it must spend more wire than NN here.
  EXPECT_GT(ao.tree.total_wirelength(), nn.tree.total_wirelength());
}

TEST(TopologySchemes, ClusteredModeRoutesZeroSkew) {
  const GatedClockRouter router = make_router(300, 75);
  RouterOptions opts;
  opts.style = TreeStyle::GatedReduced;
  opts.clustered = true;
  const RouterResult r = router.route(opts);
  EXPECT_EQ(r.tree.num_leaves, 300);
  EXPECT_LT(r.delays.skew(), 1e-6 * std::max(1.0, r.delays.max_delay));
  // Clustered and flat share the evaluation pipeline: report consistency.
  EXPECT_NEAR(r.swcap.total_swcap(),
              r.swcap.clock_swcap + r.swcap.ctrl_swcap, 1e-12);
}

TEST(TopologySchemes, BufferedAlwaysUsesNearestNeighbor) {
  const GatedClockRouter router = make_router(32, 74);
  RouterOptions a;
  a.style = TreeStyle::Buffered;
  a.topology = TopologyScheme::MinSwitchedCap;
  RouterOptions b = a;
  b.topology = TopologyScheme::Mmm;
  const RouterResult ra = router.route(a);
  const RouterResult rb = router.route(b);
  EXPECT_DOUBLE_EQ(ra.tree.total_wirelength(), rb.tree.total_wirelength());
  EXPECT_DOUBLE_EQ(ra.swcap.total_swcap(), rb.swcap.total_swcap());
}

}  // namespace
}  // namespace gcr::core

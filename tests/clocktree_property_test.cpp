#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "cts/greedy.h"

/// Property suite over randomly generated instances: any topology the greedy
/// engines produce must embed with (numerically) exact zero skew, physical
/// edge lengths, and merge-phase delays that the independent Elmore referee
/// reproduces -- gated and ungated, across sizes and seeds.

namespace gcr::ct {
namespace {

struct Params {
  int num_sinks;
  std::uint64_t seed;
  bool gated;
  double die;
};

SinkList random_sinks(int n, std::uint64_t seed, double die) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, die);
  std::uniform_real_distribution<double> cap(0.005, 0.1);
  SinkList sinks;
  sinks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) sinks.push_back({{coord(rng), coord(rng)}, cap(rng)});
  return sinks;
}

class ZeroSkewProperty : public ::testing::TestWithParam<Params> {};

TEST_P(ZeroSkewProperty, GreedyTreeEmbedsWithZeroSkew) {
  const Params p = GetParam();
  const tech::TechParams tech;
  const SinkList sinks = random_sinks(p.num_sinks, p.seed, p.die);

  cts::BuildOptions opts;
  opts.cost = cts::MergeCost::NearestNeighbor;
  opts.gated_edges = p.gated;
  opts.tech = tech;
  const cts::BuildResult built =
      cts::build_topology(sinks, nullptr, {}, opts);
  ASSERT_TRUE(built.topo.valid());
  ASSERT_EQ(built.topo.num_nodes(), 2 * p.num_sinks - 1);

  std::vector<bool> gates(static_cast<std::size_t>(built.topo.num_nodes()),
                          p.gated);
  gates[static_cast<std::size_t>(built.topo.root())] = false;
  const RoutedTree tree = embed(built.topo, sinks, gates, tech);

  // 1. Zero skew, certified by the independent Elmore evaluator. The
  //    tolerance is relative: delays accumulate over ~N merges.
  const DelayReport rep = elmore_delays(tree, tech);
  EXPECT_LT(rep.skew(), 1e-7 * std::max(1.0, rep.max_delay));

  // 2. The merge-phase root delay matches the referee.
  EXPECT_NEAR(rep.max_delay, tree.node(tree.root).delay,
              1e-7 * std::max(1.0, rep.max_delay));

  // 3. Physical embedding: every edge covers its geometric span; every leaf
  //    sits exactly on its sink; every node lies on its merging segment.
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const RoutedNode& n = tree.node(id);
    if (n.parent >= 0) {
      EXPECT_LE(geom::manhattan_dist(n.loc, tree.node(n.parent).loc),
                n.edge_len + 1e-6);
    }
    EXPECT_TRUE(n.ms.contains(n.loc, 1e-6));
  }
  for (int i = 0; i < p.num_sinks; ++i) {
    EXPECT_NEAR(geom::manhattan_dist(tree.node(i).loc,
                                     sinks[static_cast<std::size_t>(i)].loc),
                0.0, 1e-9);
  }

  // 4. Wirelength sanity: at least half the sum of nearest-neighbor
  //    distances (a weak Steiner lower bound), and not absurdly above the
  //    total pairwise spread.
  EXPECT_GT(tree.total_wirelength(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZeroSkewProperty,
    ::testing::Values(Params{2, 1, false, 1000.0}, Params{3, 2, true, 1000.0},
                      Params{8, 3, false, 5000.0}, Params{8, 4, true, 5000.0},
                      Params{33, 5, false, 10000.0},
                      Params{33, 6, true, 10000.0},
                      Params{64, 7, true, 8000.0},
                      Params{100, 8, false, 20000.0},
                      Params{100, 9, true, 20000.0},
                      Params{150, 10, true, 15000.0}));

/// Degenerate geometry: many collinear and coincident sinks.
TEST(ZeroSkewDegenerate, CollinearSinks) {
  const tech::TechParams tech;
  SinkList sinks;
  for (int i = 0; i < 16; ++i)
    sinks.push_back({{100.0 * i, 0.0}, 0.02 + 0.001 * i});
  cts::BuildOptions opts;
  opts.tech = tech;
  const auto built = cts::build_topology(sinks, nullptr, {}, opts);
  std::vector<bool> gates(static_cast<std::size_t>(built.topo.num_nodes()),
                          false);
  const RoutedTree tree = embed(built.topo, sinks, gates, tech);
  const DelayReport rep = elmore_delays(tree, tech);
  EXPECT_LT(rep.skew(), 1e-7 * std::max(1.0, rep.max_delay));
}

TEST(ZeroSkewDegenerate, CoincidentSinks) {
  const tech::TechParams tech;
  SinkList sinks(8, Sink{{500.0, 500.0}, 0.03});
  cts::BuildOptions opts;
  opts.tech = tech;
  const auto built = cts::build_topology(sinks, nullptr, {}, opts);
  std::vector<bool> gates(static_cast<std::size_t>(built.topo.num_nodes()),
                          false);
  const RoutedTree tree = embed(built.topo, sinks, gates, tech);
  EXPECT_NEAR(tree.total_wirelength(), 0.0, 1e-6);
  const DelayReport rep = elmore_delays(tree, tech);
  EXPECT_LT(rep.skew(), 1e-9);
}

TEST(ZeroSkewDegenerate, WildlyAsymmetricLoads) {
  const tech::TechParams tech;
  SinkList sinks = {{{0, 0}, 2.0},      // giant load
                    {{50, 0}, 0.001},   // tiny load right next to it
                    {{5000, 5000}, 0.02},
                    {{5100, 4900}, 1.5}};
  cts::BuildOptions opts;
  opts.tech = tech;
  const auto built = cts::build_topology(sinks, nullptr, {}, opts);
  std::vector<bool> gates(static_cast<std::size_t>(built.topo.num_nodes()),
                          false);
  const RoutedTree tree = embed(built.topo, sinks, gates, tech);
  const DelayReport rep = elmore_delays(tree, tech);
  EXPECT_LT(rep.skew(), 1e-7 * std::max(1.0, rep.max_delay));
}

}  // namespace
}  // namespace gcr::ct

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/router.h"
#include "guard/fault.h"
#include "guard/status.h"
#include "io/text_io.h"
#include "serve/cache.h"
#include "serve/service.h"
#include "verify/generator.h"

/// \file serve_test.cpp
/// The gcr::serve contract (docs/serving.md): explicit backpressure,
/// per-request fault isolation, cache hits bit-identical to cold routes,
/// and drains that lose nothing. Designs are generated, written to a
/// scratch directory and served from files -- the same path production
/// requests take.

namespace fs = std::filesystem;
using namespace gcr;

namespace {

/// Scratch directory holding generated design files; removed on teardown.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gcr_serve_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Write the seeded design as <stem>.{sinks,rtl,stream}; returns a
  /// ready-to-submit request (id defaults to the stem).
  io::RouteRequest write_design(std::uint64_t seed, const std::string& stem) {
    const verify::DesignSpec spec = verify::random_spec(seed);
    const core::Design d = verify::generate_design(spec);
    {
      std::ofstream os(dir_ / (stem + ".sinks"));
      io::write_sinks(os, d.die, d.sinks);
    }
    {
      std::ofstream os(dir_ / (stem + ".rtl"));
      io::write_rtl(os, d.rtl);
    }
    {
      std::ofstream os(dir_ / (stem + ".stream"));
      io::write_stream(os, d.stream);
    }
    io::RouteRequest req;
    req.id = stem;
    req.sinks = (dir_ / (stem + ".sinks")).string();
    req.rtl = (dir_ / (stem + ".rtl")).string();
    req.stream = (dir_ / (stem + ".stream")).string();
    return req;
  }

  /// Route the same seed directly through the library -- the one-shot
  /// reference a served result must match bit-for-bit.
  static core::RouterResult reference_route(std::uint64_t seed) {
    const verify::DesignSpec spec = verify::random_spec(seed);
    const core::GatedClockRouter router(verify::generate_design(spec));
    core::RouterOptions opts;
    opts.num_threads = 1;
    return router.route(opts);
  }

  /// Poll until `n` outcomes are recorded (requests settle out of order;
  /// this is the only wait the tests need).
  static void wait_for(const serve::BatchService& s, std::uint64_t n) {
    const auto settled = [&] {
      const serve::ServeStats st = s.stats();
      return st.done + st.shed + st.expired + st.invalid + st.errors >= n;
    };
    const auto t0 = std::chrono::steady_clock::now();
    while (!settled()) {
      ASSERT_LT(std::chrono::steady_clock::now() - t0,
                std::chrono::seconds(60))
          << "service never settled";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  fs::path dir_;
};

bool routed_trees_identical(const ct::RoutedTree& a, const ct::RoutedTree& b) {
  if (a.root != b.root || a.num_leaves != b.num_leaves ||
      a.nodes.size() != b.nodes.size())
    return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const ct::RoutedNode& x = a.nodes[i];
    const ct::RoutedNode& y = b.nodes[i];
    if (x.left != y.left || x.right != y.right || x.parent != y.parent ||
        x.loc.x != y.loc.x || x.loc.y != y.loc.y ||
        x.edge_len != y.edge_len || x.gated != y.gated ||
        x.gate_size != y.gate_size || x.down_cap != y.down_cap ||
        x.delay != y.delay)
      return false;
  }
  return true;
}

}  // namespace

// --- backpressure ----------------------------------------------------------

TEST_F(ServeTest, QueueFullShedsWithOverload) {
  const io::RouteRequest req = write_design(11, "d11");
  serve::ServeOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.policy = serve::AdmitPolicy::Shed;
  serve::BatchService service(opts);
  // Lanes not started yet: the queue fills deterministically.
  EXPECT_TRUE(service.submit(req));
  EXPECT_TRUE(service.submit(req));
  EXPECT_FALSE(service.submit(req));  // bound hit -> shed, not queued
  EXPECT_FALSE(service.submit(req));
  service.start();
  service.drain();
  const std::vector<serve::RequestOutcome> outs = service.take_outcomes();
  ASSERT_EQ(outs.size(), 4u);
  int done = 0;
  int shed = 0;
  for (const serve::RequestOutcome& o : outs) {
    if (o.state == serve::RequestState::Done) ++done;
    if (o.state == serve::RequestState::Shed) {
      ++shed;
      EXPECT_EQ(o.code, guard::Code::Overload);
      EXPECT_EQ(o.exit_code(), guard::kExitResource);
    }
  }
  EXPECT_EQ(done, 2);
  EXPECT_EQ(shed, 2);
  const serve::ServeStats st = service.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.admitted, 2u);
  EXPECT_EQ(st.shed, 2u);
  EXPECT_EQ(st.peak_queue_depth, 2u);
}

// --- per-request deadlines -------------------------------------------------

TEST_F(ServeTest, ExpiredRequestLeavesServiceHealthy) {
  io::RouteRequest doomed = write_design(22, "d22");
  doomed.id = "doomed";
  doomed.deadline_ms = 0.0;  // expires before the lane even reads a file
  io::RouteRequest fine = write_design(23, "d23");
  serve::ServeOptions opts;
  opts.workers = 1;
  serve::BatchService service(opts);
  service.start();
  EXPECT_TRUE(service.submit(doomed));
  EXPECT_TRUE(service.submit(fine));
  service.drain();
  const std::vector<serve::RequestOutcome> outs = service.take_outcomes();
  ASSERT_EQ(outs.size(), 2u);
  const serve::RequestOutcome& first =
      outs[0].id == "doomed" ? outs[0] : outs[1];
  const serve::RequestOutcome& second =
      outs[0].id == "doomed" ? outs[1] : outs[0];
  EXPECT_EQ(first.state, serve::RequestState::Expired);
  EXPECT_EQ(first.code, guard::Code::Deadline);
  EXPECT_EQ(first.exit_code(), guard::kExitResource);
  ASSERT_EQ(second.state, serve::RequestState::Done);
  EXPECT_TRUE(
      routed_trees_identical(second.result->tree, reference_route(23).tree));
}

// --- content-hash caching --------------------------------------------------

TEST_F(ServeTest, CacheHitIsBitIdenticalToColdRoute) {
  io::RouteRequest req = write_design(33, "d33");
  io::RouteRequest again = req;
  again.id = "again";
  again.threads = 2;  // width differs; fingerprint (correctly) ignores it
  serve::ServeOptions opts;
  opts.workers = 1;  // serial lane: the second request must hit warm
  serve::BatchService service(opts);
  service.start();
  EXPECT_TRUE(service.submit(req));
  EXPECT_TRUE(service.submit(again));
  service.drain();
  const std::vector<serve::RequestOutcome> outs = service.take_outcomes();
  ASSERT_EQ(outs.size(), 2u);
  ASSERT_EQ(outs[0].state, serve::RequestState::Done);
  ASSERT_EQ(outs[1].state, serve::RequestState::Done);
  EXPECT_FALSE(outs[0].cache_hit);
  EXPECT_TRUE(outs[1].cache_hit);
  EXPECT_TRUE(outs[1].design_cache_hit);
  // Warm result identical to the cold one AND to a one-shot library route.
  EXPECT_TRUE(
      routed_trees_identical(outs[0].result->tree, outs[1].result->tree));
  const core::RouterResult ref = reference_route(33);
  EXPECT_TRUE(routed_trees_identical(outs[1].result->tree, ref.tree));
  EXPECT_EQ(outs[1].result->swcap.total_swcap(), ref.swcap.total_swcap());
  const serve::ServeStats st = service.stats();
  EXPECT_EQ(st.result_cache.hits, 1u);
  EXPECT_EQ(st.design_cache.hits, 1u);
}

TEST_F(ServeTest, CacheEvictionKeepsBoundAndCounts) {
  serve::ServeOptions opts;
  opts.workers = 1;
  opts.design_cache_capacity = 2;
  opts.result_cache_capacity = 2;
  serve::BatchService service(opts);
  service.start();
  for (std::uint64_t seed = 40; seed < 45; ++seed)
    EXPECT_TRUE(
        service.submit(write_design(seed, "d" + std::to_string(seed))));
  service.drain();
  for (const serve::RequestOutcome& o : service.take_outcomes())
    EXPECT_EQ(o.state, serve::RequestState::Done);
  const serve::ServeStats st = service.stats();
  EXPECT_EQ(st.result_cache.entries, 2u);  // bound held
  EXPECT_EQ(st.result_cache.evictions, 3u);
  EXPECT_EQ(st.design_cache.entries, 2u);
  EXPECT_EQ(st.design_cache.evictions, 3u);
}

// --- graceful drain --------------------------------------------------------

TEST_F(ServeTest, DrainUnderLoadCompletesEveryAdmittedRequest) {
  std::vector<io::RouteRequest> reqs;
  for (std::uint64_t seed = 50; seed < 56; ++seed)
    reqs.push_back(write_design(seed, "d" + std::to_string(seed)));
  serve::ServeOptions opts;
  opts.workers = 3;
  serve::BatchService service(opts);
  service.start();
  std::uint64_t admitted = 0;
  for (int rep = 0; rep < 3; ++rep)
    for (io::RouteRequest r : reqs) {
      r.id += "_rep" + std::to_string(rep);
      if (service.submit(std::move(r))) ++admitted;
    }
  // Drain races the lanes: everything admitted above must still complete.
  service.drain();
  const std::vector<serve::RequestOutcome> outs = service.take_outcomes();
  ASSERT_EQ(outs.size(), 18u);
  std::uint64_t done = 0;
  for (const serve::RequestOutcome& o : outs) {
    EXPECT_NE(o.state, serve::RequestState::Error) << o.id << ": " << o.message;
    if (o.state == serve::RequestState::Done) ++done;
  }
  EXPECT_EQ(done, admitted);
  // Submissions after drain shed instead of vanishing.
  EXPECT_FALSE(service.submit(reqs[0]));
  EXPECT_EQ(service.take_outcomes().size(), 1u);
}

// --- fault isolation -------------------------------------------------------

// An injected fault while request N is in flight (admission, file read or
// parse, depending on where the nth visit lands) must fail N with a
// contract code and leave the service routing request N+1 normally --
// including when N+1 needs the exact intermediates N was building when it
// died.
TEST_F(ServeTest, InjectedFaultDoesNotPoisonTheNextRequest) {
  for (const std::uint64_t nth : {1ull, 2ull, 3ull, 5ull, 9ull, 17ull}) {
    SCOPED_TRACE("nth=" + std::to_string(nth));
    serve::ServeOptions opts;
    opts.workers = 1;
    serve::BatchService service(opts);
    service.start();
    EXPECT_TRUE(service.submit(write_design(61, "healthy")));
    wait_for(service, 1);

    guard::FaultInjector::global().arm({/*seed=*/nth, /*nth=*/nth, 0.0});
    io::RouteRequest victim = write_design(62, "victim");
    (void)service.submit(victim);  // may itself shed at serve.enqueue
    wait_for(service, 2);
    guard::FaultInjector::global().disarm();

    io::RouteRequest retry = victim;  // same design the victim poisoned
    retry.id = "retry";
    EXPECT_TRUE(service.submit(retry));
    service.drain();

    const std::vector<serve::RequestOutcome> outs = service.take_outcomes();
    ASSERT_EQ(outs.size(), 3u);
    ASSERT_EQ(outs[0].id, "healthy");
    EXPECT_EQ(outs[0].state, serve::RequestState::Done);
    const serve::RequestOutcome& hurt = outs[1];
    if (guard::FaultInjector::global().faults_fired() > 0) {
      EXPECT_NE(hurt.state, serve::RequestState::Done)
          << "fault fired but request " << hurt.id << " claims success";
      EXPECT_NE(hurt.code, guard::Code::Ok);
      EXPECT_NE(hurt.exit_code(), guard::kExitOk);
    }
    const serve::RequestOutcome& retried = outs[2];
    ASSERT_EQ(retried.state, serve::RequestState::Done)
        << retried.message << " (code "
        << guard::code_name(retried.code) << ")";
    EXPECT_TRUE(routed_trees_identical(retried.result->tree,
                                       reference_route(62).tree))
        << "post-fault route differs from the one-shot reference";
  }
}

// --- the serve cache primitive ---------------------------------------------

TEST(LruCache, EvictsLeastRecentlyUsedAndInvalidates) {
  serve::LruCache<int> cache("test.cache", 2);
  EXPECT_EQ(cache.get(1), nullptr);
  cache.put(1, std::make_shared<const int>(10));
  cache.put(2, std::make_shared<const int>(20));
  ASSERT_NE(cache.get(1), nullptr);  // 1 now most recent
  std::uint64_t victim = 0;
  EXPECT_TRUE(cache.put(3, std::make_shared<const int>(30), &victim));
  EXPECT_EQ(victim, 2u);  // 2 was the LRU entry
  EXPECT_EQ(cache.get(2), nullptr);
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(*cache.get(1), 10);
  EXPECT_TRUE(cache.invalidate(1));
  EXPECT_FALSE(cache.invalidate(1));
  EXPECT_EQ(cache.get(1), nullptr);
  const serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.capacity, 2u);
}

TEST(LruCache, ZeroCapacityDisables) {
  serve::LruCache<int> cache("test.disabled", 0);
  EXPECT_FALSE(cache.put(1, std::make_shared<const int>(1)));
  EXPECT_EQ(cache.get(1), nullptr);
}

TEST(LruCache, ContentHashIsStable) {
  // Pinned values: cache keys feed log payloads and cross-run comparisons,
  // so the hash must never drift silently.
  EXPECT_EQ(serve::hash_bytes(""), 14695981039346656037ull);
  EXPECT_EQ(serve::hash_bytes("reqs"), 5525736559236522720ull);
  EXPECT_NE(serve::hash_bytes("a", 1), serve::hash_bytes("a", 2));
  EXPECT_NE(serve::hash_combine(1, 2), serve::hash_combine(2, 1));
}

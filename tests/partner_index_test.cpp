#include "cts/partner_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "clocktree/zskew.h"
#include "geom/point.h"
#include "tech/params.h"
#include "test_seed.h"

/// \file partner_index_test.cpp
/// Property tests for cts::PartnerIndex: at every step of a seeded random
/// insert / merge / remove sequence, find_best must return exactly the
/// (cost, smallest-partner-id) argmin that a brute-force O(front^2) scan
/// over all stored items computes. This is the index's whole contract --
/// the greedy engine stays bit-identical to the exhaustive rescan only
/// because the query never misses a minimum and never loses a tie.

namespace gcr {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Model {
  cts::PartnerIndex index;
  tech::TechParams tech;
  std::vector<cts::PartnerIndex::Item> items;  // id -> item
  std::vector<int> live;
  std::vector<char> is_live;
  int next_id = 0;

  explicit Model(cts::PartnerIndex::Metric metric, int capacity,
                 double side) {
    items.resize(static_cast<std::size_t>(capacity));
    is_live.assign(static_cast<std::size_t>(capacity), 0);
    index.init(metric, &tech, capacity, capacity / 2, 0.0, 0.0, side, side);
    metric_ = metric;
  }

  /// The exact pair cost the test evaluates: the per-side Eq. 3 shape the
  /// SwitchedCap metric contracts for -- the zero-skew balance split of
  /// the pair distance (ct::balance_lengths over the items' a/b
  /// coefficients, snaking included), each side's wire priced at its own
  /// p_floor. This is *equal* to the index's per-pair bound (modulo the
  /// 1-1e-9 slack), so it exercises every bound at its tightest.
  [[nodiscard]] double cost(int i, int j) const {
    const auto& a = items[static_cast<std::size_t>(i)];
    const auto& b = items[static_cast<std::size_t>(j)];
    const double d = std::max(
        0.0, geom::manhattan_dist(a.center, b.center) - a.reach - b.reach);
    if (metric_ == cts::PartnerIndex::Metric::Distance) return d;
    const ct::BalanceSplit s =
        ct::balance_lengths({a.a_coef, a.b_coef}, {b.a_coef, b.b_coef}, d,
                            tech.unit_res * tech.unit_cap);
    return a.self_cost + b.self_cost + tech.wire_cap(s.len_a) * a.p_floor +
           tech.wire_cap(s.len_b) * b.p_floor;
  }

  /// Brute-force reference: argmin of cost over every other live id, ties
  /// to the smallest id.
  [[nodiscard]] cts::PartnerIndex::Best brute_best(int i) const {
    cts::PartnerIndex::Best best;
    for (const int j : live) {
      if (j == i) continue;
      const double c = cost(i, j);
      if (c < best.cost || (c == best.cost && j < best.partner)) {
        best.cost = c;
        best.partner = j;
      }
    }
    return best;
  }

  int insert(const cts::PartnerIndex::Item& item) {
    const int id = next_id++;
    items[static_cast<std::size_t>(id)] = item;
    is_live[static_cast<std::size_t>(id)] = 1;
    live.push_back(id);
    index.insert(id, item);
    return id;
  }

  void remove(int id) {
    is_live[static_cast<std::size_t>(id)] = 0;
    live.erase(std::find(live.begin(), live.end(), id));
    index.remove(id);
  }

 private:
  cts::PartnerIndex::Metric metric_;
};

/// Check find_best against the brute force for `id`, both with a plain
/// exact eval and with an engine-style eval that prunes on the incumbent
/// (returns +inf when its own bound proves strict domination).
void expect_exact(const Model& m, int id) {
  const auto plain = [&](int j, double, bool) { return m.cost(id, j); };
  const auto pruning = [&](int j, double incumbent, bool has_incumbent) {
    const double c = m.cost(id, j);
    if (has_incumbent && c * (1.0 - 1e-9) > incumbent) return kInf;
    return c;
  };
  const cts::PartnerIndex::Best want = m.brute_best(id);
  cts::PartnerIndex::QueryStats stats;
  const cts::PartnerIndex::Best got = m.index.find_best(id, plain, &stats);
  EXPECT_EQ(got.partner, want.partner) << "id " << id;
  EXPECT_EQ(got.cost, want.cost) << "id " << id;
  const cts::PartnerIndex::Best got2 = m.index.find_best(id, pruning);
  EXPECT_EQ(got2.partner, want.partner) << "id " << id << " (pruning eval)";
  EXPECT_EQ(got2.cost, want.cost) << "id " << id << " (pruning eval)";
  if (static_cast<int>(m.live.size()) > 1) {
    EXPECT_GE(stats.evaluated, 1u);
  }
}

cts::PartnerIndex::Item random_item(std::mt19937_64& rng, double side,
                                    bool quantized) {
  std::uniform_real_distribution<double> xy(-0.02 * side, 1.02 * side);
  std::uniform_real_distribution<double> reach(0.0, 0.05 * side);
  std::uniform_real_distribution<double> self(0.0, 4.0);
  std::uniform_real_distribution<double> pf(0.005, 1.0);
  // Delay coefficients sized so the snake floor actually bites: with the
  // default tech (rc = 6e-6, b in [0.01, 0.1]) a-gaps up to 60 force
  // snakes from zero to beyond the die side.
  std::uniform_real_distribution<double> acoef(0.0, 60.0);
  std::uniform_real_distribution<double> bcoef(0.01, 0.1);
  cts::PartnerIndex::Item it;
  it.center = {xy(rng), xy(rng)};
  it.reach = reach(rng);
  it.self_cost = self(rng);
  it.p_floor = pf(rng);
  it.a_coef = acoef(rng);
  it.b_coef = bcoef(rng);
  if (quantized) {
    // Snap everything to a coarse lattice so exact cost ties (including
    // across bucket boundaries) happen constantly and the smallest-id
    // tie-break is really exercised. The delay floor is made inert (equal
    // a_coef) so ties stay exact.
    const double g = side / 8.0;
    it.center = {std::round(it.center.x / g) * g,
                 std::round(it.center.y / g) * g};
    it.reach = 0.0;
    it.self_cost = std::round(it.self_cost);
    it.p_floor = 0.5;
    it.a_coef = 0.0;
    it.b_coef = 0.05;
  }
  return it;
}

class PartnerIndexFuzz : public ::testing::TestWithParam<std::uint64_t> {};

void run_sequence(cts::PartnerIndex::Metric metric, std::uint64_t seed,
                  bool quantized) {
  std::mt19937_64 rng(seed);
  const double side = 1000.0;
  const int n0 = 48;
  const int steps = 160;
  Model m(metric, /*capacity=*/n0 + steps + 8, side);

  for (int i = 0; i < n0; ++i) m.insert(random_item(rng, side, quantized));

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int step = 0; step < steps; ++step) {
    const double c = coin(rng);
    if (c < 0.55 && m.live.size() >= 2) {
      // Merge-like: remove two live items, insert their "parent" -- center
      // near the midpoint, self_cost grown (the engine's common case), but
      // sometimes *below* both (stresses the pyramid's min aggregates).
      std::uniform_int_distribution<std::size_t> pick(0, m.live.size() - 1);
      const int a = m.live[pick(rng)];
      int b = a;
      while (b == a) b = m.live[pick(rng)];
      const auto ia = m.items[static_cast<std::size_t>(a)];
      const auto ib = m.items[static_cast<std::size_t>(b)];
      m.remove(a);
      m.remove(b);
      cts::PartnerIndex::Item merged;
      merged.center = {0.5 * (ia.center.x + ib.center.x),
                       0.5 * (ia.center.y + ib.center.y)};
      merged.reach = std::max(ia.reach, ib.reach);
      const bool undercut = coin(rng) < 0.15;
      merged.self_cost = undercut
                             ? 0.5 * std::min(ia.self_cost, ib.self_cost)
                             : ia.self_cost + ib.self_cost;
      merged.p_floor = std::max(ia.p_floor, ib.p_floor);
      // Delay grows through a merge (like the engine's zero-skew delay);
      // keep the pessimistic b.
      merged.a_coef = ia.a_coef + ib.a_coef;
      merged.b_coef = std::max(ia.b_coef, ib.b_coef);
      if (quantized) {
        merged.reach = 0.0;
        merged.self_cost = std::round(merged.self_cost);
        merged.p_floor = 0.5;
        merged.a_coef = 0.0;
        merged.b_coef = 0.05;
      }
      m.insert(merged);
      m.index.maybe_rebuild();
    } else if (c < 0.75 && !m.live.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, m.live.size() - 1);
      m.remove(m.live[pick(rng)]);
      m.index.maybe_rebuild();
    } else {
      m.insert(random_item(rng, side, quantized));
    }
    ASSERT_EQ(m.index.size(), static_cast<int>(m.live.size()));

    // Exactness after *every* step, on a handful of random live ids.
    if (!m.live.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, m.live.size() - 1);
      for (int k = 0; k < 3; ++k) expect_exact(m, m.live[pick(rng)]);
    }
  }
}

/// ECO-style churn: the incremental re-router (eco::route_incremental)
/// detaches preserved subtrees and feeds their roots back into the engine
/// as fresh candidates -- an item leaves the index and a new id re-enters
/// later at the *same* coordinates and coefficients. This sequence drives
/// exactly that shape: removals whose items are remembered, verbatim
/// re-insertions under fresh ids (duplicating a live item's position is
/// legal and must still tie-break to the smallest id), and merges in
/// between, with the brute-force exactness check after every step.
void run_eco_churn(cts::PartnerIndex::Metric metric, std::uint64_t seed,
                   bool quantized) {
  std::mt19937_64 rng(seed);
  const double side = 1000.0;
  const int n0 = 32;
  const int steps = 140;
  Model m(metric, /*capacity=*/n0 + 2 * steps + 8, side);
  for (int i = 0; i < n0; ++i) m.insert(random_item(rng, side, quantized));

  std::vector<cts::PartnerIndex::Item> graveyard;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int step = 0; step < steps; ++step) {
    const double c = coin(rng);
    if (c < 0.35 && m.live.size() >= 2) {
      std::uniform_int_distribution<std::size_t> pick(0, m.live.size() - 1);
      const int id = m.live[pick(rng)];
      graveyard.push_back(m.items[static_cast<std::size_t>(id)]);
      m.remove(id);
      m.index.maybe_rebuild();
    } else if (c < 0.70 && !graveyard.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, graveyard.size() - 1);
      const std::size_t g = pick(rng);
      m.insert(graveyard[g]);
      graveyard[g] = graveyard.back();
      graveyard.pop_back();
    } else if (m.live.size() >= 2) {
      std::uniform_int_distribution<std::size_t> pick(0, m.live.size() - 1);
      const int a = m.live[pick(rng)];
      int b = a;
      while (b == a) b = m.live[pick(rng)];
      const auto ia = m.items[static_cast<std::size_t>(a)];
      const auto ib = m.items[static_cast<std::size_t>(b)];
      m.remove(a);
      m.remove(b);
      cts::PartnerIndex::Item merged;
      merged.center = {0.5 * (ia.center.x + ib.center.x),
                       0.5 * (ia.center.y + ib.center.y)};
      merged.reach = quantized ? 0.0 : std::max(ia.reach, ib.reach);
      merged.self_cost = quantized
                             ? std::round(ia.self_cost + ib.self_cost)
                             : ia.self_cost + ib.self_cost;
      merged.p_floor = quantized ? 0.5 : std::max(ia.p_floor, ib.p_floor);
      merged.a_coef = quantized ? 0.0 : ia.a_coef + ib.a_coef;
      merged.b_coef = quantized ? 0.05 : std::max(ia.b_coef, ib.b_coef);
      m.insert(merged);
      m.index.maybe_rebuild();
    } else {
      m.insert(random_item(rng, side, quantized));
    }
    ASSERT_EQ(m.index.size(), static_cast<int>(m.live.size()));
    if (!m.live.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, m.live.size() - 1);
      for (int k = 0; k < 3; ++k) expect_exact(m, m.live[pick(rng)]);
    }
  }
}

TEST_P(PartnerIndexFuzz, SwitchedCapMatchesBruteForceAtEveryStep) {
  run_sequence(cts::PartnerIndex::Metric::SwitchedCap, GetParam(), false);
}

TEST_P(PartnerIndexFuzz, EcoChurnRemoveReinsertMatchesBruteForce) {
  run_eco_churn(cts::PartnerIndex::Metric::SwitchedCap, GetParam(), false);
  // Quantized: re-inserted duplicates collide in cost constantly, so the
  // smallest-id tie-break is exercised on every query.
  run_eco_churn(cts::PartnerIndex::Metric::SwitchedCap,
                GetParam() ^ 0x5ca1ab1eull, true);
}

TEST_P(PartnerIndexFuzz, DistanceMatchesBruteForceAtEveryStep) {
  run_sequence(cts::PartnerIndex::Metric::Distance, GetParam(), false);
}

TEST_P(PartnerIndexFuzz, QuantizedTiesResolveToTheSmallestId) {
  run_sequence(cts::PartnerIndex::Metric::SwitchedCap, GetParam(), true);
  run_sequence(cts::PartnerIndex::Metric::Distance, GetParam() ^ 0x9e37ull,
               true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartnerIndexFuzz,
                         ::testing::ValuesIn(gcr::test::fuzz_seeds(
                             {11, 2026, 424242})),
                         gcr::test::SeedParamName{});

TEST(PartnerIndex, RemoveThenReinsertSameCoordinateIsExact) {
  // The minimal ECO re-entry: an item leaves and an identical item comes
  // back under a fresh id. The index must treat the newcomer as a full
  // citizen -- findable, returned as a partner, exact against brute force.
  Model m(cts::PartnerIndex::Metric::SwitchedCap, /*capacity=*/16, 1000.0);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 6; ++i) m.insert(random_item(rng, 1000.0, false));
  const cts::PartnerIndex::Item departed = m.items[2];
  m.remove(2);
  m.index.maybe_rebuild();
  for (const int id : m.live) expect_exact(m, id);
  const int back = m.insert(departed);  // same coordinates, new id
  EXPECT_EQ(back, 6);
  for (const int id : m.live) expect_exact(m, id);
  // A second verbatim copy: duplicate positions are legal and the
  // smallest-id tie-break decides between them.
  m.insert(departed);
  for (const int id : m.live) expect_exact(m, id);
}

TEST(PartnerIndex, SingleItemHasNoPartner) {
  tech::TechParams tech;
  cts::PartnerIndex idx;
  idx.init(cts::PartnerIndex::Metric::SwitchedCap, &tech, 4, 1, 0.0, 0.0,
           100.0, 100.0);
  idx.insert(0, {{50.0, 50.0}, 0.0, 1.0, 0.5});
  const auto best = idx.find_best(
      0, [](int, double, bool) -> double { ADD_FAILURE(); return 0.0; });
  EXPECT_EQ(best.partner, -1);
  EXPECT_EQ(best.cost, kInf);
}

TEST(PartnerIndex, CoincidentCentersDegenerateBuckets) {
  // Every item in the same cell (and the same point): the grid carries one
  // hot bucket; exactness and tie-breaks must survive.
  tech::TechParams tech;
  cts::PartnerIndex idx;
  idx.init(cts::PartnerIndex::Metric::SwitchedCap, &tech, 16, 8, 0.0, 0.0,
           1000.0, 1000.0);
  for (int i = 0; i < 8; ++i) idx.insert(i, {{500.0, 500.0}, 0.0, 2.0, 0.5});
  for (int i = 0; i < 8; ++i) {
    const auto best = idx.find_best(
        i, [&](int j, double, bool) { return 4.0 + 0.0 * j; });
    EXPECT_EQ(best.partner, i == 0 ? 1 : 0);  // tie -> smallest id
    EXPECT_EQ(best.cost, 4.0);
  }
}

TEST(PartnerIndex, ZeroAreaDieDoesNotDivideByZero) {
  tech::TechParams tech;
  cts::PartnerIndex idx;
  idx.init(cts::PartnerIndex::Metric::Distance, &tech, 4, 2, 10.0, 10.0, 0.0,
           0.0);
  idx.insert(0, {{10.0, 10.0}, 0.0, 0.0, 1.0});
  idx.insert(1, {{10.0, 10.0}, 0.0, 0.0, 1.0});
  const auto best =
      idx.find_best(0, [](int, double, bool) { return 0.0; });
  EXPECT_EQ(best.partner, 1);
}

}  // namespace
}  // namespace gcr

#include <gtest/gtest.h>

#include <random>

#include "clocktree/bounded.h"
#include "clocktree/zskew.h"
#include "test_seed.h"

/// Randomized property suite for the merge arithmetic: commutativity,
/// exact balance, snaking correctness and bounded-skew width guarantees
/// over thousands of random subtree pairs, gated and ungated, sized and
/// unit.

namespace gcr::ct {
namespace {

class MergeFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::mt19937_64 rng{GetParam()};
  tech::TechParams t;

  SubtreeTap random_tap() {
    std::uniform_real_distribution<double> c(0.0, 5000.0);
    std::uniform_real_distribution<double> cap(0.005, 0.6);
    std::uniform_real_distribution<double> delay(0.0, 300.0);
    SubtreeTap tap;
    const geom::Point p{c(rng), c(rng)};
    tap.ms = (rng() % 2) ? geom::TiltedRect::from_point(p)
                         : geom::TiltedRect::arc(
                               p, {p.x + 200.0, p.y + (rng() % 2 ? 200.0
                                                                 : -200.0)});
    tap.cap = cap(rng);
    tap.delay = delay(rng);
    return tap;
  }
};

TEST_P(MergeFuzz, MergeIsCommutative) {
  for (int i = 0; i < 1000; ++i) {
    const SubtreeTap a = random_tap();
    const SubtreeTap b = random_tap();
    const bool ga = rng() % 2;
    const bool gb = rng() % 2;
    const MergeResult ab = zero_skew_merge(a, ga, b, gb, t);
    const MergeResult ba = zero_skew_merge(b, gb, a, ga, t);
    EXPECT_NEAR(ab.len_a, ba.len_b, 1e-6);
    EXPECT_NEAR(ab.len_b, ba.len_a, 1e-6);
    EXPECT_NEAR(ab.delay, ba.delay, 1e-6);
    EXPECT_NEAR(ab.cap, ba.cap, 1e-12);
    EXPECT_NEAR(ab.ms.distance_to(ba.ms), 0.0, 1e-6);
  }
}

TEST_P(MergeFuzz, DelaysBalanceExactly) {
  for (int i = 0; i < 1000; ++i) {
    const SubtreeTap a = random_tap();
    const SubtreeTap b = random_tap();
    const bool ga = rng() % 2;
    const bool gb = rng() % 2;
    std::uniform_real_distribution<double> sz(0.5, 4.0);
    const double sa = sz(rng);
    const double sb = sz(rng);
    const MergeResult m = zero_skew_merge(a, ga, b, gb, t, sa, sb);
    const double da = branch_delay(a, ga, m.len_a, t, sa);
    const double db = branch_delay(b, gb, m.len_b, t, sb);
    EXPECT_NEAR(da, db, 1e-6 * std::max(1.0, da));
    EXPECT_EQ(m.delay, da);
    // Total wire always covers the geometric separation.
    EXPECT_GE(m.len_a + m.len_b,
              a.ms.distance_to(b.ms) - 1e-6);
    // The merging segment sits between the subtrees.
    EXPECT_LE(m.ms.distance_to(a.ms), m.len_a + 1e-6);
    EXPECT_LE(m.ms.distance_to(b.ms), m.len_b + 1e-6);
  }
}

TEST_P(MergeFuzz, SnakingOnlyWhenBalanceInfeasible) {
  for (int i = 0; i < 1000; ++i) {
    const SubtreeTap a = random_tap();
    const SubtreeTap b = random_tap();
    const MergeResult m = zero_skew_merge(a, false, b, false, t);
    const double dist = a.ms.distance_to(b.ms);
    const double total = m.len_a + m.len_b;
    if (total > dist + 1e-6) {
      // Snaked: one side must be at zero length.
      EXPECT_TRUE(m.len_a < 1e-9 || m.len_b < 1e-9);
    } else {
      EXPECT_NEAR(total, dist, 1e-6);
    }
  }
}

TEST_P(MergeFuzz, BoundedWidthNeverExceedsBudget) {
  std::uniform_real_distribution<double> w(0.0, 40.0);
  for (int i = 0; i < 500; ++i) {
    const SubtreeTap ta = random_tap();
    const SubtreeTap tb = random_tap();
    const double wa = w(rng);
    const double wb = w(rng);
    const SkewTap a{ta.ms, ta.delay, ta.delay + wa, ta.cap};
    const SkewTap b{tb.ms, tb.delay, tb.delay + wb, tb.cap};
    const double bound = std::max(wa, wb) + w(rng);
    const bool ga = rng() % 2;
    const bool gb = rng() % 2;
    const BoundedMergeResult m = bounded_skew_merge(a, ga, b, gb, t, bound);
    EXPECT_LE(m.dmax - m.dmin, bound + 1e-6) << "trial " << i;
    EXPECT_GE(m.dmax - m.dmin, std::max(wa, wb) - 1e-9);
    // The interval must cover both branch intervals.
    const auto [alo, ahi] = branch_interval(a, ga, m.len_a, t);
    const auto [blo, bhi] = branch_interval(b, gb, m.len_b, t);
    EXPECT_NEAR(m.dmin, std::min(alo, blo), 1e-9);
    EXPECT_NEAR(m.dmax, std::max(ahi, bhi), 1e-9);
  }
}

TEST_P(MergeFuzz, BiggerBudgetNeverCostsMoreWire) {
  std::uniform_real_distribution<double> w(0.0, 20.0);
  for (int i = 0; i < 300; ++i) {
    const SubtreeTap ta = random_tap();
    const SubtreeTap tb = random_tap();
    const SkewTap a{ta.ms, ta.delay, ta.delay + w(rng), ta.cap};
    const SkewTap b{tb.ms, tb.delay, tb.delay + w(rng), tb.cap};
    const double base = std::max(a.width(), b.width());
    double prev = std::numeric_limits<double>::infinity();
    for (const double extra : {0.0, 10.0, 100.0, 1000.0}) {
      const BoundedMergeResult m =
          bounded_skew_merge(a, false, b, false, t, base + extra);
      const double wire = m.len_a + m.len_b;
      EXPECT_LE(wire, prev + 1e-6);
      prev = wire;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeFuzz,
                         ::testing::ValuesIn(test::fuzz_seeds({11u, 12u, 13u})),
                         test::SeedParamName{});

}  // namespace
}  // namespace gcr::ct

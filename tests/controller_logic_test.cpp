#include <gtest/gtest.h>

#include "benchdata/paper_example.h"
#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "clocktree/embed.h"
#include "core/router.h"
#include "gating/controller_logic.h"

namespace gcr::gating {
namespace {

/// Four sinks = modules M1..M4 of a small synthetic workload; every edge
/// gated so the hierarchy structure is known exactly.
struct LogicFixture {
  tech::TechParams tech;
  activity::RtlDescription rtl{4, 4};
  activity::InstructionStream stream;
  ct::SinkList sinks = {{{0, 0}, 0.02},
                        {{1000, 0}, 0.02},
                        {{0, 1000}, 0.02},
                        {{1000, 1000}, 0.02}};
  ct::Topology topo{4};
  ct::RoutedTree tree;
  std::unique_ptr<activity::ActivityAnalyzer> analyzer;
  NodeActivity act;

  LogicFixture() {
    for (int i = 0; i < 4; ++i) rtl.add_use(i, i);  // I_k drives M_k
    for (int t = 0; t < 400; ++t) stream.seq.push_back((t / 3) % 4);
    const int a = topo.merge(0, 1);
    const int b = topo.merge(2, 3);
    topo.merge(a, b);
    std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()), true);
    gates[static_cast<std::size_t>(topo.root())] = false;
    tree = ct::embed(topo, sinks, gates, tech);
    analyzer = std::make_unique<activity::ActivityAnalyzer>(rtl, stream);
    act = compute_node_activity(tree, *analyzer, {0, 1, 2, 3});
  }
};

TEST(ControllerLogic, FlatCostCountsSubtreeModules) {
  LogicFixture f;
  const ControllerPlacement ctrl(geom::DieArea::square(1000.0), 1);
  const auto rep = synthesize_controller_logic(
      f.tree, f.act, *f.analyzer, ctrl, f.tech, LogicStyle::Flat);
  // 6 gates: 4 leaf enables (single module each -> 0 ORs) + 2 internal
  // enables over 2 modules each -> 1 OR each.
  EXPECT_EQ(rep.num_enables, 6);
  EXPECT_EQ(rep.num_or_gates, 2);
  EXPECT_DOUBLE_EQ(rep.logic_area, 2 * f.tech.or_gate_area);
}

TEST(ControllerLogic, HierarchicalReusesChildEnables) {
  LogicFixture f;
  const ControllerPlacement ctrl(geom::DieArea::square(1000.0), 1);
  const auto rep = synthesize_controller_logic(
      f.tree, f.act, *f.analyzer, ctrl, f.tech, LogicStyle::Hierarchical);
  // Internal enables OR the two child enables: also 1 OR each here, but
  // the inputs are reused signals rather than re-derived module ORs.
  EXPECT_EQ(rep.num_enables, 6);
  EXPECT_EQ(rep.num_or_gates, 2);
}

TEST(ControllerLogic, HierarchicalNeverCostsMoreThanFlat) {
  // On larger designs with deeper subtrees the sharing wins big.
  benchdata::RBenchSpec spec{"cl", 60, 9000.0, 0.005, 0.08, 123};
  benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 16;
  wspec.target_activity = 0.4;
  wspec.stream_length = 4000;
  wspec.seed = 123;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);
  core::Design d{rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream),
                 {}};
  const core::GatedClockRouter router(std::move(d));
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const auto r = router.route(opts);

  const ControllerPlacement ctrl(rb.die, 1);
  const auto flat = synthesize_controller_logic(
      r.tree, r.activity, router.analyzer(), ctrl, opts.tech,
      LogicStyle::Flat);
  const auto hier = synthesize_controller_logic(
      r.tree, r.activity, router.analyzer(), ctrl, opts.tech,
      LogicStyle::Hierarchical);
  EXPECT_LT(hier.num_or_gates, flat.num_or_gates);
  EXPECT_LE(hier.logic_swcap, flat.logic_swcap + 1e-9);
  // Fully gated tree: hierarchical needs exactly one OR per internal-node
  // enable (both children gated), i.e. gates - leaves.
  EXPECT_EQ(hier.num_or_gates, r.tree.num_gates() - r.tree.num_leaves);
  // Flat re-derives every enable from scratch: sum over gated internal
  // edges of (|subtree modules| - 1) ORs -- strictly more on 60 sinks.
  EXPECT_GT(flat.num_or_gates, 3 * hier.num_or_gates);
}

TEST(ControllerLogic, DistributionLimitsReuse) {
  LogicFixture f;
  // Partition the die so the two bottom-level gates land in different
  // quadrants from their parents' gate locations; cross-partition reuse is
  // then forbidden and hierarchical falls back towards flat.
  const ControllerPlacement ctrl1(geom::DieArea::square(1000.0), 1);
  const ControllerPlacement ctrl4(geom::DieArea::square(1000.0), 4);
  const auto h1 = synthesize_controller_logic(
      f.tree, f.act, *f.analyzer, ctrl1, f.tech, LogicStyle::Hierarchical);
  const auto h4 = synthesize_controller_logic(
      f.tree, f.act, *f.analyzer, ctrl4, f.tech, LogicStyle::Hierarchical);
  EXPECT_GE(h4.num_or_gates, h1.num_or_gates);
}

TEST(ControllerLogic, SwCapUsesTransitionProbabilities) {
  LogicFixture f;
  const ControllerPlacement ctrl(geom::DieArea::square(1000.0), 1);
  const auto rep = synthesize_controller_logic(
      f.tree, f.act, *f.analyzer, ctrl, f.tech, LogicStyle::Hierarchical);
  // Each OR output toggles with P_tr of the union mask; with a round-robin
  // stream those are strictly positive and bounded by 1.
  EXPECT_GT(rep.logic_swcap, 0.0);
  EXPECT_LE(rep.logic_swcap, rep.num_or_gates * f.tech.or_output_cap);
}

}  // namespace
}  // namespace gcr::gating

/// \file benchdiff_test.cpp
/// Tests for the regression-diffing side of gcr::perf: verdict
/// classification (the relative / MAD / absolute-floor triple gate),
/// whole-report diffing including one-sided benchmarks, and the failure
/// modes of the loader/validator on malformed documents.

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "perf/diff.h"
#include "perf/report.h"
#include "perf/runner.h"

namespace gcr {
namespace {

perf::BenchSample sample(double median_ms, double mad_ms, int reps = 10) {
  perf::BenchSample s;
  s.median_ms = median_ms;
  s.mad_ms = mad_ms;
  s.min_ms = median_ms;
  s.reps = reps;
  return s;
}

TEST(BenchDiff, SyntheticTwoXSlowdownIsARegression) {
  // 10 ms -> 20 ms with ~2% scatter: clears the 5% relative gate, the
  // 3-MAD noise gate and the absolute floor by orders of magnitude.
  EXPECT_EQ(perf::classify(sample(10.0, 0.2), sample(20.0, 0.2), {}),
            perf::Verdict::Regression);
}

TEST(BenchDiff, TwoXSpeedupIsAnImprovement) {
  EXPECT_EQ(perf::classify(sample(20.0, 0.2), sample(10.0, 0.2), {}),
            perf::Verdict::Improvement);
}

TEST(BenchDiff, SmallRelativeDeltaIsWithinNoise) {
  // +3% on a 5% threshold.
  EXPECT_EQ(perf::classify(sample(10.0, 0.01), sample(10.3, 0.01), {}),
            perf::Verdict::WithinNoise);
}

TEST(BenchDiff, LargeDeltaInsideScatterIsWithinNoise) {
  // +20% relative, but the repetitions scatter by 1 ms on each side:
  // 2 ms < 3 * max(MAD), so the noise gate holds it back.
  EXPECT_EQ(perf::classify(sample(10.0, 1.0), sample(12.0, 1.0), {}),
            perf::Verdict::WithinNoise);
}

TEST(BenchDiff, TinyAbsoluteDeltaHitsTheFloor) {
  // A batched micro benchmark: 40 ns median with an artificially tight
  // in-run MAD. +50% relative clears both other gates, but the 20 ns
  // delta is below the 50 ns floor -- timer territory, not code.
  EXPECT_EQ(perf::classify(sample(4e-5, 1e-7), sample(6e-5, 1e-7), {}),
            perf::Verdict::WithinNoise);
  // The floor is configurable; switching it off exposes the regression.
  perf::DiffOptions no_floor;
  no_floor.min_delta_ms = 0.0;
  EXPECT_EQ(perf::classify(sample(4e-5, 1e-7), sample(6e-5, 1e-7), no_floor),
            perf::Verdict::Regression);
  // A 2x change on a 100 ns micro is above the floor and still gates.
  EXPECT_EQ(perf::classify(sample(1e-4, 1e-7), sample(2e-4, 1e-7), {}),
            perf::Verdict::Regression);
}

TEST(BenchDiff, ThresholdIsConfigurable) {
  perf::DiffOptions strict;
  strict.threshold = 0.01;
  EXPECT_EQ(perf::classify(sample(10.0, 0.01), sample(10.3, 0.01), strict),
            perf::Verdict::Regression);
}

TEST(BenchDiff, DiffReportsCountsAndOneSidedEntries) {
  perf::LoadedReport older, newer;
  older.benchmarks["a/slower"] = sample(10.0, 0.1);
  older.benchmarks["b/stable"] = sample(5.0, 0.1);
  older.benchmarks["c/gone"] = sample(1.0, 0.1);
  newer.benchmarks["a/slower"] = sample(20.0, 0.1);
  newer.benchmarks["b/stable"] = sample(5.05, 0.1);
  newer.benchmarks["d/added"] = sample(2.0, 0.1);

  const perf::DiffReport d = perf::diff_reports(older, newer, {});
  ASSERT_EQ(d.entries.size(), 4u);
  EXPECT_EQ(d.regressions, 1);
  EXPECT_EQ(d.improvements, 0);
  EXPECT_TRUE(d.has_regression());

  // Entries come back sorted by name (union of both sides).
  EXPECT_EQ(d.entries[0].name, "a/slower");
  EXPECT_EQ(d.entries[0].verdict, perf::Verdict::Regression);
  EXPECT_DOUBLE_EQ(d.entries[0].ratio, 2.0);
  EXPECT_EQ(d.entries[1].verdict, perf::Verdict::WithinNoise);
  EXPECT_EQ(d.entries[2].name, "c/gone");
  EXPECT_EQ(d.entries[2].verdict, perf::Verdict::OnlyOld);
  EXPECT_EQ(d.entries[3].name, "d/added");
  EXPECT_EQ(d.entries[3].verdict, perf::Verdict::OnlyNew);

  std::ostringstream os;
  perf::print_diff(os, d);
  EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
  EXPECT_NE(os.str().find("1 regression(s)"), std::string::npos);
}

TEST(BenchDiff, IdenticalReportsAreClean) {
  perf::LoadedReport rep;
  rep.benchmarks["a"] = sample(10.0, 0.1);
  rep.benchmarks["b"] = sample(0.002, 0.0001);
  const perf::DiffReport d = perf::diff_reports(rep, rep, {});
  EXPECT_FALSE(d.has_regression());
  EXPECT_EQ(d.improvements, 0);
}

std::string valid_report_text() {
  perf::BenchResult r;
  r.name = "unit/work";
  r.time_ms = perf::summarize({1.0, 1.1, 1.2, 1.0, 1.1});
  std::ostringstream os;
  perf::write_bench_report(os, "unit", {r}, perf::RunnerOptions{}, nullptr);
  return os.str();
}

TEST(BenchDiff, LoaderAcceptsWriterOutput) {
  std::string error;
  const auto loaded = perf::load_bench_report(valid_report_text(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->bench, "unit");
  EXPECT_EQ(loaded->benchmarks.count("unit/work"), 1u);
}

TEST(BenchDiff, LoaderRejectsSyntaxErrors) {
  std::string error;
  EXPECT_FALSE(perf::load_bench_report("{not json", &error).has_value());
  EXPECT_EQ(error, "not valid JSON");
}

TEST(BenchDiff, ValidatorFlagsMissingSections) {
  // Syntactically fine, structurally empty.
  const auto doc = obs::json::parse(R"({"schema":"gcr.run_report"})");
  ASSERT_TRUE(doc.has_value());
  const auto problems = perf::validate_bench_report(*doc);
  EXPECT_FALSE(problems.empty());
  bool saw_schema = false, saw_benchmarks = false;
  for (const auto& p : problems) {
    if (p.find("schema") != std::string::npos) saw_schema = true;
    if (p.find("benchmarks") != std::string::npos) saw_benchmarks = true;
  }
  EXPECT_TRUE(saw_schema);
  EXPECT_TRUE(saw_benchmarks);

  std::string error;
  EXPECT_FALSE(
      perf::load_bench_report(R"({"schema":"gcr.run_report"})", &error)
          .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(BenchDiff, DirtyFingerprintWarnsButStaysValid) {
  // Swap whatever sha the writer embedded for a "-dirty" one: the report
  // is still schema-valid, but the hygiene check must flag it so stale
  // uncommitted-tree baselines (the failure mode --validate guards CI
  // against) cannot land silently.
  std::string text = valid_report_text();
  const auto pos = text.find("\"git_sha\"");
  ASSERT_NE(pos, std::string::npos);
  const auto colon = text.find(':', pos);
  const auto q1 = text.find('"', colon);
  const auto q2 = text.find('"', q1 + 1);
  ASSERT_NE(q2, std::string::npos);
  text.replace(q1, q2 - q1 + 1, "\"abc123-dirty\"");
  const auto doc = obs::json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(perf::validate_bench_report(*doc).empty());
  const auto warnings = perf::report_fingerprint_warnings(*doc);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings.front().find("abc123-dirty"), std::string::npos);
  EXPECT_NE(warnings.front().find("uncommitted"), std::string::npos);
}

TEST(BenchDiff, CleanFingerprintHasNoWarnings) {
  const auto doc = obs::json::parse(valid_report_text());
  ASSERT_TRUE(doc.has_value());
  // The test binary's own fingerprint may or may not be dirty depending on
  // the build tree, so pin a clean sha explicitly.
  std::string text = valid_report_text();
  const auto pos = text.find("\"git_sha\"");
  ASSERT_NE(pos, std::string::npos);
  const auto colon = text.find(':', pos);
  const auto q1 = text.find('"', colon);
  const auto q2 = text.find('"', q1 + 1);
  text.replace(q1, q2 - q1 + 1, "\"abc123\"");
  const auto clean = obs::json::parse(text);
  ASSERT_TRUE(clean.has_value());
  EXPECT_TRUE(perf::report_fingerprint_warnings(*clean).empty());
  // Documents without a fingerprint (e.g. arbitrary JSON) never warn.
  const auto none = obs::json::parse(R"({"schema":"gcr.bench_report"})");
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(perf::report_fingerprint_warnings(*none).empty());
}

TEST(BenchDiff, ValidatorFlagsBadBenchmarkEntries) {
  // Tamper with the writer's own output: drop time_ms from the entry.
  std::string text = valid_report_text();
  const auto pos = text.find("\"time_ms\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "\"renamed\"");
  const auto doc = obs::json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto problems = perf::validate_bench_report(*doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("time_ms"), std::string::npos);
}

}  // namespace
}  // namespace gcr

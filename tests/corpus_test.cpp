#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "guard/status.h"
#include "io/delta_io.h"
#include "io/reqs_io.h"
#include "io/text_io.h"
#include "io/tree_io.h"
#include "test_seed.h"
#include "verify/generator.h"

/// \file corpus_test.cpp
/// Drives the malformed-input corpus under tests/corpus/: every file there
/// is a deliberately broken design input whose first line declares the
/// exact diagnostic it must produce,
///
///   # expect GCR_E_PARSE line 3
///
/// (`line 0` means the error carries no line, e.g. whole-file structural
/// findings). The parser is picked by extension (.sinks/.rtl/.stream/
/// .tree/.delta). A second suite round-trips the text formats over the
/// seeded design generator: write -> read must reproduce the design (and
/// a derived ECO delta) exactly and without diagnostics.

namespace fs = std::filesystem;
using namespace gcr;

namespace {

struct Directive {
  std::string code;  // "GCR_E_PARSE"
  int line = 0;      // expected loc.line; 0 = no location attached
};

std::optional<Directive> read_directive(const fs::path& p) {
  std::ifstream is(p);
  std::string first;
  if (!std::getline(is, first)) return std::nullopt;
  const std::string tag = "# expect ";
  if (first.rfind(tag, 0) != 0) return std::nullopt;
  std::istringstream ss(first.substr(tag.size()));
  Directive d;
  std::string kw;
  if (!(ss >> d.code >> kw >> d.line) || kw != "line") return std::nullopt;
  return d;
}

/// Parse `p` with the reader its extension selects; true when a value came
/// back (i.e. the file was accepted).
bool parse_file(const fs::path& p, guard::Diag& diag) {
  std::ifstream is(p);
  const std::string name = p.filename().string();
  const std::string ext = p.extension().string();
  if (ext == ".sinks") return io::read_sinks(is, diag, name).has_value();
  if (ext == ".rtl") return io::read_rtl(is, diag, name).has_value();
  if (ext == ".stream") return io::read_stream(is, diag, name).has_value();
  if (ext == ".tree") return io::read_routed_tree(is, diag, name).has_value();
  if (ext == ".delta") return io::read_delta(is, diag, name).has_value();
  if (ext == ".reqs") return io::read_reqs(is, diag, name).has_value();
  ADD_FAILURE() << "corpus file with unknown extension: " << name;
  return true;
}

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator(GCR_CORPUS_DIR))
    if (e.is_regular_file()) out.push_back(e.path());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

TEST(Corpus, EveryFileProducesItsDeclaredDiagnostic) {
  const std::vector<fs::path> files = corpus_files();
  ASSERT_GE(files.size(), 20u) << "corpus went missing from " << GCR_CORPUS_DIR;
  for (const fs::path& p : files) {
    SCOPED_TRACE(p.filename().string());
    const std::optional<Directive> want = read_directive(p);
    ASSERT_TRUE(want.has_value()) << "missing '# expect CODE line N' header";
    guard::Diag diag;
    EXPECT_FALSE(parse_file(p, diag)) << "malformed file was accepted";
    EXPECT_TRUE(diag.has_errors());
    bool matched = false;
    std::ostringstream got;
    for (const guard::Status& s : diag.entries()) {
      got << "  " << s.to_string() << '\n';
      if (guard::code_name(s.code) == want->code && s.loc.line == want->line)
        matched = true;
    }
    EXPECT_TRUE(matched) << "no diagnostic matched " << want->code << " line "
                         << want->line << "; got:\n"
                         << got.str();
  }
}

// ---------------------------------------------------------------------------
// Round-trip fuzz: write -> read is the identity for all three formats.

class RoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripFuzz, AllThreeTextFormats) {
  const verify::DesignSpec spec = verify::random_spec(GetParam());
  const core::Design d = verify::generate_design(spec);
  guard::Diag diag;

  {
    std::ostringstream os;
    io::write_sinks(os, d.die, d.sinks);
    std::istringstream is(os.str());
    const std::optional<io::SinksFile> back =
        io::read_sinks(is, diag, "rt.sinks");
    ASSERT_TRUE(back.has_value()) << "seed " << GetParam();
    EXPECT_EQ(back->die.xlo, d.die.xlo);
    EXPECT_EQ(back->die.yhi, d.die.yhi);
    ASSERT_EQ(back->sinks.size(), d.sinks.size());
    for (std::size_t i = 0; i < d.sinks.size(); ++i) {
      EXPECT_EQ(back->sinks[i].loc.x, d.sinks[i].loc.x);
      EXPECT_EQ(back->sinks[i].loc.y, d.sinks[i].loc.y);
      EXPECT_EQ(back->sinks[i].cap, d.sinks[i].cap);
    }
  }
  {
    std::ostringstream os;
    io::write_stream(os, d.stream);
    std::istringstream is(os.str());
    const std::optional<activity::InstructionStream> back =
        io::read_stream(is, diag, "rt.stream");
    ASSERT_TRUE(back.has_value()) << "seed " << GetParam();
    EXPECT_EQ(back->seq, d.stream.seq);
  }
  {
    std::ostringstream os;
    io::write_rtl(os, d.rtl);
    std::istringstream is(os.str());
    const std::optional<activity::RtlDescription> back =
        io::read_rtl(is, diag, "rt.rtl");
    ASSERT_TRUE(back.has_value()) << "seed " << GetParam();
    EXPECT_EQ(back->num_instructions(), d.rtl.num_instructions());
    EXPECT_EQ(back->num_modules(), d.rtl.num_modules());
    for (int i = 0; i < d.rtl.num_instructions(); ++i) {
      std::vector<int> a, b;
      d.rtl.module_set(i).for_each([&](int m) { a.push_back(m); });
      back->module_set(i).for_each([&](int m) { b.push_back(m); });
      EXPECT_EQ(a, b) << "instruction " << i << ", seed " << GetParam();
    }
  }
  EXPECT_FALSE(diag.has_errors());
}

TEST_P(RoundTripFuzz, DesignDelta) {
  const verify::DesignSpec spec = verify::random_spec(GetParam());
  const core::Design d = verify::generate_design(spec);
  const int n = static_cast<int>(d.sinks.size());

  // A delta exercising every edit kind, derived deterministically from the
  // design so each seed round-trips different payloads (including awkward
  // doubles straight out of the generator).
  eco::DesignDelta delta;
  delta.moves.push_back({0, {d.die.xhi * 0.25 + 0.125, d.die.yhi * 0.75}});
  if (n >= 2) delta.removes.push_back(n - 1);
  eco::SinkAdd add;
  add.sink.loc = {d.sinks[0].loc.x + 1.0, d.sinks[0].loc.y + 1.0};
  add.sink.cap = d.sinks[0].cap;
  add.module = 0;
  delta.adds.push_back(add);
  delta.stream.emplace();
  for (std::size_t i = 0; i < d.stream.seq.size(); i += 2)
    delta.stream->seq.push_back(d.stream.seq[i]);

  guard::Diag diag;
  std::ostringstream os;
  io::write_delta(os, delta);
  std::istringstream is(os.str());
  const std::optional<eco::DesignDelta> back =
      io::read_delta(is, diag, "rt.delta");
  ASSERT_TRUE(back.has_value()) << "seed " << GetParam();
  EXPECT_FALSE(diag.has_errors());
  ASSERT_EQ(back->moves.size(), delta.moves.size());
  for (std::size_t i = 0; i < delta.moves.size(); ++i) {
    EXPECT_EQ(back->moves[i].sink, delta.moves[i].sink);
    EXPECT_EQ(back->moves[i].to.x, delta.moves[i].to.x);
    EXPECT_EQ(back->moves[i].to.y, delta.moves[i].to.y);
  }
  EXPECT_EQ(back->removes, delta.removes);
  ASSERT_EQ(back->adds.size(), delta.adds.size());
  for (std::size_t i = 0; i < delta.adds.size(); ++i) {
    EXPECT_EQ(back->adds[i].sink.loc.x, delta.adds[i].sink.loc.x);
    EXPECT_EQ(back->adds[i].sink.loc.y, delta.adds[i].sink.loc.y);
    EXPECT_EQ(back->adds[i].sink.cap, delta.adds[i].sink.cap);
    EXPECT_EQ(back->adds[i].module, delta.adds[i].module);
  }
  ASSERT_TRUE(back->stream.has_value());
  EXPECT_EQ(back->stream->seq, delta.stream->seq);

  // An empty stream row is a real edit (replace with the empty stream) and
  // must survive the trip distinct from "no stream row at all".
  eco::DesignDelta wipe;
  wipe.stream.emplace();
  std::ostringstream os2;
  io::write_delta(os2, wipe);
  std::istringstream is2(os2.str());
  const std::optional<eco::DesignDelta> back2 =
      io::read_delta(is2, diag, "rt2.delta");
  ASSERT_TRUE(back2.has_value());
  ASSERT_TRUE(back2->stream.has_value());
  EXPECT_TRUE(back2->stream->seq.empty());
  EXPECT_FALSE(diag.has_errors());
}

// The .reqs batch format round-trips exactly, including every optional
// key, and defaults stay implicit (a written default-valued request reads
// back as defaults without emitting the keys).
TEST(ReqsRoundTrip, WriteReadIsIdentity) {
  std::vector<io::RouteRequest> reqs(2);
  reqs[0].id = "warm-1";
  reqs[0].sinks = "d/a.sinks";
  reqs[0].rtl = "d/a.rtl";
  reqs[0].stream = "d/a.stream";
  reqs[1].id = "drift-2";
  reqs[1].sinks = "d/b.sinks";
  reqs[1].rtl = "d/b.rtl";
  reqs[1].stream = "d/b.stream";
  reqs[1].style = "gated";
  reqs[1].topology = "nn";
  reqs[1].strength = 0.375;
  reqs[1].auto_tune = false;
  reqs[1].deadline_ms = 1500.5;
  reqs[1].threads = 4;
  reqs[1].eco = "d/b.delta";

  std::ostringstream os;
  io::write_reqs(os, reqs);
  std::istringstream is(os.str());
  guard::Diag diag;
  const std::optional<std::vector<io::RouteRequest>> back =
      io::read_reqs(is, diag, "rt.reqs");
  ASSERT_TRUE(back.has_value()) << os.str();
  EXPECT_FALSE(diag.has_errors());
  ASSERT_EQ(back->size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ((*back)[i].id, reqs[i].id);
    EXPECT_EQ((*back)[i].sinks, reqs[i].sinks);
    EXPECT_EQ((*back)[i].rtl, reqs[i].rtl);
    EXPECT_EQ((*back)[i].stream, reqs[i].stream);
    EXPECT_EQ((*back)[i].style, reqs[i].style);
    EXPECT_EQ((*back)[i].topology, reqs[i].topology);
    EXPECT_EQ((*back)[i].strength.has_value(), reqs[i].strength.has_value());
    if (reqs[i].strength) {
      EXPECT_EQ(*(*back)[i].strength, *reqs[i].strength);
    }
    EXPECT_EQ((*back)[i].auto_tune, reqs[i].auto_tune);
    EXPECT_EQ((*back)[i].deadline_ms, reqs[i].deadline_ms);
    EXPECT_EQ((*back)[i].threads, reqs[i].threads);
    EXPECT_EQ((*back)[i].eco, reqs[i].eco);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz,
                         ::testing::ValuesIn(gcr::test::fuzz_seeds(
                             {1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                              377, 610, 987, 1597, 2584, 4181, 6765, 2026})),
                         gcr::test::SeedParamName());

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "log/logger.h"
#include "log/schema.h"
#include "log/telemetry.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/timer.h"
#include "par/pool.h"
#include "perf/memhook.h"

/// Unit tests of gcr::log: runtime level filtering, token-bucket rate
/// limiting with suppression accounting under concurrent pool writers,
/// JSONL schema round-trips through the shared validator (the same code
/// `gcr_events --validate` runs), phase/worker context propagation, and
/// the disabled logger's zero-allocation fast path.

namespace gcr {
namespace {

/// Init the singleton with a MemorySink and hand back a view that shares
/// the sink's buffer (MemorySink buffers behind a shared_ptr, so a copy
/// taken after first use observes everything the logger writes).
log::MemorySink init_with_memory_sink(log::Options opts) {
  auto sink = std::make_unique<log::MemorySink>();
  sink->clear();  // force the shared buffer into existence before copying
  log::MemorySink view = *sink;
  opts.extra_sink = std::move(sink);
  opts.stderr_level = log::Level::Off;  // keep test output quiet
  EXPECT_TRUE(log::Logger::instance().init(std::move(opts)));
  return view;
}

/// Every test starts and ends with the logger torn down; re-init after
/// shutdown is part of the Logger contract this relies on.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { log::Logger::instance().shutdown(); }
  void TearDown() override { log::Logger::instance().shutdown(); }
};

std::vector<log::Record> events_named(const log::MemorySink& sink,
                                      const std::string& name) {
  std::vector<log::Record> out;
  for (const log::Record& r : sink.records())
    if (r.kind == log::Record::Kind::Event && r.name == name)
      out.push_back(r);
  return out;
}

TEST_F(LogTest, RuntimeLevelFiltersBelowFloor) {
  log::Options opts;
  opts.level = log::Level::Info;
  const log::MemorySink sink = init_with_memory_sink(std::move(opts));

  GCR_LOG_DEBUG("lvl.debug").kv("k", 1);
  GCR_LOG_INFO("lvl.info").kv("k", 2);
  GCR_LOG_WARN("lvl.warn").kv("k", 3);
  log::Logger::instance().flush();

  EXPECT_TRUE(events_named(sink, "lvl.debug").empty());
  EXPECT_EQ(events_named(sink, "lvl.info").size(), 1u);
  EXPECT_EQ(events_named(sink, "lvl.warn").size(), 1u);

  // Raising the floor at runtime takes effect on the very next emission.
  log::Logger::instance().set_level(log::Level::Error);
  EXPECT_FALSE(log::enabled(log::Level::Warn));
  GCR_LOG_WARN("lvl.warn2").msg("filtered");
  GCR_LOG_ERROR("lvl.error").msg("kept");
  log::Logger::instance().flush();

  EXPECT_TRUE(events_named(sink, "lvl.warn2").empty());
  EXPECT_EQ(events_named(sink, "lvl.error").size(), 1u);
}

TEST_F(LogTest, RateLimiterAccountsEverySuppressedEmission) {
  log::Options opts;
  opts.level = log::Level::Info;
  // One token a second with a burst of 8: a 4-lane burst of 400 emissions
  // must admit only a handful and suppress the rest -- with every single
  // emission landing in exactly one of the two tallies.
  opts.rate_per_sec = 1.0;
  opts.rate_burst = 8.0;
  const log::MemorySink sink = init_with_memory_sink(std::move(opts));

  constexpr std::int64_t kTotal = 400;
  std::atomic<int> saw_worker{0};
  par::parallel_for(4, 0, kTotal, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      if (par::worker_ordinal() > 0) saw_worker.store(1);
      GCR_LOG_INFO("rl.burst").kv("i", static_cast<std::int64_t>(i));
    }
  });
  log::Logger::instance().flush();

  const log::RateStats stats = log::Logger::instance().rate_stats("rl.burst");
  EXPECT_EQ(stats.admitted + stats.suppressed,
            static_cast<std::uint64_t>(kTotal));
  EXPECT_GT(stats.suppressed, 0u);
  EXPECT_GE(stats.admitted, 8u);  // the full burst allowance gets through
  EXPECT_EQ(log::Logger::instance().dropped(), 0u) << "ring must not drop "
                                                      "at this volume";

  // Admitted records reach the sink 1:1, and the suppressed counts that
  // ride on them never exceed the limiter's own tally (the remainder is
  // reported by the shutdown summary).
  const std::vector<log::Record> recs = events_named(sink, "rl.burst");
  EXPECT_EQ(recs.size(), stats.admitted);
  std::uint64_t carried = 0;
  for (const log::Record& r : recs) carried += r.suppressed;
  EXPECT_LE(carried, stats.suppressed);
}

TEST_F(LogTest, EmittedLinesSatisfyTheSharedSchemaValidator) {
  log::Options opts;
  opts.level = log::Level::Debug;
  opts.run_id = "log-test-run";
  const log::MemorySink sink = init_with_memory_sink(std::move(opts));

  GCR_LOG_INFO("schema.types")
      .kv("s", "text with \"quotes\" and \\ backslash")
      .kv("d", 2.5)
      .kv("i", static_cast<std::int64_t>(-7))
      .kv("u", static_cast<std::uint64_t>(1) << 40)
      .kv("b", true)
      .msg("payload of every kv type");
  GCR_LOG_WARN("schema.warn");

  log::TelemetryEmitter telemetry;
  telemetry.start({/*interval_ms=*/5});
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const std::uint64_t snapshots = telemetry.stop();
  EXPECT_GE(snapshots, 1u);
  log::Logger::instance().flush();

  std::uint64_t events = 0;
  std::uint64_t snaps = 0;
  for (const std::string& line : sink.lines()) {
    const std::optional<obs::json::Value> doc = obs::json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const std::vector<std::string> problems = log::validate_line(*doc);
    EXPECT_TRUE(problems.empty())
        << line << "\nfirst problem: " << problems.front();
    const std::optional<log::LineInfo> info = log::parse_line(*doc);
    ASSERT_TRUE(info.has_value()) << line;
    if (info->kind == log::LineKind::Event)
      ++events;
    else
      ++snaps;
  }
  EXPECT_GE(events, 2u);
  EXPECT_EQ(snaps, snapshots);
}

TEST_F(LogTest, EventsCarryPhasePathAndWorkerOrdinal) {
  log::Options opts;
  opts.level = log::Level::Info;
  opts.rate_per_sec = 0.0;  // all 64 pool events must land in the sink
  const log::MemorySink sink = init_with_memory_sink(std::move(opts));

  {
    obs::Session session;
    obs::Bind bind(&session);
    obs::ScopedTimer outer("a");
    {
      obs::ScopedTimer inner("b");
      GCR_LOG_INFO("ctx.phase").kv("depth", 2);
    }
    GCR_LOG_INFO("ctx.outer").kv("depth", 1);
  }
  GCR_LOG_INFO("ctx.none");

  par::parallel_for(4, 0, 64, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i)
      GCR_LOG_INFO("ctx.pool").kv("i", static_cast<std::int64_t>(i));
  });
  log::Logger::instance().flush();

  const std::vector<log::Record> nested = events_named(sink, "ctx.phase");
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_EQ(nested[0].phase, "a/b");
  const std::vector<log::Record> outer = events_named(sink, "ctx.outer");
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer[0].phase, "a");
  const std::vector<log::Record> bare = events_named(sink, "ctx.none");
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_EQ(bare[0].phase, "");
  EXPECT_EQ(bare[0].worker, 0);

  const std::vector<log::Record> pool = events_named(sink, "ctx.pool");
  EXPECT_EQ(pool.size(), 64u);

  // Events emitted on a pool lane carry that lane's 1-based ordinal (a
  // global pool lane index, so it can exceed the job's width). The
  // caller is a lane too and can drain every chunk before a worker
  // wakes on a loaded machine, so retry with slow chunks until a
  // worker-lane event lands.
  int max_worker = 0;
  for (const log::Record& r : pool) max_worker = std::max(max_worker, r.worker);
  for (int attempt = 0; attempt < 50 && max_worker == 0; ++attempt) {
    par::parallel_for(4, 0, 64, 1, [&](std::int64_t b, std::int64_t e) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      for (std::int64_t i = b; i < e; ++i)
        GCR_LOG_INFO("ctx.pool_retry").kv("i", static_cast<std::int64_t>(i));
    });
    log::Logger::instance().flush();
    for (const log::Record& r : events_named(sink, "ctx.pool_retry"))
      max_worker = std::max(max_worker, r.worker);
  }
  EXPECT_GT(max_worker, 0);
}

TEST_F(LogTest, DisabledLoggerEmitsNothingAndNeverAllocates) {
  ASSERT_FALSE(log::Logger::instance().running());
  EXPECT_FALSE(log::enabled(log::Level::Error));

  if (!perf::memhook::available()) GTEST_SKIP() << "no malloc_usable_size";
  perf::memhook::enable();
  perf::memhook::reset();
  for (int i = 0; i < 1000; ++i) {
    // Arguments must not evaluate: the std::string here would allocate.
    GCR_LOG_ERROR("off.event").kv("s", std::string(64, 'x')).kv("i", i);
  }
  const perf::memhook::Stats stats = perf::memhook::stats();
  perf::memhook::disable();
  EXPECT_EQ(stats.allocs, 0u);
  EXPECT_EQ(stats.bytes_allocated, 0u);
}

}  // namespace
}  // namespace gcr

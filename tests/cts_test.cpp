#include <gtest/gtest.h>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "cts/greedy.h"

namespace gcr::cts {
namespace {

struct Instance {
  benchdata::RBench bench;
  benchdata::Workload wl;
  activity::ActivityAnalyzer analyzer;
  std::vector<int> modules;

  static Instance make(int n, std::uint64_t seed, double activity = 0.4) {
    benchdata::RBenchSpec spec{"t", n, 6000.0, 0.005, 0.08, seed};
    benchdata::RBench bench = benchdata::generate_rbench(spec);
    benchdata::WorkloadSpec wspec;
    wspec.num_instructions = 16;
    wspec.target_activity = activity;
    wspec.stream_length = 4000;
    wspec.seed = seed;
    benchdata::Workload wl =
        benchdata::generate_workload(wspec, bench.sinks, bench.die);
    activity::ActivityAnalyzer an(wl.rtl, wl.stream);
    auto mods = identity_modules(n);
    return Instance{std::move(bench), std::move(wl), std::move(an),
                    std::move(mods)};
  }
};

TEST(Greedy, NearestNeighborBuildsValidTopology) {
  auto inst = Instance::make(40, 11);
  BuildOptions opts;
  opts.cost = MergeCost::NearestNeighbor;
  const BuildResult r =
      build_topology(inst.bench.sinks, nullptr, {}, opts);
  EXPECT_TRUE(r.topo.valid());
  EXPECT_EQ(r.topo.num_leaves(), 40);
  EXPECT_EQ(r.topo.num_nodes(), 79);
  EXPECT_TRUE(r.mask.empty());  // no analyzer supplied
}

TEST(Greedy, SwitchedCapacitanceBuildsValidTopologyWithActivity) {
  auto inst = Instance::make(40, 12);
  BuildOptions opts;
  opts.cost = MergeCost::SwitchedCapacitance;
  opts.control_point = inst.bench.die.center();
  const BuildResult r =
      build_topology(inst.bench.sinks, &inst.analyzer, inst.modules, opts);
  EXPECT_TRUE(r.topo.valid());
  ASSERT_EQ(static_cast<int>(r.p_en.size()), r.topo.num_nodes());
  // Root enable probability covers every leaf's.
  const double root_p = r.p_en[static_cast<std::size_t>(r.topo.root())];
  for (int i = 0; i < 40; ++i)
    EXPECT_GE(root_p + 1e-12, r.p_en[static_cast<std::size_t>(i)]);
  // Masks union upward: parent mask contains child masks.
  for (int id = 0; id < r.topo.num_nodes(); ++id) {
    const ct::TreeNode& n = r.topo.node(id);
    if (n.left < 0) continue;
    const auto u = r.mask[static_cast<std::size_t>(n.left)] |
                   r.mask[static_cast<std::size_t>(n.right)];
    EXPECT_EQ(u, r.mask[static_cast<std::size_t>(id)]);
  }
}

TEST(Greedy, DeterministicAcrossRuns) {
  auto inst = Instance::make(30, 13);
  BuildOptions opts;
  opts.cost = MergeCost::SwitchedCapacitance;
  opts.control_point = inst.bench.die.center();
  const BuildResult a =
      build_topology(inst.bench.sinks, &inst.analyzer, inst.modules, opts);
  const BuildResult b =
      build_topology(inst.bench.sinks, &inst.analyzer, inst.modules, opts);
  for (int id = 0; id < a.topo.num_nodes(); ++id) {
    EXPECT_EQ(a.topo.node(id).left, b.topo.node(id).left);
    EXPECT_EQ(a.topo.node(id).right, b.topo.node(id).right);
  }
}

TEST(Greedy, EmptySeedsYieldEmptyResult) {
  // Regression: an empty seed span used to be UB in release builds (only a
  // debug assert guarded it); the contract now is an empty result.
  BuildOptions opts;
  const BuildResult seeded = build_topology_seeded({}, nullptr, opts);
  EXPECT_EQ(seeded.topo.num_nodes(), 0);
  EXPECT_TRUE(seeded.mask.empty());
  EXPECT_TRUE(seeded.p_en.empty());
  EXPECT_TRUE(seeded.p_tr.empty());
  const BuildResult sinks = build_topology({}, nullptr, {}, opts);
  EXPECT_EQ(sinks.topo.num_nodes(), 0);
}

TEST(Greedy, CostTiesBreakByLowestPairIds) {
  // Four corners of a square: the four side pairs all tie at cost 100
  // (the diagonals cost 200), so the pick is decided purely by the
  // (cost, lower-id, higher-id) tie-break: first (0,1), then (2,3).
  ct::SinkList sinks = {{{0, 0}, 0.02},
                        {{100, 0}, 0.02},
                        {{0, 100}, 0.02},
                        {{100, 100}, 0.02}};
  BuildOptions opts;
  opts.cost = MergeCost::NearestNeighbor;
  const BuildResult r = build_topology(sinks, nullptr, {}, opts);
  ASSERT_EQ(r.topo.num_nodes(), 7);
  const auto children = [&](int id) {
    const ct::TreeNode& n = r.topo.node(id);
    return std::pair{std::min(n.left, n.right), std::max(n.left, n.right)};
  };
  EXPECT_EQ(children(4), (std::pair{0, 1}));
  EXPECT_EQ(children(5), (std::pair{2, 3}));
  EXPECT_EQ(children(6), (std::pair{4, 5}));
}

TEST(Greedy, ActivityOnlyTieTermStaysBelowProbabilityStepsAtChipScale) {
  // Regression: the ActivityOnly distance tie term used to be a fixed
  // 1e-12 * dist; at chip-scale coordinates (dist ~ 2e7 lambda) that is
  // 2e-5 -- larger than a fine probability difference -- and flipped the
  // activity order. Sink 2 is far away but its mask union with sink 0 is
  // 1e-5 *less* probable than sink 1's; activity must still win.
  ct::SinkList sinks = {{{0.0, 0.0}, 0.02},
                        {{100.0, 0.0}, 0.02},
                        {{2e7, 0.0}, 0.02}};
  // Masks: m0 -> {i0}, m1 -> {i0, i1}, m2 -> {i0, i2}.
  activity::RtlDescription rtl(3, 3);
  rtl.add_use(0, 0);
  rtl.add_use(0, 1);
  rtl.add_use(1, 1);
  rtl.add_use(0, 2);
  rtl.add_use(2, 2);
  // P(i1) - P(i2) = 1/100000: below the old tie term, far above the new.
  activity::InstructionStream stream;
  for (int t = 0; t < 50001; ++t) stream.seq.push_back(0);
  for (int t = 0; t < 25000; ++t) stream.seq.push_back(1);
  for (int t = 0; t < 24999; ++t) stream.seq.push_back(2);
  const activity::ActivityAnalyzer an(rtl, stream);

  BuildOptions opts;
  opts.cost = MergeCost::ActivityOnly;
  const auto mods = identity_modules(3);
  const BuildResult r = build_topology(sinks, &an, mods, opts);
  ASSERT_EQ(r.topo.num_nodes(), 5);
  const ct::TreeNode& first = r.topo.node(3);
  EXPECT_EQ(std::min(first.left, first.right), 0);
  EXPECT_EQ(std::max(first.left, first.right), 2);
}

TEST(Greedy, SingleSinkDegenerates) {
  ct::SinkList sinks = {{{100, 100}, 0.02}};
  BuildOptions opts;
  const BuildResult r = build_topology(sinks, nullptr, {}, opts);
  EXPECT_EQ(r.topo.num_nodes(), 1);
  EXPECT_EQ(r.topo.root(), 0);
  EXPECT_TRUE(r.topo.valid());
}

TEST(Greedy, TwoSinksSingleMerge) {
  ct::SinkList sinks = {{{0, 0}, 0.02}, {{100, 0}, 0.02}};
  BuildOptions opts;
  const BuildResult r = build_topology(sinks, nullptr, {}, opts);
  EXPECT_EQ(r.topo.num_nodes(), 3);
  EXPECT_EQ(r.topo.root(), 2);
}

TEST(Greedy, NearestNeighborPrefersShortWirelength) {
  // On a clustered instance the NN topology should use clearly less wire
  // than a pathological pairing; as a sanity proxy, check the NN tree's
  // wirelength is within a small factor of the spread of the points.
  auto inst = Instance::make(60, 14);
  BuildOptions opts;
  opts.cost = MergeCost::NearestNeighbor;
  const BuildResult r = build_topology(inst.bench.sinks, nullptr, {}, opts);
  std::vector<bool> gates(static_cast<std::size_t>(r.topo.num_nodes()), true);
  gates[static_cast<std::size_t>(r.topo.root())] = false;
  const auto tree = ct::embed(r.topo, inst.bench.sinks, gates, opts.tech);
  // Weak lower bound: half the sum over sinks of the distance to the
  // nearest other sink must be covered by the tree.
  double lb = 0.0;
  const auto& sinks = inst.bench.sinks;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    double best = 1e18;
    for (std::size_t j = 0; j < sinks.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, geom::manhattan_dist(sinks[i].loc, sinks[j].loc));
    }
    lb += best;
  }
  EXPECT_GE(tree.total_wirelength(), lb / 2.0);
  EXPECT_LE(tree.total_wirelength(), 60.0 * 6000.0);  // gross upper sanity
}

/// Builds the same instance with the partner index on and off and asserts
/// the trees are bit-identical node by node -- the indexed engine's core
/// contract on inputs that stress the index's degenerate paths.
void expect_index_matches_exhaustive(const ct::SinkList& sinks,
                                     const activity::ActivityAnalyzer* an,
                                     MergeCost cost) {
  BuildOptions opts;
  opts.cost = cost;
  opts.control_point = {50.0, 50.0};
  const auto mods = identity_modules(static_cast<int>(sinks.size()));
  opts.partner_index = true;
  const BuildResult on = build_topology(sinks, an, mods, opts);
  opts.partner_index = false;
  const BuildResult off = build_topology(sinks, an, mods, opts);
  ASSERT_TRUE(on.topo.valid());
  ASSERT_EQ(on.topo.num_nodes(), off.topo.num_nodes());
  for (int id = 0; id < on.topo.num_nodes(); ++id) {
    EXPECT_EQ(on.topo.node(id).left, off.topo.node(id).left) << "node " << id;
    EXPECT_EQ(on.topo.node(id).right, off.topo.node(id).right)
        << "node " << id;
  }
}

/// A tiny uniform workload so the SwitchedCapacitance cost is defined;
/// every module is used by the single instruction, so all probabilities
/// coincide and cost ties come purely from geometry.
activity::ActivityAnalyzer uniform_analyzer(int num_modules) {
  activity::RtlDescription rtl(1, num_modules);
  for (int m = 0; m < num_modules; ++m) rtl.add_use(0, m);
  activity::InstructionStream stream;
  for (int t = 0; t < 100; ++t) stream.seq.push_back(0);
  return activity::ActivityAnalyzer(rtl, stream);
}

TEST(Greedy, AllCoincidentSinksMatchExhaustiveAndTieById) {
  // Every candidate occupies the same point: the index's die bbox is a
  // single point (zero-width buckets), every pair ties on geometry, and
  // the self-cost order is one long tie chain. The (cost, lower-id,
  // higher-id) order must fully determine the tree.
  ct::SinkList sinks(9, ct::Sink{{42.0, 17.0}, 0.02});
  const auto an = uniform_analyzer(9);
  expect_index_matches_exhaustive(sinks, &an, MergeCost::SwitchedCapacitance);
  expect_index_matches_exhaustive(sinks, nullptr, MergeCost::NearestNeighbor);

  BuildOptions opts;
  opts.cost = MergeCost::NearestNeighbor;
  const BuildResult r = build_topology(sinks, nullptr, {}, opts);
  // All pair costs tie at 0, so merges proceed in strict id order:
  // (0,1)->9, (2,3)->10, ..., then the same again over the new nodes.
  EXPECT_EQ(std::min(r.topo.node(9).left, r.topo.node(9).right), 0);
  EXPECT_EQ(std::max(r.topo.node(9).left, r.topo.node(9).right), 1);
  EXPECT_EQ(std::min(r.topo.node(10).left, r.topo.node(10).right), 2);
  EXPECT_EQ(std::max(r.topo.node(10).left, r.topo.node(10).right), 3);
}

TEST(Greedy, AllCollinearSinksMatchExhaustive) {
  // Zero-height die: the index grid degenerates to a 1-D strip and every
  // merging segment stays collinear. Uneven spacing keeps costs distinct.
  ct::SinkList sinks;
  for (int i = 0; i < 14; ++i)
    sinks.push_back({{10.0 * i * i, 25.0}, 0.02});
  const auto an = uniform_analyzer(14);
  expect_index_matches_exhaustive(sinks, &an, MergeCost::SwitchedCapacitance);
  expect_index_matches_exhaustive(sinks, nullptr, MergeCost::NearestNeighbor);
}

TEST(Greedy, CostTiesAcrossBucketBoundariesMatchExhaustive) {
  // A uniform lattice: every nearest-neighbor pair ties at the lattice
  // pitch, and with 36 sinks the index grid is 4x4, so many tied pairs
  // straddle bucket (and pyramid-quadrant) boundaries. The tie-break must
  // reach across them identically on both paths.
  ct::SinkList sinks;
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 6; ++x)
      sinks.push_back({{100.0 * x, 100.0 * y}, 0.02});
  const auto an = uniform_analyzer(36);
  expect_index_matches_exhaustive(sinks, &an, MergeCost::SwitchedCapacitance);
  expect_index_matches_exhaustive(sinks, nullptr, MergeCost::NearestNeighbor);

  BuildOptions opts;
  opts.cost = MergeCost::NearestNeighbor;
  const BuildResult r = build_topology(sinks, nullptr, {}, opts);
  // The first merge is the lowest-id tied pair: sinks 0 and 1.
  const ct::TreeNode& first = r.topo.node(36);
  EXPECT_EQ(std::min(first.left, first.right), 0);
  EXPECT_EQ(std::max(first.left, first.right), 1);
}

TEST(Greedy, SingleSinkIgnoresPartnerIndexSetting) {
  ct::SinkList sinks = {{{100, 100}, 0.02}};
  for (const bool idx : {true, false}) {
    BuildOptions opts;
    opts.partner_index = idx;
    const BuildResult r = build_topology(sinks, nullptr, {}, opts);
    EXPECT_EQ(r.topo.num_nodes(), 1);
    EXPECT_TRUE(r.topo.valid());
  }
}

TEST(Greedy, ActivityAwareOrderGroupsCoactiveSinks) {
  // Two spatial clusters with perfectly anti-correlated activity. The
  // switched-capacitance greedy must not mix clusters at the bottom level
  // more than the geometry forces; check the root's children separate the
  // two activity groups when geometry and activity align.
  ct::SinkList sinks;
  for (int i = 0; i < 4; ++i) sinks.push_back({{100.0 * i, 0.0}, 0.02});
  for (int i = 0; i < 4; ++i) sinks.push_back({{100.0 * i, 5000.0}, 0.02});
  // Instruction 0 drives modules 0-3 (bottom row), instruction 1 drives
  // modules 4-7 (top row).
  activity::RtlDescription rtl(2, 8);
  for (int m = 0; m < 4; ++m) rtl.add_use(0, m);
  for (int m = 4; m < 8; ++m) rtl.add_use(1, m);
  activity::InstructionStream stream;
  for (int t = 0; t < 400; ++t) stream.seq.push_back((t / 7) % 2);
  const activity::ActivityAnalyzer an(rtl, stream);

  BuildOptions opts;
  opts.cost = MergeCost::SwitchedCapacitance;
  opts.control_point = {200.0, 2500.0};
  const auto mods = identity_modules(8);
  const BuildResult r = build_topology(sinks, &an, mods, opts);
  ASSERT_TRUE(r.topo.valid());
  // The root's two subtrees must be exactly the two rows: each child's
  // activation mask is a single instruction.
  const ct::TreeNode& root = r.topo.node(r.topo.root());
  EXPECT_EQ(r.mask[static_cast<std::size_t>(root.left)].count(), 1);
  EXPECT_EQ(r.mask[static_cast<std::size_t>(root.right)].count(), 1);
}

}  // namespace
}  // namespace gcr::cts

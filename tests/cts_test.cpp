#include <gtest/gtest.h>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "cts/greedy.h"

namespace gcr::cts {
namespace {

struct Instance {
  benchdata::RBench bench;
  benchdata::Workload wl;
  activity::ActivityAnalyzer analyzer;
  std::vector<int> modules;

  static Instance make(int n, std::uint64_t seed, double activity = 0.4) {
    benchdata::RBenchSpec spec{"t", n, 6000.0, 0.005, 0.08, seed};
    benchdata::RBench bench = benchdata::generate_rbench(spec);
    benchdata::WorkloadSpec wspec;
    wspec.num_instructions = 16;
    wspec.target_activity = activity;
    wspec.stream_length = 4000;
    wspec.seed = seed;
    benchdata::Workload wl =
        benchdata::generate_workload(wspec, bench.sinks, bench.die);
    activity::ActivityAnalyzer an(wl.rtl, wl.stream);
    auto mods = identity_modules(n);
    return Instance{std::move(bench), std::move(wl), std::move(an),
                    std::move(mods)};
  }
};

TEST(Greedy, NearestNeighborBuildsValidTopology) {
  auto inst = Instance::make(40, 11);
  BuildOptions opts;
  opts.cost = MergeCost::NearestNeighbor;
  const BuildResult r =
      build_topology(inst.bench.sinks, nullptr, {}, opts);
  EXPECT_TRUE(r.topo.valid());
  EXPECT_EQ(r.topo.num_leaves(), 40);
  EXPECT_EQ(r.topo.num_nodes(), 79);
  EXPECT_TRUE(r.mask.empty());  // no analyzer supplied
}

TEST(Greedy, SwitchedCapacitanceBuildsValidTopologyWithActivity) {
  auto inst = Instance::make(40, 12);
  BuildOptions opts;
  opts.cost = MergeCost::SwitchedCapacitance;
  opts.control_point = inst.bench.die.center();
  const BuildResult r =
      build_topology(inst.bench.sinks, &inst.analyzer, inst.modules, opts);
  EXPECT_TRUE(r.topo.valid());
  ASSERT_EQ(static_cast<int>(r.p_en.size()), r.topo.num_nodes());
  // Root enable probability covers every leaf's.
  const double root_p = r.p_en[static_cast<std::size_t>(r.topo.root())];
  for (int i = 0; i < 40; ++i)
    EXPECT_GE(root_p + 1e-12, r.p_en[static_cast<std::size_t>(i)]);
  // Masks union upward: parent mask contains child masks.
  for (int id = 0; id < r.topo.num_nodes(); ++id) {
    const ct::TreeNode& n = r.topo.node(id);
    if (n.left < 0) continue;
    const auto u = r.mask[static_cast<std::size_t>(n.left)] |
                   r.mask[static_cast<std::size_t>(n.right)];
    EXPECT_EQ(u, r.mask[static_cast<std::size_t>(id)]);
  }
}

TEST(Greedy, DeterministicAcrossRuns) {
  auto inst = Instance::make(30, 13);
  BuildOptions opts;
  opts.cost = MergeCost::SwitchedCapacitance;
  opts.control_point = inst.bench.die.center();
  const BuildResult a =
      build_topology(inst.bench.sinks, &inst.analyzer, inst.modules, opts);
  const BuildResult b =
      build_topology(inst.bench.sinks, &inst.analyzer, inst.modules, opts);
  for (int id = 0; id < a.topo.num_nodes(); ++id) {
    EXPECT_EQ(a.topo.node(id).left, b.topo.node(id).left);
    EXPECT_EQ(a.topo.node(id).right, b.topo.node(id).right);
  }
}

TEST(Greedy, SingleSinkDegenerates) {
  ct::SinkList sinks = {{{100, 100}, 0.02}};
  BuildOptions opts;
  const BuildResult r = build_topology(sinks, nullptr, {}, opts);
  EXPECT_EQ(r.topo.num_nodes(), 1);
  EXPECT_EQ(r.topo.root(), 0);
  EXPECT_TRUE(r.topo.valid());
}

TEST(Greedy, TwoSinksSingleMerge) {
  ct::SinkList sinks = {{{0, 0}, 0.02}, {{100, 0}, 0.02}};
  BuildOptions opts;
  const BuildResult r = build_topology(sinks, nullptr, {}, opts);
  EXPECT_EQ(r.topo.num_nodes(), 3);
  EXPECT_EQ(r.topo.root(), 2);
}

TEST(Greedy, NearestNeighborPrefersShortWirelength) {
  // On a clustered instance the NN topology should use clearly less wire
  // than a pathological pairing; as a sanity proxy, check the NN tree's
  // wirelength is within a small factor of the spread of the points.
  auto inst = Instance::make(60, 14);
  BuildOptions opts;
  opts.cost = MergeCost::NearestNeighbor;
  const BuildResult r = build_topology(inst.bench.sinks, nullptr, {}, opts);
  std::vector<bool> gates(static_cast<std::size_t>(r.topo.num_nodes()), true);
  gates[static_cast<std::size_t>(r.topo.root())] = false;
  const auto tree = ct::embed(r.topo, inst.bench.sinks, gates, opts.tech);
  // Weak lower bound: half the sum over sinks of the distance to the
  // nearest other sink must be covered by the tree.
  double lb = 0.0;
  const auto& sinks = inst.bench.sinks;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    double best = 1e18;
    for (std::size_t j = 0; j < sinks.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, geom::manhattan_dist(sinks[i].loc, sinks[j].loc));
    }
    lb += best;
  }
  EXPECT_GE(tree.total_wirelength(), lb / 2.0);
  EXPECT_LE(tree.total_wirelength(), 60.0 * 6000.0);  // gross upper sanity
}

TEST(Greedy, ActivityAwareOrderGroupsCoactiveSinks) {
  // Two spatial clusters with perfectly anti-correlated activity. The
  // switched-capacitance greedy must not mix clusters at the bottom level
  // more than the geometry forces; check the root's children separate the
  // two activity groups when geometry and activity align.
  ct::SinkList sinks;
  for (int i = 0; i < 4; ++i) sinks.push_back({{100.0 * i, 0.0}, 0.02});
  for (int i = 0; i < 4; ++i) sinks.push_back({{100.0 * i, 5000.0}, 0.02});
  // Instruction 0 drives modules 0-3 (bottom row), instruction 1 drives
  // modules 4-7 (top row).
  activity::RtlDescription rtl(2, 8);
  for (int m = 0; m < 4; ++m) rtl.add_use(0, m);
  for (int m = 4; m < 8; ++m) rtl.add_use(1, m);
  activity::InstructionStream stream;
  for (int t = 0; t < 400; ++t) stream.seq.push_back((t / 7) % 2);
  const activity::ActivityAnalyzer an(rtl, stream);

  BuildOptions opts;
  opts.cost = MergeCost::SwitchedCapacitance;
  opts.control_point = {200.0, 2500.0};
  const auto mods = identity_modules(8);
  const BuildResult r = build_topology(sinks, &an, mods, opts);
  ASSERT_TRUE(r.topo.valid());
  // The root's two subtrees must be exactly the two rows: each child's
  // activation mask is a single instruction.
  const ct::TreeNode& root = r.topo.node(r.topo.root());
  EXPECT_EQ(r.mask[static_cast<std::size_t>(root.left)].count(), 1);
  EXPECT_EQ(r.mask[static_cast<std::size_t>(root.right)].count(), 1);
}

}  // namespace
}  // namespace gcr::cts

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/router.h"
#include "guard/deadline.h"
#include "guard/postmortem.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "prof/flightrec.h"
#include "prof/hwcounters.h"
#include "prof/report.h"
#include "prof/sampler.h"
#include "verify/generator.h"

namespace gcr {
namespace {

// --- flight recorder -------------------------------------------------------

/// Record on a dedicated thread so the test owns one whole ring: every
/// other test (and gtest's main thread) records into different rings.
prof::ThreadTail record_on_fresh_thread(std::uint64_t count) {
  std::uint64_t marker = 0;
  std::thread t([&] {
    for (std::uint64_t i = 0; i < count; ++i)
      prof::record(prof::Ev::Mark, "wrap", static_cast<std::int64_t>(i));
    marker = count;
  });
  t.join();
  EXPECT_EQ(marker, count);
  for (const prof::ThreadTail& tail : prof::snapshot_rings())
    if (tail.retired && tail.recorded == count &&
        !tail.events.empty() &&
        std::string(tail.events.front().what) == "wrap")
      return tail;
  ADD_FAILURE() << "ring of the recording thread not found";
  return {};
}

TEST(FlightRec, RingWraparoundKeepsLastN) {
  prof::set_recorder_enabled(true);
  constexpr std::uint64_t kCount = 1000;
  const prof::ThreadTail tail = record_on_fresh_thread(kCount);
  EXPECT_EQ(tail.recorded, kCount);
  EXPECT_EQ(tail.events.size(), prof::kRingCapacity);
  EXPECT_EQ(tail.dropped, kCount - prof::kRingCapacity);
  // Last-N semantics: the tail is the final kRingCapacity events in order.
  std::uint64_t expect_id = kCount - prof::kRingCapacity + 1;
  for (const prof::Event& e : tail.events) {
    EXPECT_EQ(e.id, expect_id);
    EXPECT_EQ(e.a, static_cast<std::int64_t>(expect_id - 1));
    ++expect_id;
  }
  EXPECT_EQ(expect_id, kCount + 1);
}

TEST(FlightRec, ConcurrentWritersKeepPerThreadConsistency) {
  prof::set_recorder_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  const std::uint64_t before = prof::total_recorded();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        prof::record(prof::Ev::Mark, "concurrent", t,
                     static_cast<std::int64_t>(i));
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(prof::total_recorded() - before, kThreads * kPerThread);
  // Joined writers: every one of their rings must read exact and ordered.
  int found = 0;
  for (const prof::ThreadTail& tail : prof::snapshot_rings()) {
    if (tail.events.empty() ||
        std::string(tail.events.front().what) != "concurrent")
      continue;
    ++found;
    EXPECT_EQ(tail.recorded, kPerThread);
    EXPECT_EQ(tail.events.size(), prof::kRingCapacity);
    for (std::size_t i = 1; i < tail.events.size(); ++i)
      EXPECT_EQ(tail.events[i].id, tail.events[i - 1].id + 1);
  }
  EXPECT_EQ(found, kThreads);
}

TEST(FlightRec, DisabledRecorderDropsEverything) {
  prof::set_recorder_enabled(false);
  const std::uint64_t before = prof::total_recorded();
  prof::record(prof::Ev::Mark, "dropped");
  EXPECT_EQ(prof::total_recorded(), before);
  prof::set_recorder_enabled(true);
}

TEST(FlightRec, ZeroDeadlineRouteDumpsExpiryTail) {
  prof::set_recorder_enabled(true);
  verify::DesignSpec spec = verify::random_spec(77);
  spec.num_sinks = 64;
  const core::GatedClockRouter router(verify::generate_design(spec));
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const core::RouteOutcome out =
      router.route_guarded(opts, guard::Deadline::after_ms(0.0));
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.cancelled);

  std::ostringstream os;
  prof::write_flight_record(os);
  const std::string dump = os.str();
  EXPECT_TRUE(obs::json::valid(dump)) << dump.substr(0, 200);
  EXPECT_NE(dump.find("\"gcr.flight_record\""), std::string::npos);
  EXPECT_NE(dump.find("deadline_expired"), std::string::npos);
}

// --- hardware counters -----------------------------------------------------

TEST(HwCounters, EnvKnobForcesRusageFallback) {
  ASSERT_EQ(setenv("GCR_PROF_NO_HW", "1", 1), 0);
  const prof::HwInfo info = prof::enable_hw_counters();
  EXPECT_FALSE(info.perf_event);
  EXPECT_STREQ(info.source, "rusage");
  EXPECT_STREQ(info.names[0], "cpu_user_ns");
  ASSERT_NE(obs::hw_sampler(), nullptr);

  // The fallback sampler must still attach per-phase deltas.
  obs::Session session;
  obs::Bind bind(&session);
  {
    obs::ScopedTimer phase("hw_fallback_phase");
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i) sink += 1.0 / (1.0 + i);
    (void)sink;
  }
  const obs::PhaseStats& root = session.timers().root();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0]->name, "hw_fallback_phase");
  EXPECT_TRUE(root.children[0]->has_hw);

  prof::disable_hw_counters();
  EXPECT_EQ(obs::hw_sampler(), nullptr);
  unsetenv("GCR_PROF_NO_HW");
}

// --- sampler ---------------------------------------------------------------

TEST(Sampler, CreditsSelfToInnermostAndTotalToStack) {
  // ScopedTimer (and therefore the shadow stack) is a no-op without a
  // bound session -- the sampler observes sessions, not bare threads.
  obs::Session session;
  obs::Bind bind(&session);
  prof::Sampler sampler;
  prof::Sampler::Options opts;
  opts.interval_us = 100;
  sampler.start(opts);
  {
    obs::ScopedTimer outer("sampler_outer");
    obs::ScopedTimer inner("sampler_inner");
    // Burn bounded wall-clock; at a 100us tick even a fraction of this
    // loop yields several samples.
    volatile double sink = 0.0;
    for (int spin = 0; spin < 4000; ++spin)
      for (int i = 0; i < 20000; ++i) sink += 1.0 / (1.0 + i);
    (void)sink;
  }
  const prof::Sampler::Profile p = sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GT(p.ticks, 0u);
  ASSERT_FALSE(p.entries.empty());
  std::uint64_t inner_self = 0, outer_total = 0, outer_self = 0;
  for (const prof::Sampler::Entry& e : p.entries) {
    EXPECT_GE(e.total, e.self);
    if (e.phase == "sampler_inner") inner_self = e.self;
    if (e.phase == "sampler_outer") {
      outer_total = e.total;
      outer_self = e.self;
    }
  }
  // The inner phase was open the whole time: all samples land there, and
  // the outer phase accrues them as total but never as self.
  EXPECT_GT(inner_self, 0u);
  EXPECT_GE(outer_total, inner_self);
  EXPECT_EQ(outer_self, 0u);
}

// --- pool telemetry --------------------------------------------------------

std::uint64_t total_worker_chunks(const par::PoolTelemetry& t) {
  std::uint64_t n = 0;
  for (const par::PoolTelemetry::Worker& w : t.workers) n += w.chunks;
  return n;
}

TEST(PoolTelemetry, DispatchOverheadCounterNonZeroAtWidth4) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();
  const par::PoolTelemetry before = par::ThreadPool::global().telemetry();
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 8; ++round)
    par::parallel_for(4, 0, 512, 4, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) sum.fetch_add(i);
    });
  const par::PoolTelemetry after = par::ThreadPool::global().telemetry();
  EXPECT_EQ(sum.load(), 8 * (511 * 512) / 2);
  EXPECT_EQ(after.jobs - before.jobs, 8u);
  EXPECT_GT(after.dispatch_overhead_ns, before.dispatch_overhead_ns);
  EXPECT_GT(
      obs::Registry::global().counter("par.dispatch_overhead_ns").value(), 0u);
  EXPECT_EQ(obs::Registry::global().counter("par.jobs").value(), 8u);
  EXPECT_FALSE(after.workers.empty());
  // Worker pickup needs chunks slow enough that the caller lane cannot
  // drain the queue before a worker wakes; the cheap jobs above routinely
  // finish caller-only on a loaded box.
  par::parallel_for(4, 0, 32, 1, [](std::int64_t, std::int64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const par::PoolTelemetry slow = par::ThreadPool::global().telemetry();
  EXPECT_GT(total_worker_chunks(slow), total_worker_chunks(before));
  obs::set_metrics_enabled(false);
}

// --- worker-thread observability (the PR's regression test) ----------------

TEST(WorkerTrace, ParallelForBodyEventsReachTheSessionSink) {
  obs::Session session;
  obs::MemoryTraceSink sink;
  session.set_trace(&sink);
  obs::Bind bind(&session);
  constexpr int kChunks = 64;
  par::parallel_for(4, 0, kChunks, 1, [&](std::int64_t b, std::int64_t) {
    // Pre-fix, active_trace() was null on pool threads and worker-side
    // events vanished; the sleep keeps the caller lane from racing
    // through every chunk itself.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (obs::TraceSink* trace = obs::active_trace()) {
      obs::TraceEvent e;
      e.name = "chunk";
      e.cat = "test";
      e.ph = 'i';
      e.args.push_back(obs::TraceArg::num("begin", static_cast<long long>(b)));
      trace->event(std::move(e));
    }
  });
  const std::vector<obs::TraceEvent> events = sink.events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kChunks));
  std::set<int> tids;
  for (const obs::TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_GE(tids.size(), 2u) << "no worker thread emitted a captured event";
}

TEST(WorkerTrace, RouteAtFourThreadsCapturesEveryMergeDecision) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();
  obs::Session session;
  obs::MemoryTraceSink sink;
  session.set_trace(&sink);
  obs::Bind bind(&session);

  verify::DesignSpec spec = verify::random_spec(91);
  spec.num_sinks = 128;
  const core::GatedClockRouter router(verify::generate_design(spec));
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  opts.num_threads = 4;
  const core::RouterResult r = router.route(opts);
  EXPECT_EQ(r.tree.num_leaves, 128);

  std::size_t merges = 0, recomputes = 0;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.cat != "cts") continue;
    if (e.name == "merge") ++merges;
    if (e.name == "recompute") ++recomputes;
  }
  // One decision event per greedy merge, regardless of which thread the
  // supporting scans ran on.
  EXPECT_EQ(merges, 127u);
  // Every best-partner recompute -- counted by the engine itself -- must
  // have reached the sink, including the ones pool workers executed.
  EXPECT_EQ(
      recomputes,
      obs::Registry::global().counter("cts.best_partner_recomputes").value());
  EXPECT_GT(recomputes, 0u);
  obs::set_metrics_enabled(false);
}

// --- profile report --------------------------------------------------------

TEST(ProfileReport, RoundTripsThroughTheValidator) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();
  obs::Session session;
  obs::Bind bind(&session);
  prof::Sampler sampler;
  prof::Sampler::Options sopts;
  sopts.interval_us = 200;
  sampler.start(sopts);
  {
    obs::ScopedTimer phase("report_phase");
    volatile double sink = 0.0;
    for (int i = 0; i < 4000000; ++i) sink += 1.0 / (1.0 + i);
    (void)sink;
  }
  const prof::Sampler::Profile p = sampler.stop();

  std::ostringstream os;
  prof::ProfileReportOptions opts;
  opts.tool = "prof_test";
  opts.profile = &p;
  opts.session = &session;
  opts.hw = prof::hw_info();
  prof::write_profile_report(os, opts);

  const std::optional<obs::json::Value> doc = obs::json::parse(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str().substr(0, 200);
  EXPECT_TRUE(prof::validate_profile_report(*doc).empty());

  // Negative: a wrong schema tag and a missing pool section must both be
  // reported as problems, not silently accepted.
  std::string corrupt = os.str();
  corrupt.replace(corrupt.find("gcr.profile_report"),
                  std::string("gcr.profile_report").size(), "gcr.bogus");
  const std::optional<obs::json::Value> bad = obs::json::parse(corrupt);
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(prof::validate_profile_report(*bad).empty());

  std::string no_pool = os.str();
  no_pool.replace(no_pool.find("\"pool\""), 6, "\"loop\"");
  const std::optional<obs::json::Value> bad2 = obs::json::parse(no_pool);
  ASSERT_TRUE(bad2.has_value());
  EXPECT_FALSE(prof::validate_profile_report(*bad2).empty());
  obs::set_metrics_enabled(false);
}

TEST(ProfileReport, PostmortemDumpWritesReadableFile) {
  prof::set_recorder_enabled(true);
  prof::record(prof::Ev::Mark, "postmortem_test");
  const std::string path = "prof_test_postmortem.flightrec.json";
  ASSERT_TRUE(guard::postmortem_dump(path));
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::ostringstream ss;
  ss << is.rdbuf();
  EXPECT_TRUE(obs::json::valid(ss.str()));
  EXPECT_NE(ss.str().find("postmortem_test"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcr

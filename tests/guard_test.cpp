#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/design.h"
#include "core/router.h"
#include "guard/arena.h"
#include "guard/deadline.h"
#include "guard/fault.h"
#include "guard/lexer.h"
#include "guard/status.h"
#include "guard/validate.h"
#include "io/text_io.h"
#include "verify/generator.h"

using namespace gcr;
using guard::Code;

// ---------------------------------------------------------------------------
// Status / Diag / Result

TEST(GuardStatus, CodeNamesAreStable) {
  // These strings are the CLI/CI contract -- renaming one is a breaking
  // change (docs/robustness.md).
  EXPECT_EQ(guard::code_name(Code::Ok), "GCR_OK");
  EXPECT_EQ(guard::code_name(Code::Parse), "GCR_E_PARSE");
  EXPECT_EQ(guard::code_name(Code::NonFinite), "GCR_E_NONFINITE");
  EXPECT_EQ(guard::code_name(Code::TreeStructure), "GCR_E_TREE");
  EXPECT_EQ(guard::code_name(Code::Resource), "GCR_E_RESOURCE");
  EXPECT_EQ(guard::code_name(Code::Deadline), "GCR_E_DEADLINE");
  EXPECT_EQ(guard::code_name(Code::DetachedMerge), "GCR_W_DETACHED_MERGE");
  EXPECT_EQ(guard::code_name(Code::Overload), "GCR_E_OVERLOAD");
  EXPECT_EQ(guard::code_name(Code::CacheEvict), "GCR_W_CACHE_EVICT");
}

TEST(GuardStatus, ToStringCarriesLocation) {
  const guard::Status s =
      guard::make_error(Code::Parse, "bad token", {"f.sinks", 3, 7});
  EXPECT_EQ(s.to_string(), "f.sinks:3:7: error GCR_E_PARSE: bad token");
}

TEST(GuardStatus, ExitCodeMapping) {
  EXPECT_EQ(guard::exit_code_for(Code::Ok), 0);
  EXPECT_EQ(guard::exit_code_for(Code::Usage), 1);
  EXPECT_EQ(guard::exit_code_for(Code::Parse), 2);
  EXPECT_EQ(guard::exit_code_for(Code::OutOfDie), 2);
  EXPECT_EQ(guard::exit_code_for(Code::Resource), 3);
  EXPECT_EQ(guard::exit_code_for(Code::Deadline), 3);
  EXPECT_EQ(guard::exit_code_for(Code::Overload), 3);
  EXPECT_EQ(guard::exit_code_for(Code::Internal), 4);
  EXPECT_EQ(guard::exit_code_for(Code::DetachedMerge), 0);  // warning
  EXPECT_EQ(guard::exit_code_for(Code::CacheEvict), 0);     // warning
}

TEST(GuardDiag, CollectsAndRanks) {
  guard::Diag d;
  d.warning(Code::EmptyStream, "w");
  EXPECT_FALSE(d.has_errors());
  EXPECT_EQ(d.exit_code(), 0);
  d.error(Code::Parse, "e1", {"f", 2, 1});
  d.error(Code::Deadline, "e2");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 2u);
  EXPECT_EQ(d.warning_count(), 1u);
  EXPECT_EQ(d.first_error().code, Code::Parse);
  EXPECT_EQ(d.first_error().loc.line, 2);
  EXPECT_TRUE(d.has_code(Code::Deadline));
  EXPECT_EQ(d.exit_code(), 3);  // worst of {2, 3}
}

TEST(GuardDiag, BoundedAndCountsDrops) {
  guard::Diag d(4);
  for (int i = 0; i < 10; ++i) d.error(Code::Parse, "e");
  EXPECT_EQ(d.entries().size(), 4u);
  EXPECT_EQ(d.error_count(), 10u);
  EXPECT_EQ(d.dropped(), 6u);
}

TEST(GuardResult, ValueAndStatus) {
  guard::Result<int> ok = 41;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 41);
  guard::Result<int> bad = guard::make_error(Code::Io, "nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code, Code::Io);
  EXPECT_EQ(bad.value_or(7), 7);
}

// ---------------------------------------------------------------------------
// Deadline

TEST(GuardDeadline, UnlimitedNeverExpires) {
  const guard::Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
}

TEST(GuardDeadline, ExpiredDeadlineTripsThePoll) {
  const guard::Deadline d = guard::Deadline::after_ms(0.0);
  EXPECT_TRUE(d.expired());
  const guard::DeadlineScope scope(d);
  ASSERT_NE(guard::current_deadline(), nullptr);
  try {
    guard::poll_deadline("unit");
    FAIL() << "poll_deadline did not throw";
  } catch (const guard::CancelledError& e) {
    EXPECT_EQ(e.phase(), "unit");
    EXPECT_EQ(e.status().code, Code::Deadline);
  }
}

TEST(GuardDeadline, ScopesNestAndRestore) {
  EXPECT_EQ(guard::current_deadline(), nullptr);
  const guard::Deadline outer;
  {
    const guard::DeadlineScope a(outer);
    const guard::Deadline* seen = guard::current_deadline();
    EXPECT_EQ(seen, &outer);
    {
      const guard::Deadline inner = guard::Deadline::after_ms(1e9);
      const guard::DeadlineScope b(inner);
      EXPECT_EQ(guard::current_deadline(), &inner);
    }
    EXPECT_EQ(guard::current_deadline(), &outer);
  }
  EXPECT_EQ(guard::current_deadline(), nullptr);
}

// ---------------------------------------------------------------------------
// Fault injection

TEST(GuardFault, NthVisitFiresExactlyOnce) {
  guard::FaultInjector& inj = guard::FaultInjector::global();
  inj.arm({42, 5, 0.0});
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(inj.should_inject("site"));
  inj.disarm();
  int count = 0;
  for (std::size_t i = 0; i < fired.size(); ++i)
    if (fired[i]) {
      ++count;
      EXPECT_EQ(i, 4u);  // 1-based visit 5
    }
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(guard::fault_point("site"));  // disarmed: never fires
}

TEST(GuardFault, BernoulliSequenceIsSeedDeterministic) {
  guard::FaultInjector& inj = guard::FaultInjector::global();
  const auto run = [&](std::uint64_t seed) {
    inj.arm({seed, 0, 0.3});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(inj.should_inject("s"));
    inj.disarm();
    return fired;
  };
  const std::vector<bool> a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different pattern
  EXPECT_EQ(inj.points_visited(), 64u);
}

TEST(GuardFault, ShortReadTruncateEndsEarly) {
  guard::ShortReadStream is("hello world", 5,
                            guard::ShortReadStreambuf::Mode::Truncate);
  std::string tok;
  is >> tok;
  EXPECT_EQ(tok, "hello");
  EXPECT_FALSE(is >> tok);
  EXPECT_TRUE(is.eof());
  EXPECT_FALSE(is.bad());
  EXPECT_TRUE(is.tripped());
}

TEST(GuardFault, ShortReadFailSetsBadbit) {
  guard::ShortReadStream is("hello world", 5,
                            guard::ShortReadStreambuf::Mode::Fail);
  std::string tok;
  is >> tok;
  EXPECT_EQ(tok, "hello");
  EXPECT_FALSE(is >> tok);
  EXPECT_TRUE(is.bad());
  EXPECT_TRUE(is.tripped());
}

TEST(GuardFault, ParserReportsInjectedStreamFailureAsIo) {
  guard::ShortReadStream is("die 0 0 10 10\n1 2 0.01\n3 4 0.01\n", 20,
                            guard::ShortReadStreambuf::Mode::Fail);
  guard::Diag diag;
  EXPECT_FALSE(io::read_sinks(is, diag, "t.sinks").has_value());
  EXPECT_TRUE(diag.has_code(Code::Io));
}

// ---------------------------------------------------------------------------
// Bounded arena

TEST(GuardArena, CapsTotalBytes) {
  guard::BoundedArena arena(64);
  char* a = arena.allocate(40);
  ASSERT_NE(a, nullptr);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(a[i], 0);  // zero-initialised
  EXPECT_EQ(arena.allocate(40), nullptr);  // would exceed the cap
  EXPECT_NE(arena.allocate(24), nullptr);  // exactly fills it
  EXPECT_EQ(arena.allocate(1), nullptr);
  EXPECT_EQ(arena.used(), 64u);
}

TEST(GuardArena, StoreCopies) {
  guard::BoundedArena arena(64);
  const char* text = "abc";
  char* p = arena.store(text, 3);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(std::memcmp(p, "abc", 3), 0);
  EXPECT_NE(p, text);
}

TEST(GuardArena, InjectedAllocationFailure) {
  guard::FaultInjector::global().arm({1, 1, 0.0});  // first visit fires
  guard::BoundedArena arena(1 << 10);
  EXPECT_EQ(arena.allocate(8), nullptr);
  EXPECT_NE(arena.allocate(8), nullptr);  // nth=1 already consumed
  guard::FaultInjector::global().disarm();
}

TEST(GuardLexer, ByteCapReportsResource) {
  std::istringstream is("die 0 0 10 10\n1 2 0.01\n");
  guard::Lexer lx(is, "t.sinks", /*max_bytes=*/8);
  EXPECT_FALSE(lx.ok());
  EXPECT_EQ(lx.load_status().code, Code::Resource);
}

// ---------------------------------------------------------------------------
// validate_design

namespace {

core::Design small_design() {
  verify::DesignSpec spec;
  spec.seed = 11;
  spec.num_sinks = 12;
  return verify::generate_design(spec);
}

}  // namespace

TEST(GuardValidate, AcceptsGeneratedDesign) {
  guard::Diag diag;
  EXPECT_TRUE(guard::validate_design(small_design(), diag));
  EXPECT_FALSE(diag.has_errors());
}

TEST(GuardValidate, RejectsNonFiniteCoordinate) {
  core::Design d = small_design();
  d.sinks[3].loc.x = std::nan("");
  guard::Diag diag;
  EXPECT_FALSE(guard::validate_design(d, diag));
  EXPECT_TRUE(diag.has_code(Code::NonFinite));
}

TEST(GuardValidate, RejectsDenormalCap) {
  core::Design d = small_design();
  d.sinks[0].cap = 5e-320;
  guard::Diag diag;
  EXPECT_FALSE(guard::validate_design(d, diag));
  EXPECT_TRUE(diag.has_code(Code::NonFinite));
}

TEST(GuardValidate, StrictFlagsLenientDemotes) {
  core::Design d = small_design();
  d.sinks[1].loc = d.sinks[0].loc;                    // duplicate
  d.sinks[2].loc = {d.die.xhi + 100.0, d.die.yhi};    // out of die
  guard::Diag strict;
  EXPECT_FALSE(guard::validate_design(d, strict));
  EXPECT_TRUE(strict.has_code(Code::Duplicate));
  EXPECT_TRUE(strict.has_code(Code::OutOfDie));

  guard::Diag lenient;
  guard::ValidateOptions opts;
  opts.strict = false;
  EXPECT_TRUE(guard::validate_design(d, lenient, opts));
  EXPECT_FALSE(lenient.has_errors());
  EXPECT_TRUE(lenient.has_code(Code::Duplicate));  // demoted to warnings
  EXPECT_TRUE(lenient.has_code(Code::OutOfDie));
}

TEST(GuardValidate, NegativeCapIsAlwaysAnError) {
  core::Design d = small_design();
  d.sinks[4].cap = -0.01;
  guard::Diag diag;
  guard::ValidateOptions opts;
  opts.strict = false;
  EXPECT_FALSE(guard::validate_design(d, diag, opts));
  EXPECT_TRUE(diag.has_code(Code::BadCap));
}

TEST(GuardValidate, RejectsStreamIdOutOfRange) {
  core::Design d = small_design();
  d.stream.seq.push_back(d.rtl.num_instructions() + 3);
  d.stream.seq.push_back(d.rtl.num_instructions() + 9);
  guard::Diag diag;
  EXPECT_FALSE(guard::validate_design(d, diag));
  EXPECT_TRUE(diag.has_code(Code::StreamId));
  // The finding aggregates a count instead of one error per cycle.
  bool found = false;
  for (const guard::Status& s : diag.entries())
    if (s.code == Code::StreamId) {
      EXPECT_NE(s.message.find("2"), std::string::npos);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(GuardValidate, RejectsModuleMismatch) {
  core::Design d = small_design();
  d.sinks.push_back({{1.0, 1.0}, 0.01});  // identity map now short a module
  guard::Diag diag;
  EXPECT_FALSE(guard::validate_design(d, diag));
  EXPECT_TRUE(diag.has_code(Code::ModuleMismatch));
}

TEST(GuardValidate, ResourceCapFailsFast) {
  core::Design d = small_design();
  guard::Diag diag;
  guard::ValidateOptions opts;
  opts.limits.max_sinks = 4;
  EXPECT_FALSE(guard::validate_design(d, diag, opts));
  EXPECT_TRUE(diag.has_code(Code::Resource));
}

// ---------------------------------------------------------------------------
// route_guarded: deadlines and outcomes

TEST(GuardRoute, CompletesUnderUnlimitedDeadline) {
  const core::GatedClockRouter router(small_design());
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const core::RouteOutcome out = router.route_guarded(opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.exit_code(), 0);
  EXPECT_FALSE(out.cancelled);
  EXPECT_FALSE(out.phases_completed.empty());
  EXPECT_EQ(out.phases_completed.back(), "delays");
}

TEST(GuardRoute, ExpiredDeadlineYieldsPartialOutcome) {
  verify::DesignSpec spec;
  spec.seed = 3;
  spec.num_sinks = 256;  // big enough that phases exist to abort
  const core::GatedClockRouter router(verify::generate_design(spec));
  core::RouterOptions opts;
  opts.style = core::TreeStyle::GatedReduced;
  opts.auto_tune_reduction = true;
  const core::RouteOutcome out =
      router.route_guarded(opts, guard::Deadline::after_ms(0.0));
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.cancelled);
  EXPECT_FALSE(out.aborted_phase.empty());
  EXPECT_TRUE(out.diag.has_code(Code::Deadline));
  EXPECT_EQ(out.exit_code(), 3);
}

TEST(GuardRoute, InvalidDesignReportsInsteadOfRouting) {
  core::Design d = small_design();
  d.sinks[0].loc.x = std::nan("");
  const core::GatedClockRouter router(std::move(d));
  const core::RouteOutcome out = router.route_guarded({});
  EXPECT_FALSE(out.ok());
  EXPECT_FALSE(out.cancelled);
  EXPECT_TRUE(out.diag.has_code(Code::NonFinite));
  EXPECT_EQ(out.exit_code(), 2);
  // The throwing wrapper surfaces the same finding as an exception.
  EXPECT_THROW((void)router.route({}), guard::GuardError);
}

// ---------------------------------------------------------------------------
// Replay artifacts

TEST(GuardArtifact, RoundTripsThroughJson) {
  verify::DesignSpec spec = verify::random_spec(99);
  std::ostringstream os;
  verify::write_design_artifact(os, spec, "route");
  std::istringstream is(os.str());
  const guard::Result<verify::DesignSpec> r =
      verify::load_design_artifact(is, "a.json");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().seed, spec.seed);
  EXPECT_EQ(r.value().num_sinks, spec.num_sinks);
  EXPECT_EQ(r.value().cloud, spec.cloud);
  EXPECT_DOUBLE_EQ(r.value().die_side, spec.die_side);
  EXPECT_DOUBLE_EQ(r.value().module_fraction, spec.module_fraction);
  EXPECT_EQ(r.value().constant_modules, spec.constant_modules);
}

TEST(GuardArtifact, RejectsWrongSchemaAndJunk) {
  {
    std::istringstream is("{\"schema\":\"other\",\"spec\":{}}");
    const auto r = verify::load_design_artifact(is);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code, Code::Header);
  }
  {
    std::istringstream is("not json at all");
    const auto r = verify::load_design_artifact(is);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code, Code::Parse);
  }
  {
    std::istringstream is(
        "{\"schema\":\"gcr.verify_artifact\",\"spec\":{\"num_sinks\":-4}}");
    const auto r = verify::load_design_artifact(is);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code, Code::Range);
  }
}

#include <gtest/gtest.h>

#include <sstream>

#include "activity/brute_force.h"
#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/session.h"
#include "obs/trace.h"

/// End-to-end integration checks on an r1-class instance: the full flow
/// (workload -> tables -> topology -> gating -> embedding -> evaluation)
/// with cross-validation of the evaluator's probabilities against the
/// brute-force stream oracle, and the paper's qualitative orderings.

namespace gcr {
namespace {

class Integration : public ::testing::Test {
 protected:
  static constexpr int kSinks = 96;

  static core::Design make() {
    benchdata::RBenchSpec spec{"it", kSinks, 16000.0, 0.005, 0.08, 77};
    benchdata::RBench bench = benchdata::generate_rbench(spec);
    benchdata::WorkloadSpec wspec;
    wspec.num_instructions = 24;
    wspec.num_clusters = 16;
    wspec.target_activity = 0.35;
    wspec.stream_length = 8000;
    wspec.seed = 77;
    benchdata::Workload wl =
        benchdata::generate_workload(wspec, bench.sinks, bench.die);
    return core::Design{bench.die, bench.sinks, std::move(wl.rtl),
                        std::move(wl.stream), {}};
  }

  core::GatedClockRouter router{make()};
};

TEST_F(Integration, EvaluatorProbabilitiesMatchStreamOracle) {
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const core::RouterResult r = router.route(opts);
  const activity::BruteForceActivity oracle(router.design().rtl,
                                            router.design().stream);

  // Reconstruct each node's module set from the tree and compare the
  // evaluator's P(EN)/P_tr(EN) against a full stream rescan.
  const int n = r.tree.num_nodes();
  std::vector<activity::ModuleSet> mods(
      static_cast<std::size_t>(n),
      activity::ModuleSet(router.design().rtl.num_modules()));
  for (int id = 0; id < n; ++id) {
    const ct::RoutedNode& node = r.tree.node(id);
    if (node.is_leaf()) {
      mods[static_cast<std::size_t>(id)].set(id);
    } else {
      mods[static_cast<std::size_t>(id)] =
          mods[static_cast<std::size_t>(node.left)] |
          mods[static_cast<std::size_t>(node.right)];
    }
  }
  for (const int id : {0, kSinks / 2, kSinks, n - 2, n - 1}) {
    EXPECT_NEAR(r.activity.p_en[static_cast<std::size_t>(id)],
                oracle.signal_prob(mods[static_cast<std::size_t>(id)]), 1e-9)
        << "node " << id;
    EXPECT_NEAR(r.activity.p_tr[static_cast<std::size_t>(id)],
                oracle.transition_prob(mods[static_cast<std::size_t>(id)]),
                1e-9)
        << "node " << id;
  }
}

TEST_F(Integration, PaperOrderingHoldsAtModerateActivity) {
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Buffered;
  const auto buffered = router.route(opts);
  opts.style = core::TreeStyle::Gated;
  const auto gated = router.route(opts);
  opts.style = core::TreeStyle::GatedReduced;
  const auto reduced = router.route(opts);

  // Fig. 3's qualitative story:
  //  - gating the clock tree cuts W(T) well below the buffered tree's;
  EXPECT_LT(gated.swcap.clock_swcap, buffered.swcap.clock_swcap);
  //  - but the star routing makes the *total* worse than (or comparable
  //    to) buffered -- the overhead the paper calls out;
  EXPECT_GT(gated.swcap.total_swcap(), 0.9 * buffered.swcap.total_swcap());
  //  - gate reduction restores the win;
  EXPECT_LT(reduced.swcap.total_swcap(), buffered.swcap.total_swcap());
  EXPECT_LT(reduced.swcap.total_swcap(), gated.swcap.total_swcap());
  //  - while buffered remains the area champion.
  EXPECT_GT(reduced.swcap.total_area(), buffered.swcap.total_area());
}

TEST_F(Integration, ZeroSkewAcrossAllStylesAtScale) {
  for (const auto style : {core::TreeStyle::Buffered, core::TreeStyle::Gated,
                           core::TreeStyle::GatedReduced}) {
    core::RouterOptions opts;
    opts.style = style;
    const auto r = router.route(opts);
    EXPECT_LT(r.delays.skew(), 1e-6 * std::max(1.0, r.delays.max_delay));
  }
}

TEST_F(Integration, FullFlowIsDeterministic) {
  core::RouterOptions opts;
  opts.style = core::TreeStyle::GatedReduced;
  opts.auto_tune_reduction = true;
  const auto a = router.route(opts);
  const auto b = router.route(opts);
  EXPECT_DOUBLE_EQ(a.swcap.total_swcap(), b.swcap.total_swcap());
  EXPECT_DOUBLE_EQ(a.tree.total_wirelength(), b.tree.total_wirelength());
  EXPECT_EQ(a.tree.num_gates(), b.tree.num_gates());
  for (int id = 0; id < a.tree.num_nodes(); ++id) {
    EXPECT_EQ(a.tree.node(id).gated, b.tree.node(id).gated) << id;
    EXPECT_DOUBLE_EQ(a.tree.node(id).loc.x, b.tree.node(id).loc.x) << id;
  }
}

TEST_F(Integration, ObservedRunReportsAllPhasesAndEveryMerge) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();
  obs::Session session;
  obs::MemoryTraceSink sink;
  session.set_trace(&sink);
  core::RouterResult r;
  core::RouterOptions opts;
  {
    obs::Bind bind(&session);
    // A fresh router inside the binding so the analyze phase is captured.
    core::GatedClockRouter observed(make());
    opts.style = core::TreeStyle::Gated;
    r = observed.route(opts);
  }

  // The greedy front performs exactly N-1 merges, and each one leaves a
  // decision event in the trace.
  EXPECT_EQ(obs::Registry::global().counter("cts.merges").value(),
            static_cast<std::uint64_t>(kSinks - 1));
  int merge_events = 0;
  for (const obs::TraceEvent& e : sink.events())
    if (e.name == "merge") ++merge_events;
  EXPECT_EQ(merge_events, kSinks - 1);

  std::ostringstream os;
  obs::write_run_report(os, opts, r, session);
  const std::string doc = os.str();
  EXPECT_TRUE(obs::json::valid(doc)) << doc.substr(0, 400);
  for (const char* phase : {"\"analyze\"", "\"route\"", "\"topology\"",
                            "\"controller\"", "\"embed\"", "\"eval\"",
                            "\"delays\""})
    EXPECT_NE(doc.find(phase), std::string::npos) << phase;
  EXPECT_NE(doc.find("\"cts.merges\":95"), std::string::npos);

  std::ostringstream ts;
  sink.write_chrome_json(ts);
  EXPECT_TRUE(obs::json::valid(ts.str()));

  obs::set_metrics_enabled(false);
  obs::Registry::global().reset();
}

TEST_F(Integration, ClusteredBuildStillPerformsExactlyNMinusOneMerges) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  opts.clustered = true;
  (void)router.route(opts);
  // N - C local merges plus C - 1 top-level merges: still N - 1 total.
  EXPECT_EQ(obs::Registry::global().counter("cts.merges").value(),
            static_cast<std::uint64_t>(kSinks - 1));
  obs::set_metrics_enabled(false);
  obs::Registry::global().reset();
}

TEST_F(Integration, ReductionSweepHasInteriorOptimum) {
  // Fig. 5: with no reduction the controller dominates; with maximal
  // reduction the clock tree pays; somewhere in between is the minimum.
  double w_none = 0.0, w_full = 0.0, w_best = 1e300;
  for (const double s : {0.0, 0.3, 0.5, 0.7, 0.95}) {
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    opts.reduction = gating::GateReductionParams::from_strength(s);
    const auto r = router.route(opts);
    const double w = r.swcap.total_swcap();
    if (s == 0.0) w_none = w;
    if (s == 0.95) w_full = w;
    w_best = std::min(w_best, w);
  }
  EXPECT_LT(w_best, w_none);
  EXPECT_LT(w_best, w_full);
}

}  // namespace
}  // namespace gcr

#include <gtest/gtest.h>

#include "activity/analyzer.h"
#include "activity/brute_force.h"
#include "activity/ift.h"
#include "activity/imatt.h"
#include "benchdata/paper_example.h"

namespace gcr::activity {
namespace {

ModuleSet modules(int n, std::initializer_list<int> ids) {
  ModuleSet s(n);
  for (const int m : ids) s.set(m);
  return s;
}

// ---------------------------------------------------------------- BitSet --

TEST(BitSet, SetTestReset) {
  BitSet s(130);
  s.set(0);
  s.set(64);
  s.set(129);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(129));
  EXPECT_FALSE(s.test(1));
  EXPECT_EQ(s.count(), 3);
  s.reset(64);
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 2);
}

TEST(BitSet, UnionAndIntersects) {
  BitSet a(70), b(70);
  a.set(3);
  a.set(65);
  b.set(65);
  b.set(10);
  EXPECT_TRUE(a.intersects(b));
  const BitSet u = a | b;
  EXPECT_EQ(u.count(), 3);
  b.reset(65);
  EXPECT_FALSE(a.intersects(b));
}

TEST(BitSet, ForEachVisitsAscending) {
  BitSet s(200);
  for (const int i : {5, 63, 64, 127, 128, 199}) s.set(i);
  std::vector<int> seen;
  s.for_each([&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{5, 63, 64, 127, 128, 199}));
}

// ------------------------------------------------------- paper example ----

class PaperExampleTest : public ::testing::Test {
 protected:
  benchdata::PaperExample ex = benchdata::paper_example();
};

TEST_F(PaperExampleTest, Table1RtlDescription) {
  EXPECT_EQ(ex.rtl.num_instructions(), 4);
  EXPECT_EQ(ex.rtl.num_modules(), 6);
  EXPECT_TRUE(ex.rtl.uses(0, 0));   // I1 uses M1
  EXPECT_TRUE(ex.rtl.uses(0, 4));   // I1 uses M5
  EXPECT_FALSE(ex.rtl.uses(0, 5));  // I1 does not use M6
  EXPECT_TRUE(ex.rtl.uses(2, 5));   // I3 uses M6
  EXPECT_EQ(ex.rtl.module_set(1).count(), 2);  // I2: M1 M4
}

TEST_F(PaperExampleTest, Table2InstructionFrequencies) {
  const Ift ift(ex.stream, 4);
  EXPECT_DOUBLE_EQ(ift.prob(0), 8.0 / 20.0);
  EXPECT_DOUBLE_EQ(ift.prob(1), 7.0 / 20.0);
  EXPECT_DOUBLE_EQ(ift.prob(2), 3.0 / 20.0);
  EXPECT_DOUBLE_EQ(ift.prob(3), 2.0 / 20.0);
}

TEST_F(PaperExampleTest, QuotedModule1Probability) {
  // Paper: M1 appears in I1 and I2, which execute 15 of 20 cycles -> 0.75.
  const BruteForceActivity bf(ex.rtl, ex.stream);
  EXPECT_DOUBLE_EQ(bf.module_prob(0), 0.75);
}

TEST_F(PaperExampleTest, QuotedEnableSignalProbability) {
  // Paper: P(EN{M5,M6}) = P(I1) + P(I3) = 11/20 = 0.55.
  const Ift ift(ex.stream, 4);
  const ModuleSet s = modules(6, {4, 5});
  EXPECT_DOUBLE_EQ(ift.signal_prob(ex.rtl, s), 0.55);
}

TEST_F(PaperExampleTest, QuotedEnableTransitionProbability) {
  // The reconstructed stream toggles EN{M5,M6} 11 times over 19 pairs.
  const Imatt imatt(ex.stream, 4);
  const ModuleSet s = modules(6, {4, 5});
  EXPECT_NEAR(imatt.transition_prob(ex.rtl, s), 11.0 / 19.0, 1e-12);
}

TEST_F(PaperExampleTest, TableDrivenMatchesBruteForceOnAllPairs) {
  const ActivityAnalyzer an(ex.rtl, ex.stream);
  const BruteForceActivity bf(ex.rtl, ex.stream);
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      const ModuleSet s = modules(6, {a, b});
      EXPECT_NEAR(an.signal_prob_of_modules(s), bf.signal_prob(s), 1e-12);
      EXPECT_NEAR(an.transition_prob_of_modules(s), bf.transition_prob(s),
                  1e-12);
    }
  }
}

TEST_F(PaperExampleTest, ImattRowsSumToOne) {
  const Imatt imatt(ex.stream, 4);
  double total = 0.0;
  for (const ImattRow& row : imatt.rows()) total += row.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(PaperExampleTest, ImattActivationTags) {
  const Imatt imatt(ex.stream, 4);
  // For the pair (I1, I2): M1 used by both -> tag 11b; M5 used only by I1
  // -> tag 10b; M4 used only by I2 -> tag 01b; M6 by neither -> 00b.
  const ImattRow row{0, 1, 0.0};
  EXPECT_EQ(Imatt::activation_tag(ex.rtl, row, 0), 0b11);
  EXPECT_EQ(Imatt::activation_tag(ex.rtl, row, 4), 0b10);
  EXPECT_EQ(Imatt::activation_tag(ex.rtl, row, 3), 0b01);
  EXPECT_EQ(Imatt::activation_tag(ex.rtl, row, 5), 0b00);
}

// ------------------------------------------------------------ Ift/Imatt ---

TEST(Ift, ProbabilitiesSumToOne) {
  InstructionStream s{{0, 1, 2, 1, 0, 0, 3}};
  const Ift ift(s, 4);
  double total = 0.0;
  for (const double p : ift.probs()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(ift.prob(0), 3.0 / 7.0);
}

TEST(Ift, EmptyStreamGivesZeros) {
  InstructionStream s;
  const Ift ift(s, 3);
  EXPECT_DOUBLE_EQ(ift.prob(0), 0.0);
  EXPECT_DOUBLE_EQ(ift.prob(2), 0.0);
}

TEST(Imatt, PairProbCounts) {
  InstructionStream s{{0, 1, 0, 1, 1}};
  const Imatt imatt(s, 2);
  // Pairs: (0,1) (1,0) (0,1) (1,1) over 4 pairs.
  EXPECT_DOUBLE_EQ(imatt.pair_prob(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(imatt.pair_prob(1, 0), 0.25);
  EXPECT_DOUBLE_EQ(imatt.pair_prob(1, 1), 0.25);
  EXPECT_DOUBLE_EQ(imatt.pair_prob(0, 0), 0.0);
}

TEST(Imatt, SingleInstructionStreamHasNoRows) {
  InstructionStream s{{2}};
  const Imatt imatt(s, 3);
  EXPECT_TRUE(imatt.rows().empty());
}

TEST(Analyzer, EmptyMaskHasZeroProbabilities) {
  const auto ex = benchdata::paper_example();
  const ActivityAnalyzer an(ex.rtl, ex.stream);
  const ActivationMask empty(4);
  EXPECT_DOUBLE_EQ(an.signal_prob(empty), 0.0);
  EXPECT_DOUBLE_EQ(an.transition_prob(empty), 0.0);
}

TEST(Analyzer, FullMaskIsAlwaysOn) {
  const auto ex = benchdata::paper_example();
  const ActivityAnalyzer an(ex.rtl, ex.stream);
  ActivationMask all(4);
  for (int i = 0; i < 4; ++i) all.set(i);
  EXPECT_NEAR(an.signal_prob(all), 1.0, 1e-12);
  EXPECT_NEAR(an.transition_prob(all), 0.0, 1e-12);
}

TEST(Analyzer, SignalProbMonotoneUnderUnion) {
  const auto ex = benchdata::paper_example();
  const ActivityAnalyzer an(ex.rtl, ex.stream);
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      const double pa = an.signal_prob(an.module_mask(a));
      const double pu =
          an.signal_prob(an.module_mask(a) | an.module_mask(b));
      EXPECT_GE(pu + 1e-12, pa);
    }
  }
}

TEST(Rtl, MeanUsageFraction) {
  const auto ex = benchdata::paper_example();
  // (4 + 2 + 3 + 2) / (4 * 6) = 11/24.
  EXPECT_NEAR(ex.rtl.mean_usage_fraction(), 11.0 / 24.0, 1e-12);
}

TEST(Ift, AverageActivityWeightsByFrequency) {
  const auto ex = benchdata::paper_example();
  const Ift ift(ex.stream, 4);
  // sum P(I)|M(I)|/N = (.4*4 + .35*2 + .15*3 + .1*2)/6.
  EXPECT_NEAR(ift.average_activity(ex.rtl),
              (0.4 * 4 + 0.35 * 2 + 0.15 * 3 + 0.1 * 2) / 6.0, 1e-12);
}

}  // namespace
}  // namespace gcr::activity

#include <gtest/gtest.h>

#include <sstream>

#include "eval/table.h"
#include "tech/params.h"

namespace gcr {
namespace {

TEST(Table, AlignedPrinting) {
  eval::Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2.5"});
  std::stringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(Table, CsvPrinting) {
  eval::Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::stringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(eval::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(eval::Table::num(10.0, 0), "10");
}

TEST(Tech, BufferIsHalfSizeGate) {
  const tech::TechParams t;
  EXPECT_DOUBLE_EQ(t.buffer_input_cap(), 0.5 * t.gate_input_cap);
  EXPECT_DOUBLE_EQ(t.buffer_output_res(), 2.0 * t.gate_output_res);
  EXPECT_DOUBLE_EQ(t.buffer_area(), 0.5 * t.gate_area);
}

TEST(Tech, WireHelpers) {
  tech::TechParams t;
  t.unit_res = 0.1;
  t.unit_cap = 0.2;
  t.wire_width = 2.0;
  EXPECT_DOUBLE_EQ(t.wire_res(10.0), 1.0);
  EXPECT_DOUBLE_EQ(t.wire_cap(10.0), 2.0);
  EXPECT_DOUBLE_EQ(t.wire_area(10.0), 20.0);
}

}  // namespace
}  // namespace gcr

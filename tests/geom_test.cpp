#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/die.h"
#include "geom/point.h"
#include "geom/rotated.h"
#include "geom/tilted_rect.h"

namespace gcr::geom {
namespace {

TEST(Point, ManhattanDistanceBasics) {
  EXPECT_DOUBLE_EQ(manhattan_dist({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan_dist({-1, -2}, {1, 2}), 6.0);
  EXPECT_DOUBLE_EQ(manhattan_dist({5, 5}, {5, 5}), 0.0);
}

TEST(Point, ManhattanDominatesEuclidean) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(-100.0, 100.0);
  for (int i = 0; i < 200; ++i) {
    const Point a{u(rng), u(rng)}, b{u(rng), u(rng)};
    EXPECT_GE(manhattan_dist(a, b) + 1e-12, euclidean_dist(a, b));
    EXPECT_LE(manhattan_dist(a, b),
              std::sqrt(2.0) * euclidean_dist(a, b) + 1e-9);
  }
}

TEST(Rotated, RoundTrip) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> u(-1e4, 1e4);
  for (int i = 0; i < 200; ++i) {
    const Point p{u(rng), u(rng)};
    const Point q = to_cartesian(to_rotated(p));
    EXPECT_NEAR(p.x, q.x, 1e-9);
    EXPECT_NEAR(p.y, q.y, 1e-9);
  }
}

TEST(Rotated, ChebyshevEqualsManhattan) {
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> u(-1e4, 1e4);
  for (int i = 0; i < 200; ++i) {
    const Point a{u(rng), u(rng)}, b{u(rng), u(rng)};
    EXPECT_NEAR(chebyshev_dist(to_rotated(a), to_rotated(b)),
                manhattan_dist(a, b), 1e-9);
  }
}

TEST(TiltedRect, PointRegion) {
  const Point p{3.0, 4.0};
  const TiltedRect r = TiltedRect::from_point(p);
  EXPECT_TRUE(r.is_point());
  EXPECT_TRUE(r.is_arc());
  EXPECT_TRUE(r.contains(p));
  EXPECT_EQ(r.center(), p);
  EXPECT_DOUBLE_EQ(r.distance_to(Point{0.0, 0.0}), 7.0);
}

TEST(TiltedRect, ManhattanArcEndpoints) {
  // Slope -1 segment from (0,4) to (4,0): u = x+y = 4 constant.
  const TiltedRect r = TiltedRect::arc({0, 4}, {4, 0});
  EXPECT_TRUE(r.is_arc());
  EXPECT_FALSE(r.is_point());
  EXPECT_TRUE(r.contains({2, 2}));
  EXPECT_FALSE(r.contains({0, 0}));
  EXPECT_DOUBLE_EQ(r.ulo(), 4.0);
  EXPECT_DOUBLE_EQ(r.uhi(), 4.0);
}

TEST(TiltedRect, InflationGrowsDistanceShrinks) {
  const TiltedRect a = TiltedRect::from_point({0, 0});
  const TiltedRect b = TiltedRect::from_point({10, 0});
  EXPECT_DOUBLE_EQ(a.distance_to(b), 10.0);
  EXPECT_DOUBLE_EQ(a.inflated(3).distance_to(b), 7.0);
  EXPECT_DOUBLE_EQ(a.inflated(3).distance_to(b.inflated(7)), 0.0);
}

TEST(TiltedRect, InflatedContainsExactlyTheBall) {
  // Sample points and compare membership in TRR(core, r) against the
  // Manhattan-distance definition.
  const TiltedRect core = TiltedRect::arc({2, 2}, {6, 6});  // slope +1 arc
  const TiltedRect trr = core.inflated(3.0);
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> u(-5.0, 15.0);
  for (int i = 0; i < 2000; ++i) {
    const Point p{u(rng), u(rng)};
    const bool in_ball = core.distance_to(p) <= 3.0 + 1e-9;
    EXPECT_EQ(trr.contains(p, 1e-9), in_ball)
        << "p=(" << p.x << "," << p.y << ") d=" << core.distance_to(p);
  }
}

TEST(TiltedRect, IntersectOfTouchingTrrsIsArc) {
  // Classic DME merge picture: two sink points at distance 10, radii 4 and
  // 6; the intersection must be a (possibly degenerate) Manhattan arc.
  const TiltedRect a = TiltedRect::from_point({0, 0}).inflated(4);
  const TiltedRect b = TiltedRect::from_point({10, 0}).inflated(6);
  const auto ms = a.intersect(b);
  ASSERT_TRUE(ms.has_value());
  EXPECT_TRUE(ms->is_arc(1e-9));
  // Every point of the merging segment is at distance exactly 4 from a's
  // core and 6 from b's core.
  EXPECT_NEAR(ms->distance_to(Point{0, 0}), 4.0, 1e-9);
  EXPECT_NEAR(ms->distance_to(Point{10, 0}), 6.0, 1e-9);
}

TEST(TiltedRect, DisjointIntersectIsEmpty) {
  const TiltedRect a = TiltedRect::from_point({0, 0}).inflated(2);
  const TiltedRect b = TiltedRect::from_point({10, 0}).inflated(2);
  EXPECT_FALSE(a.intersect(b).has_value());
}

TEST(TiltedRect, NearestPointIsContainedAndOptimal) {
  std::mt19937 rng(19);
  std::uniform_real_distribution<double> u(-50.0, 50.0);
  const TiltedRect r = TiltedRect::arc({0, 10}, {10, 0}).inflated(2.0);
  for (int i = 0; i < 500; ++i) {
    const Point p{u(rng), u(rng)};
    const Point q = r.nearest_point_to(p);
    EXPECT_TRUE(r.contains(q, 1e-6));
    EXPECT_NEAR(manhattan_dist(p, q), r.distance_to(p), 1e-9);
  }
}

TEST(TiltedRect, NearestRegionAchievesDistance) {
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> u(-100.0, 100.0);
  for (int i = 0; i < 300; ++i) {
    const TiltedRect a =
        TiltedRect::from_point({u(rng), u(rng)}).inflated(std::abs(u(rng)) / 10);
    const TiltedRect b =
        TiltedRect::from_point({u(rng), u(rng)}).inflated(std::abs(u(rng)) / 10);
    const TiltedRect near = a.nearest_region_to(b);
    // The nearest region is inside a and at distance dist(a, b) from b.
    EXPECT_LE(a.distance_to(near), 1e-9);
    EXPECT_NEAR(near.distance_to(b), a.distance_to(b), 1e-9);
  }
}

TEST(TiltedRect, DistanceSymmetricAndTriangleLike) {
  std::mt19937 rng(29);
  std::uniform_real_distribution<double> u(-100.0, 100.0);
  for (int i = 0; i < 300; ++i) {
    const TiltedRect a =
        TiltedRect::from_point({u(rng), u(rng)}).inflated(std::abs(u(rng)) / 20);
    const TiltedRect b =
        TiltedRect::from_point({u(rng), u(rng)}).inflated(std::abs(u(rng)) / 20);
    EXPECT_NEAR(a.distance_to(b), b.distance_to(a), 1e-9);
    EXPECT_GE(a.distance_to(b), 0.0);
  }
}

TEST(TiltedRect, FromRotatedNormalizes) {
  const TiltedRect r = TiltedRect::from_rotated(5, 1, 3, -3);
  EXPECT_DOUBLE_EQ(r.ulo(), 1);
  EXPECT_DOUBLE_EQ(r.uhi(), 5);
  EXPECT_DOUBLE_EQ(r.wlo(), -3);
  EXPECT_DOUBLE_EQ(r.whi(), 3);
}

TEST(DieArea, CenterAndContains) {
  const DieArea die = DieArea::square(100.0);
  EXPECT_EQ(die.center(), (Point{50.0, 50.0}));
  EXPECT_TRUE(die.contains({0, 0}));
  EXPECT_TRUE(die.contains({100, 100}));
  EXPECT_FALSE(die.contains({101, 50}));
  EXPECT_DOUBLE_EQ(die.width(), 100.0);
}

}  // namespace
}  // namespace gcr::geom

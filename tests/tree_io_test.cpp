#include <gtest/gtest.h>

#include <sstream>

#include "benchdata/rbench.h"
#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "cts/greedy.h"
#include "io/tree_io.h"

namespace gcr::io {
namespace {

ct::RoutedTree sample_tree(int n, std::uint64_t seed) {
  benchdata::RBenchSpec spec{"t", n, 5000.0, 0.005, 0.06, seed};
  const auto bench = benchdata::generate_rbench(spec);
  cts::BuildOptions opts;
  const auto built = cts::build_topology(bench.sinks, nullptr, {}, opts);
  std::vector<bool> gates(static_cast<std::size_t>(built.topo.num_nodes()),
                          true);
  gates[static_cast<std::size_t>(built.topo.root())] = false;
  return ct::embed(built.topo, bench.sinks, gates, opts.tech);
}

TEST(TreeIo, RoundTripPreservesEverything) {
  const ct::RoutedTree tree = sample_tree(20, 44);
  std::stringstream ss;
  write_routed_tree(ss, tree);
  const ct::RoutedTree back = read_routed_tree(ss);

  ASSERT_EQ(back.num_nodes(), tree.num_nodes());
  EXPECT_EQ(back.num_leaves, tree.num_leaves);
  EXPECT_EQ(back.root, tree.root);
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const ct::RoutedNode& a = tree.node(id);
    const ct::RoutedNode& b = back.node(id);
    EXPECT_DOUBLE_EQ(a.loc.x, b.loc.x);
    EXPECT_DOUBLE_EQ(a.loc.y, b.loc.y);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_DOUBLE_EQ(a.edge_len, b.edge_len);
    EXPECT_EQ(a.gated, b.gated);
    EXPECT_DOUBLE_EQ(a.down_cap, b.down_cap);
    EXPECT_DOUBLE_EQ(a.delay, b.delay);
  }
}

TEST(TreeIo, RoundTripRebuildChildLinks) {
  const ct::RoutedTree tree = sample_tree(12, 45);
  std::stringstream ss;
  write_routed_tree(ss, tree);
  const ct::RoutedTree back = read_routed_tree(ss);
  // Child sets must match (order of left/right may swap).
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const auto& a = tree.node(id);
    const auto& b = back.node(id);
    const auto set_a = std::minmax(a.left, a.right);
    const auto set_b = std::minmax(b.left, b.right);
    EXPECT_EQ(set_a, set_b) << "node " << id;
  }
  // A reloaded tree is still a measurable tree: the Elmore referee runs.
  const tech::TechParams tech;
  const ct::DelayReport ra = ct::elmore_delays(tree, tech);
  const ct::DelayReport rb = ct::elmore_delays(back, tech);
  EXPECT_NEAR(ra.max_delay, rb.max_delay, 1e-9);
  EXPECT_NEAR(ra.skew(), rb.skew(), 1e-9);
}

TEST(TreeIo, RejectsMalformedHeaders) {
  {
    std::stringstream ss("");
    EXPECT_THROW(read_routed_tree(ss), std::runtime_error);
  }
  {
    std::stringstream ss("wrong 3 2 2\n");
    EXPECT_THROW(read_routed_tree(ss), std::runtime_error);
  }
  {
    std::stringstream ss("tree 3 2 7\n");  // root out of range
    EXPECT_THROW(read_routed_tree(ss), std::runtime_error);
  }
  {
    std::stringstream ss("tree -1 2 0\n");
    EXPECT_THROW(read_routed_tree(ss), std::runtime_error);
  }
}

TEST(TreeIo, RejectsCorruptNodeLines) {
  {
    // Truncated node line.
    std::stringstream ss("tree 1 1 0\n0 1.0 2.0 -1\n");
    EXPECT_THROW(read_routed_tree(ss), std::runtime_error);
  }
  {
    // Node id out of range.
    std::stringstream ss("tree 1 1 0\n5 1 2 -1 0 0 0.1 0\n");
    EXPECT_THROW(read_routed_tree(ss), std::runtime_error);
  }
  {
    // Missing node.
    std::stringstream ss("tree 2 1 1\n0 1 2 1 10 0 0.1 0\n");
    EXPECT_THROW(read_routed_tree(ss), std::runtime_error);
  }
  {
    // Parent out of range.
    std::stringstream ss(
        "tree 2 1 1\n0 1 2 9 10 0 0.1 0\n1 0 0 -1 0 0 0.2 1\n");
    EXPECT_THROW(read_routed_tree(ss), std::runtime_error);
  }
}

TEST(TreeIo, SingleNodeTree) {
  std::stringstream ss("tree 1 1 0\n0 5.5 6.5 -1 0 0 0.05 0\n");
  const ct::RoutedTree t = read_routed_tree(ss);
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_TRUE(t.node(0).is_leaf());
  EXPECT_DOUBLE_EQ(t.node(0).loc.x, 5.5);
}

}  // namespace
}  // namespace gcr::io

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "eco/delta.h"
#include "eco/incremental.h"
#include "guard/deadline.h"
#include "guard/status.h"
#include "verify/differential.h"

/// \file eco_test.cpp
/// Unit coverage for gcr::eco: delta validation/application semantics,
/// survivor renumbering, and the incremental re-route contract on small
/// deterministic designs -- equivalence-or-bounded-delta against a
/// from-scratch route, out-of-cone preservation, cone provenance counts,
/// and guarded-flow behavior (bad deltas, expired deadlines). The broad
/// randomized sweep lives in verify::run_eco_differential
/// (gcr_check --eco-diff); this file pins the individual semantics.

namespace gcr {
namespace {

core::GatedClockRouter make_router(int n, std::uint64_t seed) {
  benchdata::RBenchSpec spec{"eco", n, 9000.0, 0.005, 0.08, seed};
  benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 16;
  wspec.target_activity = 0.35;
  wspec.stream_length = 2000;
  wspec.seed = seed;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);
  return core::GatedClockRouter(core::Design{
      rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream), {}});
}

bool has_error(const guard::Diag& diag, guard::Code code) {
  for (const guard::Status& s : diag.entries())
    if (s.code == code && s.severity != guard::Severity::Warning) return true;
  return false;
}

std::string diag_text(const guard::Diag& diag) {
  std::string out;
  for (const guard::Status& s : diag.entries()) out += s.to_string() + "\n";
  return out;
}

}  // namespace

TEST(EcoDelta, ValidateRejectsOutOfRangeAndDoublyTouchedSinks) {
  const core::GatedClockRouter router = make_router(8, 31);
  guard::Diag diag;
  eco::DesignDelta d;
  d.moves.push_back({8, {1.0, 1.0}});  // one past the end
  EXPECT_FALSE(eco::validate_delta(router.design(), d, diag));
  EXPECT_TRUE(has_error(diag, guard::Code::Range));

  guard::Diag diag2;
  eco::DesignDelta d2;
  d2.moves.push_back({3, {1.0, 1.0}});
  d2.removes.push_back(3);  // same sink moved and removed
  EXPECT_FALSE(eco::validate_delta(router.design(), d2, diag2));
  EXPECT_TRUE(has_error(diag2, guard::Code::Duplicate));
}

TEST(EcoDelta, ValidateRejectsBadPayloads) {
  const core::GatedClockRouter router = make_router(4, 32);
  const core::Design& base = router.design();

  guard::Diag nan_diag;
  eco::DesignDelta nan_move;
  nan_move.moves.push_back({0, {std::nan(""), 1.0}});
  EXPECT_FALSE(eco::validate_delta(base, nan_move, nan_diag));
  EXPECT_TRUE(has_error(nan_diag, guard::Code::NonFinite));

  guard::Diag cap_diag;
  eco::DesignDelta bad_add;
  bad_add.adds.push_back({{{10.0, 10.0}, -0.01}, 0});
  EXPECT_FALSE(eco::validate_delta(base, bad_add, cap_diag));
  EXPECT_TRUE(has_error(cap_diag, guard::Code::BadCap));

  guard::Diag mod_diag;
  eco::DesignDelta bad_module;
  bad_module.adds.push_back({{{10.0, 10.0}, 0.01}, base.rtl.num_modules()});
  EXPECT_FALSE(eco::validate_delta(base, bad_module, mod_diag));
  EXPECT_TRUE(has_error(mod_diag, guard::Code::ModuleMismatch));

  guard::Diag empty_diag;
  eco::DesignDelta wipe;
  for (int i = 0; i < base.num_sinks(); ++i) wipe.removes.push_back(i);
  EXPECT_FALSE(eco::validate_delta(base, wipe, empty_diag));
  EXPECT_TRUE(has_error(empty_diag, guard::Code::EmptyDesign));

  guard::Diag stream_diag;
  eco::DesignDelta bad_stream;
  bad_stream.stream.emplace();
  bad_stream.stream->seq.push_back(base.rtl.num_instructions());
  EXPECT_FALSE(eco::validate_delta(base, bad_stream, stream_diag));
  EXPECT_TRUE(has_error(stream_diag, guard::Code::StreamId));
}

TEST(EcoDelta, OutOfDieMoveIsAWarningNotAnError) {
  const core::GatedClockRouter router = make_router(4, 33);
  guard::Diag diag;
  eco::DesignDelta d;
  d.moves.push_back({0, {-1e6, -1e6}});
  EXPECT_TRUE(eco::validate_delta(router.design(), d, diag));
  EXPECT_FALSE(diag.has_errors());
  EXPECT_FALSE(diag.entries().empty());  // the OutOfDie warning
}

TEST(EcoDelta, SinkIndexMapCompactsSurvivors) {
  const core::GatedClockRouter router = make_router(5, 34);
  eco::DesignDelta d;
  d.removes = {1, 3};
  const std::vector<int> map = eco::sink_index_map(router.design(), d);
  ASSERT_EQ(map.size(), 5u);
  EXPECT_EQ(map[0], 0);
  EXPECT_EQ(map[1], -1);
  EXPECT_EQ(map[2], 1);
  EXPECT_EQ(map[3], -1);
  EXPECT_EQ(map[4], 2);
}

TEST(EcoDelta, ApplyMovesRemovesAddsAndMaterializesModules) {
  const core::GatedClockRouter router = make_router(5, 35);
  const core::Design& base = router.design();
  eco::DesignDelta d;
  d.moves.push_back({0, {123.0, 456.0}});
  d.removes = {2};
  d.adds.push_back({{{777.0, 888.0}, 0.033}, 1});
  const core::Design out = eco::apply_delta(base, d);

  ASSERT_EQ(out.num_sinks(), 5);
  EXPECT_EQ(out.sinks[0].loc.x, 123.0);
  EXPECT_EQ(out.sinks[0].loc.y, 456.0);
  EXPECT_EQ(out.sinks[0].cap, base.sinks[0].cap);  // moves keep the cap
  // Survivor order preserved: old 1, 3, 4 follow at 1, 2, 3.
  EXPECT_EQ(out.sinks[1].loc.x, base.sinks[1].loc.x);
  EXPECT_EQ(out.sinks[2].loc.x, base.sinks[3].loc.x);
  EXPECT_EQ(out.sinks[3].loc.x, base.sinks[4].loc.x);
  EXPECT_EQ(out.sinks[4].loc.x, 777.0);
  EXPECT_EQ(out.sinks[4].cap, 0.033);
  // The implicit identity sink->module map broke, so it was materialized:
  // survivors keep their base module, the add names its own.
  ASSERT_EQ(static_cast<int>(out.sink_module.size()), out.num_sinks());
  EXPECT_EQ(out.sink_module[0], 0);
  EXPECT_EQ(out.sink_module[1], 1);
  EXPECT_EQ(out.sink_module[2], 3);
  EXPECT_EQ(out.sink_module[3], 4);
  EXPECT_EQ(out.sink_module[4], 1);
}

TEST(EcoDelta, PureMoveKeepsTheImplicitModuleMap) {
  const core::GatedClockRouter router = make_router(4, 36);
  eco::DesignDelta d;
  d.moves.push_back({2, {50.0, 60.0}});
  const core::Design out = eco::apply_delta(router.design(), d);
  EXPECT_TRUE(out.sink_module.empty());
  EXPECT_EQ(out.num_sinks(), 4);
}

TEST(EcoDelta, StreamReplacementSwapsTheStream) {
  const core::GatedClockRouter router = make_router(4, 37);
  eco::DesignDelta d;
  d.stream.emplace();
  d.stream->seq = {0, 1, 0, 2};
  const core::Design out = eco::apply_delta(router.design(), d);
  EXPECT_EQ(out.stream.seq, d.stream->seq);
}

// ---------------------------------------------------------------------------
// route_incremental

TEST(EcoRoute, SingleMoveMatchesScratchWithinTheDocumentedBound) {
  const core::GatedClockRouter router = make_router(48, 41);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  opts.num_threads = 1;
  const core::RouterResult prev = router.route(opts);

  eco::DesignDelta d;
  const geom::Point c = router.design().die.center();
  d.moves.push_back({5, {c.x * 0.5, c.y * 1.5}});

  eco::EcoInfo info;
  const core::RouteOutcome out =
      eco::route_incremental(router, prev, d, opts, &info);
  ASSERT_TRUE(out.ok()) << diag_text(out.diag);
  const core::RouterResult& inc = *out.result;

  EXPECT_EQ(inc.tree.num_leaves, 48);
  EXPECT_LT(inc.delays.skew(), 1e-6 * std::max(1.0, inc.delays.max_delay));

  // Equivalence-or-bounded-delta against the from-scratch route of the
  // applied design (docs/incremental.md; the differential enforces the
  // same bound over random designs).
  const core::GatedClockRouter scratch_router(
      eco::apply_delta(router.design(), d));
  const core::RouterResult scratch = scratch_router.route(opts);
  if (!verify::trees_identical(inc.tree, scratch.tree)) {
    const double a = inc.swcap.total_swcap();
    const double b = scratch.swcap.total_swcap();
    EXPECT_LE(std::max(a, b), 3.0 * std::min(a, b));
  }

  // Cone provenance: one dirty leaf, every merge accounted for exactly
  // once, and the moved leaf sits inside the cone under a fresh identity.
  EXPECT_EQ(info.dirty_leaves, 1);
  EXPECT_EQ(info.preserved_merges + info.spine_merges,
            inc.tree.num_nodes() - inc.tree.num_leaves);
  EXPECT_GT(info.preserved_merges, 0);  // one move must not rebuild the tree
  ASSERT_EQ(static_cast<int>(info.old_of.size()), inc.tree.num_nodes());
  ASSERT_EQ(static_cast<int>(info.in_cone.size()), inc.tree.num_nodes());
  EXPECT_TRUE(info.in_cone[5]);
  EXPECT_EQ(info.old_of[5], 5);  // a moved leaf keeps its identity...
  // ...but is in the cone, so the preservation loop below skips it.

  // Out-of-cone preservation: bottom-up fields bit-identical to prev.
  for (int id = 0; id < inc.tree.num_nodes(); ++id) {
    if (info.in_cone[static_cast<std::size_t>(id)]) continue;
    const int old = info.old_of[static_cast<std::size_t>(id)];
    ASSERT_GE(old, 0);
    const auto& x = inc.tree.node(id);
    const auto& y = prev.tree.node(old);
    EXPECT_EQ(x.edge_len, y.edge_len) << "node " << id;
    EXPECT_EQ(x.gated, y.gated) << "node " << id;
    EXPECT_EQ(x.down_cap, y.down_cap) << "node " << id;
    EXPECT_EQ(x.delay, y.delay) << "node " << id;
  }
}

TEST(EcoRoute, PureStreamReplacementPreservesTreeStructure) {
  const core::GatedClockRouter router = make_router(32, 42);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  opts.num_threads = 1;
  const core::RouterResult prev = router.route(opts);

  eco::DesignDelta d;
  d.stream.emplace();
  const auto& seq = router.design().stream.seq;
  for (std::size_t i = 0; i < seq.size(); i += 3)
    d.stream->seq.push_back(seq[i]);
  ASSERT_FALSE(d.structural());

  eco::EcoInfo info;
  const core::RouteOutcome out =
      eco::route_incremental(router, prev, d, opts, &info);
  ASSERT_TRUE(out.ok()) << diag_text(out.diag);
  const core::RouterResult& inc = *out.result;

  // The sink set is untouched: same shape, same wire, zero dirty leaves;
  // only probabilities and gate decisions may differ.
  EXPECT_EQ(info.dirty_leaves, 0);
  ASSERT_EQ(inc.tree.num_nodes(), prev.tree.num_nodes());
  for (int id = 0; id < inc.tree.num_nodes(); ++id) {
    EXPECT_EQ(inc.tree.node(id).parent, prev.tree.node(id).parent);
    EXPECT_EQ(inc.tree.node(id).edge_len, prev.tree.node(id).edge_len);
  }
}

TEST(EcoRoute, RemovalAndAdditionChangeTheLeafCount) {
  const core::GatedClockRouter router = make_router(24, 43);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  opts.num_threads = 1;
  const core::RouterResult prev = router.route(opts);

  eco::DesignDelta d;
  d.removes = {3, 17};
  d.adds.push_back({{{1000.0, 2000.0}, 0.02}, 5});
  eco::EcoInfo info;
  const core::RouteOutcome out =
      eco::route_incremental(router, prev, d, opts, &info);
  ASSERT_TRUE(out.ok()) << diag_text(out.diag);
  EXPECT_EQ(out.result->tree.num_leaves, 23);
  EXPECT_EQ(info.dirty_leaves, 3);
  EXPECT_LT(out.result->delays.skew(),
            1e-6 * std::max(1.0, out.result->delays.max_delay));
}

TEST(EcoRoute, InvalidDeltaYieldsDiagnosticsNotAResult) {
  const core::GatedClockRouter router = make_router(8, 44);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const core::RouterResult prev = router.route(opts);

  eco::DesignDelta d;
  d.moves.push_back({99, {1.0, 1.0}});
  const core::RouteOutcome out = eco::route_incremental(router, prev, d, opts);
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(has_error(out.diag, guard::Code::Range));
  EXPECT_NE(out.exit_code(), 0);
}

TEST(EcoRoute, ExpiredDeadlineCancelsCleanly) {
  const core::GatedClockRouter router = make_router(32, 45);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const core::RouterResult prev = router.route(opts);

  eco::DesignDelta d;
  d.moves.push_back({0, {10.0, 10.0}});
  const core::RouteOutcome out = eco::route_incremental(
      router, prev, d, opts, nullptr, guard::Deadline::after_ms(0.0));
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.cancelled);
}

}  // namespace gcr

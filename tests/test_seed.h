#pragma once

#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

/// \file test_seed.h
/// Seed plumbing for the fuzz/property tests. Every randomized test
/// parameterizes over `fuzz_seeds({...defaults...})`; setting the
/// GCR_TEST_SEED environment variable replaces the default list with that
/// single seed, so a CI failure replays locally with
///
///   GCR_TEST_SEED=<seed> ctest -R <test> --output-on-failure
///
/// Tests embed the seed in the gtest parameter name (see seed_param_name),
/// so a failing test's name prints the seed to reproduce.

namespace gcr::test {

[[nodiscard]] inline std::vector<std::uint64_t> fuzz_seeds(
    std::initializer_list<std::uint64_t> defaults) {
  if (const char* env = std::getenv("GCR_TEST_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return defaults;
}

/// Name generator for INSTANTIATE_TEST_SUITE_P over raw seeds: the failing
/// test prints as Suite/Case/seed_<N>.
struct SeedParamName {
  template <class ParamInfo>
  std::string operator()(const ParamInfo& info) const {
    return "seed_" + std::to_string(static_cast<std::uint64_t>(info.param));
  }
};

}  // namespace gcr::test

#include <gtest/gtest.h>

#include <random>

#include "geom/tilted_rect.h"
#include "test_seed.h"

/// Randomized property suite for the TRR geometry underlying DME: every
/// query is checked against first-principles definitions (membership
/// sampling, distance definitions) on thousands of random region pairs.

namespace gcr::geom {
namespace {

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::mt19937_64 rng{GetParam()};

  TiltedRect random_region() {
    std::uniform_real_distribution<double> c(-200.0, 200.0);
    std::uniform_real_distribution<double> r(0.0, 60.0);
    const Point a{c(rng), c(rng)};
    // Mix of points, arcs and fat regions.
    switch (rng() % 3) {
      case 0: return TiltedRect::from_point(a);
      case 1: {
        const double d = r(rng);
        return TiltedRect::arc(a, {a.x + d, a.y + (rng() % 2 ? d : -d)});
      }
      default: return TiltedRect::from_point(a).inflated(r(rng));
    }
  }

  Point random_point() {
    std::uniform_real_distribution<double> c(-300.0, 300.0);
    return {c(rng), c(rng)};
  }
};

TEST_P(Fuzz, NearestPointAchievesDistance) {
  for (int i = 0; i < 500; ++i) {
    const TiltedRect r = random_region();
    const Point p = random_point();
    const Point q = r.nearest_point_to(p);
    EXPECT_TRUE(r.contains(q, 1e-6));
    EXPECT_NEAR(manhattan_dist(p, q), r.distance_to(p), 1e-9);
    // No sampled point of the region is closer.
    for (int s = 0; s < 20; ++s) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      const Point in = to_cartesian(
          {r.ulo() + u(rng) * (r.uhi() - r.ulo()),
           r.wlo() + u(rng) * (r.whi() - r.wlo())});
      EXPECT_GE(manhattan_dist(p, in) + 1e-9, r.distance_to(p));
    }
  }
}

TEST_P(Fuzz, DistanceIsRealizedBetweenRegions) {
  for (int i = 0; i < 500; ++i) {
    const TiltedRect a = random_region();
    const TiltedRect b = random_region();
    const double d = a.distance_to(b);
    EXPECT_NEAR(d, b.distance_to(a), 1e-9);
    // The nearest sub-region of a to b realizes the distance.
    const TiltedRect na = a.nearest_region_to(b);
    EXPECT_NEAR(na.distance_to(b), d, 1e-9);
    EXPECT_LE(a.distance_to(na), 1e-9);  // subset of a
    // Inflating a by d makes them touch.
    EXPECT_TRUE(a.inflated(d + 1e-9).intersect(b).has_value());
    if (d > 1e-6) {
      EXPECT_FALSE(a.inflated(0.5 * d).intersect(b, 1e-12).has_value());
    }
  }
}

TEST_P(Fuzz, IntersectionIsContainedInBoth) {
  for (int i = 0; i < 500; ++i) {
    const TiltedRect a = random_region().inflated(30.0);
    const TiltedRect b = random_region().inflated(30.0);
    const auto isect = a.intersect(b);
    if (!isect) continue;
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (int s = 0; s < 10; ++s) {
      const Point p = to_cartesian(
          {isect->ulo() + u(rng) * (isect->uhi() - isect->ulo()),
           isect->wlo() + u(rng) * (isect->whi() - isect->wlo())});
      EXPECT_TRUE(a.contains(p, 1e-6));
      EXPECT_TRUE(b.contains(p, 1e-6));
    }
  }
}

TEST_P(Fuzz, InflationIsMonotone) {
  for (int i = 0; i < 300; ++i) {
    const TiltedRect r = random_region();
    const Point p = random_point();
    const double d = r.distance_to(p);
    EXPECT_NEAR(r.inflated(10.0).distance_to(p), std::max(0.0, d - 10.0),
                1e-9);
    EXPECT_TRUE(r.inflated(5.0).contains(r.nearest_point_to(p), 1e-9));
  }
}

TEST_P(Fuzz, CenterIsContained) {
  for (int i = 0; i < 300; ++i) {
    const TiltedRect r = random_region();
    EXPECT_TRUE(r.contains(r.center(), 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::ValuesIn(test::fuzz_seeds({1u, 2u, 3u, 4u})),
                         test::SeedParamName{});

}  // namespace
}  // namespace gcr::geom

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/session.h"
#include "obs/timer.h"
#include "obs/trace.h"

/// Unit tests of the observability layer: JSON writer/validator, counter
/// aggregation across threads, timer nesting and aggregation, trace-export
/// well-formedness, and a run-report round-trip through the JSON checker.

namespace gcr {
namespace {

/// Restores the global metrics switch and registry contents around a test.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(true);
    obs::Registry::global().reset();
  }
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::Registry::global().reset();
  }
};

TEST(ObsJson, WriterEscapesAndValidates) {
  std::ostringstream os;
  {
    obs::json::Writer w(os);
    w.begin_object();
    w.field("plain", "value");
    w.field("quotes \"and\" \\slashes\\", "line\nbreak\ttab");
    w.field("control", std::string_view("\x01\x02", 2));
    w.field("num", 0.1);
    w.field("neg", -12345);
    w.field("flag", true);
    w.key("nothing").null();
    w.key("arr").begin_array().value(1).value(2.5).value("x").end_array();
    w.key("nested").begin_object().field("k", 1).end_object();
    w.end_object();
  }
  EXPECT_TRUE(obs::json::valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\\n"), std::string::npos);
  EXPECT_NE(os.str().find("\\u0001"), std::string::npos);
}

TEST(ObsJson, ValidatorRejectsMalformed) {
  EXPECT_TRUE(obs::json::valid("{}"));
  EXPECT_TRUE(obs::json::valid("[1, 2.5e-3, \"s\", null, true]"));
  EXPECT_FALSE(obs::json::valid(""));
  EXPECT_FALSE(obs::json::valid("{"));
  EXPECT_FALSE(obs::json::valid("{\"a\":}"));
  EXPECT_FALSE(obs::json::valid("[1,]"));
  EXPECT_FALSE(obs::json::valid("{\"a\":1} trailing"));
  EXPECT_FALSE(obs::json::valid("\"unterminated"));
  EXPECT_FALSE(obs::json::valid("{'a':1}"));
  EXPECT_FALSE(obs::json::valid("01"));
}

TEST(ObsJson, NumberHandlesNonFinite) {
  EXPECT_EQ(obs::json::number(0.0), "0");
  EXPECT_EQ(obs::json::number(1.0 / 0.0), "null");
  EXPECT_EQ(obs::json::number(0.0 / 0.0), "null");
}

TEST_F(ObsTest, CounterAggregatesAcrossThreads) {
  obs::Counter& c = obs::Registry::global().counter("test.counter");
  // The same name resolves to the same instrument.
  EXPECT_EQ(&c, &obs::Registry::global().counter("test.counter"));

  constexpr int kThreads = 4;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);

  obs::Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeAndHistogram) {
  obs::Registry::global().gauge("test.gauge").set(42.5);
  EXPECT_DOUBLE_EQ(obs::Registry::global().gauge("test.gauge").value(), 42.5);

  obs::Histogram& h = obs::Registry::global().histogram("test.hist");
  for (const double v : {0.5, 1.5, 2.0, 1024.0}) h.observe(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1028.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 1024.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 257.0);

  const auto empty = obs::Registry::global().histogram("test.empty").snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.min, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST_F(ObsTest, HistogramOverflowSlotIsExplicit) {
  obs::Histogram& h = obs::Registry::global().histogram("test.overflow");
  const double top = std::ldexp(1.0, obs::Histogram::kBuckets -
                                         obs::Histogram::kExpBias);  // 2^32
  h.observe(top - 1.0);  // just under the bound: last finite bucket
  h.observe(top);        // at the bound: overflow, not bucket kBuckets-1
  h.observe(std::ldexp(1.0, 40));
  h.observe(std::numeric_limits<double>::infinity());

  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.overflow, 3u);
  EXPECT_EQ(snap.buckets[obs::Histogram::kBuckets - 1], 1u)
      << "in-range observations must not leak into the overflow slot";

  // The overflow slot resets with everything else.
  h.reset();
  EXPECT_EQ(h.snapshot().overflow, 0u);
}

TEST_F(ObsTest, TimerNestingBuildsAggregatedTree) {
  obs::Session session;
  {
    obs::Bind bind(&session);
    for (int i = 0; i < 3; ++i) {
      obs::ScopedTimer outer("outer");
      {
        obs::ScopedTimer inner("inner");
      }
      {
        obs::ScopedTimer inner("inner");
      }
    }
    obs::ScopedTimer other("other");
  }

  const obs::PhaseStats& root = session.timers().root();
  ASSERT_EQ(root.children.size(), 2u);
  const obs::PhaseStats& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.calls, 3);
  EXPECT_GE(outer.total_ms, 0.0);
  ASSERT_EQ(outer.children.size(), 1u);  // both "inner" scopes aggregate
  EXPECT_EQ(outer.children[0]->name, "inner");
  EXPECT_EQ(outer.children[0]->calls, 6);
  EXPECT_LE(outer.children[0]->total_ms, outer.total_ms + 1e-6);
  EXPECT_EQ(root.children[1]->name, "other");
}

TEST_F(ObsTest, TimersAreNoOpsWithoutSession) {
  // No session bound: must not crash or record anywhere.
  obs::ScopedTimer t("unbound");
  EXPECT_EQ(obs::current(), nullptr);
  EXPECT_EQ(obs::active_trace(), nullptr);
}

TEST_F(ObsTest, BindRestoresPreviousSession) {
  obs::Session a;
  obs::Session b;
  obs::Bind bind_a(&a);
  EXPECT_EQ(obs::current(), &a);
  {
    obs::Bind bind_b(&b);
    EXPECT_EQ(obs::current(), &b);
  }
  EXPECT_EQ(obs::current(), &a);
}

TEST_F(ObsTest, TraceExportIsWellFormedChromeJson) {
  obs::Session session;
  obs::MemoryTraceSink sink;
  session.set_trace(&sink);
  {
    obs::Bind bind(&session);
    obs::ScopedTimer phase("weird \"name\"\n");  // exercises escaping
    obs::TraceEvent e;
    e.name = "merge";
    e.cat = "cts";
    e.ph = 'i';
    e.ts_us = session.now_us();
    e.args.push_back(obs::TraceArg::num("a", 1ll));
    e.args.push_back(obs::TraceArg::num("cost", 0.25));
    e.args.push_back(obs::TraceArg::str("note", "x\"y"));
    e.args.push_back(obs::TraceArg::boolean("ok", true));
    obs::active_trace()->event(std::move(e));
  }
  ASSERT_EQ(sink.size(), 2u);  // instant event + the phase slice

  std::ostringstream os;
  sink.write_chrome_json(os);
  const std::string doc = os.str();
  EXPECT_TRUE(obs::json::valid(doc)) << doc;
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"phase\""), std::string::npos);
  EXPECT_NE(doc.find("\"cost\":0.25"), std::string::npos);
}

// The bench-report writer moved to gcr::perf in v2; its round trip is
// covered by perf_test.cpp (BenchReportRoundTrip / ValidateAcceptsOwnOutput).

TEST_F(ObsTest, DisabledMetricsStayZeroThroughHelperPattern) {
  obs::set_metrics_enabled(false);
  // The canonical call-site guard: skipped entirely when disabled.
  if (obs::metrics_enabled()) {
    obs::Registry::global().counter("test.guarded").inc();
  }
  EXPECT_EQ(obs::Registry::global().counter("test.guarded").value(), 0u);
}

}  // namespace
}  // namespace gcr

#include <gtest/gtest.h>

#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "clocktree/topology.h"
#include "clocktree/zskew.h"

namespace gcr::ct {
namespace {

tech::TechParams test_tech() { return tech::TechParams{}; }

SubtreeTap point_tap(double x, double y, double cap) {
  return {geom::TiltedRect::from_point({x, y}), 0.0, cap};
}

// ------------------------------------------------------------- Topology ---

TEST(Topology, MergeBuildsFullBinaryTree) {
  Topology t(4);
  const int a = t.merge(0, 1);
  const int b = t.merge(2, 3);
  const int r = t.merge(a, b);
  EXPECT_EQ(t.num_nodes(), 7);
  EXPECT_EQ(t.root(), r);
  EXPECT_TRUE(t.valid());
  EXPECT_TRUE(t.is_leaf(3));
  EXPECT_FALSE(t.is_leaf(a));
  EXPECT_EQ(t.node(0).parent, a);
  EXPECT_EQ(t.node(a).parent, r);
}

TEST(Topology, UnbalancedChainIsValid) {
  Topology t(4);
  int acc = t.merge(0, 1);
  acc = t.merge(acc, 2);
  acc = t.merge(acc, 3);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.root(), acc);
}

TEST(Topology, IncompleteMergeIsInvalid) {
  Topology t(4);
  t.merge(0, 1);  // 2 and 3 left unmerged
  EXPECT_FALSE(t.valid());
}

TEST(Topology, PostorderVisitsChildrenFirst) {
  Topology t(3);
  const int a = t.merge(0, 1);
  const int r = t.merge(a, 2);
  const std::vector<int> order = t.postorder();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.back(), r);
  // Every node appears after its children.
  std::vector<int> pos(5);
  for (int i = 0; i < 5; ++i) pos[static_cast<std::size_t>(order[i])] = i;
  for (int id = 0; id < t.num_nodes(); ++id) {
    const TreeNode& n = t.node(id);
    if (n.left >= 0) {
      EXPECT_LT(pos[static_cast<std::size_t>(n.left)], pos[id]);
      EXPECT_LT(pos[static_cast<std::size_t>(n.right)], pos[id]);
    }
  }
}

TEST(Topology, SingleLeafIsItsOwnRoot) {
  Topology t(1);
  EXPECT_EQ(t.root(), 0);
  EXPECT_TRUE(t.valid());
}

// ----------------------------------------------------- zero-skew merge ----

TEST(ZeroSkew, SymmetricSinksMeetInTheMiddle) {
  const auto t = test_tech();
  const SubtreeTap a = point_tap(0, 0, 0.02);
  const SubtreeTap b = point_tap(1000, 0, 0.02);
  const MergeResult m = zero_skew_merge(a, false, b, false, t);
  EXPECT_NEAR(m.len_a, 500.0, 1e-6);
  EXPECT_NEAR(m.len_b, 500.0, 1e-6);
  EXPECT_NEAR(branch_delay(a, false, m.len_a, t),
              branch_delay(b, false, m.len_b, t), 1e-9);
}

TEST(ZeroSkew, HeavierSinkGetsShorterEdge) {
  const auto t = test_tech();
  const SubtreeTap light = point_tap(0, 0, 0.01);
  const SubtreeTap heavy = point_tap(1000, 0, 0.20);
  const MergeResult m = zero_skew_merge(light, false, heavy, false, t);
  EXPECT_GT(m.len_a, m.len_b);  // wire goes toward the light sink
  EXPECT_NEAR(m.len_a + m.len_b, 1000.0, 1e-6);
  EXPECT_NEAR(branch_delay(light, false, m.len_a, t),
              branch_delay(heavy, false, m.len_b, t), 1e-9);
}

TEST(ZeroSkew, BalancedDelaysAlwaysEqualAtMergePoint) {
  const auto t = test_tech();
  for (double cap_b : {0.005, 0.05, 0.5}) {
    for (double delay_b : {0.0, 50.0, 400.0}) {
      SubtreeTap a = point_tap(0, 0, 0.03);
      SubtreeTap b = point_tap(800, 300, cap_b);
      b.delay = delay_b;
      for (const bool ga : {false, true}) {
        for (const bool gb : {false, true}) {
          const MergeResult m = zero_skew_merge(a, ga, b, gb, t);
          EXPECT_NEAR(branch_delay(a, ga, m.len_a, t),
                      branch_delay(b, gb, m.len_b, t), 1e-6)
              << "cap_b=" << cap_b << " delay_b=" << delay_b << " ga=" << ga
              << " gb=" << gb;
          EXPECT_GE(m.len_a, 0.0);
          EXPECT_GE(m.len_b, 0.0);
        }
      }
    }
  }
}

TEST(ZeroSkew, SnakingWhenOneSideIsMuchSlower) {
  const auto t = test_tech();
  SubtreeTap slow = point_tap(0, 0, 0.05);
  slow.delay = 2000.0;  // far slower than wire can explain
  const SubtreeTap fast = point_tap(100, 0, 0.05);
  const MergeResult m = zero_skew_merge(slow, false, fast, false, t);
  EXPECT_DOUBLE_EQ(m.len_a, 0.0);        // merge point lands on the slow side
  EXPECT_GT(m.len_b, 100.0);             // elongated (snaked) wire
  EXPECT_NEAR(branch_delay(slow, false, 0.0, t),
              branch_delay(fast, false, m.len_b, t), 1e-6);
  // Merging segment collapses onto the slow subtree's segment.
  EXPECT_LE(slow.ms.distance_to(m.ms), 1e-9);
}

TEST(ZeroSkew, GateIsolatesDownstreamCap) {
  const auto t = test_tech();
  const SubtreeTap a = point_tap(0, 0, 5.0);  // huge downstream cap
  const SubtreeTap b = point_tap(1000, 0, 0.02);
  const MergeResult gated = zero_skew_merge(a, true, b, true, t);
  // Parent sees only the two gate input caps.
  EXPECT_NEAR(gated.cap, 2.0 * t.gate_input_cap, 1e-12);
  const MergeResult ungated = zero_skew_merge(a, false, b, false, t);
  EXPECT_GT(ungated.cap, 5.0);
}

TEST(ZeroSkew, MergeCapAccountsWireForUngated) {
  const auto t = test_tech();
  const SubtreeTap a = point_tap(0, 0, 0.04);
  const SubtreeTap b = point_tap(600, 0, 0.04);
  const MergeResult m = zero_skew_merge(a, false, b, false, t);
  EXPECT_NEAR(m.cap, 0.08 + t.wire_cap(600.0), 1e-9);
}

TEST(ZeroSkew, MergingSegmentIsArcBetweenTheTwoSides) {
  const auto t = test_tech();
  const SubtreeTap a = point_tap(0, 0, 0.02);
  const SubtreeTap b = point_tap(400, 300, 0.02);
  const MergeResult m = zero_skew_merge(a, false, b, false, t);
  EXPECT_TRUE(m.ms.is_arc(1e-6));
  EXPECT_NEAR(m.ms.distance_to(a.ms), m.len_a, 1e-6);
  EXPECT_NEAR(m.ms.distance_to(b.ms), m.len_b, 1e-6);
}

TEST(ZeroSkew, CoincidentPointsZeroLengthMerge) {
  const auto t = test_tech();
  const SubtreeTap a = point_tap(50, 50, 0.02);
  const SubtreeTap b = point_tap(50, 50, 0.02);
  const MergeResult m = zero_skew_merge(a, false, b, false, t);
  EXPECT_NEAR(m.len_a + m.len_b, 0.0, 1e-9);
}

// ----------------------------------------------------------- embedding ----

TEST(Embed, FourSinkTreeHasZeroSkew) {
  const auto t = test_tech();
  const SinkList sinks = {{{0, 0}, 0.02},
                          {{1000, 0}, 0.03},
                          {{0, 1000}, 0.04},
                          {{1000, 1000}, 0.02}};
  Topology topo(4);
  const int a = topo.merge(0, 1);
  const int b = topo.merge(2, 3);
  topo.merge(a, b);
  const std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()),
                                false);
  const RoutedTree tree = embed(topo, sinks, gates, t);
  const DelayReport rep = elmore_delays(tree, t);
  EXPECT_LT(rep.skew(), 1e-6);
  EXPECT_GT(rep.max_delay, 0.0);
  // Leaves must land exactly on the sinks.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tree.node(i).loc, sinks[static_cast<std::size_t>(i)].loc);
  }
}

TEST(Embed, GatedTreeAlsoZeroSkewAndFlagsGates) {
  const auto t = test_tech();
  const SinkList sinks = {{{0, 0}, 0.02},
                          {{900, 100}, 0.08},
                          {{200, 800}, 0.01},
                          {{700, 700}, 0.05}};
  Topology topo(4);
  const int a = topo.merge(0, 1);
  const int b = topo.merge(2, 3);
  topo.merge(a, b);
  std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()), true);
  gates[static_cast<std::size_t>(topo.root())] = false;
  const RoutedTree tree = embed(topo, sinks, gates, t);
  EXPECT_EQ(tree.num_gates(), 6);  // every edge of a 4-leaf tree
  const DelayReport rep = elmore_delays(tree, t);
  EXPECT_LT(rep.skew(), 1e-6);
}

TEST(Embed, EdgeLengthsCoverGeometricDistance) {
  const auto t = test_tech();
  const SinkList sinks = {{{0, 0}, 0.30},  // heavy: will force snaking
                          {{100, 0}, 0.01},
                          {{50, 900}, 0.02},
                          {{900, 400}, 0.02}};
  Topology topo(4);
  const int a = topo.merge(0, 1);
  const int b = topo.merge(2, 3);
  topo.merge(a, b);
  const std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()),
                                false);
  const RoutedTree tree = embed(topo, sinks, gates, t);
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const RoutedNode& n = tree.node(id);
    if (n.parent < 0) continue;
    EXPECT_LE(geom::manhattan_dist(n.loc, tree.node(n.parent).loc),
              n.edge_len + 1e-6);
  }
}

TEST(Embed, RootHintPullsRootLocation) {
  const auto t = test_tech();
  const SinkList sinks = {{{0, 0}, 0.02}, {{1000, 1000}, 0.02}};
  Topology topo(2);
  topo.merge(0, 1);
  const std::vector<bool> gates(3, false);
  // The merging segment is the slope -1 arc from (0,1000) to (1000,0);
  // hints off either end must pull the root to the matching endpoint.
  EmbedOptions near_a;
  near_a.root_hint = {0, 2000};
  EmbedOptions near_b;
  near_b.root_hint = {2000, 0};
  const RoutedTree ta = embed(topo, sinks, gates, t, near_a);
  const RoutedTree tb = embed(topo, sinks, gates, t, near_b);
  EXPECT_NEAR(geom::manhattan_dist(ta.node(ta.root).loc, {0, 1000}), 0, 1e-9);
  EXPECT_NEAR(geom::manhattan_dist(tb.node(tb.root).loc, {1000, 0}), 0, 1e-9);
}

// --------------------------------------------------------------- Elmore ---

TEST(Elmore, HandComputedTwoSinkDelay) {
  tech::TechParams t;
  t.unit_res = 1.0;
  t.unit_cap = 1.0;
  t.gate_delay = 0.0;
  const SinkList sinks = {{{0, 0}, 1.0}, {{10, 0}, 1.0}};
  Topology topo(2);
  topo.merge(0, 1);
  const std::vector<bool> gates(3, false);
  const RoutedTree tree = embed(topo, sinks, gates, t);
  // Symmetric: both edges are 5 long. Elmore from root:
  // r*5 * (c*5/2 + 1) = 5 * (2.5 + 1) = 17.5.
  const DelayReport rep = elmore_delays(tree, t);
  EXPECT_NEAR(rep.max_delay, 17.5, 1e-9);
  EXPECT_NEAR(rep.min_delay, 17.5, 1e-9);
}

TEST(Elmore, MatchesConstructionDelay) {
  const auto t = test_tech();
  const SinkList sinks = {{{0, 0}, 0.02},
                          {{1000, 0}, 0.03},
                          {{0, 1000}, 0.04},
                          {{1000, 1000}, 0.02},
                          {{500, 500}, 0.06}};
  Topology topo(5);
  int acc = topo.merge(0, 1);
  acc = topo.merge(acc, 2);
  acc = topo.merge(acc, 3);
  topo.merge(acc, 4);
  std::vector<bool> gates(static_cast<std::size_t>(topo.num_nodes()), true);
  gates[static_cast<std::size_t>(topo.root())] = false;
  const RoutedTree tree = embed(topo, sinks, gates, t);
  const DelayReport rep = elmore_delays(tree, t);
  // The independent Elmore evaluation reproduces the merge-phase delay.
  EXPECT_NEAR(rep.max_delay, tree.node(tree.root).delay, 1e-6);
  EXPECT_LT(rep.skew(), 1e-6);
}

}  // namespace
}  // namespace gcr::ct

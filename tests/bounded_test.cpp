#include <gtest/gtest.h>

#include <random>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "clocktree/bounded.h"
#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "core/router.h"
#include "cts/greedy.h"

/// Bounded-skew extension: the sink-delay spread of every routed tree must
/// respect the budget (certified by the independent Elmore referee), a zero
/// budget must reproduce the exact zero-skew flow, and a growing budget
/// must never cost more wire.

namespace gcr::ct {
namespace {

SinkList random_sinks(int n, std::uint64_t seed, double die) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, die);
  std::uniform_real_distribution<double> cap(0.005, 0.1);
  SinkList sinks;
  for (int i = 0; i < n; ++i) sinks.push_back({{coord(rng), coord(rng)}, cap(rng)});
  return sinks;
}

struct TreeUnderTest {
  Topology topo{1};
  SinkList sinks;
  std::vector<bool> gates;

  static TreeUnderTest make(int n, std::uint64_t seed, bool gated) {
    TreeUnderTest t;
    t.sinks = random_sinks(n, seed, 8000.0);
    cts::BuildOptions opts;
    auto built = cts::build_topology(t.sinks, nullptr, {}, opts);
    t.topo = std::move(built.topo);
    t.gates.assign(static_cast<std::size_t>(t.topo.num_nodes()), gated);
    t.gates[static_cast<std::size_t>(t.topo.root())] = false;
    if (gated) {
      // Asymmetric gating (every third edge) to force imbalance.
      for (int id = 0; id < t.topo.num_nodes(); id += 3)
        t.gates[static_cast<std::size_t>(id)] = false;
    }
    return t;
  }
};

class BoundedSkew
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, bool>> {};

TEST_P(BoundedSkew, SkewWithinBudgetAndWireMonotone) {
  const auto [n, seed, gated] = GetParam();
  const tech::TechParams tech;
  const TreeUnderTest t = TreeUnderTest::make(n, seed, gated);

  double prev_wire = std::numeric_limits<double>::infinity();
  for (const double bound : {0.0, 5.0, 20.0, 100.0, 1000.0}) {
    BoundedEmbedOptions opts;
    opts.skew_bound = bound;
    const RoutedTree tree =
        embed_bounded(t.topo, t.sinks, t.gates, tech, opts);
    const DelayReport rep = elmore_delays(tree, tech);
    EXPECT_LE(rep.skew(), bound + 1e-5 * std::max(1.0, rep.max_delay))
        << "bound " << bound;
    // The interval bookkeeping must cover the referee's delays.
    EXPECT_LE(rep.max_delay, tree.node(tree.root).delay +
                                 1e-6 * std::max(1.0, rep.max_delay));
    // A larger budget can only remove detour wire (relative tolerance for
    // floating-point noise in the split search).
    EXPECT_LE(tree.total_wirelength(),
              prev_wire + 1e-6 * std::max(1.0, prev_wire))
        << "bound " << bound;
    prev_wire = tree.total_wirelength();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundedSkew,
    ::testing::Values(std::tuple{8, 1ull, false}, std::tuple{8, 2ull, true},
                      std::tuple{33, 3ull, false}, std::tuple{33, 4ull, true},
                      std::tuple{80, 5ull, true},
                      std::tuple{80, 6ull, false}));

TEST(BoundedSkewZero, MatchesZeroSkewEngine) {
  const tech::TechParams tech;
  const TreeUnderTest t = TreeUnderTest::make(24, 9, true);
  BoundedEmbedOptions b0;
  b0.skew_bound = 0.0;
  const RoutedTree bounded = embed_bounded(t.topo, t.sinks, t.gates, tech, b0);
  const RoutedTree exact = embed(t.topo, t.sinks, t.gates, tech, {});
  EXPECT_NEAR(bounded.total_wirelength(), exact.total_wirelength(),
              1e-3 * std::max(1.0, exact.total_wirelength()));
  const DelayReport rep = elmore_delays(bounded, tech);
  EXPECT_LT(rep.skew(), 1e-6 * std::max(1.0, rep.max_delay));
}

TEST(BoundedSkewMerge, BudgetAbsorbsSmallImbalance) {
  const tech::TechParams tech;
  // One subtree is much slower: exact zero skew must snake the other side.
  SkewTap slow{geom::TiltedRect::from_point({0, 0}), 500.0, 500.0, 0.05};
  SkewTap fast{geom::TiltedRect::from_point({200, 0}), 0.0, 0.0, 0.05};
  const MergeResult zs = zero_skew_merge({slow.ms, 500.0, slow.cap}, false,
                                         {fast.ms, 0.0, fast.cap}, false,
                                         tech);
  const double zs_wire = zs.len_a + zs.len_b;
  ASSERT_GT(zs_wire, 200.0 + 1e-9);  // the exact engine snakes

  // A budget covering the gap removes the detour entirely...
  const BoundedMergeResult relaxed =
      bounded_skew_merge(slow, false, fast, false, tech, 1e4);
  EXPECT_NEAR(relaxed.len_a + relaxed.len_b, 200.0, 1e-6);
  EXPECT_LE(relaxed.dmax - relaxed.dmin, 1e4);

  // ...while a tight budget falls back to (mid-aligned) snaking.
  const BoundedMergeResult tight =
      bounded_skew_merge(slow, false, fast, false, tech, 1.0);
  EXPECT_NEAR(tight.len_a + tight.len_b, zs_wire,
              1e-6 * std::max(1.0, zs_wire));
}

TEST(BoundedSkewMerge, IntervalWidthNeverShrinks) {
  const tech::TechParams tech;
  SkewTap a{geom::TiltedRect::from_point({0, 0}), 10.0, 40.0, 0.1};
  SkewTap b{geom::TiltedRect::from_point({500, 0}), 5.0, 20.0, 0.1};
  for (const double bound : {30.0, 100.0, 1e5}) {
    const BoundedMergeResult m =
        bounded_skew_merge(a, false, b, false, tech, bound);
    EXPECT_GE(m.dmax - m.dmin, 30.0 - 1e-9);  // >= max child width
    EXPECT_LE(m.dmax - m.dmin, bound + 1e-9);
  }
}

TEST(BoundedSkewRouter, EndToEndRespectsBudget) {
  benchdata::RBenchSpec spec{"bs", 40, 9000.0, 0.005, 0.08, 55};
  benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 16;
  wspec.target_activity = 0.35;
  wspec.stream_length = 3000;
  wspec.seed = 55;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);
  core::Design d{rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream),
                 {}};
  const core::GatedClockRouter router(std::move(d));

  core::RouterOptions exact;
  exact.style = core::TreeStyle::GatedReduced;
  core::RouterOptions budget = exact;
  budget.skew_bound = 50.0;

  const auto re = router.route(exact);
  const auto rb50 = router.route(budget);
  EXPECT_LE(rb50.delays.skew(), 50.0 + 1e-6);
  EXPECT_LE(rb50.tree.total_wirelength(),
            re.tree.total_wirelength() + 1e-6);
}

}  // namespace
}  // namespace gcr::ct

/// \file large_design.cpp
/// Scale demonstration beyond the paper's r5 (3101 sinks): synthetic
/// designs up to 12k sinks routed end-to-end with the clustered
/// constructor. Shows the full gated flow (activity analysis, clustered
/// Eq. 3 topology, auto-tuned reduction, zero-skew embedding, exact
/// evaluation) stays interactive at sizes where the flat O(N^2) greedy
/// would dominate runtime, and that the paper's qualitative result
/// (gated+reduced < buffered) persists at scale.

#include <chrono>
#include <iostream>
#include <memory>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "common.h"
#include "core/router.h"
#include "eval/table.h"

using namespace gcr;

namespace {

core::Design make_design(int n, double die_side) {
  benchdata::RBenchSpec spec{"big", n, die_side, 0.005, 0.10,
                             0xabcdef12345ull + static_cast<unsigned>(n)};
  benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec w;
  w.num_instructions = 32;
  w.num_clusters = std::max(16, n / 32);
  w.target_activity = 0.4;
  w.locality = 0.85;
  w.stream_length = 20000;
  benchdata::Workload wl = benchdata::generate_workload(w, rb.sinks, rb.die);
  return core::Design{rb.die, rb.sinks, std::move(wl.rtl),
                      std::move(wl.stream), {}};
}

void print_report() {
  std::cout << "=== Large designs: clustered gated flow beyond r5 ===\n";
  eval::Table t({"sinks", "style", "W total pF", "vs buffered", "gates",
                 "skew", "flow seconds"});
  for (const auto& [n, die] : {std::pair{6000, 90000.0}, {12000, 128000.0}}) {
    const core::GatedClockRouter router(make_design(n, die));
    double buffered_w = 0.0;
    for (const auto& [style, label] :
         {std::pair{core::TreeStyle::Buffered, "buffered"},
          std::pair{core::TreeStyle::GatedReduced, "gated+red"}}) {
      core::RouterOptions opts;
      opts.style = style;
      opts.clustered = true;
      opts.auto_tune_reduction = style == core::TreeStyle::GatedReduced;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = router.route(opts);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (style == core::TreeStyle::Buffered) buffered_w = r.swcap.total_swcap();
      t.add_row({std::to_string(n), label,
                 eval::Table::num(r.swcap.total_swcap(), 1),
                 eval::Table::num(r.swcap.total_swcap() / buffered_w, 3),
                 std::to_string(r.swcap.num_cells),
                 eval::Table::num(r.delays.skew(), 6),
                 eval::Table::num(secs, 2)});
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

const perf::Registrar reg_large{"large_design/route_clustered/n=6000", [] {
  // Construct the router in place from a Design: moving a finished router
  // would leave its internal analyzer pointing at the moved-from design.
  auto router = std::make_shared<const core::GatedClockRouter>(
      make_design(6000, 90000.0));
  return [router] {
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    opts.clustered = true;
    auto r = router->route(opts);
    perf::do_not_optimize(r.swcap.total_swcap());
  };
}};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_report);
}

/// \file ablation_cost.cpp
/// Ablation of the paper's key design choice (section 4.2): the topology
/// generation scheme. Four arms, all with identical gating, reduction and
/// embedding treatment, so the deltas isolate the merge-order contribution:
///   * mmm          -- top-down means-and-medians [Jackson et al.'90]
///   * nearest-nbr  -- bottom-up greedy by distance [Edahiro'91]
///   * activity     -- bottom-up greedy by joint enable probability only
///                     (the prior-work style of [Tellez et al.'95])
///   * min-swcap    -- the paper's Eq. 3 (geometry x activity combined)

#include <iostream>
#include <memory>

#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "common.h"
#include "cts/greedy.h"
#include "cts/mmm.h"
#include "eval/table.h"

using namespace gcr;

namespace {

struct AblationRow {
  double w_total;
  double w_clock;
  double w_ctrl;
  double wirelength;
};

AblationRow evaluate_topology(const bench::Instance& inst,
                              const activity::ActivityAnalyzer& an,
                              const ct::Topology& topo) {
  const auto mods = cts::identity_modules(inst.design.num_sinks());
  const tech::TechParams tech;

  std::vector<bool> gated(static_cast<std::size_t>(topo.num_nodes()), true);
  gated[static_cast<std::size_t>(topo.root())] = false;
  ct::EmbedOptions eopts;
  eopts.root_hint = inst.rb.die.center();
  const auto full = ct::embed(topo, inst.design.sinks, gated, tech, eopts);
  const auto full_act = gating::compute_node_activity(full, an, mods);
  gated = gating::reduce_gates(full, full_act.p_en, tech, {});
  const auto tree = ct::embed(topo, inst.design.sinks, gated, tech, eopts);

  const auto act = gating::compute_node_activity(tree, an, mods);
  const gating::ControllerPlacement ctrl(inst.rb.die, 1);
  const auto rep = gating::evaluate_swcap(tree, act, ctrl, tech,
                                          gating::CellStyle::MaskingGate);
  return {rep.total_swcap(), rep.clock_swcap, rep.ctrl_swcap,
          tree.total_wirelength()};
}

AblationRow run_with_cost(const bench::Instance& inst,
                          cts::MergeCost cost) {
  const activity::ActivityAnalyzer an(inst.design.rtl, inst.design.stream);
  const auto mods = cts::identity_modules(inst.design.num_sinks());
  cts::BuildOptions bopts;
  bopts.cost = cost;
  bopts.control_point = inst.rb.die.center();
  const auto built = cts::build_topology(inst.design.sinks, &an, mods, bopts);
  return evaluate_topology(inst, an, built.topo);
}

AblationRow run_with_mmm(const bench::Instance& inst) {
  const activity::ActivityAnalyzer an(inst.design.rtl, inst.design.stream);
  const ct::Topology topo = cts::build_mmm_topology(inst.design.sinks);
  return evaluate_topology(inst, an, topo);
}

void print_ablation() {
  std::cout << "=== Ablation: topology generation schemes under identical "
               "gating (reduction + embedding) ===\n";
  eval::Table t({"Bench", "order", "W total", "W(T)", "W(S)", "wirelen 1e3",
                 "W vs NN"});
  for (const auto& name : {"r1", "r2", "r3"}) {
    const bench::Instance inst = bench::make_instance(name);
    const AblationRow mmm = run_with_mmm(inst);
    const AblationRow nn =
        run_with_cost(inst, cts::MergeCost::NearestNeighbor);
    const AblationRow ao = run_with_cost(inst, cts::MergeCost::ActivityOnly);
    const AblationRow sc =
        run_with_cost(inst, cts::MergeCost::SwitchedCapacitance);
    const auto row = [&](const char* label, const AblationRow& r) {
      t.add_row({name, label, eval::Table::num(r.w_total, 1),
                 eval::Table::num(r.w_clock, 1), eval::Table::num(r.w_ctrl, 1),
                 eval::Table::num(r.wirelength / 1e3, 0),
                 eval::Table::num(r.w_total / nn.w_total, 3)});
    };
    row("mmm", mmm);
    row("nearest-nbr", nn);
    row("activity", ao);
    row("min-swcap", sc);
  }
  t.print(std::cout);
  std::cout << '\n';
}

perf::BenchFactory build_order_cost(bool swcap_cost) {
  return [swcap_cost] {
    auto inst = std::make_shared<bench::Instance>(bench::make_instance("r1"));
    auto an = std::make_shared<activity::ActivityAnalyzer>(
        inst->design.rtl, inst->design.stream);
    auto mods = std::make_shared<std::vector<int>>(
        cts::identity_modules(inst->design.num_sinks()));
    cts::BuildOptions opts;
    opts.cost = swcap_cost ? cts::MergeCost::SwitchedCapacitance
                           : cts::MergeCost::NearestNeighbor;
    opts.control_point = inst->rb.die.center();
    return [inst, an, mods, opts] {
      auto r = cts::build_topology(inst->design.sinks, an.get(), *mods, opts);
      perf::do_not_optimize(r.topo.root());
    };
  };
}

const perf::Registrar reg_nn{"ablation_cost/build/nn", build_order_cost(false)};
const perf::Registrar reg_sw{"ablation_cost/build/swcap",
                             build_order_cost(true)};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_ablation);
}

#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/timer.h"
#include "perf/memhook.h"
#include "perf/report.h"
#include "perf/runner.h"
#include "verify/invariants.h"

/// \file common.h
/// Shared setup for the paper-reproduction benches: build a Design for an
/// r-benchmark with the evaluation workload of section 5 (20k-cycle stream,
/// ~40% average module activity unless overridden), plus `bench_main` --
/// the common entry point that prints the paper tables and then runs the
/// binary's registered timed benchmarks (perf::Registrar) through the
/// statistical runner.

namespace gcr::bench {

struct Instance {
  benchdata::RBench rb;
  core::Design design;
};

inline benchdata::WorkloadSpec eval_workload_spec(int num_sinks,
                                                  double activity = 0.4) {
  benchdata::WorkloadSpec w;
  w.num_instructions = 32;
  // Functional blocks have bounded size in a real floorplan: scale the
  // cluster count with the design so co-active modules stay spatially
  // local on the larger benchmarks too.
  w.num_clusters = std::max(16, num_sinks / 32);
  w.target_activity = activity;
  w.in_cluster_use = 0.9;
  // Real program traces are phase-local: consecutive cycles usually run
  // related instructions, so enables toggle far less often than a Bernoulli
  // stream would suggest.
  w.locality = 0.85;
  w.stream_length = 20000;
  w.seed = 2026;
  return w;
}

inline Instance make_instance(const std::string& name, double activity = 0.4) {
  benchdata::RBench rb = benchdata::generate_rbench(name);
  benchdata::Workload wl = benchdata::generate_workload(
      eval_workload_spec(rb.spec.num_sinks, activity), rb.sinks, rb.die);
  core::Design d{rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream), {}};
  return {std::move(rb), std::move(d)};
}

/// When GCR_BENCH_SELFCHECK is set (any non-empty value), every bench route
/// runs under the verify invariant checker; a violation throws and fails
/// the bench. Off by default -- the checker costs an extra O(N) re-derive
/// per route, which would perturb the timing columns.
inline bool selfcheck_enabled() {
  const char* v = std::getenv("GCR_BENCH_SELFCHECK");
  return v && *v;
}

inline core::RouterResult run_style(const core::GatedClockRouter& router,
                                    core::TreeStyle style, int partitions = 1,
                                    bool auto_tune = false) {
  core::RouterOptions opts;
  opts.style = style;
  opts.controller_partitions = partitions;
  opts.auto_tune_reduction = auto_tune;
  if (selfcheck_enabled()) {
    return router.route(opts, verify::make_self_check(router));
  }
  return router.route(opts);
}

/// Common main for the bench binaries. Flow:
///   1. when GCR_BENCH_NAME is set (scripts/reproduce_all.sh exports it per
///      binary), bind an observability session for the whole run;
///   2. print the paper tables (`print_tables`, skipped by --no-tables);
///   3. run the binary's perf::Registrar benchmarks through the statistical
///      runner (GCR_BENCH_QUICK=1 or --quick selects the quick tier);
///   4. finalize: write `${GCR_BENCH_JSON_DIR:-.}/BENCH_<name>.json` -- a
///      v2 bench report -- creating the directory if missing.
///
/// The sidecar is written here, explicitly, before returning: the previous
/// design wrote it from a global's destructor, which ran during static
/// destruction after the obs registry could already be gone.
///
/// Flags: --quick --filter SUBSTR --no-tables --mem (enable the allocation
/// hook; off by default so timing columns are undisturbed).
inline int bench_main(int argc, char** argv, void (*print_tables)()) {
  perf::RunnerOptions opts = perf::RunnerOptions::from_env();
  bool tables = true;
  bool mem = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quick") {
      opts = perf::RunnerOptions::quick_tier();
    } else if (flag == "--filter" && i + 1 < argc) {
      opts.filter = argv[++i];
    } else if (flag == "--no-tables") {
      tables = false;
    } else if (flag == "--mem") {
      mem = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--filter SUBSTR] [--no-tables] [--mem]\n";
      return 2;
    }
  }

  const char* name_env = std::getenv("GCR_BENCH_NAME");
  const std::string bench_name = name_env ? name_env : "";
  const bool observed = !bench_name.empty();

  if (mem && perf::memhook::available()) perf::memhook::enable();

  obs::Session session;
  std::optional<obs::Bind> bind;
  if (observed) {
    obs::set_metrics_enabled(true);
    obs::Registry::global().reset();
    bind.emplace(&session);
  }

  try {
    if (tables && print_tables) {
      obs::ScopedTimer t("tables");
      print_tables();
    }

    std::vector<perf::BenchResult> results;
    if (!perf::default_runner().empty()) {
      std::cout << "=== timed benchmarks (median over adaptive reps"
                << (opts.quick ? ", quick tier" : "") << ") ===\n";
      results = perf::default_runner().run(opts, &std::cerr);
      perf::print_results(std::cout, results);
    }

    if (observed) {
      bind.reset();  // close the session before serializing it
      const char* dir_env = std::getenv("GCR_BENCH_JSON_DIR");
      const std::string dir = dir_env && *dir_env ? dir_env : ".";
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      const std::string path = dir + "/BENCH_" + bench_name + ".json";
      std::ofstream os(path);
      if (os) {
        perf::write_bench_report(os, bench_name, results, opts, &session);
      } else {
        std::cerr << "warning: cannot write " << path << '\n';
      }
      obs::set_metrics_enabled(false);
    }
  } catch (const std::exception& e) {
    std::cerr << "bench error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace gcr::bench

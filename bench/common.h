#pragma once

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/session.h"
#include "verify/invariants.h"

/// \file common.h
/// Shared setup for the paper-reproduction benches: build a Design for an
/// r-benchmark with the evaluation workload of section 5 (20k-cycle stream,
/// ~40% average module activity unless overridden).

namespace gcr::bench {

/// Opt-in JSON sidecar for bench runs: when GCR_BENCH_NAME is set in the
/// environment (scripts/reproduce_all.sh exports it per binary), the whole
/// process runs under an observability session and writes
/// `${GCR_BENCH_JSON_DIR:-.}/BENCH_<name>.json` at exit. Without the
/// variable this is inert, so interactive bench runs are unaffected.
class ObsScope {
 public:
  ObsScope() {
    const char* name = std::getenv("GCR_BENCH_NAME");
    if (!name || !*name) return;
    name_ = name;
    obs::set_metrics_enabled(true);
    obs::Registry::global().reset();
    session_ = std::make_unique<obs::Session>();
    bind_ = std::make_unique<obs::Bind>(session_.get());
  }

  ~ObsScope() {
    if (!session_) return;
    bind_.reset();
    const char* dir = std::getenv("GCR_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir && *dir ? dir : ".") + "/BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (os) obs::write_bench_report(os, name_, *session_);
    obs::set_metrics_enabled(false);
  }

 private:
  std::string name_;
  std::unique_ptr<obs::Session> session_;
  std::unique_ptr<obs::Bind> bind_;
};

inline ObsScope obs_scope_instance{};

struct Instance {
  benchdata::RBench rb;
  core::Design design;
};

inline benchdata::WorkloadSpec eval_workload_spec(int num_sinks,
                                                  double activity = 0.4) {
  benchdata::WorkloadSpec w;
  w.num_instructions = 32;
  // Functional blocks have bounded size in a real floorplan: scale the
  // cluster count with the design so co-active modules stay spatially
  // local on the larger benchmarks too.
  w.num_clusters = std::max(16, num_sinks / 32);
  w.target_activity = activity;
  w.in_cluster_use = 0.9;
  // Real program traces are phase-local: consecutive cycles usually run
  // related instructions, so enables toggle far less often than a Bernoulli
  // stream would suggest.
  w.locality = 0.85;
  w.stream_length = 20000;
  w.seed = 2026;
  return w;
}

inline Instance make_instance(const std::string& name, double activity = 0.4) {
  benchdata::RBench rb = benchdata::generate_rbench(name);
  benchdata::Workload wl = benchdata::generate_workload(
      eval_workload_spec(rb.spec.num_sinks, activity), rb.sinks, rb.die);
  core::Design d{rb.die, rb.sinks, std::move(wl.rtl), std::move(wl.stream), {}};
  return {std::move(rb), std::move(d)};
}

/// When GCR_BENCH_SELFCHECK is set (any non-empty value), every bench route
/// runs under the verify invariant checker; a violation throws and fails
/// the bench. Off by default -- the checker costs an extra O(N) re-derive
/// per route, which would perturb the timing columns.
inline bool selfcheck_enabled() {
  const char* v = std::getenv("GCR_BENCH_SELFCHECK");
  return v && *v;
}

inline core::RouterResult run_style(const core::GatedClockRouter& router,
                                    core::TreeStyle style, int partitions = 1,
                                    bool auto_tune = false) {
  core::RouterOptions opts;
  opts.style = style;
  opts.controller_partitions = partitions;
  opts.auto_tune_reduction = auto_tune;
  if (selfcheck_enabled()) {
    return router.route(opts, verify::make_self_check(router));
  }
  return router.route(opts);
}

}  // namespace gcr::bench

/// \file ablation_skew_bound.cpp
/// Ablation of the zero-skew constraint: the paper routes with exact zero
/// skew, paying detour (snake) wire wherever gate insertion makes sibling
/// branches electrically asymmetric. This bench sweeps a skew budget and
/// reports the wirelength and switched capacitance it buys back on the
/// gate-reduced tree, with the measured sink skew certifying the budget is
/// honored. (Delay unit: ohm*pF = ps.)

#include <iostream>
#include <memory>

#include "common.h"
#include "eval/table.h"

using namespace gcr;

namespace {

void print_ablation() {
  std::cout << "=== Ablation: skew budget vs snake wire (r1, gate-reduced) "
               "===\n";
  const bench::Instance inst = bench::make_instance("r1");
  const core::GatedClockRouter router(inst.design);

  eval::Table t({"skew bound ps", "measured skew", "wirelen 1e3",
                 "W total", "W vs bound=0"});
  double base_w = 0.0;
  for (const double bound : {0.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    opts.skew_bound = bound;
    const auto r = router.route(opts);
    if (bound == 0.0) base_w = r.swcap.total_swcap();
    t.add_row({eval::Table::num(bound, 0),
               eval::Table::num(r.delays.skew(), 3),
               eval::Table::num(r.tree.total_wirelength() / 1e3, 1),
               eval::Table::num(r.swcap.total_swcap(), 1),
               eval::Table::num(r.swcap.total_swcap() / base_w, 3)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

perf::BenchFactory bounded_embed(double skew_bound) {
  return [skew_bound] {
    auto inst = std::make_shared<bench::Instance>(bench::make_instance("r1"));
    auto router =
        std::make_shared<const core::GatedClockRouter>(inst->design);
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    opts.skew_bound = skew_bound;
    return [router, opts] {
      auto r = router->route(opts);
      perf::do_not_optimize(r.swcap.total_swcap());
    };
  };
}

const perf::Registrar reg_zskew{"ablation_skew_bound/route/zskew",
                                bounded_embed(0.0)};
const perf::Registrar reg_bounded{"ablation_skew_bound/route/bound=50",
                                  bounded_embed(50.0)};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_ablation);
}

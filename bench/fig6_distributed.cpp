/// \file fig6_distributed.cpp
/// Regenerates the paper's section 6 / Figure 6 analysis: distributed gate
/// controllers. Dividing the chip into k equal partitions (each with its
/// own controller at the partition center) shrinks the star routing area by
/// ~1/sqrt(k): analytically G*D/(4*sqrt(k)) total star length for G gates on
/// a side-D die. The bench compares the closed form against the measured
/// star wirelength of real gated trees on r1..r3 and reports the switched
/// capacitance gain.

#include <iostream>
#include <memory>

#include "common.h"
#include "eval/table.h"

using namespace gcr;

namespace {

constexpr int kPartitions[] = {1, 4, 16, 64};

void print_fig6() {
  std::cout << "=== Figure 6: centralized vs distributed controllers ===\n";
  eval::Table t({"Bench", "k", "star WL (1e3)", "analytic (1e3)",
                 "WL vs k=1", "1/sqrt(k)", "Ctrl W(S)", "Total W"});
  for (const auto& name : {"r1", "r2", "r3"}) {
    const bench::Instance inst = bench::make_instance(name);
    const core::GatedClockRouter router(inst.design);
    double base_wl = 0.0;
    for (const int k : kPartitions) {
      const auto r = bench::run_style(router, core::TreeStyle::Gated, k);
      const gating::ControllerPlacement ctrl(inst.rb.die, k);
      const double analytic =
          ctrl.analytic_total_star_length(r.swcap.num_cells);
      if (k == 1) base_wl = r.swcap.star_wirelength;
      t.add_row({name, std::to_string(k),
                 eval::Table::num(r.swcap.star_wirelength / 1e3, 0),
                 eval::Table::num(analytic / 1e3, 0),
                 eval::Table::num(r.swcap.star_wirelength / base_wl, 3),
                 eval::Table::num(1.0 / std::sqrt(double(k)), 3),
                 eval::Table::num(r.swcap.ctrl_swcap, 1),
                 eval::Table::num(r.swcap.total_swcap(), 1)});
    }
  }
  t.print(std::cout);
  std::cout << "\n(paper: star routing area shrinks by ~1/sqrt(k) with k "
               "partitions)\n\n";
}

perf::BenchFactory controller_assignment(int partitions) {
  return [partitions] {
    auto inst = std::make_shared<bench::Instance>(bench::make_instance("r1"));
    auto ctrl = std::make_shared<const gating::ControllerPlacement>(
        inst->rb.die, partitions);
    auto i = std::make_shared<std::size_t>(0);
    return [inst, ctrl, i] {
      const auto& s = inst->rb.sinks[(*i)++ % inst->rb.sinks.size()];
      perf::do_not_optimize(ctrl->star_length(s.loc));
    };
  };
}

const perf::Registrar reg_k1{"fig6/star_length/n=1",
                             controller_assignment(1)};
const perf::Registrar reg_k16{"fig6/star_length/n=16",
                              controller_assignment(16)};
const perf::Registrar reg_k64{"fig6/star_length/n=64",
                              controller_assignment(64)};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_fig6);
}

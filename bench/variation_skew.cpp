/// \file variation_skew.cpp
/// Process-variation sensitivity of the three tree styles (beyond the
/// paper): the construction is zero-skew at nominal parasitics, but
/// manufacturing spread re-introduces skew. Gated trees put different cell
/// counts on different root-to-sink paths (especially after reduction), so
/// their skew under variation differs from the uniformly-buffered
/// baseline. 10%/15% relative sigmas on wire RC / cell strength, 200
/// Monte-Carlo trials per row.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.h"
#include "eval/power.h"
#include "eval/table.h"
#include "eval/variation.h"

using namespace gcr;

namespace {

void print_report() {
  std::cout << "=== Skew under process variation (r1, 200 trials) ===\n";
  const bench::Instance inst = bench::make_instance("r1");
  const core::GatedClockRouter router(inst.design);

  eval::Table t({"style", "nominal delay", "mean skew", "p95 skew",
                 "max skew", "skew/delay %", "power mW @200MHz/3.3V"});
  for (const auto& [style, label] :
       {std::pair{core::TreeStyle::Buffered, "buffered"},
        std::pair{core::TreeStyle::Gated, "gated"},
        std::pair{core::TreeStyle::GatedReduced, "gated+red"}}) {
    core::RouterOptions opts;
    opts.style = style;
    opts.auto_tune_reduction = style == core::TreeStyle::GatedReduced;
    const auto r = router.route(opts);
    eval::VariationSpec spec;
    spec.trials = 200;
    const eval::VariationReport rep =
        eval::variation_analysis(r.tree, opts.tech, spec);
    t.add_row({label, eval::Table::num(r.delays.max_delay, 0),
               eval::Table::num(rep.mean_skew, 1),
               eval::Table::num(rep.p95_skew, 1),
               eval::Table::num(rep.max_skew, 1),
               eval::Table::num(100.0 * rep.mean_skew_ratio, 2),
               eval::Table::num(
                   eval::dynamic_power_mw(r.swcap.total_swcap()), 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void BM_VariationTrials(benchmark::State& state) {
  const bench::Instance inst = bench::make_instance("r1");
  const core::GatedClockRouter router(inst.design);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::GatedReduced;
  const auto r = router.route(opts);
  eval::VariationSpec spec;
  spec.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto rep = eval::variation_analysis(r.tree, opts.tech, spec);
    benchmark::DoNotOptimize(rep.mean_skew);
  }
}
BENCHMARK(BM_VariationTrials)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

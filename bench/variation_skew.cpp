/// \file variation_skew.cpp
/// Process-variation sensitivity of the three tree styles (beyond the
/// paper): the construction is zero-skew at nominal parasitics, but
/// manufacturing spread re-introduces skew. Gated trees put different cell
/// counts on different root-to-sink paths (especially after reduction), so
/// their skew under variation differs from the uniformly-buffered
/// baseline. 10%/15% relative sigmas on wire RC / cell strength, 200
/// Monte-Carlo trials per row.

#include <iostream>
#include <memory>

#include "common.h"
#include "eval/power.h"
#include "eval/table.h"
#include "eval/variation.h"

using namespace gcr;

namespace {

void print_report() {
  std::cout << "=== Skew under process variation (r1, 200 trials) ===\n";
  const bench::Instance inst = bench::make_instance("r1");
  const core::GatedClockRouter router(inst.design);

  eval::Table t({"style", "nominal delay", "mean skew", "p95 skew",
                 "max skew", "skew/delay %", "power mW @200MHz/3.3V"});
  for (const auto& [style, label] :
       {std::pair{core::TreeStyle::Buffered, "buffered"},
        std::pair{core::TreeStyle::Gated, "gated"},
        std::pair{core::TreeStyle::GatedReduced, "gated+red"}}) {
    core::RouterOptions opts;
    opts.style = style;
    opts.auto_tune_reduction = style == core::TreeStyle::GatedReduced;
    const auto r = router.route(opts);
    eval::VariationSpec spec;
    spec.trials = 200;
    const eval::VariationReport rep =
        eval::variation_analysis(r.tree, opts.tech, spec);
    t.add_row({label, eval::Table::num(r.delays.max_delay, 0),
               eval::Table::num(rep.mean_skew, 1),
               eval::Table::num(rep.p95_skew, 1),
               eval::Table::num(rep.max_skew, 1),
               eval::Table::num(100.0 * rep.mean_skew_ratio, 2),
               eval::Table::num(
                   eval::dynamic_power_mw(r.swcap.total_swcap()), 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

perf::BenchFactory variation_trials(int trials) {
  return [trials] {
    auto inst = std::make_shared<bench::Instance>(bench::make_instance("r1"));
    const core::GatedClockRouter router(inst->design);
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    auto r = std::make_shared<const core::RouterResult>(router.route(opts));
    const tech::TechParams tech = opts.tech;
    eval::VariationSpec spec;
    spec.trials = trials;
    return [r, tech, spec] {
      auto rep = eval::variation_analysis(r->tree, tech, spec);
      perf::do_not_optimize(rep.mean_skew);
    };
  };
}

const perf::Registrar reg_t50{"variation/trials/n=50", variation_trials(50)};
const perf::Registrar reg_t200{"variation/trials/n=200",
                               variation_trials(200)};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_report);
}

/// \file table4_characteristics.cpp
/// Regenerates paper Table 4: benchmark characteristics for gated clock
/// routing -- number of sinks, number of instructions, stream length and
/// Ave(M(I)), the frequency-weighted average fraction of modules used per
/// instruction (~40% in the paper). The timed section verifies that the
/// one-scan table construction is O(B) in the stream length.

#include <benchmark/benchmark.h>

#include <iostream>

#include "activity/analyzer.h"
#include "common.h"
#include "eval/table.h"

using namespace gcr;

namespace {

void print_table4() {
  std::cout << "=== Table 4: Benchmark characteristics for gated clock "
               "routing ===\n";
  eval::Table t({"Bench", "No. of sinks", "No. of instr", "Stream len",
                 "Ave(M(Ij))"});
  for (const auto& spec : benchdata::rbench_specs()) {
    const bench::Instance inst = bench::make_instance(spec.name);
    const activity::ActivityAnalyzer an(inst.design.rtl, inst.design.stream);
    t.add_row({spec.name, std::to_string(spec.num_sinks),
               std::to_string(inst.design.rtl.num_instructions()),
               std::to_string(inst.design.stream.length()),
               eval::Table::num(an.ift().average_activity(inst.design.rtl), 3)});
  }
  t.print(std::cout);
  std::cout << "\n(paper: Ave(M(Ij)) ~ 0.4 for all benchmarks)\n\n";
}

void BM_TableConstructionVsStreamLength(benchmark::State& state) {
  const auto rb = benchdata::generate_rbench("r1");
  benchdata::WorkloadSpec spec =
      bench::eval_workload_spec(rb.spec.num_sinks);
  spec.stream_length = static_cast<int>(state.range(0));
  const auto wl = benchdata::generate_workload(spec, rb.sinks, rb.die);
  for (auto _ : state) {
    activity::ActivityAnalyzer an(wl.rtl, wl.stream);
    benchmark::DoNotOptimize(an.ift().prob(0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TableConstructionVsStreamLength)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 18)
    ->Complexity(benchmark::oN);

}  // namespace

int main(int argc, char** argv) {
  print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

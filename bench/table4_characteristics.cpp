/// \file table4_characteristics.cpp
/// Regenerates paper Table 4: benchmark characteristics for gated clock
/// routing -- number of sinks, number of instructions, stream length and
/// Ave(M(I)), the frequency-weighted average fraction of modules used per
/// instruction (~40% in the paper). The timed section verifies that the
/// one-scan table construction is O(B) in the stream length.

#include <iostream>
#include <memory>
#include <string>

#include "activity/analyzer.h"
#include "common.h"
#include "eval/table.h"

using namespace gcr;

namespace {

void print_table4() {
  std::cout << "=== Table 4: Benchmark characteristics for gated clock "
               "routing ===\n";
  eval::Table t({"Bench", "No. of sinks", "No. of instr", "Stream len",
                 "Ave(M(Ij))"});
  for (const auto& spec : benchdata::rbench_specs()) {
    const bench::Instance inst = bench::make_instance(spec.name);
    const activity::ActivityAnalyzer an(inst.design.rtl, inst.design.stream);
    t.add_row({spec.name, std::to_string(spec.num_sinks),
               std::to_string(inst.design.rtl.num_instructions()),
               std::to_string(inst.design.stream.length()),
               eval::Table::num(an.ift().average_activity(inst.design.rtl), 3)});
  }
  t.print(std::cout);
  std::cout << "\n(paper: Ave(M(Ij)) ~ 0.4 for all benchmarks)\n\n";
}

// Table construction should be linear in the stream length B (paper
// section 3.3); the runner fits a log-log slope over the n=<B> family.
perf::BenchFactory table_build_at(int stream_length) {
  return [stream_length] {
    auto rb =
        std::make_shared<const benchdata::RBench>(benchdata::generate_rbench("r1"));
    benchdata::WorkloadSpec spec = bench::eval_workload_spec(rb->spec.num_sinks);
    spec.stream_length = stream_length;
    auto wl = std::make_shared<const benchdata::Workload>(
        benchdata::generate_workload(spec, rb->sinks, rb->die));
    return [wl] {
      activity::ActivityAnalyzer an(wl->rtl, wl->stream);
      perf::do_not_optimize(an.ift().prob(0));
    };
  };
}

struct RegisterTableBuilds {
  RegisterTableBuilds() {
    for (int b = 1 << 10; b <= 1 << 18; b <<= 2)
      perf::default_runner().add("table4/table_build/n=" + std::to_string(b),
                                 table_build_at(b));
  }
};
const RegisterTableBuilds reg_table_builds{};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_table4);
}

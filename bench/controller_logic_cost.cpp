/// \file controller_logic_cost.cpp
/// Quantifies the paper's section-6 open question: the design complexity of
/// the gate-controller logic, for flat vs hierarchical enable synthesis and
/// centralized vs distributed controllers. Reports 2-input OR counts, logic
/// area, and the switched capacitance of the OR output nets (each toggling
/// with the exact transition probability of its enable union), alongside
/// the enable-wire cost the controller already pays.

#include <iostream>
#include <memory>

#include "common.h"
#include "eval/table.h"
#include "gating/controller_logic.h"

using namespace gcr;

namespace {

void print_report() {
  std::cout << "=== Controller logic complexity (gated+reduced trees) ===\n";
  eval::Table t({"Bench", "k", "style", "enables", "OR cells",
                 "logic area 1e3", "logic W pF", "enable-wire W pF"});
  for (const auto& name : {"r1", "r2"}) {
    const bench::Instance inst = bench::make_instance(name);
    const core::GatedClockRouter router(inst.design);
    for (const int k : {1, 4, 16}) {
      core::RouterOptions opts;
      opts.style = core::TreeStyle::GatedReduced;
      opts.controller_partitions = k;
      opts.auto_tune_reduction = true;
      const auto r = router.route(opts);
      const gating::ControllerPlacement ctrl(inst.rb.die, k);
      for (const auto style :
           {gating::LogicStyle::Flat, gating::LogicStyle::Hierarchical}) {
        const auto rep = gating::synthesize_controller_logic(
            r.tree, r.activity, router.analyzer(), ctrl, opts.tech, style);
        t.add_row({name, std::to_string(k),
                   style == gating::LogicStyle::Flat ? "flat" : "hierarchical",
                   std::to_string(rep.num_enables),
                   std::to_string(rep.num_or_gates),
                   eval::Table::num(rep.logic_area / 1e3, 0),
                   eval::Table::num(rep.logic_swcap, 2),
                   eval::Table::num(r.swcap.ctrl_swcap, 1)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\n(hierarchical sharing follows the gated-subtree DAG; "
               "distribution limits reuse to same-partition enables)\n\n";
}

perf::BenchFactory logic_synthesis(gating::LogicStyle style) {
  return [style] {
    auto inst = std::make_shared<bench::Instance>(bench::make_instance("r1"));
    auto router =
        std::make_shared<const core::GatedClockRouter>(inst->design);
    core::RouterOptions opts;
    opts.style = core::TreeStyle::Gated;
    auto r = std::make_shared<const core::RouterResult>(router->route(opts));
    auto ctrl =
        std::make_shared<const gating::ControllerPlacement>(inst->rb.die, 1);
    const tech::TechParams tech = opts.tech;
    return [router, r, ctrl, tech, style] {
      auto rep = gating::synthesize_controller_logic(
          r->tree, r->activity, router->analyzer(), *ctrl, tech, style);
      perf::do_not_optimize(rep.num_or_gates);
    };
  };
}

const perf::Registrar reg_flat{"controller_logic/synthesize/flat",
                               logic_synthesis(gating::LogicStyle::Flat)};
const perf::Registrar reg_hier{
    "controller_logic/synthesize/hierarchical",
    logic_synthesis(gating::LogicStyle::Hierarchical)};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_report);
}

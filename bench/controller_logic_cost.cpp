/// \file controller_logic_cost.cpp
/// Quantifies the paper's section-6 open question: the design complexity of
/// the gate-controller logic, for flat vs hierarchical enable synthesis and
/// centralized vs distributed controllers. Reports 2-input OR counts, logic
/// area, and the switched capacitance of the OR output nets (each toggling
/// with the exact transition probability of its enable union), alongside
/// the enable-wire cost the controller already pays.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.h"
#include "eval/table.h"
#include "gating/controller_logic.h"

using namespace gcr;

namespace {

void print_report() {
  std::cout << "=== Controller logic complexity (gated+reduced trees) ===\n";
  eval::Table t({"Bench", "k", "style", "enables", "OR cells",
                 "logic area 1e3", "logic W pF", "enable-wire W pF"});
  for (const auto& name : {"r1", "r2"}) {
    const bench::Instance inst = bench::make_instance(name);
    const core::GatedClockRouter router(inst.design);
    for (const int k : {1, 4, 16}) {
      core::RouterOptions opts;
      opts.style = core::TreeStyle::GatedReduced;
      opts.controller_partitions = k;
      opts.auto_tune_reduction = true;
      const auto r = router.route(opts);
      const gating::ControllerPlacement ctrl(inst.rb.die, k);
      for (const auto style :
           {gating::LogicStyle::Flat, gating::LogicStyle::Hierarchical}) {
        const auto rep = gating::synthesize_controller_logic(
            r.tree, r.activity, router.analyzer(), ctrl, opts.tech, style);
        t.add_row({name, std::to_string(k),
                   style == gating::LogicStyle::Flat ? "flat" : "hierarchical",
                   std::to_string(rep.num_enables),
                   std::to_string(rep.num_or_gates),
                   eval::Table::num(rep.logic_area / 1e3, 0),
                   eval::Table::num(rep.logic_swcap, 2),
                   eval::Table::num(r.swcap.ctrl_swcap, 1)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\n(hierarchical sharing follows the gated-subtree DAG; "
               "distribution limits reuse to same-partition enables)\n\n";
}

void BM_LogicSynthesis(benchmark::State& state) {
  const bench::Instance inst = bench::make_instance("r1");
  const core::GatedClockRouter router(inst.design);
  core::RouterOptions opts;
  opts.style = core::TreeStyle::Gated;
  const auto r = router.route(opts);
  const gating::ControllerPlacement ctrl(inst.rb.die, 1);
  const auto style = state.range(0) ? gating::LogicStyle::Hierarchical
                                    : gating::LogicStyle::Flat;
  for (auto _ : state) {
    auto rep = gating::synthesize_controller_logic(
        r.tree, r.activity, router.analyzer(), ctrl, opts.tech, style);
    benchmark::DoNotOptimize(rep.num_or_gates);
  }
}
BENCHMARK(BM_LogicSynthesis)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

/// \file ablation_sizing.cpp
/// Ablation of gate sizing (paper section 1: gates "also serve as buffers
/// and can be sized to adjust the phase delay"). Zero skew with unit gates
/// pays for sibling delay imbalance with snake wire; letting each merge
/// pick the gate size that minimizes wire recovers most of that detour.
/// Reports wirelength, snake wire, switched capacitance and area with and
/// without sizing, at several gate-reduction levels (asymmetric gating is
/// where the imbalance comes from).

#include <iostream>
#include <memory>

#include "common.h"
#include "eval/table.h"

using namespace gcr;

namespace {

double snake_wire(const ct::RoutedTree& tree) {
  double snake = 0.0;
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const ct::RoutedNode& n = tree.node(id);
    if (n.parent < 0) continue;
    snake +=
        n.edge_len - geom::manhattan_dist(n.loc, tree.node(n.parent).loc);
  }
  return snake;
}

void print_ablation() {
  std::cout << "=== Ablation: gate sizing for phase-delay adjustment (r1) "
               "===\n";
  const bench::Instance inst = bench::make_instance("r1");
  const core::GatedClockRouter router(inst.design);

  eval::Table t({"red. strength", "sizing", "wirelen 1e3", "snake 1e3",
                 "W total", "cell area 1e3", "max delay"});
  for (const double s : {0.0, 0.3, 0.5, 0.7}) {
    for (const bool sized : {false, true}) {
      core::RouterOptions opts;
      opts.style = core::TreeStyle::GatedReduced;
      opts.reduction = gating::GateReductionParams::from_strength(s);
      opts.gate_sizing = sized ? ct::GateSizing::MinWirelength
                               : ct::GateSizing::Unit;
      const auto r = router.route(opts);
      t.add_row({eval::Table::num(s, 1), sized ? "min-wire" : "unit",
                 eval::Table::num(r.tree.total_wirelength() / 1e3, 0),
                 eval::Table::num(snake_wire(r.tree) / 1e3, 0),
                 eval::Table::num(r.swcap.total_swcap(), 1),
                 eval::Table::num(r.swcap.cell_area / 1e3, 0),
                 eval::Table::num(r.delays.max_delay, 0)});
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

perf::BenchFactory sized_embed(bool sized) {
  return [sized] {
    auto inst = std::make_shared<bench::Instance>(bench::make_instance("r1"));
    auto router =
        std::make_shared<const core::GatedClockRouter>(inst->design);
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    opts.gate_sizing =
        sized ? ct::GateSizing::MinWirelength : ct::GateSizing::Unit;
    return [router, opts] {
      auto r = router->route(opts);
      perf::do_not_optimize(r.swcap.total_swcap());
    };
  };
}

const perf::Registrar reg_unit{"ablation_sizing/route/unit",
                               sized_embed(false)};
const perf::Registrar reg_sized{"ablation_sizing/route/sized",
                                sized_embed(true)};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_ablation);
}

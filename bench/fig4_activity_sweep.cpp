/// \file fig4_activity_sweep.cpp
/// Regenerates paper Figure 4: average module activity (x-axis) vs
/// switched capacitance (y-axis) for benchmark r1, comparing the buffered
/// tree against the gate-reduced gated tree.
///
/// Expected shape: the buffered curve is flat (everything switches every
/// cycle); the gated curve rises with activity and the gap closes -- clock
/// gating pays off at low module activity. The paper also observes the
/// gated tree's power stays >= ~40% of the ungated tree's because roughly
/// 40% of the modules are active whenever the corresponding subtrees are
/// clocked; the last column tracks that ratio.

#include <iostream>
#include <memory>

#include "common.h"
#include "eval/table.h"

using namespace gcr;

namespace {

constexpr double kActivities[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

void print_fig4() {
  std::cout << "=== Figure 4: average module activity vs switched "
               "capacitance (r1) ===\n";
  eval::Table t({"activity", "Buffered W", "GateRed. W", "GateRed./Buffered",
                 "W(T)/ungated"});
  for (const double a : kActivities) {
    const bench::Instance inst = bench::make_instance("r1", a);
    const core::GatedClockRouter router(inst.design);
    const auto buf = bench::run_style(router, core::TreeStyle::Buffered);
    const auto red = bench::run_style(router, core::TreeStyle::GatedReduced);
    t.add_row({eval::Table::num(a, 1),
               eval::Table::num(buf.swcap.total_swcap(), 1),
               eval::Table::num(red.swcap.total_swcap(), 1),
               eval::Table::num(
                   red.swcap.total_swcap() / buf.swcap.total_swcap(), 3),
               eval::Table::num(
                   red.swcap.clock_swcap / red.swcap.ungated_swcap, 3)});
  }
  t.print(std::cout);
  std::cout << "\n(paper: the two methods converge as activity rises; gated "
               "power stays >= ~40% of ungated)\n\n";
}

// The per-activity cost of the flow is dominated by the activity-aware
// topology construction; time it at two representative activities.
perf::BenchFactory route_at_activity(double activity) {
  return [activity] {
    auto inst = std::make_shared<bench::Instance>(
        bench::make_instance("r1", activity));
    auto router =
        std::make_shared<const core::GatedClockRouter>(inst->design);
    return [router] {
      auto r = bench::run_style(*router, core::TreeStyle::GatedReduced);
      perf::do_not_optimize(r.swcap.total_swcap());
    };
  };
}

const perf::Registrar reg_low{"fig4/route/activity=0.2",
                              route_at_activity(0.2)};
const perf::Registrar reg_high{"fig4/route/activity=0.8",
                               route_at_activity(0.8)};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_fig4);
}

/// \file fig5_gate_reduction.cpp
/// Regenerates paper Figure 5: gate reduction percentage (x-axis) vs
/// switched capacitance and area (y-axis) for benchmark r1, with the
/// controller-tree / clock-tree breakdown.
///
/// Expected shape: a U-curve. With many gates the controller tree dominates
/// switched capacitance and area; as gates are removed the controller cost
/// falls but the clock tree's rises; an interior optimum exists (~55%
/// reduction in the paper). The sweep drives the reduction heuristic's
/// aggressiveness knob and reports the *achieved* reduction percentage.

#include <iostream>
#include <memory>

#include "common.h"
#include "eval/table.h"

using namespace gcr;

namespace {

void print_fig5() {
  std::cout << "=== Figure 5: gate reduction vs switched capacitance and "
               "area (r1) ===\n";
  const bench::Instance inst = bench::make_instance("r1");
  const core::GatedClockRouter router(inst.design);

  eval::Table t({"strength", "red. %", "gates", "Clock W(T)", "Ctrl W(S)",
                 "Total W", "Ctrl area", "Clock area", "Total area 1e6"});
  double best_w = 1e300, best_pct = 0.0;
  for (const double s : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                         1.0}) {
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    opts.reduction = gating::GateReductionParams::from_strength(s);
    const auto r = router.route(opts);
    const auto& tech = opts.tech;
    const double star_area = tech.wire_area(r.swcap.star_wirelength) +
                             r.swcap.cell_area;  // enable net + gates
    const double clock_area = tech.wire_area(r.swcap.clock_wirelength);
    t.add_row({eval::Table::num(s, 1),
               eval::Table::num(r.gate_reduction_pct(), 1),
               std::to_string(r.swcap.num_cells),
               eval::Table::num(r.swcap.clock_swcap, 1),
               eval::Table::num(r.swcap.ctrl_swcap, 1),
               eval::Table::num(r.swcap.total_swcap(), 1),
               eval::Table::num(star_area / 1e6, 2),
               eval::Table::num(clock_area / 1e6, 2),
               eval::Table::num(r.swcap.total_area() / 1e6, 2)});
    if (r.swcap.total_swcap() < best_w) {
      best_w = r.swcap.total_swcap();
      best_pct = r.gate_reduction_pct();
    }
  }
  t.print(std::cout);
  std::cout << "\noptimum gate reduction for lowest power: "
            << eval::Table::num(best_pct, 1) << "% (paper: ~55%)\n\n";
}

perf::BenchFactory route_at_strength(double strength) {
  return [strength] {
    auto inst = std::make_shared<bench::Instance>(bench::make_instance("r1"));
    auto router =
        std::make_shared<const core::GatedClockRouter>(inst->design);
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    opts.reduction = gating::GateReductionParams::from_strength(strength);
    return [router, opts] {
      auto r = router->route(opts);
      perf::do_not_optimize(r.swcap.total_swcap());
    };
  };
}

const perf::Registrar reg_s3{"fig5/route/strength=0.3",
                             route_at_strength(0.3)};
const perf::Registrar reg_s7{"fig5/route/strength=0.7",
                             route_at_strength(0.7)};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_fig5);
}

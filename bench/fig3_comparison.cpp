/// \file fig3_comparison.cpp
/// Regenerates paper Figure 3: switched capacitance (pF) and area (1e6
/// lambda^2) of the three routing methods -- Buffered, Gated (a masking
/// gate on every edge) and Gated with the gate-reduction heuristic -- over
/// r1..r5 at ~40% average module activity.
///
/// Expected shape (paper section 5.1): without reduction the star routing
/// makes the gated tree *worse* than buffered; with reduction it beats
/// buffered by roughly 30% in switched capacitance while keeping an area
/// overhead. The timed section benchmarks the full route() flow on r1.

#include <iostream>
#include <memory>

#include "common.h"
#include "eval/table.h"

using namespace gcr;

namespace {

void print_fig3() {
  std::cout << "=== Figure 3: switched capacitance and area, r1..r5 ===\n";
  eval::Table sw({"Bench", "Buffered W", "Gated W", "GateRed. W",
                  "GateRed./Buffered"});
  eval::Table ar({"Bench", "Buffered area", "Gated area", "GateRed. area"});
  eval::Table detail({"Bench", "style", "W(T) pF", "W(S) pF", "gates",
                      "red. %", "clock WL", "star WL", "skew"});

  for (const auto& spec : benchdata::rbench_specs()) {
    const bench::Instance inst = bench::make_instance(spec.name);
    const core::GatedClockRouter router(inst.design);

    const auto buf = bench::run_style(router, core::TreeStyle::Buffered);
    const auto gat = bench::run_style(router, core::TreeStyle::Gated);
    // The reduction operating point is chosen per design, as in the paper's
    // Figure 5 sweep.
    const auto red = bench::run_style(router, core::TreeStyle::GatedReduced,
                                      /*partitions=*/1, /*auto_tune=*/true);

    sw.add_row({spec.name, eval::Table::num(buf.swcap.total_swcap(), 1),
                eval::Table::num(gat.swcap.total_swcap(), 1),
                eval::Table::num(red.swcap.total_swcap(), 1),
                eval::Table::num(
                    red.swcap.total_swcap() / buf.swcap.total_swcap(), 3)});
    ar.add_row({spec.name, eval::Table::num(buf.swcap.total_area() / 1e6, 2),
                eval::Table::num(gat.swcap.total_area() / 1e6, 2),
                eval::Table::num(red.swcap.total_area() / 1e6, 2)});
    for (const auto& [r, name] :
         {std::pair{&buf, "buffered"}, {&gat, "gated"}, {&red, "gate-red"}}) {
      detail.add_row(
          {spec.name, name, eval::Table::num(r->swcap.clock_swcap, 1),
           eval::Table::num(r->swcap.ctrl_swcap, 1),
           std::to_string(r->swcap.num_cells),
           eval::Table::num(r->gate_reduction_pct(), 1),
           eval::Table::num(r->swcap.clock_wirelength / 1e3, 0),
           eval::Table::num(r->swcap.star_wirelength / 1e3, 0),
           eval::Table::num(r->delays.skew(), 6)});
    }
  }
  std::cout << "-- switched capacitance (pF) --\n";
  sw.print(std::cout);
  std::cout << "\n-- area (1e6 lambda^2) --\n";
  ar.print(std::cout);
  std::cout << "\n-- detail (wirelengths in 1e3 lambda) --\n";
  detail.print(std::cout);
  std::cout << '\n';
}

perf::BenchFactory route_r1(core::TreeStyle style) {
  return [style] {
    auto inst = std::make_shared<bench::Instance>(bench::make_instance("r1"));
    auto router =
        std::make_shared<const core::GatedClockRouter>(inst->design);
    return [router, style] {
      auto r = bench::run_style(*router, style);
      perf::do_not_optimize(r.swcap.total_swcap());
    };
  };
}

const perf::Registrar reg_buf{"fig3/route_r1/buffered",
                              route_r1(core::TreeStyle::Buffered)};
const perf::Registrar reg_gated{"fig3/route_r1/gated",
                                route_r1(core::TreeStyle::Gated)};
const perf::Registrar reg_red{"fig3/route_r1/reduced",
                              route_r1(core::TreeStyle::GatedReduced)};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_fig3);
}

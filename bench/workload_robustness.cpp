/// \file workload_robustness.cpp
/// Generalization study (beyond the paper, enabled by the cycle-accurate
/// simulator): a gated tree is optimized against one training trace, but
/// the chip runs other programs. For trees trained on each kernel (and on
/// the multiprogram mix), replay every kernel's trace and report the
/// switched capacitance per cycle -- the off-diagonal entries measure how
/// much a mis-trained gate placement costs, and the mix-trained row shows
/// why training on representative workloads matters.

#include <iostream>
#include <memory>

#include "benchdata/rbench.h"
#include "common.h"
#include "core/router.h"
#include "cpu/bridge.h"
#include "eval/simulate.h"
#include "eval/table.h"

using namespace gcr;

namespace {

void print_matrix() {
  std::cout << "=== Workload robustness: train trace (rows) vs replay trace "
               "(columns), W pF/cycle, r1 ===\n";
  benchdata::RBench rb = benchdata::generate_rbench("r1");
  const cpu::UnitFloorplan plan = cpu::assign_units(rb.sinks);
  const activity::RtlDescription rtl = cpu::make_rtl(plan);
  std::vector<int> modules(rb.sinks.size());
  for (std::size_t i = 0; i < modules.size(); ++i)
    modules[i] = static_cast<int>(i);

  // Replay traces: each kernel alone, plus the mix.
  struct Replay {
    std::string name;
    activity::InstructionStream stream;
  };
  std::vector<Replay> replays;
  for (const auto& k : cpu::benchmark_kernels())
    replays.push_back({k.name, cpu::make_stream(cpu::run_with_data(k.prog))});
  replays.push_back({"mix", cpu::multiprogram_stream(20000)});

  const gating::ControllerPlacement ctrl(rb.die, 1);
  std::vector<std::string> headers{"trained on"};
  for (const auto& r : replays) headers.push_back(r.name);
  eval::Table t(std::move(headers));

  for (const auto& train : replays) {
    core::Design d{rb.die, rb.sinks, rtl, train.stream, {}};
    const core::GatedClockRouter router(std::move(d));
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    // Fix the topology scheme so the rows differ only in where the
    // training trace placed (and kept) gates.
    opts.topology = core::TopologyScheme::NearestNeighbor;
    opts.auto_tune_reduction = true;
    const auto routed = router.route(opts);

    std::vector<std::string> row{train.name};
    for (const auto& replay : replays) {
      const auto sim =
          eval::simulate_swcap(routed.tree, rtl, replay.stream, modules,
                               ctrl, opts.tech, true);
      row.push_back(eval::Table::num(sim.total_per_cycle(), 1));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\n(same NN topology everywhere; rows differ only in which "
               "gates the training trace\nkept. Reading down a column shows "
               "the cost of optimizing the gate set against the\nwrong "
               "workload.)\n\n";
}

struct ReplayFixture {
  activity::RtlDescription rtl;
  activity::InstructionStream mix;
  std::vector<int> modules;
  gating::ControllerPlacement ctrl;
  core::RouterResult routed;
  tech::TechParams tech;
};

const perf::Registrar reg_replay{"workload/simulate_replay", [] {
  benchdata::RBench rb = benchdata::generate_rbench("r1");
  const cpu::UnitFloorplan plan = cpu::assign_units(rb.sinks);
  activity::RtlDescription rtl = cpu::make_rtl(plan);
  activity::InstructionStream mix = cpu::multiprogram_stream(20000);
  std::vector<int> modules(rb.sinks.size());
  for (std::size_t i = 0; i < modules.size(); ++i)
    modules[i] = static_cast<int>(i);
  core::Design d{rb.die, rb.sinks, rtl, mix, {}};
  const core::GatedClockRouter router(std::move(d));
  core::RouterOptions opts;
  opts.style = core::TreeStyle::GatedReduced;
  auto fx = std::make_shared<ReplayFixture>(
      ReplayFixture{std::move(rtl), std::move(mix), std::move(modules),
                    gating::ControllerPlacement(rb.die, 1),
                    router.route(opts), opts.tech});
  return [fx] {
    auto sim = eval::simulate_swcap(fx->routed.tree, fx->rtl, fx->mix,
                                    fx->modules, fx->ctrl, fx->tech, true);
    perf::do_not_optimize(sim.total_per_cycle());
  };
}};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_matrix);
}

/// \file perf_scaling.cpp
/// Validates the paper's complexity claims (sections 3.3 and 4.2):
///   * signal-probability queries: O(K) with the bit-packed tables
///     (paper: O(KL) over the raw tables),
///   * transition-probability queries: O(K^2) worst case,
///   * full construction: O(B + K^2 N^2) -- quadratic in the sink count,
///     linear in the stream length.

#include <iostream>
#include <memory>
#include <random>
#include <string>

#include "activity/analyzer.h"
#include "common.h"
#include "cts/clustered.h"
#include "cts/greedy.h"

using namespace gcr;

namespace {

benchdata::Workload workload_for(int k, int n, int b, std::uint64_t seed) {
  benchdata::RBenchSpec spec{"s", n, 10000.0, 0.005, 0.08, seed};
  const auto rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec w;
  w.num_instructions = k;
  w.target_activity = 0.4;
  w.stream_length = b;
  w.seed = seed;
  return benchdata::generate_workload(w, rb.sinks, rb.die);
}

perf::BenchFactory prob_query(int k, bool transition) {
  return [k, transition] {
    auto wl = std::make_shared<const benchdata::Workload>(
        workload_for(k, 64, transition ? 8000 : 4000, transition ? 4 : 3));
    auto an =
        std::make_shared<const activity::ActivityAnalyzer>(wl->rtl, wl->stream);
    activity::ActivationMask mask(k);
    for (int i = 0; i < k; i += 2) mask.set(i);
    // wl stays captured: the analyzer references its rtl, not a copy.
    return [wl, an, mask, transition] {
      perf::do_not_optimize(transition ? an->transition_prob(mask)
                                       : an->signal_prob(mask));
    };
  };
}

perf::BenchFactory topology_build(int n) {
  return [n] {
    auto rb = std::make_shared<const benchdata::RBench>(benchdata::generate_rbench(
        benchdata::RBenchSpec{"s", n, 20000.0, 0.005, 0.08, 9}));
    auto wl = std::make_shared<const benchdata::Workload>(
        workload_for(32, n, 4000, 9));
    auto an =
        std::make_shared<const activity::ActivityAnalyzer>(wl->rtl, wl->stream);
    auto mods =
        std::make_shared<const std::vector<int>>(cts::identity_modules(n));
    cts::BuildOptions opts;
    opts.cost = cts::MergeCost::SwitchedCapacitance;
    opts.control_point = rb->die.center();
    return [rb, wl, an, mods, opts] {
      auto r = cts::build_topology(rb->sinks, an.get(), *mods, opts);
      perf::do_not_optimize(r.topo.root());
    };
  };
}

perf::BenchFactory construction(int n, bool clustered) {
  return [n, clustered] {
    auto rb = std::make_shared<const benchdata::RBench>(benchdata::generate_rbench(
        benchdata::RBenchSpec{"s", n, 40000.0, 0.005, 0.08, 10}));
    auto wl = std::make_shared<const benchdata::Workload>(
        workload_for(32, n, 4000, 10));
    auto an =
        std::make_shared<const activity::ActivityAnalyzer>(wl->rtl, wl->stream);
    auto mods =
        std::make_shared<const std::vector<int>>(cts::identity_modules(n));
    cts::BuildOptions opts;
    opts.cost = cts::MergeCost::SwitchedCapacitance;
    opts.control_point = rb->die.center();
    return [rb, wl, an, mods, opts, clustered] {
      if (clustered) {
        cts::ClusterOptions copts;
        copts.build = opts;
        auto r =
            cts::build_topology_clustered(rb->sinks, an.get(), *mods, copts);
        perf::do_not_optimize(r.topo.root());
      } else {
        auto r = cts::build_topology(rb->sinks, an.get(), *mods, opts);
        perf::do_not_optimize(r.topo.root());
      }
    };
  };
}

perf::BenchFactory end_to_end(const char* name) {
  return [name] {
    auto inst = std::make_shared<bench::Instance>(bench::make_instance(name));
    auto router =
        std::make_shared<const core::GatedClockRouter>(inst->design);
    return [router] {
      auto r = bench::run_style(*router, core::TreeStyle::GatedReduced);
      perf::do_not_optimize(r.swcap.total_swcap());
    };
  };
}

/// The n=<size> families reproduce the old google-benchmark complexity
/// sweeps; the runner's log-log fit replaces Complexity().
struct RegisterAll {
  RegisterAll() {
    auto& r = perf::default_runner();
    for (int k = 8; k <= 256; k *= 2) {
      r.add("perf/signal_prob/n=" + std::to_string(k), prob_query(k, false));
      r.add("perf/transition_prob/n=" + std::to_string(k),
            prob_query(k, true));
    }
    for (int n = 32; n <= 1024; n *= 2)
      r.add("perf/topology_build/n=" + std::to_string(n), topology_build(n));
    for (const int n : {2000, 8000}) {
      r.add("perf/construct_flat/n=" + std::to_string(n),
            construction(n, false));
      r.add("perf/construct_clustered/n=" + std::to_string(n),
            construction(n, true));
    }
    r.add("perf/route/r1", end_to_end("r1"));
    r.add("perf/route/r2", end_to_end("r2"));
  }
};
const RegisterAll register_all{};

void print_header() {
  std::cout << "=== Complexity validation: O(B + K^2 N^2) construction ===\n"
            << "(see the complexity fits below the timing table)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_header);
}

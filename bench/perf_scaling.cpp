/// \file perf_scaling.cpp
/// Validates the paper's complexity claims (sections 3.3 and 4.2):
///   * signal-probability queries: O(K) with the bit-packed tables
///     (paper: O(KL) over the raw tables),
///   * transition-probability queries: O(K^2) worst case,
///   * full construction: O(B + K^2 N^2) -- quadratic in the sink count,
///     linear in the stream length.

#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "activity/analyzer.h"
#include "common.h"
#include "cts/clustered.h"
#include "cts/greedy.h"

using namespace gcr;

namespace {

benchdata::Workload workload_for(int k, int n, int b, std::uint64_t seed) {
  benchdata::RBenchSpec spec{"s", n, 10000.0, 0.005, 0.08, seed};
  const auto rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec w;
  w.num_instructions = k;
  w.target_activity = 0.4;
  w.stream_length = b;
  w.seed = seed;
  return benchdata::generate_workload(w, rb.sinks, rb.die);
}

void BM_SignalProbVsK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto wl = workload_for(k, 64, 4000, 3);
  const activity::ActivityAnalyzer an(wl.rtl, wl.stream);
  activity::ActivationMask mask(k);
  for (int i = 0; i < k; i += 2) mask.set(i);
  for (auto _ : state) benchmark::DoNotOptimize(an.signal_prob(mask));
  state.SetComplexityN(k);
}
BENCHMARK(BM_SignalProbVsK)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_TransitionProbVsK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto wl = workload_for(k, 64, 8000, 4);
  const activity::ActivityAnalyzer an(wl.rtl, wl.stream);
  activity::ActivationMask mask(k);
  for (int i = 0; i < k; i += 2) mask.set(i);
  for (auto _ : state) benchmark::DoNotOptimize(an.transition_prob(mask));
  state.SetComplexityN(k);
}
BENCHMARK(BM_TransitionProbVsK)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_TopologyConstructionVsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  benchdata::RBenchSpec spec{"s", n, 20000.0, 0.005, 0.08, 9};
  const auto rb = benchdata::generate_rbench(spec);
  const auto wl = workload_for(32, n, 4000, 9);
  const activity::ActivityAnalyzer an(wl.rtl, wl.stream);
  const auto mods = cts::identity_modules(n);
  cts::BuildOptions opts;
  opts.cost = cts::MergeCost::SwitchedCapacitance;
  opts.control_point = rb.die.center();
  for (auto _ : state) {
    auto r = cts::build_topology(rb.sinks, &an, mods, opts);
    benchmark::DoNotOptimize(r.topo.root());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TopologyConstructionVsN)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity(benchmark::oNSquared)
    ->Unit(benchmark::kMillisecond);

void BM_ClusteredVsFlatConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool clustered = state.range(1) != 0;
  benchdata::RBenchSpec spec{"s", n, 40000.0, 0.005, 0.08, 10};
  const auto rb = benchdata::generate_rbench(spec);
  const auto wl = workload_for(32, n, 4000, 10);
  const activity::ActivityAnalyzer an(wl.rtl, wl.stream);
  const auto mods = cts::identity_modules(n);
  cts::BuildOptions opts;
  opts.cost = cts::MergeCost::SwitchedCapacitance;
  opts.control_point = rb.die.center();
  for (auto _ : state) {
    if (clustered) {
      cts::ClusterOptions copts;
      copts.build = opts;
      auto r = cts::build_topology_clustered(rb.sinks, &an, mods, copts);
      benchmark::DoNotOptimize(r.topo.root());
    } else {
      auto r = cts::build_topology(rb.sinks, &an, mods, opts);
      benchmark::DoNotOptimize(r.topo.root());
    }
  }
}
BENCHMARK(BM_ClusteredVsFlatConstruction)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({8000, 0})
    ->Args({8000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndR1R2(benchmark::State& state) {
  const char* name = state.range(0) == 1 ? "r1" : "r2";
  const bench::Instance inst = bench::make_instance(name);
  const core::GatedClockRouter router(inst.design);
  for (auto _ : state) {
    auto r = bench::run_style(router, core::TreeStyle::GatedReduced);
    benchmark::DoNotOptimize(r.swcap.total_swcap());
  }
}
BENCHMARK(BM_EndToEndR1R2)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Complexity validation: O(B + K^2 N^2) construction ===\n"
            << "(see the google-benchmark complexity fits below)\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

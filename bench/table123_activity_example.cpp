/// \file table123_activity_example.cpp
/// Regenerates the worked example of paper section 3: Table 1 (RTL
/// description), Table 2 (Instruction Frequency Table) and Table 3
/// (Instruction Transition - Module Activation Table), plus the quoted
/// probabilities P(M1), P(EN{M5,M6}) and P_tr(EN{M5,M6}).
/// The timed section benchmarks table construction and the two query paths
/// (table-driven vs brute-force rescan) whose gap motivates section 3.3.

#include <iostream>
#include <memory>
#include <sstream>

#include "activity/analyzer.h"
#include "activity/brute_force.h"
#include "benchdata/paper_example.h"
#include "common.h"
#include "eval/table.h"

using namespace gcr;

namespace {

void print_tables() {
  const auto ex = benchdata::paper_example();
  const activity::ActivityAnalyzer an(ex.rtl, ex.stream);

  std::cout << "=== Table 1: RTL description of instructions ===\n";
  eval::Table t1({"Instruction", "Used Modules"});
  for (int i = 0; i < ex.rtl.num_instructions(); ++i) {
    std::ostringstream mods;
    ex.rtl.module_set(i).for_each([&](int m) { mods << 'M' << m + 1 << ' '; });
    t1.add_row({"I" + std::to_string(i + 1), mods.str()});
  }
  t1.print(std::cout);

  std::cout << "\n=== Table 2: Instruction Frequency Table ===\n";
  eval::Table t2({"Instruction", "Probability"});
  for (int i = 0; i < 4; ++i)
    t2.add_row({"I" + std::to_string(i + 1),
                eval::Table::num(an.ift().prob(i), 2)});
  t2.print(std::cout);

  std::cout << "\n=== Table 3: Instruction Transition - Module Activation "
               "Table ===\n";
  eval::Table t3({"Prob.", "Instr.", "M1", "M2", "M3", "M4", "M5", "M6"});
  const char* tags[] = {"00", "01", "10", "11"};
  for (const auto& row : an.imatt().rows()) {
    std::vector<std::string> cells{
        eval::Table::num(row.prob, 3),
        "I" + std::to_string(row.cur + 1) + " I" + std::to_string(row.nxt + 1)};
    for (int m = 0; m < 6; ++m)
      cells.push_back(tags[activity::Imatt::activation_tag(ex.rtl, row, m)]);
    t3.add_row(std::move(cells));
  }
  t3.print(std::cout);

  std::cout << "\n=== Quoted probabilities (paper section 3.2) ===\n";
  const activity::BruteForceActivity bf(ex.rtl, ex.stream);
  activity::ModuleSet m1(6);
  m1.set(0);
  activity::ModuleSet m56(6);
  m56.set(4);
  m56.set(5);
  eval::Table q({"quantity", "paper", "table-driven", "brute-force"});
  q.add_row({"P(M1)", "0.75",
             eval::Table::num(an.signal_prob_of_modules(m1), 4),
             eval::Table::num(bf.signal_prob(m1), 4)});
  q.add_row({"P(EN{M5,M6})", "0.55",
             eval::Table::num(an.signal_prob_of_modules(m56), 4),
             eval::Table::num(bf.signal_prob(m56), 4)});
  q.add_row({"Ptr(EN{M5,M6})", "11/19 = 0.5789",
             eval::Table::num(an.transition_prob_of_modules(m56), 4),
             eval::Table::num(bf.transition_prob(m56), 4)});
  q.print(std::cout);
  std::cout << '\n';
}

const perf::Registrar reg_build{"table123/build_tables", [] {
  auto ex = std::make_shared<const benchdata::PaperExample>(
      benchdata::paper_example());
  return [ex] {
    activity::ActivityAnalyzer an(ex->rtl, ex->stream);
    perf::do_not_optimize(an.ift().prob(0));
  };
}};

const perf::Registrar reg_table_query{"table123/query/table", [] {
  auto ex = std::make_shared<const benchdata::PaperExample>(
      benchdata::paper_example());
  auto an =
      std::make_shared<const activity::ActivityAnalyzer>(ex->rtl, ex->stream);
  activity::ModuleSet s(6);
  s.set(4);
  s.set(5);
  // ex stays captured: the analyzer references its rtl, not a copy.
  return [ex, an, s] {
    perf::do_not_optimize(an->signal_prob_of_modules(s));
    perf::do_not_optimize(an->transition_prob_of_modules(s));
  };
}};

const perf::Registrar reg_brute_query{"table123/query/brute_force", [] {
  auto ex = std::make_shared<const benchdata::PaperExample>(
      benchdata::paper_example());
  auto bf = std::make_shared<const activity::BruteForceActivity>(ex->rtl,
                                                                 ex->stream);
  activity::ModuleSet s(6);
  s.set(4);
  s.set(5);
  // ex stays captured: BruteForceActivity rescans it on every query.
  return [ex, bf, s] {
    perf::do_not_optimize(bf->signal_prob(s));
    perf::do_not_optimize(bf->transition_prob(s));
  };
}};

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, print_tables);
}

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "activity/analyzer.h"
#include "clocktree/elmore.h"
#include "clocktree/bounded.h"
#include "clocktree/embed.h"
#include "clocktree/routed_tree.h"
#include "core/design.h"
#include "cts/greedy.h"
#include "gating/controller.h"
#include "gating/gate_reduction.h"
#include "gating/swcap.h"
#include "guard/deadline.h"
#include "guard/status.h"
#include "tech/params.h"

/// \file router.h
/// The paper's PROCEDURE GatedClockRouting (section 4.2), packaged as the
/// library's top-level API. One router instance owns the activity engine
/// built from the design's instruction stream; route() runs the full flow
/// for a chosen tree style:
///
///   Buffered      -- conventional baseline: nearest-neighbor topology,
///                    half-size buffers on every edge, no enables.
///   Gated         -- the paper's Eq. 3 greedy with a masking gate on every
///                    edge (section 5.1 "gated").
///   GatedReduced  -- Gated followed by the gate-reduction heuristic and a
///                    re-embedding with the surviving gates (section 4.3).

namespace gcr::core {

enum class TreeStyle { Buffered, Gated, GatedReduced };

/// Topology generation scheme for the gated styles (Buffered always uses
/// nearest-neighbor, the conventional baseline).
enum class TopologyScheme {
  MinSwitchedCap,   ///< the paper's Eq. 3 greedy
  NearestNeighbor,  ///< geometry-only greedy [Edahiro'91]
  ActivityOnly,     ///< joint-activity greedy ([Tellez et al.'95] style)
  Mmm,              ///< top-down means-and-medians [Jackson et al.'90]
};

struct RouterOptions {
  TreeStyle style{TreeStyle::GatedReduced};
  TopologyScheme topology{TopologyScheme::MinSwitchedCap};
  /// Two-level clustered construction (greedy within grid cells, then over
  /// cell subtrees): near-linear scaling for large N at a small wirelength
  /// premium. Applies to the greedy schemes of gated styles.
  bool clustered{false};
  gating::GateReductionParams reduction{};
  /// When set (GatedReduced only), sweep the reduction-strength knob and
  /// keep the gate set minimizing total switched capacitance -- the
  /// operating-point selection of the paper's Figure 5 ("we controlled the
  /// number of gates by giving different parameters"). Overrides
  /// `reduction`.
  bool auto_tune_reduction{false};
  /// Size gates per merge to minimize wire (paper section 1: gates "can be
  /// sized to adjust the phase delay"); Unit reproduces the base flow.
  ct::GateSizing gate_sizing{ct::GateSizing::Unit};
  /// Skew budget [ohm*pF]. 0 routes with exact zero skew (the paper's
  /// constraint); > 0 uses the bounded-skew engine, trading sink skew for
  /// the snake wirelength exact balancing would pay. Ignores gate_sizing.
  double skew_bound{0.0};
  int controller_partitions{1};  ///< perfect square; 1 = centralized CP
  /// Worker threads for topology construction (gcr::par). 0 resolves to
  /// the GCR_THREADS environment default (else the hardware thread count);
  /// 1 runs serially. Results are bit-identical at every setting -- see
  /// docs/parallelism.md.
  int num_threads{0};
  /// Serve the greedy's best-partner queries from the maintained dynamic
  /// bucket index (cts::BuildOptions::partner_index): near-linear topology
  /// construction, bit-identical trees. `false` falls back to the
  /// exhaustive rescan engine -- the reference `gcr_check --index-diff`
  /// differential-checks against.
  bool partner_index{true};
  tech::TechParams tech{};
};

struct RouterResult;

/// Optional debug self-check hook: called with the finished result just
/// before route() returns. gcr::verify installs its invariant checker here
/// (verify::make_self_check); the hook may throw to reject the result.
/// Kept outside RouterOptions so option structs stay value-comparable and
/// cheap to copy in sweeps.
using SelfCheckHook =
    std::function<void(const RouterResult&, const RouterOptions&)>;

struct RouterResult {
  ct::RoutedTree tree;
  gating::NodeActivity activity;
  gating::SwCapReport swcap;
  ct::DelayReport delays;
  int gates_before_reduction{0};  ///< 2N-2 for gated styles, 0 for buffered

  /// Fraction of gates removed by the reduction heuristic.
  [[nodiscard]] double gate_reduction_pct() const {
    if (gates_before_reduction == 0) return 0.0;
    return 100.0 *
           (1.0 - static_cast<double>(tree.num_gates()) /
                      static_cast<double>(gates_before_reduction));
  }
};

/// What route_guarded() returns: the result when the run completed, plus
/// every diagnostic collected along the way (validation findings, the
/// cancellation record, detached-merge warnings). A partial outcome still
/// tells the caller which phases finished before the run stopped.
struct RouteOutcome {
  std::optional<RouterResult> result;
  guard::Diag diag;
  std::vector<std::string> phases_completed;
  std::string aborted_phase;  ///< phase the deadline fired in ("" when none)
  bool cancelled{false};

  [[nodiscard]] bool ok() const { return result.has_value(); }
  /// Exit code under the CLI contract: 0 when a result exists (warnings
  /// do not fail a run), else the worst collected diagnostic's code.
  [[nodiscard]] int exit_code() const {
    return ok() ? guard::kExitOk : diag.exit_code();
  }
};

class GatedClockRouter {
 public:
  explicit GatedClockRouter(Design design);

  // Self-referential: analyzer_ points into design_, so a moved or copied
  // router would keep reading the original object. Construct in place.
  GatedClockRouter(const GatedClockRouter&) = delete;
  GatedClockRouter& operator=(const GatedClockRouter&) = delete;
  GatedClockRouter(GatedClockRouter&&) = delete;
  GatedClockRouter& operator=(GatedClockRouter&&) = delete;

  [[nodiscard]] const Design& design() const { return design_; }
  [[nodiscard]] const activity::ActivityAnalyzer& analyzer() const {
    return analyzer_;
  }

  /// Run the full flow for the requested style. When `self_check` is set it
  /// runs on the finished result (after observability bookkeeping) and may
  /// throw; auto-tune candidate results are not individually checked.
  /// Throws guard::GuardError when the design fails (lenient) validation
  /// or an internal numeric guard trips; equivalent to route_guarded()
  /// with an unlimited deadline plus a throw on the first error.
  [[nodiscard]] RouterResult route(const RouterOptions& opts,
                                   const SelfCheckHook& self_check = {}) const;

  /// The guarded flow: validates the design (leniently -- out-of-die,
  /// duplicate and zero-cap sinks become warnings), installs `deadline` as
  /// the ambient deadline for the run, and converts cancellation and
  /// guard errors into diagnostics on the outcome instead of exceptions.
  /// Non-guard exceptions (e.g. a rejecting self-check hook) propagate
  /// unchanged. Deadline polls sit only at deterministic positions in the
  /// serial control flow, so behavior is bit-identical at every thread
  /// width (docs/robustness.md).
  [[nodiscard]] RouteOutcome route_guarded(
      const RouterOptions& opts,
      const guard::Deadline& deadline = guard::Deadline(),
      const SelfCheckHook& self_check = {}) const;

 private:
  RouterResult route_impl(const RouterOptions& opts,
                          const SelfCheckHook& self_check,
                          std::vector<std::string>* phases) const;

  Design design_;
  std::vector<int> leaf_module_;
  activity::ActivityAnalyzer analyzer_;
};

}  // namespace gcr::core

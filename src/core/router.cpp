#include "core/router.h"

#include <cassert>
#include <limits>

#include "clocktree/embed.h"
#include "clocktree/zskew.h"
#include "cts/clustered.h"
#include "cts/mmm.h"
#include "guard/validate.h"
#include "log/logger.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace gcr::core {

namespace {

const char* log_style_name(TreeStyle s) {
  switch (s) {
    case TreeStyle::Buffered: return "buffered";
    case TreeStyle::Gated: return "gated";
    case TreeStyle::GatedReduced: return "reduced";
  }
  return "?";
}

const char* log_topology_name(TopologyScheme t) {
  switch (t) {
    case TopologyScheme::MinSwitchedCap: return "swcap";
    case TopologyScheme::NearestNeighbor: return "nn";
    case TopologyScheme::ActivityOnly: return "activity";
    case TopologyScheme::Mmm: return "mmm";
  }
  return "?";
}

}  // namespace

GatedClockRouter::GatedClockRouter(Design design)
    : design_(std::move(design)),
      leaf_module_(design_.resolved_sink_modules()),
      analyzer_(design_.rtl, design_.stream) {
  assert(static_cast<int>(leaf_module_.size()) == design_.num_sinks());
}

RouterResult GatedClockRouter::route(const RouterOptions& opts,
                                     const SelfCheckHook& self_check) const {
  RouteOutcome out = route_guarded(opts, guard::Deadline(), self_check);
  if (!out.result)
    throw guard::GuardError(out.diag.first_error());
  return std::move(*out.result);
}

RouteOutcome GatedClockRouter::route_guarded(const RouterOptions& opts,
                                             const guard::Deadline& deadline,
                                             const SelfCheckHook& self_check)
    const {
  RouteOutcome out;
  guard::ValidateOptions vopts;
  vopts.strict = false;  // the router tolerates what it can route
  if (!guard::validate_design(design_, out.diag, vopts)) return out;

  GCR_LOG_INFO("route.start")
      .kv("sinks", design_.num_sinks())
      .kv("style", log_style_name(opts.style))
      .kv("topology", log_topology_name(opts.topology))
      .kv("clustered", opts.clustered)
      .kv("threads", opts.num_threads);
  const std::uint64_t detached_before = ct::detached_merge_count();
  const guard::DeadlineScope scope(deadline);
  try {
    out.result = route_impl(opts, self_check, &out.phases_completed);
  } catch (const guard::CancelledError& e) {
    out.cancelled = true;
    out.aborted_phase = e.phase();
    out.diag.report(e.status());
    GCR_LOG_WARN("route.cancelled").kv("phase", e.phase());
  } catch (const guard::GuardError& e) {
    out.diag.report(e.status());
  }
  const std::uint64_t detached = ct::detached_merge_count() - detached_before;
  if (detached > 0)
    out.diag.warning(guard::Code::DetachedMerge,
                     std::to_string(detached) +
                         " zero-skew merges fell back to the detached "
                         "nearest-region merge");
  if (out.result) {
    GCR_LOG_INFO("route.done")
        .kv("sinks", out.result->tree.num_leaves)
        .kv("gates", out.result->tree.num_gates())
        .kv("total_swcap", out.result->swcap.total_swcap())
        .kv("skew", out.result->delays.skew());
  } else {
    GCR_LOG_ERROR("route.failed")
        .kv("cancelled", out.cancelled)
        .msg(out.diag.first_error().message);
  }
  return out;
}

RouterResult GatedClockRouter::route_impl(const RouterOptions& opts,
                                          const SelfCheckHook& self_check,
                                          std::vector<std::string>* phases)
    const {
  const obs::ScopedTimer obs_route_timer("route");
  const auto phase_done = [&](const char* name) {
    if (phases != nullptr) phases->emplace_back(name);
  };
  const bool buffered = opts.style == TreeStyle::Buffered;
  const tech::TechParams build_tech =
      buffered ? opts.tech.as_buffered() : opts.tech;
  const geom::Point cp = design_.die.center();

  // 1. Topology: nearest-neighbor for the baseline; the selected scheme
  //    (Eq. 3 by default) for the gated styles.
  guard::poll_deadline("topology");
  cts::BuildResult built = [&] {
    const obs::ScopedTimer obs_timer("topology");
    if (!buffered && opts.topology == TopologyScheme::Mmm) {
      cts::BuildResult r{cts::build_mmm_topology(design_.sinks), {}, {}, {}};
      cts::TopologyActivity act_topo =
          cts::annotate_topology(r.topo, analyzer_, leaf_module_);
      r.mask = std::move(act_topo.mask);
      r.p_en = std::move(act_topo.p_en);
      r.p_tr = std::move(act_topo.p_tr);
      return r;
    }
    cts::BuildOptions bopts;
    if (buffered) {
      bopts.cost = cts::MergeCost::NearestNeighbor;
    } else {
      switch (opts.topology) {
        case TopologyScheme::MinSwitchedCap:
          bopts.cost = cts::MergeCost::SwitchedCapacitance;
          break;
        case TopologyScheme::NearestNeighbor:
          bopts.cost = cts::MergeCost::NearestNeighbor;
          break;
        case TopologyScheme::ActivityOnly:
          bopts.cost = cts::MergeCost::ActivityOnly;
          break;
        case TopologyScheme::Mmm: break;  // handled above
      }
    }
    bopts.gated_edges = true;  // buffers balance like gates (buffered_view)
    bopts.control_point = cp;
    bopts.num_threads = opts.num_threads;
    bopts.partner_index = opts.partner_index;
    bopts.tech = build_tech;
    if (!buffered && opts.clustered) {
      cts::ClusterOptions copts;
      copts.build = bopts;
      return cts::build_topology_clustered(design_.sinks, &analyzer_,
                                           leaf_module_, copts);
    }
    return cts::build_topology(design_.sinks, &analyzer_, leaf_module_,
                               bopts);
  }();
  phase_done("topology");

  // Node activity depends only on the topology, not the embedding.
  gating::NodeActivity act{built.mask, built.p_en, built.p_tr};
  const gating::ControllerPlacement ctrl = [&] {
    const obs::ScopedTimer obs_timer("controller");
    return gating::ControllerPlacement(design_.die, opts.controller_partitions);
  }();
  const gating::CellStyle cell_style =
      buffered ? gating::CellStyle::Buffer : gating::CellStyle::MaskingGate;

  // 2. Gate assignment and embedding.
  const int n = built.topo.num_nodes();
  std::vector<bool> gated(static_cast<std::size_t>(n), true);
  gated[static_cast<std::size_t>(built.topo.root())] = false;

  ct::EmbedOptions eopts;
  eopts.root_hint = cp;
  eopts.sizing = opts.gate_sizing;
  ct::BoundedEmbedOptions bopts_embed;
  bopts_embed.root_hint = cp;
  bopts_embed.skew_bound = opts.skew_bound;
  const auto do_embed = [&](const std::vector<bool>& gate_set) {
    guard::poll_deadline("embed");
    const obs::ScopedTimer obs_timer("embed");
    if (obs::metrics_enabled()) {
      obs::Registry::global().counter("embed.passes").inc();
    }
    return opts.skew_bound > 0.0
               ? ct::embed_bounded(built.topo, design_.sinks, gate_set,
                                   build_tech, bopts_embed)
               : ct::embed(built.topo, design_.sinks, gate_set, build_tech,
                           eopts);
  };

  int gates_before = 0;
  ct::RoutedTree tree;
  gating::SwCapReport swcap;
  if (opts.style == TreeStyle::GatedReduced) {
    // The reduction rules consult the fully gated embedding for edge
    // lengths / caps, then the tree is re-embedded with the reduced set so
    // the skew constraint holds for the final gate assignment.
    const ct::RoutedTree full = do_embed(gated);
    gates_before = full.num_gates();
    if (opts.auto_tune_reduction) {
      double best = std::numeric_limits<double>::infinity();
      for (int step = 0; step <= 10; ++step) {
        guard::poll_deadline("reduction");
        const auto params =
            gating::GateReductionParams::from_strength(0.1 * step);
        auto cand_gates =
            gating::reduce_gates(full, built.p_en, build_tech, params);
        auto cand_tree = do_embed(cand_gates);
        auto cand_swcap =
            gating::evaluate_swcap(cand_tree, act, ctrl, build_tech, cell_style);
        if (cand_swcap.total_swcap() < best) {
          best = cand_swcap.total_swcap();
          tree = std::move(cand_tree);
          swcap = cand_swcap;
        }
      }
    } else {
      gated = gating::reduce_gates(full, built.p_en, build_tech, opts.reduction);
      tree = do_embed(gated);
      swcap = gating::evaluate_swcap(tree, act, ctrl, build_tech, cell_style);
    }
  } else {
    tree = do_embed(gated);
    gates_before = tree.num_gates();
    swcap = gating::evaluate_swcap(tree, act, ctrl, build_tech, cell_style);
  }
  phase_done(opts.style == TreeStyle::GatedReduced ? "reduction" : "embed");

  // 3. Package the result.
  guard::poll_deadline("delays");
  RouterResult res;
  res.gates_before_reduction = buffered ? 0 : gates_before;
  res.activity = std::move(act);
  res.swcap = swcap;
  {
    const obs::ScopedTimer obs_timer("delays");
    res.delays = ct::elmore_delays(tree, build_tech);
  }
  phase_done("delays");
  res.tree = std::move(tree);
  if (obs::metrics_enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("router.runs").inc();
    reg.gauge("router.total_swcap").set(res.swcap.total_swcap());
    reg.gauge("router.num_gates").set(res.tree.num_gates());
  }
  if (self_check) self_check(res, opts);
  return res;
}

}  // namespace gcr::core

#pragma once

#include <vector>

#include "activity/rtl.h"
#include "activity/stream.h"
#include "clocktree/sink.h"
#include "geom/die.h"

/// \file design.h
/// Everything the gated clock router consumes: sink locations and loads,
/// the die, the RTL description (instruction -> used modules) and the
/// instruction stream from instruction-level simulation.

namespace gcr::core {

struct Design {
  geom::DieArea die;
  ct::SinkList sinks;
  activity::RtlDescription rtl;
  activity::InstructionStream stream;
  /// sink_module[i] = module id of sink i. Empty means identity (sink i is
  /// module i), which requires rtl.num_modules() >= sinks.size().
  std::vector<int> sink_module;

  [[nodiscard]] int num_sinks() const { return static_cast<int>(sinks.size()); }

  [[nodiscard]] std::vector<int> resolved_sink_modules() const {
    if (!sink_module.empty()) return sink_module;
    std::vector<int> ids(sinks.size());
    for (std::size_t i = 0; i < sinks.size(); ++i) ids[i] = static_cast<int>(i);
    return ids;
  }
};

}  // namespace gcr::core

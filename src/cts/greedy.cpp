#include "cts/greedy.h"

#include <cassert>
#include <limits>

#include "obs/metrics.h"
#include "obs/session.h"

namespace gcr::cts {

namespace {

struct Candidate {
  int node{-1};  ///< topology node id
  ct::SubtreeTap tap;
  activity::ActivationMask mask;
  double p_en{1.0};
  double p_tr{0.0};
  double cp_dist{0.0};  ///< dist(CP, mid(ms)) -- Eq. 3 star estimate
  bool alive{false};
};

struct BestPartner {
  double cost{std::numeric_limits<double>::infinity()};
  int partner{-1};
  bool stale{true};
};

/// The chosen merge and its Eq. 3 cost (the switched-cap delta).
struct Pick {
  int a{-1};
  int b{-1};
  double cost{0.0};
};

class GreedyEngine {
 public:
  GreedyEngine(std::span<const SeedSink> seeds,
               const activity::ActivityAnalyzer* analyzer,
               const BuildOptions& opts)
      : opts_(opts),
        analyzer_(analyzer),
        topo_(static_cast<int>(seeds.size())) {
    assert(!seeds.empty());
    assert(opts.cost == MergeCost::NearestNeighbor || analyzer != nullptr);
    const int n = static_cast<int>(seeds.size());
    cands_.resize(static_cast<std::size_t>(2 * n - 1));
    best_.resize(cands_.size());
    for (int i = 0; i < n; ++i) {
      const SeedSink& seed = seeds[static_cast<std::size_t>(i)];
      Candidate& c = cands_[static_cast<std::size_t>(i)];
      c.node = i;
      c.tap.ms = geom::TiltedRect::from_point(seed.sink.loc);
      c.tap.delay = 0.0;
      c.tap.cap = seed.sink.cap;
      c.alive = true;
      if (analyzer_) {
        c.mask = seed.mask;
        c.p_en = analyzer_->signal_prob(c.mask);
        c.p_tr = analyzer_->transition_prob(c.mask);
      }
      c.cp_dist = geom::manhattan_dist(opts.control_point, c.tap.ms.center());
      active_.push_back(i);
    }
  }

  BuildResult run() {
    const int n = topo_.num_leaves();
    obs::TraceSink* trace = obs::active_trace();
    for (int step = 0; step + 1 < n; ++step) {
      const Pick pick = pick_min_pair();
      if (trace) trace_merge_decision(*trace, pick);
      merge(pick.a, pick.b);
      if (obs::metrics_enabled()) [[unlikely]] {
        static obs::Counter& c = obs::Registry::global().counter("cts.merges");
        c.inc();
      }
    }
    BuildResult out{std::move(topo_), {}, {}, {}};
    if (analyzer_) {
      out.mask.reserve(cands_.size());
      out.p_en.reserve(cands_.size());
      out.p_tr.reserve(cands_.size());
      for (const Candidate& c : cands_) {
        out.mask.push_back(c.mask);
        out.p_en.push_back(c.p_en);
        out.p_tr.push_back(c.p_tr);
      }
    }
    return out;
  }

 private:
  /// Cost of merging two live candidates. Deliberately uninstrumented --
  /// this is the innermost loop; callers bulk-count candidate evaluations
  /// per scan instead.
  double pair_cost(const Candidate& x, const Candidate& y) const {
    if (opts_.cost == MergeCost::NearestNeighbor)
      return x.tap.ms.distance_to(y.tap.ms);
    if (opts_.cost == MergeCost::ActivityOnly) {
      // Joint enable probability dominates; distance only breaks ties
      // (scaled well below the smallest probability step of the stream).
      const double p_union = analyzer_->signal_prob(x.mask | y.mask);
      return p_union + 1e-12 * x.tap.ms.distance_to(y.tap.ms);
    }
    // Eq. 3: switched capacitance added by this merge (probability weights
    // floored; see BuildOptions::min_prob_weight).
    const ct::MergeResult m = ct::zero_skew_merge(
        x.tap, opts_.gated_edges, y.tap, opts_.gated_edges, opts_.tech);
    const tech::TechParams& t = opts_.tech;
    const double px = std::max(x.p_en, opts_.min_prob_weight);
    const double py = std::max(y.p_en, opts_.min_prob_weight);
    return (t.wire_cap(m.len_a) + x.tap.cap) * px +
           (t.wire_cap(m.len_b) + y.tap.cap) * py +
           (t.wire_cap(x.cp_dist) + t.gate_enable_cap) * x.p_tr +
           (t.wire_cap(y.cp_dist) + t.gate_enable_cap) * y.p_tr;
  }

  void recompute_best(int i) {
    if (obs::metrics_enabled()) [[unlikely]] {
      static obs::Counter& recomputes =
          obs::Registry::global().counter("cts.best_partner_recomputes");
      static obs::Counter& evals =
          obs::Registry::global().counter("cts.candidate_evals");
      recomputes.inc();
      evals.inc(active_.size() - 1);
    }
    BestPartner bp;
    const Candidate& ci = cands_[static_cast<std::size_t>(i)];
    for (const int j : active_) {
      if (j == i) continue;
      const double cost = pair_cost(ci, cands_[static_cast<std::size_t>(j)]);
      if (cost < bp.cost) {
        bp.cost = cost;
        bp.partner = j;
      }
    }
    bp.stale = false;
    best_[static_cast<std::size_t>(i)] = bp;
  }

  Pick pick_min_pair() {
    assert(active_.size() >= 2);
    Pick pick;
    double minc = std::numeric_limits<double>::infinity();
    for (const int i : active_) {
      BestPartner& bp = best_[static_cast<std::size_t>(i)];
      if (bp.stale || !cands_[static_cast<std::size_t>(bp.partner)].alive)
        recompute_best(i);
      if (best_[static_cast<std::size_t>(i)].cost < minc) {
        minc = best_[static_cast<std::size_t>(i)].cost;
        pick.a = i;
      }
    }
    pick.b = best_[static_cast<std::size_t>(pick.a)].partner;
    pick.cost = minc;
    return pick;
  }

  /// One instant event per Eq. 3 decision: the chosen pair, its
  /// switched-cap delta, the runner-up (cheapest alternative merge, i.e.
  /// the best pair that is not the chosen one or its mirror), and the
  /// current front size. Every best_ entry is fresh here: pick_min_pair
  /// just revalidated them.
  void trace_merge_decision(obs::TraceSink& trace, const Pick& pick) const {
    int ru = -1;
    double ru_cost = std::numeric_limits<double>::infinity();
    for (const int i : active_) {
      if (i == pick.a) continue;
      const BestPartner& bp = best_[static_cast<std::size_t>(i)];
      if (i == pick.b && bp.partner == pick.a) continue;
      if (bp.cost < ru_cost) {
        ru_cost = bp.cost;
        ru = i;
      }
    }
    obs::Session* s = obs::current();
    obs::TraceEvent e;
    e.name = "merge";
    e.cat = "cts";
    e.ph = 'i';
    e.ts_us = s ? s->now_us() : 0.0;
    e.args.push_back(obs::TraceArg::num("a", static_cast<long long>(pick.a)));
    e.args.push_back(obs::TraceArg::num("b", static_cast<long long>(pick.b)));
    e.args.push_back(obs::TraceArg::num("cost", pick.cost));
    if (ru >= 0) {
      e.args.push_back(obs::TraceArg::num("runner_up_a",
                                          static_cast<long long>(ru)));
      e.args.push_back(obs::TraceArg::num(
          "runner_up_b",
          static_cast<long long>(best_[static_cast<std::size_t>(ru)].partner)));
      e.args.push_back(obs::TraceArg::num("runner_up_cost", ru_cost));
    }
    e.args.push_back(obs::TraceArg::num(
        "front", static_cast<long long>(active_.size())));
    trace.event(std::move(e));
  }

  void merge(int a, int b) {
    Candidate& ca = cands_[static_cast<std::size_t>(a)];
    Candidate& cb = cands_[static_cast<std::size_t>(b)];
    const ct::MergeResult m = ct::zero_skew_merge(
        ca.tap, opts_.gated_edges, cb.tap, opts_.gated_edges, opts_.tech);

    const int id = topo_.merge(ca.node, cb.node);
    Candidate& cn = cands_[static_cast<std::size_t>(id)];
    cn.node = id;
    cn.tap.ms = m.ms;
    cn.tap.delay = m.delay;
    cn.tap.cap = m.cap;
    cn.alive = true;
    if (analyzer_) {
      cn.mask = ca.mask | cb.mask;
      cn.p_en = analyzer_->signal_prob(cn.mask);
      cn.p_tr = analyzer_->transition_prob(cn.mask);
    }
    cn.cp_dist = geom::manhattan_dist(opts_.control_point, cn.tap.ms.center());

    ca.alive = false;
    cb.alive = false;
    std::erase(active_, a);
    std::erase(active_, b);
    if (obs::metrics_enabled()) [[unlikely]] {
      static obs::Counter& evals =
          obs::Registry::global().counter("cts.candidate_evals");
      evals.inc(active_.size());
    }

    // The new candidate may beat existing best partners; refresh in one
    // scan and compute its own best on the way.
    BestPartner bp;
    for (const int j : active_) {
      const double cost = pair_cost(cn, cands_[static_cast<std::size_t>(j)]);
      if (cost < bp.cost) {
        bp.cost = cost;
        bp.partner = j;
      }
      BestPartner& bj = best_[static_cast<std::size_t>(j)];
      if (!bj.stale && cost < bj.cost) {
        bj.cost = cost;
        bj.partner = id;
      }
    }
    bp.stale = false;
    best_[static_cast<std::size_t>(id)] = bp;
    active_.push_back(id);
  }

  BuildOptions opts_;
  const activity::ActivityAnalyzer* analyzer_;
  ct::Topology topo_;
  std::vector<Candidate> cands_;
  std::vector<BestPartner> best_;
  std::vector<int> active_;
};

}  // namespace

BuildResult build_topology_seeded(std::span<const SeedSink> seeds,
                                  const activity::ActivityAnalyzer* analyzer,
                                  const BuildOptions& opts) {
  if (seeds.size() == 1) {
    BuildResult out{ct::Topology(1), {}, {}, {}};
    if (analyzer) {
      out.mask.push_back(seeds[0].mask);
      out.p_en.push_back(analyzer->signal_prob(out.mask[0]));
      out.p_tr.push_back(analyzer->transition_prob(out.mask[0]));
    }
    return out;
  }
  GreedyEngine engine(seeds, analyzer, opts);
  return engine.run();
}

BuildResult build_topology(std::span<const ct::Sink> sinks,
                           const activity::ActivityAnalyzer* analyzer,
                           std::span<const int> leaf_module,
                           const BuildOptions& opts) {
  std::vector<SeedSink> seeds;
  seeds.reserve(sinks.size());
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    SeedSink s{sinks[i], activity::ActivationMask()};
    if (analyzer) s.mask = analyzer->module_mask(leaf_module[i]);
    seeds.push_back(std::move(s));
  }
  return build_topology_seeded(seeds, analyzer, opts);
}

std::vector<int> identity_modules(int num_sinks) {
  std::vector<int> ids(static_cast<std::size_t>(num_sinks));
  for (int i = 0; i < num_sinks; ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

TopologyActivity annotate_topology(const ct::Topology& topo,
                                   const activity::ActivityAnalyzer& analyzer,
                                   std::span<const int> leaf_module) {
  const int n = topo.num_nodes();
  TopologyActivity act;
  act.mask.assign(static_cast<std::size_t>(n),
                  activity::ActivationMask(analyzer.num_instructions()));
  act.p_en.assign(static_cast<std::size_t>(n), 0.0);
  act.p_tr.assign(static_cast<std::size_t>(n), 0.0);
  for (int id = 0; id < n; ++id) {  // ids ascend bottom-up
    const ct::TreeNode& node = topo.node(id);
    auto& mask = act.mask[static_cast<std::size_t>(id)];
    if (node.is_leaf()) {
      mask = analyzer.module_mask(leaf_module[static_cast<std::size_t>(id)]);
    } else {
      mask = act.mask[static_cast<std::size_t>(node.left)] |
             act.mask[static_cast<std::size_t>(node.right)];
    }
    act.p_en[static_cast<std::size_t>(id)] = analyzer.signal_prob(mask);
    act.p_tr[static_cast<std::size_t>(id)] = analyzer.transition_prob(mask);
  }
  return act;
}

}  // namespace gcr::cts

#include "cts/greedy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "cts/partner_index.h"
#include "guard/deadline.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "par/pool.h"
#include "prof/flightrec.h"

namespace gcr::cts {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative slack applied to the Eq. 3 lower bound before it is compared
/// against an incumbent cost: the bound and the exact cost are computed by
/// different expressions, so a few ulps of rounding must never turn a
/// legitimate candidate into a "provably" dominated one.
constexpr double kLbSlack = 1.0 - 1e-9;

/// Chunk grains for the sharded scans. Fixed constants: chunk boundaries
/// (and therefore every chunk-local pruning decision) depend only on the
/// range, never on the thread count -- the determinism contract.
constexpr std::int64_t kRecomputeGrain = 16;  ///< items are O(front) scans
constexpr std::int64_t kRefreshGrain = 64;    ///< items are one pair cost

/// Width-aware serial cutover (docs/observability.md worked diagnosis):
/// a pool dispatch costs ~29us of wakeup latency, lock traffic and
/// straggler wait, so fanning out a scan whose total work is smaller than
/// that just parks the caller while workers fight over crumbs -- the
/// measured t>1 regression. Below the cutover the same chunks run inline
/// on the calling thread (par::parallel_* with width 1), which by the
/// determinism contract computes bit-identical results; the cutover may
/// therefore depend on any estimate, however rough, without affecting the
/// built topology. 2x the dispatch cost keeps the fan-out comfortably
/// ahead of the overhead even at width 2.
constexpr std::int64_t kDispatchOverheadNs = 29'000;
constexpr std::int64_t kSerialCutoverNs = 2 * kDispatchOverheadNs;
/// Rough per-item costs for the estimate: one exact Eq. 3 pair evaluation
/// (closed-form balance split + a handful of flops), and one indexed
/// best-partner query (bucket walk + a few surviving pair evaluations).
constexpr std::int64_t kPairEvalNs = 60;
constexpr std::int64_t kIndexQueryNs = 900;

struct Candidate {
  int node{-1};  ///< topology node id
  ct::SubtreeTap tap;
  activity::ActivationMask mask;
  double p_en{1.0};
  double p_tr{0.0};
  double cp_dist{0.0};  ///< dist(CP, mid(ms)) -- Eq. 3 star estimate
  /// Floored probability weight max(p_en, min_prob_weight): the factor the
  /// Eq. 3 cost applies to this side's new clock edge.
  double p_floor{1.0};
  /// Merge-invariant part of this candidate's Eq. 3 contribution: the
  /// subtree cap re-switched through the new edge plus the enable-star
  /// terms. Everything in pair_cost except the new wire itself.
  double self_cost{0.0};
  /// Elmore branch-delay coefficients of an edge down to this subtree
  /// (delay(L) = a + b*L + (rc/2) L^2, gating per BuildOptions): what a
  /// zero-skew merge must balance, cached so lower_bound can price the
  /// snaked wire a delay-mismatched pair is forced to buy.
  ct::BranchCoeffs coeffs;
  bool alive{false};
};

struct BestPartner {
  double cost{kInf};
  int partner{-1};
  bool stale{true};
};

/// The chosen merge and its Eq. 3 cost (the switched-cap delta).
struct Pick {
  int a{-1};
  int b{-1};
  double cost{0.0};
};

/// Strict total order on candidate pairs: by cost, then by the canonical
/// (lower id, higher id) pair. This is the tie-break every scan and every
/// reduction uses, so the chosen merge is independent of scan order, of
/// the active-front permutation the swap-removes produce, and of the
/// thread count.
bool pair_less(double cost_x, int x1, int x2, double cost_y, int y1, int y2) {
  if (cost_x != cost_y) return cost_x < cost_y;
  const int xlo = std::min(x1, x2), xhi = std::max(x1, x2);
  const int ylo = std::min(y1, y2), yhi = std::max(y1, y2);
  if (xlo != ylo) return xlo < ylo;
  return xhi < yhi;
}

/// A lazy-deletion heap entry for the indexed engine: `owner`'s cached best
/// partner at the time best_[owner] was last written. Entries are never
/// removed eagerly; pop-time validation discards the ones whose owner has
/// since died or been recomputed, and *repairs* (recomputes on the spot)
/// the ones whose partner has died -- a stale cost is a lower bound on the
/// owner's true current best, so it surfaces no later than the entry that
/// replaces it and the pop order stays exact.
struct HeapEntry {
  double cost{kInf};
  int owner{-1};
  int partner{-1};
};

/// Orders a max-heap (std::priority_queue) so its top is the *minimum*
/// under the strict (cost, lower-id, higher-id) pair order. The mirror
/// entries (i best-of j, j best-of i) compare equal on purpose: they name
/// the same merge, and either one validates into the same Pick.
struct HeapEntryAfter {
  bool operator()(const HeapEntry& x, const HeapEntry& y) const {
    return pair_less(y.cost, y.owner, y.partner, x.cost, x.owner, x.partner);
  }
};

/// Uniform grid over candidate merging-segment centers. Its only job is to
/// hand recompute_best a *nearby* partner to seed the incumbent cost with,
/// so the lower-bound prune bites from the first comparisons of the scan;
/// pruning correctness never depends on the seed being the true nearest.
class SeedGrid {
 public:
  void init(int num_sinks, int capacity, double xlo, double ylo, double w,
            double h) {
    dim_ = std::max(1, static_cast<int>(
                           std::floor(std::sqrt(num_sinks / 2.0))));
    xlo_ = xlo;
    ylo_ = ylo;
    inv_w_ = dim_ / std::max(w, 1e-12);
    inv_h_ = dim_ / std::max(h, 1e-12);
    cells_.assign(static_cast<std::size_t>(dim_) * dim_, {});
    cell_of_.assign(static_cast<std::size_t>(capacity), -1);
    loc_.assign(static_cast<std::size_t>(capacity), geom::Point{0.0, 0.0});
  }

  void insert(int id, const geom::Point& c) {
    const int cell = cell_index(c);
    cells_[static_cast<std::size_t>(cell)].push_back(id);
    cell_of_[static_cast<std::size_t>(id)] = cell;
    loc_[static_cast<std::size_t>(id)] = c;
  }

  void remove(int id) {
    const int cell = cell_of_[static_cast<std::size_t>(id)];
    auto& bucket = cells_[static_cast<std::size_t>(cell)];
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      if (bucket[k] == id) {
        bucket[k] = bucket.back();
        bucket.pop_back();
        break;
      }
    }
    cell_of_[static_cast<std::size_t>(id)] = -1;
  }

  /// A near neighbor of `id` (never `id` itself): the (distance, id)-min
  /// over the first non-empty Chebyshev ring of cells around `id`'s cell.
  /// Deterministic; returns -1 when no other candidate is stored.
  [[nodiscard]] int nearest(int id) const {
    const geom::Point& c = loc_[static_cast<std::size_t>(id)];
    const int cx = std::clamp(
        static_cast<int>((c.x - xlo_) * inv_w_), 0, dim_ - 1);
    const int cy = std::clamp(
        static_cast<int>((c.y - ylo_) * inv_h_), 0, dim_ - 1);
    for (int r = 0; r < dim_; ++r) {
      int best = -1;
      double best_d = kInf;
      const auto consider_cell = [&](int x, int y) {
        if (x < 0 || x >= dim_ || y < 0 || y >= dim_) return;
        for (const int j : cells_[static_cast<std::size_t>(y) * dim_ + x]) {
          if (j == id) continue;
          const geom::Point& p = loc_[static_cast<std::size_t>(j)];
          const double d = geom::manhattan_dist(c, p);
          if (d < best_d || (d == best_d && j < best)) {
            best_d = d;
            best = j;
          }
        }
      };
      if (r == 0) {
        consider_cell(cx, cy);
      } else {
        for (int x = cx - r; x <= cx + r; ++x) {
          consider_cell(x, cy - r);
          consider_cell(x, cy + r);
        }
        for (int y = cy - r + 1; y <= cy + r - 1; ++y) {
          consider_cell(cx - r, y);
          consider_cell(cx + r, y);
        }
      }
      if (best >= 0) return best;
    }
    return -1;
  }

 private:
  [[nodiscard]] int cell_index(const geom::Point& c) const {
    const int cx = std::clamp(
        static_cast<int>((c.x - xlo_) * inv_w_), 0, dim_ - 1);
    const int cy = std::clamp(
        static_cast<int>((c.y - ylo_) * inv_h_), 0, dim_ - 1);
    return cy * dim_ + cx;
  }

  int dim_{1};
  double xlo_{0.0}, ylo_{0.0}, inv_w_{1.0}, inv_h_{1.0};
  std::vector<std::vector<int>> cells_;
  std::vector<int> cell_of_;        ///< node id -> cell (-1 when absent)
  std::vector<geom::Point> loc_;    ///< node id -> stored center
};

class GreedyEngine {
 public:
  GreedyEngine(std::span<const TapSeed> seeds,
               const activity::ActivityAnalyzer* analyzer,
               const BuildOptions& opts)
      : opts_(opts),
        analyzer_(analyzer),
        topo_(static_cast<int>(seeds.size())),
        width_(par::resolve_threads(opts.num_threads)),
        indexed_(opts.partner_index && opts.spatial_prune &&
                 opts.cost != MergeCost::ActivityOnly),
        prune_(!indexed_ && opts.spatial_prune &&
               opts.cost == MergeCost::SwitchedCapacitance) {
    assert(!seeds.empty());
    assert(opts.cost == MergeCost::NearestNeighbor || analyzer != nullptr);
    const int n = static_cast<int>(seeds.size());
    cands_.resize(static_cast<std::size_t>(2 * n - 1));
    best_.resize(cands_.size());
    pos_.assign(cands_.size(), -1);

    // Seed bounding box over merging-segment centers. Centers suffice: the
    // grid and the index only use the box for bucketing and clamp outliers
    // to the border cells, never for correctness.
    double xlo = kInf, xhi = -kInf, ylo = kInf, yhi = -kInf;
    for (const TapSeed& seed : seeds) {
      const geom::Point c = seed.tap.ms.center();
      xlo = std::min(xlo, c.x);
      xhi = std::max(xhi, c.x);
      ylo = std::min(ylo, c.y);
      yhi = std::max(yhi, c.y);
    }
    // Distance tie term for ActivityOnly: every merging segment stays
    // inside the seed bounding box, so dist <= diag and the term stays
    // below 1e-9 -- under any probability step of a < 10^9-cycle stream,
    // whatever the coordinate scale.
    const double diag = (xhi - xlo) + (yhi - ylo);
    tie_eps_ = 1e-9 / std::max(diag, 1.0);
    if (prune_) grid_.init(n, 2 * n - 1, xlo, ylo, xhi - xlo, yhi - ylo);
    if (indexed_) {
      index_.init(opts_.cost == MergeCost::NearestNeighbor
                      ? PartnerIndex::Metric::Distance
                      : PartnerIndex::Metric::SwitchedCap,
                  &opts_.tech, 2 * n - 1, n, xlo, ylo, xhi - xlo, yhi - ylo);
    }

    for (int i = 0; i < n; ++i) {
      const TapSeed& seed = seeds[static_cast<std::size_t>(i)];
      Candidate& c = cands_[static_cast<std::size_t>(i)];
      c.node = i;
      c.tap = seed.tap;
      c.alive = true;
      if (analyzer_) {
        c.mask = seed.mask;
        c.p_en = analyzer_->signal_prob(c.mask);
        c.p_tr = analyzer_->transition_prob(c.mask);
      }
      c.cp_dist = geom::manhattan_dist(opts.control_point, c.tap.ms.center());
      finish_candidate(c);
      activate(i);
    }
  }

  BuildResult run() {
    const int n = topo_.num_leaves();
    obs::TraceSink* trace = obs::active_trace();
    // Hoisted: the ambient deadline cannot change during the run, and the
    // per-merge poll sits on the serial coordinating thread -- a merge
    // either happens completely or not at all at every thread width.
    const guard::Deadline* dl = guard::current_deadline();
    if (indexed_) init_index_bests();
    for (int step = 0; step + 1 < n; ++step) {
      if (dl != nullptr && dl->expired()) throw guard::CancelledError("topology");
      const Pick pick = indexed_ ? pick_min_pair_indexed() : pick_min_pair();
      if (trace) trace_merge_decision(*trace, pick);
      merge(pick.a, pick.b);
      if (prof::recorder_enabled())
        prof::record(prof::Ev::Merge, "merge", pick.a, pick.b, pick.cost);
      if (obs::metrics_enabled()) [[unlikely]] {
        static obs::Counter& c = obs::Registry::global().counter("cts.merges");
        c.inc();
      }
    }
    BuildResult out{std::move(topo_), {}, {}, {}};
    if (analyzer_) {
      out.mask.reserve(cands_.size());
      out.p_en.reserve(cands_.size());
      out.p_tr.reserve(cands_.size());
      for (const Candidate& c : cands_) {
        out.mask.push_back(c.mask);
        out.p_en.push_back(c.p_en);
        out.p_tr.push_back(c.p_tr);
      }
    }
    return out;
  }

 private:
  /// Derived Eq. 3 fields (floored weight, merge-invariant cost part);
  /// call after p_en/p_tr/cp_dist/tap are final.
  void finish_candidate(Candidate& c) const {
    const tech::TechParams& t = opts_.tech;
    c.p_floor = std::max(c.p_en, opts_.min_prob_weight);
    c.self_cost = c.tap.cap * c.p_floor +
                  (t.wire_cap(c.cp_dist) + t.gate_enable_cap) * c.p_tr;
    c.coeffs = ct::branch_coeffs(c.tap, opts_.gated_edges, t);
  }

  /// The index's view of a candidate: merging-segment center, reach (max
  /// Manhattan distance from center to the segment -- Chebyshev half-extent
  /// in the rotated frame), and the Eq. 3 bound ingredients.
  [[nodiscard]] PartnerIndex::Item index_item(const Candidate& c) const {
    const geom::TiltedRect& ms = c.tap.ms;
    PartnerIndex::Item it;
    it.center = ms.center();
    it.reach = 0.5 * std::max(ms.uhi() - ms.ulo(), ms.whi() - ms.wlo());
    it.self_cost = c.self_cost;
    it.p_floor = c.p_floor;
    it.a_coef = c.coeffs.a;
    it.b_coef = c.coeffs.b;
    return it;
  }

  void activate(int id) {
    pos_[static_cast<std::size_t>(id)] = static_cast<int>(active_.size());
    active_.push_back(id);
    if (prune_)
      grid_.insert(id, cands_[static_cast<std::size_t>(id)].tap.ms.center());
    if (indexed_)
      index_.insert(id, index_item(cands_[static_cast<std::size_t>(id)]));
  }

  /// O(1) swap-remove from the active front (the old std::erase pair was an
  /// O(front) memmove per merge).
  void deactivate(int id) {
    const int p = pos_[static_cast<std::size_t>(id)];
    const int last = active_.back();
    active_[static_cast<std::size_t>(p)] = last;
    pos_[static_cast<std::size_t>(last)] = p;
    active_.pop_back();
    pos_[static_cast<std::size_t>(id)] = -1;
    if (prune_) grid_.remove(id);
    if (indexed_) index_.remove(id);
  }

  /// Effective width for a sharded scan whose estimated total work is
  /// `items * ns_per_item` nanoseconds: 1 (inline on the caller, no pool
  /// dispatch) below the serial cutover, the full configured width above
  /// it. Chunk boundaries depend only on the range and the grain, so the
  /// inline and fanned-out runs compute bit-identical results -- the
  /// estimate only trades wall time, never the topology.
  [[nodiscard]] int scan_width(std::int64_t items,
                               std::int64_t ns_per_item) const {
    if (width_ <= 1) return 1;
    return items * ns_per_item < kSerialCutoverNs ? 1 : width_;
  }

  /// Cost of merging two live candidates. Deliberately uninstrumented --
  /// this is the innermost loop; callers bulk-count candidate evaluations
  /// per scan instead.
  double pair_cost(const Candidate& x, const Candidate& y) const {
    if (opts_.cost == MergeCost::NearestNeighbor)
      return x.tap.ms.distance_to(y.tap.ms);
    if (opts_.cost == MergeCost::ActivityOnly) {
      // Joint enable probability dominates; distance only breaks ties.
      // The epsilon is scaled by the seed bounding-box diagonal (see the
      // constructor) so the term stays below the stream's smallest
      // probability step even for chip-scale coordinates.
      const double p_union = analyzer_->signal_prob(x.mask | y.mask);
      return p_union + tie_eps_ * x.tap.ms.distance_to(y.tap.ms);
    }
    // Eq. 3: switched capacitance added by this merge (probability weights
    // floored; see BuildOptions::min_prob_weight). The edge lengths come
    // straight from the closed-form balance split -- the merged-segment
    // geometry zero_skew_merge would also compute is irrelevant to the
    // cost, and skipping it makes an evaluation ~10x cheaper. Committed
    // merges call the same ct::balance_lengths, so priced and built trees
    // agree bit-for-bit.
    const tech::TechParams& t = opts_.tech;
    const ct::BalanceSplit m =
        ct::balance_lengths(x.coeffs, y.coeffs,
                            x.tap.ms.distance_to(y.tap.ms),
                            t.unit_res * t.unit_cap);
    return (t.wire_cap(m.len_a) + x.tap.cap) * x.p_floor +
           (t.wire_cap(m.len_b) + y.tap.cap) * y.p_floor +
           (t.wire_cap(x.cp_dist) + t.gate_enable_cap) * x.p_tr +
           (t.wire_cap(y.cp_dist) + t.gate_enable_cap) * y.p_tr;
  }

  /// Cheap Eq. 3 lower bound: the two new edges jointly span at least
  /// merge_wire_total -- the larger of the merging-segment distance and
  /// the snaked length a delay-mismatched pair is forced to buy (that
  /// total is what zero_skew_merge's len_a + len_b works out to, so the
  /// bound is near-tight) -- each lambda of it weighted by at least
  /// min(p_floor), plus both sides' merge-invariant terms. kLbSlack
  /// absorbs cross-expression rounding.
  double lower_bound(const Candidate& x, const Candidate& y) const {
    const tech::TechParams& t = opts_.tech;
    const double d = x.tap.ms.distance_to(y.tap.ms);
    const double len = ct::merge_wire_total(x.coeffs, y.coeffs, d,
                                            t.unit_res * t.unit_cap);
    return (x.self_cost + y.self_cost +
            t.wire_cap(len) * std::min(x.p_floor, y.p_floor)) *
           kLbSlack;
  }

  void recompute_best(int i) {
    BestPartner bp;
    const Candidate& ci = cands_[static_cast<std::size_t>(i)];
    std::uint64_t evaluated = 0;
    std::uint64_t pruned = 0;
    int seed = -1;
    if (prune_) {
      // Seed the incumbent with a geometric near-neighbor so the bound
      // starts pruning immediately instead of after a lucky early hit.
      seed = grid_.nearest(i);
      if (seed >= 0) {
        bp.cost = pair_cost(ci, cands_[static_cast<std::size_t>(seed)]);
        bp.partner = seed;
        ++evaluated;
      }
    }
    for (const int j : active_) {
      if (j == i || j == seed) continue;
      const Candidate& cj = cands_[static_cast<std::size_t>(j)];
      if (prune_ && bp.partner >= 0 && lower_bound(ci, cj) > bp.cost) {
        // Strictly dominated: cost >= bound > incumbent >= final minimum,
        // so the pair can neither win nor tie. Skipping it cannot change
        // the (cost, id) argmin.
        ++pruned;
        continue;
      }
      ++evaluated;
      const double cost = pair_cost(ci, cj);
      if (cost < bp.cost || (cost == bp.cost && j < bp.partner)) {
        bp.cost = cost;
        bp.partner = j;
      }
    }
    bp.stale = false;
    best_[static_cast<std::size_t>(i)] = bp;
    trace_recompute(i, bp, evaluated);
    if (obs::metrics_enabled()) [[unlikely]] {
      static obs::Counter& recomputes =
          obs::Registry::global().counter("cts.best_partner_recomputes");
      static obs::Counter& evals =
          obs::Registry::global().counter("cts.candidate_evals");
      static obs::Counter& pruned_pairs =
          obs::Registry::global().counter("cts.pruned_pairs");
      recomputes.inc();
      evals.inc(evaluated);
      if (pruned > 0) pruned_pairs.inc(pruned);
    }
  }

  /// The worker-side half of a merge decision: recomputes run inside pool
  /// chunks, so this event lands on the worker's own trace track. It only
  /// reaches the sink because workers carry the session binding
  /// (Session::WorkerViewTag in par::ThreadPool) -- without it,
  /// active_trace() is null on a pool thread and the decision is lost.
  static void trace_recompute(int i, const BestPartner& bp,
                              std::uint64_t evaluated) {
    if (obs::TraceSink* trace = obs::active_trace()) {
      obs::Session* s = obs::current();
      obs::TraceEvent e;
      e.name = "recompute";
      e.cat = "cts";
      e.ph = 'i';
      e.ts_us = s != nullptr ? s->now_us() : 0.0;
      e.args.push_back(obs::TraceArg::num("node", static_cast<long long>(i)));
      e.args.push_back(
          obs::TraceArg::num("partner", static_cast<long long>(bp.partner)));
      e.args.push_back(obs::TraceArg::num("cost", bp.cost));
      e.args.push_back(obs::TraceArg::num(
          "evaluated", static_cast<long long>(evaluated)));
      trace->event(std::move(e));
    }
  }

  /// Recompute best_[i] through the partner index: the exact (cost,
  /// smallest-partner-id) argmin over every live candidate, with the index
  /// bounds skipping strictly-dominated buckets/pairs. Survivors pay the
  /// exact pair cost directly: since pair_cost prices through the
  /// closed-form balance split it now costs about the same as the Eq. 3
  /// lower bound itself, so a second engine-side bound check before it
  /// would only double the work. Writes only best_[i]; safe to run for
  /// disjoint i from pool workers.
  void index_recompute(int i) {
    const Candidate& ci = cands_[static_cast<std::size_t>(i)];
    PartnerIndex::QueryStats qs;
    const PartnerIndex::Best fb = index_.find_best(
        i,
        [&](int j, double, bool) {
          return pair_cost(ci, cands_[static_cast<std::size_t>(j)]);
        },
        &qs);
    BestPartner bp{fb.cost, fb.partner, false};
    best_[static_cast<std::size_t>(i)] = bp;
    trace_recompute(i, bp, qs.evaluated);
    if (obs::metrics_enabled()) [[unlikely]] {
      static obs::Counter& recomputes =
          obs::Registry::global().counter("cts.best_partner_recomputes");
      static obs::Counter& evals =
          obs::Registry::global().counter("cts.candidate_evals");
      static obs::Counter& pruned_pairs =
          obs::Registry::global().counter("cts.pruned_pairs");
      static obs::Counter& queries =
          obs::Registry::global().counter("cts.index_queries");
      static obs::Counter& bucket_skips =
          obs::Registry::global().counter("cts.index_bucket_skips");
      recomputes.inc();
      queries.inc();
      evals.inc(qs.evaluated);
      if (qs.pruned > 0) pruned_pairs.inc(qs.pruned);
      if (qs.bucket_skips > 0) bucket_skips.inc(qs.bucket_skips);
    }
  }

  /// Push best_[i]'s heap entry. Call once per best_ write, on the
  /// coordinating thread.
  void link(int i) {
    const BestPartner& bp = best_[static_cast<std::size_t>(i)];
    if (bp.partner < 0) return;
    heap_.push(HeapEntry{bp.cost, i, bp.partner});
  }

  /// Initial pass of the indexed engine: every leaf's exact best partner
  /// over all leaves, sharded across the pool (disjoint best_ writes),
  /// then serially linked in id order.
  void init_index_bests() {
    const auto n = static_cast<std::int64_t>(active_.size());
    par::parallel_for(scan_width(n, kIndexQueryNs), 0, n, kRecomputeGrain,
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t p = b; p < e; ++p)
                          index_recompute(active_[static_cast<std::size_t>(p)]);
                      });
    for (const int i : active_) link(i);
  }

  /// Pop the heap down to the first entry that still describes a live
  /// cached best, repairing stale entries (dead partner) as they surface.
  /// By the lazy invariant (docs/ALGORITHMS.md) the first live entry is
  /// exactly the (cost, lower-id, higher-id) argmin over all live pairs,
  /// the same pick the exhaustive rescan would make. Repair-at-the-top is
  /// what keeps the query count near-linear: a candidate whose partner
  /// died k times since its last recompute is repaired once, and only if
  /// its (lower-bound) cached cost ever reaches the top at all.
  Pick pick_min_pair_indexed() {
    assert(active_.size() >= 2);
    while (!heap_.empty()) {
      const HeapEntry e = heap_.top();
      heap_.pop();
      const BestPartner& bp = best_[static_cast<std::size_t>(e.owner)];
      if (!cands_[static_cast<std::size_t>(e.owner)].alive || bp.stale ||
          bp.partner != e.partner || bp.cost != e.cost)
        continue;  // owner dead, or a superseded duplicate entry
      if (!cands_[static_cast<std::size_t>(e.partner)].alive) {
        // Deferred repair. Pair costs are immutable, so this entry's cost
        // can only underbid or tie the owner's true current best -- the
        // entry surfaces no later than the one that replaces it, and the
        // exactness argument (docs/ALGORITHMS.md) survives the deferral.
        index_recompute(e.owner);
        link(e.owner);
        continue;
      }
      Pick pick;
      pick.a = std::min(e.owner, e.partner);
      pick.b = std::max(e.owner, e.partner);
      pick.cost = e.cost;
      return pick;
    }
    // Unreachable while the lazy invariant holds; degrade gracefully by
    // refreshing the whole front and re-linking, rather than crashing.
    assert(false && "partner-index heap exhausted");
    for (const int i : active_) index_recompute(i);
    for (const int i : active_) link(i);
    int besti = -1;
    for (const int i : active_) {
      const BestPartner& bp = best_[static_cast<std::size_t>(i)];
      if (besti < 0 ||
          pair_less(bp.cost, i, bp.partner,
                    best_[static_cast<std::size_t>(besti)].cost, besti,
                    best_[static_cast<std::size_t>(besti)].partner))
        besti = i;
    }
    const int partner = best_[static_cast<std::size_t>(besti)].partner;
    Pick pick;
    pick.a = std::min(besti, partner);
    pick.b = std::max(besti, partner);
    pick.cost = best_[static_cast<std::size_t>(besti)].cost;
    return pick;
  }

  /// Index maintenance after a merge (a, b already deactivated): insert
  /// the new node and compute its best partner. Candidates whose cached
  /// best was a or b are NOT recomputed here -- their heap entries repair
  /// lazily if and when they surface in pick_min_pair_indexed. Deferral
  /// coalesces the fan-in: a popular partner's death costs one repair per
  /// *surfacing* dependent, not one recompute per dependent per death.
  void index_post_merge(int a, int b, int id) {
    (void)a;
    (void)b;
    activate(id);
    if (index_.maybe_rebuild()) {
      if (obs::metrics_enabled()) [[unlikely]] {
        static obs::Counter& rebuilds =
            obs::Registry::global().counter("cts.index_rebuilds");
        rebuilds.inc();
      }
    }
    index_recompute(id);
    link(id);
  }

  Pick pick_min_pair() {
    assert(active_.size() >= 2);
    // Phase 1: refresh stale / invalidated best-partner entries, sharded
    // across the pool. Each item writes only best_[active_[pos]]; all
    // shared state (cands_, active_, the grid) is read-only here.
    // The width estimate counts the entries a chunk would actually
    // recompute (a cheap flag scan), each an O(front) rescan: late in the
    // run -- and on every merge that invalidates only a couple of cached
    // partners -- the whole phase is smaller than one pool dispatch.
    const auto num_active = static_cast<std::int64_t>(active_.size());
    std::int64_t stale = 0;
    for (const int i : active_) {
      const BestPartner& bp = best_[static_cast<std::size_t>(i)];
      if (bp.stale || !cands_[static_cast<std::size_t>(bp.partner)].alive)
        ++stale;
    }
    par::parallel_for(
        scan_width(stale * num_active, kPairEvalNs), 0, num_active,
        kRecomputeGrain,
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t p = b; p < e; ++p) {
            const int i = active_[static_cast<std::size_t>(p)];
            const BestPartner& bp = best_[static_cast<std::size_t>(i)];
            if (bp.stale ||
                !cands_[static_cast<std::size_t>(bp.partner)].alive)
              recompute_best(i);
          }
        });
    // Phase 2: the (cost, lower-id, higher-id) argmin over the fresh
    // entries. Cheap (one comparison per front member), so it stays
    // serial; the total order makes it scan-order independent anyway.
    int besti = -1;
    for (const int i : active_) {
      const BestPartner& bp = best_[static_cast<std::size_t>(i)];
      if (besti < 0 ||
          pair_less(bp.cost, i, bp.partner,
                    best_[static_cast<std::size_t>(besti)].cost, besti,
                    best_[static_cast<std::size_t>(besti)].partner))
        besti = i;
    }
    const int partner = best_[static_cast<std::size_t>(besti)].partner;
    Pick pick;
    pick.a = std::min(besti, partner);
    pick.b = std::max(besti, partner);
    pick.cost = best_[static_cast<std::size_t>(besti)].cost;
    return pick;
  }

  /// One instant event per Eq. 3 decision: the chosen pair, its
  /// switched-cap delta, the runner-up (cheapest alternative merge, i.e.
  /// the best pair that is not the chosen one or its mirror), and the
  /// current front size. The indexed engine defers repairs, so entries
  /// whose partner has died are skipped -- the runner-up is best-effort
  /// there, never a dead pair.
  void trace_merge_decision(obs::TraceSink& trace, const Pick& pick) const {
    int ru = -1;
    double ru_cost = std::numeric_limits<double>::infinity();
    for (const int i : active_) {
      if (i == pick.a) continue;
      const BestPartner& bp = best_[static_cast<std::size_t>(i)];
      if (i == pick.b && bp.partner == pick.a) continue;
      if (bp.partner < 0 ||
          !cands_[static_cast<std::size_t>(bp.partner)].alive)
        continue;
      if (bp.cost < ru_cost) {
        ru_cost = bp.cost;
        ru = i;
      }
    }
    obs::Session* s = obs::current();
    obs::TraceEvent e;
    e.name = "merge";
    e.cat = "cts";
    e.ph = 'i';
    e.ts_us = s ? s->now_us() : 0.0;
    e.args.push_back(obs::TraceArg::num("a", static_cast<long long>(pick.a)));
    e.args.push_back(obs::TraceArg::num("b", static_cast<long long>(pick.b)));
    e.args.push_back(obs::TraceArg::num("cost", pick.cost));
    if (ru >= 0) {
      e.args.push_back(obs::TraceArg::num("runner_up_a",
                                          static_cast<long long>(ru)));
      e.args.push_back(obs::TraceArg::num(
          "runner_up_b",
          static_cast<long long>(best_[static_cast<std::size_t>(ru)].partner)));
      e.args.push_back(obs::TraceArg::num("runner_up_cost", ru_cost));
    }
    e.args.push_back(obs::TraceArg::num(
        "front", static_cast<long long>(active_.size())));
    trace.event(std::move(e));
  }

  void merge(int a, int b) {
    Candidate& ca = cands_[static_cast<std::size_t>(a)];
    Candidate& cb = cands_[static_cast<std::size_t>(b)];
    const ct::MergeResult m = ct::zero_skew_merge(
        ca.tap, opts_.gated_edges, cb.tap, opts_.gated_edges, opts_.tech);

    const int id = topo_.merge(ca.node, cb.node);
    Candidate& cn = cands_[static_cast<std::size_t>(id)];
    cn.node = id;
    cn.tap.ms = m.ms;
    cn.tap.delay = m.delay;
    cn.tap.cap = m.cap;
    cn.alive = true;
    if (analyzer_) {
      cn.mask = ca.mask | cb.mask;
      cn.p_en = analyzer_->signal_prob(cn.mask);
      cn.p_tr = analyzer_->transition_prob(cn.mask);
    }
    cn.cp_dist = geom::manhattan_dist(opts_.control_point, cn.tap.ms.center());
    finish_candidate(cn);

    ca.alive = false;
    cb.alive = false;
    deactivate(a);
    deactivate(b);

    if (indexed_) {
      index_post_merge(a, b, id);
      return;
    }

    // The new candidate may beat existing best partners; refresh every
    // front member and find the new node's own best in one sharded pass.
    // Each chunk writes only its own best_[j] entries and its partial-min
    // slot; partials are folded in ascending chunk order (gcr::par), and
    // ties fall to the smaller partner id -- so the outcome is identical
    // at every thread count.
    struct ChunkBest {
      double cost{kInf};
      int partner{-1};
      std::uint64_t evaluated{0};
      std::uint64_t pruned{0};
    };
    const auto num_active = static_cast<std::int64_t>(active_.size());
    const ChunkBest total = par::parallel_reduce(
        scan_width(num_active, kPairEvalNs), 0, num_active, kRefreshGrain,
        ChunkBest{},
        [&](std::int64_t bpos, std::int64_t epos) {
          ChunkBest cb_local;
          for (std::int64_t p = bpos; p < epos; ++p) {
            const int j = active_[static_cast<std::size_t>(p)];
            const Candidate& cj = cands_[static_cast<std::size_t>(j)];
            BestPartner& bj = best_[static_cast<std::size_t>(j)];
            if (prune_) {
              const double lb = lower_bound(cn, cj);
              // The exact cost is only needed when the pair could either
              // improve j's cached best or this chunk's incumbent for the
              // new node; both tests are against a strict bound, so only
              // strictly-dominated pairs are skipped.
              const bool for_bj = !bj.stale && lb <= bj.cost;
              const bool for_new = cb_local.partner < 0 || lb <= cb_local.cost;
              if (!for_bj && !for_new) {
                ++cb_local.pruned;
                continue;
              }
            }
            ++cb_local.evaluated;
            const double cost = pair_cost(cn, cj);
            // (cost, id) tie-break: `id` is the largest live node id, so
            // only a strictly better cost may displace j's cached partner.
            if (!bj.stale && cost < bj.cost) {
              bj.cost = cost;
              bj.partner = id;
            }
            if (cost < cb_local.cost ||
                (cost == cb_local.cost && j < cb_local.partner)) {
              cb_local.cost = cost;
              cb_local.partner = j;
            }
          }
          return cb_local;
        },
        [](ChunkBest x, ChunkBest y) {
          ChunkBest out;
          out.evaluated = x.evaluated + y.evaluated;
          out.pruned = x.pruned + y.pruned;
          const bool take_y =
              x.partner < 0 ||
              (y.partner >= 0 &&
               (y.cost < x.cost || (y.cost == x.cost && y.partner < x.partner)));
          out.cost = take_y ? y.cost : x.cost;
          out.partner = take_y ? y.partner : x.partner;
          return out;
        });
    best_[static_cast<std::size_t>(id)] = {total.cost, total.partner, false};
    activate(id);
    if (obs::metrics_enabled()) [[unlikely]] {
      static obs::Counter& evals =
          obs::Registry::global().counter("cts.candidate_evals");
      static obs::Counter& pruned_pairs =
          obs::Registry::global().counter("cts.pruned_pairs");
      evals.inc(total.evaluated);
      if (total.pruned > 0) pruned_pairs.inc(total.pruned);
    }
  }

  BuildOptions opts_;
  const activity::ActivityAnalyzer* analyzer_;
  ct::Topology topo_;
  int width_;        ///< effective worker width (par::resolve_threads)
  bool indexed_;     ///< partner index armed (geometric costs + prune on)
  bool prune_;       ///< rescan-path spatial prune (SwitchedCapacitance only)
  double tie_eps_;   ///< ActivityOnly distance tie epsilon (bbox-scaled)
  SeedGrid grid_;
  std::vector<Candidate> cands_;
  std::vector<BestPartner> best_;
  std::vector<int> active_;  ///< live node ids (order mutates via swap-remove)
  std::vector<int> pos_;     ///< node id -> index in active_ (-1 when dead)
  // Indexed engine state (unused by the rescan path).
  PartnerIndex index_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapEntryAfter>
      heap_;
};

}  // namespace

BuildResult build_topology_taps(std::span<const TapSeed> seeds,
                                const activity::ActivityAnalyzer* analyzer,
                                const BuildOptions& opts) {
  if (seeds.empty()) return BuildResult{ct::Topology(0), {}, {}, {}};
  if (seeds.size() == 1) {
    BuildResult out{ct::Topology(1), {}, {}, {}};
    if (analyzer) {
      out.mask.push_back(seeds[0].mask);
      out.p_en.push_back(analyzer->signal_prob(out.mask[0]));
      out.p_tr.push_back(analyzer->transition_prob(out.mask[0]));
    }
    return out;
  }
  GreedyEngine engine(seeds, analyzer, opts);
  return engine.run();
}

BuildResult build_topology_seeded(std::span<const SeedSink> seeds,
                                  const activity::ActivityAnalyzer* analyzer,
                                  const BuildOptions& opts) {
  std::vector<TapSeed> taps;
  taps.reserve(seeds.size());
  for (const SeedSink& s : seeds) {
    TapSeed t;
    t.tap.ms = geom::TiltedRect::from_point(s.sink.loc);
    t.tap.delay = 0.0;
    t.tap.cap = s.sink.cap;
    t.mask = s.mask;
    taps.push_back(std::move(t));
  }
  return build_topology_taps(taps, analyzer, opts);
}

BuildResult build_topology(std::span<const ct::Sink> sinks,
                           const activity::ActivityAnalyzer* analyzer,
                           std::span<const int> leaf_module,
                           const BuildOptions& opts) {
  std::vector<SeedSink> seeds;
  seeds.reserve(sinks.size());
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    SeedSink s{sinks[i], activity::ActivationMask()};
    if (analyzer) s.mask = analyzer->module_mask(leaf_module[i]);
    seeds.push_back(std::move(s));
  }
  return build_topology_seeded(seeds, analyzer, opts);
}

std::vector<int> identity_modules(int num_sinks) {
  std::vector<int> ids(static_cast<std::size_t>(num_sinks));
  for (int i = 0; i < num_sinks; ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

TopologyActivity annotate_topology(const ct::Topology& topo,
                                   const activity::ActivityAnalyzer& analyzer,
                                   std::span<const int> leaf_module) {
  const int n = topo.num_nodes();
  TopologyActivity act;
  act.mask.assign(static_cast<std::size_t>(n),
                  activity::ActivationMask(analyzer.num_instructions()));
  act.p_en.assign(static_cast<std::size_t>(n), 0.0);
  act.p_tr.assign(static_cast<std::size_t>(n), 0.0);
  for (int id = 0; id < n; ++id) {  // ids ascend bottom-up
    const ct::TreeNode& node = topo.node(id);
    auto& mask = act.mask[static_cast<std::size_t>(id)];
    if (node.is_leaf()) {
      mask = analyzer.module_mask(leaf_module[static_cast<std::size_t>(id)]);
    } else {
      mask = act.mask[static_cast<std::size_t>(node.left)] |
             act.mask[static_cast<std::size_t>(node.right)];
    }
    act.p_en[static_cast<std::size_t>(id)] = analyzer.signal_prob(mask);
    act.p_tr[static_cast<std::size_t>(id)] = analyzer.transition_prob(mask);
  }
  return act;
}

}  // namespace gcr::cts

#include "cts/partner_index.h"

#include <cassert>
#include <cmath>

namespace gcr::cts {

void PartnerIndex::init(Metric metric, const tech::TechParams* tech,
                        int capacity, int expected, double xlo, double ylo,
                        double w, double h) {
  assert(metric == Metric::Distance || tech != nullptr);
  metric_ = metric;
  tech_ = tech;
  rc_ = tech != nullptr ? tech->unit_res * tech->unit_cap : 0.0;
  xlo_ = xlo;
  ylo_ = ylo;
  w_ = std::max(w, 1e-12);
  h_ = std::max(h, 1e-12);
  // Same occupancy target as the seed grid: ~2 items per bucket at the
  // expected population.
  dim_ = std::max(1, static_cast<int>(std::floor(std::sqrt(expected / 2.0))));
  size_ = 0;
  last_rebuild_size_ = expected;
  rebuilds_ = 0;
  items_.assign(static_cast<std::size_t>(capacity), {});
  cell_of_.assign(static_cast<std::size_t>(capacity), -1);
  self_order_.clear();
  build_levels();
}

void PartnerIndex::build_levels() {
  bucket_ids_.assign(static_cast<std::size_t>(dim_) * dim_, {});
  levels_.clear();
  level_dim_.clear();
  for (int d = dim_;; d = (d + 1) / 2) {
    levels_.emplace_back(static_cast<std::size_t>(d) * d);
    level_dim_.push_back(d);
    if (d == 1) break;
  }
}

int PartnerIndex::cell_index(const geom::Point& c) const {
  const int cx = std::clamp(
      static_cast<int>((c.x - xlo_) * dim_ / w_), 0, dim_ - 1);
  const int cy = std::clamp(
      static_cast<int>((c.y - ylo_) * dim_ / h_), 0, dim_ - 1);
  return cy * dim_ + cx;
}

void PartnerIndex::bucket_insert(int id, const Item& item) {
  const int cell = cell_index(item.center);
  bucket_ids_[static_cast<std::size_t>(cell)].push_back(id);
  cell_of_[static_cast<std::size_t>(id)] = cell;
  // Tighten the aggregates along the leaf-to-root path.
  int x = cell % dim_;
  int y = cell / dim_;
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    levels_[k][static_cast<std::size_t>(y) * level_dim_[k] + x].absorb(item);
    x /= 2;
    y /= 2;
  }
}

void PartnerIndex::insert(int id, const Item& item) {
  assert(cell_of_[static_cast<std::size_t>(id)] < 0);
  items_[static_cast<std::size_t>(id)] = item;
  bucket_insert(id, item);
  if (metric_ == Metric::SwitchedCap)
    self_order_.emplace(item.self_cost, id);
  ++size_;
}

void PartnerIndex::remove(int id) {
  const int cell = cell_of_[static_cast<std::size_t>(id)];
  assert(cell >= 0);
  auto& ids = bucket_ids_[static_cast<std::size_t>(cell)];
  for (std::size_t k = 0; k < ids.size(); ++k) {
    if (ids[k] == id) {
      ids[k] = ids.back();
      ids.pop_back();
      break;
    }
  }
  cell_of_[static_cast<std::size_t>(id)] = -1;
  if (metric_ == Metric::SwitchedCap)
    self_order_.erase({items_[static_cast<std::size_t>(id)].self_cost, id});
  --size_;
  // Only the exact live counts shrink; min/max aggregates and bboxes are
  // left stale-conservative. rebuild() restores exactness.
  int x = cell % dim_;
  int y = cell / dim_;
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    --levels_[k][static_cast<std::size_t>(y) * level_dim_[k] + x].count;
    x /= 2;
    y /= 2;
  }
}

bool PartnerIndex::maybe_rebuild() {
  if (size_ < 1 || 2 * size_ > last_rebuild_size_) return false;
  rebuild();
  return true;
}

void PartnerIndex::rebuild() {
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(size_));
  for (const auto& ids : bucket_ids_)
    live.insert(live.end(), ids.begin(), ids.end());
  dim_ = std::max(1, static_cast<int>(std::floor(std::sqrt(size_ / 2.0))));
  build_levels();
  for (const int id : live)
    bucket_insert(id, items_[static_cast<std::size_t>(id)]);
  last_rebuild_size_ = size_;
  ++rebuilds_;
}

}  // namespace gcr::cts

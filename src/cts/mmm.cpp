#include "cts/mmm.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "obs/metrics.h"

namespace gcr::cts {

namespace {

struct Builder {
  std::span<const ct::Sink> sinks;
  ct::Topology topo;
  std::vector<int> order;  ///< permutation of sink indices being split

  explicit Builder(std::span<const ct::Sink> s)
      : sinks(s), topo(static_cast<int>(s.size())),
        order(static_cast<std::size_t>(s.size())) {
    std::iota(order.begin(), order.end(), 0);
  }

  /// Build the subtree over order[lo, hi) and return its root node id.
  int build(int lo, int hi) {
    assert(hi > lo);
    if (hi - lo == 1) return order[static_cast<std::size_t>(lo)];

    // Split at the median of the wider spread dimension.
    double xlo = 1e300, xhi = -1e300, ylo = 1e300, yhi = -1e300;
    for (int i = lo; i < hi; ++i) {
      const geom::Point& p = sinks[static_cast<std::size_t>(
                                       order[static_cast<std::size_t>(i)])]
                                 .loc;
      xlo = std::min(xlo, p.x);
      xhi = std::max(xhi, p.x);
      ylo = std::min(ylo, p.y);
      yhi = std::max(yhi, p.y);
    }
    const bool by_x = (xhi - xlo) >= (yhi - ylo);
    const int mid = lo + (hi - lo) / 2;
    std::nth_element(order.begin() + lo, order.begin() + mid,
                     order.begin() + hi, [&](int a, int b) {
                       const auto& pa = sinks[static_cast<std::size_t>(a)].loc;
                       const auto& pb = sinks[static_cast<std::size_t>(b)].loc;
                       return by_x ? pa.x < pb.x : pa.y < pb.y;
                     });
    const int left = build(lo, mid);
    const int right = build(mid, hi);
    if (obs::metrics_enabled()) [[unlikely]] {
      static obs::Counter& c =
          obs::Registry::global().counter("cts.mmm_splits");
      c.inc();
    }
    return topo.merge(left, right);
  }
};

}  // namespace

ct::Topology build_mmm_topology(std::span<const ct::Sink> sinks) {
  assert(!sinks.empty());
  Builder b(sinks);
  if (sinks.size() > 1) b.build(0, static_cast<int>(sinks.size()));
  return std::move(b.topo);
}

}  // namespace gcr::cts

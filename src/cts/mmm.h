#pragma once

#include <span>

#include "clocktree/sink.h"
#include "clocktree/topology.h"

/// \file mmm.h
/// Method of Means and Medians [Jackson-Srinivasan-Kuh'90]: the classic
/// top-down topology generator. The sink set is recursively bisected at the
/// median along its wider spread dimension, producing a balanced binary
/// topology that any of the embedders (zero-skew or bounded-skew) can
/// route. Included as a third topology baseline next to nearest-neighbor
/// and the paper's min-switched-capacitance greedy.

namespace gcr::cts {

[[nodiscard]] ct::Topology build_mmm_topology(std::span<const ct::Sink> sinks);

}  // namespace gcr::cts

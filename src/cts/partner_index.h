#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "clocktree/zskew.h"
#include "geom/point.h"
#include "tech/params.h"

/// \file partner_index.h
/// A dynamic bucket-pyramid index over candidate merging segments -- the
/// structure that turns the Eq. 3 greedy's per-merge front rescan into a
/// near-constant neighborhood query (an Edahiro-style bucket decomposition
/// grown into a maintained branch-and-bound hierarchy).
///
/// Each live candidate is stored as an Item: the chip-plane center of its
/// merging segment, the segment's *reach* (the maximum Manhattan distance
/// from the center to any point of the segment -- for a tilted rectangle
/// `0.5 * max(uhi-ulo, whi-wlo)`, because chip-plane Manhattan distance is
/// Chebyshev distance in the rotated frame), and the two Eq. 3 ingredients
/// of the engine's lower bound: the merge-invariant `self_cost` and the
/// floored probability weight `p_floor`.
///
/// Items live in a uniform bucket grid; above the grid sits a pyramid of
/// 2x2 aggregation nodes (a quadtree built bottom-up), each carrying
/// conservative aggregates over its subtree: the live count, the bounding
/// box of member centers, and min self_cost / min p_floor / max reach.
///
/// find_best(id) returns the *exact* (cost, partner-id) argmin over every
/// other stored item, where the cost of a pair is whatever the caller's
/// `eval` callback computes. Exactness -- including cost ties, which resolve
/// to the smallest partner id -- is what lets the greedy engine stay
/// bit-identical to the exhaustive rescan: the query only ever skips pairs
/// it can prove *strictly* dominated. All bounds are slackened by
/// `1 - 1e-9` (mirroring the engine's kLbSlack) and compared with strict
/// `>`, so a tie-capable candidate is never skipped.
///
/// The scan is a best-first DFS over the pyramid: a node prices the
/// cheapest pair its subtree could possibly contain from a distance bound
///
///   d = max(0, dist(center_q, member-bbox) - reach_q - max_reach)
///
/// (for Metric::Distance the cost IS the distance; for SwitchedCap the
/// bound is priced through Eq. 3 with the node's min self_cost / min
/// p_floor), and a node whose bound strictly exceeds the incumbent is
/// discarded with its entire subtree. Children are descended cheapest
/// bound first (ties toward the lower child index), so the incumbent
/// tightens as fast as possible.
///
/// SwitchedCap bounds price the wire *per side* of the zero-skew balance
/// split, each side's length at its own probability weight. This is the
/// load-bearing refinement: under activity floors an active query (large
/// p_floor) scanning idle candidates pays ~p_floor_q on its own half of
/// every merge's wire, so a min-p_floor whole-wire bound underestimates
/// by the weight ratio and lets every idle candidate for thousands of
/// lambda around survive -- per-side pricing shrinks the survivor radius
/// by that same ratio. The bounds also price the Elmore delay-mismatch
/// axis: a merge of subtrees whose branch-delay intercepts (`a_coef`)
/// differ must snake wire on the faster side until the gap closes,
/// however close the segments sit (ct::merge_wire_total). Items carry
/// their exact (a_coef, b_coef); nodes keep the [min_a, max_a] and
/// [min_b, max_b] envelopes, whose corners span the balance point's range
/// (it is monotone in each coefficient), so a subtree whose delay range
/// sits far from the query's is priced out even at distance 0.
///
/// Branch-and-bound is only as good as its first incumbent, so the query
/// seeds from both ends of the cost structure before descending. Every
/// query starts with the query's own bucket -- the distance-0 neighborhood,
/// the right guess when cost is geometry-dominated. SwitchedCap queries
/// additionally exploit the additive structure of the Eq. 3 bound
/// (cost(q, j) >= self_q + self_j, the wire term is nonnegative): the
/// index keeps all items in a (self_cost, id)-ordered set and the query
/// prices its first few entries -- the globally cheapest selves, the right
/// guess in the activity-floor regime where wire is nearly free and the
/// best partner may sit anywhere on the die. A near-final incumbent before
/// the DFS is what lets node bounds discard whole quadrants at the top of
/// the pyramid instead of near the leaves. Per candidate a per-pair
/// bound (center distance minus reaches, priced through the metric) is
/// tried before `eval`; survivors pay the exact pair cost, which the
/// engine computes from the closed-form balance split without touching
/// merged-segment geometry.
///
/// Aggregates are maintained *conservatively* under mutation: insert
/// tightens them along the leaf-to-root path (running min/max, bbox
/// growth), remove only decrements the exact live counts -- stale bounds
/// only weaken pruning, never break it. Exactness is restored by a full
/// rebuild whenever the population halves, which also re-derives the grid
/// dimension from the live size, so bucket occupancy stays O(1) as the
/// merge front shrinks.
///
/// The structure is single-writer: insert/remove/rebuild happen on the
/// engine's coordinating thread between scans. find_best is const and
/// touches no mutable state, so any number of pool workers may query
/// concurrently, and every query's result is independent of enumeration
/// order -- the determinism contract of docs/parallelism.md.
namespace gcr::cts {

class PartnerIndex {
 public:
  /// How a pair's cost is lower-bounded from a distance bound `d`:
  ///   Distance    -- the cost *is* the merging-segment distance
  ///                  (NearestNeighbor), so the bound is d itself.
  ///   SwitchedCap -- the per-side Eq. 3 bound: self_x + self_y plus the
  ///                  zero-skew balance split of `d`, each side's wire at
  ///                  its *own* p_floor. The eval callback must therefore
  ///                  compute the matching Eq. 3 per-side cost (as the
  ///                  greedy's pair_cost does) -- a cost below this bound
  ///                  would break exactness.
  enum class Metric { Distance, SwitchedCap };

  struct Item {
    geom::Point center;     ///< chip-plane center of the merging segment
    double reach{0.0};      ///< max Manhattan dist from center to the segment
    double self_cost{0.0};  ///< Eq. 3 merge-invariant part (SwitchedCap)
    double p_floor{1.0};    ///< floored probability weight (SwitchedCap)
    /// Elmore branch-delay coefficients (delay(L) = a_coef + b_coef*L +
    /// (rc/2) L^2): a zero-skew merge of delay-mismatched subtrees must
    /// buy at least the snaked wire that closes the |a_coef| gap, however
    /// close the segments sit -- the SwitchedCap bounds price that floor
    /// via ct::merge_wire_total. Defaults make the floor inert.
    double a_coef{0.0};
    double b_coef{0.0};
  };

  struct Best {
    double cost{std::numeric_limits<double>::infinity()};
    int partner{-1};
  };

  /// Telemetry for one find_best call. `pruned` counts every stored item
  /// the query did NOT pay an exact evaluation for, whatever bound level
  /// skipped it (subtree or bucket discard, per-pair bound, or the
  /// caller's own bound signalled via an infinite eval result);
  /// `bucket_skips` counts discarded pyramid nodes (all levels).
  struct QueryStats {
    std::uint64_t evaluated{0};
    std::uint64_t pruned{0};
    std::uint64_t bucket_skips{0};
  };

  /// `tech` must outlive the index (only wire_cap is used, and only for
  /// Metric::SwitchedCap). `capacity` bounds the node ids ever stored;
  /// `expected` sizes the initial grid (the number of initial inserts).
  /// The grid covers [xlo, xlo+w] x [ylo, ylo+h].
  void init(Metric metric, const tech::TechParams* tech, int capacity,
            int expected, double xlo, double ylo, double w, double h);

  void insert(int id, const Item& item);
  void remove(int id);
  [[nodiscard]] bool contains(int id) const {
    return cell_of_[static_cast<std::size_t>(id)] >= 0;
  }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] std::uint64_t rebuild_count() const { return rebuilds_; }

  /// Rebuild (exact aggregates, re-derived grid dimension) when the live
  /// population has halved since the last rebuild. Returns true when a
  /// rebuild happened. Call between merges, never during queries.
  bool maybe_rebuild();

  /// Exact best partner of `id` (which must be stored): the (cost,
  /// partner-id) argmin of `eval` over every other stored item, ties to
  /// the smallest id. `eval(j, incumbent, has_incumbent)` returns the
  /// exact pair cost, or +infinity to signal that its own lower bound
  /// proved the pair strictly worse than `incumbent` (it must never do so
  /// when `has_incumbent` is false, and never prune a pair that could tie
  /// the incumbent). Returns partner -1 iff `id` is the only item.
  template <class Eval>
  [[nodiscard]] Best find_best(int id, Eval&& eval,
                               QueryStats* stats = nullptr) const;

 private:
  /// One pyramid node: conservative aggregates over its subtree (level 0:
  /// one bucket; level k: up to 2x2 nodes of level k-1). `count` is exact;
  /// everything else only tightens on insert and resets on rebuild.
  struct Node {
    int count{0};
    double min_self{std::numeric_limits<double>::infinity()};
    double min_pf{std::numeric_limits<double>::infinity()};
    double max_reach{0.0};
    /// Delay-coefficient envelope of the members: [min_a, max_a] bounds
    /// the gap any query's a_coef must bridge by snaking; max_b bounds the
    /// faster side's linear coefficient from above (larger b = less snake,
    /// so the max is the conservative choice).
    double min_a{std::numeric_limits<double>::infinity()};
    double max_a{-std::numeric_limits<double>::infinity()};
    double min_b{std::numeric_limits<double>::infinity()};
    double max_b{0.0};
    double bx0{0.0}, by0{0.0}, bx1{0.0}, by1{0.0};  ///< member-center bbox
    bool bbox_set{false};

    void absorb(const Item& item) {
      ++count;
      min_self = std::min(min_self, item.self_cost);
      min_pf = std::min(min_pf, item.p_floor);
      max_reach = std::max(max_reach, item.reach);
      min_a = std::min(min_a, item.a_coef);
      max_a = std::max(max_a, item.a_coef);
      min_b = std::min(min_b, item.b_coef);
      max_b = std::max(max_b, item.b_coef);
      if (!bbox_set) {
        bx0 = bx1 = item.center.x;
        by0 = by1 = item.center.y;
        bbox_set = true;
      } else {
        bx0 = std::min(bx0, item.center.x);
        by0 = std::min(by0, item.center.y);
        bx1 = std::max(bx1, item.center.x);
        by1 = std::max(by1, item.center.y);
      }
    }
  };

  void bucket_insert(int id, const Item& item);
  void rebuild();
  void build_levels();
  [[nodiscard]] int cell_index(const geom::Point& c) const;

  /// Lower bound on cost(query, j) given a lower bound `d` on the
  /// merging-segment distance and j's exact item. Prices the Eq. 3 wire
  /// term *per side*: the balance split at distance `d` with the exact
  /// coefficients, each side's length weighted by its own p_floor. Valid
  /// because both split lengths are nondecreasing in the merge distance,
  /// so evaluating at `d` <= the true distance only shrinks them -- and
  /// decisively tighter than a min-p_floor whole-wire bound when the two
  /// weights differ by orders of magnitude (an active query scanning idle
  /// candidates, the dominant regime under activity floors). Slackened;
  /// compare with strict `>` only.
  [[nodiscard]] double pair_bound(const Item& q, double d,
                                  const Item& j) const {
    if (metric_ == Metric::Distance) return d * kSlack;
    const ct::BalanceSplit s = ct::balance_lengths(
        {q.a_coef, q.b_coef}, {j.a_coef, j.b_coef}, d, rc_);
    return (q.self_cost + j.self_cost +
            tech_->wire_cap(s.len_a) * q.p_floor +
            tech_->wire_cap(s.len_b) * j.p_floor) *
           kSlack;
  }

  /// The node's priced lower bound against query item `q` (see file
  /// comment); infinity for an empty subtree. The per-side wire floors
  /// come from the balance point's monotonicity: at fixed distance it is
  /// increasing in the partner's `a` and a monotone Mobius function of the
  /// partner's `b`, so its range over the node's coefficient envelope is
  /// spanned by the corners. Clamping the corner extremes into [0, d]
  /// lower-bounds each side's length (snake cases land on the clamp
  /// boundaries conservatively), the total keeps the snake floor
  /// (ct::merge_wire_total with the envelope-nearest `a` and max_b), and
  /// the slack between the total and the two per-side floors is priced at
  /// min(p_floor) -- a tiny LP solved in closed form.
  [[nodiscard]] double node_bound(const Item& q, const Node& n) const {
    if (n.count == 0) return std::numeric_limits<double>::infinity();
    const double d_rect = rect_dist(q.center, n.bx0, n.by0, n.bx1, n.by1);
    const double d = std::max(0.0, d_rect - q.reach - n.max_reach);
    if (metric_ == Metric::Distance) return d * kSlack;
    const ct::BranchCoeffs qc{q.a_coef, q.b_coef};
    const double total_lb = ct::merge_wire_total(
        qc, {std::clamp(q.a_coef, n.min_a, n.max_a), n.max_b}, d, rc_);
    // When the query itself carries the floor weight, the per-side refine
    // cannot beat pricing the whole span at p_floor_q -- and this is the
    // common case (most queries sit at the activity floor), so it skips
    // the corner divisions entirely.
    if (q.p_floor <= n.min_pf)
      return (q.self_cost + n.min_self +
              tech_->wire_cap(total_lb) * q.p_floor) *
             kSlack;
    const double len_a_lb = std::clamp(min_balance_point(qc, n, d), 0.0, d);
    const double len_b_lb =
        std::clamp(d - max_balance_point(qc, n, d), 0.0, d);
    const double extra =
        std::max(0.0, total_lb - len_a_lb - len_b_lb);
    return (q.self_cost + n.min_self +
            tech_->wire_cap(len_a_lb) * q.p_floor +
            tech_->wire_cap(len_b_lb) * n.min_pf +
            tech_->wire_cap(extra) * std::min(q.p_floor, n.min_pf)) *
           kSlack;
  }

  /// Extremes of the balance point over the node's coefficient envelope
  /// at distance `d`. The point is increasing in the partner's `a` and
  /// monotone (Mobius) in the partner's `b`, so the extremes sit at
  /// corners: min at a = min_a, max at a = max_a, each with b picked by
  /// comparing the two corner fractions via cross-multiplication (both
  /// denominators are positive) -- one division instead of two. The
  /// degenerate all-nonpositive-denominator case falls back to
  /// balance_point's even split.
  [[nodiscard]] double min_balance_point(const ct::BranchCoeffs& qc,
                                         const Node& n, double d) const {
    const double base = n.min_a - qc.a + 0.5 * rc_ * d * d;
    const double n1 = base + d * n.min_b;
    const double n2 = base + d * n.max_b;
    const double d1 = qc.b + n.min_b + rc_ * d;
    const double d2 = qc.b + n.max_b + rc_ * d;
    if (d1 <= 0.0)
      return std::min(ct::balance_point(qc, {n.min_a, n.min_b}, d, rc_),
                      ct::balance_point(qc, {n.min_a, n.max_b}, d, rc_));
    return n1 * d2 <= n2 * d1 ? n1 / d1 : n2 / d2;
  }

  [[nodiscard]] double max_balance_point(const ct::BranchCoeffs& qc,
                                         const Node& n, double d) const {
    const double base = n.max_a - qc.a + 0.5 * rc_ * d * d;
    const double n1 = base + d * n.min_b;
    const double n2 = base + d * n.max_b;
    const double d1 = qc.b + n.min_b + rc_ * d;
    const double d2 = qc.b + n.max_b + rc_ * d;
    if (d1 <= 0.0)
      return std::max(ct::balance_point(qc, {n.max_a, n.min_b}, d, rc_),
                      ct::balance_point(qc, {n.max_a, n.max_b}, d, rc_));
    return n1 * d2 >= n2 * d1 ? n1 / d1 : n2 / d2;
  }

  /// Manhattan distance from `p` to the (axis-aligned, chip-plane)
  /// rectangle [x0,x1] x [y0,y1]; 0 when inside.
  static double rect_dist(const geom::Point& p, double x0, double y0,
                          double x1, double y1) {
    const double dx = std::max({0.0, x0 - p.x, p.x - x1});
    const double dy = std::max({0.0, y0 - p.y, p.y - y1});
    return dx + dy;
  }

  /// Mirrors the greedy engine's kLbSlack: bounds and exact costs come
  /// from different float expressions, so a few ulps of slack keep a
  /// legitimate (tie-capable) candidate from looking strictly dominated.
  static constexpr double kSlack = 1.0 - 1e-9;

  /// How many of the globally cheapest-self candidates seed the incumbent
  /// before the pyramid descent (SwitchedCap only). In the activity-floor
  /// regime the optimum partner is usually among these few, so the DFS
  /// starts with a near-final cutoff; the seeds are only a hint, never a
  /// completeness requirement.
  static constexpr int kSelfSeeds = 8;

  Metric metric_{Metric::Distance};
  const tech::TechParams* tech_{nullptr};
  double rc_{0.0};  ///< unit_res * unit_cap (snake-length quadratic term)
  int dim_{1};
  int size_{0};
  int last_rebuild_size_{0};
  std::uint64_t rebuilds_{0};
  double xlo_{0.0}, ylo_{0.0}, w_{1.0}, h_{1.0};
  std::vector<std::vector<int>> bucket_ids_;  ///< level-0 member lists
  /// levels_[0] aligns with bucket_ids_ (dim_ x dim_); each higher level
  /// halves the dimension (ceil) until 1x1. level_dim_[k] is its width.
  std::vector<std::vector<Node>> levels_;
  std::vector<int> level_dim_;
  std::vector<Item> items_;   ///< node id -> item (valid while stored)
  std::vector<int> cell_of_;  ///< node id -> level-0 cell (-1 when absent)
  /// All stored items ordered by (self_cost, id) -- the SwitchedCap
  /// query's incumbent-seed order (first kSelfSeeds entries). Exact under
  /// mutation (erase on remove), so it needs no rebuild; empty for
  /// Metric::Distance.
  std::set<std::pair<double, int>> self_order_;
};

template <class Eval>
PartnerIndex::Best PartnerIndex::find_best(int id, Eval&& eval,
                                           QueryStats* stats) const {
  Best best;
  const Item& q = items_[static_cast<std::size_t>(id)];
  std::uint64_t evaluated = 0;
  std::uint64_t node_skips = 0;

  /// Price one candidate: per-pair distance bound, then the caller's eval
  /// (which may apply its own tighter bound via the +inf protocol); ties
  /// resolve to the smallest partner id.
  const auto consider = [&](int j) {
    if (j == id) return;
    const Item& pj = items_[static_cast<std::size_t>(j)];
    if (best.partner >= 0) {
      const double d = std::max(
          0.0, geom::manhattan_dist(q.center, pj.center) - q.reach -
                   pj.reach);
      if (pair_bound(q, d, pj) > best.cost) return;
    }
    const double cost = eval(j, best.cost, best.partner >= 0);
    if (cost == std::numeric_limits<double>::infinity()) return;
    ++evaluated;
    if (cost < best.cost || (cost == best.cost && j < best.partner)) {
      best.cost = cost;
      best.partner = j;
    }
  };

  // Seed the incumbent from both ends of the cost structure before the
  // descent: the query's own bucket (the distance-0 neighborhood -- best
  // when cost is geometry-dominated) and, for SwitchedCap, the globally
  // cheapest-self candidates (best in the activity-floor regime, where the
  // wire term is nearly free and the optimum can sit anywhere on the die).
  // A near-final incumbent before the DFS is what lets node bounds discard
  // whole quadrants at the top of the pyramid instead of near the leaves,
  // and what arms the eval callback's own exact-geometry bound from the
  // first leaf scans.
  const int qcell = cell_of_[static_cast<std::size_t>(id)];
  const int qx = qcell % dim_;
  const int qy = qcell / dim_;
  for (const int j : bucket_ids_[static_cast<std::size_t>(qcell)])
    consider(j);
  if (metric_ == Metric::SwitchedCap) {
    int seeds = kSelfSeeds;
    for (const auto& [s, j] : self_order_) {
      if (j == id) continue;
      // The walk doubles as an exact cutoff: cost(q, j') >= self_q +
      // self_j' for every later j', so once that exceeds the incumbent the
      // whole remaining order is strictly dominated -- not just the seed
      // budget exhausted.
      if (best.partner >= 0 && (q.self_cost + s) * kSlack > best.cost) break;
      if (seeds-- <= 0) break;
      consider(j);
    }
  }

  // Best-first DFS: recurse into the cheapest child first so the incumbent
  // tightens early; re-test each node's bound at expansion time because
  // the incumbent may have improved since it was computed.
  struct Visit {
    double bound;
    int level;
    int x, y;
  };
  const auto descend = [&](const auto& self, int level, int x, int y) -> void {
    if (level == 0) {
      if (x == qx && y == qy) return;  // seeded above
      for (const int j : bucket_ids_[static_cast<std::size_t>(y) * dim_ + x])
        consider(j);
      return;
    }
    const int cdim = level_dim_[static_cast<std::size_t>(level - 1)];
    Visit kids[4];
    int nk = 0;
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        const int cx = 2 * x + dx;
        const int cy = 2 * y + dy;
        if (cx >= cdim || cy >= cdim) continue;
        const Node& c =
            levels_[static_cast<std::size_t>(level - 1)]
                   [static_cast<std::size_t>(cy) * cdim + cx];
        if (c.count == 0) continue;
        kids[nk++] = {node_bound(q, c), level - 1, cx, cy};
      }
    }
    std::sort(kids, kids + nk, [](const Visit& a, const Visit& b) {
      if (a.bound != b.bound) return a.bound < b.bound;
      return a.y != b.y ? a.y < b.y : a.x < b.x;
    });
    for (int k = 0; k < nk; ++k) {
      if (best.partner >= 0 && kids[k].bound > best.cost) {
        ++node_skips;
        continue;
      }
      self(self, kids[k].level, kids[k].x, kids[k].y);
    }
  };

  const int top = static_cast<int>(levels_.size()) - 1;
  descend(descend, top, 0, 0);

  if (stats != nullptr) {
    stats->evaluated += evaluated;
    stats->bucket_skips += node_skips;
    const auto others = static_cast<std::uint64_t>(size_ - 1);
    stats->pruned += evaluated >= others ? 0 : others - evaluated;
  }
  return best;
}

}  // namespace gcr::cts

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "activity/analyzer.h"
#include "clocktree/sink.h"
#include "clocktree/topology.h"
#include "clocktree/zskew.h"
#include "geom/point.h"
#include "tech/params.h"

/// \file greedy.h
/// Greedy bottom-up topology construction (paper section 4.2).
///
/// Both engines repeatedly merge the pair of active subtrees with the
/// minimum cost, performing an exact zero-skew merge at each step:
///
///   * NearestNeighbor -- the conventional heuristic [Edahiro'91]: cost is
///     the Manhattan distance between merging segments. Used for the
///     buffered baseline tree.
///   * SwitchedCapacitance -- the paper's Eq. 3: the switched capacitance a
///     merge adds, counting the two new gated clock edges (weighted by the
///     subtrees' enable signal probabilities) and the two new star-routed
///     enable wires (estimated as the distance from the control point CP to
///     the midpoint of each merging segment, weighted by the enables'
///     transition probabilities).
///
/// The engine caches each candidate's electrical tap, activation mask,
/// P(EN), P_tr(EN) and CP distance, so evaluating a pair cost is a closed-
/// form zero-skew merge plus a handful of flops; a best-partner array with
/// lazy recomputation keeps the whole construction near O(N^2).

namespace gcr::cts {

enum class MergeCost {
  NearestNeighbor,
  SwitchedCapacitance,
  /// Activity-pattern clustering in the spirit of [Tellez-Farrahi-
  /// Sarrafzadeh'95]: merge the pair whose joint enable probability is
  /// lowest (most co-active / least union growth), geometry only as a tie
  /// break. Included as a prior-work-style baseline for ablation.
  ActivityOnly,
};

struct BuildOptions {
  MergeCost cost{MergeCost::NearestNeighbor};
  /// Gates assumed at the tops of the new edges during merging; the
  /// buffered baseline also sets this (buffers balance like gates) but
  /// passes buffer-valued gate parameters in `tech`.
  bool gated_edges{true};
  geom::Point control_point{0.0, 0.0};  ///< CP for the Eq. 3 estimate
  /// Floor on the probability weights in the Eq. 3 cost. With a literal
  /// Eq. 3, wire among never-active sinks is free and the greedy strings
  /// them across the die -- harmless while they stay gated, pathological
  /// once gate reduction merges them into live enable domains. The floor
  /// keeps a geometric term in every merge; 0 reproduces the literal paper
  /// cost.
  double min_prob_weight{0.05};
  tech::TechParams tech{};
};

struct BuildResult {
  ct::Topology topo;
  /// Per-node activity (empty when no analyzer was supplied).
  std::vector<activity::ActivationMask> mask;
  std::vector<double> p_en;
  std::vector<double> p_tr;
};

/// Build a topology over `sinks`. `analyzer` may be null only for
/// NearestNeighbor cost; `leaf_module[i]` maps sink i to its module.
[[nodiscard]] BuildResult build_topology(
    std::span<const ct::Sink> sinks,
    const activity::ActivityAnalyzer* analyzer,
    std::span<const int> leaf_module, const BuildOptions& opts);

/// A pre-aggregated starting candidate: a point location/cap with an
/// explicit activation mask (used by the clustered builder, where the
/// leaves of the top level are whole cell subtrees rather than modules).
struct SeedSink {
  ct::Sink sink;
  activity::ActivationMask mask;
};

/// Build a topology over arbitrary seeds; leaf i of the result is seed i.
[[nodiscard]] BuildResult build_topology_seeded(
    std::span<const SeedSink> seeds,
    const activity::ActivityAnalyzer* analyzer, const BuildOptions& opts);

/// Identity sink->module map helper.
[[nodiscard]] std::vector<int> identity_modules(int num_sinks);

/// Per-node activity annotation for a topology built elsewhere (e.g. MMM):
/// the same masks / P(EN) / P_tr(EN) arrays build_topology produces.
struct TopologyActivity {
  std::vector<activity::ActivationMask> mask;
  std::vector<double> p_en;
  std::vector<double> p_tr;
};

[[nodiscard]] TopologyActivity annotate_topology(
    const ct::Topology& topo, const activity::ActivityAnalyzer& analyzer,
    std::span<const int> leaf_module);

}  // namespace gcr::cts

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "activity/analyzer.h"
#include "clocktree/sink.h"
#include "clocktree/topology.h"
#include "clocktree/zskew.h"
#include "geom/point.h"
#include "tech/params.h"

/// \file greedy.h
/// Greedy bottom-up topology construction (paper section 4.2).
///
/// Both engines repeatedly merge the pair of active subtrees with the
/// minimum cost, performing an exact zero-skew merge at each step:
///
///   * NearestNeighbor -- the conventional heuristic [Edahiro'91]: cost is
///     the Manhattan distance between merging segments. Used for the
///     buffered baseline tree.
///   * SwitchedCapacitance -- the paper's Eq. 3: the switched capacitance a
///     merge adds, counting the two new gated clock edges (weighted by the
///     subtrees' enable signal probabilities) and the two new star-routed
///     enable wires (estimated as the distance from the control point CP to
///     the midpoint of each merging segment, weighted by the enables'
///     transition probabilities).
///
/// The engine caches each candidate's electrical tap, activation mask,
/// P(EN), P_tr(EN) and CP distance, so evaluating a pair cost is a closed-
/// form zero-skew merge plus a handful of flops; a best-partner array with
/// lazy recomputation keeps the whole construction near O(N^2).
///
/// Two accelerations sit on top (both produce bit-identical topologies, at
/// any thread count -- see docs/parallelism.md):
///
///   * the best-partner rescans and the post-merge refresh are sharded
///     across a gcr::par thread pool with a strict (cost, lower-id,
///     higher-id) tie-break, so the chosen merge never depends on scan or
///     scheduling order;
///   * a uniform-grid spatial prune skips the exact zero-skew merge for
///     pairs whose cheap Eq. 3 lower bound (merging-segment distance times
///     the floored probability weight, plus each side's merge-invariant
///     terms) already exceeds the incumbent best. Only strictly-dominated
///     pairs are pruned, so the argmin (ties included) is untouched; the
///     `cts.pruned_pairs` counter records the skip rate.
///
/// With BuildOptions::partner_index (the default for the geometric costs)
/// the rescans disappear entirely: a maintained dynamic bucket index
/// (cts/partner_index.h) holds every live candidate's best partner under
/// lazy invalidation, a lazy-deletion heap keyed by the same strict
/// (cost, lower-id, higher-id) order yields the next merge, and each merge
/// recomputes only the new node plus the candidates whose cached partner
/// just died -- near-linear construction, still bit-identical to the
/// exhaustive engine (see docs/ALGORITHMS.md for the invariant and its
/// proof sketch).

namespace gcr::cts {

enum class MergeCost {
  NearestNeighbor,
  SwitchedCapacitance,
  /// Activity-pattern clustering in the spirit of [Tellez-Farrahi-
  /// Sarrafzadeh'95]: merge the pair whose joint enable probability is
  /// lowest (most co-active / least union growth), geometry only as a tie
  /// break. The tie term is scaled by the seed bounding-box diagonal so it
  /// stays below any probability step of the stream even for chip-scale
  /// coordinates. Included as a prior-work-style baseline for ablation.
  ActivityOnly,
};

struct BuildOptions {
  MergeCost cost{MergeCost::NearestNeighbor};
  /// Gates assumed at the tops of the new edges during merging; the
  /// buffered baseline also sets this (buffers balance like gates) but
  /// passes buffer-valued gate parameters in `tech`.
  bool gated_edges{true};
  geom::Point control_point{0.0, 0.0};  ///< CP for the Eq. 3 estimate
  /// Floor on the probability weights in the Eq. 3 cost. With a literal
  /// Eq. 3, wire among never-active sinks is free and the greedy strings
  /// them across the die -- harmless while they stay gated, pathological
  /// once gate reduction merges them into live enable domains. The floor
  /// keeps a geometric term in every merge; 0 reproduces the literal paper
  /// cost.
  double min_prob_weight{0.05};
  /// Worker threads for the candidate scans (gcr::par). 0 resolves to the
  /// GCR_THREADS environment default (else the hardware thread count); 1
  /// runs serially. The built topology is bit-identical at every setting.
  int num_threads{0};
  /// Skip exact Eq. 3 evaluation of provably-dominated pairs via the
  /// uniform-grid lower bound (SwitchedCapacitance cost only). Never
  /// changes the result; `false` forces exhaustive evaluation and is the
  /// reference the prune tests compare against.
  bool spatial_prune{true};
  /// Serve best-partner queries from a maintained dynamic bucket index
  /// (cts/partner_index.h) instead of rescanning the whole front per
  /// merge: near-linear construction instead of ~O(N^2). Applies to the
  /// geometric costs (NearestNeighbor, SwitchedCapacitance) and requires
  /// `spatial_prune` (the shared lower-bound machinery); ActivityOnly has
  /// no geometric bound and always uses the rescan engine. Never changes
  /// the result -- the topology is bit-identical to the exhaustive path at
  /// any thread count; `false` falls back to the rescan engine and is the
  /// reference `gcr_check --index-diff` compares against.
  bool partner_index{true};
  tech::TechParams tech{};
};

struct BuildResult {
  ct::Topology topo;
  /// Per-node activity (empty when no analyzer was supplied).
  std::vector<activity::ActivationMask> mask;
  std::vector<double> p_en;
  std::vector<double> p_tr;
};

/// Build a topology over `sinks`. `analyzer` may be null only for
/// NearestNeighbor cost; `leaf_module[i]` maps sink i to its module.
[[nodiscard]] BuildResult build_topology(
    std::span<const ct::Sink> sinks,
    const activity::ActivityAnalyzer* analyzer,
    std::span<const int> leaf_module, const BuildOptions& opts);

/// A pre-aggregated starting candidate: a point location/cap with an
/// explicit activation mask (used by the clustered builder, where the
/// leaves of the top level are whole cell subtrees rather than modules).
struct SeedSink {
  ct::Sink sink;
  activity::ActivationMask mask;
};

/// Build a topology over arbitrary seeds; leaf i of the result is seed i.
/// An empty `seeds` span yields an empty result (a zero-leaf topology and
/// empty activity arrays) rather than undefined behaviour.
[[nodiscard]] BuildResult build_topology_seeded(
    std::span<const SeedSink> seeds,
    const activity::ActivityAnalyzer* analyzer, const BuildOptions& opts);

/// A starting candidate that is already a merged subtree: its electrical
/// tap (merging segment, zero-skew delay, downstream cap) plus activation
/// mask. This is the ECO re-entry surface (src/eco/): preserved subtrees
/// of a previous route enter the greedy front exactly as the engine's own
/// internal candidates would, so the spine re-merge prices them with the
/// same Eq. 3 terms as a from-scratch run.
struct TapSeed {
  ct::SubtreeTap tap;
  activity::ActivationMask mask;
};

/// Build a topology over subtree-valued seeds; leaf i of the result is
/// seed i. Same contract as build_topology_seeded (empty span -> empty
/// result, `analyzer` nullable only for NearestNeighbor cost).
[[nodiscard]] BuildResult build_topology_taps(
    std::span<const TapSeed> seeds,
    const activity::ActivityAnalyzer* analyzer, const BuildOptions& opts);

/// Identity sink->module map helper.
[[nodiscard]] std::vector<int> identity_modules(int num_sinks);

/// Per-node activity annotation for a topology built elsewhere (e.g. MMM):
/// the same masks / P(EN) / P_tr(EN) arrays build_topology produces.
struct TopologyActivity {
  std::vector<activity::ActivationMask> mask;
  std::vector<double> p_en;
  std::vector<double> p_tr;
};

[[nodiscard]] TopologyActivity annotate_topology(
    const ct::Topology& topo, const activity::ActivityAnalyzer& analyzer,
    std::span<const int> leaf_module);

}  // namespace gcr::cts

#pragma once

#include <span>

#include "cts/greedy.h"

/// \file clustered.h
/// Two-level clustered construction for large designs. The flat greedy
/// engines are O(N^2); beyond ~5k sinks that dominates the flow. The
/// clustered mode partitions the die into a grid of cells, runs the chosen
/// greedy within each cell, and then merges the cell subtrees with the
/// same greedy at the top level -- the standard hierarchical CTS recipe.
/// Activity bookkeeping (masks, P(EN), P_tr) is identical to the flat
/// engine's, so every downstream stage (reduction, embedding, evaluation)
/// is unchanged.

namespace gcr::cts {

struct ClusterOptions {
  BuildOptions build;  ///< cost/tech shared by both levels
  int grid{0};         ///< cells per side; 0 = auto (~sqrt(N)/8, >= 2)
};

[[nodiscard]] BuildResult build_topology_clustered(
    std::span<const ct::Sink> sinks, const activity::ActivityAnalyzer* analyzer,
    std::span<const int> leaf_module, const ClusterOptions& opts);

}  // namespace gcr::cts

#include "cts/clustered.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "par/pool.h"

namespace gcr::cts {

namespace {

/// Replay the merges of a local topology inside the global one.
/// `local_to_global[k]` maps the local *leaf* k; grows with internal nodes
/// as merges replay. Returns the global id of the local root.
int splice(const ct::Topology& local, std::vector<int> local_to_global,
           ct::Topology& global) {
  local_to_global.resize(static_cast<std::size_t>(local.num_nodes()), -1);
  for (int id = local.num_leaves(); id < local.num_nodes(); ++id) {
    const ct::TreeNode& n = local.node(id);
    local_to_global[static_cast<std::size_t>(id)] =
        global.merge(local_to_global[static_cast<std::size_t>(n.left)],
                     local_to_global[static_cast<std::size_t>(n.right)]);
  }
  return local_to_global[static_cast<std::size_t>(local.root())];
}

}  // namespace

BuildResult build_topology_clustered(std::span<const ct::Sink> sinks,
                                     const activity::ActivityAnalyzer* analyzer,
                                     std::span<const int> leaf_module,
                                     const ClusterOptions& opts) {
  const int n = static_cast<int>(sinks.size());
  assert(n > 0);
  int grid = opts.grid;
  if (grid <= 0)
    grid = std::max(2, static_cast<int>(std::lround(std::sqrt(n) / 8.0)));

  // Bucket sinks into grid cells over the sink bounding box.
  double xlo = 1e300, xhi = -1e300, ylo = 1e300, yhi = -1e300;
  for (const auto& s : sinks) {
    xlo = std::min(xlo, s.loc.x);
    xhi = std::max(xhi, s.loc.x);
    ylo = std::min(ylo, s.loc.y);
    yhi = std::max(yhi, s.loc.y);
  }
  const double w = std::max(1e-9, xhi - xlo);
  const double h = std::max(1e-9, yhi - ylo);
  std::vector<std::vector<int>> cells(
      static_cast<std::size_t>(grid) * grid);
  for (int i = 0; i < n; ++i) {
    const auto& p = sinks[static_cast<std::size_t>(i)].loc;
    const int cx = std::min(grid - 1, static_cast<int>((p.x - xlo) / w * grid));
    const int cy = std::min(grid - 1, static_cast<int>((p.y - ylo) / h * grid));
    cells[static_cast<std::size_t>(cy) * grid + cx].push_back(i);
  }
  std::erase_if(cells, [](const auto& c) { return c.empty(); });
  if (obs::metrics_enabled()) {
    obs::Registry::global().gauge("cts.cluster_grid").set(grid);
    obs::Registry::global()
        .gauge("cts.clusters")
        .set(static_cast<double>(cells.size()));
  }

  ct::Topology global(n);
  const auto num_cells = static_cast<std::int64_t>(cells.size());
  std::vector<SeedSink> tops(static_cast<std::size_t>(num_cells));
  std::vector<int> cell_roots;

  {
    // Cell builds are independent, so they fan out across the pool (one
    // cell per chunk); each iteration writes only its own locals/tops
    // slot. The splice into the global topology stays serial, in cell
    // order, so the result is identical at every thread count. Engines
    // running inside a worker serialize their own scans (par::in_worker).
    const obs::ScopedTimer obs_cells_timer("cluster_cells");
    std::vector<std::optional<BuildResult>> locals(
        static_cast<std::size_t>(num_cells));
    const int width = par::resolve_threads(opts.build.num_threads);
    par::parallel_for(
        width, 0, num_cells, /*grain=*/1,
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t ci = b; ci < e; ++ci) {
            const auto& cell = cells[static_cast<std::size_t>(ci)];
            // Local build over the cell's sinks.
            std::vector<SeedSink> seeds;
            seeds.reserve(cell.size());
            activity::ActivationMask cell_mask(
                analyzer ? analyzer->num_instructions() : 0);
            geom::Point centroid{0.0, 0.0};
            double cap = 0.0;
            for (const int s : cell) {
              SeedSink seed{sinks[static_cast<std::size_t>(s)],
                            activity::ActivationMask()};
              if (analyzer) {
                seed.mask = analyzer->module_mask(
                    leaf_module[static_cast<std::size_t>(s)]);
                cell_mask |= seed.mask;
              }
              centroid.x += seed.sink.loc.x;
              centroid.y += seed.sink.loc.y;
              cap += seed.sink.cap;
              seeds.push_back(std::move(seed));
            }
            centroid.x /= static_cast<double>(cell.size());
            centroid.y /= static_cast<double>(cell.size());

            locals[static_cast<std::size_t>(ci)] =
                build_topology_seeded(seeds, analyzer, opts.build);
            // The top level sees the cell as a pseudo-sink at its
            // centroid. The cap only steers merge costs; the real
            // embedding recomputes it.
            tops[static_cast<std::size_t>(ci)] = {
                {centroid, opts.build.gated_edges
                               ? opts.build.tech.gate_input_cap
                               : cap},
                std::move(cell_mask)};
          }
        });
    cell_roots.reserve(static_cast<std::size_t>(num_cells));
    for (std::int64_t ci = 0; ci < num_cells; ++ci)
      cell_roots.push_back(splice(locals[static_cast<std::size_t>(ci)]->topo,
                                  cells[static_cast<std::size_t>(ci)], global));
  }

  {
    // Top-level build over the cells, then splice it in.
    const obs::ScopedTimer obs_top_timer("cluster_top");
    BuildResult top = build_topology_seeded(tops, analyzer, opts.build);
    splice(top.topo, cell_roots, global);
  }

  BuildResult out{std::move(global), {}, {}, {}};
  assert(out.topo.valid());
  if (analyzer) {
    const obs::ScopedTimer obs_annotate_timer("cluster_annotate");
    TopologyActivity act = annotate_topology(out.topo, *analyzer, leaf_module);
    out.mask = std::move(act.mask);
    out.p_en = std::move(act.p_en);
    out.p_tr = std::move(act.p_tr);
  }
  return out;
}

}  // namespace gcr::cts

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "clocktree/sink.h"
#include "geom/die.h"

/// \file rbench.h
/// Synthetic stand-ins for the r1-r5 zero-skew clock routing benchmarks
/// [Tsay'91] used in the paper's evaluation (section 5). The originals are
/// not redistributable; these generators reproduce their published sink
/// counts and a comparable uniform sink spread with realistic load caps,
/// deterministically from a fixed seed (see DESIGN.md, substitutions).

namespace gcr::benchdata {

struct RBenchSpec {
  std::string name;
  int num_sinks{0};
  double die_side{0.0};    ///< square die, lambda
  double cap_lo{0.0};      ///< sink load cap range [pF]
  double cap_hi{0.0};
  std::uint64_t seed{0};
};

/// The five specs (r1..r5) with the published sink counts.
[[nodiscard]] std::span<const RBenchSpec> rbench_specs();

/// Spec by name ("r1".."r5"); throws std::out_of_range for unknown names.
[[nodiscard]] const RBenchSpec& rbench_spec(const std::string& name);

struct RBench {
  RBenchSpec spec;
  geom::DieArea die;
  ct::SinkList sinks;
};

/// Deterministically generate a benchmark instance from its spec.
[[nodiscard]] RBench generate_rbench(const RBenchSpec& spec);
[[nodiscard]] RBench generate_rbench(const std::string& name);

}  // namespace gcr::benchdata

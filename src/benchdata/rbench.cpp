#include "benchdata/rbench.h"

#include <array>
#include <random>
#include <stdexcept>

namespace gcr::benchdata {

namespace {

// Sink counts match the published r1-r5; die sides scale roughly with
// sqrt(sink count) to keep sink density comparable across the suite.
const std::array<RBenchSpec, 5> kSpecs = {{
    {"r1", 267, 20000.0, 0.005, 0.10, 0x9e3779b97f4a7c15ull},
    {"r2", 598, 30000.0, 0.005, 0.10, 0xbf58476d1ce4e5b9ull},
    {"r3", 862, 36000.0, 0.005, 0.10, 0x94d049bb133111ebull},
    {"r4", 1903, 54000.0, 0.005, 0.10, 0xd6e8feb86659fd93ull},
    {"r5", 3101, 68000.0, 0.005, 0.10, 0xa0761d6478bd642full},
}};

}  // namespace

std::span<const RBenchSpec> rbench_specs() { return kSpecs; }

const RBenchSpec& rbench_spec(const std::string& name) {
  for (const auto& s : kSpecs)
    if (s.name == name) return s;
  throw std::out_of_range("unknown r-benchmark: " + name);
}

RBench generate_rbench(const RBenchSpec& spec) {
  RBench b;
  b.spec = spec;
  b.die = geom::DieArea::square(spec.die_side);
  b.sinks.reserve(static_cast<std::size_t>(spec.num_sinks));
  std::mt19937_64 rng(spec.seed);
  std::uniform_real_distribution<double> coord(0.0, spec.die_side);
  std::uniform_real_distribution<double> cap(spec.cap_lo, spec.cap_hi);
  for (int i = 0; i < spec.num_sinks; ++i) {
    b.sinks.push_back({{coord(rng), coord(rng)}, cap(rng)});
  }
  return b;
}

RBench generate_rbench(const std::string& name) {
  return generate_rbench(rbench_spec(name));
}

}  // namespace gcr::benchdata

#include "benchdata/paper_example.h"

namespace gcr::benchdata {

PaperExample paper_example() {
  activity::RtlDescription rtl(4, 6);
  // Table 1 (0-based ids: I1 -> 0, M1 -> 0).
  for (const int m : {0, 1, 2, 4}) rtl.add_use(0, m);  // I1: M1 M2 M3 M5
  for (const int m : {0, 3}) rtl.add_use(1, m);        // I2: M1 M4
  for (const int m : {1, 4, 5}) rtl.add_use(2, m);     // I3: M2 M5 M6
  for (const int m : {2, 3}) rtl.add_use(3, m);        // I4: M3 M4

  // 20-cycle stream: I1 x8, I2 x7, I3 x3, I4 x2 (see header for the quoted
  // probabilities this reproduces).
  PaperExample ex{std::move(rtl), {}};
  ex.stream.seq = {0, 1, 3, 1, 2, 0, 1, 0, 1, 0, 2, 1, 0, 2, 0, 1, 0, 0, 3, 1};
  return ex;
}

}  // namespace gcr::benchdata

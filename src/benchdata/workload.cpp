#include "benchdata/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>
#include <vector>

namespace gcr::benchdata {

Workload generate_workload(const WorkloadSpec& spec,
                           std::span<const ct::Sink> sinks,
                           const geom::DieArea& die) {
  assert(spec.num_instructions > 0);
  assert(!sinks.empty());
  const int n = static_cast<int>(sinks.size());
  const int k = spec.num_instructions;
  std::mt19937_64 rng(spec.seed);

  // ---- spatial clusters: a g x g grid over the die --------------------
  const int grid = std::max(
      1, static_cast<int>(std::lround(std::ceil(std::sqrt(spec.num_clusters)))));
  const int num_clusters = grid * grid;
  std::vector<int> cluster_of(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    const geom::Point& p = sinks[static_cast<std::size_t>(m)].loc;
    const int cx = std::clamp(
        static_cast<int>((p.x - die.xlo) / die.width() * grid), 0, grid - 1);
    const int cy = std::clamp(
        static_cast<int>((p.y - die.ylo) / die.height() * grid), 0, grid - 1);
    cluster_of[static_cast<std::size_t>(m)] = cy * grid + cx;
  }

  // ---- per-instruction module sets -------------------------------------
  // E[fraction used] = p_select * p_use = target_activity. An instruction
  // exercises a *contiguous* region of the floorplan (a functional unit and
  // its neighbors), so co-activity decays with distance -- the spatial
  // correlation that makes subtree gating effective on real processors.
  double p_use = std::clamp(spec.in_cluster_use, 0.01, 1.0);
  double p_select = std::clamp(spec.target_activity / p_use, 0.0, 1.0);
  if (p_select >= 1.0) p_use = std::clamp(spec.target_activity, 0.0, 1.0);

  activity::RtlDescription rtl(k, n);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::uniform_int_distribution<int> pick_cell(0, num_clusters - 1);
  for (int i = 0; i < k; ++i) {
    // Activate the ceil(p_select * #cells) grid cells nearest a random
    // center (random tie-breaking keeps region shapes varied).
    const int center = pick_cell(rng);
    const int ccx = center % grid;
    const int ccy = center / grid;
    std::vector<std::pair<double, int>> by_dist;
    by_dist.reserve(static_cast<std::size_t>(num_clusters));
    for (int c = 0; c < num_clusters; ++c) {
      const double d = std::abs(c % grid - ccx) + std::abs(c / grid - ccy);
      by_dist.emplace_back(d + 0.2 * unif(rng), c);
    }
    std::sort(by_dist.begin(), by_dist.end());
    const int want = std::max(
        1, static_cast<int>(std::lround(p_select * num_clusters)));
    std::vector<char> sel(static_cast<std::size_t>(num_clusters), 0);
    for (int c = 0; c < want; ++c)
      sel[static_cast<std::size_t>(by_dist[static_cast<std::size_t>(c)].second)] = 1;

    bool any = false;
    for (int m = 0; m < n; ++m) {
      if (sel[static_cast<std::size_t>(cluster_of[static_cast<std::size_t>(m)])] &&
          unif(rng) < p_use) {
        rtl.add_use(i, m);
        any = true;
      }
    }
    if (!any)
      rtl.add_use(i, std::uniform_int_distribution<int>(0, n - 1)(rng));
  }

  // ---- Markov instruction stream ---------------------------------------
  // Zipf-ish popularity so the IFT is non-uniform (rare instructions exist,
  // as in real traces), with a locality self-loop.
  std::vector<double> pop(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) pop[static_cast<std::size_t>(i)] = 1.0 / (1.0 + i);
  std::shuffle(pop.begin(), pop.end(), rng);
  std::discrete_distribution<int> pick(pop.begin(), pop.end());

  Workload w{std::move(rtl), {}};
  w.stream.seq.reserve(static_cast<std::size_t>(spec.stream_length));
  int cur = pick(rng);
  for (int t = 0; t < spec.stream_length; ++t) {
    w.stream.seq.push_back(cur);
    if (unif(rng) >= spec.locality) cur = pick(rng);
  }
  return w;
}

}  // namespace gcr::benchdata

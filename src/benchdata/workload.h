#pragma once

#include <cstdint>
#include <span>

#include "activity/rtl.h"
#include "activity/stream.h"
#include "clocktree/sink.h"
#include "geom/die.h"

/// \file workload.h
/// Synthetic CPU workload generator: the "probabilistic model of the CPU
/// when it executes typical programs" the paper used to produce its
/// instruction streams (section 5). Module usage is *spatially clustered*
/// (an instruction exercises whole functional blocks, and blocks are placed
/// contiguously), which is exactly the correlation that makes subtree
/// gating effective; the stream is first-order Markov with a locality knob
/// giving the enables realistic (sub-Bernoulli) transition rates.

namespace gcr::benchdata {

struct WorkloadSpec {
  int num_instructions{32};     ///< K; keep <= 64 for 1-word masks
  int num_clusters{16};         ///< spatial module clusters (grid cells)
  double target_activity{0.4};  ///< Ave(M(I)): expected module fraction used
  double in_cluster_use{0.9};   ///< P(module used | its cluster selected)
  double locality{0.7};         ///< Markov self-transition probability
  int stream_length{20000};     ///< B
  std::uint64_t seed{1};
};

struct Workload {
  activity::RtlDescription rtl;
  activity::InstructionStream stream;
};

/// Generate a workload over the given sinks (module i = sink i); clusters
/// are assigned from the sink locations within `die`.
[[nodiscard]] Workload generate_workload(const WorkloadSpec& spec,
                                         std::span<const ct::Sink> sinks,
                                         const geom::DieArea& die);

}  // namespace gcr::benchdata

#pragma once

#include "activity/rtl.h"
#include "activity/stream.h"

/// \file paper_example.h
/// The worked example of paper section 3: a 4-instruction, 6-module
/// processor (Table 1) and a 20-cycle instruction stream. The stream is
/// reconstructed to match every probability the paper quotes:
///
///   * I1 and I2 together execute 15 of 20 cycles  -> P(M1) = 0.75
///   * I1 and I3 together execute 11 of 20 cycles  -> P(EN{M5,M6}) = 0.55
///   * EN{M5,M6} toggles 11 times over 19 pairs    -> P_tr = 11/19 ~ 0.58
///
/// Instruction usage (Table 1):
///   I1: M1 M2 M3 M5,  I2: M1 M4,  I3: M2 M5 M6,  I4: M3 M4.

namespace gcr::benchdata {

struct PaperExample {
  activity::RtlDescription rtl;
  activity::InstructionStream stream;
};

[[nodiscard]] PaperExample paper_example();

}  // namespace gcr::benchdata

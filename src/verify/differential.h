#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "verify/generator.h"
#include "verify/invariants.h"

/// \file differential.h
/// Differential / metamorphic verification driver. For each random design
/// it cross-checks independent implementations of the same quantity and
/// runs the invariant checker on every routed result:
///
///   * table-driven activities vs the BruteForceActivity full-rescan oracle
///     (paper section 3.2/3.3) on random module sets, bit-for-bit;
///   * every TopologyScheme (Eq. 3 greedy, nearest-neighbor, activity-only,
///     MMM) must produce an invariant-clean exact-zero-skew tree;
///   * flat vs clustered greedy: identical zero-skew guarantee, clustered
///     wirelength within a documented factor of flat;
///   * serial vs multi-threaded Eq. 3 greedy: bit-identical routed trees
///     (the gcr::par determinism contract);
///   * gate reduction (auto-tuned, so the strength-0 candidate anchors the
///     sweep) never increases total switched capacitance;
///   * the buffered baseline stays invariant-clean with buffer parameters.
///
/// Failing designs are dumped as replayable JSON artifacts (generator.h).
/// Per-design progress is emitted as Debug-level structured events
/// (`verify.design`, `verify.clustered_ratio`, `verify.index_diff_design`)
/// through gcr::log -- run with the logger at Debug (gcr_check --verbose)
/// to see it; there is no raw-ostream side channel.

namespace gcr::verify {

struct DiffOptions {
  int num_designs{100};
  std::uint64_t seed{2026};    ///< base seed; design i uses a mix of both
  int activity_trials{24};     ///< random module sets per design
  bool reduction_check{true};  ///< run the auto-tuned GatedReduced leg
  bool clustered_check{true};  ///< run the flat-vs-clustered leg
  /// Documented metamorphic bound: clustered total wirelength may exceed
  /// flat by at most this factor. The generator's adversarial clouds
  /// (clustered/diagonal, small N => a 2x2 grid that cuts natural clusters
  /// apart) reach ~2.7x over thousands of designs; benign inputs (uniform
  /// cloud, larger N) stay under 1.5x, which tests/clustered_test.cpp pins
  /// separately. Only enforced for designs with at least
  /// `clustered_min_sinks` sinks -- below that the decomposition overhead
  /// is additive and a ratio is meaningless; the clustered tree's
  /// zero-skew and electrical invariants are still checked for every
  /// design (docs/verification.md).
  double clustered_wl_factor{3.0};
  int clustered_min_sinks{24};
  /// Route the Eq. 3 gated tree serially and at 4 worker threads and
  /// require bit-identical routed trees (the gcr::par determinism
  /// contract, docs/parallelism.md).
  bool thread_check{true};
  /// Route the Eq. 3 gated tree with the dynamic partner index disabled
  /// and require a tree bit-identical to the indexed default -- the
  /// index-vs-exhaustive contract of cts::BuildOptions::partner_index.
  /// (gcr_check --index-diff runs the full scheme/clustered/thread matrix;
  /// this leg keeps one always-on cross-check in every sweep.)
  bool index_check{true};
  std::string dump_dir;  ///< write failing artifacts here ("" = off)
  /// When non-empty, these exact seeds are replayed instead of the
  /// `num_designs` derived ones (gcr_check --replay).
  std::vector<std::uint64_t> explicit_seeds;
};

struct DiffFailure {
  DesignSpec spec;
  std::string stage;  ///< e.g. "route:gated:mmm", "activity-oracle"
  std::string message;
  Report report;  ///< invariant violations (empty for pure differentials)
};

struct DiffStats {
  int designs{0};
  int routes{0};
  int activity_checks{0};
  std::vector<DiffFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// The design seed used for design index `i` (exposed so failures replay
/// with `--replay <seed>` independently of the base seed and index).
[[nodiscard]] std::uint64_t design_seed(std::uint64_t base, int index);

/// Exact (bit-level) equality of two routed trees: same shape, same
/// embedding, same gating, same electrical annotation. Any divergence in
/// the greedy's merge order shows up here.
[[nodiscard]] bool trees_identical(const ct::RoutedTree& a,
                                   const ct::RoutedTree& b);

[[nodiscard]] DiffStats run_differential(const DiffOptions& opts);

/// Options for the dedicated partner-index differential
/// (gcr_check --index-diff): for each random design, every greedy
/// TopologyScheme x {flat, clustered} x {1, 4 worker threads} is routed
/// with the dynamic partner index on and off, and the two routed trees
/// must be bit-identical (trees_identical).
struct IndexDiffOptions {
  int num_designs{25};
  std::uint64_t seed{2026};
  std::string dump_dir;  ///< write failing artifacts here ("" = off)
};

[[nodiscard]] DiffStats run_index_differential(const IndexDiffOptions& opts);

/// Options for the incremental-ECO differential (gcr_check --eco-diff).
/// For each random design a random DesignDelta is drawn (rotating through
/// single-move, removal, addition, mixed structural and stream-replacement
/// edits) and, for every greedy TopologyScheme plus the GatedReduced
/// cone-reduction leg, eco::route_incremental is cross-checked against a
/// from-scratch route of the applied design:
///
///   * the incremental result passes the full invariant catalogue;
///   * incremental == from-scratch (trees_identical), or -- when the spine
///     re-merge legitimately picks a different order -- the symmetric
///     total-swcap ratio stays within `max_swcap_ratio` (the documented
///     equivalence-or-bounded-delta contract, docs/incremental.md);
///   * every out-of-cone carried-over node preserves its bottom-up fields
///     (edge length, gate bit/size, cap, delay) bit-for-bit from the
///     previous route (structural deltas; placement is excluded);
///   * 1 vs 4 worker threads produce bit-identical incremental trees.
struct EcoDiffOptions {
  int num_designs{25};
  std::uint64_t seed{2026};
  std::string dump_dir;  ///< write failing artifacts here ("" = off)
  /// Bounded-delta arm: when the trees differ, the larger total switched
  /// capacitance may exceed the smaller by at most this factor. The
  /// generator's adversarial corner designs (a handful of sinks, where one
  /// re-decided merge near the root shifts W(S) wholesale) reach ~2.6x
  /// over hundreds of design sweeps; realistic regimes stay close to 1
  /// (the eco bench group pins the n=2048/16384 behaviour separately).
  double max_swcap_ratio{3.0};
};

[[nodiscard]] DiffStats run_eco_differential(const EcoDiffOptions& opts);

}  // namespace gcr::verify

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/design.h"
#include "guard/status.h"

namespace gcr::verify {

struct Report;  // invariants.h

/// \file generator.h
/// Seeded randomized design generator for the verification harness. Unlike
/// the benchdata generators (which reproduce the paper's evaluation regime)
/// this one aims for *coverage*: degenerate sink clouds, skewed IFT/IMATT
/// distributions, tiny and bursty instruction streams -- the inputs a perf
/// refactor is most likely to get wrong. Everything is a pure function of
/// the spec, so a failing case replays from its seed alone.

/// Shape of the random sink cloud.
enum class SinkCloud {
  Uniform,    ///< uniform over the die (the r-benchmark regime)
  Clustered,  ///< a few dense blobs, as placed macros produce
  Ring,       ///< periphery-only: maximal pairwise distances, empty center
  Diagonal,   ///< collinear-ish band: degenerate merging-segment geometry
};

[[nodiscard]] std::string_view sink_cloud_name(SinkCloud c);

struct DesignSpec {
  std::uint64_t seed{1};
  int num_sinks{32};
  double die_side{8000.0};
  SinkCloud cloud{SinkCloud::Uniform};
  double cap_lo{0.005};  ///< sink load cap range [pF]
  double cap_hi{0.06};
  int num_instructions{16};
  int stream_length{2000};
  double module_fraction{0.35};  ///< expected fraction of modules per instr
  double locality{0.8};          ///< Markov self-transition probability
  double zipf_s{1.0};  ///< instruction-popularity skew (0 = uniform IFT)
  bool constant_modules{false};  ///< include an always-on and a never-on module
};

/// Derive a full spec from a single seed: every field (cloud shape, sizes,
/// stream statistics) is sampled from the seed, covering the corner regimes
/// with non-trivial probability. Deterministic -- the replay contract.
[[nodiscard]] DesignSpec random_spec(std::uint64_t seed);

/// Generate the design (sinks + RTL module map + instruction stream) from a
/// spec. Module i is sink i (identity mapping).
[[nodiscard]] core::Design generate_design(const DesignSpec& spec);

/// Dump a failing case as a replayable JSON artifact (schema
/// "gcr.verify_artifact"): the full spec, so `gcr_check --replay <seed>`
/// (or generate_design on the recorded fields) reproduces it, plus the
/// invariant violations when a report is given.
void write_design_artifact(std::ostream& os, const DesignSpec& spec,
                           const std::string& stage,
                           const Report* failure = nullptr);

/// Parse an artifact written by write_design_artifact back into the spec it
/// recorded, so `gcr_check --replay <artifact.json>` works on the file a
/// failing run dumped. Errors (unreadable stream, malformed JSON, wrong
/// schema, out-of-range fields) come back as a Status with a stable
/// GCR_E_* code; nothing throws. Seeds are stored as JSON numbers, so
/// values above 2^53 lose precision -- the harness only emits seeds well
/// below that.
[[nodiscard]] guard::Result<DesignSpec> load_design_artifact(
    std::istream& is, const std::string& filename = "<artifact>");

}  // namespace gcr::verify

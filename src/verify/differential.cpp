#include "verify/differential.h"

#include <cmath>
#include <fstream>
#include <optional>
#include <random>

#include "activity/brute_force.h"
#include "core/router.h"
#include "eco/delta.h"
#include "eco/incremental.h"
#include "log/logger.h"
#include "obs/metrics.h"

namespace gcr::verify {

namespace {

/// splitmix64 finalizer: decorrelates (base, index) into a design seed.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

bool trees_identical(const ct::RoutedTree& a, const ct::RoutedTree& b) {
  if (a.root != b.root || a.num_leaves != b.num_leaves ||
      a.nodes.size() != b.nodes.size())
    return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const ct::RoutedNode& x = a.nodes[i];
    const ct::RoutedNode& y = b.nodes[i];
    if (x.left != y.left || x.right != y.right || x.parent != y.parent ||
        x.loc.x != y.loc.x || x.loc.y != y.loc.y ||
        x.edge_len != y.edge_len || x.gated != y.gated ||
        x.gate_size != y.gate_size || x.down_cap != y.down_cap ||
        x.delay != y.delay)
      return false;
  }
  return true;
}

namespace {

struct Driver {
  const DiffOptions& opts;
  DiffStats stats;

  void fail(const DesignSpec& spec, std::string stage, std::string message,
            Report report = {}) {
    if (!opts.dump_dir.empty()) {
      std::ofstream os(opts.dump_dir + "/verify_fail_" +
                       std::to_string(spec.seed) + ".json");
      if (os) write_design_artifact(os, spec, stage, &report);
    }
    stats.failures.push_back(
        {spec, std::move(stage), std::move(message), std::move(report)});
    if (obs::metrics_enabled()) {
      obs::Registry::global().counter("verify.diff_failures").inc();
    }
  }

  /// Route + invariant-check one configuration; returns the result only
  /// when it verified clean.
  std::optional<core::RouterResult> route_checked(
      const core::GatedClockRouter& router, const DesignSpec& spec,
      const core::RouterOptions& ropts, const std::string& stage) {
    core::RouterResult res = router.route(ropts);
    ++stats.routes;
    Report rep = verify_result(router, ropts, res);
    if (!rep.ok()) {
      fail(spec, stage, "invariant violations", std::move(rep));
      return std::nullopt;
    }
    return res;
  }

  void check_activity_oracle(const core::GatedClockRouter& router,
                             const DesignSpec& spec, std::mt19937_64& rng) {
    const core::Design& d = router.design();
    const activity::BruteForceActivity oracle(d.rtl, d.stream);
    const activity::ActivityAnalyzer& table = router.analyzer();
    const int n = d.rtl.num_modules();

    const auto diff = [&](const activity::ModuleSet& s, const char* what) {
      ++stats.activity_checks;
      const double ts = table.signal_prob_of_modules(s);
      const double bs = oracle.signal_prob(s);
      if (std::abs(ts - bs) > 1e-9) {
        fail(spec, "activity-oracle",
             std::string("signal_prob mismatch on ") + what + ": table " +
                 std::to_string(ts) + " vs oracle " + std::to_string(bs));
        return;
      }
      const double tt = table.transition_prob_of_modules(s);
      const double bt = oracle.transition_prob(s);
      if (std::abs(tt - bt) > 1e-9) {
        fail(spec, "activity-oracle",
             std::string("transition_prob mismatch on ") + what + ": table " +
                 std::to_string(tt) + " vs oracle " + std::to_string(bt));
      }
    };

    activity::ModuleSet none(n);
    diff(none, "the empty set");
    activity::ModuleSet all(n);
    for (int m = 0; m < n; ++m) all.set(m);
    diff(all, "the all-modules set");
    std::uniform_int_distribution<int> pick(0, n - 1);
    std::uniform_int_distribution<int> size(1, n);
    for (int trial = 0; trial < opts.activity_trials; ++trial) {
      activity::ModuleSet s(n);
      const int k = size(rng);
      for (int j = 0; j < k; ++j) s.set(pick(rng));
      diff(s, "a random set");
    }
  }

  void run_design(std::uint64_t dseed) {
    const DesignSpec spec = random_spec(dseed);
    GCR_LOG_DEBUG("verify.design")
        .kv("index", stats.designs)
        .kv("seed", spec.seed)
        .kv("sinks", spec.num_sinks)
        .kv("cloud", sink_cloud_name(spec.cloud))
        .kv("instructions", spec.num_instructions)
        .kv("stream_length", spec.stream_length);
    const core::GatedClockRouter router(generate_design(spec));
    ++stats.designs;

    std::mt19937_64 rng(mix(dseed ^ 0xabcdefull));
    check_activity_oracle(router, spec, rng);

    // Every topology scheme must yield an invariant-clean gated tree.
    using Scheme = core::TopologyScheme;
    double flat_swcap_wl = -1.0;
    std::optional<ct::RoutedTree> flat_swcap_tree;
    for (const auto& [scheme, name] :
         {std::pair{Scheme::MinSwitchedCap, "swcap"},
          std::pair{Scheme::NearestNeighbor, "nn"},
          std::pair{Scheme::ActivityOnly, "activity"},
          std::pair{Scheme::Mmm, "mmm"}}) {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Gated;
      ropts.topology = scheme;
      const auto res = route_checked(router, spec, ropts,
                                     std::string("route:gated:") + name);
      if (res && scheme == Scheme::MinSwitchedCap) {
        flat_swcap_wl = res->tree.total_wirelength();
        flat_swcap_tree = res->tree;
        // Metamorphic: gating every edge never beats the ungated reference
        // of the same tree (masking only removes switching).
        if (res->swcap.clock_swcap >
            res->swcap.ungated_swcap * (1.0 + 1e-9)) {
          fail(spec, "route:gated:swcap",
               "gated W(T) exceeds the ungated reference of the same tree");
        }
        if (opts.reduction_check) {
          core::RouterOptions reduced = ropts;
          reduced.style = core::TreeStyle::GatedReduced;
          reduced.auto_tune_reduction = true;
          const auto red = route_checked(router, spec, reduced,
                                         "route:reduced:swcap");
          if (red) {
            Report rrep;
            check_gate_reduction(res->swcap.total_swcap(),
                                 red->swcap.total_swcap(), rrep);
            if (!rrep.ok()) {
              fail(spec, "reduction-monotone",
                   "auto-tuned reduction increased total switched cap",
                   std::move(rrep));
            }
          }
        }
      }
    }

    // The buffered baseline verifies with buffer parameters.
    {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Buffered;
      route_checked(router, spec, ropts, "route:buffered");
    }

    // Serial vs multi-threaded Eq. 3 greedy: the gcr::par determinism
    // contract says the routed tree is bit-identical at any width.
    if (opts.thread_check) {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Gated;
      ropts.topology = Scheme::MinSwitchedCap;
      ropts.num_threads = 1;
      const auto serial =
          route_checked(router, spec, ropts, "thread-determinism");
      ropts.num_threads = 4;
      const auto wide =
          route_checked(router, spec, ropts, "thread-determinism");
      if (serial && wide && !trees_identical(serial->tree, wide->tree)) {
        fail(spec, "thread-determinism",
             "routed trees differ between 1 and 4 worker threads");
      }
    }

    // Indexed vs exhaustive partner selection: disabling the dynamic
    // partner index must reproduce the default (indexed) Eq. 3 tree
    // bit-for-bit (cts::BuildOptions::partner_index contract).
    if (opts.index_check && flat_swcap_tree) {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Gated;
      ropts.topology = Scheme::MinSwitchedCap;
      ropts.partner_index = false;
      const auto exhaustive =
          route_checked(router, spec, ropts, "index-determinism");
      if (exhaustive && !trees_identical(*flat_swcap_tree, exhaustive->tree)) {
        fail(spec, "index-determinism",
             "indexed and exhaustive partner selection routed different "
             "trees");
      }
    }

    // Flat vs clustered greedy: same zero-skew guarantee (enforced by the
    // invariant check), wirelength within the documented factor.
    if (opts.clustered_check && flat_swcap_wl > 0.0) {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Gated;
      ropts.topology = Scheme::MinSwitchedCap;
      ropts.clustered = true;
      const auto res =
          route_checked(router, spec, ropts, "route:gated:clustered");
      if (res && spec.num_sinks >= opts.clustered_min_sinks) {
        const double wl = res->tree.total_wirelength();
        GCR_LOG_DEBUG("verify.clustered_ratio")
            .kv("seed", spec.seed)
            .kv("ratio", wl / flat_swcap_wl);
        if (wl > opts.clustered_wl_factor * flat_swcap_wl + 1e-6) {
          fail(spec, "clustered-wirelength",
               "clustered wirelength " + std::to_string(wl) +
                   " exceeds " +
                   std::to_string(opts.clustered_wl_factor) +
                   "x flat (" + std::to_string(flat_swcap_wl) + ")");
        }
      }
    }
  }
};

}  // namespace

std::uint64_t design_seed(std::uint64_t base, int index) {
  return mix(base + static_cast<std::uint64_t>(index));
}

DiffStats run_differential(const DiffOptions& opts) {
  Driver driver{opts, {}};
  if (!opts.explicit_seeds.empty()) {
    for (const std::uint64_t s : opts.explicit_seeds) driver.run_design(s);
  } else {
    for (int i = 0; i < opts.num_designs; ++i) {
      driver.run_design(design_seed(opts.seed, i));
    }
  }
  return std::move(driver.stats);
}

namespace {

/// Draw a random ECO delta for `base`. The design index rotates through
/// the edit families so every sweep covers single moves, removals,
/// additions, mixed structural edits and workload (stream) replacement;
/// the touched-sink sets are kept disjoint (validate_delta's contract).
eco::DesignDelta random_delta(const core::Design& base, int index,
                              std::mt19937_64& rng) {
  eco::DesignDelta d;
  const int n = base.num_sinks();
  std::uniform_real_distribution<double> px(base.die.xlo, base.die.xhi);
  std::uniform_real_distribution<double> py(base.die.ylo, base.die.yhi);
  std::uniform_real_distribution<double> pcap(0.005, 0.06);
  std::uniform_int_distribution<int> pick(0, n - 1);
  std::uniform_int_distribution<int> pmod(0, base.rtl.num_modules() - 1);
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  const auto fresh = [&] {
    int s = pick(rng);
    while (used[static_cast<std::size_t>(s)]) s = (s + 1) % n;
    used[static_cast<std::size_t>(s)] = 1;
    return s;
  };
  const auto add_move = [&] { d.moves.push_back({fresh(), {px(rng), py(rng)}}); };
  const auto add_sink = [&] {
    d.adds.push_back({{{px(rng), py(rng)}, pcap(rng)}, pmod(rng)});
  };
  switch (index % 5) {
    case 0:
      add_move();
      break;
    case 1:
      if (n >= 2)
        d.removes.push_back(fresh());
      else
        add_move();
      break;
    case 2:
      add_sink();
      break;
    case 3:
      add_move();
      if (n >= 3) d.removes.push_back(fresh());
      add_sink();
      break;
    default: {
      activity::InstructionStream s;
      const int len = std::max(1, base.stream.length() / 2);
      std::uniform_int_distribution<int> instr(
          0, base.rtl.num_instructions() - 1);
      s.seq.reserve(static_cast<std::size_t>(len));
      for (int t = 0; t < len; ++t) s.seq.push_back(instr(rng));
      d.stream = std::move(s);
      break;
    }
  }
  return d;
}

}  // namespace

DiffStats run_eco_differential(const EcoDiffOptions& opts) {
  DiffOptions dopts;
  dopts.dump_dir = opts.dump_dir;
  Driver driver{dopts, {}};
  using Scheme = core::TopologyScheme;
  for (int i = 0; i < opts.num_designs; ++i) {
    const std::uint64_t dseed = design_seed(opts.seed, i);
    const DesignSpec spec = random_spec(dseed);
    const core::Design base = generate_design(spec);
    const core::GatedClockRouter router(base);
    ++driver.stats.designs;
    std::mt19937_64 rng(mix(dseed ^ 0xec0ull));
    const eco::DesignDelta delta = random_delta(base, i, rng);
    GCR_LOG_DEBUG("verify.eco_diff_design")
        .kv("index", i)
        .kv("seed", spec.seed)
        .kv("sinks", spec.num_sinks)
        .kv("moves", static_cast<int>(delta.moves.size()))
        .kv("removes", static_cast<int>(delta.removes.size()))
        .kv("adds", static_cast<int>(delta.adds.size()))
        .kv("stream_replaced", delta.stream.has_value());
    {
      guard::Diag diag;
      if (!eco::validate_delta(base, delta, diag)) {
        driver.fail(spec, "eco-diff:delta",
                    "generated delta failed validation: " +
                        diag.first_error().message);
        continue;
      }
    }
    const core::GatedClockRouter next_router(eco::apply_delta(base, delta));

    const auto check_config = [&](Scheme scheme, const char* name,
                                  core::TreeStyle style,
                                  const char* style_name) {
      core::RouterOptions ropts;
      ropts.style = style;
      ropts.topology = scheme;
      ropts.num_threads = 1;
      const std::string stage =
          std::string("eco-diff:") + name + ":" + style_name;
      const core::RouterResult prev = router.route(ropts);
      ++driver.stats.routes;
      eco::EcoInfo info;
      const core::RouteOutcome inc = eco::route_incremental(
          router, prev, delta, ropts, &info);
      ++driver.stats.routes;
      if (!inc.result.has_value()) {
        driver.fail(spec, stage,
                    "incremental route failed: " +
                        (inc.diag.error_count() > 0
                             ? inc.diag.first_error().message
                             : std::string("no result")));
        return;
      }
      const ct::RoutedTree& tree = inc.result->tree;

      // The gcr::par determinism contract extends to the spine re-merge.
      core::RouterOptions wide = ropts;
      wide.num_threads = 4;
      const core::RouteOutcome inc4 =
          eco::route_incremental(router, prev, delta, wide);
      ++driver.stats.routes;
      if (!inc4.result.has_value() ||
          !trees_identical(tree, inc4.result->tree)) {
        driver.fail(spec, stage + ":threads",
                    "incremental trees differ between 1 and 4 worker "
                    "threads");
      }

      // The incremental result must verify exactly like a from-scratch
      // route of the applied design.
      Report rep = verify_result(next_router, ropts, *inc.result);
      if (!rep.ok()) {
        driver.fail(spec, stage + ":invariants",
                    "incremental result violates invariants",
                    std::move(rep));
        return;
      }

      // Equivalence-or-bounded-delta arm against a from-scratch route.
      const core::RouterResult scratch = next_router.route(ropts);
      ++driver.stats.routes;
      if (!trees_identical(tree, scratch.tree)) {
        const double a = inc.result->swcap.total_swcap();
        const double b = scratch.swcap.total_swcap();
        const double ratio =
            std::max(a, b) / std::max(std::min(a, b), 1e-30);
        GCR_LOG_DEBUG("verify.eco_swcap_ratio")
            .kv("seed", spec.seed)
            .kv("stage", stage)
            .kv("ratio", ratio);
        if (!(ratio <= opts.max_swcap_ratio)) {
          driver.fail(spec, stage + ":swcap",
                      "incremental tree differs from scratch and the "
                      "total-swcap ratio " +
                          std::to_string(ratio) + " exceeds " +
                          std::to_string(opts.max_swcap_ratio));
        }
      }

      // Preservation: outside the cone every carried-over node keeps its
      // bottom-up fields bit-for-bit (structural deltas; a stream
      // replacement re-decides gates wherever probabilities moved, so the
      // cone itself is the contract there).
      if (!delta.stream.has_value()) {
        for (int id = 0; id < tree.num_nodes(); ++id) {
          if (info.in_cone[static_cast<std::size_t>(id)]) continue;
          const int old = info.old_of[static_cast<std::size_t>(id)];
          if (old < 0) continue;
          const ct::RoutedNode& x = tree.node(id);
          const ct::RoutedNode& y = prev.tree.node(old);
          const char* field = nullptr;
          if (x.edge_len != y.edge_len) field = "edge_len";
          else if (x.gated != y.gated) field = "gated";
          else if (x.gate_size != y.gate_size) field = "gate_size";
          else if (x.down_cap != y.down_cap) field = "down_cap";
          else if (x.delay != y.delay) field = "delay";
          if (field != nullptr) {
            driver.fail(spec, stage + ":preserve",
                        "out-of-cone node " + std::to_string(id) +
                            " (prev " + std::to_string(old) +
                            ") was not preserved bit-identically: " + field);
            break;
          }
        }
      }
    };

    for (const auto& [scheme, name] :
         {std::pair{Scheme::MinSwitchedCap, "swcap"},
          std::pair{Scheme::NearestNeighbor, "nn"},
          std::pair{Scheme::ActivityOnly, "activity"},
          std::pair{Scheme::Mmm, "mmm"}}) {
      check_config(scheme, name, core::TreeStyle::Gated, "gated");
    }
    check_config(Scheme::MinSwitchedCap, "swcap",
                 core::TreeStyle::GatedReduced, "reduced");
  }
  return std::move(driver.stats);
}

DiffStats run_index_differential(const IndexDiffOptions& opts) {
  DiffOptions dopts;
  dopts.dump_dir = opts.dump_dir;
  Driver driver{dopts, {}};
  using Scheme = core::TopologyScheme;
  for (int i = 0; i < opts.num_designs; ++i) {
    const std::uint64_t dseed = design_seed(opts.seed, i);
    const DesignSpec spec = random_spec(dseed);
    GCR_LOG_DEBUG("verify.index_diff_design")
        .kv("index", i)
        .kv("seed", spec.seed)
        .kv("sinks", spec.num_sinks)
        .kv("cloud", sink_cloud_name(spec.cloud));
    const core::GatedClockRouter router(generate_design(spec));
    ++driver.stats.designs;
    for (const auto& [scheme, name] :
         {std::pair{Scheme::MinSwitchedCap, "swcap"},
          std::pair{Scheme::NearestNeighbor, "nn"},
          std::pair{Scheme::ActivityOnly, "activity"},
          std::pair{Scheme::Mmm, "mmm"}}) {
      for (const bool clustered : {false, true}) {
        for (const int threads : {1, 4}) {
          core::RouterOptions ropts;
          ropts.style = core::TreeStyle::Gated;
          ropts.topology = scheme;
          ropts.clustered = clustered;
          ropts.num_threads = threads;
          ropts.partner_index = true;
          const core::RouterResult indexed = router.route(ropts);
          ropts.partner_index = false;
          const core::RouterResult exhaustive = router.route(ropts);
          driver.stats.routes += 2;
          if (!trees_identical(indexed.tree, exhaustive.tree)) {
            driver.fail(spec,
                        std::string("index-diff:") + name +
                            (clustered ? ":clustered" : ":flat") + ":t" +
                            std::to_string(threads),
                        "indexed and exhaustive partner selection routed "
                        "different trees");
          }
        }
      }
    }
  }
  return std::move(driver.stats);
}

}  // namespace gcr::verify

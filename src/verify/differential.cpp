#include "verify/differential.h"

#include <cmath>
#include <fstream>
#include <optional>
#include <random>

#include "activity/brute_force.h"
#include "core/router.h"
#include "log/logger.h"
#include "obs/metrics.h"

namespace gcr::verify {

namespace {

/// splitmix64 finalizer: decorrelates (base, index) into a design seed.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

bool trees_identical(const ct::RoutedTree& a, const ct::RoutedTree& b) {
  if (a.root != b.root || a.num_leaves != b.num_leaves ||
      a.nodes.size() != b.nodes.size())
    return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const ct::RoutedNode& x = a.nodes[i];
    const ct::RoutedNode& y = b.nodes[i];
    if (x.left != y.left || x.right != y.right || x.parent != y.parent ||
        x.loc.x != y.loc.x || x.loc.y != y.loc.y ||
        x.edge_len != y.edge_len || x.gated != y.gated ||
        x.gate_size != y.gate_size || x.down_cap != y.down_cap ||
        x.delay != y.delay)
      return false;
  }
  return true;
}

namespace {

struct Driver {
  const DiffOptions& opts;
  DiffStats stats;

  void fail(const DesignSpec& spec, std::string stage, std::string message,
            Report report = {}) {
    if (!opts.dump_dir.empty()) {
      std::ofstream os(opts.dump_dir + "/verify_fail_" +
                       std::to_string(spec.seed) + ".json");
      if (os) write_design_artifact(os, spec, stage, &report);
    }
    stats.failures.push_back(
        {spec, std::move(stage), std::move(message), std::move(report)});
    if (obs::metrics_enabled()) {
      obs::Registry::global().counter("verify.diff_failures").inc();
    }
  }

  /// Route + invariant-check one configuration; returns the result only
  /// when it verified clean.
  std::optional<core::RouterResult> route_checked(
      const core::GatedClockRouter& router, const DesignSpec& spec,
      const core::RouterOptions& ropts, const std::string& stage) {
    core::RouterResult res = router.route(ropts);
    ++stats.routes;
    Report rep = verify_result(router, ropts, res);
    if (!rep.ok()) {
      fail(spec, stage, "invariant violations", std::move(rep));
      return std::nullopt;
    }
    return res;
  }

  void check_activity_oracle(const core::GatedClockRouter& router,
                             const DesignSpec& spec, std::mt19937_64& rng) {
    const core::Design& d = router.design();
    const activity::BruteForceActivity oracle(d.rtl, d.stream);
    const activity::ActivityAnalyzer& table = router.analyzer();
    const int n = d.rtl.num_modules();

    const auto diff = [&](const activity::ModuleSet& s, const char* what) {
      ++stats.activity_checks;
      const double ts = table.signal_prob_of_modules(s);
      const double bs = oracle.signal_prob(s);
      if (std::abs(ts - bs) > 1e-9) {
        fail(spec, "activity-oracle",
             std::string("signal_prob mismatch on ") + what + ": table " +
                 std::to_string(ts) + " vs oracle " + std::to_string(bs));
        return;
      }
      const double tt = table.transition_prob_of_modules(s);
      const double bt = oracle.transition_prob(s);
      if (std::abs(tt - bt) > 1e-9) {
        fail(spec, "activity-oracle",
             std::string("transition_prob mismatch on ") + what + ": table " +
                 std::to_string(tt) + " vs oracle " + std::to_string(bt));
      }
    };

    activity::ModuleSet none(n);
    diff(none, "the empty set");
    activity::ModuleSet all(n);
    for (int m = 0; m < n; ++m) all.set(m);
    diff(all, "the all-modules set");
    std::uniform_int_distribution<int> pick(0, n - 1);
    std::uniform_int_distribution<int> size(1, n);
    for (int trial = 0; trial < opts.activity_trials; ++trial) {
      activity::ModuleSet s(n);
      const int k = size(rng);
      for (int j = 0; j < k; ++j) s.set(pick(rng));
      diff(s, "a random set");
    }
  }

  void run_design(std::uint64_t dseed) {
    const DesignSpec spec = random_spec(dseed);
    GCR_LOG_DEBUG("verify.design")
        .kv("index", stats.designs)
        .kv("seed", spec.seed)
        .kv("sinks", spec.num_sinks)
        .kv("cloud", sink_cloud_name(spec.cloud))
        .kv("instructions", spec.num_instructions)
        .kv("stream_length", spec.stream_length);
    const core::GatedClockRouter router(generate_design(spec));
    ++stats.designs;

    std::mt19937_64 rng(mix(dseed ^ 0xabcdefull));
    check_activity_oracle(router, spec, rng);

    // Every topology scheme must yield an invariant-clean gated tree.
    using Scheme = core::TopologyScheme;
    double flat_swcap_wl = -1.0;
    std::optional<ct::RoutedTree> flat_swcap_tree;
    for (const auto& [scheme, name] :
         {std::pair{Scheme::MinSwitchedCap, "swcap"},
          std::pair{Scheme::NearestNeighbor, "nn"},
          std::pair{Scheme::ActivityOnly, "activity"},
          std::pair{Scheme::Mmm, "mmm"}}) {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Gated;
      ropts.topology = scheme;
      const auto res = route_checked(router, spec, ropts,
                                     std::string("route:gated:") + name);
      if (res && scheme == Scheme::MinSwitchedCap) {
        flat_swcap_wl = res->tree.total_wirelength();
        flat_swcap_tree = res->tree;
        // Metamorphic: gating every edge never beats the ungated reference
        // of the same tree (masking only removes switching).
        if (res->swcap.clock_swcap >
            res->swcap.ungated_swcap * (1.0 + 1e-9)) {
          fail(spec, "route:gated:swcap",
               "gated W(T) exceeds the ungated reference of the same tree");
        }
        if (opts.reduction_check) {
          core::RouterOptions reduced = ropts;
          reduced.style = core::TreeStyle::GatedReduced;
          reduced.auto_tune_reduction = true;
          const auto red = route_checked(router, spec, reduced,
                                         "route:reduced:swcap");
          if (red) {
            Report rrep;
            check_gate_reduction(res->swcap.total_swcap(),
                                 red->swcap.total_swcap(), rrep);
            if (!rrep.ok()) {
              fail(spec, "reduction-monotone",
                   "auto-tuned reduction increased total switched cap",
                   std::move(rrep));
            }
          }
        }
      }
    }

    // The buffered baseline verifies with buffer parameters.
    {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Buffered;
      route_checked(router, spec, ropts, "route:buffered");
    }

    // Serial vs multi-threaded Eq. 3 greedy: the gcr::par determinism
    // contract says the routed tree is bit-identical at any width.
    if (opts.thread_check) {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Gated;
      ropts.topology = Scheme::MinSwitchedCap;
      ropts.num_threads = 1;
      const auto serial =
          route_checked(router, spec, ropts, "thread-determinism");
      ropts.num_threads = 4;
      const auto wide =
          route_checked(router, spec, ropts, "thread-determinism");
      if (serial && wide && !trees_identical(serial->tree, wide->tree)) {
        fail(spec, "thread-determinism",
             "routed trees differ between 1 and 4 worker threads");
      }
    }

    // Indexed vs exhaustive partner selection: disabling the dynamic
    // partner index must reproduce the default (indexed) Eq. 3 tree
    // bit-for-bit (cts::BuildOptions::partner_index contract).
    if (opts.index_check && flat_swcap_tree) {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Gated;
      ropts.topology = Scheme::MinSwitchedCap;
      ropts.partner_index = false;
      const auto exhaustive =
          route_checked(router, spec, ropts, "index-determinism");
      if (exhaustive && !trees_identical(*flat_swcap_tree, exhaustive->tree)) {
        fail(spec, "index-determinism",
             "indexed and exhaustive partner selection routed different "
             "trees");
      }
    }

    // Flat vs clustered greedy: same zero-skew guarantee (enforced by the
    // invariant check), wirelength within the documented factor.
    if (opts.clustered_check && flat_swcap_wl > 0.0) {
      core::RouterOptions ropts;
      ropts.style = core::TreeStyle::Gated;
      ropts.topology = Scheme::MinSwitchedCap;
      ropts.clustered = true;
      const auto res =
          route_checked(router, spec, ropts, "route:gated:clustered");
      if (res && spec.num_sinks >= opts.clustered_min_sinks) {
        const double wl = res->tree.total_wirelength();
        GCR_LOG_DEBUG("verify.clustered_ratio")
            .kv("seed", spec.seed)
            .kv("ratio", wl / flat_swcap_wl);
        if (wl > opts.clustered_wl_factor * flat_swcap_wl + 1e-6) {
          fail(spec, "clustered-wirelength",
               "clustered wirelength " + std::to_string(wl) +
                   " exceeds " +
                   std::to_string(opts.clustered_wl_factor) +
                   "x flat (" + std::to_string(flat_swcap_wl) + ")");
        }
      }
    }
  }
};

}  // namespace

std::uint64_t design_seed(std::uint64_t base, int index) {
  return mix(base + static_cast<std::uint64_t>(index));
}

DiffStats run_differential(const DiffOptions& opts) {
  Driver driver{opts, {}};
  if (!opts.explicit_seeds.empty()) {
    for (const std::uint64_t s : opts.explicit_seeds) driver.run_design(s);
  } else {
    for (int i = 0; i < opts.num_designs; ++i) {
      driver.run_design(design_seed(opts.seed, i));
    }
  }
  return std::move(driver.stats);
}

DiffStats run_index_differential(const IndexDiffOptions& opts) {
  DiffOptions dopts;
  dopts.dump_dir = opts.dump_dir;
  Driver driver{dopts, {}};
  using Scheme = core::TopologyScheme;
  for (int i = 0; i < opts.num_designs; ++i) {
    const std::uint64_t dseed = design_seed(opts.seed, i);
    const DesignSpec spec = random_spec(dseed);
    GCR_LOG_DEBUG("verify.index_diff_design")
        .kv("index", i)
        .kv("seed", spec.seed)
        .kv("sinks", spec.num_sinks)
        .kv("cloud", sink_cloud_name(spec.cloud));
    const core::GatedClockRouter router(generate_design(spec));
    ++driver.stats.designs;
    for (const auto& [scheme, name] :
         {std::pair{Scheme::MinSwitchedCap, "swcap"},
          std::pair{Scheme::NearestNeighbor, "nn"},
          std::pair{Scheme::ActivityOnly, "activity"},
          std::pair{Scheme::Mmm, "mmm"}}) {
      for (const bool clustered : {false, true}) {
        for (const int threads : {1, 4}) {
          core::RouterOptions ropts;
          ropts.style = core::TreeStyle::Gated;
          ropts.topology = scheme;
          ropts.clustered = clustered;
          ropts.num_threads = threads;
          ropts.partner_index = true;
          const core::RouterResult indexed = router.route(ropts);
          ropts.partner_index = false;
          const core::RouterResult exhaustive = router.route(ropts);
          driver.stats.routes += 2;
          if (!trees_identical(indexed.tree, exhaustive.tree)) {
            driver.fail(spec,
                        std::string("index-diff:") + name +
                            (clustered ? ":clustered" : ":flat") + ":t" +
                            std::to_string(threads),
                        "indexed and exhaustive partner selection routed "
                        "different trees");
          }
        }
      }
    }
  }
  return std::move(driver.stats);
}

}  // namespace gcr::verify

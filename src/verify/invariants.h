#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "clocktree/elmore.h"
#include "clocktree/routed_tree.h"
#include "core/router.h"
#include "gating/controller.h"
#include "gating/swcap.h"
#include "tech/params.h"

/// \file invariants.h
/// Cross-cutting invariant checker over routed gated clock trees. The
/// paper's claims rest on exact properties -- zero Elmore skew at every
/// merge (Tsay'91 machinery) and a switched-capacitance objective whose
/// value is reproducible from first principles (section 2, W(T) + W(S)) --
/// so every checker here re-derives its quantity from the routed tree and
/// the technology parameters alone and compares against the stored /
/// reported values. None of the construction-phase arithmetic is reused:
/// caps and delays are recomputed with a fresh traversal, enable domains by
/// explicit ancestor walks, star lengths by brute-force nearest-controller
/// scans. A perf refactor that corrupts any of the machinery therefore
/// cannot also corrupt its own referee.
///
/// The catalogue (see docs/verification.md for paper-equation references):
///   Structure        parent/child/root bookkeeping is a single binary tree
///   Geometry         edge_len >= Manhattan(node, parent); 0 at the root
///   CapConsistency   stored down_cap == re-derived downstream capacitance
///   DelayConsistency stored subtree delay == re-derived zero-skew delay
///   MergeBalance     sibling branch delays agree at every merge (zero skew)
///   Skew             re-derived sink skew == 0, or <= the bound
///   ActivityMask     node masks are unions of leaf masks; P / P_tr match
///                    the analyzer exactly
///   ActivityMonotone P(EN) never decreases from a node to its parent
///   SwCapRecompute   W(T) + W(S) from first principles within 1e-9 of the
///                    evaluator's report
///   ControllerCover  every surviving gate is served by its *nearest*
///                    controller and counted in the report
///   GateReduction    reduction never increased total switched capacitance
///   DelayReport      the result's DelayReport matches the re-derivation

namespace gcr::verify {

enum class Invariant {
  Structure,
  Geometry,
  CapConsistency,
  DelayConsistency,
  MergeBalance,
  Skew,
  ActivityMask,
  ActivityMonotone,
  SwCapRecompute,
  ControllerCover,
  GateReduction,
  DelayReport,
};

[[nodiscard]] std::string_view invariant_name(Invariant inv);

struct Violation {
  Invariant invariant;
  int node{-1};  ///< offending node id, -1 for tree-global violations
  double measured{0.0};
  double expected{0.0};
  std::string message;
};

/// Comparison tolerances. The defaults encode the contract the paper's
/// exactness claims imply: probabilities and capacitances are sums of a few
/// thousand doubles (tolerance ~1e-9 absolute / relative), delays compare
/// relative to their own magnitude, geometry to placement resolution.
struct Tolerances {
  double rel_delay{1e-6};   ///< skew / delay comparisons, relative
  double abs_cap{1e-9};     ///< capacitance comparisons [pF]
  double rel_swcap{1e-9};   ///< W(T)+W(S) recompute vs the evaluator
  double abs_geom{1e-6};    ///< edge length vs placed distance [lambda]
  double abs_prob{1e-12};   ///< probability comparisons
};

struct Report {
  std::vector<Violation> violations;
  int checks_run{0};  ///< invariant families executed

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Human-readable listing: one line per violation, or "ok".
  [[nodiscard]] std::string summary() const;
};

/// Thrown by the router self-check hook (make_self_check) on violation.
class VerificationError : public std::runtime_error {
 public:
  explicit VerificationError(Report rep)
      : std::runtime_error(rep.summary()), report_(std::move(rep)) {}
  [[nodiscard]] const Report& report() const { return report_; }

 private:
  Report report_;
};

// ---- individual invariant families ------------------------------------

/// Structure: every node reachable from the root exactly once, leaf ids
/// 0..num_leaves-1, internal nodes binary, parent pointers consistent, the
/// root carries no gate.
void check_structure(const ct::RoutedTree& tree, Report& rep);

/// Geometry: a routed edge is at least as long as the Manhattan distance
/// between its placed endpoints (snaking only adds wire), the root edge is
/// zero-length, and gate sizes are positive.
void check_geometry(const ct::RoutedTree& tree, Report& rep,
                    const Tolerances& tol = {});

/// Electrical re-derivation: downstream caps bottom-up, subtree delays and
/// per-merge branch balance (zero-skew mode), source-to-sink skew against
/// `skew_bound` (0 = exact). For bounded trees (`skew_bound > 0`) the
/// per-merge balance and stored-delay checks are skipped -- node.delay
/// stores the subtree's dmax there and siblings legitimately differ.
void check_electrical(const ct::RoutedTree& tree, const tech::TechParams& tech,
                      double skew_bound, Report& rep,
                      const Tolerances& tol = {});

/// Activity: leaf masks match the analyzer's module masks, internal masks
/// are child unions, and the cached P(EN) / P_tr(EN) agree with fresh
/// analyzer queries on the re-derived masks.
void check_activity(const ct::RoutedTree& tree,
                    const gating::NodeActivity& act,
                    const activity::ActivityAnalyzer& analyzer,
                    const std::vector<int>& leaf_module, Report& rep,
                    const Tolerances& tol = {});

/// Monotonicity alone (no analyzer required): enables only widen towards
/// the root, so P(EN) of a child never exceeds its parent's, and all
/// probabilities lie in [0, 1].
void check_activity_monotone(const ct::RoutedTree& tree,
                             const gating::NodeActivity& act, Report& rep,
                             const Tolerances& tol = {});

/// Recompute W(T) and W(S) from first principles -- explicit
/// nearest-gated-ancestor walks for enable domains, brute-force nearest
/// controller for star lengths -- and compare every field of the report.
void check_swcap(const ct::RoutedTree& tree, const gating::NodeActivity& act,
                 const gating::ControllerPlacement& ctrl,
                 const tech::TechParams& tech, gating::CellStyle style,
                 const gating::SwCapReport& reported, Report& rep,
                 const Tolerances& tol = {});

/// Controller star covers every surviving gate: the placement's chosen
/// controller is the nearest one, the gate count matches the report, and
/// the summed star wirelength reproduces the report's.
void check_controller_cover(const ct::RoutedTree& tree,
                            const gating::ControllerPlacement& ctrl,
                            const gating::SwCapReport& reported, Report& rep,
                            const Tolerances& tol = {});

/// Gate reduction may only lower the objective it optimizes.
void check_gate_reduction(double full_total_swcap, double reduced_total_swcap,
                          Report& rep, const Tolerances& tol = {});

/// The result's DelayReport (min/max/per-sink) matches the re-derivation.
void check_delay_report(const ct::RoutedTree& tree,
                        const tech::TechParams& tech,
                        const ct::DelayReport& reported, Report& rep,
                        const Tolerances& tol = {});

// ---- one-stop entry points --------------------------------------------

/// Tree-only verification (structure, geometry, electrical): everything
/// checkable from a routed-tree dump without the design's workload, e.g.
/// `gcr_check --tree`.
[[nodiscard]] Report verify_tree(const ct::RoutedTree& tree,
                                 const tech::TechParams& tech,
                                 double skew_bound = 0.0,
                                 const Tolerances& tol = {});

/// Full verification of one router run: every family above except
/// GateReduction (which needs the pre-reduction run; the differential
/// driver covers it).
[[nodiscard]] Report verify_result(const core::GatedClockRouter& router,
                                   const core::RouterOptions& opts,
                                   const core::RouterResult& result,
                                   const Tolerances& tol = {});

/// A RouterOptions::self_check hook running verify_result and throwing
/// VerificationError on violation. `router` is captured by reference and
/// must outlive the returned hook.
[[nodiscard]] std::function<void(const core::RouterResult&,
                                 const core::RouterOptions&)>
make_self_check(const core::GatedClockRouter& router,
                const Tolerances& tol = {});

}  // namespace gcr::verify

#include "verify/invariants.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "activity/analyzer.h"
#include "geom/point.h"
#include "obs/metrics.h"

namespace gcr::verify {

namespace {

/// |a - b| within `rel * max(1, |b|)` -- the comparisons here are against
/// re-derived references, so `b` is the expected value.
bool near(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(1.0, std::abs(b));
}

void add(Report& rep, Invariant inv, int node, double measured,
         double expected, std::string message) {
  rep.violations.push_back(
      {inv, node, measured, expected, std::move(message)});
  if (obs::metrics_enabled()) {
    obs::Registry::global().counter("verify.violations").inc();
  }
}

/// Quantities re-derived from the routed tree + tech alone, sharing no code
/// with embed()/elmore_delays(). Valid only for structurally sound trees.
struct Rederived {
  std::vector<double> down;        ///< downstream cap at each node [pF]
  std::vector<double> subtree;     ///< zero-skew subtree delay via left child
  std::vector<double> sink_delay;  ///< per leaf, source-to-sink
  double max_delay{0.0};
  double min_delay{0.0};
};

/// Delay of the stage feeding node `id` (gate at the top of its parent
/// edge, then the wire), given the downstream cap `down` at `id`.
double stage_delay(const ct::RoutedNode& n, double down,
                   const tech::TechParams& t) {
  const double wl = n.edge_len;
  const double wcap = t.wire_cap(wl);
  double d = t.wire_res(wl) * (0.5 * wcap + down);
  if (n.gated) {
    d += t.gate_delay + (t.gate_output_res / n.gate_size) * (wcap + down);
  }
  return d;
}

Rederived rederive(const ct::RoutedTree& tree, const tech::TechParams& t) {
  const int n = tree.num_nodes();
  Rederived r;
  r.down.assign(static_cast<std::size_t>(n), 0.0);
  r.subtree.assign(static_cast<std::size_t>(n), 0.0);

  // Ascending ids are bottom-up (checked by check_structure).
  for (int id = 0; id < n; ++id) {
    const ct::RoutedNode& node = tree.node(id);
    if (node.is_leaf()) {
      r.down[static_cast<std::size_t>(id)] = node.down_cap;  // the sink load
      continue;
    }
    double cap = 0.0;
    const ct::RoutedNode& left = tree.node(node.left);
    cap += left.gated ? left.gate_size * t.gate_input_cap
                      : t.wire_cap(left.edge_len) +
                            r.down[static_cast<std::size_t>(node.left)];
    const ct::RoutedNode& right = tree.node(node.right);
    cap += right.gated ? right.gate_size * t.gate_input_cap
                       : t.wire_cap(right.edge_len) +
                             r.down[static_cast<std::size_t>(node.right)];
    r.down[static_cast<std::size_t>(id)] = cap;
    r.subtree[static_cast<std::size_t>(id)] =
        stage_delay(left, r.down[static_cast<std::size_t>(node.left)], t) +
        r.subtree[static_cast<std::size_t>(node.left)];
  }

  // Source-to-sink delays, parents before children (descending ids).
  std::vector<double> from_root(static_cast<std::size_t>(n), 0.0);
  r.sink_delay.assign(static_cast<std::size_t>(tree.num_leaves), 0.0);
  r.max_delay = -std::numeric_limits<double>::infinity();
  r.min_delay = std::numeric_limits<double>::infinity();
  for (int id = n - 1; id >= 0; --id) {
    const ct::RoutedNode& node = tree.node(id);
    double d = 0.0;
    if (node.parent >= 0) {
      d = from_root[static_cast<std::size_t>(node.parent)] +
          stage_delay(node, r.down[static_cast<std::size_t>(id)], t);
    }
    from_root[static_cast<std::size_t>(id)] = d;
    if (node.is_leaf()) {
      r.sink_delay[static_cast<std::size_t>(id)] = d;
      r.max_delay = std::max(r.max_delay, d);
      r.min_delay = std::min(r.min_delay, d);
    }
  }
  if (tree.num_leaves == 0) r.max_delay = r.min_delay = 0.0;
  return r;
}

/// Enable domain probability of the edge feeding node `id`: its own gate's
/// P(EN) when present, else the nearest gated ancestor's, else 1. Explicit
/// ancestor walk -- deliberately not the evaluator's propagation array.
double domain_prob(const ct::RoutedTree& tree, const gating::NodeActivity& act,
                   int id) {
  int cur = id;
  while (cur >= 0) {
    const ct::RoutedNode& node = tree.node(cur);
    if (node.parent < 0) return 1.0;
    if (node.gated) return act.p_en[static_cast<std::size_t>(cur)];
    cur = node.parent;
  }
  return 1.0;
}

/// Nearest controller by brute-force scan over every controller location.
double nearest_controller_dist(const gating::ControllerPlacement& ctrl,
                               const geom::Point& p) {
  double best = std::numeric_limits<double>::infinity();
  for (const geom::Point& c : ctrl.controller_locations()) {
    best = std::min(best, geom::manhattan_dist(p, c));
  }
  return best;
}

}  // namespace

std::string_view invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::Structure: return "Structure";
    case Invariant::Geometry: return "Geometry";
    case Invariant::CapConsistency: return "CapConsistency";
    case Invariant::DelayConsistency: return "DelayConsistency";
    case Invariant::MergeBalance: return "MergeBalance";
    case Invariant::Skew: return "Skew";
    case Invariant::ActivityMask: return "ActivityMask";
    case Invariant::ActivityMonotone: return "ActivityMonotone";
    case Invariant::SwCapRecompute: return "SwCapRecompute";
    case Invariant::ControllerCover: return "ControllerCover";
    case Invariant::GateReduction: return "GateReduction";
    case Invariant::DelayReport: return "DelayReport";
  }
  return "?";
}

std::string Report::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "verify: ok (" << checks_run << " invariant families)";
    return os.str();
  }
  os << "verify: " << violations.size() << " violation(s) in " << checks_run
     << " families\n";
  for (const Violation& v : violations) {
    os << "  [" << invariant_name(v.invariant) << "]";
    if (v.node >= 0) os << " node " << v.node;
    os << ": " << v.message << " (measured " << v.measured << ", expected "
       << v.expected << ")\n";
  }
  return os.str();
}

void check_structure(const ct::RoutedTree& tree, Report& rep) {
  ++rep.checks_run;
  const int n = tree.num_nodes();
  if (tree.num_leaves < 1 || n != 2 * tree.num_leaves - 1) {
    add(rep, Invariant::Structure, -1, n, 2 * tree.num_leaves - 1,
        "node count is not 2N-1 for N sinks");
    return;
  }
  if (tree.root < 0 || tree.root >= n ||
      tree.node(tree.root).parent >= 0) {
    add(rep, Invariant::Structure, tree.root, tree.root, n - 1,
        "root id out of range or root has a parent");
    return;
  }
  if (tree.node(tree.root).gated) {
    add(rep, Invariant::Structure, tree.root, 1.0, 0.0,
        "root carries a gate but has no parent edge");
  }

  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  bool wired_ok = true;
  for (int id = 0; id < n; ++id) {
    const ct::RoutedNode& node = tree.node(id);
    const bool should_be_leaf = id < tree.num_leaves;
    if (should_be_leaf != node.is_leaf() ||
        (node.is_leaf() != (node.right < 0))) {
      add(rep, Invariant::Structure, id, node.left, should_be_leaf ? -1 : 0,
          "leaf/internal role does not match the id convention");
      wired_ok = false;
      continue;
    }
    if (!node.is_leaf()) {
      for (const int ch : {node.left, node.right}) {
        if (ch < 0 || ch >= n || ch >= id ||
            tree.node(ch).parent != id) {
          add(rep, Invariant::Structure, id, ch, id,
              "child link broken (range, merge order, or parent backlink)");
          wired_ok = false;
        }
      }
      if (node.left == node.right) {
        add(rep, Invariant::Structure, id, node.left, node.right,
            "both children are the same node");
        wired_ok = false;
      }
    }
    if (id != tree.root && (node.parent <= id || node.parent >= n)) {
      add(rep, Invariant::Structure, id, node.parent, id,
          "parent id must exceed the child's (merge order) and be in range");
      wired_ok = false;
    }
  }
  if (!wired_ok) return;

  // Reachability: every node exactly once from the root.
  std::vector<int> stack{tree.root};
  int visited = 0;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(id)]++) {
      add(rep, Invariant::Structure, id, seen[static_cast<std::size_t>(id)],
          1, "node reachable from the root more than once");
      return;
    }
    ++visited;
    const ct::RoutedNode& node = tree.node(id);
    if (!node.is_leaf()) {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  if (visited != n) {
    add(rep, Invariant::Structure, -1, visited, n,
        "nodes unreachable from the root");
  }
}

void check_geometry(const ct::RoutedTree& tree, Report& rep,
                    const Tolerances& tol) {
  ++rep.checks_run;
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const ct::RoutedNode& node = tree.node(id);
    if (node.gate_size <= 0.0) {
      add(rep, Invariant::Geometry, id, node.gate_size, 1.0,
          "gate size must be positive");
    }
    if (node.parent < 0) {
      if (std::abs(node.edge_len) > tol.abs_geom) {
        add(rep, Invariant::Geometry, id, node.edge_len, 0.0,
            "root edge must have zero length");
      }
      continue;
    }
    const double dist =
        geom::manhattan_dist(node.loc, tree.node(node.parent).loc);
    if (node.edge_len + tol.abs_geom < dist) {
      add(rep, Invariant::Geometry, id, node.edge_len, dist,
          "edge shorter than the Manhattan distance it spans");
    }
  }
}

void check_electrical(const ct::RoutedTree& tree, const tech::TechParams& tech,
                      double skew_bound, Report& rep, const Tolerances& tol) {
  ++rep.checks_run;
  const Rederived r = rederive(tree, tech);
  const bool zero_skew = skew_bound <= 0.0;

  for (int id = 0; id < tree.num_nodes(); ++id) {
    const ct::RoutedNode& node = tree.node(id);
    const double expect = r.down[static_cast<std::size_t>(id)];
    if (!node.is_leaf() &&
        std::abs(node.down_cap - expect) >
            tol.abs_cap + tol.rel_swcap * std::abs(expect)) {
      add(rep, Invariant::CapConsistency, id, node.down_cap, expect,
          "stored downstream cap disagrees with the re-derivation");
    }
    if (node.is_leaf()) {
      // A leaf's subtree delay (dmax in bounded mode) is definitionally 0.
      if (!near(node.delay, 0.0, tol.rel_delay)) {
        add(rep, Invariant::DelayConsistency, id, node.delay, 0.0,
            "leaf carries a nonzero stored subtree delay");
      }
    }
    if (zero_skew && !node.is_leaf()) {
      const ct::RoutedNode& left = tree.node(node.left);
      const ct::RoutedNode& right = tree.node(node.right);
      const double via_left =
          stage_delay(left, r.down[static_cast<std::size_t>(node.left)],
                      tech) +
          r.subtree[static_cast<std::size_t>(node.left)];
      const double via_right =
          stage_delay(right, r.down[static_cast<std::size_t>(node.right)],
                      tech) +
          r.subtree[static_cast<std::size_t>(node.right)];
      if (!near(via_left, via_right, tol.rel_delay)) {
        add(rep, Invariant::MergeBalance, id, via_left, via_right,
            "sibling branch delays differ at a zero-skew merge");
      }
      if (!near(node.delay, via_left, tol.rel_delay)) {
        add(rep, Invariant::DelayConsistency, id, node.delay, via_left,
            "stored subtree delay disagrees with the re-derivation");
      }
    }
  }

  const double skew = r.max_delay - r.min_delay;
  const double slack = tol.rel_delay * std::max(1.0, r.max_delay);
  if (zero_skew) {
    if (skew > slack) {
      add(rep, Invariant::Skew, -1, skew, 0.0,
          "re-derived sink skew is not zero");
    }
  } else if (skew > skew_bound + slack) {
    add(rep, Invariant::Skew, -1, skew, skew_bound,
        "re-derived sink skew exceeds the bound");
  }
}

void check_activity(const ct::RoutedTree& tree, const gating::NodeActivity& act,
                    const activity::ActivityAnalyzer& analyzer,
                    const std::vector<int>& leaf_module, Report& rep,
                    const Tolerances& tol) {
  ++rep.checks_run;
  const int n = tree.num_nodes();
  if (static_cast<int>(act.mask.size()) != n ||
      static_cast<int>(act.p_en.size()) != n ||
      static_cast<int>(act.p_tr.size()) != n ||
      static_cast<int>(leaf_module.size()) != tree.num_leaves) {
    add(rep, Invariant::ActivityMask, -1, act.p_en.size(), n,
        "activity arrays do not cover every node");
    return;
  }
  for (int id = 0; id < n; ++id) {
    const ct::RoutedNode& node = tree.node(id);
    const activity::ActivationMask expect =
        node.is_leaf()
            ? analyzer.module_mask(leaf_module[static_cast<std::size_t>(id)])
            : act.mask[static_cast<std::size_t>(node.left)] |
                  act.mask[static_cast<std::size_t>(node.right)];
    if (act.mask[static_cast<std::size_t>(id)] != expect) {
      add(rep, Invariant::ActivityMask, id,
          act.mask[static_cast<std::size_t>(id)].count(), expect.count(),
          node.is_leaf() ? "leaf mask is not the module's activation mask"
                         : "internal mask is not the union of its children");
      continue;
    }
    const double p = analyzer.signal_prob(expect);
    if (std::abs(act.p_en[static_cast<std::size_t>(id)] - p) > tol.abs_prob) {
      add(rep, Invariant::ActivityMask, id,
          act.p_en[static_cast<std::size_t>(id)], p,
          "cached P(EN) disagrees with a fresh analyzer query");
    }
    const double ptr = analyzer.transition_prob(expect);
    if (std::abs(act.p_tr[static_cast<std::size_t>(id)] - ptr) >
        tol.abs_prob) {
      add(rep, Invariant::ActivityMask, id,
          act.p_tr[static_cast<std::size_t>(id)], ptr,
          "cached P_tr(EN) disagrees with a fresh analyzer query");
    }
  }
}

void check_activity_monotone(const ct::RoutedTree& tree,
                             const gating::NodeActivity& act, Report& rep,
                             const Tolerances& tol) {
  ++rep.checks_run;
  const int n = tree.num_nodes();
  if (static_cast<int>(act.p_en.size()) != n) {
    add(rep, Invariant::ActivityMonotone, -1, act.p_en.size(), n,
        "P(EN) array does not cover every node");
    return;
  }
  for (int id = 0; id < n; ++id) {
    const double p = act.p_en[static_cast<std::size_t>(id)];
    if (p < -tol.abs_prob || p > 1.0 + tol.abs_prob) {
      add(rep, Invariant::ActivityMonotone, id, p, 0.0,
          "P(EN) outside [0, 1]");
    }
    const int parent = tree.node(id).parent;
    if (parent >= 0 &&
        p > act.p_en[static_cast<std::size_t>(parent)] + tol.abs_prob) {
      add(rep, Invariant::ActivityMonotone, id, p,
          act.p_en[static_cast<std::size_t>(parent)],
          "child P(EN) exceeds its parent's (enables only widen upward)");
    }
  }
}

void check_swcap(const ct::RoutedTree& tree, const gating::NodeActivity& act,
                 const gating::ControllerPlacement& ctrl,
                 const tech::TechParams& tech, gating::CellStyle style,
                 const gating::SwCapReport& reported, Report& rep,
                 const Tolerances& tol) {
  ++rep.checks_run;
  const bool masking = style == gating::CellStyle::MaskingGate;
  // Mirror the evaluator's cell-capacitance convention: the clock-pin load
  // of an inserted cell is the gate's for masking style, the buffer's for
  // the buffered baseline (whose tech is already the buffered view).
  const double cell_in_cap =
      masking ? tech.gate_input_cap : tech.buffer_input_cap();

  double clock_swcap = 0.0, ctrl_swcap = 0.0, ungated = 0.0;
  double clock_wl = 0.0, star_wl = 0.0, cell_area = 0.0;
  int num_cells = 0;
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const ct::RoutedNode& node = tree.node(id);
    double pin_cap = 0.0;
    if (node.is_leaf()) {
      pin_cap = node.down_cap;
    } else {
      for (const int ch : {node.left, node.right}) {
        const ct::RoutedNode& c = tree.node(ch);
        if (c.gated) pin_cap += c.gate_size * cell_in_cap;
      }
    }
    if (node.parent >= 0) {
      const double edge_cap = tech.wire_cap(node.edge_len) + pin_cap;
      clock_swcap +=
          edge_cap * (masking ? domain_prob(tree, act, id) : 1.0);
      ungated += edge_cap;
      clock_wl += node.edge_len;
    } else {
      clock_swcap += pin_cap;
      ungated += pin_cap;
    }
    if (node.gated && node.parent >= 0) {
      ++num_cells;
      cell_area +=
          node.gate_size * (masking ? tech.gate_area : tech.buffer_area());
      if (masking) {
        const double star =
            nearest_controller_dist(ctrl, tree.gate_location(id));
        star_wl += star;
        ctrl_swcap += (tech.wire_cap(star) +
                       node.gate_size * tech.gate_enable_cap) *
                      act.p_tr[static_cast<std::size_t>(id)];
      }
    }
  }

  const auto compare = [&](double got, double expect, const char* what) {
    if (!near(got, expect, tol.rel_swcap)) {
      add(rep, Invariant::SwCapRecompute, -1, got, expect,
          std::string("reported ") + what +
              " disagrees with the first-principles recomputation");
    }
  };
  compare(reported.clock_swcap, clock_swcap, "W(T) clock swcap");
  compare(reported.ctrl_swcap, ctrl_swcap, "W(S) controller swcap");
  compare(reported.ungated_swcap, ungated, "ungated swcap");
  compare(reported.clock_wirelength, clock_wl, "clock wirelength");
  compare(reported.star_wirelength, star_wl, "star wirelength");
  compare(reported.cell_area, cell_area, "cell area");
  compare(reported.wire_area, tech.wire_area(clock_wl + star_wl),
          "wire area");
  if (reported.num_cells != num_cells) {
    add(rep, Invariant::SwCapRecompute, -1, reported.num_cells, num_cells,
        "reported cell count disagrees with the gates in the tree");
  }
}

void check_controller_cover(const ct::RoutedTree& tree,
                            const gating::ControllerPlacement& ctrl,
                            const gating::SwCapReport& reported, Report& rep,
                            const Tolerances& tol) {
  ++rep.checks_run;
  int gates = 0;
  double star_wl = 0.0;
  for (const int id : tree.gated_nodes()) {
    if (tree.node(id).parent < 0) continue;  // root flag is inert
    ++gates;
    const geom::Point loc = tree.gate_location(id);
    const double assigned = ctrl.star_length(loc);
    const double best = nearest_controller_dist(ctrl, loc);
    if (assigned > best + tol.abs_geom) {
      add(rep, Invariant::ControllerCover, id, assigned, best,
          "gate is not served by its nearest controller");
    }
    star_wl += assigned;
  }
  if (reported.num_cells != gates) {
    add(rep, Invariant::ControllerCover, -1, reported.num_cells, gates,
        "surviving gates dropped from (or invented in) the controller star");
  }
  if (!near(reported.star_wirelength, star_wl, tol.rel_swcap)) {
    add(rep, Invariant::ControllerCover, -1, reported.star_wirelength,
        star_wl, "reported star wirelength does not cover every gate");
  }
}

void check_gate_reduction(double full_total_swcap, double reduced_total_swcap,
                          Report& rep, const Tolerances& tol) {
  ++rep.checks_run;
  if (reduced_total_swcap >
      full_total_swcap * (1.0 + tol.rel_swcap) + tol.abs_cap) {
    add(rep, Invariant::GateReduction, -1, reduced_total_swcap,
        full_total_swcap,
        "gate reduction increased the total switched capacitance");
  }
}

void check_delay_report(const ct::RoutedTree& tree,
                        const tech::TechParams& tech,
                        const ct::DelayReport& reported, Report& rep,
                        const Tolerances& tol) {
  ++rep.checks_run;
  const Rederived r = rederive(tree, tech);
  if (static_cast<int>(reported.sink_delay.size()) != tree.num_leaves) {
    add(rep, Invariant::DelayReport, -1, reported.sink_delay.size(),
        tree.num_leaves, "delay report does not cover every sink");
    return;
  }
  for (int i = 0; i < tree.num_leaves; ++i) {
    if (!near(reported.sink_delay[static_cast<std::size_t>(i)],
              r.sink_delay[static_cast<std::size_t>(i)], tol.rel_delay)) {
      add(rep, Invariant::DelayReport, i,
          reported.sink_delay[static_cast<std::size_t>(i)],
          r.sink_delay[static_cast<std::size_t>(i)],
          "reported sink delay disagrees with the re-derivation");
    }
  }
  if (!near(reported.max_delay, r.max_delay, tol.rel_delay) ||
      !near(reported.min_delay, r.min_delay, tol.rel_delay)) {
    add(rep, Invariant::DelayReport, -1, reported.max_delay, r.max_delay,
        "reported delay extrema disagree with the re-derivation");
  }
}

Report verify_tree(const ct::RoutedTree& tree, const tech::TechParams& tech,
                   double skew_bound, const Tolerances& tol) {
  Report rep;
  check_structure(tree, rep);
  if (!rep.ok()) return rep;  // downstream checks assume sound wiring
  check_geometry(tree, rep, tol);
  check_electrical(tree, tech, skew_bound, rep, tol);
  return rep;
}

Report verify_result(const core::GatedClockRouter& router,
                     const core::RouterOptions& opts,
                     const core::RouterResult& result,
                     const Tolerances& tol) {
  const bool buffered = opts.style == core::TreeStyle::Buffered;
  const tech::TechParams tech =
      buffered ? opts.tech.as_buffered() : opts.tech;

  Report rep = verify_tree(result.tree, tech, opts.skew_bound, tol);
  if (!rep.violations.empty() &&
      rep.violations.front().invariant == Invariant::Structure) {
    return rep;
  }

  check_activity(result.tree, result.activity, router.analyzer(),
                 router.design().resolved_sink_modules(), rep, tol);
  check_activity_monotone(result.tree, result.activity, rep, tol);

  const gating::ControllerPlacement ctrl(router.design().die,
                                         opts.controller_partitions);
  const gating::CellStyle style = buffered ? gating::CellStyle::Buffer
                                           : gating::CellStyle::MaskingGate;
  check_swcap(result.tree, result.activity, ctrl, tech, style, result.swcap,
              rep, tol);
  if (!buffered) {
    check_controller_cover(result.tree, ctrl, result.swcap, rep, tol);
  }
  check_delay_report(result.tree, tech, result.delays, rep, tol);
  if (obs::metrics_enabled()) {
    obs::Registry::global().counter("verify.results_checked").inc();
  }
  return rep;
}

std::function<void(const core::RouterResult&, const core::RouterOptions&)>
make_self_check(const core::GatedClockRouter& router, const Tolerances& tol) {
  return [&router, tol](const core::RouterResult& result,
                        const core::RouterOptions& opts) {
    Report rep = verify_result(router, opts, result, tol);
    if (!rep.ok()) throw VerificationError(std::move(rep));
  };
}

}  // namespace gcr::verify

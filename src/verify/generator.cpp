#include "verify/generator.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <iterator>
#include <optional>
#include <ostream>
#include <random>
#include <string>
#include <vector>

#include "obs/json.h"
#include "verify/invariants.h"

namespace gcr::verify {

std::string_view sink_cloud_name(SinkCloud c) {
  switch (c) {
    case SinkCloud::Uniform: return "uniform";
    case SinkCloud::Clustered: return "clustered";
    case SinkCloud::Ring: return "ring";
    case SinkCloud::Diagonal: return "diagonal";
  }
  return "?";
}

DesignSpec random_spec(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  DesignSpec s;
  s.seed = seed;
  // Mostly small-to-medium designs (the differential driver routes each one
  // several times), with occasional degenerate sizes.
  std::uniform_int_distribution<int> sinks(4, 48);
  s.num_sinks = (rng() % 8 == 0) ? static_cast<int>(2 + rng() % 3)
                                 : sinks(rng);
  s.die_side = std::uniform_real_distribution<double>(500.0, 20000.0)(rng);
  s.cloud = static_cast<SinkCloud>(rng() % 4);
  s.cap_lo = std::uniform_real_distribution<double>(0.001, 0.02)(rng);
  s.cap_hi =
      s.cap_lo + std::uniform_real_distribution<double>(0.0, 0.08)(rng);
  std::uniform_int_distribution<int> instrs(2, 48);
  s.num_instructions = instrs(rng);
  // Streams from near-degenerate (a handful of cycles) to typical.
  std::uniform_int_distribution<int> stream(2, 3000);
  s.stream_length = (rng() % 8 == 0) ? static_cast<int>(1 + rng() % 4)
                                     : stream(rng);
  s.module_fraction =
      std::uniform_real_distribution<double>(0.05, 0.9)(rng);
  s.locality = std::uniform_real_distribution<double>(0.0, 0.98)(rng);
  s.zipf_s = std::uniform_real_distribution<double>(0.0, 2.0)(rng);
  s.constant_modules = rng() % 4 == 0;
  return s;
}

core::Design generate_design(const DesignSpec& spec) {
  std::mt19937_64 rng(spec.seed ^ 0x9e3779b97f4a7c15ull);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const double side = spec.die_side;
  const int n = spec.num_sinks;

  // ---- sink cloud -------------------------------------------------------
  ct::SinkList sinks;
  sinks.reserve(static_cast<std::size_t>(n));
  std::uniform_real_distribution<double> cap(spec.cap_lo, spec.cap_hi);
  const auto coord = [&] { return unif(rng) * side; };
  for (int i = 0; i < n; ++i) {
    geom::Point p;
    switch (spec.cloud) {
      case SinkCloud::Uniform:
        p = {coord(), coord()};
        break;
      case SinkCloud::Clustered: {
        // 3 blob centers derived from the seed; sinks scatter tightly.
        const int blob = static_cast<int>(rng() % 3);
        const double cx = side * (0.2 + 0.3 * blob);
        const double cy = side * (0.25 + 0.25 * ((blob * 2) % 3));
        std::normal_distribution<double> g(0.0, side * 0.04);
        p = {std::clamp(cx + g(rng), 0.0, side),
             std::clamp(cy + g(rng), 0.0, side)};
        break;
      }
      case SinkCloud::Ring: {
        const double a = 2.0 * 3.14159265358979323846 * unif(rng);
        const double r = side * (0.38 + 0.08 * unif(rng));
        p = {std::clamp(side * 0.5 + r * std::cos(a), 0.0, side),
             std::clamp(side * 0.5 + r * std::sin(a), 0.0, side)};
        break;
      }
      case SinkCloud::Diagonal: {
        const double t = unif(rng);
        std::normal_distribution<double> g(0.0, side * 0.02);
        p = {std::clamp(t * side + g(rng), 0.0, side),
             std::clamp(t * side + g(rng), 0.0, side)};
        break;
      }
    }
    sinks.push_back({p, cap(rng)});
  }

  // ---- RTL module map ---------------------------------------------------
  // Each instruction exercises a spatially contiguous slice of the sinks
  // (nearest-to-a-random-center), like real functional units. Optionally
  // pin module 0 always-on and module n-1 never-on (constant AT tags).
  activity::RtlDescription rtl(spec.num_instructions, n);
  const int first_free = spec.constant_modules && n > 1 ? 1 : 0;
  const int last_free = spec.constant_modules && n > 2 ? n - 1 : n;
  for (int i = 0; i < spec.num_instructions; ++i) {
    const geom::Point center{coord(), coord()};
    std::vector<std::pair<double, int>> by_dist;
    for (int m = first_free; m < last_free; ++m) {
      by_dist.emplace_back(
          geom::manhattan_dist(sinks[static_cast<std::size_t>(m)].loc,
                               center),
          m);
    }
    std::sort(by_dist.begin(), by_dist.end());
    const int avail = static_cast<int>(by_dist.size());
    const int want = std::clamp(
        static_cast<int>(std::lround(
            spec.module_fraction * avail * (0.5 + unif(rng)))),
        1, std::max(1, avail));
    for (int j = 0; j < want && j < avail; ++j) {
      rtl.add_use(i, by_dist[static_cast<std::size_t>(j)].second);
    }
    if (spec.constant_modules && n > 1) rtl.add_use(i, 0);
  }

  // ---- instruction stream: zipf-skewed Markov ---------------------------
  std::vector<double> pop(static_cast<std::size_t>(spec.num_instructions));
  for (int i = 0; i < spec.num_instructions; ++i) {
    pop[static_cast<std::size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), spec.zipf_s);
  }
  std::shuffle(pop.begin(), pop.end(), rng);
  std::discrete_distribution<int> pick(pop.begin(), pop.end());

  activity::InstructionStream stream;
  stream.seq.reserve(static_cast<std::size_t>(spec.stream_length));
  int cur = pick(rng);
  for (int t = 0; t < spec.stream_length; ++t) {
    stream.seq.push_back(cur);
    if (unif(rng) >= spec.locality) cur = pick(rng);
  }

  return core::Design{geom::DieArea::square(side), std::move(sinks),
                      std::move(rtl), std::move(stream), {}};
}

void write_design_artifact(std::ostream& os, const DesignSpec& spec,
                           const std::string& stage, const Report* failure) {
  obs::json::Writer w(os);
  w.begin_object();
  w.field("schema", "gcr.verify_artifact");
  w.field("version", 1);
  w.field("stage", stage);
  w.key("spec").begin_object();
  w.field("seed", static_cast<std::uint64_t>(spec.seed));
  w.field("num_sinks", spec.num_sinks);
  w.field("die_side", spec.die_side);
  w.field("cloud", sink_cloud_name(spec.cloud));
  w.field("cap_lo", spec.cap_lo);
  w.field("cap_hi", spec.cap_hi);
  w.field("num_instructions", spec.num_instructions);
  w.field("stream_length", spec.stream_length);
  w.field("module_fraction", spec.module_fraction);
  w.field("locality", spec.locality);
  w.field("zipf_s", spec.zipf_s);
  w.field("constant_modules", spec.constant_modules);
  w.end_object();
  w.key("replay").value("gcr_check --replay " + std::to_string(spec.seed));
  w.key("violations").begin_array();
  if (failure) {
    for (const Violation& v : failure->violations) {
      w.begin_object();
      w.field("invariant", invariant_name(v.invariant));
      w.field("node", v.node);
      w.field("measured", v.measured);
      w.field("expected", v.expected);
      w.field("message", v.message);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

guard::Result<DesignSpec> load_design_artifact(std::istream& is,
                                               const std::string& filename) {
  const guard::SourceLoc loc{filename, 0, 0};
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  if (is.bad())
    return guard::make_error(guard::Code::Io,
                             "could not read replay artifact", loc);
  const std::optional<obs::json::Value> doc = obs::json::parse(text);
  if (!doc || !doc->is_object())
    return guard::make_error(guard::Code::Parse,
                             "replay artifact is not a JSON object", loc);
  const obs::json::Value* schema = doc->find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "gcr.verify_artifact")
    return guard::make_error(
        guard::Code::Header,
        "missing or unexpected schema (want \"gcr.verify_artifact\")", loc);
  const obs::json::Value* spec = doc->find("spec");
  if (!spec || !spec->is_object())
    return guard::make_error(guard::Code::Parse,
                             "artifact has no \"spec\" object", loc);

  DesignSpec out;  // absent fields keep the generator defaults
  out.seed = static_cast<std::uint64_t>(
      spec->number_or("seed", static_cast<double>(out.seed)));
  out.num_sinks =
      static_cast<int>(spec->number_or("num_sinks", out.num_sinks));
  out.die_side = spec->number_or("die_side", out.die_side);
  out.cap_lo = spec->number_or("cap_lo", out.cap_lo);
  out.cap_hi = spec->number_or("cap_hi", out.cap_hi);
  out.num_instructions = static_cast<int>(
      spec->number_or("num_instructions", out.num_instructions));
  out.stream_length =
      static_cast<int>(spec->number_or("stream_length", out.stream_length));
  out.module_fraction =
      spec->number_or("module_fraction", out.module_fraction);
  out.locality = spec->number_or("locality", out.locality);
  out.zipf_s = spec->number_or("zipf_s", out.zipf_s);
  if (const obs::json::Value* cm = spec->find("constant_modules");
      cm && cm->is_bool())
    out.constant_modules = cm->as_bool();
  if (const obs::json::Value* cloud = spec->find("cloud")) {
    if (!cloud->is_string())
      return guard::make_error(guard::Code::Parse,
                               "spec.cloud must be a string", loc);
    bool known = false;
    for (SinkCloud c : {SinkCloud::Uniform, SinkCloud::Clustered,
                        SinkCloud::Ring, SinkCloud::Diagonal}) {
      if (cloud->as_string() == sink_cloud_name(c)) {
        out.cloud = c;
        known = true;
        break;
      }
    }
    if (!known)
      return guard::make_error(
          guard::Code::Range,
          "unknown sink cloud \"" + cloud->as_string() + "\"", loc);
  }
  if (out.num_sinks <= 0 || out.num_instructions <= 0 ||
      out.stream_length < 0 || !(out.die_side > 0.0) ||
      !(out.cap_lo > 0.0) || !(out.cap_hi >= out.cap_lo))
    return guard::make_error(guard::Code::Range,
                             "spec fields out of range (sinks/instructions "
                             "must be positive, caps ordered and positive)",
                             loc);
  return out;
}

}  // namespace gcr::verify

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file metrics.h
/// Process-wide registry of named counters, gauges and histograms.
///
/// Design goals, in order:
///   1. Zero measurable cost when observability is off (the default): every
///      hot-path increment is guarded by a single plain-bool load + branch
///      (`metrics_enabled()`), so instrumented inner loops run at full speed.
///   2. Cheap when on: call sites cache a `Counter&` in a function-local
///      static, so an enabled increment is one relaxed atomic add.
///   3. Thread-safe: instruments are atomics; registration takes a mutex
///      (cold path only).
///
/// The registry is process-global (Prometheus-style), not per-run: a run
/// report snapshots it, and callers that want per-run numbers reset it at
/// run start (the CLI, the bench harness and the tests all do). Metric
/// names are dot-separated, subsystem first: `cts.merges`,
/// `activity.signal_prob_queries`, `reduction.gates_removed`.
///
/// Canonical call-site pattern:
///
///   if (obs::metrics_enabled()) [[unlikely]] {
///     static obs::Counter& c =
///         obs::Registry::global().counter("cts.merges");
///     c.inc();
///   }

namespace gcr::obs {

namespace detail {
extern bool g_metrics_enabled;
}  // namespace detail

/// Global kill-switch, default off. Reads are a plain load: toggle it only
/// from a quiescent point (program start, between runs), not concurrently
/// with instrumented work.
[[nodiscard]] inline bool metrics_enabled() { return detail::g_metrics_enabled; }
void set_metrics_enabled(bool on);

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (e.g. `cts.cluster_grid`, front sizes).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Distribution sketch: count/sum/min/max plus power-of-two buckets over
/// the value's binary exponent. Coarse by design -- it answers "what order
/// of magnitude do merge costs / edge lengths live at", not percentiles.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  /// Bucket i covers [2^(i-32), 2^(i-31)); i=0 also absorbs 0 and below.
  /// Values at or past the top bound (2^kBuckets - kExpBias, i.e. 2^32)
  /// land in a dedicated overflow slot rather than silently folding into
  /// bucket kBuckets-1, so the JSON bucket map never misattributes a
  /// runaway value to a finite range (docs/observability.md).
  static constexpr int kExpBias = 32;

  void observe(double v);

  struct Snapshot {
    std::uint64_t count{0};
    double sum{0.0};
    double min{0.0};  ///< 0 when count == 0
    double max{0.0};
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t overflow{0};  ///< observations >= 2^(kBuckets - kExpBias)
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> overflow_{0};
};

class Registry {
 public:
  /// The process-wide instance every instrumented call site uses.
  static Registry& global();

  /// Find-or-create; returned references stay valid for the registry's
  /// lifetime (instruments are never removed).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every instrument (names stay registered).
  void reset();

  struct CounterEntry {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeEntry {
    std::string name;
    double value;
  };
  struct HistogramEntry {
    std::string name;
    Histogram::Snapshot snap;
  };

  /// Name-sorted snapshots (the maps are ordered).
  [[nodiscard]] std::vector<CounterEntry> counters() const;
  [[nodiscard]] std::vector<GaugeEntry> gauges() const;
  [[nodiscard]] std::vector<HistogramEntry> histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace gcr::obs

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

/// \file phasestack.h
/// Per-thread lock-free shadow of the ScopedTimer phase stack, read by the
/// gcr::prof sampling profiler.
///
/// The real phase stack (`PhaseTimers`) is a vector of tree nodes and can
/// never be read from another thread. When shadow publishing is enabled
/// (`set_shadow_enabled`, off by default), every ScopedTimer additionally
/// maintains a fixed-size seqlock-protected copy of the open phase *names*
/// on this thread. The sampler thread walks all registered shadows at each
/// tick and discards any snapshot whose sequence number moved mid-read, so
/// a torn read costs one sample, never a crash.
///
/// Names are copied into inline byte arrays (not stored as pointers):
/// bench phase names are built dynamically and may be freed right after
/// the phase pops, and the sampler must never chase a dangling pointer.

namespace gcr::obs {

class PhaseShadow {
 public:
  static constexpr int kMaxDepth = 16;
  static constexpr int kMaxName = 40;  ///< bytes per frame, incl. NUL

  /// Seqlock: odd while the owner is mutating, bumped to even when stable.
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::int32_t> depth{0};
  std::atomic<char> names[kMaxDepth][kMaxName];
  std::atomic<bool> retired{false};  ///< owning thread has exited

  /// Copy a stable snapshot of the open phase names (outermost first).
  /// False when the owner kept mutating across `max_retries` attempts.
  [[nodiscard]] bool snapshot(std::vector<std::string>& out,
                              int max_retries = 3) const;
};

/// Global publish switch (plain-bool load on the hot path, like
/// metrics_enabled). Toggle only from quiescent points.
[[nodiscard]] bool shadow_enabled();
void set_shadow_enabled(bool on);

/// Called by ScopedTimer on the owning thread when publishing is enabled.
/// Frames beyond kMaxDepth are counted in depth but not named.
void shadow_push(const char* name);
void shadow_pop();

/// Every shadow ever registered (never unregistered; retired threads keep
/// their flag set). Pointers stay valid for the process lifetime.
[[nodiscard]] std::vector<const PhaseShadow*> shadow_threads();

/// The calling thread's own open phase path, slash-joined outermost first
/// ("route/topology"). Owner-side reads need no seqlock retry: only this
/// thread mutates its shadow. Empty when publishing is disabled or no
/// phase is open. Used by gcr::log to stamp events with phase context.
[[nodiscard]] std::string current_phase_path();

}  // namespace gcr::obs

#pragma once

#include <chrono>

#include "obs/timer.h"
#include "obs/trace.h"

/// \file session.h
/// A `Session` is one observed run: it owns the phase-timing tree, carries
/// the (optional, non-owned) trace sink, and fixes the time epoch trace
/// timestamps are relative to. Metrics stay in the process-global
/// `Registry` (see metrics.h); a session does not duplicate them.
///
/// Instrumented library code never receives a session explicitly -- the
/// caller binds one to the current thread around the work:
///
///   obs::Session session;
///   obs::MemoryTraceSink trace;
///   session.set_trace(&trace);
///   {
///     obs::Bind bind(&session);
///     ... construct router, route ...   // timers/trace land in `session`
///   }
///   obs::write_run_report(os, opts, result, session);
///
/// This keeps every public algorithm signature unchanged and makes the
/// disabled path (no session bound, the default) a thread-local null check.
/// A session is single-threaded by construction: bind it on the thread
/// doing the work.

namespace gcr::obs {

class Session {
 public:
  Session() : epoch_(std::chrono::steady_clock::now()) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Pool-worker view of `parent`: shares its time epoch and trace sink
  /// (sinks are thread-safe; see trace.h) but owns an independent phase
  /// tree, because PhaseTimers is single-threaded by construction.
  /// `par::ThreadPool` binds one of these on each worker for the duration
  /// of a job, so trace events emitted inside worker chunks land in the
  /// run's sink with timestamps on the parent's axis instead of being
  /// silently dropped. Worker-side ScopedTimers aggregate into the view
  /// and are discarded with it -- per-worker *time* attribution is the
  /// pool telemetry's job (par::PoolTelemetry), not the phase tree's.
  struct WorkerViewTag {};
  Session(WorkerViewTag, const Session& parent)
      : epoch_(parent.epoch_), trace_(parent.trace_) {}

  [[nodiscard]] PhaseTimers& timers() { return timers_; }
  [[nodiscard]] const PhaseTimers& timers() const { return timers_; }

  /// Attach a trace sink (not owned; nullptr detaches).
  void set_trace(TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] TraceSink* trace() const { return trace_; }

  /// Microseconds since the session was created (steady clock).
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  PhaseTimers timers_;
  TraceSink* trace_{nullptr};
};

/// The session bound to the current thread, or nullptr (the default).
[[nodiscard]] Session* current();

/// The bound session's trace sink, or nullptr. The one-line guard for
/// decision-event emitters.
[[nodiscard]] inline TraceSink* active_trace() {
  Session* s = current();
  return s ? s->trace() : nullptr;
}

/// RAII thread-local binding; restores the previous binding on scope exit
/// so sessions can nest (e.g. a test observing a helper that observes).
class Bind {
 public:
  explicit Bind(Session* s);
  ~Bind();
  Bind(const Bind&) = delete;
  Bind& operator=(const Bind&) = delete;

 private:
  Session* prev_;
};

}  // namespace gcr::obs

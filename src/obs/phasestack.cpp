#include "obs/phasestack.h"

#include <mutex>

namespace gcr::obs {

namespace {

bool g_shadow_enabled = false;

std::mutex g_shadow_mu;
std::vector<const PhaseShadow*>& shadow_registry() {
  static std::vector<const PhaseShadow*>* v =
      new std::vector<const PhaseShadow*>();
  return *v;
}

PhaseShadow* register_shadow() {
  PhaseShadow* s = new PhaseShadow();  // leaked: registry keeps raw pointers
  const std::lock_guard<std::mutex> lk(g_shadow_mu);
  shadow_registry().push_back(s);
  return s;
}

struct ShadowTls {
  PhaseShadow* shadow = register_shadow();
  ~ShadowTls() { shadow->retired.store(true, std::memory_order_release); }
};

PhaseShadow& thread_shadow() {
  thread_local ShadowTls tls;
  return *tls.shadow;
}

}  // namespace

std::vector<const PhaseShadow*> shadow_threads() {
  const std::lock_guard<std::mutex> lk(g_shadow_mu);
  return shadow_registry();  // copy: sampler iterates without the lock
}

bool shadow_enabled() { return g_shadow_enabled; }

void set_shadow_enabled(bool on) { g_shadow_enabled = on; }

void shadow_push(const char* name) {
  PhaseShadow& s = thread_shadow();
  const std::uint32_t s0 = s.seq.load(std::memory_order_relaxed);
  s.seq.store(s0 + 1, std::memory_order_relaxed);  // odd: mutating
  std::atomic_thread_fence(std::memory_order_release);
  const std::int32_t d = s.depth.load(std::memory_order_relaxed);
  if (d < PhaseShadow::kMaxDepth) {
    std::atomic<char>* frame = s.names[d];
    int i = 0;
    if (name != nullptr)
      for (; i + 1 < PhaseShadow::kMaxName && name[i] != '\0'; ++i)
        frame[i].store(name[i], std::memory_order_relaxed);
    frame[i].store('\0', std::memory_order_relaxed);
  }
  s.depth.store(d + 1, std::memory_order_relaxed);
  s.seq.store(s0 + 2, std::memory_order_release);  // even: stable
}

void shadow_pop() {
  PhaseShadow& s = thread_shadow();
  const std::uint32_t s0 = s.seq.load(std::memory_order_relaxed);
  s.seq.store(s0 + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  const std::int32_t d = s.depth.load(std::memory_order_relaxed);
  if (d > 0) s.depth.store(d - 1, std::memory_order_relaxed);
  s.seq.store(s0 + 2, std::memory_order_release);
}

std::string current_phase_path() {
  if (!g_shadow_enabled) return {};
  const PhaseShadow& s = thread_shadow();
  std::int32_t d = s.depth.load(std::memory_order_relaxed);
  if (d <= 0) return {};
  if (d > PhaseShadow::kMaxDepth) d = PhaseShadow::kMaxDepth;
  std::string out;
  out.reserve(static_cast<std::size_t>(d) * 12);
  for (std::int32_t f = 0; f < d; ++f) {
    if (f > 0) out += '/';
    for (int i = 0; i < PhaseShadow::kMaxName; ++i) {
      const char c = s.names[f][i].load(std::memory_order_relaxed);
      if (c == '\0') break;
      out += c;
    }
  }
  return out;
}

bool PhaseShadow::snapshot(std::vector<std::string>& out,
                           int max_retries) const {
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    const std::uint32_t s0 = seq.load(std::memory_order_acquire);
    if (s0 & 1u) continue;  // writer mid-update
    out.clear();
    std::int32_t d = depth.load(std::memory_order_relaxed);
    if (d > kMaxDepth) d = kMaxDepth;
    for (std::int32_t f = 0; f < d; ++f) {
      char buf[kMaxName];
      for (int i = 0; i < kMaxName; ++i)
        buf[i] = names[f][i].load(std::memory_order_relaxed);
      buf[kMaxName - 1] = '\0';
      out.emplace_back(buf);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq.load(std::memory_order_relaxed) == s0) return true;
  }
  out.clear();
  return false;
}

}  // namespace gcr::obs

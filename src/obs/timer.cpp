#include "obs/timer.h"

#include <cassert>
#include <utility>

#include "obs/phasestack.h"
#include "obs/session.h"
#include "prof/flightrec.h"

namespace gcr::obs {

namespace {
AllocSamplerFn g_alloc_sampler = nullptr;
HwSamplerFn g_hw_sampler = nullptr;
std::array<const char*, kHwSlots> g_hw_names = {"hw0", "hw1", "hw2", "hw3"};
}  // namespace

void set_alloc_sampler(AllocSamplerFn fn) { g_alloc_sampler = fn; }

AllocSamplerFn alloc_sampler() { return g_alloc_sampler; }

void set_hw_sampler(HwSamplerFn fn,
                    const std::array<const char*, kHwSlots>& names) {
  g_hw_sampler = fn;
  // Names stick on uninstall: reports written after disable_hw_counters()
  // must still label the per-phase values collected while it was on.
  if (fn != nullptr) g_hw_names = names;
}

HwSamplerFn hw_sampler() { return g_hw_sampler; }

const std::array<const char*, kHwSlots>& hw_counter_names() {
  return g_hw_names;
}

PhaseStats& PhaseStats::child(std::string_view child_name) {
  for (const auto& c : children)
    if (c->name == child_name) return *c;
  children.push_back(std::make_unique<PhaseStats>());
  children.back()->name = std::string(child_name);
  return *children.back();
}

PhaseStats& PhaseTimers::push(std::string_view name) {
  PhaseStats& node = stack_.back()->child(name);
  stack_.push_back(&node);
  return node;
}

void PhaseTimers::pop(double elapsed_ms, std::uint64_t alloc_count,
                      std::uint64_t alloc_bytes, const HwSample* hw_delta) {
  assert(stack_.size() > 1 && "pop without matching push");
  PhaseStats* node = stack_.back();
  stack_.pop_back();
  node->calls += 1;
  node->total_ms += elapsed_ms;
  node->alloc_count += alloc_count;
  node->alloc_bytes += alloc_bytes;
  if (hw_delta != nullptr) {
    node->has_hw = true;
    for (int i = 0; i < kHwSlots; ++i)
      node->hw[static_cast<std::size_t>(i)] +=
          hw_delta->v[static_cast<std::size_t>(i)];
  }
}

ScopedTimer::ScopedTimer(const char* name) : name_(name) {
  Session* s = current();
  if (!s) return;
  session_ = s;
  s->timers().push(name);
  if (const AllocSamplerFn sampler = alloc_sampler()) a0_ = sampler();
  if (const HwSamplerFn sampler = hw_sampler()) {
    h0_ = sampler();
    hw_ = true;
  }
  if (shadow_enabled()) {
    shadow_push(name);
    shadowed_ = true;
  }
  if (prof::recorder_enabled())
    prof::record(prof::Ev::PhaseEnter, name);
  t0_us_ = s->now_us();
}

ScopedTimer::~ScopedTimer() {
  if (!session_) return;
  const double t1_us = session_->now_us();
  AllocSample da;
  if (const AllocSamplerFn sampler = alloc_sampler()) {
    const AllocSample a1 = sampler();
    // Cumulative counters only grow; guard anyway in case the hook was
    // toggled mid-phase.
    da.allocs = a1.allocs >= a0_.allocs ? a1.allocs - a0_.allocs : 0;
    da.bytes = a1.bytes >= a0_.bytes ? a1.bytes - a0_.bytes : 0;
  }
  HwSample dh;
  bool have_hw = false;
  if (hw_) {
    if (const HwSamplerFn sampler = hw_sampler()) {
      const HwSample h1 = sampler();
      for (int i = 0; i < kHwSlots; ++i) {
        const std::size_t k = static_cast<std::size_t>(i);
        dh.v[k] = h1.v[k] >= h0_.v[k] ? h1.v[k] - h0_.v[k] : 0;
      }
      have_hw = true;
    }
  }
  session_->timers().pop((t1_us - t0_us_) / 1000.0, da.allocs, da.bytes,
                         have_hw ? &dh : nullptr);
  if (shadowed_) shadow_pop();
  if (prof::recorder_enabled())
    prof::record(prof::Ev::PhaseExit, name_);
  if (TraceSink* t = session_->trace()) {
    TraceEvent e;
    e.name = name_;
    e.cat = "phase";
    e.ph = 'X';
    e.ts_us = t0_us_;
    e.dur_us = t1_us - t0_us_;
    t->event(std::move(e));
  }
}

}  // namespace gcr::obs

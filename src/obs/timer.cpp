#include "obs/timer.h"

#include <cassert>
#include <utility>

#include "obs/session.h"

namespace gcr::obs {

namespace {
AllocSamplerFn g_alloc_sampler = nullptr;
}  // namespace

void set_alloc_sampler(AllocSamplerFn fn) { g_alloc_sampler = fn; }

AllocSamplerFn alloc_sampler() { return g_alloc_sampler; }

PhaseStats& PhaseStats::child(std::string_view child_name) {
  for (const auto& c : children)
    if (c->name == child_name) return *c;
  children.push_back(std::make_unique<PhaseStats>());
  children.back()->name = std::string(child_name);
  return *children.back();
}

PhaseStats& PhaseTimers::push(std::string_view name) {
  PhaseStats& node = stack_.back()->child(name);
  stack_.push_back(&node);
  return node;
}

void PhaseTimers::pop(double elapsed_ms, std::uint64_t alloc_count,
                      std::uint64_t alloc_bytes) {
  assert(stack_.size() > 1 && "pop without matching push");
  PhaseStats* node = stack_.back();
  stack_.pop_back();
  node->calls += 1;
  node->total_ms += elapsed_ms;
  node->alloc_count += alloc_count;
  node->alloc_bytes += alloc_bytes;
}

ScopedTimer::ScopedTimer(const char* name) : name_(name) {
  Session* s = current();
  if (!s) return;
  session_ = s;
  s->timers().push(name);
  if (const AllocSamplerFn sampler = alloc_sampler()) a0_ = sampler();
  t0_us_ = s->now_us();
}

ScopedTimer::~ScopedTimer() {
  if (!session_) return;
  const double t1_us = session_->now_us();
  AllocSample da;
  if (const AllocSamplerFn sampler = alloc_sampler()) {
    const AllocSample a1 = sampler();
    // Cumulative counters only grow; guard anyway in case the hook was
    // toggled mid-phase.
    da.allocs = a1.allocs >= a0_.allocs ? a1.allocs - a0_.allocs : 0;
    da.bytes = a1.bytes >= a0_.bytes ? a1.bytes - a0_.bytes : 0;
  }
  session_->timers().pop((t1_us - t0_us_) / 1000.0, da.allocs, da.bytes);
  if (TraceSink* t = session_->trace()) {
    TraceEvent e;
    e.name = name_;
    e.cat = "phase";
    e.ph = 'X';
    e.ts_us = t0_us_;
    e.dur_us = t1_us - t0_us_;
    t->event(std::move(e));
  }
}

}  // namespace gcr::obs

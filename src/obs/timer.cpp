#include "obs/timer.h"

#include <cassert>
#include <utility>

#include "obs/session.h"

namespace gcr::obs {

PhaseStats& PhaseStats::child(std::string_view child_name) {
  for (const auto& c : children)
    if (c->name == child_name) return *c;
  children.push_back(std::make_unique<PhaseStats>());
  children.back()->name = std::string(child_name);
  return *children.back();
}

PhaseStats& PhaseTimers::push(std::string_view name) {
  PhaseStats& node = stack_.back()->child(name);
  stack_.push_back(&node);
  return node;
}

void PhaseTimers::pop(double elapsed_ms) {
  assert(stack_.size() > 1 && "pop without matching push");
  PhaseStats* node = stack_.back();
  stack_.pop_back();
  node->calls += 1;
  node->total_ms += elapsed_ms;
}

ScopedTimer::ScopedTimer(const char* name) : name_(name) {
  Session* s = current();
  if (!s) return;
  session_ = s;
  s->timers().push(name);
  t0_us_ = s->now_us();
}

ScopedTimer::~ScopedTimer() {
  if (!session_) return;
  const double t1_us = session_->now_us();
  session_->timers().pop((t1_us - t0_us_) / 1000.0);
  if (TraceSink* t = session_->trace()) {
    TraceEvent e;
    e.name = name_;
    e.cat = "phase";
    e.ph = 'X';
    e.ts_us = t0_us_;
    e.dur_us = t1_us - t0_us_;
    t->event(std::move(e));
  }
}

}  // namespace gcr::obs

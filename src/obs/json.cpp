#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace gcr::obs::json {

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips any double; shorter representations print shorter.
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 17);
  assert(ec == std::errc());
  return {buf, ptr};
}

void Writer::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (depth_ > 0 && (has_elem_ & (1ull << (depth_ - 1)))) os_ << ',';
  if (depth_ > 0) has_elem_ |= 1ull << (depth_ - 1);
}

Writer& Writer::begin_object() {
  separate();
  assert(depth_ < 64);
  os_ << '{';
  ++depth_;
  has_elem_ &= ~(1ull << (depth_ - 1));
  return *this;
}

Writer& Writer::end_object() {
  assert(depth_ > 0 && !after_key_);
  --depth_;
  os_ << '}';
  return *this;
}

Writer& Writer::begin_array() {
  separate();
  assert(depth_ < 64);
  os_ << '[';
  ++depth_;
  has_elem_ &= ~(1ull << (depth_ - 1));
  return *this;
}

Writer& Writer::end_array() {
  assert(depth_ > 0 && !after_key_);
  --depth_;
  os_ << ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  assert(!after_key_);
  separate();
  os_ << quote(k) << ':';
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  separate();
  os_ << quote(s);
  return *this;
}

Writer& Writer::value(double v) {
  separate();
  os_ << number(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

Writer& Writer::value(bool b) {
  separate();
  os_ << (b ? "true" : "false");
  return *this;
}

Writer& Writer::null() {
  separate();
  os_ << "null";
  return *this;
}

Writer& Writer::raw(std::string_view token) {
  separate();
  os_ << token;
  return *this;
}

namespace {

/// Recursive-descent syntax checker. `p` advances over one construct;
/// returns false on the first violation.
class Checker {
 public:
  explicit Checker(std::string_view s) : s_(s) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] int peek() const {
    return pos_ < s_.size() ? static_cast<unsigned char>(s_[pos_]) : -1;
  }

  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool value() {
    if (++nesting_ > 256) return false;  // defend the test against cycles
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --nesting_;
    return ok;
  }

  bool object() {
    eat('{');
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    eat('[');
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (true) {
      const int c = peek();
      if (c < 0 || c < 0x20) return false;  // unterminated or raw control
      ++pos_;
      if (c == '"') return true;
      if (c == '\\') {
        const int e = peek();
        ++pos_;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(peek())) return false;
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
  }

  bool number() {
    eat('-');
    if (!std::isdigit(peek())) return false;
    if (!eat('0'))
      while (std::isdigit(peek())) ++pos_;
    if (eat('.')) {
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_{0};
  int nesting_{0};
};

}  // namespace

bool valid(std::string_view doc) { return Checker(doc).run(); }

}  // namespace gcr::obs::json

#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace gcr::obs::json {

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips any double; shorter representations print shorter.
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 17);
  assert(ec == std::errc());
  return {buf, ptr};
}

void Writer::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (depth_ > 0 && (has_elem_ & (1ull << (depth_ - 1)))) os_ << ',';
  if (depth_ > 0) has_elem_ |= 1ull << (depth_ - 1);
}

Writer& Writer::begin_object() {
  separate();
  assert(depth_ < 64);
  os_ << '{';
  ++depth_;
  has_elem_ &= ~(1ull << (depth_ - 1));
  return *this;
}

Writer& Writer::end_object() {
  assert(depth_ > 0 && !after_key_);
  --depth_;
  os_ << '}';
  return *this;
}

Writer& Writer::begin_array() {
  separate();
  assert(depth_ < 64);
  os_ << '[';
  ++depth_;
  has_elem_ &= ~(1ull << (depth_ - 1));
  return *this;
}

Writer& Writer::end_array() {
  assert(depth_ > 0 && !after_key_);
  --depth_;
  os_ << ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  assert(!after_key_);
  separate();
  os_ << quote(k) << ':';
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  separate();
  os_ << quote(s);
  return *this;
}

Writer& Writer::value(double v) {
  separate();
  os_ << number(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

Writer& Writer::value(bool b) {
  separate();
  os_ << (b ? "true" : "false");
  return *this;
}

Writer& Writer::null() {
  separate();
  os_ << "null";
  return *this;
}

Writer& Writer::raw(std::string_view token) {
  separate();
  os_ << token;
  return *this;
}

namespace {

/// Recursive-descent syntax checker. `p` advances over one construct;
/// returns false on the first violation.
class Checker {
 public:
  explicit Checker(std::string_view s) : s_(s) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] int peek() const {
    return pos_ < s_.size() ? static_cast<unsigned char>(s_[pos_]) : -1;
  }

  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool value() {
    if (++nesting_ > 256) return false;  // defend the test against cycles
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --nesting_;
    return ok;
  }

  bool object() {
    eat('{');
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    eat('[');
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (true) {
      const int c = peek();
      if (c < 0 || c < 0x20) return false;  // unterminated or raw control
      ++pos_;
      if (c == '"') return true;
      if (c == '\\') {
        const int e = peek();
        ++pos_;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(peek())) return false;
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
  }

  bool number() {
    eat('-');
    if (!std::isdigit(peek())) return false;
    if (!eat('0'))
      while (std::isdigit(peek())) ++pos_;
    if (eat('.')) {
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_{0};
  int nesting_{0};
};

/// Recursive-descent parser building a `Value` tree. Mirrors the Checker's
/// grammar exactly so `parse(doc).has_value() == valid(doc)` for any input
/// that fits in memory.
class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  std::optional<Value> run() {
    skip_ws();
    std::optional<Value> v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] int peek() const {
    return pos_ < s_.size() ? static_cast<unsigned char>(s_[pos_]) : -1;
  }

  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Value> value() {
    if (++nesting_ > 256) return std::nullopt;
    std::optional<Value> out;
    switch (peek()) {
      case '{': out = object(); break;
      case '[': out = array(); break;
      case '"': {
        std::optional<std::string> s = string();
        if (s) out = Value(std::move(*s));
        break;
      }
      case 't': if (literal("true")) out = Value(true); break;
      case 'f': if (literal("false")) out = Value(false); break;
      case 'n': if (literal("null")) out = Value(nullptr); break;
      default: out = number(); break;
    }
    --nesting_;
    return out;
  }

  std::optional<Value> object() {
    eat('{');
    Value::Object obj;
    skip_ws();
    if (eat('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      std::optional<std::string> k = string();
      if (!k) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      skip_ws();
      std::optional<Value> v = value();
      if (!v) return std::nullopt;
      obj.insert_or_assign(std::move(*k), std::move(*v));
      skip_ws();
      if (eat('}')) return Value(std::move(obj));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<Value> array() {
    eat('[');
    Value::Array arr;
    skip_ws();
    if (eat(']')) return Value(std::move(arr));
    while (true) {
      skip_ws();
      std::optional<Value> v = value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (eat(']')) return Value(std::move(arr));
      if (!eat(',')) return std::nullopt;
    }
  }

  /// Append `cp` to `out` as UTF-8.
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  std::optional<unsigned> hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const int c = peek();
      if (!std::isxdigit(c)) return std::nullopt;
      v = v * 16 + static_cast<unsigned>(
                       c <= '9' ? c - '0' : (std::tolower(c) - 'a' + 10));
      ++pos_;
    }
    return v;
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (true) {
      const int c = peek();
      if (c < 0 || c < 0x20) return std::nullopt;
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      const int e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::optional<unsigned> hi = hex4();
          if (!hi) return std::nullopt;
          unsigned cp = *hi;
          if (cp >= 0xd800 && cp <= 0xdbff && literal("\\u")) {
            const std::optional<unsigned> lo = hex4();
            if (!lo || *lo < 0xdc00 || *lo > 0xdfff) return std::nullopt;
            cp = 0x10000 + ((cp - 0xd800) << 10) + (*lo - 0xdc00);
          }
          append_utf8(out, cp);
          break;
        }
        default: return std::nullopt;
      }
    }
  }

  std::optional<Value> number() {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(peek())) return std::nullopt;
    if (!eat('0'))
      while (std::isdigit(peek())) ++pos_;
    if (eat('.')) {
      if (!std::isdigit(peek())) return std::nullopt;
      while (std::isdigit(peek())) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(peek())) return std::nullopt;
      while (std::isdigit(peek())) ++pos_;
    }
    double d = 0.0;
    const char* first = s_.data() + start;
    const char* last = s_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last) return std::nullopt;
    return Value(d);
  }

  std::string_view s_;
  std::size_t pos_{0};
  int nesting_{0};
};

}  // namespace

bool valid(std::string_view doc) { return Checker(doc).run(); }

std::optional<Value> parse(std::string_view doc) { return Parser(doc).run(); }

}  // namespace gcr::obs::json

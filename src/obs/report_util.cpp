#include "obs/report_util.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <iomanip>
#include <ostream>
#include <string>
#include <unistd.h>
#include <vector>

#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/timer.h"

namespace gcr::obs {

namespace {

void write_phases(json::Writer& w, const PhaseStats& node) {
  w.begin_object();
  w.field("name", node.name);
  w.field("calls", node.calls);
  w.field("total_ms", node.total_ms);
  if (node.alloc_count > 0 || node.alloc_bytes > 0) {
    w.field("alloc_count", node.alloc_count);
    w.field("alloc_bytes", node.alloc_bytes);
  }
  if (node.has_hw) {
    const std::array<const char*, kHwSlots>& names = hw_counter_names();
    w.key("hw").begin_object();
    for (int i = 0; i < kHwSlots; ++i)
      w.field(names[static_cast<std::size_t>(i)],
              node.hw[static_cast<std::size_t>(i)]);
    w.end_object();
  }
  w.key("children").begin_array();
  for (const auto& c : node.children) write_phases(w, *c);
  w.end_array();
  w.end_object();
}

}  // namespace

void write_phase_forest(json::Writer& w, const Session& session) {
  w.key("phases").begin_array();
  for (const auto& c : session.timers().root().children) write_phases(w, *c);
  w.end_array();
}

void write_metrics(json::Writer& w) {
  const Registry& reg = Registry::global();
  w.key("counters").begin_object();
  for (const auto& [name, value] : reg.counters()) w.field(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : reg.gauges()) w.field(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, snap] : reg.histograms()) {
    w.key(name).begin_object();
    w.field("count", snap.count);
    w.field("sum", snap.sum);
    w.field("min", snap.min);
    w.field("max", snap.max);
    w.field("mean", snap.mean());
    // The bucket layout is part of the schema: pow2 = sparse map keyed by
    // each bucket's lower bound, plus an explicit "overflow" entry for
    // observations past the top bound (never folded into the last bucket).
    w.field("bucket_scheme", "pow2");
    w.key("buckets").begin_object();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = snap.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      w.field(json::number(std::ldexp(1.0, i - Histogram::kExpBias)), n);
    }
    if (snap.overflow > 0) w.field("overflow", snap.overflow);
    w.end_object();
    w.end_object();
  }
  w.end_object();
}

namespace {

std::string human_bytes(std::uint64_t b) {
  char buf[32];
  if (b >= 10ull * 1024 * 1024)
    std::snprintf(buf, sizeof buf, "%.1f MiB", double(b) / (1024.0 * 1024.0));
  else if (b >= 10ull * 1024)
    std::snprintf(buf, sizeof buf, "%.1f KiB", double(b) / 1024.0);
  else
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(b));
  return buf;
}

void print_phase(std::ostream& os, const PhaseStats& node, int indent) {
  os << std::string(static_cast<std::size_t>(2 * indent), ' ') << node.name
     << "  " << std::fixed << std::setprecision(2) << node.total_ms << " ms";
  if (node.calls > 1) os << "  (x" << node.calls << ")";
  if (node.alloc_count > 0)
    os << "  [" << node.alloc_count << " allocs, "
       << human_bytes(node.alloc_bytes) << "]";
  os << '\n';
  for (const auto& c : node.children) print_phase(os, *c, indent + 1);
}

}  // namespace

void print_session_summary(std::ostream& os, const Session& session) {
  os << "-- phases --\n";
  for (const auto& c : session.timers().root().children)
    print_phase(os, *c, 1);
  os << "-- counters --\n";
  // Counters print largest first: the interesting number in a diagnosis
  // ("why is this slow") is almost always near the top of that order.
  std::vector<Registry::CounterEntry> counters = Registry::global().counters();
  std::stable_sort(counters.begin(), counters.end(),
                   [](const Registry::CounterEntry& a,
                      const Registry::CounterEntry& b) {
                     return a.value > b.value;
                   });
  for (const auto& [name, value] : counters)
    if (value != 0) os << "  " << name << " = " << value << '\n';
  for (const auto& [name, value] : Registry::global().gauges())
    if (value != 0.0) os << "  " << name << " = " << value << '\n';
  bool wrote_histo_header = false;
  for (const auto& [name, snap] : Registry::global().histograms()) {
    if (snap.count == 0) continue;
    if (!wrote_histo_header) {
      os << "-- histograms --\n";
      wrote_histo_header = true;
    }
    os << "  " << name << ": n=" << snap.count << " mean=" << snap.mean()
       << " min=" << snap.min << " max=" << snap.max << '\n';
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = snap.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;  // non-zero buckets only
      os << "    >= " << std::ldexp(1.0, i - Histogram::kExpBias) << ": " << n
         << '\n';
    }
    if (snap.overflow > 0)
      os << "    overflow (>= "
         << std::ldexp(1.0, Histogram::kBuckets - Histogram::kExpBias)
         << "): " << snap.overflow << '\n';
  }
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

std::string host_name() {
  char buf[256];
  if (gethostname(buf, sizeof buf) != 0) return "unknown";
  buf[sizeof buf - 1] = '\0';
  return buf[0] != '\0' ? buf : "unknown";
}

}  // namespace gcr::obs

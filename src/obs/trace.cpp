#include "obs/trace.h"

#include <atomic>
#include <ostream>
#include <utility>

#include "obs/json.h"

namespace gcr::obs {

int trace_tid() {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceArg TraceArg::num(std::string key, double v) {
  return {std::move(key), json::number(v)};
}

TraceArg TraceArg::num(std::string key, long long v) {
  return {std::move(key), std::to_string(v)};
}

TraceArg TraceArg::str(std::string key, std::string_view s) {
  return {std::move(key), json::quote(s)};
}

TraceArg TraceArg::boolean(std::string key, bool b) {
  return {std::move(key), b ? "true" : "false"};
}

void MemoryTraceSink::event(TraceEvent e) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> MemoryTraceSink::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::size_t MemoryTraceSink::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void MemoryTraceSink::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

void MemoryTraceSink::write_chrome_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  json::Writer w(os);
  w.begin_array();
  for (const TraceEvent& e : events_) {
    w.begin_object();
    w.field("name", e.name);
    w.field("cat", e.cat);
    w.field("ph", std::string_view(&e.ph, 1));
    // Single-process timeline; tid is the emitting thread's ordinal so
    // worker-side events land on their own viewer tracks.
    w.field("pid", 1);
    w.field("tid", e.tid);
    w.field("ts", e.ts_us);
    if (e.ph == 'X') w.field("dur", e.dur_us);
    if (e.ph == 'i') w.field("s", "t");  // instant scope: thread
    if (!e.args.empty()) {
      w.key("args").begin_object();
      for (const TraceArg& a : e.args) w.key(a.key).raw(a.token);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  os << '\n';
}

}  // namespace gcr::obs

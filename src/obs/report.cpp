#include "obs/report.h"

#include <ostream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report_util.h"

namespace gcr::obs {

namespace {

const char* style_name(core::TreeStyle s) {
  switch (s) {
    case core::TreeStyle::Buffered: return "buffered";
    case core::TreeStyle::Gated: return "gated";
    case core::TreeStyle::GatedReduced: return "reduced";
  }
  return "?";
}

const char* topology_name(core::TopologyScheme t) {
  switch (t) {
    case core::TopologyScheme::MinSwitchedCap: return "swcap";
    case core::TopologyScheme::NearestNeighbor: return "nn";
    case core::TopologyScheme::ActivityOnly: return "activity";
    case core::TopologyScheme::Mmm: return "mmm";
  }
  return "?";
}

void write_options(json::Writer& w, const core::RouterOptions& o) {
  w.key("options").begin_object();
  w.field("style", style_name(o.style));
  w.field("topology", topology_name(o.topology));
  w.field("clustered", o.clustered);
  w.field("auto_tune_reduction", o.auto_tune_reduction);
  w.field("gate_sizing",
          o.gate_sizing == ct::GateSizing::Unit ? "unit" : "min_wirelength");
  w.field("skew_bound", o.skew_bound);
  w.field("controller_partitions", o.controller_partitions);
  w.field("num_threads", o.num_threads);
  w.key("reduction").begin_object();
  w.field("theta_activity", o.reduction.theta_activity);
  w.field("theta_swcap", o.reduction.theta_swcap);
  w.field("theta_parent", o.reduction.theta_parent);
  w.field("force_cap_multiple", o.reduction.force_cap_multiple);
  w.end_object();
  w.key("tech").begin_object();
  w.field("unit_res", o.tech.unit_res);
  w.field("unit_cap", o.tech.unit_cap);
  w.field("wire_width", o.tech.wire_width);
  w.field("gate_input_cap", o.tech.gate_input_cap);
  w.field("gate_enable_cap", o.tech.gate_enable_cap);
  w.field("gate_output_res", o.tech.gate_output_res);
  w.field("gate_delay", o.tech.gate_delay);
  w.field("gate_area", o.tech.gate_area);
  w.field("or_gate_area", o.tech.or_gate_area);
  w.field("or_output_cap", o.tech.or_output_cap);
  w.end_object();
  w.end_object();
}

void write_result(json::Writer& w, const core::RouterResult& r) {
  w.key("result").begin_object();
  w.field("sinks", r.tree.num_leaves);
  w.field("nodes", r.tree.num_nodes());
  w.field("num_gates", r.tree.num_gates());
  w.field("gates_before_reduction", r.gates_before_reduction);
  w.field("gate_reduction_pct", r.gate_reduction_pct());
  w.key("swcap").begin_object();
  w.field("clock_swcap", r.swcap.clock_swcap);
  w.field("ctrl_swcap", r.swcap.ctrl_swcap);
  w.field("total_swcap", r.swcap.total_swcap());
  w.field("ungated_swcap", r.swcap.ungated_swcap);
  w.field("clock_wirelength", r.swcap.clock_wirelength);
  w.field("star_wirelength", r.swcap.star_wirelength);
  w.field("wire_area", r.swcap.wire_area);
  w.field("cell_area", r.swcap.cell_area);
  w.field("total_area", r.swcap.total_area());
  w.field("num_cells", r.swcap.num_cells);
  w.end_object();
  w.key("delays").begin_object();
  w.field("max_delay", r.delays.max_delay);
  w.field("min_delay", r.delays.min_delay);
  w.field("skew", r.delays.skew());
  w.end_object();
  w.end_object();
}

}  // namespace

void write_run_report(std::ostream& os, const core::RouterOptions& opts,
                      const core::RouterResult& result,
                      const Session& session) {
  json::Writer w(os);
  w.begin_object();
  w.field("schema", "gcr.run_report");
  w.field("version", kReportVersion);
  w.key("generated").begin_object();
  w.field("timestamp_utc", utc_timestamp());
  w.field("hostname", host_name());
  w.end_object();
  write_options(w, opts);
  write_phase_forest(w, session);
  write_metrics(w);
  write_result(w, result);
  w.end_object();
  os << '\n';
}

void print_run_summary(std::ostream& os, const Session& session) {
  print_session_summary(os, session);
}

}  // namespace gcr::obs

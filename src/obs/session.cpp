#include "obs/session.h"

namespace gcr::obs {

namespace {
thread_local Session* t_current = nullptr;
}  // namespace

Session* current() { return t_current; }

Bind::Bind(Session* s) : prev_(t_current) { t_current = s; }

Bind::~Bind() { t_current = prev_; }

}  // namespace gcr::obs

#include "obs/metrics.h"

#include <cmath>
#include <limits>

namespace gcr::obs {

namespace detail {
bool g_metrics_enabled = false;
}  // namespace detail

void set_metrics_enabled(bool on) { detail::g_metrics_enabled = on; }

namespace {

/// Lock-free monotone update of an atomic double (for min/max).
template <typename Better>
void update_extreme(std::atomic<double>& slot, double v, Better better) {
  double cur = slot.load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// kBuckets means "past the top bound": the caller routes it to the
/// overflow slot. Non-finite values also overflow -- they have no finite
/// power-of-two range to belong to.
int bucket_of(double v) {
  if (!(v > 0.0)) return 0;
  if (!std::isfinite(v)) return Histogram::kBuckets;
  const int e = std::ilogb(v) + Histogram::kExpBias;
  return e < 0 ? 0 : (e > Histogram::kBuckets ? Histogram::kBuckets : e);
}

}  // namespace

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  double expect = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expect, expect + v,
                                     std::memory_order_relaxed)) {
  }
  update_extreme(min_, v, [](double a, double b) { return a < b; });
  update_extreme(max_, v, [](double a, double b) { return a > b; });
  const int b = bucket_of(v);
  if (b >= kBuckets)
    overflow_.fetch_add(1, std::memory_order_relaxed);
  else
    buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                    std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kBuckets; ++i)
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlive static destructors
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<Registry::CounterEntry> Registry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<CounterEntry> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back({name, c->value()});
  return out;
}

std::vector<Registry::GaugeEntry> Registry::gauges() const {
  std::lock_guard lock(mu_);
  std::vector<GaugeEntry> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.push_back({name, g->value()});
  return out;
}

std::vector<Registry::HistogramEntry> Registry::histograms() const {
  std::lock_guard lock(mu_);
  std::vector<HistogramEntry> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    out.push_back({name, h->snapshot()});
  return out;
}

}  // namespace gcr::obs

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// \file timer.h
/// RAII scoped phase timers forming a phase tree.
///
/// Each routing run produces a tree like
///
///   analyze            12.3 ms
///   route              81.0 ms
///   ├─ topology        44.1 ms
///   ├─ embed           21.7 ms  (x12 under auto-tune)
///   ├─ reduce           2.2 ms
///   ├─ controller       0.0 ms
///   └─ eval             9.8 ms
///
/// Re-entering a phase name under the same parent aggregates into one node
/// (calls += 1, total_ms += elapsed), so auto-tune's repeated
/// embed/reduce/eval iterations stay readable. Durations come from the
/// monotonic steady clock.
///
/// `ScopedTimer` is the only thing instrumented code touches; it is a no-op
/// (one thread-local load) unless a `Session` is bound on this thread, and
/// it additionally emits a Chrome trace-event slice when the session has a
/// trace sink attached. The phase stack is per-session and therefore
/// per-thread -- a session must not be shared across threads.

namespace gcr::obs {

class Session;

/// Cumulative allocation counters at one instant, as reported by the
/// process's allocation hook (see `set_alloc_sampler`).
struct AllocSample {
  std::uint64_t allocs{0};
  std::uint64_t bytes{0};
};

/// Sampler the phase timers call to attribute heap traffic to phases.
/// Installed by `perf::memhook` when the (opt-in) global operator
/// new/delete hook is enabled; nullptr (the default) keeps `ScopedTimer`
/// free of any allocation bookkeeping. Install/remove only from quiescent
/// points, like `set_metrics_enabled`.
using AllocSamplerFn = AllocSample (*)();
void set_alloc_sampler(AllocSamplerFn fn);
[[nodiscard]] AllocSamplerFn alloc_sampler();

/// Cumulative hardware-counter readings for the *calling thread* at one
/// instant. The four slots' meaning is defined by whoever installs the
/// sampler (gcr::prof: cycles/instructions/cache_misses/branch_misses via
/// perf_event_open, or rusage-based deltas when the PMU is unavailable);
/// obs only deltas them across each phase and reports them under the
/// registered slot names.
struct HwSample {
  std::array<std::uint64_t, 4> v{};
};
inline constexpr int kHwSlots = 4;

/// Installed by prof::enable_hw_counters; nullptr (the default) keeps
/// ScopedTimer free of any counter reads. `names` must be static-duration
/// strings; they stick after the sampler is removed so late report writers
/// can still label already-collected per-phase values. Install/remove only
/// from quiescent points.
using HwSamplerFn = HwSample (*)();
void set_hw_sampler(HwSamplerFn fn,
                    const std::array<const char*, kHwSlots>& names);
[[nodiscard]] HwSamplerFn hw_sampler();
[[nodiscard]] const std::array<const char*, kHwSlots>& hw_counter_names();

struct PhaseStats {
  std::string name;
  int calls{0};
  double total_ms{0.0};
  /// Heap traffic attributed to this phase (excluding children's own
  /// double count -- deltas are credited to the innermost open phase's
  /// subtree root, i.e. each node's numbers *include* its children, like
  /// total_ms). Zero unless an alloc sampler was installed.
  std::uint64_t alloc_count{0};
  std::uint64_t alloc_bytes{0};
  /// Hardware-counter deltas for this phase's subtree (inclusive of
  /// children, like total_ms). Populated only while an hw sampler is
  /// installed; see `hw_counter_names()` for the slot labels.
  bool has_hw{false};
  std::array<std::uint64_t, kHwSlots> hw{};
  std::vector<std::unique_ptr<PhaseStats>> children;

  /// Find-or-create the child with this name (aggregation point).
  PhaseStats& child(std::string_view child_name);
};

/// The per-session collector: a synthetic unnamed root plus the stack of
/// currently open phases.
class PhaseTimers {
 public:
  PhaseTimers() { stack_.push_back(&root_); }

  [[nodiscard]] const PhaseStats& root() const { return root_; }

  /// Open `name` under the innermost open phase; returns the node.
  PhaseStats& push(std::string_view name);
  /// Close the innermost phase, crediting `elapsed_ms` (and, when an alloc
  /// sampler is installed, the allocation deltas) to it.
  void pop(double elapsed_ms, std::uint64_t alloc_count = 0,
           std::uint64_t alloc_bytes = 0, const HwSample* hw_delta = nullptr);
  /// Stack depth excluding the synthetic root (0 = nothing open).
  [[nodiscard]] int depth() const {
    return static_cast<int>(stack_.size()) - 1;
  }

 private:
  PhaseStats root_;
  std::vector<PhaseStats*> stack_;
};

/// Times one phase for the session bound to the current thread (no-op when
/// none). Stack-allocated only; scopes must nest properly.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Session* session_{nullptr};
  const char* name_;
  double t0_us_{0.0};
  AllocSample a0_;  ///< sampler snapshot at phase entry (if installed)
  HwSample h0_;     ///< hw-counter snapshot at phase entry (if installed)
  bool hw_{false};
  bool shadowed_{false};  ///< pushed onto this thread's PhaseShadow
};

}  // namespace gcr::obs

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// \file timer.h
/// RAII scoped phase timers forming a phase tree.
///
/// Each routing run produces a tree like
///
///   analyze            12.3 ms
///   route              81.0 ms
///   ├─ topology        44.1 ms
///   ├─ embed           21.7 ms  (x12 under auto-tune)
///   ├─ reduce           2.2 ms
///   ├─ controller       0.0 ms
///   └─ eval             9.8 ms
///
/// Re-entering a phase name under the same parent aggregates into one node
/// (calls += 1, total_ms += elapsed), so auto-tune's repeated
/// embed/reduce/eval iterations stay readable. Durations come from the
/// monotonic steady clock.
///
/// `ScopedTimer` is the only thing instrumented code touches; it is a no-op
/// (one thread-local load) unless a `Session` is bound on this thread, and
/// it additionally emits a Chrome trace-event slice when the session has a
/// trace sink attached. The phase stack is per-session and therefore
/// per-thread -- a session must not be shared across threads.

namespace gcr::obs {

class Session;

struct PhaseStats {
  std::string name;
  int calls{0};
  double total_ms{0.0};
  std::vector<std::unique_ptr<PhaseStats>> children;

  /// Find-or-create the child with this name (aggregation point).
  PhaseStats& child(std::string_view child_name);
};

/// The per-session collector: a synthetic unnamed root plus the stack of
/// currently open phases.
class PhaseTimers {
 public:
  PhaseTimers() { stack_.push_back(&root_); }

  [[nodiscard]] const PhaseStats& root() const { return root_; }

  /// Open `name` under the innermost open phase; returns the node.
  PhaseStats& push(std::string_view name);
  /// Close the innermost phase, crediting `elapsed_ms` to it.
  void pop(double elapsed_ms);
  /// Stack depth excluding the synthetic root (0 = nothing open).
  [[nodiscard]] int depth() const {
    return static_cast<int>(stack_.size()) - 1;
  }

 private:
  PhaseStats root_;
  std::vector<PhaseStats*> stack_;
};

/// Times one phase for the session bound to the current thread (no-op when
/// none). Stack-allocated only; scopes must nest properly.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Session* session_{nullptr};
  const char* name_;
  double t0_us_{0.0};
};

}  // namespace gcr::obs

#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

/// \file trace.h
/// Event sink for decision-level tracing, exportable as Chrome trace-event
/// JSON (the array format understood by both `chrome://tracing` and
/// Perfetto's legacy importer).
///
/// Two kinds of events flow through a sink:
///   * phase slices ('X' complete events) emitted by ScopedTimer, and
///   * instant decision events ('i') emitted by the algorithms: one per
///     Eq. 3 merge (chosen pair, switched-cap delta, runner-up, front
///     size) and one per gate-reduction decision (rules fired, removal).
///
/// Emitters must check `obs::active_trace()` before building an event, so
/// a disabled trace costs one thread-local load and nothing else.

namespace gcr::obs {

/// One pre-rendered "args" entry. Values are stored as final JSON tokens
/// so the exporter never re-inspects types.
struct TraceArg {
  std::string key;
  std::string token;  ///< valid JSON value token (number / quoted string)

  static TraceArg num(std::string key, double v);
  static TraceArg num(std::string key, long long v);
  static TraceArg str(std::string key, std::string_view s);
  static TraceArg boolean(std::string key, bool b);
};

/// Dense per-thread ordinal for trace events: the first emitting thread
/// (the coordinator, in practice) gets 1, pool workers take successive
/// ids. Stable for the life of the thread, so a trace viewer lays each
/// worker out on its own track.
[[nodiscard]] int trace_tid();

struct TraceEvent {
  std::string name;
  std::string cat;      ///< subsystem: "phase", "cts", "reduction", ...
  char ph{'X'};         ///< 'X' complete (has dur), 'i' instant
  int tid{trace_tid()}; ///< emitting thread's ordinal
  double ts_us{0.0};    ///< microseconds since session start
  double dur_us{0.0};   ///< 'X' only
  std::vector<TraceArg> args;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void event(TraceEvent e) = 0;
};

/// Buffers events in memory; thread-safe appends. Export with
/// write_chrome_json() at end of run.
class MemoryTraceSink final : public TraceSink {
 public:
  void event(TraceEvent e) override;

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Chrome trace-event JSON array: open the file via the "Load" button of
  /// chrome://tracing, or drag it into https://ui.perfetto.dev.
  void write_chrome_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace gcr::obs

#pragma once

#include <iosfwd>

#include "core/router.h"
#include "obs/session.h"

/// \file report.h
/// Versioned JSON run reports: one document per routing run carrying the
/// options, the phase-timing tree, every metric in the global registry,
/// and the final switched-capacitance / delay numbers.
/// Schema: `{"schema": "gcr.run_report", "version": 1, ...}` -- bump
/// `kReportVersion` on breaking layout changes and note it in
/// docs/observability.md.
///
/// Bench reports (`gcr.bench_report`, now at v2 with statistics and memory
/// sections) moved to `perf/report.h`: they are produced by the
/// statistical bench runner, not by a routed run.
///
/// This is the only observability component that knows about the router's
/// types, which is why it lives in its own library target (`gcr_obs_report`
/// links `gcr_core`; the base `gcr_obs` has no dependencies so every layer
/// of the library can link it).

namespace gcr::obs {

inline constexpr int kReportVersion = 1;

/// Full run report for one routed design.
void write_run_report(std::ostream& os, const core::RouterOptions& opts,
                      const core::RouterResult& result, const Session& session);

/// Human-readable phase tree + non-zero counters (the CLI's --verbose
/// output, written to stderr there).
void print_run_summary(std::ostream& os, const Session& session);

}  // namespace gcr::obs

#pragma once

#include <iosfwd>

#include "obs/json.h"

/// \file report_util.h
/// JSON fragments shared by every report writer: the phase-timing forest
/// and the metrics-registry snapshot. Lives in the base `gcr_obs` target
/// (no core dependency) so both `gcr_obs_report` (run reports, needs
/// `core` types) and `gcr_perf` (bench reports, must not link `core`'s
/// serialization) emit byte-identical sections.

namespace gcr::obs {

class Session;

/// `"phases": [...]` — the session's phase tree as nested objects with
/// name/calls/total_ms/children, plus alloc_count/alloc_bytes when an
/// allocation sampler attributed heap traffic to the phase.
void write_phase_forest(json::Writer& w, const Session& session);

/// `"counters": {...}, "gauges": {...}, "histograms": {...}` — snapshot of
/// the global metrics registry.
void write_metrics(json::Writer& w);

/// Human-readable phase tree + non-zero counters (the CLI's --verbose
/// output, written to stderr there). Phases with attributed allocations
/// get an `allocs / bytes` column.
void print_session_summary(std::ostream& os, const Session& session);

/// Current UTC wall-clock as "2026-08-09T12:34:56Z" -- the provenance
/// stamp every report fingerprint carries for longitudinal tracking.
[[nodiscard]] std::string utc_timestamp();

/// gethostname(), "unknown" when unavailable.
[[nodiscard]] std::string host_name();

}  // namespace gcr::obs

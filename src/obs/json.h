#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

/// \file json.h
/// Minimal streaming JSON writer (and a syntax validator for tests), shared
/// by the trace exporter and the run-report writer. Zero dependencies: the
/// observability layer must not pull a JSON library into the core build.
///
/// The writer is a thin state machine: begin/end object/array, key(), and
/// typed value() overloads. Commas and quoting/escaping are handled here so
/// emitters never concatenate raw strings. Numbers print with enough digits
/// to round-trip doubles; NaN/Inf (not valid JSON) degrade to null.

namespace gcr::obs::json {

/// Escape `s` into a quoted JSON string token (including the quotes).
[[nodiscard]] std::string quote(std::string_view s);

/// Format a double as a JSON number token (null for NaN/Inf).
[[nodiscard]] std::string number(double v);

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key; must be followed by a value or begin_*().
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool b);
  Writer& null();

  /// Emit a pre-rendered JSON token verbatim (trusted input).
  Writer& raw(std::string_view token);

  /// Shorthand: key + value.
  template <typename T>
  Writer& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

 private:
  void separate();  ///< emit "," if a sibling value precedes

  std::ostream& os_;
  /// One bool per open container: true once the first element was written.
  /// Depth beyond 64 is a caller bug (the report nests ~5 deep).
  std::uint64_t has_elem_{0};
  int depth_{0};
  bool after_key_{false};
};

/// Strict syntax check of a complete JSON document (single value spanning
/// the whole input, modulo whitespace). Used by tests to assert the trace
/// and report outputs are well-formed without a parser dependency.
[[nodiscard]] bool valid(std::string_view doc);

}  // namespace gcr::obs::json

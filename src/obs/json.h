#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

/// \file json.h
/// Minimal streaming JSON writer, a syntax validator, and a small DOM
/// parser, shared by the trace exporter, the run-report writer and the
/// bench-report diff tool. Zero dependencies: the observability layer must
/// not pull a JSON library into the core build.
///
/// The writer is a thin state machine: begin/end object/array, key(), and
/// typed value() overloads. Commas and quoting/escaping are handled here so
/// emitters never concatenate raw strings. Numbers print with enough digits
/// to round-trip doubles; NaN/Inf (not valid JSON) degrade to null.
///
/// The parser (`parse()`) builds a `Value` tree for consumers that must
/// *read* reports back (schema validation, `gcr_benchdiff`). It is strict
/// (same grammar the validator accepts) and keeps all numbers as doubles,
/// which round-trips everything our writers emit.

namespace gcr::obs::json {

/// Escape `s` into a quoted JSON string token (including the quotes).
[[nodiscard]] std::string quote(std::string_view s);

/// Format a double as a JSON number token (null for NaN/Inf).
[[nodiscard]] std::string number(double v);

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key; must be followed by a value or begin_*().
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool b);
  Writer& null();

  /// Emit a pre-rendered JSON token verbatim (trusted input).
  Writer& raw(std::string_view token);

  /// Shorthand: key + value.
  template <typename T>
  Writer& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

 private:
  void separate();  ///< emit "," if a sibling value precedes

  std::ostream& os_;
  /// One bool per open container: true once the first element was written.
  /// Depth beyond 64 is a caller bug (the report nests ~5 deep).
  std::uint64_t has_elem_{0};
  int depth_{0};
  bool after_key_{false};
};

/// Strict syntax check of a complete JSON document (single value spanning
/// the whole input, modulo whitespace). Used by tests to assert the trace
/// and report outputs are well-formed without a parser dependency.
[[nodiscard]] bool valid(std::string_view doc);

/// Parsed JSON value. Object member order is not preserved (members sort by
/// key); duplicate keys keep the last occurrence, as in most parsers.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value, std::less<>>;

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Checked accessors: the caller asserts the kind first (std::get throws
  /// std::bad_variant_access on mismatch, which is the intended failure).
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(v_); }

  /// Object member lookup; nullptr when absent or when this is not an
  /// object. Chains safely: v.find("a") ? v.find("a")->find("b") : ...
  [[nodiscard]] const Value* find(std::string_view key) const {
    const auto* obj = std::get_if<Object>(&v_);
    if (!obj) return nullptr;
    const auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }

  /// Number member shorthand; `fallback` when absent or not a number.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const {
    const Value* v = find(key);
    return v && v->is_number() ? v->as_number() : fallback;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parse a complete JSON document; std::nullopt on any syntax error.
[[nodiscard]] std::optional<Value> parse(std::string_view doc);

}  // namespace gcr::obs::json

#pragma once

#include <vector>

#include "core/router.h"
#include "eco/delta.h"
#include "guard/deadline.h"

/// \file incremental.h
/// Incremental ECO re-routing (docs/incremental.md): given a finished
/// route of the base design and a DesignDelta, rebuild only the
/// *invalidation cone* -- the merge path from each touched sink to the
/// root -- and splice everything else from the previous tree unchanged.
///
/// The algorithm:
///   1. Mark the previous tree's dirty nodes: every moved/removed leaf
///      and all of its ancestors. Clean is downward-closed, so the clean
///      nodes form maximal preserved subtrees.
///   2. Replay the preserved merges into a fresh topology (ascending old
///      id = valid bottom-up order) and recompute their construction taps
///      (merging segment, zero-skew delay, cap) bottom-up -- closed-form
///      zero-skew merges, no embedding.
///   3. Re-merge the *spine*: the preserved subtree roots plus moved and
///      added leaves enter the greedy engine as cts::TapSeed candidates,
///      priced by the same Eq. 3 terms (through the same PartnerIndex) as
///      a from-scratch run.
///   4. Re-run gate reduction on the cone only (gating::reduce_gates_cone
///      copies the previous gate bits elsewhere) and re-embed.
///
/// Outside the cone every bottom-up field of the result (edge lengths,
/// caps, delays, gate bits and sizes) is bit-identical to the previous
/// route, because each is a pure function of subtree structure, sinks and
/// gate bits -- all unchanged there. Embedded *locations* are top-down
/// (each node placed nearest its placed parent) and may legitimately
/// shift when a spine ancestor moves; they are excluded from the
/// preservation contract. `gcr_check --eco-diff` enforces both halves of
/// the contract (verify::run_eco_differential).

namespace gcr::eco {

/// Provenance and statistics of one incremental re-route, for the
/// differential checker and for telemetry.
struct EcoInfo {
  /// new tree node id -> previous tree node id for nodes carried over
  /// (surviving leaves and replayed preserved merges); -1 for added
  /// leaves and re-merged spine nodes.
  std::vector<int> old_of;
  /// new tree node id -> inside the invalidation cone (re-merged spine,
  /// touched leaves, preserved-subtree roots, activity-dirty nodes).
  /// Gate decisions are recomputed exactly here; everything else copies
  /// the previous route.
  std::vector<bool> in_cone;
  int dirty_leaves{0};      ///< moved + removed + added sinks
  int preserved_merges{0};  ///< internal merges replayed from the prev tree
  int spine_seeds{0};       ///< candidates entering the re-merge engine
  int spine_merges{0};      ///< merges the engine re-decided
};

/// Incrementally re-route `router`'s design under `delta`, starting from
/// `prev` (a finished result of router.route(opts) on the *base* design).
/// Mirrors route_guarded: validates the delta, installs `deadline` as the
/// ambient deadline, converts guard errors and cancellation into
/// diagnostics on the outcome. opts.auto_tune_reduction is not supported
/// incrementally (the sweep would re-reduce the whole tree); it falls
/// back to opts.reduction. When `info` is non-null it receives the cone
/// provenance of the run.
[[nodiscard]] core::RouteOutcome route_incremental(
    const core::GatedClockRouter& router, const core::RouterResult& prev,
    const DesignDelta& delta, const core::RouterOptions& opts,
    EcoInfo* info = nullptr,
    const guard::Deadline& deadline = guard::Deadline());

}  // namespace gcr::eco

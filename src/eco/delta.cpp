#include "eco/delta.h"

#include <cassert>
#include <cmath>
#include <string>

namespace gcr::eco {

namespace {

[[nodiscard]] bool finite(double v) { return std::isfinite(v); }

}  // namespace

bool validate_delta(const core::Design& base, const DesignDelta& delta,
                    guard::Diag& diag) {
  const std::size_t before = diag.error_count();
  const int n = base.num_sinks();
  // A sink may be touched by at most one edit: the invalidation cone and
  // the survivor renumbering are only well-defined for disjoint edits.
  std::vector<char> touched(static_cast<std::size_t>(std::max(n, 1)), 0);
  const auto touch = [&](int sink, const char* what) {
    if (sink < 0 || sink >= n) {
      diag.error(guard::Code::Range,
                 std::string(what) + " names sink " + std::to_string(sink) +
                     " outside the base design's 0.." + std::to_string(n - 1));
      return;
    }
    if (touched[static_cast<std::size_t>(sink)]) {
      diag.error(guard::Code::Duplicate,
                 "sink " + std::to_string(sink) +
                     " touched by more than one delta edit");
      return;
    }
    touched[static_cast<std::size_t>(sink)] = 1;
  };

  for (const SinkMove& mv : delta.moves) {
    touch(mv.sink, "move");
    if (!finite(mv.to.x) || !finite(mv.to.y)) {
      diag.error(guard::Code::NonFinite,
                 "move of sink " + std::to_string(mv.sink) +
                     " has a non-finite target coordinate");
    } else if (!base.die.contains(mv.to)) {
      diag.warning(guard::Code::OutOfDie,
                   "move of sink " + std::to_string(mv.sink) +
                       " targets a point outside the die");
    }
  }
  for (const int r : delta.removes) touch(r, "remove");
  for (std::size_t i = 0; i < delta.adds.size(); ++i) {
    const SinkAdd& add = delta.adds[i];
    const std::string who = "added sink #" + std::to_string(i);
    if (!finite(add.sink.loc.x) || !finite(add.sink.loc.y) ||
        !finite(add.sink.cap)) {
      diag.error(guard::Code::NonFinite,
                 who + " has a non-finite coordinate or cap");
      continue;
    }
    if (add.sink.cap < 0.0)
      diag.error(guard::Code::BadCap, who + " has a negative load cap");
    if (!base.die.contains(add.sink.loc))
      diag.warning(guard::Code::OutOfDie, who + " lies outside the die");
    if (add.module < 0 || add.module >= base.rtl.num_modules())
      diag.error(guard::Code::ModuleMismatch,
                 who + " names module " + std::to_string(add.module) +
                     " outside the RTL's 0.." +
                     std::to_string(base.rtl.num_modules() - 1));
  }
  if (n - static_cast<int>(delta.removes.size()) +
          static_cast<int>(delta.adds.size()) <=
      0)
    diag.error(guard::Code::EmptyDesign,
               "delta removes every sink of the design");
  if (delta.stream.has_value()) {
    const int k = base.rtl.num_instructions();
    for (const activity::InstrId id : delta.stream->seq) {
      if (id < 0 || id >= k) {
        diag.error(guard::Code::StreamId,
                   "replacement stream instruction id " + std::to_string(id) +
                       " outside the RTL's 0.." + std::to_string(k - 1));
        break;  // one report; a bad stream is usually wrong wholesale
      }
    }
    if (delta.stream->seq.empty())
      diag.warning(guard::Code::EmptyStream,
                   "replacement stream has no cycles");
  }
  return diag.error_count() == before;
}

std::vector<int> sink_index_map(const core::Design& base,
                                const DesignDelta& delta) {
  const int n = base.num_sinks();
  std::vector<char> removed(static_cast<std::size_t>(n), 0);
  for (const int r : delta.removes) removed[static_cast<std::size_t>(r)] = 1;
  std::vector<int> map(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (int i = 0; i < n; ++i)
    if (!removed[static_cast<std::size_t>(i)]) map[static_cast<std::size_t>(i)] = next++;
  return map;
}

core::Design apply_delta(const core::Design& base, const DesignDelta& delta) {
  core::Design out{base.die,
                   {},
                   base.rtl,
                   delta.stream.has_value() ? *delta.stream : base.stream,
                   {}};

  ct::SinkList sinks = base.sinks;
  for (const SinkMove& mv : delta.moves)
    sinks[static_cast<std::size_t>(mv.sink)].loc = mv.to;

  // Removals break the implicit identity sink->module map (survivor i no
  // longer sits at index i), and adds need explicit module ids -- so the
  // map is materialized whenever the sink *set* changes.
  const bool need_modules = !delta.removes.empty() || !delta.adds.empty();
  std::vector<int> modules =
      need_modules ? base.resolved_sink_modules() : base.sink_module;

  if (!delta.removes.empty()) {
    const std::vector<int> map = sink_index_map(base, delta);
    ct::SinkList kept;
    std::vector<int> kept_modules;
    kept.reserve(sinks.size() - delta.removes.size());
    kept_modules.reserve(kept.capacity());
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (map[i] < 0) continue;
      kept.push_back(sinks[i]);
      kept_modules.push_back(modules[i]);
    }
    sinks = std::move(kept);
    modules = std::move(kept_modules);
  }
  for (const SinkAdd& add : delta.adds) {
    sinks.push_back(add.sink);
    if (need_modules) modules.push_back(add.module);
  }
  out.sinks = std::move(sinks);
  out.sink_module = std::move(modules);
  return out;
}

}  // namespace gcr::eco

#pragma once

#include <optional>
#include <vector>

#include "activity/stream.h"
#include "clocktree/sink.h"
#include "core/design.h"
#include "geom/point.h"
#include "guard/status.h"

/// \file delta.h
/// ECO design deltas: the edit set an incremental re-route consumes
/// (docs/incremental.md). A delta names its edits against the *base*
/// design's sink indices; `apply_delta` realizes the post-ECO design and
/// `sink_index_map` gives the survivor renumbering (removals compact the
/// sink list, adds append). The on-disk `.delta` text format lives in
/// io/delta_io.h.

namespace gcr::eco {

/// Relocate base sink `sink` to `to` (load cap unchanged).
struct SinkMove {
  int sink{-1};
  geom::Point to;
};

/// Append a new sink driven by an existing RTL module.
struct SinkAdd {
  ct::Sink sink;
  int module{-1};
};

struct DesignDelta {
  std::vector<SinkMove> moves;
  std::vector<int> removes;  ///< base sink indices, removed from the design
  std::vector<SinkAdd> adds;
  /// Workload drift: when set, replaces the base design's instruction
  /// stream. Activation masks are RTL-derived and unchanged; every node
  /// probability is recomputed from the new stream.
  std::optional<activity::InstructionStream> stream;

  [[nodiscard]] bool empty() const {
    return moves.empty() && removes.empty() && adds.empty() &&
           !stream.has_value();
  }
  /// True when the delta changes the sink set (and hence the topology
  /// cone); a pure stream replacement preserves the whole tree structure.
  [[nodiscard]] bool structural() const {
    return !(moves.empty() && removes.empty() && adds.empty());
  }
};

/// Semantic validation against the base design: indices in range, each
/// sink touched at most once (two moves of one sink, or a move plus a
/// removal, is an error), finite coordinates and caps, known modules,
/// in-range stream instruction ids, and a non-empty post-ECO sink set.
/// Reports every finding into `diag`; returns false when any is an error.
[[nodiscard]] bool validate_delta(const core::Design& base,
                                  const DesignDelta& delta, guard::Diag& diag);

/// The post-ECO design: moves applied in place, removed sinks erased with
/// the survivors' order preserved (compaction), added sinks appended. The
/// sink->module map is materialized whenever removals or adds would break
/// the implicit identity mapping. Requires validate_delta to have passed.
[[nodiscard]] core::Design apply_delta(const core::Design& base,
                                       const DesignDelta& delta);

/// base sink index -> post-ECO sink index; -1 for removed sinks.
[[nodiscard]] std::vector<int> sink_index_map(const core::Design& base,
                                              const DesignDelta& delta);

}  // namespace gcr::eco

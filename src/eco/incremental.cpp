#include "eco/incremental.h"

#include <cassert>
#include <optional>
#include <utility>

#include "clocktree/bounded.h"
#include "clocktree/elmore.h"
#include "clocktree/embed.h"
#include "clocktree/zskew.h"
#include "cts/greedy.h"
#include "gating/gate_reduction.h"
#include "gating/swcap.h"
#include "geom/tilted_rect.h"
#include "log/logger.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace gcr::eco {

namespace {

using core::RouterOptions;
using core::RouterResult;
using core::TopologyScheme;
using core::TreeStyle;

/// The phase-1..3 product: the new topology with preserved merges
/// replayed and the spine re-merged, plus per-node provenance/activity.
struct EcoPlan {
  ct::Topology topo{0};
  std::vector<int> old_of;    ///< new id -> prev tree id (-1 = re-merged)
  std::vector<bool> in_cone;  ///< structural cone (activity added later)
  std::vector<activity::ActivationMask> mask;
  std::vector<double> p_en;
  std::vector<double> p_tr;
  int dirty_leaves{0};
  int preserved_merges{0};
  int spine_seeds{0};
  int spine_merges{0};
};

EcoPlan plan_topology(const core::Design& base, const core::Design& next,
                      const RouterResult& prev, const DesignDelta& delta,
                      const activity::ActivityAnalyzer& an,
                      const RouterOptions& opts,
                      const tech::TechParams& build_tech) {
  const int n_old = base.num_sinks();
  const int n_new = next.num_sinks();
  const int old_nodes = prev.tree.num_nodes();
  const std::vector<int> leaf_module = next.resolved_sink_modules();

  // 1. Dirty = every touched leaf and its ancestor path in the previous
  //    tree. Clean is therefore downward-closed: a clean node's whole
  //    subtree is clean, and the clean set decomposes into maximal
  //    preserved subtrees.
  std::vector<char> dirty(static_cast<std::size_t>(old_nodes), 0);
  const auto mark = [&](int leaf) {
    for (int v = leaf; v >= 0 && !dirty[static_cast<std::size_t>(v)];
         v = prev.tree.node(v).parent)
      dirty[static_cast<std::size_t>(v)] = 1;
  };
  for (const SinkMove& mv : delta.moves) mark(mv.sink);
  for (const int r : delta.removes) mark(r);

  // 2. Replay the preserved merges into the new topology. Ascending old
  //    id is a valid bottom-up order, and it fixes a single deterministic
  //    replay order -- new internal ids (and hence the spine engine's
  //    tie-breaks) never depend on traversal choices.
  EcoPlan plan;
  plan.topo = ct::Topology(n_new);
  plan.old_of.assign(static_cast<std::size_t>(2 * n_new - 1), -1);
  std::vector<int> new_of(static_cast<std::size_t>(old_nodes), -1);
  const std::vector<int> leaf_map = sink_index_map(base, delta);
  for (int i = 0; i < n_old; ++i) {
    const int ni = leaf_map[static_cast<std::size_t>(i)];
    if (ni < 0) continue;
    new_of[static_cast<std::size_t>(i)] = ni;
    plan.old_of[static_cast<std::size_t>(ni)] = i;
  }
  for (int id = n_old; id < old_nodes; ++id) {
    if (dirty[static_cast<std::size_t>(id)]) continue;
    const ct::RoutedNode& nd = prev.tree.node(id);
    const int nid =
        plan.topo.merge(new_of[static_cast<std::size_t>(nd.left)],
                        new_of[static_cast<std::size_t>(nd.right)]);
    new_of[static_cast<std::size_t>(id)] = nid;
    plan.old_of[static_cast<std::size_t>(nid)] = id;
    ++plan.preserved_merges;
  }

  // 3. Construction taps + masks for everything created so far, bottom-up
  //    -- the same closed-form zero-skew merges (fully gated, as every
  //    construction is) the from-scratch topology phase prices with.
  const int pre_nodes = plan.topo.num_nodes();
  std::vector<ct::SubtreeTap> tap(static_cast<std::size_t>(pre_nodes));
  plan.mask.assign(static_cast<std::size_t>(2 * n_new - 1),
                   activity::ActivationMask());
  for (int id = 0; id < pre_nodes; ++id) {
    const ct::TreeNode& nd = plan.topo.node(id);
    auto& t = tap[static_cast<std::size_t>(id)];
    if (nd.is_leaf()) {
      const ct::Sink& s = next.sinks[static_cast<std::size_t>(id)];
      t.ms = geom::TiltedRect::from_point(s.loc);
      t.delay = 0.0;
      t.cap = s.cap;
      plan.mask[static_cast<std::size_t>(id)] =
          an.module_mask(leaf_module[static_cast<std::size_t>(id)]);
    } else {
      const ct::MergeResult m =
          ct::zero_skew_merge(tap[static_cast<std::size_t>(nd.left)], true,
                              tap[static_cast<std::size_t>(nd.right)], true,
                              build_tech);
      t.ms = m.ms;
      t.delay = m.delay;
      t.cap = m.cap;
      plan.mask[static_cast<std::size_t>(id)] =
          plan.mask[static_cast<std::size_t>(nd.left)] |
          plan.mask[static_cast<std::size_t>(nd.right)];
    }
  }

  // 4. The spine: every parentless node (preserved subtree roots, moved
  //    or kept-loose leaves, added leaves) re-enters the greedy engine as
  //    a TapSeed, under the same build options a from-scratch route of
  //    this scheme would use.
  std::vector<int> seed_ids;
  for (int id = 0; id < pre_nodes; ++id)
    if (plan.topo.node(id).parent < 0) seed_ids.push_back(id);
  plan.spine_seeds = static_cast<int>(seed_ids.size());
  plan.in_cone.assign(static_cast<std::size_t>(2 * n_new - 1), false);

  const int s = plan.spine_seeds;
  cts::BuildResult spine{ct::Topology(0), {}, {}, {}};
  std::vector<int> g;  // spine-local node id -> global new id
  if (s >= 2) {
    guard::poll_deadline("topology");
    const obs::ScopedTimer obs_timer("topology");
    const bool buffered = opts.style == TreeStyle::Buffered;
    cts::BuildOptions bopts;
    if (buffered) {
      bopts.cost = cts::MergeCost::NearestNeighbor;
    } else {
      switch (opts.topology) {
        case TopologyScheme::MinSwitchedCap:
          bopts.cost = cts::MergeCost::SwitchedCapacitance;
          break;
        case TopologyScheme::NearestNeighbor:
          bopts.cost = cts::MergeCost::NearestNeighbor;
          break;
        case TopologyScheme::ActivityOnly:
          bopts.cost = cts::MergeCost::ActivityOnly;
          break;
        case TopologyScheme::Mmm:
          // Top-down means-and-medians has no partial-front re-entry; the
          // spine re-merges under the Eq. 3 cost and the differential
          // contract's bounded-delta arm covers the scheme
          // (docs/incremental.md).
          bopts.cost = cts::MergeCost::SwitchedCapacitance;
          break;
      }
    }
    bopts.gated_edges = true;
    bopts.control_point = next.die.center();
    bopts.num_threads = opts.num_threads;
    bopts.partner_index = opts.partner_index;
    bopts.tech = build_tech;
    std::vector<cts::TapSeed> seeds(static_cast<std::size_t>(s));
    for (int i = 0; i < s; ++i) {
      seeds[static_cast<std::size_t>(i)].tap =
          tap[static_cast<std::size_t>(seed_ids[static_cast<std::size_t>(i)])];
      seeds[static_cast<std::size_t>(i)].mask =
          plan.mask[static_cast<std::size_t>(
              seed_ids[static_cast<std::size_t>(i)])];
    }
    spine = cts::build_topology_taps(seeds, &an, bopts);
    g.assign(static_cast<std::size_t>(spine.topo.num_nodes()), -1);
    for (int i = 0; i < s; ++i)
      g[static_cast<std::size_t>(i)] = seed_ids[static_cast<std::size_t>(i)];
    for (int lid = s; lid < spine.topo.num_nodes(); ++lid) {
      const ct::TreeNode& nd = spine.topo.node(lid);
      const int nid = plan.topo.merge(g[static_cast<std::size_t>(nd.left)],
                                      g[static_cast<std::size_t>(nd.right)]);
      g[static_cast<std::size_t>(lid)] = nid;
      plan.mask[static_cast<std::size_t>(nid)] =
          spine.mask.empty()
              ? (plan.mask[static_cast<std::size_t>(
                     g[static_cast<std::size_t>(nd.left)])] |
                 plan.mask[static_cast<std::size_t>(
                     g[static_cast<std::size_t>(nd.right)])])
              : spine.mask[static_cast<std::size_t>(lid)];
      plan.in_cone[static_cast<std::size_t>(nid)] = true;
      ++plan.spine_merges;
    }
  }
  // Every seed's parent edge was just re-decided (a lone seed became the
  // root): the seeds are the cone's lower boundary and their gate
  // decisions must be re-taken.
  for (const int id : seed_ids)
    plan.in_cone[static_cast<std::size_t>(id)] = true;
  assert(plan.topo.num_nodes() == 2 * n_new - 1);
  assert(plan.topo.valid());

  // 5. Per-node probabilities. A structural-only delta copies preserved
  //    nodes from the previous result (their masks are unchanged) and
  //    takes spine values from the engine; a stream replacement
  //    recomputes every node against the new analyzer.
  const int total = plan.topo.num_nodes();
  plan.p_en.assign(static_cast<std::size_t>(total), 0.0);
  plan.p_tr.assign(static_cast<std::size_t>(total), 0.0);
  const bool activity_dirty = delta.stream.has_value();
  for (int id = 0; id < total; ++id) {
    const int old = plan.old_of[static_cast<std::size_t>(id)];
    if (!activity_dirty && old >= 0 && !prev.activity.p_en.empty()) {
      plan.p_en[static_cast<std::size_t>(id)] =
          prev.activity.p_en[static_cast<std::size_t>(old)];
      plan.p_tr[static_cast<std::size_t>(id)] =
          prev.activity.p_tr[static_cast<std::size_t>(old)];
    } else {
      plan.p_en[static_cast<std::size_t>(id)] =
          an.signal_prob(plan.mask[static_cast<std::size_t>(id)]);
      plan.p_tr[static_cast<std::size_t>(id)] =
          an.transition_prob(plan.mask[static_cast<std::size_t>(id)]);
    }
  }
  // Activity cone: a node whose own or parent probability moved gets its
  // gate decision re-taken (rules 1/2 read the node, rule 3 the parent).
  // A changed *descendant* bit can in principle shift an ancestor's
  // forced-insertion input while both probabilities held still; that
  // ancestor keeps its previous gate -- the documented minimal-
  // perturbation freeze the bounded-delta arm of the contract covers.
  if (activity_dirty && !prev.activity.p_en.empty()) {
    std::vector<char> changed(static_cast<std::size_t>(total), 0);
    for (int id = 0; id < total; ++id) {
      const int old = plan.old_of[static_cast<std::size_t>(id)];
      if (old < 0 ||
          plan.p_en[static_cast<std::size_t>(id)] !=
              prev.activity.p_en[static_cast<std::size_t>(old)] ||
          plan.p_tr[static_cast<std::size_t>(id)] !=
              prev.activity.p_tr[static_cast<std::size_t>(old)])
        changed[static_cast<std::size_t>(id)] = 1;
    }
    for (int id = 0; id < total; ++id) {
      const int parent = plan.topo.node(id).parent;
      if (changed[static_cast<std::size_t>(id)] ||
          (parent >= 0 && changed[static_cast<std::size_t>(parent)]))
        plan.in_cone[static_cast<std::size_t>(id)] = true;
    }
  }

  // Touched leaves (moved survivors + adds) round out the cone.
  for (const SinkMove& mv : delta.moves) {
    const int ni = leaf_map[static_cast<std::size_t>(mv.sink)];
    if (ni >= 0) plan.in_cone[static_cast<std::size_t>(ni)] = true;
  }
  for (int i = n_new - static_cast<int>(delta.adds.size()); i < n_new; ++i)
    plan.in_cone[static_cast<std::size_t>(i)] = true;
  plan.dirty_leaves = static_cast<int>(delta.moves.size() +
                                       delta.removes.size() +
                                       delta.adds.size());
  return plan;
}

RouterResult build_result(const core::Design& next, const RouterResult& prev,
                          const RouterOptions& opts, const EcoPlan& plan,
                          std::vector<std::string>* phases) {
  const auto phase_done = [&](const char* name) {
    if (phases != nullptr) phases->emplace_back(name);
  };
  const bool buffered = opts.style == TreeStyle::Buffered;
  const tech::TechParams build_tech =
      buffered ? opts.tech.as_buffered() : opts.tech;
  const geom::Point cp = next.die.center();
  phase_done("eco-plan");
  phase_done("topology");

  gating::NodeActivity act{plan.mask, plan.p_en, plan.p_tr};
  const gating::ControllerPlacement ctrl(next.die, opts.controller_partitions);
  const gating::CellStyle cell_style =
      buffered ? gating::CellStyle::Buffer : gating::CellStyle::MaskingGate;

  const int n = plan.topo.num_nodes();
  std::vector<bool> gated(static_cast<std::size_t>(n), true);
  gated[static_cast<std::size_t>(plan.topo.root())] = false;

  ct::EmbedOptions eopts;
  eopts.root_hint = cp;
  eopts.sizing = opts.gate_sizing;
  ct::BoundedEmbedOptions bopts_embed;
  bopts_embed.root_hint = cp;
  bopts_embed.skew_bound = opts.skew_bound;
  const auto do_embed = [&](const std::vector<bool>& gate_set) {
    guard::poll_deadline("embed");
    const obs::ScopedTimer obs_timer("embed");
    if (obs::metrics_enabled()) {
      obs::Registry::global().counter("embed.passes").inc();
    }
    return opts.skew_bound > 0.0
               ? ct::embed_bounded(plan.topo, next.sinks, gate_set, build_tech,
                                   bopts_embed)
               : ct::embed(plan.topo, next.sinks, gate_set, build_tech, eopts);
  };

  int gates_before = 0;
  ct::RoutedTree tree;
  gating::SwCapReport swcap;
  if (opts.style == TreeStyle::GatedReduced) {
    // The auto-tune sweep re-reduces (and re-embeds) the whole tree per
    // strength step -- the opposite of an incremental pass. Fall back to
    // the fixed params; callers wanting a re-tuned operating point run a
    // full route.
    if (opts.auto_tune_reduction) {
      // Structured so serve/telemetry consumers can see *how much* of the
      // tree kept a potentially stale operating point: outside the cone
      // the previous sweep's gate bits are preserved verbatim.
      std::int64_t cone_nodes = 0;
      for (const bool b : plan.in_cone) cone_nodes += b ? 1 : 0;
      GCR_LOG_WARN("eco.autotune_fallback")
          .kv("cone_nodes", cone_nodes)
          .kv("total_nodes", static_cast<std::int64_t>(plan.in_cone.size()))
          .msg("auto_tune_reduction is not incremental; using fixed params");
    }
    const ct::RoutedTree full = do_embed(gated);
    gates_before = full.num_gates();
    std::vector<bool> prev_bits(static_cast<std::size_t>(n), false);
    for (int id = 0; id < n; ++id) {
      const int old = plan.old_of[static_cast<std::size_t>(id)];
      if (old >= 0)
        prev_bits[static_cast<std::size_t>(id)] = prev.tree.node(old).gated;
    }
    guard::poll_deadline("reduction");
    gated = gating::reduce_gates_cone(full, plan.p_en, build_tech,
                                      opts.reduction, plan.in_cone, prev_bits);
    tree = do_embed(gated);
    swcap = gating::evaluate_swcap(tree, act, ctrl, build_tech, cell_style);
  } else {
    tree = do_embed(gated);
    gates_before = tree.num_gates();
    swcap = gating::evaluate_swcap(tree, act, ctrl, build_tech, cell_style);
  }
  phase_done(opts.style == TreeStyle::GatedReduced ? "reduction" : "embed");

  guard::poll_deadline("delays");
  RouterResult res;
  res.gates_before_reduction = buffered ? 0 : gates_before;
  res.activity = std::move(act);
  res.swcap = swcap;
  {
    const obs::ScopedTimer obs_timer("delays");
    res.delays = ct::elmore_delays(tree, build_tech);
  }
  phase_done("delays");
  res.tree = std::move(tree);
  return res;
}

}  // namespace

core::RouteOutcome route_incremental(const core::GatedClockRouter& router,
                                     const core::RouterResult& prev,
                                     const DesignDelta& delta,
                                     const core::RouterOptions& opts,
                                     EcoInfo* info,
                                     const guard::Deadline& deadline) {
  core::RouteOutcome out;
  const core::Design& base = router.design();
  if (!validate_delta(base, delta, out.diag)) return out;
  if (prev.tree.num_leaves != base.num_sinks() || prev.tree.root < 0) {
    out.diag.error(guard::Code::Internal,
                   "previous result does not match the base design (" +
                       std::to_string(prev.tree.num_leaves) + " leaves vs " +
                       std::to_string(base.num_sinks()) + " sinks)");
    return out;
  }

  GCR_LOG_INFO("eco.start")
      .kv("sinks", base.num_sinks())
      .kv("moves", static_cast<int>(delta.moves.size()))
      .kv("removes", static_cast<int>(delta.removes.size()))
      .kv("adds", static_cast<int>(delta.adds.size()))
      .kv("stream_replaced", delta.stream.has_value());
  const std::uint64_t detached_before = ct::detached_merge_count();
  const guard::DeadlineScope scope(deadline);
  try {
    const obs::ScopedTimer obs_timer("eco");
    guard::poll_deadline("eco-plan");
    const core::Design next = apply_delta(base, delta);
    // A replaced stream invalidates the router's activity tables; build a
    // local analyzer over the new workload (masks are RTL-derived and
    // identical, so preserved-node masks stay valid either way).
    std::optional<activity::ActivityAnalyzer> local_an;
    if (delta.stream.has_value()) local_an.emplace(next.rtl, next.stream);
    const activity::ActivityAnalyzer& an =
        local_an.has_value() ? *local_an : router.analyzer();

    const bool buffered = opts.style == TreeStyle::Buffered;
    const tech::TechParams build_tech =
        buffered ? opts.tech.as_buffered() : opts.tech;
    EcoPlan plan = [&] {
      const obs::ScopedTimer obs_plan_timer("eco-plan");
      return plan_topology(base, next, prev, delta, an, opts, build_tech);
    }();
    out.result = build_result(next, prev, opts, plan, &out.phases_completed);
    if (info != nullptr) {
      info->old_of = std::move(plan.old_of);
      info->in_cone = std::move(plan.in_cone);
      info->dirty_leaves = plan.dirty_leaves;
      info->preserved_merges = plan.preserved_merges;
      info->spine_seeds = plan.spine_seeds;
      info->spine_merges = plan.spine_merges;
    }
    if (obs::metrics_enabled()) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("eco.runs").inc();
      reg.counter("eco.preserved_merges")
          .inc(static_cast<std::uint64_t>(plan.preserved_merges));
      reg.counter("eco.spine_merges")
          .inc(static_cast<std::uint64_t>(plan.spine_merges));
    }
    GCR_LOG_INFO("eco.done")
        .kv("sinks", out.result->tree.num_leaves)
        .kv("preserved_merges", plan.preserved_merges)
        .kv("spine_seeds", plan.spine_seeds)
        .kv("spine_merges", plan.spine_merges)
        .kv("total_swcap", out.result->swcap.total_swcap());
  } catch (const guard::CancelledError& e) {
    out.cancelled = true;
    out.aborted_phase = e.phase();
    out.diag.report(e.status());
    GCR_LOG_WARN("eco.cancelled").kv("phase", e.phase());
  } catch (const guard::GuardError& e) {
    out.diag.report(e.status());
    GCR_LOG_ERROR("eco.failed").msg(out.diag.first_error().message);
  }
  const std::uint64_t detached = ct::detached_merge_count() - detached_before;
  if (detached > 0)
    out.diag.warning(guard::Code::DetachedMerge,
                     std::to_string(detached) +
                         " zero-skew merges fell back to the detached "
                         "nearest-region merge");
  return out;
}

}  // namespace gcr::eco

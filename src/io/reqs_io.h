#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "guard/status.h"

/// \file reqs_io.h
/// The `.reqs` batch request format consumed by `gcr_serve` (docs/
/// serving.md, FORMATS.md): one routing request per line, each naming a
/// design (sinks/rtl/stream files) plus per-request options. The reader
/// follows the house parser rules -- line/column-anchored GCR_E_* codes,
/// every broken line reported in one pass, strict rejection of trailing
/// garbage -- so a malformed batch costs one diagnostic pass, never a
/// daemon.
///
/// Format:
///   reqs
///   <id> sinks=<path> rtl=<path> stream=<path> [key=value ...]
///
/// Request ids are free-form tokens (no '=') and must be unique within a
/// batch. Recognized option keys:
///   style=buffered|gated|reduced     tree style         (default reduced)
///   topology=swcap|nn|activity|mmm   topology scheme    (default swcap)
///   strength=S                       reduction strength in [0,1]
///   auto_tune=0|1                    sweep reduction strength, keep best
///   deadline_ms=MS                   per-request wall-clock budget (>= 0,
///                                    finite; absent = the serve default)
///   threads=N                        per-request topology width (>= 0)
///   eco=<path>                       .delta applied incrementally on top
///                                    of the (cached) base route
///
/// Option *values* are validated here (unknown keys, bad enum members,
/// NaN deadlines and negative widths are parse-time errors); whether the
/// named files exist and parse is the serving layer's per-request
/// concern -- a bad path must fail one request, not the batch.

namespace gcr::io {

/// One parsed request line. Enumerated options stay validated strings so
/// this header depends only on guard (the serving layer owns the mapping
/// onto core::RouterOptions).
struct RouteRequest {
  std::string id;
  std::string sinks, rtl, stream;    ///< design file paths (required)
  std::string style{"reduced"};      ///< buffered|gated|reduced
  std::string topology{"swcap"};     ///< swcap|nn|activity|mmm
  std::optional<double> strength;    ///< reduction strength in [0,1]
  bool auto_tune{false};
  double deadline_ms{-1.0};          ///< < 0 = use the serve default
  int threads{0};                    ///< 0 = serve default width
  std::string eco;                   ///< optional .delta path ("" = none)
  int line{0};                       ///< 1-based source line (diagnostics)
};

void write_reqs(std::ostream& os, const std::vector<RouteRequest>& reqs);

/// Diag-collecting reader: nullopt when any error was found (an empty
/// batch is an error -- a serve run with nothing to do is a malformed
/// submission, GCR_E_EMPTY).
[[nodiscard]] std::optional<std::vector<RouteRequest>> read_reqs(
    std::istream& is, guard::Diag& diag,
    const std::string& filename = "<reqs>");

}  // namespace gcr::io

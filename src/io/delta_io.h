#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "eco/delta.h"
#include "guard/status.h"

/// \file delta_io.h
/// Plain-text persistence for ECO design deltas (docs/incremental.md).
///
/// Format (whitespace-separated, '#' comments allowed):
///   delta
///   move <sink> <x> <y>
///   remove <sink>
///   add <x> <y> <cap> <module>
///   stream <id> <id> ...
///
/// The first non-comment line must be the literal header 'delta'. Edit
/// rows may appear in any order and any multiplicity except 'stream',
/// which may appear at most once (it *replaces* the base design's
/// instruction stream wholesale; a bare 'stream' row replaces it with an
/// empty one). The reader checks syntax and design-independent ranges
/// (negative sink/module ids, non-finite values); semantic validation
/// against a concrete base design is eco::validate_delta's job.
///
/// Like the text_io.h readers, the Diag overload collects every problem
/// with file:line:col locations and returns nullopt on any error; the
/// throwing overload raises guard::GuardError carrying the first error.

namespace gcr::io {

void write_delta(std::ostream& os, const eco::DesignDelta& delta);
[[nodiscard]] std::optional<eco::DesignDelta> read_delta(
    std::istream& is, guard::Diag& diag,
    const std::string& filename = "<delta>");
[[nodiscard]] eco::DesignDelta read_delta(std::istream& is);

}  // namespace gcr::io

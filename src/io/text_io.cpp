#include "io/text_io.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gcr::io {

namespace {

/// Strip comments and concatenate payload tokens into one stream.
std::istringstream payload(std::istream& is) {
  std::string all;
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    all += line;
    all += '\n';
  }
  return std::istringstream(all);
}

}  // namespace

void write_sinks(std::ostream& os, const geom::DieArea& die,
                 const ct::SinkList& sinks) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# gcr sinks file\n";
  os << "die " << die.xlo << ' ' << die.ylo << ' ' << die.xhi << ' '
     << die.yhi << '\n';
  os << "# x y cap\n";
  for (const auto& s : sinks)
    os << s.loc.x << ' ' << s.loc.y << ' ' << s.cap << '\n';
}

SinksFile read_sinks(std::istream& is) {
  std::istringstream in = payload(is);
  std::string tag;
  if (!(in >> tag) || tag != "die")
    throw std::runtime_error("sinks file: expected 'die' header");
  SinksFile f;
  if (!(in >> f.die.xlo >> f.die.ylo >> f.die.xhi >> f.die.yhi))
    throw std::runtime_error("sinks file: malformed die line");
  double x = 0, y = 0, cap = 0;
  while (in >> x >> y >> cap) f.sinks.push_back({{x, y}, cap});
  return f;
}

void write_stream(std::ostream& os, const activity::InstructionStream& s) {
  os << "# gcr instruction stream (" << s.length() << " cycles)\n";
  for (int t = 0; t < s.length(); ++t)
    os << s.seq[static_cast<std::size_t>(t)] << ((t + 1) % 20 ? ' ' : '\n');
  os << '\n';
}

activity::InstructionStream read_stream(std::istream& is) {
  std::istringstream in = payload(is);
  activity::InstructionStream s;
  int id = 0;
  while (in >> id) s.seq.push_back(id);
  return s;
}

void write_rtl(std::ostream& os, const activity::RtlDescription& rtl) {
  os << "# gcr rtl description\n";
  os << "rtl " << rtl.num_instructions() << ' ' << rtl.num_modules() << '\n';
  for (int i = 0; i < rtl.num_instructions(); ++i) {
    os << i;
    rtl.module_set(i).for_each([&](int m) { os << ' ' << m; });
    os << '\n';
  }
}

activity::RtlDescription read_rtl(std::istream& is) {
  std::string all;
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    lines.push_back(line);
  }
  if (lines.empty()) throw std::runtime_error("rtl file: empty");
  std::istringstream head(lines.front());
  std::string tag;
  int k = 0, n = 0;
  if (!(head >> tag >> k >> n) || tag != "rtl" || k <= 0 || n <= 0)
    throw std::runtime_error("rtl file: malformed header");
  activity::RtlDescription rtl(k, n);
  for (std::size_t li = 1; li < lines.size(); ++li) {
    std::istringstream row(lines[li]);
    int instr = 0;
    if (!(row >> instr)) continue;
    int m = 0;
    while (row >> m) rtl.add_use(instr, m);
  }
  return rtl;
}

}  // namespace gcr::io

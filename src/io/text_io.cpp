#include "io/text_io.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <utility>

#include "guard/lexer.h"
#include "guard/validate.h"

namespace gcr::io {

namespace {

using guard::Code;
using guard::Diag;
using guard::Lexer;
using guard::LineCursor;

/// Shared epilogue for the throwing wrappers: surface the first collected
/// error as a GuardError (derives std::runtime_error, so pre-guard catch
/// sites keep working).
template <typename T>
T value_or_throw(std::optional<T> v, const Diag& diag) {
  if (!v) throw guard::GuardError(diag.first_error());
  return std::move(*v);
}

}  // namespace

void write_sinks(std::ostream& os, const geom::DieArea& die,
                 const ct::SinkList& sinks) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# gcr sinks file\n";
  os << "die " << die.xlo << ' ' << die.ylo << ' ' << die.xhi << ' '
     << die.yhi << '\n';
  os << "# x y cap\n";
  for (const auto& s : sinks)
    os << s.loc.x << ' ' << s.loc.y << ' ' << s.cap << '\n';
}

std::optional<SinksFile> read_sinks(std::istream& is, guard::Diag& diag,
                                    const std::string& filename) {
  const std::size_t errors_before = diag.error_count();
  Lexer lx(is, filename);
  if (!lx.ok()) {
    diag.report(lx.load_status());
    return std::nullopt;
  }
  if (lx.num_lines() == 0) {
    diag.error(Code::Header, "expected 'die' header", lx.end_loc());
    return std::nullopt;
  }

  SinksFile f;
  {
    LineCursor c = lx.cursor(0);
    std::string_view tag;
    if (!c.next_token(tag) || tag != "die") {
      diag.error(Code::Header, "expected 'die' header", c.loc());
      return std::nullopt;
    }
    if (!c.next_double(f.die.xlo) || !c.next_double(f.die.ylo) ||
        !c.next_double(f.die.xhi) || !c.next_double(f.die.yhi)) {
      diag.error(Code::Header, "malformed die line (need 4 numbers)",
                 c.loc());
      return std::nullopt;
    }
    if (!c.at_end()) {
      diag.error(Code::Parse, "trailing garbage after die bounds", c.loc());
    }
    if (!guard::finite_normal(f.die.xlo) ||
        !guard::finite_normal(f.die.ylo) ||
        !guard::finite_normal(f.die.xhi) ||
        !guard::finite_normal(f.die.yhi)) {
      diag.error(Code::DieArea, "die bounds are not finite", lx.line_loc(0));
    } else if (f.die.width() <= 0.0 || f.die.height() <= 0.0) {
      diag.error(Code::DieArea, "die area is empty or inverted",
                 lx.line_loc(0));
    }
  }

  std::map<std::pair<double, double>, int> seen;  // coord -> line number
  for (std::size_t i = 1; i < lx.num_lines(); ++i) {
    LineCursor c = lx.cursor(i);
    double x = 0, y = 0, cap = 0;
    if (!c.next_double(x) || !c.next_double(y) || !c.next_double(cap)) {
      diag.error(Code::Parse, "malformed sink line (need 'x y cap')",
                 c.loc());
      continue;
    }
    if (!c.at_end()) {
      diag.error(Code::Parse, "trailing garbage after sink capacitance",
                 c.loc());
      continue;
    }
    if (!guard::finite_normal(x) || !guard::finite_normal(y)) {
      diag.error(Code::NonFinite,
                 "sink coordinate is NaN, infinite or denormal",
                 lx.line_loc(i));
      continue;
    }
    if (!guard::finite_normal(cap)) {
      diag.error(Code::NonFinite,
                 "sink capacitance is NaN, infinite or denormal",
                 lx.line_loc(i));
      continue;
    }
    if (cap <= 0.0) {
      diag.error(Code::BadCap, "sink capacitance must be positive",
                 lx.line_loc(i));
      continue;
    }
    const bool die_ok = guard::finite_normal(f.die.xlo) &&
                        f.die.width() > 0.0 && f.die.height() > 0.0;
    if (die_ok && !f.die.contains({x, y}))
      diag.error(Code::OutOfDie, "sink lies outside the die area",
                 lx.line_loc(i));
    const auto [it, inserted] =
        seen.emplace(std::make_pair(x, y), lx.line_number(i));
    if (!inserted)
      diag.error(Code::Duplicate,
                 "duplicate sink coordinate (first at line " +
                     std::to_string(it->second) + ")",
                 lx.line_loc(i));
    f.sinks.push_back({{x, y}, cap});
  }
  if (f.sinks.empty() && diag.error_count() == errors_before)
    diag.error(Code::EmptyDesign, "sinks file declares no sinks",
               lx.end_loc());
  if (diag.error_count() != errors_before) return std::nullopt;
  return f;
}

SinksFile read_sinks(std::istream& is) {
  guard::Diag diag;
  return value_or_throw(read_sinks(is, diag, "<sinks>"), diag);
}

void write_stream(std::ostream& os, const activity::InstructionStream& s) {
  os << "# gcr instruction stream (" << s.length() << " cycles)\n";
  for (int t = 0; t < s.length(); ++t)
    os << s.seq[static_cast<std::size_t>(t)] << ((t + 1) % 20 ? ' ' : '\n');
  os << '\n';
}

std::optional<activity::InstructionStream> read_stream(
    std::istream& is, guard::Diag& diag, const std::string& filename) {
  const std::size_t errors_before = diag.error_count();
  Lexer lx(is, filename);
  if (!lx.ok()) {
    diag.report(lx.load_status());
    return std::nullopt;
  }
  activity::InstructionStream s;
  for (std::size_t i = 0; i < lx.num_lines(); ++i) {
    LineCursor c = lx.cursor(i);
    while (!c.at_end()) {
      int id = 0;
      if (!c.next_int(id)) {
        diag.error(Code::Parse,
                   "stream entry '" + std::string(c.last_token()) +
                       "' is not an instruction id",
                   c.loc());
        break;  // rest of the line is unreliable
      }
      if (id < 0) {
        diag.error(Code::Range, "negative instruction id", c.loc());
        continue;
      }
      s.seq.push_back(id);
    }
  }
  if (s.seq.empty())
    diag.warning(Code::EmptyStream, "instruction stream is empty",
                 lx.end_loc());
  if (diag.error_count() != errors_before) return std::nullopt;
  return s;
}

activity::InstructionStream read_stream(std::istream& is) {
  guard::Diag diag;
  return value_or_throw(read_stream(is, diag, "<stream>"), diag);
}

void write_rtl(std::ostream& os, const activity::RtlDescription& rtl) {
  os << "# gcr rtl description\n";
  os << "rtl " << rtl.num_instructions() << ' ' << rtl.num_modules() << '\n';
  for (int i = 0; i < rtl.num_instructions(); ++i) {
    os << i;
    rtl.module_set(i).for_each([&](int m) { os << ' ' << m; });
    os << '\n';
  }
}

std::optional<activity::RtlDescription> read_rtl(std::istream& is,
                                                 guard::Diag& diag,
                                                 const std::string& filename) {
  const std::size_t errors_before = diag.error_count();
  Lexer lx(is, filename);
  if (!lx.ok()) {
    diag.report(lx.load_status());
    return std::nullopt;
  }
  if (lx.num_lines() == 0) {
    diag.error(Code::Header, "rtl file is empty (expected 'rtl K N' header)",
               lx.end_loc());
    return std::nullopt;
  }
  int k = 0, n = 0;
  {
    LineCursor c = lx.cursor(0);
    std::string_view tag;
    if (!c.next_token(tag) || tag != "rtl" || !c.next_int(k) ||
        !c.next_int(n) || k <= 0 || n <= 0) {
      diag.error(Code::Header,
                 "malformed rtl header (expected 'rtl K N', K,N > 0)",
                 c.loc());
      return std::nullopt;
    }
    if (!c.at_end())
      diag.error(Code::Parse, "trailing garbage after rtl header", c.loc());
  }
  activity::RtlDescription rtl(k, n);
  for (std::size_t i = 1; i < lx.num_lines(); ++i) {
    LineCursor c = lx.cursor(i);
    int instr = 0;
    if (!c.next_int(instr)) {
      diag.error(Code::Parse,
                 "rtl row must start with an instruction id, got '" +
                     std::string(c.last_token()) + "'",
                 c.loc());
      continue;
    }
    if (instr < 0 || instr >= k) {
      diag.error(Code::Range,
                 "instruction id " + std::to_string(instr) +
                     " outside [0, " + std::to_string(k) + ")",
                 c.loc());
      continue;
    }
    while (!c.at_end()) {
      int m = 0;
      if (!c.next_int(m)) {
        diag.error(Code::Parse,
                   "module id '" + std::string(c.last_token()) +
                       "' is not an integer",
                   c.loc());
        break;
      }
      if (m < 0 || m >= n) {
        diag.error(Code::Range,
                   "module id " + std::to_string(m) + " outside [0, " +
                       std::to_string(n) + ")",
                   c.loc());
        continue;
      }
      rtl.add_use(instr, m);
    }
  }
  if (diag.error_count() != errors_before) return std::nullopt;
  return rtl;
}

activity::RtlDescription read_rtl(std::istream& is) {
  guard::Diag diag;
  return value_or_throw(read_rtl(is, diag, "<rtl>"), diag);
}

}  // namespace gcr::io

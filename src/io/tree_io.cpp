#include "io/tree_io.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gcr::io {

void write_routed_tree(std::ostream& os, const ct::RoutedTree& tree) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# gcr routed clock tree\n";
  os << "tree " << tree.num_nodes() << ' ' << tree.num_leaves << ' '
     << tree.root << '\n';
  os << "# id x y parent edge_len gated down_cap delay\n";
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const ct::RoutedNode& n = tree.node(id);
    os << id << ' ' << n.loc.x << ' ' << n.loc.y << ' ' << n.parent << ' '
       << n.edge_len << ' ' << (n.gated ? 1 : 0) << ' ' << n.down_cap << ' '
       << n.delay << '\n';
  }
}

ct::RoutedTree read_routed_tree(std::istream& is) {
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    lines.push_back(line);
  }
  if (lines.empty()) throw std::runtime_error("tree file: empty");
  std::istringstream head(lines.front());
  std::string tag;
  int num_nodes = 0, num_leaves = 0, root = -1;
  if (!(head >> tag >> num_nodes >> num_leaves >> root) || tag != "tree" ||
      num_nodes <= 0 || num_leaves <= 0 || root < 0 || root >= num_nodes)
    throw std::runtime_error("tree file: malformed header");

  ct::RoutedTree tree;
  tree.num_leaves = num_leaves;
  tree.root = root;
  tree.nodes.resize(static_cast<std::size_t>(num_nodes));
  int seen = 0;
  for (std::size_t li = 1; li < lines.size(); ++li) {
    std::istringstream row(lines[li]);
    int id = 0, parent = -1, gated = 0;
    double x = 0, y = 0, len = 0, cap = 0, delay = 0;
    if (!(row >> id >> x >> y >> parent >> len >> gated >> cap >> delay))
      throw std::runtime_error("tree file: malformed node line");
    if (id < 0 || id >= num_nodes)
      throw std::runtime_error("tree file: node id out of range");
    ct::RoutedNode& n = tree.nodes[static_cast<std::size_t>(id)];
    n.loc = {x, y};
    n.parent = parent;
    n.edge_len = len;
    n.gated = gated != 0;
    n.down_cap = cap;
    n.delay = delay;
    n.ms = geom::TiltedRect::from_point(n.loc);
    ++seen;
  }
  if (seen != num_nodes)
    throw std::runtime_error("tree file: node count mismatch");
  // Rebuild child links from parents (left filled first).
  for (int id = 0; id < num_nodes; ++id) {
    const int p = tree.nodes[static_cast<std::size_t>(id)].parent;
    if (p < 0) continue;
    if (p >= num_nodes)
      throw std::runtime_error("tree file: parent out of range");
    ct::RoutedNode& pn = tree.nodes[static_cast<std::size_t>(p)];
    (pn.left < 0 ? pn.left : pn.right) = id;
  }
  return tree;
}

}  // namespace gcr::io

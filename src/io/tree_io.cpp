#include "io/tree_io.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "guard/lexer.h"
#include "guard/validate.h"

namespace gcr::io {

namespace {

using guard::Code;
using guard::Lexer;
using guard::LineCursor;

}  // namespace

void write_routed_tree(std::ostream& os, const ct::RoutedTree& tree) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# gcr routed clock tree\n";
  os << "tree " << tree.num_nodes() << ' ' << tree.num_leaves << ' '
     << tree.root << '\n';
  os << "# id x y parent edge_len gated down_cap delay\n";
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const ct::RoutedNode& n = tree.node(id);
    os << id << ' ' << n.loc.x << ' ' << n.loc.y << ' ' << n.parent << ' '
       << n.edge_len << ' ' << (n.gated ? 1 : 0) << ' ' << n.down_cap << ' '
       << n.delay << '\n';
  }
}

std::optional<ct::RoutedTree> read_routed_tree(std::istream& is,
                                               guard::Diag& diag,
                                               const std::string& filename) {
  const std::size_t errors_before = diag.error_count();
  Lexer lx(is, filename);
  if (!lx.ok()) {
    diag.report(lx.load_status());
    return std::nullopt;
  }
  if (lx.num_lines() == 0) {
    diag.error(Code::Header,
               "tree file is empty (expected 'tree N L R' header)",
               lx.end_loc());
    return std::nullopt;
  }

  int num_nodes = 0, num_leaves = 0, root = -1;
  {
    LineCursor c = lx.cursor(0);
    std::string_view tag;
    if (!c.next_token(tag) || tag != "tree" || !c.next_int(num_nodes) ||
        !c.next_int(num_leaves) || !c.next_int(root)) {
      diag.error(Code::Header, "malformed tree header (expected 'tree N L R')",
                 c.loc());
      return std::nullopt;
    }
    if (!c.at_end()) {
      diag.error(Code::Parse, "trailing garbage after tree header", c.loc());
      return std::nullopt;
    }
    if (num_nodes <= 0 || num_leaves <= 0 || num_leaves > num_nodes ||
        root < 0 || root >= num_nodes) {
      diag.error(Code::Header,
                 "inconsistent tree header (need 0 < L <= N, 0 <= R < N)",
                 lx.line_loc(0));
      return std::nullopt;
    }
  }

  ct::RoutedTree tree;
  tree.num_leaves = num_leaves;
  tree.root = root;
  tree.nodes.resize(static_cast<std::size_t>(num_nodes));
  std::vector<int> defined_at(static_cast<std::size_t>(num_nodes), 0);

  for (std::size_t li = 1; li < lx.num_lines(); ++li) {
    LineCursor c = lx.cursor(li);
    int id = 0, parent = -1, gated = 0;
    double x = 0, y = 0, len = 0, cap = 0, delay = 0;
    if (!c.next_int(id) || !c.next_double(x) || !c.next_double(y) ||
        !c.next_int(parent) || !c.next_double(len) || !c.next_int(gated) ||
        !c.next_double(cap) || !c.next_double(delay)) {
      diag.error(Code::Parse,
                 "malformed node line (need 'id x y parent len gated cap "
                 "delay')",
                 c.loc());
      continue;
    }
    if (!c.at_end()) {
      diag.error(Code::Parse, "trailing garbage after node delay", c.loc());
      continue;
    }
    if (id < 0 || id >= num_nodes) {
      diag.error(Code::Range,
                 "node id " + std::to_string(id) + " outside [0, " +
                     std::to_string(num_nodes) + ")",
                 lx.line_loc(li));
      continue;
    }
    if (defined_at[static_cast<std::size_t>(id)] != 0) {
      diag.error(Code::Duplicate,
                 "node " + std::to_string(id) + " already defined at line " +
                     std::to_string(defined_at[static_cast<std::size_t>(id)]),
                 lx.line_loc(li));
      continue;
    }
    if (!guard::finite_normal(x) || !guard::finite_normal(y) ||
        !guard::finite_normal(len) || !guard::finite_normal(cap) ||
        !guard::finite_normal(delay)) {
      diag.error(Code::NonFinite,
                 "node " + std::to_string(id) +
                     " has a NaN, infinite or denormal field",
                 lx.line_loc(li));
      continue;
    }
    if (len < 0.0 || cap < 0.0 || delay < 0.0) {
      diag.error(Code::Range,
                 "node " + std::to_string(id) +
                     " has a negative length, cap or delay",
                 lx.line_loc(li));
      continue;
    }
    if (gated != 0 && gated != 1) {
      diag.error(Code::Parse, "gated flag must be 0 or 1", lx.line_loc(li));
      continue;
    }
    if (parent < -1 || parent >= num_nodes) {
      diag.error(Code::Range,
                 "parent " + std::to_string(parent) + " of node " +
                     std::to_string(id) + " outside [-1, " +
                     std::to_string(num_nodes) + ")",
                 lx.line_loc(li));
      continue;
    }
    if (parent == id) {
      diag.error(Code::TreeStructure,
                 "node " + std::to_string(id) + " is its own parent",
                 lx.line_loc(li));
      continue;
    }
    defined_at[static_cast<std::size_t>(id)] = lx.line_number(li);
    ct::RoutedNode& n = tree.nodes[static_cast<std::size_t>(id)];
    n.loc = {x, y};
    n.parent = parent;
    n.edge_len = len;
    n.gated = gated != 0;
    n.down_cap = cap;
    n.delay = delay;
    n.ms = geom::TiltedRect::from_point(n.loc);
  }

  for (int id = 0; id < num_nodes; ++id)
    if (defined_at[static_cast<std::size_t>(id)] == 0)
      diag.error(Code::TreeStructure,
                 "node " + std::to_string(id) + " is never defined",
                 lx.end_loc());
  if (diag.error_count() != errors_before) return std::nullopt;

  // Structural checks: the root carries no parent, every other node does,
  // no node has more than two children, and every node is reachable from
  // the root (which, with all parents valid, also rules out cycles -- the
  // old reader accepted cyclic parent chains and looped downstream).
  if (tree.nodes[static_cast<std::size_t>(root)].parent >= 0)
    diag.error(Code::TreeStructure,
               "root node " + std::to_string(root) + " has a parent");
  for (int id = 0; id < num_nodes; ++id) {
    if (id == root) continue;
    const int p = tree.nodes[static_cast<std::size_t>(id)].parent;
    if (p < 0) {
      diag.error(Code::TreeStructure,
                 "node " + std::to_string(id) +
                     " is not the root but has no parent");
      continue;
    }
    ct::RoutedNode& pn = tree.nodes[static_cast<std::size_t>(p)];
    if (pn.left < 0)
      pn.left = id;
    else if (pn.right < 0)
      pn.right = id;
    else
      diag.error(Code::TreeStructure, "node " + std::to_string(p) +
                                          " has more than two children");
  }
  if (diag.error_count() != errors_before) return std::nullopt;

  std::vector<int> stack{root};
  int reached = 0;
  int leaves = 0;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    ++reached;
    const ct::RoutedNode& n = tree.nodes[static_cast<std::size_t>(id)];
    if (n.left < 0) ++leaves;
    if (n.left >= 0) stack.push_back(n.left);
    if (n.right >= 0) stack.push_back(n.right);
  }
  if (reached != num_nodes)
    diag.error(Code::TreeStructure,
               std::to_string(num_nodes - reached) +
                   " nodes are unreachable from the root (cycle or "
                   "disconnected component)");
  else if (leaves != num_leaves)
    diag.error(Code::TreeStructure,
               "header declares " + std::to_string(num_leaves) +
                   " leaves but the tree has " + std::to_string(leaves));
  if (diag.error_count() != errors_before) return std::nullopt;
  return tree;
}

ct::RoutedTree read_routed_tree(std::istream& is) {
  guard::Diag diag;
  auto t = read_routed_tree(is, diag, "<tree>");
  if (!t) throw guard::GuardError(diag.first_error());
  return std::move(*t);
}

}  // namespace gcr::io

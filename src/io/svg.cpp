#include "io/svg.h"

#include <algorithm>
#include <ostream>

namespace gcr::io {

namespace {

struct Mapper {
  const geom::DieArea& die;
  double canvas;
  [[nodiscard]] double x(double v) const {
    return (v - die.xlo) / std::max(die.width(), 1.0) * canvas;
  }
  [[nodiscard]] double y(double v) const {
    // SVG y grows downward; flip so the die reads naturally.
    return canvas - (v - die.ylo) / std::max(die.height(), 1.0) * canvas;
  }
};

/// Rectilinear (L-shaped) wire between two points.
void poly_edge(std::ostream& os, const Mapper& m, const geom::Point& a,
               const geom::Point& b, const char* color, double width) {
  os << "<polyline fill=\"none\" stroke=\"" << color << "\" stroke-width=\""
     << width << "\" points=\"" << m.x(a.x) << ',' << m.y(a.y) << ' '
     << m.x(b.x) << ',' << m.y(a.y) << ' ' << m.x(b.x) << ',' << m.y(b.y)
     << "\"/>\n";
}

}  // namespace

void write_svg(std::ostream& os, const ct::RoutedTree& tree,
               const geom::DieArea& die,
               const gating::ControllerPlacement& ctrl,
               const SvgOptions& opts) {
  const Mapper m{die, opts.canvas};
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opts.canvas
     << "\" height=\"" << opts.canvas << "\" viewBox=\"0 0 " << opts.canvas
     << ' ' << opts.canvas << "\">\n";
  os << "<rect width=\"" << opts.canvas << "\" height=\"" << opts.canvas
     << "\" fill=\"white\" stroke=\"#888\"/>\n";

  if (opts.draw_star) {
    for (const int id : tree.gated_nodes()) {
      const geom::Point g = tree.gate_location(id);
      poly_edge(os, m, ctrl.controller_for(g), g, "#f4b6c2", 0.6);
    }
  }
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const ct::RoutedNode& n = tree.node(id);
    if (n.parent < 0) continue;
    poly_edge(os, m, tree.node(n.parent).loc, n.loc, "#2b6cb0", 1.2);
  }
  if (opts.draw_gates) {
    for (const int id : tree.gated_nodes()) {
      const geom::Point g = tree.gate_location(id);
      os << "<rect x=\"" << m.x(g.x) - 2.5 << "\" y=\"" << m.y(g.y) - 2.5
         << "\" width=\"5\" height=\"5\" fill=\"#e53e3e\"/>\n";
    }
  }
  if (opts.draw_sinks) {
    for (int id = 0; id < tree.num_leaves; ++id) {
      const geom::Point& p = tree.node(id).loc;
      os << "<circle cx=\"" << m.x(p.x) << "\" cy=\"" << m.y(p.y)
         << "\" r=\"2\" fill=\"#2f855a\"/>\n";
    }
  }
  for (const geom::Point& c : ctrl.controller_locations()) {
    os << "<rect x=\"" << m.x(c.x) - 4 << "\" y=\"" << m.y(c.y) - 4
       << "\" width=\"8\" height=\"8\" fill=\"#6b46c1\"/>\n";
  }
  const geom::Point root = tree.node(tree.root).loc;
  os << "<circle cx=\"" << m.x(root.x) << "\" cy=\"" << m.y(root.y)
     << "\" r=\"4\" fill=\"#dd6b20\"/>\n";
  os << "</svg>\n";
}

}  // namespace gcr::io

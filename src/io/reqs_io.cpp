#include "io/reqs_io.h"

#include <charconv>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "guard/lexer.h"
#include "guard/validate.h"

namespace gcr::io {

namespace {

using guard::Code;
using guard::Lexer;
using guard::LineCursor;

bool parse_double_value(std::string_view v, double& out) {
  const char* end = v.data() + v.size();
  const auto [p, ec] = std::from_chars(v.data(), end, out);
  return ec == std::errc() && p == end;
}

bool parse_int_value(std::string_view v, int& out) {
  const char* end = v.data() + v.size();
  const auto [p, ec] = std::from_chars(v.data(), end, out);
  return ec == std::errc() && p == end;
}

bool one_of(std::string_view v, std::initializer_list<std::string_view> set) {
  for (const std::string_view s : set)
    if (v == s) return true;
  return false;
}

}  // namespace

void write_reqs(std::ostream& os, const std::vector<RouteRequest>& reqs) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# gcr serve batch\n";
  os << "reqs\n";
  for (const RouteRequest& r : reqs) {
    os << r.id << " sinks=" << r.sinks << " rtl=" << r.rtl
       << " stream=" << r.stream;
    if (r.style != "reduced") os << " style=" << r.style;
    if (r.topology != "swcap") os << " topology=" << r.topology;
    if (r.strength) os << " strength=" << *r.strength;
    if (r.auto_tune) os << " auto_tune=1";
    if (r.deadline_ms >= 0.0) os << " deadline_ms=" << r.deadline_ms;
    if (r.threads > 0) os << " threads=" << r.threads;
    if (!r.eco.empty()) os << " eco=" << r.eco;
    os << '\n';
  }
}

std::optional<std::vector<RouteRequest>> read_reqs(
    std::istream& is, guard::Diag& diag, const std::string& filename) {
  const std::size_t errors_before = diag.error_count();
  Lexer lx(is, filename);
  if (!lx.ok()) {
    diag.report(lx.load_status());
    return std::nullopt;
  }
  if (lx.num_lines() == 0) {
    diag.error(Code::Header, "expected 'reqs' header", lx.end_loc());
    return std::nullopt;
  }
  {
    LineCursor c = lx.cursor(0);
    std::string_view tag;
    if (!c.next_token(tag) || tag != "reqs") {
      diag.error(Code::Header, "expected 'reqs' header", c.loc());
      return std::nullopt;
    }
    if (!c.at_end())
      diag.error(Code::Parse, "trailing garbage after reqs header", c.loc());
  }

  std::vector<RouteRequest> out;
  std::unordered_map<std::string, int> seen;  // id -> first line
  for (std::size_t i = 1; i < lx.num_lines(); ++i) {
    LineCursor c = lx.cursor(i);
    std::string_view tok;
    if (!c.next_token(tok)) continue;
    bool bad = false;
    if (tok.find('=') != std::string_view::npos) {
      diag.error(Code::Parse,
                 "request line must start with an id token (no '=')",
                 c.loc());
      continue;
    }
    RouteRequest r;
    r.id = std::string(tok);
    r.line = lx.line_number(i);
    if (const auto [it, fresh] = seen.emplace(r.id, r.line); !fresh) {
      diag.error(Code::Duplicate,
                 "duplicate request id '" + r.id + "' (first on line " +
                     std::to_string(it->second) + ")",
                 c.loc());
      continue;
    }
    bool have_strength = false, have_auto = false, have_deadline = false,
         have_threads = false;
    while (c.next_token(tok)) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        diag.error(Code::Parse,
                   "trailing garbage: expected key=value, got '" +
                       std::string(tok) + "'",
                   c.loc());
        bad = true;
        break;
      }
      const std::string_view key = tok.substr(0, eq);
      const std::string_view val = tok.substr(eq + 1);
      if (val.empty()) {
        diag.error(Code::Parse, "empty value for '" + std::string(key) + "'",
                   c.loc());
        bad = true;
        break;
      }
      const auto set_path = [&](std::string& dst) {
        if (!dst.empty()) {
          diag.error(Code::Parse,
                     "duplicate '" + std::string(key) + "=' on one request",
                     c.loc());
          bad = true;
          return;
        }
        dst = std::string(val);
      };
      if (key == "sinks") {
        set_path(r.sinks);
      } else if (key == "rtl") {
        set_path(r.rtl);
      } else if (key == "stream") {
        set_path(r.stream);
      } else if (key == "eco") {
        set_path(r.eco);
      } else if (key == "style") {
        if (!one_of(val, {"buffered", "gated", "reduced"})) {
          diag.error(Code::Parse,
                     "bad style '" + std::string(val) +
                         "' (want buffered|gated|reduced)",
                     c.loc());
          bad = true;
        }
        r.style = std::string(val);
      } else if (key == "topology") {
        if (!one_of(val, {"swcap", "nn", "activity", "mmm"})) {
          diag.error(Code::Parse,
                     "bad topology '" + std::string(val) +
                         "' (want swcap|nn|activity|mmm)",
                     c.loc());
          bad = true;
        }
        r.topology = std::string(val);
      } else if (key == "strength") {
        double s = 0.0;
        if (have_strength || !parse_double_value(val, s)) {
          diag.error(Code::Parse, "malformed strength value", c.loc());
          bad = true;
        } else if (!guard::finite_normal(s)) {
          diag.error(Code::NonFinite,
                     "strength is NaN, infinite or denormal", c.loc());
          bad = true;
        } else if (s < 0.0 || s > 1.0) {
          diag.error(Code::Range, "strength outside [0,1]", c.loc());
          bad = true;
        } else {
          have_strength = true;
          r.strength = s;
        }
      } else if (key == "auto_tune") {
        if (have_auto || (val != "0" && val != "1")) {
          diag.error(Code::Parse, "auto_tune must be 0 or 1", c.loc());
          bad = true;
        } else {
          have_auto = true;
          r.auto_tune = val == "1";
        }
      } else if (key == "deadline_ms") {
        double d = 0.0;
        if (have_deadline || !parse_double_value(val, d)) {
          diag.error(Code::Parse, "malformed deadline_ms value", c.loc());
          bad = true;
        } else if (!guard::finite_normal(d)) {
          diag.error(Code::NonFinite,
                     "deadline_ms is NaN, infinite or denormal", c.loc());
          bad = true;
        } else if (d < 0.0) {
          diag.error(Code::Range, "deadline_ms must be >= 0", c.loc());
          bad = true;
        } else {
          have_deadline = true;
          r.deadline_ms = d;
        }
      } else if (key == "threads") {
        int t = 0;
        if (have_threads || !parse_int_value(val, t)) {
          diag.error(Code::Parse, "malformed threads value", c.loc());
          bad = true;
        } else if (t < 0) {
          diag.error(Code::Range, "threads must be >= 0", c.loc());
          bad = true;
        } else {
          have_threads = true;
          r.threads = t;
        }
      } else {
        diag.error(Code::Parse,
                   "unknown request option '" + std::string(key) + "'",
                   c.loc());
        bad = true;
      }
      if (bad) break;
    }
    if (bad) continue;
    if (r.sinks.empty() || r.rtl.empty() || r.stream.empty()) {
      diag.error(Code::Parse,
                 "request '" + r.id +
                     "' is missing a design path (need sinks= rtl= stream=)",
                 lx.line_loc(i));
      continue;
    }
    out.push_back(std::move(r));
  }
  if (out.empty() && diag.error_count() == errors_before)
    diag.error(Code::EmptyDesign, "batch declares no requests",
               guard::SourceLoc{filename, 0, 0});
  if (diag.error_count() > errors_before) return std::nullopt;
  return out;
}

}  // namespace gcr::io

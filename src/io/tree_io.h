#pragma once

#include <iosfwd>

#include "clocktree/routed_tree.h"

/// \file tree_io.h
/// Plain-text export of a routed gated clock tree, for consumption by
/// downstream tooling (custom routers, visualizers, power signoff).
///
/// Format: a header line "tree <num_nodes> <num_leaves> <root>", then one
/// line per node:
///   <id> <x> <y> <parent> <edge_len> <gated 0/1> <down_cap> <delay>

namespace gcr::io {

void write_routed_tree(std::ostream& os, const ct::RoutedTree& tree);
[[nodiscard]] ct::RoutedTree read_routed_tree(std::istream& is);

}  // namespace gcr::io

#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "clocktree/routed_tree.h"
#include "guard/status.h"

/// \file tree_io.h
/// Plain-text export of a routed gated clock tree, for consumption by
/// downstream tooling (custom routers, visualizers, power signoff).
///
/// Format: a header line "tree <num_nodes> <num_leaves> <root>", then one
/// line per node:
///   <id> <x> <y> <parent> <edge_len> <gated 0/1> <down_cap> <delay>
///
/// The reader is strict: it rejects duplicate or missing node ids,
/// out-of-range parents, a parented root, more than two children per node,
/// cyclic or disconnected parent chains (every node must be reachable from
/// the root), and a leaf count that disagrees with the header. The Diag
/// overload reports every problem with file:line locations; the legacy
/// overload throws guard::GuardError (a std::runtime_error) on the first.

namespace gcr::io {

void write_routed_tree(std::ostream& os, const ct::RoutedTree& tree);
[[nodiscard]] std::optional<ct::RoutedTree> read_routed_tree(
    std::istream& is, guard::Diag& diag,
    const std::string& filename = "<tree>");
[[nodiscard]] ct::RoutedTree read_routed_tree(std::istream& is);

}  // namespace gcr::io

#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "activity/rtl.h"
#include "activity/stream.h"
#include "clocktree/sink.h"
#include "geom/die.h"
#include "guard/status.h"

/// \file text_io.h
/// Plain-text persistence for the router's inputs, so benchmark instances
/// and traces can be inspected, versioned and exchanged.
///
/// Formats (all whitespace-separated, '#' comments allowed):
///   sinks : "die <xlo> <ylo> <xhi> <yhi>" then one "x y cap" line per sink
///   stream: instruction ids, any whitespace layout
///   rtl   : "rtl <K> <N>" then per instruction a line "<instr> m m m ..."
///
/// Each reader comes in two flavours: the Diag overload collects every
/// problem (with file:line:col locations and stable GCR_E_* codes) and
/// returns nullopt when any *error* was found, and a legacy throwing
/// overload that raises guard::GuardError (a std::runtime_error) carrying
/// the first error. The parsers are strict: trailing garbage, short reads,
/// out-of-range ids, non-finite values and duplicate sink coordinates are
/// all rejected rather than silently accepted (see docs/robustness.md).

namespace gcr::io {

struct SinksFile {
  geom::DieArea die;
  ct::SinkList sinks;
};

void write_sinks(std::ostream& os, const geom::DieArea& die,
                 const ct::SinkList& sinks);
[[nodiscard]] std::optional<SinksFile> read_sinks(
    std::istream& is, guard::Diag& diag,
    const std::string& filename = "<sinks>");
[[nodiscard]] SinksFile read_sinks(std::istream& is);

void write_stream(std::ostream& os, const activity::InstructionStream& s);
[[nodiscard]] std::optional<activity::InstructionStream> read_stream(
    std::istream& is, guard::Diag& diag,
    const std::string& filename = "<stream>");
[[nodiscard]] activity::InstructionStream read_stream(std::istream& is);

void write_rtl(std::ostream& os, const activity::RtlDescription& rtl);
[[nodiscard]] std::optional<activity::RtlDescription> read_rtl(
    std::istream& is, guard::Diag& diag,
    const std::string& filename = "<rtl>");
[[nodiscard]] activity::RtlDescription read_rtl(std::istream& is);

}  // namespace gcr::io

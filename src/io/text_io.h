#pragma once

#include <iosfwd>
#include <string>

#include "activity/rtl.h"
#include "activity/stream.h"
#include "clocktree/sink.h"
#include "geom/die.h"

/// \file text_io.h
/// Plain-text persistence for the router's inputs, so benchmark instances
/// and traces can be inspected, versioned and exchanged.
///
/// Formats (all whitespace-separated, '#' comments allowed):
///   sinks : "die <xlo> <ylo> <xhi> <yhi>" then one "x y cap" line per sink
///   stream: instruction ids, any whitespace layout
///   rtl   : "rtl <K> <N>" then per instruction a line "<instr> m m m ..."

namespace gcr::io {

struct SinksFile {
  geom::DieArea die;
  ct::SinkList sinks;
};

void write_sinks(std::ostream& os, const geom::DieArea& die,
                 const ct::SinkList& sinks);
[[nodiscard]] SinksFile read_sinks(std::istream& is);

void write_stream(std::ostream& os, const activity::InstructionStream& s);
[[nodiscard]] activity::InstructionStream read_stream(std::istream& is);

void write_rtl(std::ostream& os, const activity::RtlDescription& rtl);
[[nodiscard]] activity::RtlDescription read_rtl(std::istream& is);

}  // namespace gcr::io

#include "io/delta_io.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <utility>

#include "guard/lexer.h"
#include "guard/validate.h"

namespace gcr::io {

namespace {

using guard::Code;
using guard::Diag;
using guard::Lexer;
using guard::LineCursor;

}  // namespace

void write_delta(std::ostream& os, const eco::DesignDelta& delta) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# gcr design delta\n";
  os << "delta\n";
  for (const eco::SinkMove& mv : delta.moves)
    os << "move " << mv.sink << ' ' << mv.to.x << ' ' << mv.to.y << '\n';
  for (const int r : delta.removes) os << "remove " << r << '\n';
  for (const eco::SinkAdd& add : delta.adds)
    os << "add " << add.sink.loc.x << ' ' << add.sink.loc.y << ' '
       << add.sink.cap << ' ' << add.module << '\n';
  if (delta.stream.has_value()) {
    os << "stream";
    for (const activity::InstrId id : delta.stream->seq) os << ' ' << id;
    os << '\n';
  }
}

std::optional<eco::DesignDelta> read_delta(std::istream& is, guard::Diag& diag,
                                           const std::string& filename) {
  const std::size_t errors_before = diag.error_count();
  Lexer lx(is, filename);
  if (!lx.ok()) {
    diag.report(lx.load_status());
    return std::nullopt;
  }
  if (lx.num_lines() == 0) {
    diag.error(Code::Header, "expected 'delta' header", lx.end_loc());
    return std::nullopt;
  }
  {
    LineCursor c = lx.cursor(0);
    std::string_view tag;
    if (!c.next_token(tag) || tag != "delta") {
      diag.error(Code::Header, "expected 'delta' header", c.loc());
      return std::nullopt;
    }
    if (!c.at_end())
      diag.error(Code::Parse, "trailing garbage after delta header", c.loc());
  }

  eco::DesignDelta d;
  for (std::size_t i = 1; i < lx.num_lines(); ++i) {
    LineCursor c = lx.cursor(i);
    std::string_view tag;
    if (!c.next_token(tag)) continue;
    if (tag == "move") {
      eco::SinkMove mv;
      if (!c.next_int(mv.sink) || !c.next_double(mv.to.x) ||
          !c.next_double(mv.to.y)) {
        diag.error(Code::Parse, "malformed move (need 'move sink x y')",
                   c.loc());
        continue;
      }
      if (!c.at_end()) {
        diag.error(Code::Parse, "trailing garbage after move target", c.loc());
        continue;
      }
      if (mv.sink < 0) {
        diag.error(Code::Range, "move names a negative sink index",
                   lx.line_loc(i));
        continue;
      }
      if (!guard::finite_normal(mv.to.x) || !guard::finite_normal(mv.to.y)) {
        diag.error(Code::NonFinite,
                   "move target is NaN, infinite or denormal", lx.line_loc(i));
        continue;
      }
      d.moves.push_back(mv);
    } else if (tag == "remove") {
      int sink = 0;
      if (!c.next_int(sink)) {
        diag.error(Code::Parse, "malformed remove (need 'remove sink')",
                   c.loc());
        continue;
      }
      if (!c.at_end()) {
        diag.error(Code::Parse, "trailing garbage after removed sink",
                   c.loc());
        continue;
      }
      if (sink < 0) {
        diag.error(Code::Range, "remove names a negative sink index",
                   lx.line_loc(i));
        continue;
      }
      d.removes.push_back(sink);
    } else if (tag == "add") {
      eco::SinkAdd add;
      if (!c.next_double(add.sink.loc.x) || !c.next_double(add.sink.loc.y) ||
          !c.next_double(add.sink.cap) || !c.next_int(add.module)) {
        diag.error(Code::Parse, "malformed add (need 'add x y cap module')",
                   c.loc());
        continue;
      }
      if (!c.at_end()) {
        diag.error(Code::Parse, "trailing garbage after added sink's module",
                   c.loc());
        continue;
      }
      if (!guard::finite_normal(add.sink.loc.x) ||
          !guard::finite_normal(add.sink.loc.y) ||
          !guard::finite_normal(add.sink.cap)) {
        diag.error(Code::NonFinite,
                   "added sink has a NaN, infinite or denormal field",
                   lx.line_loc(i));
        continue;
      }
      if (add.sink.cap <= 0.0) {
        diag.error(Code::BadCap, "added sink's load cap must be positive",
                   lx.line_loc(i));
        continue;
      }
      if (add.module < 0) {
        diag.error(Code::Range, "added sink names a negative module id",
                   lx.line_loc(i));
        continue;
      }
      d.adds.push_back(add);
    } else if (tag == "stream") {
      if (d.stream.has_value()) {
        diag.error(Code::Duplicate,
                   "delta declares more than one replacement stream",
                   lx.line_loc(i));
        continue;
      }
      activity::InstructionStream s;
      bool bad = false;
      while (!c.at_end()) {
        int id = 0;
        if (!c.next_int(id)) {
          diag.error(Code::Parse,
                     "stream entry '" + std::string(c.last_token()) +
                         "' is not an instruction id",
                     c.loc());
          bad = true;
          break;  // rest of the line is unreliable
        }
        if (id < 0) {
          diag.error(Code::Range, "negative instruction id", c.loc());
          bad = true;
          continue;
        }
        s.seq.push_back(id);
      }
      if (!bad) d.stream = std::move(s);
    } else {
      diag.error(Code::Parse,
                 "unknown delta edit '" + std::string(tag) +
                     "' (expected move/remove/add/stream)",
                 c.loc());
    }
  }
  if (diag.error_count() != errors_before) return std::nullopt;
  return d;
}

eco::DesignDelta read_delta(std::istream& is) {
  guard::Diag diag;
  auto v = read_delta(is, diag, "<delta>");
  if (!v) throw guard::GuardError(diag.first_error());
  return std::move(*v);
}

}  // namespace gcr::io

#pragma once

#include <iosfwd>

#include "clocktree/routed_tree.h"
#include "gating/controller.h"
#include "geom/die.h"

/// \file svg.h
/// SVG export of a routed gated clock tree: rectilinear clock edges, sinks,
/// masking gates and the star-routed enable wires from the controller(s) --
/// the picture of the paper's Figure 1 for a real instance.

namespace gcr::io {

struct SvgOptions {
  double canvas = 900.0;       ///< output square size in px
  bool draw_star = true;       ///< draw enable (controller) wires
  bool draw_sinks = true;
  bool draw_gates = true;
};

void write_svg(std::ostream& os, const ct::RoutedTree& tree,
               const geom::DieArea& die, const gating::ControllerPlacement& ctrl,
               const SvgOptions& opts = {});

}  // namespace gcr::io

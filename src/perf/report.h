#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "perf/runner.h"

/// \file report.h
/// The `gcr.bench_report` v2 sidecar writer -- the machine-readable output
/// of the statistical bench runner, one document per bench binary (or per
/// `gcr_bench` group).
///
/// v2 replaces PR 1's v1 (a bare phase tree + counters snapshot) with:
///   * `benchmarks`: per-benchmark statistics blocks (median/min/max/mean/
///     p90/MAD over >= min_reps repetitions) and a memory section
///     (allocs/bytes per rep, peak live bytes),
///   * `fingerprint`: git SHA, compiler, flags and build type, so a diff
///     tool can refuse to compare apples to oranges,
///   * `memory`: process-level hook state and peak RSS,
///   * the v1 phase tree and metrics snapshot, unchanged (phases now carry
///     `alloc_count`/`alloc_bytes` when the hook attributed heap traffic).
///
/// Readers: `perf/diff.h` (schema validation + regression diffing) and
/// anything that can parse JSON. Bump `kBenchReportVersion` on breaking
/// layout changes and note it in docs/benchmarking.md.

namespace gcr::obs {
class Session;
}  // namespace gcr::obs

namespace gcr::perf {

inline constexpr int kBenchReportVersion = 2;

/// Build/host provenance baked into every report at compile/configure
/// time. `git_sha` is the configure-time HEAD (suffixed "-dirty" when the
/// tree had local changes) -- good enough to name a baseline, not a
/// substitute for committing the report next to the code it measured.
/// `timestamp_utc`/`hostname` are captured at emission time; validators
/// accept fingerprints without them (pre-stamp baselines stay loadable).
struct Fingerprint {
  std::string git_sha;
  std::string compiler;
  std::string flags;
  std::string build_type;
  std::string os;
  std::string timestamp_utc;  ///< "2026-08-09T12:34:56Z"
  std::string hostname;

  [[nodiscard]] static Fingerprint current();
};

/// Write one complete bench report. `session` may be null (no phase tree
/// was collected); the metrics snapshot is global and always included.
void write_bench_report(std::ostream& os, std::string_view bench_name,
                        const std::vector<BenchResult>& results,
                        const RunnerOptions& opts,
                        const obs::Session* session);

}  // namespace gcr::perf

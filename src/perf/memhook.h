#pragma once

#include <cstdint>

/// \file memhook.h
/// Opt-in heap observability: a global `operator new`/`operator delete`
/// replacement that counts allocations, allocated bytes and the peak live
/// footprint, plus peak-RSS sampling from the OS.
///
/// The replacement operators live in memhook.cpp and take effect in any
/// binary that links `gcr_perf` *and* references this API (static-archive
/// semantics: the object file is only pulled in when needed, so binaries
/// that never touch the hook keep the stock allocator). Even when linked,
/// the hook is off by default -- the disabled fast path is a single
/// relaxed atomic load and branch per allocation, and no counter moves
/// (tests assert this).
///
/// While enabled, the hook also installs an `obs` allocation sampler
/// (`obs::set_alloc_sampler`), so every `obs::ScopedTimer` phase picks up
/// `alloc_count` / `alloc_bytes` alongside its milliseconds -- that is how
/// per-phase memory attribution in `--mem-stats` and the bench reports
/// works.
///
/// Byte accounting uses `malloc_usable_size` (glibc), so frees need no
/// size headers and pointers allocated before enabling are handled
/// correctly. On libcs without it, `available()` is false and
/// `enable()` is a no-op -- callers degrade to timing-only output.
///
/// Enable/disable only from quiescent points (program start, between
/// benchmark runs): the counters are thread-safe, but toggling while other
/// threads allocate skews live-byte accounting.

namespace gcr::perf::memhook {

/// Cumulative counters since the last `reset()`.
struct Stats {
  std::uint64_t allocs{0};           ///< operator new calls while enabled
  std::uint64_t frees{0};            ///< operator delete calls while enabled
  std::uint64_t bytes_allocated{0};  ///< total bytes handed out
  std::uint64_t live_bytes{0};       ///< currently live (clamped at 0)
  std::uint64_t peak_live_bytes{0};  ///< high-water mark of live_bytes
};

/// True when the platform supports byte accounting (compiled against
/// glibc's `malloc_usable_size`).
[[nodiscard]] bool available();

/// Start counting and install the obs alloc sampler. No-op when
/// `available()` is false.
void enable();

/// Stop counting and remove the obs alloc sampler. Counters keep their
/// values until `reset()`.
void disable();

[[nodiscard]] bool enabled();

/// Zero all counters (enabled state unchanged).
void reset();

/// Reset the peak-live high-water mark to the current live footprint --
/// call between benchmarks to get per-benchmark peaks.
void reset_peak();

[[nodiscard]] Stats stats();

/// Process peak resident set size in bytes (getrusage), 0 if unavailable.
/// This is OS-level ground truth and includes code, stacks and allocator
/// slack; the hook's `peak_live_bytes` is the application-level view.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace gcr::perf::memhook

#include "perf/memhook.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/timer.h"

#if defined(__GLIBC__) || (defined(__has_include) && __has_include(<malloc.h>) && defined(__linux__))
#include <malloc.h>
#define GCR_MEMHOOK_USABLE_SIZE 1
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define GCR_MEMHOOK_RUSAGE 1
#endif

namespace gcr::perf::memhook {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::int64_t> g_live{0};
std::atomic<std::int64_t> g_peak{0};

inline std::size_t usable_size(void* p) {
#ifdef GCR_MEMHOOK_USABLE_SIZE
  return malloc_usable_size(p);
#else
  (void)p;
  return 0;
#endif
}

inline void on_alloc(void* p) {
  if (!p || !g_enabled.load(std::memory_order_relaxed)) return;
  const auto sz = static_cast<std::int64_t>(usable_size(p));
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<std::uint64_t>(sz),
                    std::memory_order_relaxed);
  const std::int64_t live =
      g_live.fetch_add(sz, std::memory_order_relaxed) + sz;
  std::int64_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak && !g_peak.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

inline void on_free(void* p) {
  if (!p || !g_enabled.load(std::memory_order_relaxed)) return;
  const auto sz = static_cast<std::int64_t>(usable_size(p));
  g_frees.fetch_add(1, std::memory_order_relaxed);
  // Frees of blocks allocated before enable() can drive live negative;
  // stats() clamps when reporting.
  g_live.fetch_sub(sz, std::memory_order_relaxed);
}

obs::AllocSample sample_for_obs() {
  return {g_allocs.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace

namespace detail {

void* counted_alloc(std::size_t n) {
  void* p = std::malloc(n ? n : 1);
  on_alloc(p);
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  on_alloc(p);
  return p;
}

void counted_free(void* p) {
  on_free(p);
  std::free(p);
}

}  // namespace detail

bool available() {
#ifdef GCR_MEMHOOK_USABLE_SIZE
  return true;
#else
  return false;
#endif
}

void enable() {
  if (!available()) return;
  g_enabled.store(true, std::memory_order_relaxed);
  obs::set_alloc_sampler(&sample_for_obs);
}

void disable() {
  if (obs::alloc_sampler() == &sample_for_obs) obs::set_alloc_sampler(nullptr);
  g_enabled.store(false, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void reset() {
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
  g_live.store(0, std::memory_order_relaxed);
  g_peak.store(0, std::memory_order_relaxed);
}

void reset_peak() {
  g_peak.store(g_live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

Stats stats() {
  Stats s;
  s.allocs = g_allocs.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  s.bytes_allocated = g_bytes.load(std::memory_order_relaxed);
  const std::int64_t live = g_live.load(std::memory_order_relaxed);
  s.live_bytes = live > 0 ? static_cast<std::uint64_t>(live) : 0;
  const std::int64_t peak = g_peak.load(std::memory_order_relaxed);
  s.peak_live_bytes = peak > 0 ? static_cast<std::uint64_t>(peak) : 0;
  return s;
}

std::uint64_t peak_rss_bytes() {
#ifdef GCR_MEMHOOK_RUSAGE
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace gcr::perf::memhook

// ---------------------------------------------------------------------------
// Global allocation operators. Defined here (same translation unit as the
// API) so any binary that uses the memhook API links these replacements;
// binaries that don't reference memhook keep the stock allocator.
// ---------------------------------------------------------------------------

namespace memhook_detail = gcr::perf::memhook::detail;

void* operator new(std::size_t n) {
  void* p = memhook_detail::counted_alloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = memhook_detail::counted_alloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return memhook_detail::counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return memhook_detail::counted_alloc(n);
}

void* operator new(std::size_t n, std::align_val_t al) {
  void* p = memhook_detail::counted_aligned_alloc(
      n, static_cast<std::size_t>(al));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t al) {
  void* p = memhook_detail::counted_aligned_alloc(
      n, static_cast<std::size_t>(al));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return memhook_detail::counted_aligned_alloc(
      n, static_cast<std::size_t>(al));
}

void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return memhook_detail::counted_aligned_alloc(
      n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { memhook_detail::counted_free(p); }
void operator delete[](void* p) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  memhook_detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  memhook_detail::counted_free(p);
}

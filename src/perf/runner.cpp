#include "perf/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <ostream>
#include <string_view>
#include <utility>

#include "obs/timer.h"
#include "perf/memhook.h"

namespace gcr::perf {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

RunnerOptions RunnerOptions::quick_tier() {
  RunnerOptions o;
  o.quick = true;
  o.min_reps = 5;
  o.max_reps = 15;
  o.max_seconds_per_bench = 0.4;
  o.rel_tol = 0.05;
  return o;
}

RunnerOptions RunnerOptions::from_env() {
  const char* q = std::getenv("GCR_BENCH_QUICK");
  if (q && *q && std::string_view(q) != "0") return quick_tier();
  return RunnerOptions{};
}

void Runner::add(std::string name, BenchFactory make) {
  entries_.push_back({std::move(name), std::move(make)});
}

std::vector<std::string> Runner::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::vector<BenchResult> Runner::run(const RunnerOptions& opts,
                                     std::ostream* progress) const {
  std::vector<BenchResult> results;
  for (const auto& entry : entries_) {
    if (!opts.filter.empty() &&
        entry.name.find(opts.filter) == std::string::npos)
      continue;

    BenchResult r;
    r.name = entry.name;
    r.warmup_reps = opts.warmup_reps;

    // The benchmark phase: setup, warmup and reps all run under a phase
    // named after the benchmark so the bound session's tree nests the
    // library's internal phases beneath it.
    obs::ScopedTimer bench_phase(entry.name.c_str());

    BenchFn fn = entry.make();

    // Calibrate the batch size: one rep must be long enough that the
    // steady-clock quantization is noise, not signal. The calibration
    // call doubles as the first warmup rep.
    const Clock::time_point c0 = Clock::now();
    fn();
    const double first = seconds_since(c0);
    if (first < opts.min_rep_seconds) {
      const double per_call = std::max(first, 1e-9);
      r.batch = std::min<std::int64_t>(
          1'000'000,
          static_cast<std::int64_t>(opts.min_rep_seconds / per_call) + 1);
    }

    for (int i = 1; i < opts.warmup_reps; ++i) fn();

    const bool mem = memhook::enabled();
    memhook::Stats m0;
    if (mem) {
      memhook::reset_peak();
      m0 = memhook::stats();
    }

    std::vector<double> samples_ms;
    const Clock::time_point bench0 = Clock::now();
    while (true) {
      const Clock::time_point t0 = Clock::now();
      for (std::int64_t i = 0; i < r.batch; ++i) fn();
      const double rep_s = seconds_since(t0);
      samples_ms.push_back(rep_s * 1000.0 / static_cast<double>(r.batch));

      const int n = static_cast<int>(samples_ms.size());
      if (n < opts.min_reps) continue;
      if (stabilized(samples_ms, opts.rel_tol)) {
        r.stable = true;
        break;
      }
      if (n >= opts.max_reps) break;
      if (seconds_since(bench0) > opts.max_seconds_per_bench) break;
    }

    r.time_ms = summarize(samples_ms);
    if (mem) {
      const memhook::Stats m1 = memhook::stats();
      const double reps =
          static_cast<double>(samples_ms.size()) *
          static_cast<double>(r.batch);
      r.memory.measured = true;
      r.memory.allocs_per_rep =
          static_cast<double>(m1.allocs - m0.allocs) / reps;
      r.memory.bytes_per_rep =
          static_cast<double>(m1.bytes_allocated - m0.bytes_allocated) / reps;
      r.memory.peak_live_bytes = m1.peak_live_bytes;
    }

    if (progress) {
      char line[256];
      std::snprintf(line, sizeof line,
                    "  %-44s %10.4f ms  (min %.4f, p90 %.4f, mad %.4f, "
                    "reps %d%s)\n",
                    r.name.c_str(), r.time_ms.median, r.time_ms.min,
                    r.time_ms.p90, r.time_ms.mad, r.time_ms.reps,
                    r.stable ? "" : ", unstable");
      *progress << line << std::flush;
    }
    results.push_back(std::move(r));
  }
  return results;
}

Runner& default_runner() {
  static Runner* r = new Runner();  // leaked: outlive static destructors
  return *r;
}

Registrar::Registrar(const char* name, BenchFactory make) {
  default_runner().add(name, std::move(make));
}

namespace {

/// "group/query/n=128" -> {"group/query", 128}; nullopt when the last
/// component is not `n=<number>`.
std::optional<std::pair<std::string, double>> split_family(
    const std::string& name) {
  const std::size_t slash = name.rfind('/');
  if (slash == std::string::npos) return std::nullopt;
  const std::string_view tail = std::string_view(name).substr(slash + 1);
  if (tail.size() < 3 || tail.substr(0, 2) != "n=") return std::nullopt;
  char* end = nullptr;
  const double n = std::strtod(tail.data() + 2, &end);
  if (end != tail.data() + tail.size() || !(n > 0.0)) return std::nullopt;
  return std::make_pair(name.substr(0, slash), n);
}

std::string human_bytes(double b) {
  char buf[32];
  if (b >= 10.0 * 1024 * 1024)
    std::snprintf(buf, sizeof buf, "%.1f MiB", b / (1024.0 * 1024.0));
  else if (b >= 10.0 * 1024)
    std::snprintf(buf, sizeof buf, "%.1f KiB", b / 1024.0);
  else
    std::snprintf(buf, sizeof buf, "%.0f B", b);
  return buf;
}

}  // namespace

void print_results(std::ostream& os, const std::vector<BenchResult>& results) {
  char line[320];
  os << "benchmark                                     median ms     min ms"
        "     p90 ms     mad ms  reps  memory/rep\n";
  for (const auto& r : results) {
    std::string mem = "-";
    if (r.memory.measured) {
      mem = human_bytes(r.memory.bytes_per_rep) + " / " +
            std::to_string(static_cast<long long>(
                std::llround(r.memory.allocs_per_rep))) +
            " allocs";
    }
    std::snprintf(line, sizeof line,
                  "%-44s %10.4f %10.4f %10.4f %10.4f %5d  %s%s\n",
                  r.name.c_str(), r.time_ms.median, r.time_ms.min,
                  r.time_ms.p90, r.time_ms.mad, r.time_ms.reps, mem.c_str(),
                  r.stable ? "" : "  [unstable]");
    os << line;
  }

  // Complexity fits over n=<size> families.
  std::map<std::string, std::vector<std::pair<double, double>>> families;
  for (const auto& r : results) {
    if (const auto fam = split_family(r.name))
      families[fam->first].emplace_back(fam->second, r.time_ms.median);
  }
  bool header = false;
  for (const auto& [prefix, points] : families) {
    if (points.size() < 3) continue;
    if (!header) {
      os << "-- complexity fits (median ~ n^slope) --\n";
      header = true;
    }
    std::snprintf(line, sizeof line, "  %-42s slope %.2f over %zu sizes\n",
                  prefix.c_str(), loglog_slope(points), points.size());
    os << line;
  }
}

}  // namespace gcr::perf

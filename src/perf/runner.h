#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "perf/stats.h"

/// \file runner.h
/// The statistical benchmark runner: named benchmarks registered as
/// factories, executed with warmup plus adaptive repetitions until the
/// median stabilizes (see stats.h), reported as median/min/p90/MAD with a
/// per-benchmark memory section.
///
/// Registration is factory-based so expensive setup (building an r5-scale
/// design, constructing the activity tables) runs once, outside the timed
/// region:
///
///   perf::Registrar reg{"route/r1/buffered", [] {
///     auto inst = std::make_shared<bench::Instance>(make_instance("r1"));
///     auto router = std::make_shared<core::GatedClockRouter>(inst->design);
///     return [=] {
///       auto r = router->route({});
///       perf::do_not_optimize(r.swcap.total_swcap());
///     };
///   }};
///
/// Name convention: `group/what[/variant][/n=<size>]`, '/'-separated.
/// `gcr_bench` writes one `BENCH_<group>.json` sidecar per group, and the
/// text reporter fits a log-log complexity slope over families that share
/// a prefix and differ only in a numeric `n=<size>` component.
///
/// When an `obs::Session` is bound on the thread, every benchmark's
/// repetitions run under a phase named after the benchmark, so the phase
/// tree in the sidecar shows the library-internal phase breakdown beneath
/// each benchmark (and, with the memhook enabled, bytes next to
/// milliseconds).

namespace gcr::perf {

/// Per-benchmark heap traffic, measured over the timed repetitions only
/// (warmup excluded). `measured` is false when the allocation hook is
/// unavailable or disabled -- consumers must not read zeros as "does not
/// allocate".
struct MemoryStats {
  bool measured{false};
  double allocs_per_rep{0.0};
  double bytes_per_rep{0.0};
  std::uint64_t peak_live_bytes{0};  ///< high-water mark during the reps
};

struct BenchResult {
  std::string name;
  int warmup_reps{0};
  /// Inner iterations per repetition (micro benchmarks batch enough calls
  /// per rep that one rep is comfortably above timer resolution; times in
  /// `time_ms` are per inner iteration).
  std::int64_t batch{1};
  Summary time_ms;
  bool stable{false};  ///< stabilization cutoff reached (vs rep/time cap)
  MemoryStats memory;
};

struct RunnerOptions {
  int warmup_reps{1};
  int min_reps{5};
  int max_reps{40};
  double max_seconds_per_bench{1.5};
  double rel_tol{0.02};          ///< split-half agreement tolerance
  double min_rep_seconds{2e-4};  ///< batch up reps shorter than this
  bool quick{false};
  std::string filter;  ///< substring match on the name; empty = run all

  /// The quick tier: fewer reps, tighter time cap. Used by CI's perf-smoke
  /// leg and `reproduce_all.sh`.
  [[nodiscard]] static RunnerOptions quick_tier();
  /// quick_tier() when GCR_BENCH_QUICK is set to a non-empty value other
  /// than "0", defaults otherwise.
  [[nodiscard]] static RunnerOptions from_env();
};

using BenchFn = std::function<void()>;
using BenchFactory = std::function<BenchFn()>;

class Runner {
 public:
  void add(std::string name, BenchFactory make);

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Run every registered benchmark whose name matches `opts.filter`, in
  /// registration order. Progress lines (one per benchmark) go to
  /// `progress` when non-null.
  [[nodiscard]] std::vector<BenchResult> run(const RunnerOptions& opts,
                                             std::ostream* progress) const;

 private:
  struct Entry {
    std::string name;
    BenchFactory make;
  };
  std::vector<Entry> entries_;
};

/// The process-global runner that `Registrar` feeds; what `bench_main` and
/// `gcr_bench` execute.
[[nodiscard]] Runner& default_runner();

/// Static-initializer registration into `default_runner()`.
struct Registrar {
  Registrar(const char* name, BenchFactory make);
};

/// Keep `v` (and everything feeding it) out of the optimizer's reach. The
/// address escapes through the asm, so this works for class types too.
template <typename T>
inline void do_not_optimize(T&& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

/// Text report: one row per benchmark (median/min/p90/MAD, reps, memory
/// when measured), then a complexity-fit line per `n=<size>` family with
/// at least 3 members.
void print_results(std::ostream& os, const std::vector<BenchResult>& results);

}  // namespace gcr::perf

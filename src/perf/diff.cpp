#include "perf/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>

#include "perf/report.h"

namespace gcr::perf {

namespace {

using obs::json::Value;

void require(std::vector<std::string>& problems, bool ok, const char* what) {
  if (!ok) problems.emplace_back(what);
}

bool is_number_field(const Value& obj, std::string_view key) {
  const Value* v = obj.find(key);
  return v && v->is_number();
}

}  // namespace

std::vector<std::string> validate_bench_report(const Value& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.emplace_back("document is not a JSON object");
    return problems;
  }
  const Value* schema = doc.find("schema");
  require(problems, schema && schema->is_string() &&
                        schema->as_string() == "gcr.bench_report",
          "schema != \"gcr.bench_report\"");
  const Value* version = doc.find("version");
  require(problems,
          version && version->is_number() &&
              static_cast<int>(version->as_number()) == kBenchReportVersion,
          "version != 2");
  const Value* bench = doc.find("bench");
  require(problems, bench && bench->is_string() && !bench->as_string().empty(),
          "missing bench name");
  const Value* quick = doc.find("quick");
  require(problems, quick && quick->is_bool(), "missing quick flag");

  const Value* fp = doc.find("fingerprint");
  if (fp && fp->is_object()) {
    for (const char* key : {"git_sha", "compiler", "flags", "build_type", "os"}) {
      const Value* f = fp->find(key);
      if (!f || !f->is_string())
        problems.push_back(std::string("fingerprint.") + key +
                           " missing or not a string");
    }
    // Emission-time stamps arrived after the first baselines were committed:
    // optional, but type-checked when present.
    for (const char* key : {"timestamp_utc", "hostname"}) {
      const Value* f = fp->find(key);
      if (f && !f->is_string())
        problems.push_back(std::string("fingerprint.") + key +
                           " is not a string");
    }
  } else {
    problems.emplace_back("missing fingerprint object");
  }

  const Value* memory = doc.find("memory");
  if (memory && memory->is_object()) {
    const Value* he = memory->find("hook_enabled");
    require(problems, he && he->is_bool(), "memory.hook_enabled missing");
    require(problems, is_number_field(*memory, "peak_rss_bytes"),
            "memory.peak_rss_bytes missing");
  } else {
    problems.emplace_back("missing memory object");
  }

  const Value* phases = doc.find("phases");
  require(problems, phases && phases->is_array(), "missing phases array");
  const Value* counters = doc.find("counters");
  require(problems, counters && counters->is_object(),
          "missing counters object");
  const Value* histograms = doc.find("histograms");
  if (histograms && histograms->is_object()) {
    for (const auto& [hname, h] : histograms->as_object()) {
      if (!h.is_object()) {
        problems.push_back("histograms." + hname + " is not an object");
        continue;
      }
      for (const char* key : {"count", "sum"})
        if (!is_number_field(h, key))
          problems.push_back("histograms." + hname + "." + key + " missing");
      // bucket_scheme is optional (older reports), a string when present.
      const Value* scheme = h.find("bucket_scheme");
      if (scheme && !scheme->is_string())
        problems.push_back("histograms." + hname +
                           ".bucket_scheme is not a string");
    }
  }

  const Value* benchmarks = doc.find("benchmarks");
  if (!benchmarks || !benchmarks->is_array()) {
    problems.emplace_back("missing benchmarks array");
    return problems;
  }
  int idx = 0;
  for (const Value& b : benchmarks->as_array()) {
    const std::string at = "benchmarks[" + std::to_string(idx++) + "]";
    if (!b.is_object()) {
      problems.push_back(at + " is not an object");
      continue;
    }
    const Value* name = b.find("name");
    if (!name || !name->is_string() || name->as_string().empty())
      problems.push_back(at + ".name missing");
    const Value* reps = b.find("reps");
    if (!reps || !reps->is_number() || reps->as_number() < 1)
      problems.push_back(at + ".reps missing or < 1");
    const Value* t = b.find("time_ms");
    if (t && t->is_object()) {
      for (const char* key : {"median", "min", "max", "mean", "p90", "mad"})
        if (!is_number_field(*t, key))
          problems.push_back(at + ".time_ms." + key + " missing");
    } else {
      problems.push_back(at + ".time_ms missing");
    }
    const Value* m = b.find("memory");
    if (m && m->is_object()) {
      const Value* measured = m->find("measured");
      if (!measured || !measured->is_bool())
        problems.push_back(at + ".memory.measured missing");
      for (const char* key :
           {"allocs_per_rep", "bytes_per_rep", "peak_live_bytes"})
        if (!is_number_field(*m, key))
          problems.push_back(at + ".memory." + key + " missing");
    } else {
      problems.push_back(at + ".memory missing");
    }
  }
  return problems;
}

std::vector<std::string> report_fingerprint_warnings(const Value& doc) {
  std::vector<std::string> warnings;
  if (!doc.is_object()) return warnings;
  const Value* fp = doc.find("fingerprint");
  if (!fp || !fp->is_object()) return warnings;
  const Value* sha = fp->find("git_sha");
  if (!sha || !sha->is_string()) return warnings;
  const std::string& s = sha->as_string();
  constexpr std::string_view kDirty = "-dirty";
  if (s.size() >= kDirty.size() &&
      s.compare(s.size() - kDirty.size(), kDirty.size(), kDirty) == 0) {
    warnings.push_back("fingerprint.git_sha \"" + s +
                       "\" is from an uncommitted tree; regenerate the "
                       "report from a clean checkout before committing it "
                       "as a baseline");
  }
  return warnings;
}

std::optional<LoadedReport> load_bench_report(std::string_view text,
                                              std::string* error) {
  const std::optional<Value> doc = obs::json::parse(text);
  if (!doc) {
    if (error) *error = "not valid JSON";
    return std::nullopt;
  }
  const std::vector<std::string> problems = validate_bench_report(*doc);
  if (!problems.empty()) {
    if (error) *error = problems.front();
    return std::nullopt;
  }
  LoadedReport r;
  r.bench = doc->find("bench")->as_string();
  r.version = static_cast<int>(doc->find("version")->as_number());
  r.quick = doc->find("quick")->as_bool();
  if (const Value* fp = doc->find("fingerprint"))
    if (const Value* sha = fp->find("git_sha"))
      if (sha->is_string()) r.git_sha = sha->as_string();
  for (const Value& b : doc->find("benchmarks")->as_array()) {
    BenchSample s;
    const Value& t = *b.find("time_ms");
    s.median_ms = t.number_or("median", 0.0);
    s.mad_ms = t.number_or("mad", 0.0);
    s.min_ms = t.number_or("min", 0.0);
    s.reps = static_cast<int>(b.number_or("reps", 0.0));
    r.benchmarks.insert_or_assign(b.find("name")->as_string(), s);
  }
  return r;
}

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Improvement: return "improvement";
    case Verdict::Regression: return "REGRESSION";
    case Verdict::WithinNoise: return "within-noise";
    case Verdict::OnlyOld: return "only-old";
    case Verdict::OnlyNew: return "only-new";
  }
  return "?";
}

Verdict classify(const BenchSample& older, const BenchSample& newer,
                 const DiffOptions& opts) {
  const double delta = newer.median_ms - older.median_ms;
  const double rel_gate = opts.threshold * older.median_ms;
  const double noise_gate =
      opts.noise_mads * std::max(older.mad_ms, newer.mad_ms);
  if (std::abs(delta) <= rel_gate || std::abs(delta) <= noise_gate ||
      std::abs(delta) <= opts.min_delta_ms)
    return Verdict::WithinNoise;
  return delta > 0.0 ? Verdict::Regression : Verdict::Improvement;
}

DiffReport diff_reports(const LoadedReport& older, const LoadedReport& newer,
                        const DiffOptions& opts) {
  DiffReport out;
  std::set<std::string> names;
  for (const auto& [name, s] : older.benchmarks) names.insert(name);
  for (const auto& [name, s] : newer.benchmarks) names.insert(name);
  for (const std::string& name : names) {
    const auto o = older.benchmarks.find(name);
    const auto n = newer.benchmarks.find(name);
    DiffEntry e;
    e.name = name;
    if (o == older.benchmarks.end()) {
      e.verdict = Verdict::OnlyNew;
      e.new_median_ms = n->second.median_ms;
    } else if (n == newer.benchmarks.end()) {
      e.verdict = Verdict::OnlyOld;
      e.old_median_ms = o->second.median_ms;
    } else {
      e.old_median_ms = o->second.median_ms;
      e.new_median_ms = n->second.median_ms;
      e.ratio = e.old_median_ms > 0.0 ? e.new_median_ms / e.old_median_ms : 0.0;
      e.verdict = classify(o->second, n->second, opts);
      if (e.verdict == Verdict::Regression) ++out.regressions;
      if (e.verdict == Verdict::Improvement) ++out.improvements;
    }
    out.entries.push_back(std::move(e));
  }
  return out;
}

void print_diff(std::ostream& os, const DiffReport& d) {
  os << "benchmark                                       old ms     new ms"
        "    ratio  verdict\n";
  char line[320];
  for (const auto& e : d.entries) {
    std::snprintf(line, sizeof line, "%-44s %10.4f %10.4f %8.3f  %s\n",
                  e.name.c_str(), e.old_median_ms, e.new_median_ms, e.ratio,
                  std::string(verdict_name(e.verdict)).c_str());
    os << line;
  }
  std::snprintf(line, sizeof line,
                "%d regression(s), %d improvement(s), %zu compared\n",
                d.regressions, d.improvements, d.entries.size());
  os << line;
}

}  // namespace gcr::perf

#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

/// \file diff.h
/// Reading side of the bench-report pipeline: schema validation for
/// `gcr.bench_report` v2 documents and MAD-aware regression diffing
/// between two report sets (the library behind `gcr_benchdiff`).
///
/// Verdict rule, per benchmark present on both sides: the median delta is
/// a regression (or improvement) only when it clears BOTH gates --
///   1. relative: |new - old| > threshold * old  (default 5%),
///   2. noise:    |new - old| > noise_mads * max(old MAD, new MAD)
///      (default 3 MADs).
/// Gate 2 is what makes the comparison noise-aware: a 5% shift on a
/// benchmark whose repetitions scatter by 10% is within noise, while the
/// same 5% on a tight distribution is a real change.

namespace gcr::perf {

/// One benchmark's statistics as read back from a report.
struct BenchSample {
  double median_ms{0.0};
  double mad_ms{0.0};
  double min_ms{0.0};
  int reps{0};
};

struct LoadedReport {
  std::string bench;
  int version{0};
  bool quick{false};
  std::string git_sha;
  std::map<std::string, BenchSample> benchmarks;  ///< by benchmark name
};

/// Strict schema check of a parsed v2 bench report; returns the list of
/// problems, empty when valid. (This is the "schema validator" CI runs on
/// every emitted sidecar: obs/json.h checks syntax, this checks shape.)
[[nodiscard]] std::vector<std::string> validate_bench_report(
    const obs::json::Value& doc);

/// Non-fatal hygiene warnings for a (structurally valid) report document.
/// Currently flags a fingerprint whose git_sha carries the "-dirty"
/// suffix: the numbers came from an uncommitted tree, so no commit
/// reproduces them and the report must not be committed as a baseline
/// (docs/benchmarking.md). Works on any document with a fingerprint
/// object, so profile-report sidecars get the same check.
[[nodiscard]] std::vector<std::string> report_fingerprint_warnings(
    const obs::json::Value& doc);

/// Parse + validate + extract. On failure returns nullopt and, when
/// `error` is non-null, stores a one-line reason.
[[nodiscard]] std::optional<LoadedReport> load_bench_report(
    std::string_view text, std::string* error);

enum class Verdict {
  Improvement,
  Regression,
  WithinNoise,
  OnlyOld,  ///< benchmark disappeared
  OnlyNew,  ///< benchmark added
};

[[nodiscard]] std::string_view verdict_name(Verdict v);

struct DiffOptions {
  double threshold{0.05};  ///< relative median change that matters
  double noise_mads{3.0};  ///< ... and must exceed this many MADs
  /// ... and must exceed this many milliseconds. Absolute floor for
  /// batched micro benchmarks whose in-run MAD is artificially tight:
  /// deltas below ~50 ns are timer/scheduler territory, not code. (A real
  /// 2x change on a 100 ns benchmark still clears this.)
  double min_delta_ms{5e-5};
};

[[nodiscard]] Verdict classify(const BenchSample& older,
                               const BenchSample& newer,
                               const DiffOptions& opts);

struct DiffEntry {
  std::string name;
  Verdict verdict{Verdict::WithinNoise};
  double old_median_ms{0.0};
  double new_median_ms{0.0};
  double ratio{0.0};  ///< new/old medians; 0 when one side is missing
};

struct DiffReport {
  std::vector<DiffEntry> entries;
  int regressions{0};
  int improvements{0};

  [[nodiscard]] bool has_regression() const { return regressions > 0; }
};

/// Diff two reports benchmark-by-benchmark (union of names, sorted).
[[nodiscard]] DiffReport diff_reports(const LoadedReport& older,
                                      const LoadedReport& newer,
                                      const DiffOptions& opts);

/// Human-readable diff table.
void print_diff(std::ostream& os, const DiffReport& d);

}  // namespace gcr::perf

#include "perf/report.h"

#include <ostream>

#include "obs/json.h"
#include "obs/report_util.h"
#include "obs/session.h"
#include "perf/memhook.h"

#ifndef GCR_GIT_SHA
#define GCR_GIT_SHA "unknown"
#endif
#ifndef GCR_BUILD_FLAGS
#define GCR_BUILD_FLAGS ""
#endif
#ifndef GCR_BUILD_TYPE
#define GCR_BUILD_TYPE ""
#endif

namespace gcr::perf {

Fingerprint Fingerprint::current() {
  Fingerprint f;
  f.git_sha = GCR_GIT_SHA;
#if defined(__clang__)
  f.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  f.compiler = std::string("gcc ") + __VERSION__;
#else
  f.compiler = "unknown";
#endif
  f.flags = GCR_BUILD_FLAGS;
  f.build_type = GCR_BUILD_TYPE;
#if defined(__linux__)
  f.os = "linux";
#elif defined(__APPLE__)
  f.os = "darwin";
#else
  f.os = "unknown";
#endif
  f.timestamp_utc = obs::utc_timestamp();
  f.hostname = obs::host_name();
  return f;
}

namespace {

void write_fingerprint(obs::json::Writer& w) {
  const Fingerprint f = Fingerprint::current();
  w.key("fingerprint").begin_object();
  w.field("git_sha", f.git_sha);
  w.field("compiler", f.compiler);
  w.field("flags", f.flags);
  w.field("build_type", f.build_type);
  w.field("os", f.os);
  w.field("timestamp_utc", f.timestamp_utc);
  w.field("hostname", f.hostname);
  w.end_object();
}

void write_benchmark(obs::json::Writer& w, const BenchResult& r) {
  w.begin_object();
  w.field("name", r.name);
  w.field("reps", r.time_ms.reps);
  w.field("warmup_reps", r.warmup_reps);
  w.field("batch", r.batch);
  w.field("stable", r.stable);
  w.key("time_ms").begin_object();
  w.field("median", r.time_ms.median);
  w.field("min", r.time_ms.min);
  w.field("max", r.time_ms.max);
  w.field("mean", r.time_ms.mean);
  w.field("p90", r.time_ms.p90);
  w.field("mad", r.time_ms.mad);
  w.end_object();
  w.key("memory").begin_object();
  w.field("measured", r.memory.measured);
  w.field("allocs_per_rep", r.memory.allocs_per_rep);
  w.field("bytes_per_rep", r.memory.bytes_per_rep);
  w.field("peak_live_bytes", r.memory.peak_live_bytes);
  w.end_object();
  w.end_object();
}

}  // namespace

void write_bench_report(std::ostream& os, std::string_view bench_name,
                        const std::vector<BenchResult>& results,
                        const RunnerOptions& opts,
                        const obs::Session* session) {
  obs::json::Writer w(os);
  w.begin_object();
  w.field("schema", "gcr.bench_report");
  w.field("version", kBenchReportVersion);
  w.field("bench", bench_name);
  w.field("quick", opts.quick);
  write_fingerprint(w);
  w.key("benchmarks").begin_array();
  for (const auto& r : results) write_benchmark(w, r);
  w.end_array();
  w.key("memory").begin_object();
  w.field("hook_available", memhook::available());
  w.field("hook_enabled", memhook::enabled());
  const memhook::Stats m = memhook::stats();
  w.field("allocs", m.allocs);
  w.field("bytes_allocated", m.bytes_allocated);
  w.field("peak_live_bytes", m.peak_live_bytes);
  w.field("peak_rss_bytes", memhook::peak_rss_bytes());
  w.end_object();
  if (session) {
    obs::write_phase_forest(w, *session);
  } else {
    w.key("phases").begin_array();
    w.end_array();
  }
  obs::write_metrics(w);
  w.end_object();
  os << '\n';
}

}  // namespace gcr::perf

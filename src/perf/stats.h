#pragma once

#include <utility>
#include <vector>

/// \file stats.h
/// The statistics kernel of the benchmark harness: robust summary
/// statistics over per-repetition wall-clock samples. Everything here is
/// deliberately median/MAD-based -- benchmark timings are right-skewed
/// (scheduler preemption, cache/TLB warmth, allocator state), so the
/// median is the location estimate and the MAD (median absolute deviation
/// about the median) the dispersion estimate; mean/stddev would let one
/// preempted repetition dominate the report.

namespace gcr::perf {

/// Median of `v` (by-value: the selection is destructive). Even-sized
/// inputs average the two middle order statistics. 0 for empty input.
[[nodiscard]] double median(std::vector<double> v);

/// Linear-interpolated percentile, `p` in [0, 1] (0.9 = p90). 0 for empty
/// input.
[[nodiscard]] double percentile(std::vector<double> v, double p);

/// Median absolute deviation about the median (unscaled -- we compare MADs
/// against MADs and against relative thresholds, never against a Gaussian
/// sigma, so the 1.4826 consistency factor would only add noise).
[[nodiscard]] double mad(const std::vector<double>& v);

struct Summary {
  int reps{0};
  double min{0.0};
  double max{0.0};
  double mean{0.0};
  double median{0.0};
  double p90{0.0};
  double mad{0.0};
};

[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Adaptive-repetition cutoff: true once the sample's location estimate
/// has settled. Splits the samples into first and second half and accepts
/// when the two half-medians agree within `rel_tol` of the overall median
/// (a split-half agreement test: warm-up drift or a bimodal machine state
/// shows up as disagreeing halves). Requires at least 6 samples; a
/// non-positive overall median (degenerate timer) counts as stable.
[[nodiscard]] bool stabilized(const std::vector<double>& samples,
                              double rel_tol);

/// Least-squares slope of log(y) on log(x) over points with positive
/// coordinates -- the empirical complexity exponent of a benchmark family
/// (y ~ x^slope). 0 when fewer than 2 usable points.
[[nodiscard]] double loglog_slope(
    const std::vector<std::pair<double, double>>& xy);

}  // namespace gcr::perf

#include "perf/stats.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

namespace gcr::perf {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  // Even size: the lower middle is the max of the left partition.
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double mad(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = median(v);
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double x : v) dev.push_back(std::abs(x - m));
  return median(std::move(dev));
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  s.reps = static_cast<int>(samples.size());
  const auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  s.min = *mn;
  s.max = *mx;
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  s.median = median(samples);
  s.p90 = percentile(samples, 0.9);
  s.mad = mad(samples);
  return s;
}

bool stabilized(const std::vector<double>& samples, double rel_tol) {
  if (samples.size() < 6) return false;
  const std::size_t half = samples.size() / 2;
  const std::vector<double> first(samples.begin(),
                                  samples.begin() +
                                      static_cast<std::ptrdiff_t>(half));
  const std::vector<double> second(samples.end() -
                                       static_cast<std::ptrdiff_t>(half),
                                   samples.end());
  const double m = median(samples);
  if (!(m > 0.0)) return true;
  return std::abs(median(first) - median(second)) <= rel_tol * m;
}

double loglog_slope(const std::vector<std::pair<double, double>>& xy) {
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int n = 0;
  for (const auto& [x, y] : xy) {
    if (!(x > 0.0) || !(y > 0.0)) continue;
    const double lx = std::log(x);
    const double ly = std::log(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace gcr::perf

#pragma once

#include <bit>
#include <cstdint>
#include <cassert>
#include <vector>

/// \file bitset.h
/// A small dynamic bitset tuned for the two set types the activity engine
/// manipulates:
///   * module sets  (which modules a subtree / an instruction uses), and
///   * activation masks (which *instructions* activate a subtree).
///
/// Subtree merging is set union, and the probability queries reduce to
/// popcount-style scans, so the representation is a flat word vector.

namespace gcr::activity {

class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(int num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  [[nodiscard]] int size() const { return num_bits_; }
  [[nodiscard]] bool empty_universe() const { return num_bits_ == 0; }

  void set(int i) {
    assert(i >= 0 && i < num_bits_);
    words_[static_cast<std::size_t>(i) >> 6] |= (std::uint64_t{1} << (i & 63));
  }

  void reset(int i) {
    assert(i >= 0 && i < num_bits_);
    words_[static_cast<std::size_t>(i) >> 6] &=
        ~(std::uint64_t{1} << (i & 63));
  }

  [[nodiscard]] bool test(int i) const {
    assert(i >= 0 && i < num_bits_);
    return (words_[static_cast<std::size_t>(i) >> 6] >> (i & 63)) & 1u;
  }

  /// In-place union; the universes must match.
  BitSet& operator|=(const BitSet& o) {
    assert(num_bits_ == o.num_bits_);
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] |= o.words_[k];
    return *this;
  }

  [[nodiscard]] friend BitSet operator|(BitSet a, const BitSet& b) {
    a |= b;
    return a;
  }

  /// True when the two sets share at least one element.
  [[nodiscard]] bool intersects(const BitSet& o) const {
    assert(num_bits_ == o.num_bits_);
    for (std::size_t k = 0; k < words_.size(); ++k)
      if (words_[k] & o.words_[k]) return true;
    return false;
  }

  [[nodiscard]] bool any() const {
    for (const auto w : words_)
      if (w) return true;
    return false;
  }

  [[nodiscard]] int count() const {
    int n = 0;
    for (const auto w : words_) n += std::popcount(w);
    return n;
  }

  /// Call `fn(index)` for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t k = 0; k < words_.size(); ++k) {
      std::uint64_t w = words_[k];
      while (w) {
        const int bit = std::countr_zero(w);
        fn(static_cast<int>(k * 64) + bit);
        w &= w - 1;
      }
    }
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

  friend bool operator==(const BitSet&, const BitSet&) = default;

 private:
  int num_bits_{0};
  std::vector<std::uint64_t> words_;
};

/// A set of modules (universe = all modules of the design).
using ModuleSet = BitSet;
/// A set of instructions (universe = the instruction set).
using ActivationMask = BitSet;

}  // namespace gcr::activity

#include "activity/brute_force.h"

namespace gcr::activity {

double BruteForceActivity::signal_prob(const ModuleSet& s) const {
  if (stream_->seq.empty()) return 0.0;
  long long on = 0;
  for (const InstrId i : stream_->seq)
    if (rtl_->activates(i, s)) ++on;
  return static_cast<double>(on) / static_cast<double>(stream_->seq.size());
}

double BruteForceActivity::transition_prob(const ModuleSet& s) const {
  const int pairs = stream_->length() - 1;
  if (pairs <= 0) return 0.0;
  long long toggles = 0;
  bool cur = rtl_->activates(stream_->seq.front(), s);
  for (int t = 1; t < stream_->length(); ++t) {
    const bool nxt = rtl_->activates(stream_->seq[static_cast<std::size_t>(t)], s);
    if (nxt != cur) ++toggles;
    cur = nxt;
  }
  return static_cast<double>(toggles) / static_cast<double>(pairs);
}

double BruteForceActivity::module_prob(ModuleId m) const {
  ModuleSet s(rtl_->num_modules());
  s.set(m);
  return signal_prob(s);
}

}  // namespace gcr::activity

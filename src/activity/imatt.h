#pragma once

#include <span>
#include <vector>

#include "activity/rtl.h"
#include "activity/stream.h"

/// \file imatt.h
/// Instruction Transition - Module Activation Table (paper section 3.3,
/// Table 3). For every *observed* ordered pair of consecutive instructions
/// (I_a, I_b) the table stores the empirical probability that the pair
/// occurs in consecutive cycles. The per-module two-bit activation tags
/// AT(M) = (used-by-I_a, used-by-I_b) follow directly from the RTL
/// description, so they are not stored per row.
///
/// An enable EN for module set S makes a 0->1 or 1->0 transition on the pair
/// (I_a, I_b) exactly when the OR of the activation tags over S is 01 or 10,
/// i.e. when activates(I_a, S) != activates(I_b, S). Summing the pair
/// probabilities over such rows yields P_tr(EN) (complexity O(K^2 * N) in
/// the worst case, matching the paper's bound).

namespace gcr::activity {

struct ImattRow {
  InstrId cur;
  InstrId nxt;
  double prob;  ///< empirical P(cur at cycle t, nxt at cycle t+1)
};

class Imatt {
 public:
  /// Scan `stream` once; rows for unobserved pairs are omitted (prob 0).
  Imatt(const InstructionStream& stream, int num_instructions);

  [[nodiscard]] std::span<const ImattRow> rows() const { return rows_; }
  [[nodiscard]] int num_instructions() const { return num_instructions_; }

  /// P(cur -> nxt) lookup; 0 when the pair never occurred.
  [[nodiscard]] double pair_prob(InstrId cur, InstrId nxt) const;

  /// P_tr(EN) for the subtree with leaf-module set `s` via the table.
  [[nodiscard]] double transition_prob(const RtlDescription& rtl,
                                       const ModuleSet& s) const;

  /// The two-bit activation tag of module `m` for a row: bit1 = used by
  /// cur, bit0 = used by nxt (so 0b10 is a 1->0 transition as in the paper).
  [[nodiscard]] static int activation_tag(const RtlDescription& rtl,
                                          const ImattRow& row, ModuleId m) {
    return (rtl.uses(row.cur, m) ? 2 : 0) | (rtl.uses(row.nxt, m) ? 1 : 0);
  }

 private:
  int num_instructions_;
  std::vector<ImattRow> rows_;
  std::vector<double> dense_;  ///< K*K matrix for O(1) pair_prob
};

}  // namespace gcr::activity

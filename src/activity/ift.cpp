#include "activity/ift.h"

#include <cassert>

namespace gcr::activity {

Ift::Ift(const InstructionStream& stream, int num_instructions)
    : probs_(static_cast<std::size_t>(num_instructions), 0.0) {
  assert(num_instructions > 0);
  if (stream.seq.empty()) return;
  for (const InstrId i : stream.seq) probs_.at(i) += 1.0;
  const double inv = 1.0 / static_cast<double>(stream.seq.size());
  for (double& p : probs_) p *= inv;
}

double Ift::signal_prob(const RtlDescription& rtl, const ModuleSet& s) const {
  double p = 0.0;
  for (int i = 0; i < num_instructions(); ++i)
    if (rtl.activates(i, s)) p += probs_[static_cast<std::size_t>(i)];
  return p;
}

double Ift::average_activity(const RtlDescription& rtl) const {
  if (rtl.num_modules() == 0) return 0.0;
  double acc = 0.0;
  for (int i = 0; i < num_instructions(); ++i)
    acc += probs_[static_cast<std::size_t>(i)] * rtl.module_set(i).count();
  return acc / rtl.num_modules();
}

}  // namespace gcr::activity

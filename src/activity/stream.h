#pragma once

#include <vector>

#include "activity/rtl.h"

/// \file stream.h
/// An instruction stream: the clock-by-clock trace of executed instructions
/// obtained from instruction-level simulation (paper section 3.2). One
/// instruction issues per cycle.

namespace gcr::activity {

struct InstructionStream {
  std::vector<InstrId> seq;

  [[nodiscard]] int length() const { return static_cast<int>(seq.size()); }
};

}  // namespace gcr::activity

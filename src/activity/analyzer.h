#pragma once

#include <vector>

#include "activity/ift.h"
#include "activity/imatt.h"
#include "obs/metrics.h"
#include "obs/timer.h"

/// \file analyzer.h
/// The table-driven activity engine (paper section 3.3). Built once per
/// workload from a single scan of the instruction stream, it answers the two
/// queries the clock-tree constructor issues millions of times:
///
///   * P(EN)    -- signal probability of a subtree enable, and
///   * P_tr(EN) -- transition probability of that enable,
///
/// for arbitrary module sets. The engine works on *activation masks*: the
/// K-bit set of instructions that activate a subtree. A subtree merge is
/// then a mask union, and
///
///   P(EN)    = sum_{k in mask} P(I_k)
///   P_tr(EN) = sum_{a in mask} touch(a) - sum_{a,b in mask} Q(a,b)
///
/// where touch(a) = sum_b (P(a->b) + P(b->a)) and Q(a,b) = P(a->b) + P(b->a)
/// -- an O(K) / O(|mask|^2) evaluation that is exactly equivalent to summing
/// the IMATT rows whose OR-ed activation tags toggle (see analyzer.cpp for
/// the derivation).

namespace gcr::activity {

class ActivityAnalyzer {
 public:
  ActivityAnalyzer(const RtlDescription& rtl, const InstructionStream& stream);

  [[nodiscard]] const RtlDescription& rtl() const { return *rtl_; }
  [[nodiscard]] const Ift& ift() const { return ift_; }
  [[nodiscard]] const Imatt& imatt() const { return imatt_; }
  [[nodiscard]] int num_instructions() const { return ift_.num_instructions(); }

  /// The activation mask of a single module: instructions that use it.
  [[nodiscard]] const ActivationMask& module_mask(ModuleId m) const {
    return module_masks_.at(m);
  }

  /// The activation mask of an arbitrary module set.
  [[nodiscard]] ActivationMask mask_for(const ModuleSet& s) const;

  /// P(EN) for an activation mask.
  [[nodiscard]] double signal_prob(const ActivationMask& mask) const;

  /// P_tr(EN) for an activation mask.
  [[nodiscard]] double transition_prob(const ActivationMask& mask) const;

  /// Convenience overloads on module sets (mask_for + the mask query).
  [[nodiscard]] double signal_prob_of_modules(const ModuleSet& s) const {
    return signal_prob(mask_for(s));
  }
  [[nodiscard]] double transition_prob_of_modules(const ModuleSet& s) const {
    return transition_prob(mask_for(s));
  }

 private:
  /// Delegation target; the public ctor passes a ScopedTimer temporary that
  /// lives for the whole delegation, so the "analyze" phase covers the
  /// IFT/IMATT stream scans in the member-init list as well.
  ActivityAnalyzer(const RtlDescription& rtl, const InstructionStream& stream,
                   const obs::ScopedTimer& timer);

  const RtlDescription* rtl_;
  Ift ift_;
  Imatt imatt_;
  std::vector<ActivationMask> module_masks_;
  std::vector<double> touch_;  ///< touch(a)
  std::vector<double> q_;      ///< K*K symmetric Q(a,b)
  // Counters resolved once at construction so the per-query guard is a
  // plain bool load + pointer increment (no static-init check in the
  // millions-of-calls paths).
  obs::Counter* sig_queries_;
  obs::Counter* tr_queries_;
};

}  // namespace gcr::activity

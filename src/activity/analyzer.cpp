#include "activity/analyzer.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace gcr::activity {

ActivityAnalyzer::ActivityAnalyzer(const RtlDescription& rtl,
                                   const InstructionStream& stream)
    : ActivityAnalyzer(rtl, stream, obs::ScopedTimer("analyze")) {}

ActivityAnalyzer::ActivityAnalyzer(const RtlDescription& rtl,
                                   const InstructionStream& stream,
                                   const obs::ScopedTimer& /*timer*/)
    : rtl_(&rtl),
      ift_(stream, rtl.num_instructions()),
      imatt_(stream, rtl.num_instructions()),
      sig_queries_(
          &obs::Registry::global().counter("activity.signal_prob_queries")),
      tr_queries_(
          &obs::Registry::global().counter("activity.transition_prob_queries")) {
  const int k = rtl.num_instructions();
  module_masks_.assign(static_cast<std::size_t>(rtl.num_modules()),
                       ActivationMask(k));
  for (ModuleId m = 0; m < rtl.num_modules(); ++m) {
    for (InstrId i = 0; i < k; ++i)
      if (rtl.uses(i, m)) module_masks_[static_cast<std::size_t>(m)].set(i);
  }

  // Q(a,b) = P(a->b) + P(b->a);  touch(a) = sum_b Q(a,b).
  //
  // Derivation of the mask formula: let m_k = 1 iff instruction k activates
  // the subtree. The enable toggles on a consecutive pair (a, b) iff
  // m_a != m_b, so
  //   P_tr = sum_{a,b} P(a->b) (m_a + m_b - 2 m_a m_b)
  //        = sum_{a in mask} touch(a) - sum_{a,b in mask} Q(a,b),
  // which is what transition_prob() evaluates.
  q_.assign(static_cast<std::size_t>(k) * k, 0.0);
  touch_.assign(static_cast<std::size_t>(k), 0.0);
  for (const ImattRow& row : imatt_.rows()) {
    q_[static_cast<std::size_t>(row.cur) * k + row.nxt] += row.prob;
    q_[static_cast<std::size_t>(row.nxt) * k + row.cur] += row.prob;
    touch_[static_cast<std::size_t>(row.cur)] += row.prob;
    touch_[static_cast<std::size_t>(row.nxt)] += row.prob;
  }
}

ActivationMask ActivityAnalyzer::mask_for(const ModuleSet& s) const {
  ActivationMask mask(num_instructions());
  s.for_each([&](int m) { mask |= module_masks_[static_cast<std::size_t>(m)]; });
  return mask;
}

double ActivityAnalyzer::signal_prob(const ActivationMask& mask) const {
  assert(mask.size() == num_instructions());
  if (obs::metrics_enabled()) [[unlikely]] sig_queries_->inc();
  double p = 0.0;
  mask.for_each([&](int k) { p += ift_.prob(k); });
  return p;
}

double ActivityAnalyzer::transition_prob(const ActivationMask& mask) const {
  assert(mask.size() == num_instructions());
  if (obs::metrics_enabled()) [[unlikely]] tr_queries_->inc();
  const int k = num_instructions();
  // Collect set bits once; the typical mask is sparse relative to K.
  thread_local std::vector<int> bits;
  bits.clear();
  mask.for_each([&](int b) { bits.push_back(b); });

  double p = 0.0;
  for (const int a : bits) {
    p += touch_[static_cast<std::size_t>(a)];
    const double* qrow = &q_[static_cast<std::size_t>(a) * k];
    double inner = 0.0;
    for (const int b : bits) inner += qrow[b];
    p -= inner;
  }
  // Guard against negative floating-point dust.
  return p < 0.0 ? 0.0 : p;
}

}  // namespace gcr::activity

#pragma once

#include <vector>

#include "activity/bitset.h"

/// \file rtl.h
/// RTL description of a processor: for each instruction, the set of modules
/// that are clocked while it executes (paper section 3.1, Table 1).

namespace gcr::activity {

using InstrId = int;
using ModuleId = int;

class RtlDescription {
 public:
  RtlDescription(int num_instructions, int num_modules)
      : num_modules_(num_modules),
        uses_(static_cast<std::size_t>(num_instructions),
              ModuleSet(num_modules)) {}

  [[nodiscard]] int num_instructions() const {
    return static_cast<int>(uses_.size());
  }
  [[nodiscard]] int num_modules() const { return num_modules_; }

  /// Declare that instruction `i` uses module `m`.
  void add_use(InstrId i, ModuleId m) { uses_.at(i).set(m); }

  [[nodiscard]] bool uses(InstrId i, ModuleId m) const {
    return uses_.at(i).test(m);
  }

  /// The full module set of instruction `i`.
  [[nodiscard]] const ModuleSet& module_set(InstrId i) const {
    return uses_.at(i);
  }

  /// True when instruction `i` uses at least one module of `s` -- i.e.
  /// executing `i` forces the enable of a subtree with leaf modules `s` on.
  [[nodiscard]] bool activates(InstrId i, const ModuleSet& s) const {
    return uses_.at(i).intersects(s);
  }

  /// Average fraction of modules used per instruction, weighting every
  /// instruction equally (the Ave(M(I)) column of the paper's Table 4 when
  /// the stream is uniform; see Ift::average_activity for the weighted one).
  [[nodiscard]] double mean_usage_fraction() const {
    if (uses_.empty() || num_modules_ == 0) return 0.0;
    double total = 0.0;
    for (const auto& s : uses_) total += s.count();
    return total / (static_cast<double>(uses_.size()) * num_modules_);
  }

 private:
  int num_modules_;
  std::vector<ModuleSet> uses_;
};

}  // namespace gcr::activity

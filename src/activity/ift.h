#pragma once

#include <span>
#include <vector>

#include "activity/rtl.h"
#include "activity/stream.h"

/// \file ift.h
/// Instruction Frequency Table (paper section 3.3, Table 2): the empirical
/// probability that each instruction executes, built in a single scan of the
/// instruction stream.

namespace gcr::activity {

class Ift {
 public:
  /// Scan `stream` once; `num_instructions` fixes the table size (O(B + K)).
  Ift(const InstructionStream& stream, int num_instructions);

  [[nodiscard]] double prob(InstrId i) const { return probs_.at(i); }
  [[nodiscard]] std::span<const double> probs() const { return probs_; }
  [[nodiscard]] int num_instructions() const {
    return static_cast<int>(probs_.size());
  }

  /// P(EN) for a subtree whose leaves are the modules in `s`:
  /// the sum of P(I) over instructions that use any module of `s`
  /// (paper Eq. 2 evaluated through the table, complexity O(KL)).
  [[nodiscard]] double signal_prob(const RtlDescription& rtl,
                                   const ModuleSet& s) const;

  /// Average module activity of the stream:
  /// sum_k P(I_k) * |modules(I_k)| / N  (the Ave(M(I)) column of Table 4).
  [[nodiscard]] double average_activity(const RtlDescription& rtl) const;

 private:
  std::vector<double> probs_;
};

}  // namespace gcr::activity

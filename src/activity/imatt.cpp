#include "activity/imatt.h"

#include <cassert>

namespace gcr::activity {

Imatt::Imatt(const InstructionStream& stream, int num_instructions)
    : num_instructions_(num_instructions),
      dense_(static_cast<std::size_t>(num_instructions) * num_instructions,
             0.0) {
  assert(num_instructions > 0);
  const int pairs = stream.length() - 1;
  if (pairs <= 0) return;
  const double inv = 1.0 / static_cast<double>(pairs);
  for (int t = 0; t + 1 < stream.length(); ++t) {
    const InstrId a = stream.seq[static_cast<std::size_t>(t)];
    const InstrId b = stream.seq[static_cast<std::size_t>(t) + 1];
    dense_[static_cast<std::size_t>(a) * num_instructions_ + b] += inv;
  }
  for (InstrId a = 0; a < num_instructions_; ++a) {
    for (InstrId b = 0; b < num_instructions_; ++b) {
      const double p =
          dense_[static_cast<std::size_t>(a) * num_instructions_ + b];
      if (p > 0.0) rows_.push_back({a, b, p});
    }
  }
}

double Imatt::pair_prob(InstrId cur, InstrId nxt) const {
  assert(cur >= 0 && cur < num_instructions_ && nxt >= 0 &&
         nxt < num_instructions_);
  return dense_[static_cast<std::size_t>(cur) * num_instructions_ + nxt];
}

double Imatt::transition_prob(const RtlDescription& rtl,
                              const ModuleSet& s) const {
  double p = 0.0;
  for (const ImattRow& row : rows_) {
    if (rtl.activates(row.cur, s) != rtl.activates(row.nxt, s)) p += row.prob;
  }
  return p;
}

}  // namespace gcr::activity

#pragma once

#include "activity/rtl.h"
#include "activity/stream.h"

/// \file brute_force.h
/// The "very expensive" reference method of paper section 3.2: rescan the
/// whole instruction stream for every query. This is the validation oracle
/// for the table-driven engine -- the two must agree bit-for-bit on counts.

namespace gcr::activity {

class BruteForceActivity {
 public:
  BruteForceActivity(const RtlDescription& rtl, const InstructionStream& s)
      : rtl_(&rtl), stream_(&s) {}

  /// P(EN): fraction of cycles in which any module of `s` is active.
  [[nodiscard]] double signal_prob(const ModuleSet& s) const;

  /// P_tr(EN): fraction of consecutive cycle pairs across which the OR of
  /// the module activities changes.
  [[nodiscard]] double transition_prob(const ModuleSet& s) const;

  /// P(M_m): activity of a single module.
  [[nodiscard]] double module_prob(ModuleId m) const;

 private:
  const RtlDescription* rtl_;
  const InstructionStream* stream_;
};

}  // namespace gcr::activity

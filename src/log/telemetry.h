#pragma once

#include <cstdint>
#include <memory>

/// \file telemetry.h
/// Continuous `gcr.snapshot` v1 emission: a dedicated thread ticks on a
/// drift-free absolute monotonic deadline (the same clock_nanosleep
/// pattern as the prof sampler) and serializes, per tick,
///
///   * counter and histogram *deltas* since the previous tick (non-zero
///     entries only, so an idle process emits near-empty snapshots),
///   * current gauge values (gauges are levels, not rates),
///   * pool busy/idle/chunk deltas and the cumulative job count,
///   * current RSS from /proc/self/statm,
///
/// as one JSONL line through the logger's ring, turning the metrics
/// registry into the time-series a gcr_serve dashboard or an activity
/// drift detector consumes. A final snapshot is emitted at stop() so the
/// tail of a run is never lost to tick phase.

namespace gcr::log {

inline constexpr int kSnapshotSchemaVersion = 1;

class TelemetryEmitter {
 public:
  struct Options {
    int interval_ms{1000};  ///< clamped to >= 1
  };

  TelemetryEmitter();
  ~TelemetryEmitter();  ///< stops implicitly if still running
  TelemetryEmitter(const TelemetryEmitter&) = delete;
  TelemetryEmitter& operator=(const TelemetryEmitter&) = delete;

  /// Launch the tick thread. Requires a running Logger (snapshots travel
  /// its ring); no-op when already running.
  void start(const Options& opts);

  /// Emit one final snapshot, join the tick thread. No-op when not
  /// running. Returns the number of snapshots emitted.
  std::uint64_t stop();

  [[nodiscard]] bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Current resident set size in bytes (/proc/self/statm), 0 when the
/// proc interface is unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

}  // namespace gcr::log

#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file logger.h
/// gcr::log -- leveled structured event logging (docs/observability.md).
///
/// Every emission is a schema-versioned `gcr.event` v1 record: monotonic
/// and wall-clock timestamps, the run id, the emitting thread's open phase
/// path (from the obs phasestack shadow), thread and pool-worker ordinals,
/// a stable dot-separated event name and a key-value payload. Call sites
/// use the GCR_LOG_* macros:
///
///   GCR_LOG_EVENT(gcr::log::Level::Info, "route.done")
///       .kv("sinks", n).kv("swcap_pf", w);
///
/// The macro checks `enabled(level)` before the builder exists, so a
/// disabled logger costs one plain bool load and allocates nothing; levels
/// below GCR_LOG_COMPILE_MIN_LEVEL compile to no code at all (the trace
/// level's compile-out switch). Admitted records are pushed onto a
/// lock-free MPSC ring and rendered on a drain thread, so formatting and
/// sink I/O never run on the instrumented thread. Per-event-name token
/// buckets rate-limit floods; suppressed emissions are counted and the
/// count rides on the next admitted record of that name (and a final
/// `log.suppressed` summary at shutdown), so nothing disappears silently.

namespace gcr::guard {
struct Status;
}  // namespace gcr::guard

namespace gcr::log {

inline constexpr int kEventSchemaVersion = 1;

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

[[nodiscard]] std::string_view level_name(Level l);
/// "trace"/"debug"/"info"/"warn"/"error"/"off" -> Level; nullopt on junk.
[[nodiscard]] std::optional<Level> parse_level(std::string_view s);

/// Levels below this floor are removed at compile time: the macro body
/// becomes an empty statement, arguments are never evaluated. Default 0
/// keeps every level linkable; a release build that wants trace calls
/// gone entirely configures -DGCR_LOG_COMPILE_MIN_LEVEL=1.
#ifndef GCR_LOG_COMPILE_MIN_LEVEL
#define GCR_LOG_COMPILE_MIN_LEVEL 0
#endif

[[nodiscard]] constexpr bool level_compiled_in(Level l) {
  return static_cast<int>(l) >= GCR_LOG_COMPILE_MIN_LEVEL;
}

namespace detail {
extern bool g_log_on;  ///< plain-bool fast gate, set only by init/shutdown
extern int g_runtime_level;
}  // namespace detail

/// The one check every call site pays when the logger is off: a plain
/// bool load, then the runtime level compare only when it was on.
[[nodiscard]] inline bool enabled(Level l) {
  return detail::g_log_on && static_cast<int>(l) >= detail::g_runtime_level;
}

/// One enqueued event, timestamps and context captured at the call site,
/// payload pre-rendered (the drain thread only assembles the line).
struct Record {
  enum class Kind : std::uint8_t { Event, Snapshot };
  Kind kind{Kind::Event};
  Level level{Level::Info};
  std::string name;         ///< stable event name ("route.done")
  std::string phase;        ///< open phase path "route/topology" ("" = none)
  int tid{0};               ///< obs::trace_tid() ordinal
  int worker{0};            ///< par::worker_ordinal(); 0 = not a pool worker
  double t_ms{0.0};         ///< monotonic ms since logger init
  std::int64_t wall_ns{0};  ///< wall clock, ns since the Unix epoch
  std::string data;         ///< rendered `"k":v,...` payload (no braces);
                            ///< for Kind::Snapshot the complete JSON line
  std::uint64_t suppressed{0};  ///< drops this record amortizes
};

/// Render a Record as one `gcr.event` v1 JSON line (no trailing newline).
[[nodiscard]] std::string render_event_json(const Record& r,
                                            const std::string& run_id);
/// Human one-liner for the stderr sink: "[  12.3ms] warn  guard.diag ...".
[[nodiscard]] std::string render_human(const Record& r);

/// ISO-8601 UTC with millisecond precision ("2026-08-09T12:34:56.789Z").
[[nodiscard]] std::string iso8601_utc_ms(std::int64_t wall_ns);

/// A drain-side consumer. write() runs on the drain thread only.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const Record& r, const std::string& json_line) = 0;
  virtual void flush() {}
};

/// Human-readable lines to stderr for records at >= min_level; snapshot
/// records are machine data and are never printed here.
class StderrSink final : public Sink {
 public:
  explicit StderrSink(Level min_level) : min_level_(min_level) {}
  void write(const Record& r, const std::string& json_line) override;
  void flush() override;
  void set_min_level(Level l) { min_level_ = l; }

 private:
  Level min_level_;
};

/// JSONL file sink: one rendered line per record, events and snapshots.
class FileSink final : public Sink {
 public:
  /// False (and a failed open() state) when the path is not writable.
  [[nodiscard]] bool open(const std::string& path);
  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  ~FileSink() override;
  void write(const Record& r, const std::string& json_line) override;
  void flush() override;

 private:
  std::FILE* file_{nullptr};
};

/// Test sink: buffers records and rendered lines in memory.
class MemorySink final : public Sink {
 public:
  void write(const Record& r, const std::string& json_line) override;
  [[nodiscard]] std::vector<Record> records() const;
  [[nodiscard]] std::vector<std::string> lines() const;
  void clear();

 private:
  struct Impl;
  [[nodiscard]] Impl& impl() const;
  mutable std::shared_ptr<Impl> impl_;
};

struct Options {
  Level level{Level::Info};         ///< runtime floor for all sinks
  Level stderr_level{Level::Warn};  ///< human sink floor (Off = no stderr)
  std::string json_path;            ///< JSONL file ("" = no file sink)
  std::string run_id;               ///< "" = derive from wall clock + pid
  /// Token bucket per event name: sustained events/sec and burst size.
  /// <= 0 disables rate limiting.
  double rate_per_sec{200.0};
  double rate_burst{50.0};
  /// Extra sink (tests); the logger takes ownership.
  std::unique_ptr<Sink> extra_sink;
};

/// Per-event-name admission statistics (tests, shutdown summary).
struct RateStats {
  std::uint64_t admitted{0};
  std::uint64_t suppressed{0};
};

class Logger {
 public:
  static Logger& instance();

  /// Install sinks, start the drain thread and open the gate. Idempotent
  /// while running (a second init is ignored); re-init after shutdown()
  /// is supported (tests). Enables obs phase-shadow publishing so events
  /// carry phase paths. Returns false when `json_path` was set but could
  /// not be opened (the logger still starts with the remaining sinks).
  bool init(Options opts);

  /// Drain everything, emit the per-name suppression summary, join the
  /// drain thread and close the gate. Safe to call when never inited.
  void shutdown();

  [[nodiscard]] bool running() const;

  /// Block until every record enqueued before the call has reached the
  /// sinks (and fflush them). No-op when not running.
  void flush();

  void set_level(Level l);
  [[nodiscard]] Level runtime_level() const;
  [[nodiscard]] const std::string& run_id() const;
  /// Monotonic milliseconds since init (the event t_ms epoch).
  [[nodiscard]] double now_ms() const;

  /// Admission check + suppressed-count handoff for `name`. True when the
  /// event may be emitted; `carry` receives the number of previously
  /// suppressed emissions this record should account for.
  bool admit(const std::string& name, std::uint64_t& carry);

  /// Enqueue an already-built record (EventBuilder and the telemetry
  /// emitter). Drops (with accounting) when the ring is full.
  void enqueue(Record&& r);

  [[nodiscard]] RateStats rate_stats(const std::string& name) const;
  [[nodiscard]] std::uint64_t dropped() const;  ///< ring-full drops

 private:
  Logger();
  ~Logger();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Builds one event record inline at the call site; enqueues on
/// destruction. Construct only via the GCR_LOG_EVENT macro (which has
/// already checked enabled()); a rate-limited builder turns inert.
class EventBuilder {
 public:
  EventBuilder(Level level, std::string_view name);
  ~EventBuilder();
  EventBuilder(const EventBuilder&) = delete;
  EventBuilder& operator=(const EventBuilder&) = delete;

  EventBuilder& kv(std::string_view key, std::string_view v);
  EventBuilder& kv(std::string_view key, const char* v) {
    return kv(key, std::string_view(v));
  }
  EventBuilder& kv(std::string_view key, const std::string& v) {
    return kv(key, std::string_view(v));
  }
  EventBuilder& kv(std::string_view key, double v);
  EventBuilder& kv(std::string_view key, std::int64_t v);
  EventBuilder& kv(std::string_view key, std::uint64_t v);
  EventBuilder& kv(std::string_view key, int v) {
    return kv(key, static_cast<std::int64_t>(v));
  }
  EventBuilder& kv(std::string_view key, unsigned v) {
    return kv(key, static_cast<std::uint64_t>(v));
  }
  EventBuilder& kv(std::string_view key, bool v);
  /// Shorthand for the conventional human-message key.
  EventBuilder& msg(std::string_view m) { return kv("msg", m); }

 private:
  void append_key(std::string_view key);

  bool admitted_{false};
  Record rec_;
};

/// Every guard::Diag report becomes a `guard.diag` event (severity mapped
/// to Warn/Error) and bumps the `log.guard_warnings` / `log.guard_errors`
/// obs counters. Installed by the CLIs after Logger::init; library code
/// and tests that never install it see unchanged Diag behavior.
void install_guard_bridge();
/// Restore the previous hook (e.g. around intentional fault sweeps).
void remove_guard_bridge();

}  // namespace gcr::log

/// Emit a structured event. Usage:
///   GCR_LOG_EVENT(gcr::log::Level::Warn, "route.partial").kv("phase", p);
/// The whole statement (builder, kv arguments) evaluates only when the
/// level is compiled in AND the logger is enabled at that level.
#define GCR_LOG_EVENT(lvl, name)                               \
  if (!(gcr::log::level_compiled_in(lvl) && gcr::log::enabled(lvl))) {} \
  else gcr::log::EventBuilder(lvl, name)

#define GCR_LOG_TRACE(name) GCR_LOG_EVENT(gcr::log::Level::Trace, name)
#define GCR_LOG_DEBUG(name) GCR_LOG_EVENT(gcr::log::Level::Debug, name)
#define GCR_LOG_INFO(name) GCR_LOG_EVENT(gcr::log::Level::Info, name)
#define GCR_LOG_WARN(name) GCR_LOG_EVENT(gcr::log::Level::Warn, name)
#define GCR_LOG_ERROR(name) GCR_LOG_EVENT(gcr::log::Level::Error, name)

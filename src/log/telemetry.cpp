#include "log/telemetry.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>

#include "log/logger.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "par/pool.h"

namespace gcr::log {

std::uint64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0;
  unsigned long long resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  static const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

namespace {

void add_us(timespec& ts, long us) {
  ts.tv_nsec += us * 1000L;
  while (ts.tv_nsec >= 1000000000L) {
    ts.tv_nsec -= 1000000000L;
    ++ts.tv_sec;
  }
}

std::int64_t wall_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

struct HistoPrev {
  std::uint64_t count{0};
  double sum{0.0};
};

struct PoolPrev {
  std::uint64_t busy_ns{0};
  std::uint64_t idle_ns{0};
  std::uint64_t chunks{0};
};

}  // namespace

struct TelemetryEmitter::Impl {
  std::thread thread;
  std::atomic<bool> stop{false};
  bool running{false};
  int interval_ms{1000};
  std::uint64_t seq{0};

  std::map<std::string, std::uint64_t> prev_counters;
  std::map<std::string, HistoPrev> prev_histograms;
  PoolPrev prev_pool;

  /// Render and enqueue one snapshot line through the logger's ring.
  void emit() {
    Logger& lg = Logger::instance();
    std::string out;
    out.reserve(512);
    out += "{\"schema\":\"gcr.snapshot\",\"v\":";
    out += std::to_string(kSnapshotSchemaVersion);
    out += ",\"run\":";
    out += obs::json::quote(lg.run_id());
    out += ",\"seq\":";
    out += std::to_string(++seq);
    out += ",\"t_ms\":";
    out += obs::json::number(lg.now_ms());
    out += ",\"wall\":";
    out += obs::json::quote(iso8601_utc_ms(wall_now_ns()));
    out += ",\"interval_ms\":";
    out += std::to_string(interval_ms);

    const obs::Registry& reg = obs::Registry::global();
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : reg.counters()) {
      std::uint64_t& prev = prev_counters[name];
      if (value == prev) continue;
      // Registry::reset() between runs rewinds counters; restart deltas.
      const std::uint64_t delta = value >= prev ? value - prev : value;
      prev = value;
      if (delta == 0) continue;
      if (!first) out += ',';
      first = false;
      out += obs::json::quote(name);
      out += ':';
      out += std::to_string(delta);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : reg.gauges()) {
      if (value == 0.0) continue;
      if (!first) out += ',';
      first = false;
      out += obs::json::quote(name);
      out += ':';
      out += obs::json::number(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, snap] : reg.histograms()) {
      HistoPrev& prev = prev_histograms[name];
      const std::uint64_t dcount =
          snap.count >= prev.count ? snap.count - prev.count : snap.count;
      const double dsum =
          snap.count >= prev.count ? snap.sum - prev.sum : snap.sum;
      prev.count = snap.count;
      prev.sum = snap.sum;
      if (dcount == 0) continue;
      if (!first) out += ',';
      first = false;
      out += obs::json::quote(name);
      out += ":{\"count\":";
      out += std::to_string(dcount);
      out += ",\"sum\":";
      out += obs::json::number(dsum);
      out += '}';
    }
    out += '}';

    const par::PoolTelemetry t = par::ThreadPool::global().telemetry();
    std::uint64_t busy = 0;
    std::uint64_t idle = 0;
    std::uint64_t chunks = 0;
    for (const par::PoolTelemetry::Worker& w : t.workers) {
      busy += w.busy_ns;
      idle += w.idle_ns;
      chunks += w.chunks;
    }
    char pool[192];
    std::snprintf(pool, sizeof pool,
                  ",\"pool\":{\"workers\":%zu,\"busy_ns\":%" PRIu64
                  ",\"idle_ns\":%" PRIu64 ",\"chunks\":%" PRIu64
                  ",\"jobs\":%" PRIu64 "}",
                  t.workers.size(), busy - prev_pool.busy_ns,
                  idle - prev_pool.idle_ns, chunks - prev_pool.chunks,
                  t.jobs);
    out += pool;
    prev_pool = {busy, idle, chunks};

    out += ",\"rss_bytes\":";
    out += std::to_string(current_rss_bytes());
    out += '}';

    Record r;
    r.kind = Record::Kind::Snapshot;
    r.level = Level::Info;
    r.name = "gcr.snapshot";
    r.t_ms = lg.now_ms();
    r.data = std::move(out);
    lg.enqueue(std::move(r));
  }

  void loop() {
    timespec next{};
    clock_gettime(CLOCK_MONOTONIC, &next);
    const long interval_us = static_cast<long>(interval_ms) * 1000;
    while (!stop.load(std::memory_order_acquire)) {
      add_us(next, interval_us);
      clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &next, nullptr);
      if (stop.load(std::memory_order_acquire)) break;
      emit();
    }
  }
};

TelemetryEmitter::TelemetryEmitter() : impl_(new Impl) {}

TelemetryEmitter::~TelemetryEmitter() {
  if (impl_->running) (void)stop();
}

void TelemetryEmitter::start(const Options& opts) {
  if (impl_->running) return;
  impl_->interval_ms = opts.interval_ms < 1 ? 1 : opts.interval_ms;
  impl_->stop.store(false, std::memory_order_release);
  impl_->seq = 0;
  impl_->prev_counters.clear();
  impl_->prev_histograms.clear();
  impl_->prev_pool = {};
  impl_->thread = std::thread([this] { impl_->loop(); });
  impl_->running = true;
}

std::uint64_t TelemetryEmitter::stop() {
  if (!impl_->running) return impl_->seq;
  impl_->stop.store(true, std::memory_order_release);
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->emit();  // the tail delta, so short runs still snapshot once
  impl_->running = false;
  return impl_->seq;
}

bool TelemetryEmitter::running() const { return impl_->running; }

}  // namespace gcr::log

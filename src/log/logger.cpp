#include "log/logger.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <ctime>
#include <map>
#include <mutex>
#include <thread>
#include <unistd.h>

#include "guard/status.h"
#include "log/ring.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/phasestack.h"
#include "obs/trace.h"
#include "par/pool.h"

namespace gcr::log {

namespace detail {
bool g_log_on = false;
int g_runtime_level = static_cast<int>(Level::Info);
}  // namespace detail

std::string_view level_name(Level l) {
  switch (l) {
    case Level::Trace: return "trace";
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
    case Level::Off: return "off";
  }
  return "info";
}

std::optional<Level> parse_level(std::string_view s) {
  for (const Level l : {Level::Trace, Level::Debug, Level::Info, Level::Warn,
                        Level::Error, Level::Off})
    if (s == level_name(l)) return l;
  return std::nullopt;
}

std::string iso8601_utc_ms(std::int64_t wall_ns) {
  const std::time_t secs = static_cast<std::time_t>(wall_ns / 1000000000);
  const int ms = static_cast<int>((wall_ns / 1000000) % 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, ms);
  return buf;
}

std::string render_event_json(const Record& r, const std::string& run_id) {
  if (r.kind == Record::Kind::Snapshot) return r.data;
  std::string out;
  out.reserve(160 + r.data.size());
  out += "{\"schema\":\"gcr.event\",\"v\":";
  out += std::to_string(kEventSchemaVersion);
  out += ",\"run\":";
  out += obs::json::quote(run_id);
  out += ",\"t_ms\":";
  out += obs::json::number(r.t_ms);
  out += ",\"wall\":";
  out += obs::json::quote(iso8601_utc_ms(r.wall_ns));
  out += ",\"level\":";
  out += obs::json::quote(level_name(r.level));
  out += ",\"event\":";
  out += obs::json::quote(r.name);
  out += ",\"phase\":";
  out += obs::json::quote(r.phase);
  out += ",\"tid\":";
  out += std::to_string(r.tid);
  out += ",\"worker\":";
  out += std::to_string(r.worker);
  if (r.suppressed > 0) {
    out += ",\"suppressed\":";
    out += std::to_string(r.suppressed);
  }
  out += ",\"data\":{";
  out += r.data;
  out += "}}";
  return out;
}

std::string render_human(const Record& r) {
  char head[64];
  std::snprintf(head, sizeof head, "[%9.3fms] %-5s ", r.t_ms,
                std::string(level_name(r.level)).c_str());
  std::string out = head;
  out += r.name;
  if (!r.phase.empty()) {
    out += " phase=";
    out += r.phase;
  }
  if (!r.data.empty()) {
    out += " {";
    out += r.data;
    out += "}";
  }
  if (r.suppressed > 0) {
    out += " (+";
    out += std::to_string(r.suppressed);
    out += " suppressed)";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sinks.

void StderrSink::write(const Record& r, const std::string&) {
  if (r.kind == Record::Kind::Snapshot) return;
  if (static_cast<int>(r.level) < static_cast<int>(min_level_)) return;
  const std::string line = render_human(r);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void StderrSink::flush() { std::fflush(stderr); }

bool FileSink::open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  return file_ != nullptr;
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(const Record&, const std::string& json_line) {
  if (file_ == nullptr) return;
  std::fwrite(json_line.data(), 1, json_line.size(), file_);
  std::fputc('\n', file_);
}

void FileSink::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

struct MemorySink::Impl {
  mutable std::mutex mu;
  std::vector<Record> records;
  std::vector<std::string> lines;
};

MemorySink::Impl& MemorySink::impl() const {
  if (!impl_) impl_ = std::make_shared<Impl>();
  return *impl_;
}

void MemorySink::write(const Record& r, const std::string& json_line) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lk(im.mu);
  im.records.push_back(r);
  im.lines.push_back(json_line);
}

std::vector<Record> MemorySink::records() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lk(im.mu);
  return im.records;
}

std::vector<std::string> MemorySink::lines() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lk(im.mu);
  return im.lines;
}

void MemorySink::clear() {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lk(im.mu);
  im.records.clear();
  im.lines.clear();
}

// ---------------------------------------------------------------------------
// Logger core.

namespace {

constexpr std::size_t kRingSize = 4096;

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string derive_run_id() {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%012llx-%04x",
                static_cast<unsigned long long>(wall_now_ns()) & 0xffffffffffffULL,
                static_cast<unsigned>(::getpid()) & 0xffff);
  return buf;
}

struct TokenBucket {
  double tokens{0.0};
  std::int64_t last_ns{0};
  std::uint64_t admitted{0};
  std::uint64_t suppressed{0};  ///< not yet carried by an admitted record
  std::uint64_t suppressed_total{0};
};

}  // namespace

struct Logger::Impl {
  std::mutex init_mu;  ///< serializes init/shutdown
  bool running{false};
  Options opts;
  std::string run_id;
  std::chrono::steady_clock::time_point t0;

  BoundedMpscRing<Record, kRingSize> ring;
  std::atomic<std::uint64_t> dropped{0};

  std::vector<std::unique_ptr<Sink>> sinks;
  StderrSink* stderr_sink{nullptr};  ///< owned by sinks when present

  std::thread drain;
  std::mutex drain_mu;
  std::condition_variable drain_cv;   ///< wakes the drain thread
  std::condition_variable flush_cv;   ///< wakes flush() waiters
  bool stop{false};
  std::uint64_t enqueued{0};  ///< successful pushes (approximate order)
  std::uint64_t written{0};   ///< records delivered to sinks

  mutable std::mutex rate_mu;
  std::map<std::string, TokenBucket, std::less<>> buckets;

  double now_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }

  void deliver(const Record& r) {
    const std::string line = render_event_json(r, run_id);
    for (const std::unique_ptr<Sink>& s : sinks) s->write(r, line);
  }

  void drain_loop() {
    Record r;
    for (;;) {
      bool any = false;
      while (ring.pop(r)) {
        any = true;
        deliver(r);
        {
          const std::lock_guard<std::mutex> lk(drain_mu);
          ++written;
        }
        flush_cv.notify_all();
      }
      std::unique_lock<std::mutex> lk(drain_mu);
      if (stop && written >= enqueued) return;
      if (!any)
        drain_cv.wait_for(lk, std::chrono::milliseconds(5));
    }
  }
};

Logger::Logger() : impl_(new Impl) {}
Logger::~Logger() = default;

Logger& Logger::instance() {
  static Logger* g = new Logger();  // leaked: outlive static destructors
  return *g;
}

bool Logger::init(Options opts) {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> lk(im.init_mu);
  if (im.running) return true;
  im.opts = std::move(opts);
  im.run_id = im.opts.run_id.empty() ? derive_run_id() : im.opts.run_id;
  im.t0 = std::chrono::steady_clock::now();
  im.sinks.clear();
  im.stderr_sink = nullptr;
  im.dropped.store(0, std::memory_order_relaxed);
  im.stop = false;
  im.enqueued = 0;
  im.written = 0;
  {
    const std::lock_guard<std::mutex> rlk(im.rate_mu);
    im.buckets.clear();
  }

  bool ok = true;
  if (im.opts.stderr_level != Level::Off) {
    auto s = std::make_unique<StderrSink>(im.opts.stderr_level);
    im.stderr_sink = s.get();
    im.sinks.push_back(std::move(s));
  }
  if (!im.opts.json_path.empty()) {
    auto f = std::make_unique<FileSink>();
    if (f->open(im.opts.json_path)) {
      im.sinks.push_back(std::move(f));
    } else {
      ok = false;  // caller decides whether a missing file sink is fatal
    }
  }
  if (im.opts.extra_sink) im.sinks.push_back(std::move(im.opts.extra_sink));

  // Phase paths come from the same per-thread shadow the sampling
  // profiler reads; publishing is a bounded name copy per ScopedTimer.
  obs::set_shadow_enabled(true);

  im.drain = std::thread([this] { impl_->drain_loop(); });
  detail::g_runtime_level = static_cast<int>(im.opts.level);
  detail::g_log_on = true;
  im.running = true;
  return ok;
}

void Logger::shutdown() {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> lk(im.init_mu);
  if (!im.running) return;
  detail::g_log_on = false;

  // Final per-name suppression summary: everything the token buckets ate
  // that no later admitted record carried, plus ring-full drops.
  {
    const std::lock_guard<std::mutex> rlk(im.rate_mu);
    for (auto& [name, b] : im.buckets) {
      if (b.suppressed == 0) continue;
      Record r;
      r.level = Level::Warn;
      r.name = "log.suppressed";
      r.tid = obs::trace_tid();
      r.t_ms = im.now_ms();
      r.wall_ns = wall_now_ns();
      r.data = "\"event\":" + obs::json::quote(name) +
               ",\"count\":" + std::to_string(b.suppressed);
      b.suppressed = 0;
      if (im.ring.push(std::move(r))) {
        const std::lock_guard<std::mutex> dlk(im.drain_mu);
        ++im.enqueued;
      }
    }
  }
  const std::uint64_t drops = im.dropped.load(std::memory_order_relaxed);
  if (drops > 0) {
    Record r;
    r.level = Level::Warn;
    r.name = "log.dropped";
    r.tid = obs::trace_tid();
    r.t_ms = im.now_ms();
    r.wall_ns = wall_now_ns();
    r.data = "\"count\":" + std::to_string(drops);
    if (im.ring.push(std::move(r))) {
      const std::lock_guard<std::mutex> dlk(im.drain_mu);
      ++im.enqueued;
    }
  }

  {
    const std::lock_guard<std::mutex> dlk(im.drain_mu);
    im.stop = true;
  }
  im.drain_cv.notify_all();
  if (im.drain.joinable()) im.drain.join();
  for (const std::unique_ptr<Sink>& s : im.sinks) s->flush();
  im.sinks.clear();
  im.stderr_sink = nullptr;
  im.running = false;
}

bool Logger::running() const {
  const std::lock_guard<std::mutex> lk(impl_->init_mu);
  return impl_->running;
}

void Logger::flush() {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> init_lk(im.init_mu);
  if (!im.running) return;
  {
    std::unique_lock<std::mutex> lk(im.drain_mu);
    const std::uint64_t target = im.enqueued;
    im.drain_cv.notify_all();
    im.flush_cv.wait(lk, [&] { return im.written >= target; });
  }
  for (const std::unique_ptr<Sink>& s : im.sinks) s->flush();
}

double Logger::now_ms() const { return impl_->now_ms(); }

void Logger::set_level(Level l) {
  detail::g_runtime_level = static_cast<int>(l);
}

Level Logger::runtime_level() const {
  return static_cast<Level>(detail::g_runtime_level);
}

const std::string& Logger::run_id() const { return impl_->run_id; }

bool Logger::admit(const std::string& name, std::uint64_t& carry) {
  Impl& im = *impl_;
  carry = 0;
  if (im.opts.rate_per_sec <= 0.0) return true;
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const std::lock_guard<std::mutex> lk(im.rate_mu);
  auto it = im.buckets.find(name);
  if (it == im.buckets.end()) {
    it = im.buckets.emplace(name, TokenBucket{}).first;
    it->second.tokens = im.opts.rate_burst;
    it->second.last_ns = now;
  }
  TokenBucket& b = it->second;
  const double dt_s = static_cast<double>(now - b.last_ns) * 1e-9;
  if (dt_s > 0.0) {
    b.tokens = std::min(im.opts.rate_burst,
                        b.tokens + dt_s * im.opts.rate_per_sec);
    b.last_ns = now;
  }
  if (b.tokens < 1.0) {
    ++b.suppressed;
    ++b.suppressed_total;
    if (obs::metrics_enabled()) [[unlikely]] {
      static obs::Counter& c =
          obs::Registry::global().counter("log.suppressed");
      c.inc();
    }
    return false;
  }
  b.tokens -= 1.0;
  ++b.admitted;
  carry = b.suppressed;
  b.suppressed = 0;
  return true;
}

void Logger::enqueue(Record&& r) {
  Impl& im = *impl_;
  if (im.ring.push(std::move(r))) {
    const std::lock_guard<std::mutex> lk(im.drain_mu);
    ++im.enqueued;
  } else {
    im.dropped.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) [[unlikely]] {
      static obs::Counter& c = obs::Registry::global().counter("log.dropped");
      c.inc();
    }
  }
}

RateStats Logger::rate_stats(const std::string& name) const {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> lk(im.rate_mu);
  const auto it = im.buckets.find(name);
  if (it == im.buckets.end()) return {};
  return {it->second.admitted, it->second.suppressed_total};
}

std::uint64_t Logger::dropped() const {
  return impl_->dropped.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// EventBuilder.

EventBuilder::EventBuilder(Level level, std::string_view name) {
  Logger& lg = Logger::instance();
  std::uint64_t carry = 0;
  rec_.name.assign(name);
  if (!lg.admit(rec_.name, carry)) return;
  admitted_ = true;
  rec_.level = level;
  rec_.suppressed = carry;
  rec_.tid = obs::trace_tid();
  rec_.worker = par::worker_ordinal();
  rec_.t_ms = lg.now_ms();
  rec_.wall_ns = wall_now_ns();
  rec_.phase = obs::current_phase_path();
}

EventBuilder::~EventBuilder() {
  if (!admitted_) return;
  Logger::instance().enqueue(std::move(rec_));
}

void EventBuilder::append_key(std::string_view key) {
  if (!rec_.data.empty()) rec_.data += ',';
  rec_.data += obs::json::quote(key);
  rec_.data += ':';
}

EventBuilder& EventBuilder::kv(std::string_view key, std::string_view v) {
  if (!admitted_) return *this;
  append_key(key);
  rec_.data += obs::json::quote(v);
  return *this;
}

EventBuilder& EventBuilder::kv(std::string_view key, double v) {
  if (!admitted_) return *this;
  append_key(key);
  rec_.data += obs::json::number(v);
  return *this;
}

EventBuilder& EventBuilder::kv(std::string_view key, std::int64_t v) {
  if (!admitted_) return *this;
  append_key(key);
  rec_.data += std::to_string(v);
  return *this;
}

EventBuilder& EventBuilder::kv(std::string_view key, std::uint64_t v) {
  if (!admitted_) return *this;
  append_key(key);
  rec_.data += std::to_string(v);
  return *this;
}

EventBuilder& EventBuilder::kv(std::string_view key, bool v) {
  if (!admitted_) return *this;
  append_key(key);
  rec_.data += v ? "true" : "false";
  return *this;
}

// ---------------------------------------------------------------------------
// guard::Diag bridge.

namespace {

guard::DiagHook g_prev_hook = nullptr;
bool g_bridge_installed = false;

void diag_bridge(const guard::Status& s) {
  const bool warning = s.severity == guard::Severity::Warning;
  if (obs::metrics_enabled()) [[unlikely]] {
    static obs::Counter& warns =
        obs::Registry::global().counter("log.guard_warnings");
    static obs::Counter& errors =
        obs::Registry::global().counter("log.guard_errors");
    (warning ? warns : errors).inc();
  }
  const Level lvl = warning ? Level::Warn : Level::Error;
  GCR_LOG_EVENT(lvl, "guard.diag")
      .kv("code", guard::code_name(s.code))
      .kv("severity", warning ? "warning" : "error")
      .msg(s.message)
      .kv("file", s.loc.file)
      .kv("line", s.loc.line)
      .kv("col", s.loc.col);
  if (g_prev_hook != nullptr) g_prev_hook(s);
}

}  // namespace

void install_guard_bridge() {
  if (g_bridge_installed) return;
  g_prev_hook = guard::set_diag_hook(&diag_bridge);
  g_bridge_installed = true;
}

void remove_guard_bridge() {
  if (!g_bridge_installed) return;
  guard::set_diag_hook(g_prev_hook);
  g_prev_hook = nullptr;
  g_bridge_installed = false;
}

}  // namespace gcr::log

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"

/// \file schema.h
/// Validation and field extraction for the two JSONL line schemas the
/// logger emits -- `gcr.event` v1 and `gcr.snapshot` v1 -- shared by the
/// `gcr_events` tool and log_test so "the tool accepts it" and "the test
/// accepts it" can never drift apart. docs/observability.md documents
/// both layouts field by field.

namespace gcr::log {

enum class LineKind { Event, Snapshot };

/// The fields a consumer filters or aggregates on, pulled out of one
/// validated line.
struct LineInfo {
  LineKind kind{LineKind::Event};
  std::string level;  ///< events only
  std::string event;  ///< event name; empty for snapshots
  std::string phase;
  double t_ms{0.0};
  std::uint64_t suppressed{0};
  std::uint64_t seq{0};  ///< snapshots only
};

/// Schema problems of one parsed JSONL line; empty = valid. Unknown
/// top-level schemas are a problem (the stream is ours end to end).
[[nodiscard]] std::vector<std::string> validate_line(
    const obs::json::Value& doc);

/// Extract LineInfo from a line that validate_line accepted.
[[nodiscard]] std::optional<LineInfo> parse_line(const obs::json::Value& doc);

}  // namespace gcr::log

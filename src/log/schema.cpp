#include "log/schema.h"

#include "log/logger.h"
#include "log/telemetry.h"

namespace gcr::log {

namespace {

using obs::json::Value;

void require(std::vector<std::string>& problems, bool ok, const char* what) {
  if (!ok) problems.emplace_back(what);
}

bool is_string_field(const Value& obj, std::string_view key) {
  const Value* v = obj.find(key);
  return v && v->is_string();
}

bool is_number_field(const Value& obj, std::string_view key) {
  const Value* v = obj.find(key);
  return v && v->is_number();
}

void validate_event(std::vector<std::string>& problems, const Value& doc) {
  const Value* v = doc.find("v");
  require(problems,
          v && v->is_number() &&
              static_cast<int>(v->as_number()) == kEventSchemaVersion,
          "event v != 1");
  require(problems, is_string_field(doc, "run"), "missing run id");
  require(problems, is_number_field(doc, "t_ms"), "missing t_ms");
  require(problems, is_string_field(doc, "wall"), "missing wall timestamp");
  const Value* level = doc.find("level");
  require(problems,
          level && level->is_string() &&
              parse_level(level->as_string()).has_value() &&
              level->as_string() != "off",
          "level missing or not trace/debug/info/warn/error");
  const Value* event = doc.find("event");
  require(problems,
          event && event->is_string() && !event->as_string().empty(),
          "missing event name");
  require(problems, is_string_field(doc, "phase"), "missing phase");
  require(problems, is_number_field(doc, "tid"), "missing tid");
  require(problems, is_number_field(doc, "worker"), "missing worker");
  const Value* data = doc.find("data");
  require(problems, data && data->is_object(), "missing data object");
  const Value* sup = doc.find("suppressed");
  require(problems, sup == nullptr || sup->is_number(),
          "suppressed must be a number");
}

void validate_snapshot(std::vector<std::string>& problems, const Value& doc) {
  const Value* v = doc.find("v");
  require(problems,
          v && v->is_number() &&
              static_cast<int>(v->as_number()) == kSnapshotSchemaVersion,
          "snapshot v != 1");
  require(problems, is_string_field(doc, "run"), "missing run id");
  require(problems, is_number_field(doc, "seq"), "missing seq");
  require(problems, is_number_field(doc, "t_ms"), "missing t_ms");
  require(problems, is_string_field(doc, "wall"), "missing wall timestamp");
  require(problems, is_number_field(doc, "interval_ms"),
          "missing interval_ms");
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const Value* section = doc.find(key);
    if (!section || !section->is_object()) {
      problems.push_back(std::string("missing ") + key + " object");
      continue;
    }
    if (std::string_view(key) != "histograms") {
      for (const auto& [name, val] : section->as_object())
        if (!val.is_number()) {
          problems.push_back(std::string(key) + "." + name +
                             " is not a number");
          break;
        }
    } else {
      for (const auto& [name, val] : section->as_object()) {
        if (!val.is_object() || !is_number_field(val, "count") ||
            !is_number_field(val, "sum")) {
          problems.push_back("histograms." + name +
                             " must carry count and sum");
          break;
        }
      }
    }
  }
  const Value* pool = doc.find("pool");
  if (pool && pool->is_object()) {
    for (const char* key : {"workers", "busy_ns", "idle_ns", "jobs"})
      if (!is_number_field(*pool, key))
        problems.push_back(std::string("pool.") + key + " missing");
  } else {
    problems.emplace_back("missing pool object");
  }
  require(problems, is_number_field(doc, "rss_bytes"), "missing rss_bytes");
}

}  // namespace

std::vector<std::string> validate_line(const Value& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.emplace_back("line is not a JSON object");
    return problems;
  }
  const Value* schema = doc.find("schema");
  if (!schema || !schema->is_string()) {
    problems.emplace_back("missing schema field");
    return problems;
  }
  const std::string& s = schema->as_string();
  if (s == "gcr.event") {
    validate_event(problems, doc);
  } else if (s == "gcr.snapshot") {
    validate_snapshot(problems, doc);
  } else {
    problems.push_back("unknown schema \"" + s + "\"");
  }
  return problems;
}

std::optional<LineInfo> parse_line(const Value& doc) {
  if (!doc.is_object()) return std::nullopt;
  const Value* schema = doc.find("schema");
  if (!schema || !schema->is_string()) return std::nullopt;
  LineInfo info;
  info.t_ms = doc.number_or("t_ms", 0.0);
  if (schema->as_string() == "gcr.event") {
    info.kind = LineKind::Event;
    if (const Value* level = doc.find("level"))
      if (level->is_string()) info.level = level->as_string();
    if (const Value* event = doc.find("event"))
      if (event->is_string()) info.event = event->as_string();
    if (const Value* phase = doc.find("phase"))
      if (phase->is_string()) info.phase = phase->as_string();
    info.suppressed =
        static_cast<std::uint64_t>(doc.number_or("suppressed", 0.0));
    return info;
  }
  if (schema->as_string() == "gcr.snapshot") {
    info.kind = LineKind::Snapshot;
    info.seq = static_cast<std::uint64_t>(doc.number_or("seq", 0.0));
    return info;
  }
  return std::nullopt;
}

}  // namespace gcr::log

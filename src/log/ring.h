#pragma once

#include <atomic>
#include <cstddef>
#include <utility>

/// \file ring.h
/// Bounded lock-free multi-producer queue (Vyukov layout) used as the
/// event channel between logging call sites and the drain thread.
///
/// Every slot carries its own sequence number; a producer claims a slot
/// with one fetch_add on the head and publishes it by bumping the slot's
/// sequence, so producers never block each other and never block on the
/// consumer. When the ring is full, push() fails immediately -- the logger
/// counts the drop instead of stalling the routing thread that tried to
/// log (docs/observability.md: logging must never add a synchronization
/// edge to the code it observes).
///
/// The consumer side is written for the logger's single drain thread, but
/// the slot-sequence protocol is the full MPMC one, so a future
/// multi-sink drain does not need a new queue.

namespace gcr::log {

template <typename T, std::size_t N>
class BoundedMpscRing {
  static_assert((N & (N - 1)) == 0, "capacity must be a power of two");

 public:
  BoundedMpscRing() {
    for (std::size_t i = 0; i < N; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }
  BoundedMpscRing(const BoundedMpscRing&) = delete;
  BoundedMpscRing& operator=(const BoundedMpscRing&) = delete;

  /// Enqueue by move; false (item untouched beyond the failed attempt)
  /// when the ring is full. Safe from any number of threads.
  bool push(T&& item) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & (N - 1)];
      const std::size_t seq = c.seq.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          c.item = std::move(item);
          c.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full: the slot still holds an undrained item
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeue into `out`; false when empty. Single consumer.
  bool pop(T& out) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    Cell& c = cells_[pos & (N - 1)];
    const std::size_t seq = c.seq.load(std::memory_order_acquire);
    const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                static_cast<std::ptrdiff_t>(pos + 1);
    if (diff < 0) return false;  // slot not yet published
    tail_.store(pos + 1, std::memory_order_relaxed);
    out = std::move(c.item);
    c.seq.store(pos + N, std::memory_order_release);
    return true;
  }

  [[nodiscard]] static constexpr std::size_t capacity() { return N; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    T item{};
  };

  Cell cells_[N];
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace gcr::log

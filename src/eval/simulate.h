#pragma once

#include <vector>

#include "activity/rtl.h"
#include "activity/stream.h"
#include "clocktree/routed_tree.h"
#include "gating/controller.h"
#include "tech/params.h"

/// \file simulate.h
/// Cycle-accurate switched-capacitance simulation: replay the instruction
/// stream over an embedded gated clock tree, tracking for every cycle which
/// enables are on (clock edges switch) and which enables toggled
/// (controller wires switch), and accumulate the actual switched
/// capacitance per cycle.
///
/// This is the ground truth the analytic evaluator (gating::evaluate_swcap)
/// must match: the analytic path multiplies capacitances by probabilities
/// measured from the same stream, so for the *same* stream the two agree up
/// to floating-point accumulation. The simulator exists (a) as a referee in
/// the test suite, and (b) to evaluate a routed tree under traces other
/// than the one it was optimized for (workload robustness studies).

namespace gcr::eval {

struct SimulationResult {
  double clock_swcap_per_cycle{0.0};  ///< average W(T) [pF/cycle]
  double ctrl_swcap_per_cycle{0.0};   ///< average W(S) [pF/cycle]
  long long cycles{0};

  [[nodiscard]] double total_per_cycle() const {
    return clock_swcap_per_cycle + ctrl_swcap_per_cycle;
  }
};

/// Replay `stream` over `tree`. `leaf_module[i]` maps sink i to its module;
/// `masking` false simulates a buffered tree (everything clocks always, no
/// enable wires).
[[nodiscard]] SimulationResult simulate_swcap(
    const ct::RoutedTree& tree, const activity::RtlDescription& rtl,
    const activity::InstructionStream& stream,
    const std::vector<int>& leaf_module, const gating::ControllerPlacement& ctrl,
    const tech::TechParams& tech, bool masking = true);

}  // namespace gcr::eval

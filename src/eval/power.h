#pragma once

/// \file power.h
/// Conversion from switched capacitance to dynamic power (paper Eq. 1):
/// during layout synthesis Vdd and f are fixed, so the router optimizes
/// switched capacitance; reports convert back to watts for designers.

namespace gcr::eval {

struct PowerParams {
  double freq_mhz{200.0};  ///< clock frequency [MHz]
  double vdd{3.3};         ///< supply voltage [V]
};

/// P = W * Vdd^2 * f for a switched capacitance W (pF switched per cycle,
/// with the paper's convention folding the toggle count into W). Returns
/// milliwatts: pF * V^2 * MHz = uW.
[[nodiscard]] inline double dynamic_power_mw(double swcap_pf,
                                             const PowerParams& p = {}) {
  return swcap_pf * p.vdd * p.vdd * p.freq_mhz * 1e-3;
}

}  // namespace gcr::eval

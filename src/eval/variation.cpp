#include "eval/variation.h"

#include <algorithm>
#include <cassert>
#include <random>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace gcr::eval {

VariationReport variation_analysis(const ct::RoutedTree& tree,
                                   const tech::TechParams& tech,
                                   const VariationSpec& spec) {
  const obs::ScopedTimer obs_timer("variation");
  if (obs::metrics_enabled()) {
    obs::Registry::global()
        .counter("eval.variation_trials")
        .inc(static_cast<std::uint64_t>(spec.trials));
  }
  assert(spec.trials > 0);
  const int n = tree.num_nodes();
  std::mt19937_64 rng(spec.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  // Factors are truncated below so a pathological draw cannot flip signs.
  const auto draw = [&](double sigma) {
    return std::max(0.2, 1.0 + sigma * gauss(rng));
  };

  const ct::DelayReport nominal = ct::elmore_delays(tree, tech);
  const double nominal_delay = std::max(nominal.max_delay, 1e-12);

  ct::ElmoreFactors f;
  f.wire_res.assign(static_cast<std::size_t>(n), 1.0);
  f.wire_cap.assign(static_cast<std::size_t>(n), 1.0);
  f.gate_res.assign(static_cast<std::size_t>(n), 1.0);
  f.gate_delay.assign(static_cast<std::size_t>(n), 1.0);

  std::vector<double> skews;
  skews.reserve(static_cast<std::size_t>(spec.trials));
  double delay_acc = 0.0;
  for (int trial = 0; trial < spec.trials; ++trial) {
    for (int id = 0; id < n; ++id) {
      f.wire_res[static_cast<std::size_t>(id)] = draw(spec.wire_res_sigma);
      f.wire_cap[static_cast<std::size_t>(id)] = draw(spec.wire_cap_sigma);
      f.gate_res[static_cast<std::size_t>(id)] = draw(spec.gate_res_sigma);
      f.gate_delay[static_cast<std::size_t>(id)] = draw(spec.gate_delay_sigma);
    }
    const ct::DelayReport rep = ct::elmore_delays(tree, tech, &f);
    skews.push_back(rep.skew());
    delay_acc += rep.max_delay;
  }
  std::sort(skews.begin(), skews.end());

  VariationReport out;
  double acc = 0.0;
  for (const double s : skews) acc += s;
  out.mean_skew = acc / spec.trials;
  out.max_skew = skews.back();
  out.p95_skew =
      skews[static_cast<std::size_t>(0.95 * (spec.trials - 1))];
  out.mean_delay = delay_acc / spec.trials;
  out.mean_skew_ratio = out.mean_skew / nominal_delay;
  return out;
}

}  // namespace gcr::eval

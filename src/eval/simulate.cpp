#include "eval/simulate.h"

#include <cassert>

#include "activity/bitset.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace gcr::eval {

SimulationResult simulate_swcap(const ct::RoutedTree& tree,
                                const activity::RtlDescription& rtl,
                                const activity::InstructionStream& stream,
                                const std::vector<int>& leaf_module,
                                const gating::ControllerPlacement& ctrl,
                                const tech::TechParams& tech, bool masking) {
  const obs::ScopedTimer obs_timer("simulate");
  if (obs::metrics_enabled()) {
    obs::Registry::global().counter("eval.sim_runs").inc();
    obs::Registry::global()
        .counter("eval.sim_cycles")
        .inc(static_cast<std::uint64_t>(stream.length()));
  }
  const int n = tree.num_nodes();
  const int k = rtl.num_instructions();
  assert(static_cast<int>(leaf_module.size()) == tree.num_leaves);

  // Instruction-activation mask per node (bottom-up union).
  std::vector<activity::ActivationMask> mask(
      static_cast<std::size_t>(n), activity::ActivationMask(k));
  for (int id = 0; id < n; ++id) {
    const ct::RoutedNode& node = tree.node(id);
    if (node.is_leaf()) {
      const int m = leaf_module[static_cast<std::size_t>(id)];
      for (int i = 0; i < k; ++i)
        if (rtl.uses(i, m)) mask[static_cast<std::size_t>(id)].set(i);
    } else {
      mask[static_cast<std::size_t>(id)] =
          mask[static_cast<std::size_t>(node.left)] |
          mask[static_cast<std::size_t>(node.right)];
    }
  }

  // Controlling gate node of each edge (-1 = root domain, always clocked),
  // walking parents before children (descending ids).
  std::vector<int> dom(static_cast<std::size_t>(n), -1);
  for (int id = n - 1; id >= 0; --id) {
    const ct::RoutedNode& node = tree.node(id);
    if (node.parent < 0)
      dom[static_cast<std::size_t>(id)] = -1;
    else if (masking && node.gated)
      dom[static_cast<std::size_t>(id)] = id;
    else
      dom[static_cast<std::size_t>(id)] = dom[static_cast<std::size_t>(node.parent)];
  }

  // Aggregate switched capacitance per enable domain. Domain -1 is the
  // always-on group (the root's own pin loads included).
  const double cell_in_cap =
      masking ? tech.gate_input_cap : tech.buffer_input_cap();
  std::vector<double> group_cap(static_cast<std::size_t>(n) + 1, 0.0);
  const auto group_of = [&](int id) {
    return static_cast<std::size_t>(dom[static_cast<std::size_t>(id)] + 1);
  };
  for (int id = 0; id < n; ++id) {
    const ct::RoutedNode& node = tree.node(id);
    double pin_cap = 0.0;
    if (node.is_leaf()) {
      pin_cap = node.down_cap;
    } else {
      for (const int ch : {node.left, node.right}) {
        const ct::RoutedNode& c = tree.node(ch);
        if (c.gated) pin_cap += c.gate_size * cell_in_cap;
      }
    }
    if (node.parent >= 0) {
      group_cap[group_of(id)] += tech.wire_cap(node.edge_len) + pin_cap;
    } else {
      group_cap[0] += pin_cap;  // always clocked at the root
    }
  }

  // Gates with their enable wire capacitances.
  struct GateSim {
    int node;
    double enable_cap;
    bool prev{false};
  };
  std::vector<GateSim> gates;
  if (masking) {
    for (const int id : tree.gated_nodes()) {
      const double star = ctrl.star_length(tree.gate_location(id));
      gates.push_back(
          {id,
           tech.wire_cap(star) +
               tree.node(id).gate_size * tech.gate_enable_cap,
           false});
    }
  }

  // Distinct domains actually present (root group + one per gate).
  std::vector<int> domains;  // node ids; -1 encoded as group 0 handled apart
  for (int id = 0; id < n; ++id)
    if (masking && tree.node(id).gated) domains.push_back(id);

  SimulationResult res;
  res.cycles = stream.length();
  if (stream.seq.empty()) return res;

  double clock_acc = 0.0;
  double ctrl_acc = 0.0;
  bool first = true;
  for (const int instr : stream.seq) {
    // Clock tree: the always-on group plus every enabled domain.
    double cycle_cap = group_cap[0];
    for (const int id : domains) {
      if (mask[static_cast<std::size_t>(id)].test(instr))
        cycle_cap += group_cap[static_cast<std::size_t>(id) + 1];
    }
    clock_acc += cycle_cap;

    // Controller tree: enable wires that toggled since the previous cycle.
    for (GateSim& g : gates) {
      const bool now = mask[static_cast<std::size_t>(g.node)].test(instr);
      if (!first && now != g.prev) ctrl_acc += g.enable_cap;
      g.prev = now;
    }
    first = false;
  }

  res.clock_swcap_per_cycle = clock_acc / static_cast<double>(stream.length());
  // Toggles are counted over length-1 transitions; normalize like P_tr.
  res.ctrl_swcap_per_cycle =
      stream.length() > 1 ? ctrl_acc / static_cast<double>(stream.length() - 1)
                          : 0.0;
  return res;
}

}  // namespace gcr::eval

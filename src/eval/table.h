#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.h
/// Minimal aligned-table / CSV printer shared by the benchmark harnesses so
/// every regenerated paper table prints in one consistent format.

namespace gcr::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 3);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gcr::eval

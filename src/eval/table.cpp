#include "eval/table.h"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gcr::eval {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) sep += "  ";
    sep += std::string(width[c], '-');
  }
  os << sep << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c == 0 ? "" : ",") << cells[c];
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

}  // namespace gcr::eval

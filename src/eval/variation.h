#pragma once

#include <cstdint>

#include "clocktree/elmore.h"
#include "clocktree/routed_tree.h"
#include "tech/params.h"

/// \file variation.h
/// Monte-Carlo process-variation analysis of a routed clock tree. The
/// construction guarantees zero (or bounded) skew at *nominal* parasitics;
/// manufacturing spreads wire RC and gate strength, and the skew that
/// re-emerges depends on the tree's structure -- in particular on how many
/// gates/buffers sit on each root-to-sink path. Each trial draws
/// independent multiplicative factors per edge/gate and re-runs the Elmore
/// referee.

namespace gcr::eval {

struct VariationSpec {
  double wire_res_sigma{0.10};   ///< relative sigma of each edge's R
  double wire_cap_sigma{0.10};   ///< relative sigma of each edge's C
  double gate_res_sigma{0.15};   ///< relative sigma of each gate's drive
  double gate_delay_sigma{0.15}; ///< relative sigma of intrinsic delay
  int trials{200};
  std::uint64_t seed{1};
};

struct VariationReport {
  double mean_skew{0.0};
  double p95_skew{0.0};
  double max_skew{0.0};
  double mean_delay{0.0};
  /// Skew normalized by nominal insertion delay (dimensionless quality).
  double mean_skew_ratio{0.0};
};

[[nodiscard]] VariationReport variation_analysis(const ct::RoutedTree& tree,
                                                 const tech::TechParams& tech,
                                                 const VariationSpec& spec);

}  // namespace gcr::eval

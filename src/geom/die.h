#pragma once

#include "geom/point.h"

/// \file die.h
/// Axis-aligned die (chip) area in chip-plane coordinates.

namespace gcr::geom {

struct DieArea {
  double xlo{0.0};
  double ylo{0.0};
  double xhi{0.0};
  double yhi{0.0};

  [[nodiscard]] double width() const { return xhi - xlo; }
  [[nodiscard]] double height() const { return yhi - ylo; }
  [[nodiscard]] Point center() const {
    return {0.5 * (xlo + xhi), 0.5 * (ylo + yhi)};
  }
  [[nodiscard]] bool contains(const Point& p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }

  static DieArea square(double side) { return {0.0, 0.0, side, side}; }
};

}  // namespace gcr::geom

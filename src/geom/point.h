#pragma once

#include <cmath>
#include <iosfwd>

/// \file point.h
/// Basic planar geometry for clock routing. All routing in this library is
/// rectilinear, so the fundamental metric is the Manhattan (L1) distance.
/// Coordinates are in layout units (lambda).

namespace gcr::geom {

/// A point in the chip plane (lambda units).
struct Point {
  double x{0.0};
  double y{0.0};

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

/// Manhattan (L1) distance between two points.
inline double manhattan_dist(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean distance; used only for reporting, never for routing cost.
inline double euclidean_dist(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Midpoint of the straight segment ab.
inline Point midpoint(const Point& a, const Point& b) {
  return {0.5 * (a.x + b.x), 0.5 * (a.y + b.y)};
}

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace gcr::geom

#include "geom/tilted_rect.h"

#include <algorithm>
#include <ostream>

namespace gcr::geom {

namespace {

/// Gap between intervals [alo,ahi] and [blo,bhi]; 0 when they overlap.
double interval_gap(double alo, double ahi, double blo, double bhi) {
  if (blo > ahi) return blo - ahi;
  if (alo > bhi) return alo - bhi;
  return 0.0;
}

/// The sub-interval of [lo,hi] closest to [olo,ohi].
void nearest_subinterval(double lo, double hi, double olo, double ohi,
                         double& out_lo, double& out_hi) {
  const double l = std::max(lo, olo);
  const double h = std::min(hi, ohi);
  if (l <= h) {  // overlap: the whole overlap is at distance 0
    out_lo = l;
    out_hi = h;
  } else if (olo > hi) {  // other is to the right
    out_lo = out_hi = hi;
  } else {  // other is to the left
    out_lo = out_hi = lo;
  }
}

}  // namespace

TiltedRect TiltedRect::from_point(const Point& p) {
  const RotPoint r = to_rotated(p);
  return TiltedRect(r.u, r.u, r.w, r.w);
}

TiltedRect TiltedRect::arc(const Point& a, const Point& b) {
  const RotPoint ra = to_rotated(a);
  const RotPoint rb = to_rotated(b);
  return TiltedRect(std::min(ra.u, rb.u), std::max(ra.u, rb.u),
                    std::min(ra.w, rb.w), std::max(ra.w, rb.w));
}

TiltedRect TiltedRect::from_rotated(double ulo, double uhi, double wlo,
                                    double whi) {
  if (ulo > uhi) std::swap(ulo, uhi);
  if (wlo > whi) std::swap(wlo, whi);
  return TiltedRect(ulo, uhi, wlo, whi);
}

TiltedRect TiltedRect::inflated(double radius) const {
  return TiltedRect(ulo_ - radius, uhi_ + radius, wlo_ - radius,
                    whi_ + radius);
}

std::optional<TiltedRect> TiltedRect::intersect(const TiltedRect& o,
                                                double eps) const {
  const double ulo = std::max(ulo_, o.ulo_);
  const double uhi = std::min(uhi_, o.uhi_);
  const double wlo = std::max(wlo_, o.wlo_);
  const double whi = std::min(whi_, o.whi_);
  if (ulo > uhi + eps || wlo > whi + eps) return std::nullopt;
  // Collapse floating-point slivers so a touching intersection is exact.
  return TiltedRect(ulo, std::max(ulo, uhi), wlo, std::max(wlo, whi));
}

double TiltedRect::distance_to(const TiltedRect& o) const {
  const double gu = interval_gap(ulo_, uhi_, o.ulo_, o.uhi_);
  const double gw = interval_gap(wlo_, whi_, o.wlo_, o.whi_);
  return std::max(gu, gw);
}

double TiltedRect::distance_to(const Point& p) const {
  return distance_to(from_point(p));
}

Point TiltedRect::nearest_point_to(const Point& p) const {
  const RotPoint r = to_rotated(p);
  const double u = std::clamp(r.u, ulo_, uhi_);
  const double w = std::clamp(r.w, wlo_, whi_);
  return to_cartesian({u, w});
}

TiltedRect TiltedRect::nearest_region_to(const TiltedRect& o) const {
  double ulo = 0, uhi = 0, wlo = 0, whi = 0;
  nearest_subinterval(ulo_, uhi_, o.ulo_, o.uhi_, ulo, uhi);
  nearest_subinterval(wlo_, whi_, o.wlo_, o.whi_, wlo, whi);
  return TiltedRect(ulo, uhi, wlo, whi);
}

Point TiltedRect::center() const {
  return to_cartesian({0.5 * (ulo_ + uhi_), 0.5 * (wlo_ + whi_)});
}

bool TiltedRect::is_point(double eps) const {
  return (uhi_ - ulo_) <= eps && (whi_ - wlo_) <= eps;
}

bool TiltedRect::is_arc(double eps) const {
  return (uhi_ - ulo_) <= eps || (whi_ - wlo_) <= eps;
}

bool TiltedRect::contains(const Point& p, double eps) const {
  const RotPoint r = to_rotated(p);
  return r.u >= ulo_ - eps && r.u <= uhi_ + eps && r.w >= wlo_ - eps &&
         r.w <= whi_ + eps;
}

std::ostream& operator<<(std::ostream& os, const TiltedRect& r) {
  return os << "TRR{u:[" << r.ulo() << "," << r.uhi() << "] w:[" << r.wlo()
            << "," << r.whi() << "]}";
}

}  // namespace gcr::geom

#pragma once

#include <optional>
#include <iosfwd>

#include "geom/point.h"
#include "geom/rotated.h"

/// \file tilted_rect.h
/// Tilted rectangle regions (TRRs) -- the workhorse of the Deferred-Merge
/// Embedding (DME) geometry used for exact zero-skew routing [Tsay'91,
/// Boese-Kahng'92, Edahiro'91].
///
/// A TRR is a rectangle whose sides have slope +-1 in the chip plane. In the
/// rotated frame (see rotated.h) it is an axis-aligned rectangle
/// [ulo, uhi] x [wlo, whi]. Degenerate cases:
///   * a *Manhattan arc* (segment of slope +-1, possibly a single point) is a
///     TRR degenerate in at least one axis;
///   * every merging segment produced by an exact zero-skew merge is a
///     Manhattan arc.
///
/// The class stores the rotated-frame intervals and offers the three
/// operations DME needs: inflation by a radius (the set of points within
/// Manhattan distance r of the core), intersection, and Manhattan distance /
/// nearest-region queries between TRRs.

namespace gcr::geom {

class TiltedRect {
 public:
  /// An empty (invalid) region. Use the factories below for real regions.
  TiltedRect() = default;

  /// The degenerate TRR holding exactly one chip-plane point.
  static TiltedRect from_point(const Point& p);

  /// The Manhattan arc between two chip-plane points. The points must lie on
  /// a common line of slope +1 or -1 (or coincide); otherwise the smallest
  /// TRR containing both is returned (callers in DME never need that case,
  /// but it keeps the factory total).
  static TiltedRect arc(const Point& a, const Point& b);

  /// Direct construction from rotated-frame intervals. Intervals are
  /// normalized (lo <= hi).
  static TiltedRect from_rotated(double ulo, double uhi, double wlo,
                                 double whi);

  /// The set of points within Manhattan distance `radius` of this region
  /// (Minkowski sum with the L1 ball), radius >= 0.
  [[nodiscard]] TiltedRect inflated(double radius) const;

  /// Intersection; nullopt when the regions are disjoint beyond `eps`.
  /// A shared boundary (touching) counts as intersecting.
  [[nodiscard]] std::optional<TiltedRect> intersect(const TiltedRect& o,
                                                    double eps = 1e-9) const;

  /// Manhattan distance between the two regions (0 when they intersect).
  [[nodiscard]] double distance_to(const TiltedRect& o) const;

  /// Manhattan distance from a chip-plane point to this region.
  [[nodiscard]] double distance_to(const Point& p) const;

  /// The point of this region closest (Manhattan) to `p`.
  [[nodiscard]] Point nearest_point_to(const Point& p) const;

  /// The subset of this region at minimum Manhattan distance to `o`.
  /// Used when a zero-skew merge degenerates (wire snaking): the merging
  /// segment collapses to the part of one child's segment nearest the other.
  [[nodiscard]] TiltedRect nearest_region_to(const TiltedRect& o) const;

  /// Chip-plane center of the region (used for the paper's
  /// dist(CP, mid(ms(v))) controller-wire estimate).
  [[nodiscard]] Point center() const;

  /// True when the region is a single point (within eps).
  [[nodiscard]] bool is_point(double eps = 1e-9) const;

  /// True when the region is degenerate in at least one rotated axis, i.e. a
  /// Manhattan arc (points count as arcs).
  [[nodiscard]] bool is_arc(double eps = 1e-9) const;

  /// Membership test with tolerance.
  [[nodiscard]] bool contains(const Point& p, double eps = 1e-9) const;

  /// Rotated-frame interval accessors.
  [[nodiscard]] double ulo() const { return ulo_; }
  [[nodiscard]] double uhi() const { return uhi_; }
  [[nodiscard]] double wlo() const { return wlo_; }
  [[nodiscard]] double whi() const { return whi_; }

  /// Endpoints of the arc's diagonal in the chip plane: the (ulo,wlo) and
  /// (uhi,whi) corners. For a Manhattan arc these are its two endpoints.
  [[nodiscard]] Point corner_lo() const { return to_cartesian({ulo_, wlo_}); }
  [[nodiscard]] Point corner_hi() const { return to_cartesian({uhi_, whi_}); }

  friend bool operator==(const TiltedRect&, const TiltedRect&) = default;

 private:
  TiltedRect(double ulo, double uhi, double wlo, double whi)
      : ulo_(ulo), uhi_(uhi), wlo_(wlo), whi_(whi) {}

  double ulo_{0.0}, uhi_{0.0}, wlo_{0.0}, whi_{0.0};
};

std::ostream& operator<<(std::ostream& os, const TiltedRect& r);

}  // namespace gcr::geom

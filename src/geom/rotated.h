#pragma once

#include "geom/point.h"

/// \file rotated.h
/// 45-degree rotated coordinate frame.
///
/// Under the map u = x + y, w = y - x, the Manhattan distance in (x, y)
/// becomes the Chebyshev (L-infinity) distance in (u, w):
///
///     |dx| + |dy| = max(|du|, |dw|).
///
/// Consequently every object the DME algorithm manipulates -- Manhattan arcs
/// (segments of slope +-1) and tilted rectangle regions -- becomes an
/// axis-aligned segment / rectangle in the rotated frame, where intersection
/// and distance queries are trivial interval arithmetic.

namespace gcr::geom {

/// A point in the rotated (u, w) frame.
struct RotPoint {
  double u{0.0};
  double w{0.0};

  friend constexpr bool operator==(const RotPoint&, const RotPoint&) = default;
};

/// Map a chip-plane point into the rotated frame.
inline RotPoint to_rotated(const Point& p) { return {p.x + p.y, p.y - p.x}; }

/// Inverse map back into the chip plane.
inline Point to_cartesian(const RotPoint& r) {
  return {0.5 * (r.u - r.w), 0.5 * (r.u + r.w)};
}

/// Chebyshev distance in the rotated frame == Manhattan distance in the
/// chip plane.
inline double chebyshev_dist(const RotPoint& a, const RotPoint& b) {
  const double du = std::abs(a.u - b.u);
  const double dw = std::abs(a.w - b.w);
  return du > dw ? du : dw;
}

}  // namespace gcr::geom

#include "geom/point.h"

#include <ostream>

namespace gcr::geom {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

}  // namespace gcr::geom

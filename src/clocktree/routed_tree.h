#pragma once

#include <vector>

#include "geom/point.h"
#include "geom/tilted_rect.h"

/// \file routed_tree.h
/// A fully embedded (placed + routed) clock tree. Produced by embed(); all
/// evaluation (switched capacitance, Elmore delay verification, area,
/// export) runs on this structure.

namespace gcr::ct {

struct RoutedNode {
  int left{-1};
  int right{-1};
  int parent{-1};
  geom::Point loc;        ///< embedded location of the node
  geom::TiltedRect ms;    ///< merging segment (diagnostics / tests)
  double edge_len{0.0};   ///< wirelength of the edge to the parent
                          ///< (>= Manhattan distance when snaked; 0 at root)
  bool gated{false};      ///< masking gate at the top of the edge to parent
  double gate_size{1.0};  ///< relative size of that gate (1 = unit AND)
  double down_cap{0.0};   ///< downstream cap at this node [pF]
                          ///< (for a leaf: the sink load cap)
  double delay{0.0};      ///< zero-skew delay from this node to its sinks

  [[nodiscard]] bool is_leaf() const { return left < 0; }
};

struct RoutedTree {
  std::vector<RoutedNode> nodes;  ///< ids 0..num_leaves-1 are sinks
  int root{-1};
  int num_leaves{0};

  [[nodiscard]] const RoutedNode& node(int id) const { return nodes.at(id); }
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes.size()); }

  /// Total clock wirelength (sum of edge lengths, including snaking).
  [[nodiscard]] double total_wirelength() const {
    double len = 0.0;
    for (const auto& n : nodes) len += n.edge_len;
    return len;
  }

  /// Number of masking gates (or buffers) in the tree.
  [[nodiscard]] int num_gates() const {
    int g = 0;
    for (const auto& n : nodes) g += n.gated ? 1 : 0;
    return g;
  }

  /// Ids of all gated nodes (nodes whose parent edge carries a gate).
  [[nodiscard]] std::vector<int> gated_nodes() const {
    std::vector<int> ids;
    for (int i = 0; i < num_nodes(); ++i)
      if (nodes[static_cast<std::size_t>(i)].gated) ids.push_back(i);
    return ids;
  }

  /// The chip-plane location of the gate on node id's parent edge: the gate
  /// sits immediately after the parent node, i.e. at the parent's location.
  [[nodiscard]] geom::Point gate_location(int id) const {
    const int p = nodes.at(static_cast<std::size_t>(id)).parent;
    return p >= 0 ? nodes.at(static_cast<std::size_t>(p)).loc
                  : nodes.at(static_cast<std::size_t>(id)).loc;
  }
};

}  // namespace gcr::ct

#pragma once

#include <vector>

#include "geom/point.h"

/// \file sink.h
/// A clock sink: the clock pin of a module, with its location and load
/// capacitance. Sink i of a design corresponds to module i of the RTL
/// description unless an explicit mapping is supplied.

namespace gcr::ct {

struct Sink {
  geom::Point loc;
  double cap{0.0};  ///< load capacitance [pF]
};

using SinkList = std::vector<Sink>;

}  // namespace gcr::ct
